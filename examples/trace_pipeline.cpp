/**
 * @file
 * trace_pipeline: the out-of-core trace flow end to end, mirroring
 * how externally collected (gem5/Pin/Simics) traces are used at
 * scale — the API twin of `wlcrc_trace generate/info` piped into
 * `wlcrc_sim --trace-in`.
 *
 *   1. synthesize a workload and persist it as an indexed WLCTRC02
 *      container (tracefile/writer.hh);
 *   2. inspect it through the mmap-backed reader: record count,
 *      block index, address range, checksum audit;
 *   3. replay it through two schemes on the experiment runner,
 *      streaming block-by-block via a TransactionSource — the trace
 *      is never materialised in memory.
 *
 *   ./build/examples/trace_pipeline [workload] [lines] [/path.trc]
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "runner/grid.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "tracefile/mapped_trace.hh"
#include "tracefile/source.hh"
#include "tracefile/writer.hh"
#include "trace/workload.hh"

int
main(int argc, char **argv)
{
    using namespace wlcrc;

    const std::string workload = argc > 1 ? argv[1] : "gcc";
    const uint64_t lines =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 10000;
    const std::string path =
        argc > 3 ? argv[3]
                 : (std::filesystem::temp_directory_path() /
                    "wlcrc_pipeline.trc")
                       .string();

    try {
        // Step 1: synthesize and persist as a WLCTRC02 container.
        // Small blocks keep the example's streaming bound visible;
        // production traces use the (much larger) default.
        {
            trace::TraceSynthesizer synth(
                trace::WorkloadProfile::byName(workload), 7);
            tracefile::TraceFileWriter writer(path, 512);
            for (uint64_t i = 0; i < lines; ++i)
                writer.write(synth.next());
            writer.close();
        }

        // Step 2: inspect through the mmap reader and audit it.
        {
            const tracefile::MappedTrace trace(path);
            std::printf(
                "%s: %llu records in %llu blocks of %u "
                "(addrs [%llu, %llu])\n",
                path.c_str(),
                static_cast<unsigned long long>(trace.records()),
                static_cast<unsigned long long>(trace.blockCount()),
                trace.recordsPerBlock(),
                static_cast<unsigned long long>(trace.minAddr()),
                static_cast<unsigned long long>(trace.maxAddr()));
            trace.verifyAll();
            std::printf("checksums ok; random access: record 0 -> "
                        "line %llu, record %llu -> line %llu\n",
                        static_cast<unsigned long long>(
                            trace.record(0).lineAddr),
                        static_cast<unsigned long long>(
                            trace.records() - 1),
                        static_cast<unsigned long long>(
                            trace.record(trace.records() - 1)
                                .lineAddr));
        }

        // Step 3: streamed sharded replay through two schemes. The
        // runner's shards each open a block-pruned cursor over the
        // mapping; peak trace memory is one block per shard, however
        // long the trace is.
        const auto source = tracefile::openTraceSource(path);
        std::printf("replaying %s\n", source->describe().c_str());
        runner::ExperimentGrid grid;
        grid.schemes({"Baseline", "WLCRC-16"})
            .sources({source})
            .shards(4);
        const auto results =
            runner::ExperimentRunner().run(grid);
        for (const auto &r : results) {
            if (!r.ok) {
                std::fprintf(stderr, "error: %s: %s\n",
                             r.spec.label().c_str(),
                             r.error.c_str());
                return 1;
            }
        }
        runner::CsvReporter().write(std::cout, results);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    std::filesystem::remove(path);
    return 0;
}
