/**
 * @file
 * trace_pipeline: the full trace-driven flow on files, mirroring how
 * externally collected (gem5/Pin/Simics) traces would be used.
 *
 *   1. synthesize a workload trace and write it in the binary
 *      format (trace/trace_io.hh);
 *   2. read it back and replay it through two schemes;
 *   3. report the per-scheme metrics.
 *
 *   ./build/examples/trace_pipeline [workload] [lines] [/path.trc]
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "pcm/disturbance.hh"
#include "trace/replay.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

int
main(int argc, char **argv)
{
    using namespace wlcrc;

    const std::string workload = argc > 1 ? argv[1] : "gcc";
    const uint64_t lines =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 10000;
    const std::string path =
        argc > 3 ? argv[3]
                 : (std::filesystem::temp_directory_path() /
                    "wlcrc_pipeline.trc")
                       .string();

    // Step 1: synthesize and persist the trace.
    try {
        const auto &profile =
            trace::WorkloadProfile::byName(workload);
        {
            trace::TraceSynthesizer synth(profile, 7);
            trace::TraceWriter writer(path);
            for (uint64_t i = 0; i < lines; ++i)
                writer.write(synth.next());
        } // close the file before reading it back
        std::printf("wrote %llu transactions to %s\n",
                    static_cast<unsigned long long>(lines),
                    path.c_str());

        // Step 2: replay the file through two schemes.
        const pcm::EnergyModel energy;
        const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
        for (const char *scheme : {"Baseline", "WLCRC-16"}) {
            const auto codec = core::makeCodec(scheme, energy);
            trace::Replayer rep(*codec, unit);
            trace::TraceReader reader(path);
            while (const auto txn = reader.read())
                rep.step(*txn);
            const auto &r = rep.result();
            std::printf(
                "%-10s energy %8.1f pJ/write   updated %5.1f "
                "cells   disturb %4.2f errors\n",
                scheme, r.energyPj.mean(), r.updatedCells.mean(),
                r.disturbErrors.mean());
        }
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    std::filesystem::remove(path);
    return 0;
}
