/**
 * @file
 * Quickstart: encode one memory line with WLCRC-16 and compare its
 * differential-write cost against the plain baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "coset/baseline_codec.hh"
#include "pcm/write_unit.hh"
#include "wlcrc/wlcrc_codec.hh"

int
main()
{
    using namespace wlcrc;

    // A realistic 64-byte line: zeros, small counters, a -1
    // sentinel and two pointers. Every word's top 6 bits are
    // uniform, so WLC can reclaim 5 bits per word.
    Line512 line;
    line.setWord(0, 0x00000000000002a0ull); // counter
    line.setWord(1, 0xffffffffffffffffull); // -1 sentinel
    line.setWord(2, 0x00005023a1b2c3d0ull); // heap pointer
    line.setWord(3, 0x00007f11deadbee8ull); // stack pointer
    line.setWord(4, 0);
    line.setWord(5, 0xfffffffffffffe70ull); // small negative
    line.setWord(6, 0x0000000000013880ull);
    line.setWord(7, 0);

    const pcm::EnergyModel energy;            // Table II defaults
    const pcm::DisturbanceModel disturbance;  // 20 nm DER rates
    const pcm::WriteUnit unit(energy, disturbance);

    const core::WlcrcCodec wlcrc(energy, /*granularity=*/16);
    const coset::BaselineCodec baseline(energy);

    // Fresh cells start in S1; write the line once, then overwrite
    // it with a mutated version — the differential write is where
    // encoding pays off.
    std::vector<pcm::State> cells_w(wlcrc.cellCount(), pcm::State::S1);
    std::vector<pcm::State> cells_b(baseline.cellCount(),
                                    pcm::State::S1);
    Rng rng(1);
    cells_w = wlcrc.encode(line, cells_w).toVector();
    cells_b = baseline.encode(line, cells_b).toVector();

    Line512 updated = line;
    updated.setWord(0, 0x00000000000002a1ull); // counter++
    updated.setWord(1, 0);                     // sentinel cleared
    updated.setWord(5, 0x0000000000000190ull); // sign flip

    const auto st_w =
        unit.program(cells_w, wlcrc.encode(updated, cells_w), rng);
    const auto st_b = unit.program(
        cells_b, baseline.encode(updated, cells_b), rng);

    std::printf("overwrite with WLCRC-16 : %7.1f pJ, %2u cells "
                "programmed\n",
                st_w.totalEnergyPj(), st_w.totalUpdated());
    std::printf("overwrite with baseline : %7.1f pJ, %2u cells "
                "programmed\n",
                st_b.totalEnergyPj(), st_b.totalUpdated());
    std::printf("energy saved            : %6.1f%%\n",
                100.0 * (1 - st_w.totalEnergyPj() /
                                 st_b.totalEnergyPj()));

    // Decoding recovers the payload exactly.
    if (wlcrc.decode(cells_w) == updated)
        std::printf("decode check            : OK\n");
    return 0;
}
