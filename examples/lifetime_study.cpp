/**
 * @file
 * lifetime_study: endurance-centric exploration.
 *
 *   1. runs the end-to-end system model (core stream -> L2 ->
 *      controller -> PCM) with WLCRC-16 and reports controller and
 *      device statistics;
 *   2. sweeps the multi-objective threshold T (Section VIII-D) to
 *      show the energy/endurance trade-off;
 *   3. demonstrates the Verify-n-Restore loop converging on a
 *      disturbance-heavy write pattern.
 *
 *   ./build/examples/lifetime_study [workload] [accesses]
 */

#include <cstdio>
#include <cstdlib>

#include "memsys/system.hh"
#include "pcm/write_unit.hh"
#include "trace/replay.hh"
#include "wlcrc/factory.hh"
#include "wlcrc/wlcrc_codec.hh"

int
main(int argc, char **argv)
{
    using namespace wlcrc;

    const std::string workload = argc > 1 ? argv[1] : "milc";
    const uint64_t accesses =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 50000;

    const pcm::SystemConfig cfg;
    const pcm::EnergyModel energy;
    const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};

    // 1. End-to-end pipeline.
    try {
        const auto codec = core::makeCodec("WLCRC-16", energy);
        const auto &profile =
            trace::WorkloadProfile::byName(workload);
        memsys::PcmSystem sys(cfg, *codec, unit, profile, 99);
        sys.runAccesses(accesses);
        sys.finish();

        const auto &mc = sys.controller();
        const auto &dev = mc.device();
        std::printf("=== end-to-end (%s, %llu accesses) ===\n",
                    workload.c_str(),
                    static_cast<unsigned long long>(accesses));
        std::printf("L2: %llu hits, %llu misses, %llu writebacks\n",
                    (unsigned long long)sys.l2().hits(),
                    (unsigned long long)sys.l2().misses(),
                    (unsigned long long)sys.l2().writebacks());
        std::printf("controller: %llu reads, %llu writes, "
                    "mean read latency %.0f cycles, %llu drain "
                    "cycles\n",
                    (unsigned long long)mc.stats().readsServiced,
                    (unsigned long long)mc.stats().writesServiced,
                    mc.stats().readLatency.mean(),
                    (unsigned long long)mc.stats().drainCycles);
        std::printf("PCM: %.1f pJ and %.1f updated cells per "
                    "write\n\n",
                    dev.totals().totalEnergyPj() / dev.writeCount(),
                    double(dev.totals().totalUpdated()) /
                        dev.writeCount());

        // 2. Multi-objective threshold sweep.
        std::printf("=== multi-objective sweep (%s) ===\n",
                    workload.c_str());
        std::printf("%-10s %12s %14s\n", "T", "energy(pJ)",
                    "updated cells");
        for (const double t : {0.0, 0.005, 0.01, 0.02, 0.05}) {
            const core::WlcrcCodec mo(energy, 16, t);
            trace::Replayer rep(mo, unit);
            trace::TraceSynthesizer synth(profile, 5);
            rep.run(synth, 5000);
            std::printf("%-10.3f %12.1f %14.2f\n", t,
                        rep.result().energyPj.mean(),
                        rep.result().updatedCells.mean());
        }

        // 3. Verify-n-Restore on a worst-case pattern.
        std::printf("\n=== Verify-n-Restore convergence ===\n");
        std::vector<pcm::State> cells(256, pcm::State::S1);
        pcm::TargetLine target(256);
        for (unsigned i = 0; i < 256; ++i)
            target[i] = (i % 2) ? pcm::State::S4 : pcm::State::S1;
        Rng rng(3);
        const auto st = unit.program(cells, target, rng, true);
        std::printf("alternating S1/S4 line: %u first-pass "
                    "disturbances, VnR converged in %u "
                    "iteration(s)\n",
                    st.totalDisturbed(), st.vnrIterations);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    return 0;
}
