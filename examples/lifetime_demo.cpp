/**
 * @file
 * Lifetime demo: replay a small hot-spot trace to device failure
 * twice — once through the pass-through NullLeveler and once under
 * Start-Gap — and print how far wear leveling stretches the
 * writes-to-failure.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/lifetime_demo
 */

#include <cstdio>

#include "pcm/write_unit.hh"
#include "wearlevel/lifetime.hh"
#include "wlcrc/wlcrc_codec.hh"

int
main()
{
    using namespace wlcrc;

    // 48 lines, 80 % of writes hammering the hottest six — the
    // skew that kills an unleveled device early.
    const auto trace = wearlevel::hotspotTrace(
        /*lines=*/48, /*writes=*/600, /*seed=*/42);

    const pcm::EnergyModel energy;
    const pcm::DisturbanceModel disturbance;
    const pcm::WriteUnit unit(energy, disturbance);
    const core::WlcrcCodec codec(energy, /*granularity=*/16);

    const auto runWith = [&](const char *scheme) {
        wearlevel::LifetimeEngine::Options opts;
        opts.leveler = wearlevel::parseLeveler(scheme);
        // Mean budget of 150 writes per cell with 20 % variance;
        // first dead cell (no ECC spares) kills the device.
        opts.endurance = wearlevel::parseEndurance("150:0.2");
        opts.seed = 42;
        wearlevel::LifetimeEngine engine(codec, unit, opts);
        const auto res = engine.run(trace, /*loopUntilDeath=*/true);
        std::printf("%-18s writes-to-failure %7llu"
                    "  (extra remap writes %llu)\n",
                    scheme,
                    static_cast<unsigned long long>(
                        res.writesToFailure),
                    static_cast<unsigned long long>(
                        res.extraWrites));
        return res;
    };

    const auto plain = runWith("none");
    const auto leveled = runWith("start-gap:p8:r16");

    std::printf("start-gap lifetime gain : %.2fx\n",
                static_cast<double>(leveled.writesToFailure) /
                    static_cast<double>(plain.writesToFailure));
    return 0;
}
