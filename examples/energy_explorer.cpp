/**
 * @file
 * energy_explorer: compare any set of encoding schemes on any
 * workloads from the command line.
 *
 *   ./build/examples/energy_explorer [scheme ...] [--workload name]
 *                                    [--lines N] [--seed S]
 *
 * With no scheme arguments, the full Figure 8 list is used; with no
 * --workload, the whole benchmark suite is averaged. Prints a CSV of
 * write energy, updated cells and disturbance errors per scheme.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "pcm/disturbance.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;

trace::ReplayResult
run(const coset::LineCodec &codec,
    const trace::WorkloadProfile &profile, uint64_t lines,
    uint64_t seed)
{
    const pcm::WriteUnit unit{codec.energyModel(),
                              pcm::DisturbanceModel()};
    trace::Replayer rep(codec, unit, seed);
    trace::TraceSynthesizer synth(profile, seed);
    rep.run(synth, lines);
    return rep.result();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> schemes;
    std::string workload;
    uint64_t lines = 5000;
    uint64_t seed = 42;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload" && i + 1 < argc) {
            workload = argv[++i];
        } else if (arg == "--lines" && i + 1 < argc) {
            lines = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--help") {
            std::printf("usage: %s [scheme ...] [--workload name] "
                        "[--lines N] [--seed S]\n",
                        argv[0]);
            return 0;
        } else {
            schemes.push_back(arg);
        }
    }
    if (schemes.empty())
        schemes = core::figure8Schemes();

    const pcm::EnergyModel energy;
    CsvTable table({"scheme", "workload", "energy_pJ",
                    "updated_cells", "disturb_errors",
                    "compressed_pct"});
    try {
        for (const auto &name : schemes) {
            const auto codec = core::makeCodec(name, energy);
            if (!workload.empty()) {
                const auto r = run(
                    *codec,
                    trace::WorkloadProfile::byName(workload), lines,
                    seed);
                table.addRow(name, workload, r.energyPj.mean(),
                             r.updatedCells.mean(),
                             r.disturbErrors.mean(),
                             100.0 * r.compressedWrites / r.writes);
            } else {
                double e = 0, u = 0, d = 0, c = 0;
                const auto &all = trace::WorkloadProfile::all();
                for (const auto &p : all) {
                    const auto r = run(*codec, p, lines, seed);
                    e += r.energyPj.mean();
                    u += r.updatedCells.mean();
                    d += r.disturbErrors.mean();
                    c += 100.0 * r.compressedWrites / r.writes;
                }
                table.addRow(name, "suite-average", e / all.size(),
                             u / all.size(), d / all.size(),
                             c / all.size());
            }
        }
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    table.write(std::cout);
    return 0;
}
