/**
 * @file
 * Figure 13: average write disturbance errors per line write for
 * WLC+4cosets, WLC+3cosets and WLCRC at granularities 8/16/32/64
 * (suite average, blk/aux split).
 *
 * Expected shape (paper): ~3 errors per line; coarser blocks flip
 * fewer symbols and disturb slightly less; data cells dominate the
 * aux contribution at every granularity.
 */

#include "granularity_sweep.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        wb::banner("Figure 13", "disturbance errors vs granularity");
        wb::writeGranularityTable(
            wb::granularitySweep("Figure 13"),
            {"scheme", "granularity_bits", "blk_errors",
             "aux_errors", "total_errors"},
            [](const trace::ReplayResult &r) {
                return r.dataDisturbed.mean();
            },
            [](const trace::ReplayResult &r) {
                return r.auxDisturbed.mean();
            });
        return 0;
    });
}
