/**
 * @file
 * Figure 13: average write disturbance errors per line write for
 * WLC+4cosets, WLC+3cosets and WLCRC at granularities 8/16/32/64
 * (suite average, blk/aux split).
 *
 * Expected shape (paper): ~3 errors per line; coarser blocks flip
 * fewer symbols and disturb slightly less; data cells dominate the
 * aux contribution at every granularity.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "wlcrc/wlc_cosets_codec.hh"
#include "wlcrc/wlcrc_codec.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    wb::banner("Figure 13", "disturbance errors vs granularity");
    const pcm::EnergyModel energy;
    CsvTable table({"scheme", "granularity_bits", "blk_errors",
                    "aux_errors", "total_errors"});

    const unsigned n = trace::WorkloadProfile::all().size();
    auto run_suite = [&](const coset::LineCodec &codec,
                         const std::string &name, unsigned g) {
        double blk = 0, aux = 0;
        for (const auto &p : trace::WorkloadProfile::all()) {
            const auto r =
                wb::runWorkload(codec, p, wb::linesPerWorkload());
            blk += r.dataDisturbed.mean();
            aux += r.auxDisturbed.mean();
        }
        table.addRow(name, g, blk / n, aux / n, (blk + aux) / n);
    };

    for (const unsigned g : {8u, 16u, 32u, 64u}) {
        const core::WlcCosetsCodec four(energy, 4, g);
        run_suite(four, "4cosets", g);
        const core::WlcCosetsCodec three(energy, 3, g);
        run_suite(three, "3cosets", g);
        const core::WlcrcCodec wlcrc(energy, g);
        run_suite(wlcrc, "WLCRC", g);
    }
    table.write(std::cout);
    return 0;
}
