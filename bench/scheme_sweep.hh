/**
 * @file
 * Shared driver for Figures 8/9/10: run every evaluated scheme over
 * every benchmark and tabulate one metric per (scheme, benchmark)
 * cell, with the paper's HMI/LMI grouping and averages.
 *
 * The {workload x scheme} grid executes on the parallel experiment
 * runner (src/runner); WLCRC_BENCH_JOBS caps the worker threads and
 * WLCRC_BENCH_SHARDS shards each replay. The printed table is
 * identical for any job count.
 */

#ifndef WLCRC_BENCH_SCHEME_SWEEP_HH
#define WLCRC_BENCH_SCHEME_SWEEP_HH

#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/csv.hh"
#include "runner/grid.hh"
#include "runner/runner.hh"
#include "wlcrc/factory.hh"

namespace wlcrc::bench
{

using MetricFn =
    std::function<double(const trace::ReplayResult &)>;

/**
 * Run the Figure 8 scheme list over all benchmarks and print the
 * per-benchmark table (HMI block, HMI average, LMI block, LMI
 * average, grand average) for @p metric.
 *
 * @return scheme -> grand average, for headline summaries.
 */
inline std::map<std::string, double>
schemeSweep(const std::string &metric_name, const MetricFn &metric)
{
    const auto schemes = core::figure8Schemes();
    const auto &profiles = trace::WorkloadProfile::all();

    const auto engine = makeRunner(metric_name + " sweep");
    const auto results =
        engine.run(runner::ExperimentGrid()
                       .workloads(allWorkloadNames())
                       .schemes(schemes)
                       .lines(linesPerWorkload())
                       .seed(1234)
                       .shards(benchShards()));

    std::vector<std::string> header = {"workload", "intensity"};
    header.insert(header.end(), schemes.begin(), schemes.end());
    CsvTable table(header);

    std::map<std::string, double> hmi_sum, lmi_sum;
    unsigned hmi_n = 0, lmi_n = 0;

    auto emit_average = [&](const char *label,
                            const std::map<std::string, double> &sum,
                            unsigned n) {
        table.newRow();
        table.add(label);
        table.add("");
        for (const auto &s : schemes)
            table.add(sum.at(s) / n);
    };

    // Grid expansion is workload-major, scheme-minor, so the result
    // of (workload w, scheme s) sits at w * schemes.size() + s.
    for (std::size_t w = 0; w < profiles.size(); ++w) {
        const auto &p = profiles[w];
        table.newRow();
        table.add(p.name);
        table.add(p.highIntensity ? "HMI" : "LMI");
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const auto &r = results[w * schemes.size() + s];
            if (!r.ok)
                throw std::runtime_error(r.spec.label() + ": " +
                                         r.error);
            const double v = metric(r.replay);
            table.add(v);
            (p.highIntensity ? hmi_sum : lmi_sum)[schemes[s]] += v;
        }
        ++(p.highIntensity ? hmi_n : lmi_n);
    }
    emit_average("Ave-HMI", hmi_sum, hmi_n);
    emit_average("Ave-LMI", lmi_sum, lmi_n);

    std::map<std::string, double> grand;
    table.newRow();
    table.add("Ave-(H+L)MI");
    table.add("");
    for (const auto &s : schemes) {
        grand[s] =
            (hmi_sum[s] + lmi_sum[s]) / (hmi_n + lmi_n);
        table.add(grand[s]);
    }
    table.write(std::cout);
    return grand;
}

/** Print "A vs B: x % better" headline. */
inline void
headline(const std::map<std::string, double> &grand,
         const std::string &a, const std::string &b)
{
    const double gain = 100.0 * (1.0 - grand.at(a) / grand.at(b));
    std::printf("# %s vs %s: %.1f%% lower\n", a.c_str(), b.c_str(),
                gain);
}

} // namespace wlcrc::bench

#endif // WLCRC_BENCH_SCHEME_SWEEP_HH
