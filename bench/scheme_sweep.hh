/**
 * @file
 * Shared driver for Figures 8/9/10: run every evaluated scheme over
 * every benchmark and tabulate one metric per (scheme, benchmark)
 * cell, with the paper's HMI/LMI grouping and averages.
 */

#ifndef WLCRC_BENCH_SCHEME_SWEEP_HH
#define WLCRC_BENCH_SCHEME_SWEEP_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/csv.hh"
#include "wlcrc/factory.hh"

namespace wlcrc::bench
{

using MetricFn =
    std::function<double(const trace::ReplayResult &)>;

/**
 * Run the Figure 8 scheme list over all benchmarks and print the
 * per-benchmark table (HMI block, HMI average, LMI block, LMI
 * average, grand average) for @p metric.
 *
 * @return scheme -> grand average, for headline summaries.
 */
inline std::map<std::string, double>
schemeSweep(const std::string &metric_name, const MetricFn &metric)
{
    const pcm::EnergyModel energy;
    const auto schemes = core::figure8Schemes();
    const uint64_t lines = linesPerWorkload();

    std::vector<std::string> header = {"workload", "intensity"};
    header.insert(header.end(), schemes.begin(), schemes.end());
    CsvTable table(header);

    std::map<std::string, double> hmi_sum, lmi_sum;
    unsigned hmi_n = 0, lmi_n = 0;

    auto emit_average = [&](const char *label,
                            const std::map<std::string, double> &sum,
                            unsigned n) {
        table.newRow();
        table.add(label);
        table.add("");
        for (const auto &s : schemes)
            table.add(sum.at(s) / n);
    };

    for (const auto &p : trace::WorkloadProfile::all()) {
        table.newRow();
        table.add(p.name);
        table.add(p.highIntensity ? "HMI" : "LMI");
        for (const auto &s : schemes) {
            const auto codec = core::makeCodec(s, energy);
            const double v =
                metric(runWorkload(*codec, p, lines));
            table.add(v);
            (p.highIntensity ? hmi_sum : lmi_sum)[s] += v;
        }
        ++(p.highIntensity ? hmi_n : lmi_n);
    }
    emit_average("Ave-HMI", hmi_sum, hmi_n);
    emit_average("Ave-LMI", lmi_sum, lmi_n);

    std::map<std::string, double> grand;
    table.newRow();
    table.add("Ave-(H+L)MI");
    table.add("");
    for (const auto &s : schemes) {
        grand[s] =
            (hmi_sum[s] + lmi_sum[s]) / (hmi_n + lmi_n);
        table.add(grand[s]);
    }
    table.write(std::cout);
    (void)metric_name;
    return grand;
}

/** Print "A vs B: x % better" headline. */
inline void
headline(const std::map<std::string, double> &grand,
         const std::string &a, const std::string &b)
{
    const double gain = 100.0 * (1.0 - grand.at(a) / grand.at(b));
    std::printf("# %s vs %s: %.1f%% lower\n", a.c_str(), b.c_str(),
                gain);
}

} // namespace wlcrc::bench

#endif // WLCRC_BENCH_SCHEME_SWEEP_HH
