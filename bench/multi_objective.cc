/**
 * @file
 * Section VIII-D: the multi-objective (energy + endurance) WLCRC-16
 * variant. Sweeps the threshold T and reports suite-average write
 * energy and updated cells, plus the paper's lesl/lbm case study.
 *
 * Expected shape (paper, T = 1 %): updated cells drop ~19 % (52 ->
 * 42 in their setup) for < 2 % extra energy; lesl 153 -> 133, lbm
 * 55 -> 49 updated cells.
 */

#include "bench_common.hh"

#include <algorithm>

#include "common/csv.hh"
#include "runner/grid.hh"
#include "wlcrc/wlcrc_codec.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        wb::banner("Section VIII-D",
                   "multi-objective WLCRC-16 threshold sweep");

        const std::vector<double> thresholds = {0.0, 0.005, 0.01,
                                                0.02, 0.05};
        std::vector<runner::SchemeDef> defs;
        for (const double t : thresholds) {
            defs.push_back(
                {"WLCRC-16 T=" + std::to_string(100 * t) + "%",
                 [t](const pcm::EnergyModel &energy) {
                     return std::make_unique<core::WlcrcCodec>(
                         energy, 16, t);
                 }});
        }

        const auto workloads = wb::allWorkloadNames();
        const auto results =
            wb::makeRunner("Section VIII-D")
                .run(runner::ExperimentGrid()
                         .workloads(workloads)
                         .schemeDefs(defs)
                         .cacheSalt("multi_objective")
                         .lines(wb::linesPerWorkload())
                         .seed(1234)
                         .shards(wb::benchShards()));
        wb::requireOk(results);

        CsvTable table(
            {"threshold_pct", "energy_pJ", "updated_cells"});
        for (std::size_t d = 0; d < thresholds.size(); ++d) {
            table.addRow(
                100 * thresholds[d],
                wb::suiteAverage(results, defs.size(), d,
                                 [](const trace::ReplayResult &r) {
                                     return r.energyPj.mean();
                                 }),
                wb::suiteAverage(results, defs.size(), d,
                                 [](const trace::ReplayResult &r) {
                                     return r.updatedCells.mean();
                                 }));
        }
        table.write(std::cout);

        // The paper's per-workload case study at T = 1 % (grid
        // columns T=0% and T=1%).
        CsvTable cases({"workload", "plain_updated", "mo_updated",
                        "plain_pJ", "mo_pJ"});
        for (const char *name : {"lesl", "lbm"}) {
            const auto it = std::find(workloads.begin(),
                                      workloads.end(), name);
            if (it == workloads.end())
                throw std::runtime_error(
                    std::string("case-study workload missing: ") +
                    name);
            const unsigned w = it - workloads.begin();
            const auto &rp = wb::suiteCell(results, defs.size(), w, 0);
            const auto &rm = wb::suiteCell(results, defs.size(), w, 2);
            cases.addRow(name, rp.updatedCells.mean(),
                         rm.updatedCells.mean(), rp.energyPj.mean(),
                         rm.energyPj.mean());
        }
        cases.write(std::cout);
        return 0;
    });
}
