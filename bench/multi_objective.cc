/**
 * @file
 * Section VIII-D: the multi-objective (energy + endurance) WLCRC-16
 * variant. Sweeps the threshold T and reports suite-average write
 * energy and updated cells, plus the paper's lesl/lbm case study.
 *
 * Expected shape (paper, T = 1 %): updated cells drop ~19 % (52 ->
 * 42 in their setup) for < 2 % extra energy; lesl 153 -> 133, lbm
 * 55 -> 49 updated cells.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "wlcrc/wlcrc_codec.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    wb::banner("Section VIII-D",
               "multi-objective WLCRC-16 threshold sweep");
    CsvTable table({"threshold_pct", "energy_pJ", "updated_cells"});

    const pcm::EnergyModel energy;
    auto mean_energy = [](const trace::ReplayResult &r) {
        return r.energyPj.mean();
    };
    auto mean_updated = [](const trace::ReplayResult &r) {
        return r.updatedCells.mean();
    };
    for (const double t : {0.0, 0.005, 0.01, 0.02, 0.05}) {
        const core::WlcrcCodec codec(energy, 16, t);
        table.addRow(100 * t,
                     wb::suiteAverage(codec, wb::linesPerWorkload(),
                                      mean_energy),
                     wb::suiteAverage(codec, wb::linesPerWorkload(),
                                      mean_updated));
    }
    table.write(std::cout);

    // The paper's per-workload case study at T = 1 %.
    CsvTable cases({"workload", "plain_updated", "mo_updated",
                    "plain_pJ", "mo_pJ"});
    const core::WlcrcCodec plain(energy, 16);
    const core::WlcrcCodec mo(energy, 16, 0.01);
    for (const char *name : {"lesl", "lbm"}) {
        const auto &p = trace::WorkloadProfile::byName(name);
        const auto rp =
            wb::runWorkload(plain, p, wb::linesPerWorkload());
        const auto rm =
            wb::runWorkload(mo, p, wb::linesPerWorkload());
        cases.addRow(name, rp.updatedCells.mean(),
                     rm.updatedCells.mean(), rp.energyPj.mean(),
                     rm.energyPj.mean());
    }
    cases.write(std::cout);
    return 0;
}
