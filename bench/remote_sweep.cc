/**
 * @file
 * Scaling smoke for the distributed sweep backend: one fixed grid
 * run on the in-process thread backend and then on a RemoteBackend
 * head at 1, 2 and 4 spawned local workers. Every remote run must
 * be byte-identical to the thread run — the bench aborts on any
 * divergence, so the identity contract is exercised at bench scale
 * on every CI bench-smoke leg, not just at unit-test scale.
 *
 * The worker binary is WLCRC_WORKER_BIN when set, else the
 * wlcrc_worker sibling of this binary (/proc/self/exe), which is
 * where the build tree puts both. Timing columns (points_per_sec)
 * are wall-clock and volatile; identity columns are deterministic.
 *
 * Knobs: WLCRC_BENCH_LINES, WLCRC_BENCH_SHARDS (point count =
 * schemes x workloads x shards), WLCRC_BENCH_JOBS.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hh"

#include "common/csv.hh"
#include "runner/grid.hh"
#include "runner/remote.hh"
#include "runner/report.hh"

namespace
{

using namespace wlcrc;

/** WLCRC_WORKER_BIN, else the wlcrc_worker next to this binary. */
std::string
workerBinary()
{
    const std::string env = envString("WLCRC_WORKER_BIN", "");
    if (!env.empty())
        return env;
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path self =
        fs::read_symlink("/proc/self/exe", ec);
    const fs::path sibling =
        (ec ? fs::path("wlcrc_worker")
            : self.parent_path() / "wlcrc_worker");
    if (!fs::exists(sibling))
        throw std::runtime_error(
            "wlcrc_worker not found at " + sibling.string() +
            " (set WLCRC_WORKER_BIN)");
    return sibling.string();
}

struct Timed
{
    std::string csv;
    double seconds = 0;
};

Timed
timedRun(runner::ExperimentRunner &runner,
         const runner::ExperimentGrid &grid)
{
    const auto start = std::chrono::steady_clock::now();
    const auto results = runner.run(grid);
    Timed t;
    t.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    bench::requireOk(results);
    std::ostringstream os;
    runner::CsvReporter().write(os, results);
    t.csv = os.str();
    return t;
}

} // namespace

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;
    return wb::benchMain([] {
        wb::banner("RemoteSweep",
                   "distributed head vs thread backend, identity + "
                   "scaling smoke");

        const auto grid =
            runner::ExperimentGrid()
                .schemes({"Baseline", "WLCRC-16"})
                .workloads({"lesl", "gcc", "milc", "mcf"})
                .lines(wb::linesPerWorkload())
                .seed(9)
                .shards(std::max(wb::benchShards(), 4u));
        const std::size_t points = grid.expand().size();
        const std::string worker = workerBinary();

        runner::RunnerOptions topts;
        topts.jobs = wb::benchJobs();
        runner::ExperimentRunner threadRunner(topts);
        const Timed thread = timedRun(threadRunner, grid);

        CsvTable table({"backend", "workers", "points",
                        "byte_identical", "points_per_sec"});
        table.newRow();
        table.add("thread");
        table.add(0);
        table.add(points);
        table.add(1);
        table.add(static_cast<double>(points) / thread.seconds);

        for (const unsigned workers : {1u, 2u, 4u}) {
            runner::RemoteBackendOptions ropts;
            ropts.workerBinary = worker;
            ropts.spawnWorkers = workers;
            auto head = std::make_shared<runner::RemoteBackend>(
                std::move(ropts));
            runner::RunnerOptions opts;
            opts.jobs = wb::benchJobs();
            opts.backend = head;
            runner::ExperimentRunner remoteRunner(opts);
            const Timed remote = timedRun(remoteRunner, grid);
            head->stop();
            if (remote.csv != thread.csv)
                throw std::runtime_error(
                    "remote sweep at " + std::to_string(workers) +
                    " worker(s) diverged from the thread backend");
            table.newRow();
            table.add("remote");
            table.add(workers);
            table.add(points);
            table.add(1);
            table.add(static_cast<double>(points) /
                      remote.seconds);
        }
        table.write(std::cout);
        std::fprintf(stderr,
                     "remote_sweep: %zu points byte-identical "
                     "across thread and 1/2/4-worker heads\n",
                     points);
        return 0;
    });
}
