/**
 * @file
 * Shared helpers for the figure-regeneration bench binaries.
 *
 * Every bench prints the same rows/series the corresponding paper
 * figure plots (CSV to stdout) plus a short headline summary. The
 * simulated write count scales with WLCRC_BENCH_LINES (per workload;
 * default 3000) and WLCRC_BENCH_RANDOM_LINES (for the random-data
 * figures; default 20000) so the suite can run anywhere from a smoke
 * test to paper-fidelity volume.
 */

#ifndef WLCRC_BENCH_BENCH_COMMON_HH
#define WLCRC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "common/env.hh"
#include "coset/codec.hh"
#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"

namespace wlcrc::bench
{

/** Per-workload write count. */
inline uint64_t
linesPerWorkload()
{
    return envU64("WLCRC_BENCH_LINES", 3000);
}

/** Write count for random-data experiments. */
inline uint64_t
randomLines()
{
    return envU64("WLCRC_BENCH_RANDOM_LINES", 20000);
}

/** Worker threads for runner-driven sweeps (0 = all cores). */
inline unsigned
benchJobs()
{
    return static_cast<unsigned>(envU64("WLCRC_BENCH_JOBS", 0));
}

/** Replay shards per grid point (results depend on this, not jobs). */
inline unsigned
benchShards()
{
    return static_cast<unsigned>(envU64("WLCRC_BENCH_SHARDS", 1));
}

/** Replay @p lines synthetic writes of @p profile through @p codec. */
inline trace::ReplayResult
runWorkload(const coset::LineCodec &codec,
            const trace::WorkloadProfile &profile, uint64_t lines,
            uint64_t seed = 1234)
{
    const pcm::WriteUnit unit{codec.energyModel(),
                              pcm::DisturbanceModel()};
    trace::Replayer rep(codec, unit, seed);
    trace::TraceSynthesizer synth(profile, seed);
    rep.run(synth, lines);
    return rep.result();
}

/** Replay @p lines random-data writes through @p codec. */
inline trace::ReplayResult
runRandom(const coset::LineCodec &codec, uint64_t lines,
          uint64_t seed = 4321)
{
    const pcm::WriteUnit unit{codec.energyModel(),
                              pcm::DisturbanceModel()};
    trace::Replayer rep(codec, unit, seed);
    trace::RandomWorkload random(seed);
    rep.run(random, lines);
    return rep.result();
}

/** Average a per-workload metric over the whole benchmark suite. */
template <typename MetricFn>
double
suiteAverage(const coset::LineCodec &codec, uint64_t lines,
             MetricFn metric, uint64_t seed = 1234)
{
    double total = 0;
    unsigned n = 0;
    for (const auto &p : trace::WorkloadProfile::all()) {
        total += metric(runWorkload(codec, p, lines, seed));
        ++n;
    }
    return total / n;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &figure, const std::string &what)
{
    std::cout << "# " << figure << ": " << what << "\n"
              << "# lines/workload=" << linesPerWorkload()
              << " random-lines=" << randomLines() << "\n";
}

} // namespace wlcrc::bench

#endif // WLCRC_BENCH_BENCH_COMMON_HH
