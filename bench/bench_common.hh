/**
 * @file
 * Shared helpers for the figure-regeneration bench binaries.
 *
 * Every bench prints the same rows/series the corresponding paper
 * figure plots (CSV to stdout) plus a short headline summary, and
 * executes its sweep on the parallel experiment runner (src/runner):
 * build an ExperimentGrid, run it through makeRunner(), aggregate
 * the returned results. stdout is a deterministic function of the
 * WLCRC_BENCH_* knobs below — never of the job count or scheduling —
 * which is what tests/bench_golden_test.cc enforces.
 *
 * Knobs: WLCRC_BENCH_LINES (writes per workload; default 3000),
 * WLCRC_BENCH_RANDOM_LINES (random-data figures; default 20000),
 * WLCRC_BENCH_JOBS (worker threads; 0 = all cores),
 * WLCRC_BENCH_SHARDS (replay shards per grid point; results depend
 * on this, not on jobs), WLCRC_BENCH_PROGRESS (stderr ETA line;
 * default on), WLCRC_BENCH_BACKEND (thread | serial | process;
 * process also needs WLCRC_WORKER_BIN pointing at wlcrc_sim) and
 * WLCRC_BENCH_CACHE_DIR (result-cache directory; a re-run of an
 * unchanged sweep replays nothing — docs/caching.md). Backends and
 * caching never change stdout; benchMain() prints the cache
 * hit/replay summary to stderr.
 */

#ifndef WLCRC_BENCH_BENCH_COMMON_HH
#define WLCRC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <functional>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/env.hh"
#include "coset/codec.hh"
#include "coset/mapping.hh"
#include "coset/ncosets_codec.hh"
#include "runner/backend.hh"
#include "runner/runner.hh"
#include "trace/workload.hh"

namespace wlcrc::bench
{

/** Per-workload write count. */
inline uint64_t
linesPerWorkload()
{
    return envU64("WLCRC_BENCH_LINES", 3000);
}

/** Write count for random-data experiments. */
inline uint64_t
randomLines()
{
    return envU64("WLCRC_BENCH_RANDOM_LINES", 20000);
}

/** Worker threads for runner-driven sweeps (0 = all cores). */
inline unsigned
benchJobs()
{
    return static_cast<unsigned>(envU64("WLCRC_BENCH_JOBS", 0));
}

/** Replay shards per grid point (results depend on this, not jobs). */
inline unsigned
benchShards()
{
    return static_cast<unsigned>(envU64("WLCRC_BENCH_SHARDS", 1));
}

/** Result-cache directory ("" = caching off). */
inline std::string
benchCacheDir()
{
    return envString("WLCRC_BENCH_CACHE_DIR", "");
}

/**
 * Cache accounting shared by every grid a bench runs (most benches
 * run several); benchMain() prints the accumulated summary.
 */
inline runner::RunStats &
benchRunStats()
{
    static runner::RunStats stats;
    return stats;
}

/** All 13 benchmark workload names, paper order. */
inline std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &p : trace::WorkloadProfile::all())
        names.push_back(p.name);
    return names;
}

/**
 * The 6cosets-vs-4cosets scheme axis of Figures 2 and 3: per
 * granularity, an NCosetsCodec over the six-coset candidates and
 * one over the Table-I four-candidate prefix, in figure row order.
 */
inline std::vector<runner::SchemeDef>
sixVsFourCosetsDefs(const std::vector<unsigned> &granularities)
{
    std::vector<runner::SchemeDef> defs;
    for (const unsigned g : granularities) {
        for (const unsigned n : {6u, 4u}) {
            defs.push_back(
                {std::to_string(n) + "cosets-" + std::to_string(g),
                 [n, g](const pcm::EnergyModel &energy) {
                     return std::make_unique<coset::NCosetsCodec>(
                         energy,
                         n == 6 ? coset::sixCosetCandidates()
                                : coset::tableICandidates(4),
                         g);
                 }});
        }
    }
    return defs;
}

/**
 * Result of grid point (workload @p w, scheme @p d) in a
 * workload-major {workloads x ndefs schemes} sweep — the expansion
 * order ExperimentGrid guarantees.
 */
inline const trace::ReplayResult &
suiteCell(const std::vector<runner::ExperimentResult> &results,
          std::size_t ndefs, std::size_t w, std::size_t d)
{
    return results[w * ndefs + d].replay;
}

/**
 * Sum of @p metric over the workload axis for scheme column @p d of
 * a workload-major sweep over the full benchmark suite. Kept as a
 * sum (not an average) so multi-component rows can combine
 * components before the single division, exactly as the figures'
 * suite averages are defined.
 */
template <typename MetricFn>
double
suiteSum(const std::vector<runner::ExperimentResult> &results,
         std::size_t ndefs, std::size_t d, MetricFn metric)
{
    const std::size_t nworkloads =
        trace::WorkloadProfile::all().size();
    double total = 0;
    for (std::size_t w = 0; w < nworkloads; ++w)
        total += metric(suiteCell(results, ndefs, w, d));
    return total;
}

/** Equal-weight suite average of @p metric for scheme column @p d. */
template <typename MetricFn>
double
suiteAverage(const std::vector<runner::ExperimentResult> &results,
             std::size_t ndefs, std::size_t d, MetricFn metric)
{
    return suiteSum(results, ndefs, d, metric) /
           trace::WorkloadProfile::all().size();
}

/**
 * The engine every bench runs on: WLCRC_BENCH_JOBS workers and a
 * stderr ETA line (WLCRC_BENCH_PROGRESS=0 silences it; stdout is
 * untouched either way, keeping the CSV byte-comparable).
 *
 * @param jobs_override  pin the worker count regardless of
 *        WLCRC_BENCH_JOBS (the throughput bench pins 1 so its timed
 *        kernels never contend with each other).
 */
inline runner::ExperimentRunner
makeRunner(const std::string &label,
           std::optional<unsigned> jobs_override = std::nullopt)
{
    runner::RunnerOptions opts;
    opts.jobs = jobs_override ? *jobs_override : benchJobs();
    if (envU64("WLCRC_BENCH_PROGRESS", 1))
        opts.progress = runner::stderrProgress(label);
    // Backends relocate work without changing results; "process"
    // fans grid points out to WLCRC_WORKER_BIN child processes
    // (factory/custom-replay specs transparently stay in-process).
    const std::string backend =
        envString("WLCRC_BENCH_BACKEND", "thread");
    if (backend != "thread")
        opts.backend = runner::makeBackend(
            backend, envString("WLCRC_WORKER_BIN", ""));
    const std::string cacheDir = benchCacheDir();
    if (!cacheDir.empty()) {
        opts.cacheDir = cacheDir;
        opts.stats = &benchRunStats();
    }
    return runner::ExperimentRunner(opts);
}

/** Throw (with the point's label) if any grid point failed. */
inline void
requireOk(const std::vector<runner::ExperimentResult> &results)
{
    for (const auto &r : results) {
        if (!r.ok)
            throw std::runtime_error(r.spec.label() + ": " + r.error);
    }
}

/**
 * Run a bench body, converting exceptions (malformed WLCRC_BENCH_*
 * knobs, failed grid points) into a loud stderr line and a non-zero
 * exit instead of std::terminate noise.
 */
inline int
benchMain(const std::function<int()> &body)
{
    try {
        const int rc = body();
        const std::string cacheDir = benchCacheDir();
        if (rc == 0 && !cacheDir.empty())
            std::fprintf(stderr, "bench cache %s: %s\n",
                         cacheDir.c_str(),
                         benchRunStats().summary().c_str());
        return rc;
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}

/** Print the standard bench banner. */
inline void
banner(const std::string &figure, const std::string &what)
{
    std::cout << "# " << figure << ": " << what << "\n"
              << "# lines/workload=" << linesPerWorkload()
              << " random-lines=" << randomLines() << "\n";
}

} // namespace wlcrc::bench

#endif // WLCRC_BENCH_BENCH_COMMON_HH
