/**
 * @file
 * Figure 9: average number of updated cells per line write
 * (blk + aux) — the endurance proxy — for all schemes across the
 * benchmark suite.
 *
 * Expected shape (paper): WLCRC-16 ~20 % below Baseline and ~11 %
 * below 6cosets on average, on par with FNW; float-heavy workloads
 * (lesl, lbm) trade endurance for energy.
 */

#include "scheme_sweep.hh"

int
main()
{
    namespace wb = wlcrc::bench;
    return wb::benchMain([] {
        wb::banner("Figure 9", "updated cells per line write");
        const auto grand = wb::schemeSweep(
            "updated", [](const wlcrc::trace::ReplayResult &r) {
                return r.updatedCells.mean();
            });
        wb::headline(grand, "WLCRC-16", "Baseline");
        wb::headline(grand, "WLCRC-16", "FlipMin");
        wb::headline(grand, "WLCRC-16", "COC+4cosets");
        wb::headline(grand, "WLCRC-16", "6cosets");
        return 0;
    });
}
