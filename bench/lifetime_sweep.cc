/**
 * @file
 * Lifetime sweep: writes-to-failure of codec x wear-leveler x
 * endurance-budget combinations on a synthetic hot-spot trace
 * (80 % of writes hammer 1/8 of the footprint — the access shape
 * wear leveling exists for). Each point loops the trace until the
 * first uncorrectable cell death and reports the demand writes the
 * device survived, the extra writes the leveler spent on remap
 * copies, and the final wear CoV.
 *
 * Expected shape: Start-Gap and page-remap both extend
 * writes-to-failure well past the pass-through NullLeveler at a
 * modest extra-write cost, and budget variance (cov > 0) shortens
 * every scheme's lifetime by pulling the weakest cell's budget in.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "runner/spec_codec.hh"
#include "wearlevel/lifetime.hh"

int
main()
{
    namespace wb = wlcrc::bench;
    using namespace wlcrc;
    return wb::benchMain([] {
        wb::banner("Lifetime sweep",
                   "writes-to-failure under wear leveling");

        // Hot-spot stream sized by the standard bench knob; the
        // lifetime engine loops it, so even the golden-test scale
        // (120 writes) reaches device death.
        const uint64_t footprint = 64;
        auto txns = std::make_shared<
            const std::vector<trace::WriteTransaction>>(
            wearlevel::hotspotTrace(footprint,
                                    wb::linesPerWorkload(), 7));

        const std::vector<wearlevel::LevelerConfig> levelers = {
            wearlevel::parseLeveler("none"),
            // One full Start-Gap rotation is (region+1)*period
            // writes; keep that well inside the ~1e3-write death
            // horizon of a 100-write budget or the gap never
            // reaches the hot lines.
            wearlevel::parseLeveler("start-gap:p8:r16"),
            wearlevel::parseLeveler("page-remap:p64:g8"),
        };
        const std::vector<wearlevel::EnduranceConfig> endurances = {
            wearlevel::parseEndurance("100"),
            wearlevel::parseEndurance("100:0.25"),
        };

        runner::ExperimentGrid grid;
        grid.schemes({"Baseline", "WLCRC-16"})
            .transactions(txns)
            .seed(7)
            .levelers(levelers)
            .endurances(endurances)
            .lifetime();

        const auto results =
            wb::makeRunner("lifetime_sweep").run(grid);
        wb::requireOk(results);

        CsvTable table({"scheme", "leveler", "endurance",
                        "writes_to_failure", "extra_writes",
                        "remap_events", "final_wear_cov"});
        for (const auto &r : results) {
            table.newRow();
            table.add(r.spec.scheme);
            table.add(wearlevel::formatLeveler(r.spec.leveler));
            table.add(
                wearlevel::formatEndurance(r.spec.endurance));
            table.add(r.lifetime.writesToFailure);
            table.add(r.lifetime.extraWrites);
            table.add(r.lifetime.remapEvents);
            table.add(
                runner::formatDouble(r.lifetime.finalWearCov));
        }
        table.write(std::cout);

        // Headline: leveling gain over pass-through, per scheme at
        // the fixed-budget endurance point (grid order is
        // scheme-major, then leveler, then endurance).
        const std::size_t perScheme =
            levelers.size() * endurances.size();
        for (std::size_t s = 0; s * perScheme < results.size();
             ++s) {
            const auto &none = results[s * perScheme];
            for (std::size_t l = 1; l < levelers.size(); ++l) {
                const auto &lev =
                    results[s * perScheme + l * endurances.size()];
                const double ratio =
                    static_cast<double>(
                        lev.lifetime.writesToFailure) /
                    static_cast<double>(std::max<uint64_t>(
                        1, none.lifetime.writesToFailure));
                std::cout
                    << "# " << lev.spec.scheme << ": "
                    << wearlevel::formatLeveler(lev.spec.leveler)
                    << " reaches "
                    << runner::formatDouble(ratio)
                    << "x the writes-to-failure of none\n";
            }
        }
        return 0;
    });
}
