/**
 * @file
 * Figure 4: percentage of memory lines compressed per benchmark by
 * WLC with k = 4..9 MSBs, by COC, and by FPC+BDI (DIN's threshold of
 * 369 bits).
 *
 * Expected shape: WLC compresses >91 % of lines for k <= 6, dropping
 * to ~50 % for k >= 7; COC covers >90 %; FPC+BDI only ~30 %.
 *
 * There is no codec/device replay here — a custom replay hook counts
 * each compressor's coverage over the synthesized stream, one grid
 * point per workload.
 */

#include "bench_common.hh"

#include <array>
#include <map>

#include "common/csv.hh"
#include "compress/coc.hh"
#include "compress/fpc_bdi.hh"
#include "compress/wlc.hh"
#include "runner/grid.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        wb::banner("Figure 4",
                   "% compressed lines: WLC(k) vs COC vs FPC+BDI");

        const auto workloads = wb::allWorkloadNames();
        std::map<std::string, unsigned> slot;
        for (unsigned w = 0; w < workloads.size(); ++w)
            slot[workloads[w]] = w;

        // hits[w] = lines covered by {WLC k=4..9, COC, FPC+BDI};
        // each grid point owns one slot, so the parallel hooks never
        // contend.
        std::vector<std::array<uint64_t, 8>> hits(workloads.size());
        auto coverage =
            [&](const runner::ExperimentSpec &spec,
                const std::vector<trace::WriteTransaction> &txns) {
                const compress::Coc coc;
                const compress::FpcBdi fpcbdi;
                auto &h = hits[slot.at(spec.workload)];
                for (const auto &t : txns) {
                    const Line512 &data = t.newData;
                    for (unsigned k = 4; k <= 9; ++k)
                        h[k - 4] +=
                            compress::Wlc::lineCompressible(data, k);
                    // COC coverage at its 16/32-bit coset budgets.
                    const auto c = coc.compressedBits(data);
                    h[6] += c && *c <= 480;
                    const auto f = fpcbdi.compressedBits(data);
                    h[7] += f && *f <= 369;
                }
                trace::ReplayResult out;
                out.writes = txns.size();
                return out;
            };

        const auto results =
            wb::makeRunner("Figure 4")
                .run(runner::ExperimentGrid()
                         .workloads(workloads)
                         .schemes({"coverage"})
                         .lines(wb::linesPerWorkload())
                         .seed(2024)
                         .customReplay(coverage));
        wb::requireOk(results);

        const uint64_t lines = wb::linesPerWorkload();
        CsvTable table({"workload", "4-MSBs", "5-MSBs", "6-MSBs",
                        "7-MSBs", "8-MSBs", "9-MSBs", "COC",
                        "FPC+BDI"});
        std::array<double, 8> avg{};
        for (unsigned w = 0; w < workloads.size(); ++w) {
            table.newRow();
            table.add(workloads[w]);
            for (unsigned i = 0; i < 8; ++i) {
                const double pct = 100.0 * hits[w][i] / lines;
                table.add(pct);
                avg[i] += pct;
            }
        }
        table.newRow();
        table.add("ave.");
        for (double a : avg)
            table.add(a / workloads.size());
        table.write(std::cout);
        return 0;
    });
}
