/**
 * @file
 * Figure 4: percentage of memory lines compressed per benchmark by
 * WLC with k = 4..9 MSBs, by COC, and by FPC+BDI (DIN's threshold of
 * 369 bits).
 *
 * Expected shape: WLC compresses >91 % of lines for k <= 6, dropping
 * to ~50 % for k >= 7; COC covers >90 %; FPC+BDI only ~30 %.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "compress/coc.hh"
#include "compress/fpc_bdi.hh"
#include "compress/wlc.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    wb::banner("Figure 4",
               "% compressed lines: WLC(k) vs COC vs FPC+BDI");
    const compress::Coc coc;
    const compress::FpcBdi fpcbdi;
    CsvTable table({"workload", "4-MSBs", "5-MSBs", "6-MSBs",
                    "7-MSBs", "8-MSBs", "9-MSBs", "COC", "FPC+BDI"});

    const uint64_t lines = wb::linesPerWorkload();
    std::array<double, 8> avg{};
    for (const auto &p : trace::WorkloadProfile::all()) {
        trace::TraceSynthesizer synth(p, 2024);
        std::array<uint64_t, 8> hits{};
        for (uint64_t i = 0; i < lines; ++i) {
            const Line512 data = synth.next().newData;
            for (unsigned k = 4; k <= 9; ++k)
                hits[k - 4] +=
                    compress::Wlc::lineCompressible(data, k);
            // COC coverage at its 16/32-bit coset budgets.
            const auto c = coc.compressedBits(data);
            hits[6] += c && *c <= 480;
            const auto f = fpcbdi.compressedBits(data);
            hits[7] += f && *f <= 369;
        }
        table.newRow();
        table.add(p.name);
        for (unsigned i = 0; i < 8; ++i) {
            const double pct = 100.0 * hits[i] / lines;
            table.add(pct);
            avg[i] += pct;
        }
    }
    table.newRow();
    table.add("ave.");
    for (double a : avg)
        table.add(a / trace::WorkloadProfile::all().size());
    table.write(std::cout);
    return 0;
}
