/**
 * @file
 * Loopback throughput bench for the live write-stream service: an
 * in-process Server with N concurrent loopback clients, measured
 * once without telemetry and once with a client hammering STATS
 * every millisecond. The seqlock snapshot design claims telemetry
 * never stalls encode; the with-stats column should therefore sit
 * within noise of the quiet run (the ratio column makes the
 * comparison explicit, and WLCRC_SERVE_BENCH_CHECK=<minRatio> turns
 * it into a hard gate for CI perf smoke).
 *
 * Knobs: WLCRC_BENCH_LINES scales total writes (x10 per phase);
 * timing columns are volatile and masked by the golden harness.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hh"

#include "common/csv.hh"
#include "common/rng.hh"
#include "serve/client.hh"
#include "serve/server.hh"

namespace
{

using namespace wlcrc;

struct PhaseResult
{
    uint64_t writes = 0;
    double seconds = 0;
    uint64_t statsSnapshots = 0;
};

/** One measured session: @p conns clients, optional STATS hammer. */
PhaseResult
runPhase(uint64_t totalWrites, unsigned conns, bool pollStats)
{
    serve::ServerConfig cfg;
    cfg.engine.scheme = "WLCRC-16";
    cfg.engine.banks = conns;
    cfg.engine.seed = 7;
    serve::Server server(cfg);
    server.start();

    std::atomic<bool> done{false};
    std::atomic<uint64_t> snapshots{0};
    std::thread poller;
    if (pollStats) {
        poller = std::thread([&] {
            serve::Client c;
            c.connect("127.0.0.1", server.port());
            while (!done.load(std::memory_order_relaxed)) {
                (void)c.stats();
                snapshots.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        });
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (unsigned i = 0; i < conns; ++i) {
        clients.emplace_back([&, i] {
            // Independent per-client streams in disjoint address
            // windows: this measures encode throughput, not the
            // equivalence partitioning (tests cover that).
            trace::TraceSynthesizer synth(
                trace::WorkloadProfile::byName("lesl"),
                childSeed(7, i));
            const uint64_t offset = static_cast<uint64_t>(i) << 32;
            serve::Client client;
            client.connect("127.0.0.1", server.port());
            client.hello(i);
            std::vector<trace::WriteTransaction> frame;
            frame.reserve(64);
            for (uint64_t w = 0; w < totalWrites / conns; ++w) {
                trace::WriteTransaction txn = synth.next();
                txn.lineAddr += offset;
                frame.push_back(txn);
                if (frame.size() == 64) {
                    client.sendWrites(frame.data(), frame.size(),
                                      false);
                    frame.clear();
                }
            }
            if (!frame.empty())
                client.sendWrites(frame.data(), frame.size(), false);
            (void)client.bye();
        });
    }
    for (auto &t : clients)
        t.join();
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    done.store(true);
    if (poller.joinable())
        poller.join();
    server.requestStop();
    server.wait();

    PhaseResult r;
    r.writes = server.finalResult().replay.writes;
    r.seconds = elapsed;
    r.statsSnapshots = snapshots.load();
    return r;
}

} // namespace

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;
    return wb::benchMain([] {
        wb::banner("ServeLoopback",
                   "live service loopback throughput, quiet vs "
                   "STATS-hammered");

        const unsigned conns = 4;
        const uint64_t totalWrites = wb::linesPerWorkload() * 10;
        const auto quiet = runPhase(totalWrites, conns, false);
        const auto polled = runPhase(totalWrites, conns, true);

        const double quietRate =
            static_cast<double>(quiet.writes) / quiet.seconds;
        const double polledRate =
            static_cast<double>(polled.writes) / polled.seconds;
        const double ratio =
            quietRate > 0 ? polledRate / quietRate : 0.0;

        CsvTable table({"phase", "connections", "writes",
                        "stats_snapshots", "writes_per_sec"});
        table.newRow();
        table.add("quiet");
        table.add(conns);
        table.add(quiet.writes);
        table.add(quiet.statsSnapshots);
        table.add(quietRate);
        table.newRow();
        table.add("stats-hammered");
        table.add(conns);
        table.add(polled.writes);
        table.add(polled.statsSnapshots);
        table.add(polledRate);
        table.write(std::cout);
        std::fprintf(stderr,
                     "serve_loopback: hammered/quiet throughput "
                     "ratio %.3f (%llu snapshots)\n",
                     ratio,
                     static_cast<unsigned long long>(
                         polled.statsSnapshots));

        // Optional hard gate: snapshots must not meaningfully tax
        // encode. Off by default — loopback timing on shared CI
        // machines is noisy; perf smoke opts in with a loose bound.
        const double minRatio = wlcrc::envU64(
                                    "WLCRC_SERVE_BENCH_CHECK", 0)
                                    ? 0.5
                                    : 0.0;
        if (minRatio > 0 && ratio < minRatio) {
            std::fprintf(stderr,
                         "serve_loopback: ratio %.3f below gate "
                         "%.2f\n",
                         ratio, minRatio);
            return 1;
        }
        return 0;
    });
}
