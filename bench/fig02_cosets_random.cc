/**
 * @file
 * Figure 2: 6cosets vs 4cosets on random data for granularities
 * 8..128 — (a) aux energy, (b) data block energy, (c) total.
 *
 * Expected shape: 6cosets wins on both components for random data
 * (more candidates; cheaper 2-cell aux states), so its total is
 * lower everywhere.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "coset/mapping.hh"
#include "coset/ncosets_codec.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    wb::banner("Figure 2", "6cosets vs 4cosets on random data");
    const pcm::EnergyModel energy;
    CsvTable table({"scheme", "granularity_bits", "aux_pJ", "blk_pJ",
                    "total_pJ"});

    for (const unsigned g : {8u, 16u, 32u, 64u, 128u}) {
        for (const unsigned n : {6u, 4u}) {
            const auto cands = n == 6
                                   ? coset::sixCosetCandidates()
                                   : coset::tableICandidates(4);
            const coset::NCosetsCodec codec(energy, cands, g);
            const auto r = wb::runRandom(codec, wb::randomLines());
            table.addRow(std::to_string(n) + "cosets", g,
                         r.auxEnergyPj.mean(), r.dataEnergyPj.mean(),
                         r.energyPj.mean());
        }
    }
    table.write(std::cout);
    return 0;
}
