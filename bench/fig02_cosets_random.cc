/**
 * @file
 * Figure 2: 6cosets vs 4cosets on random data for granularities
 * 8..128 — (a) aux energy, (b) data block energy, (c) total.
 *
 * Expected shape: 6cosets wins on both components for random data
 * (more candidates; cheaper 2-cell aux states), so its total is
 * lower everywhere.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "runner/grid.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        wb::banner("Figure 2", "6cosets vs 4cosets on random data");

        const std::vector<unsigned> grans = {8, 16, 32, 64, 128};
        const auto defs = wb::sixVsFourCosetsDefs(grans);
        const auto results =
            wb::makeRunner("Figure 2")
                .run(runner::ExperimentGrid()
                         .randomSource()
                         .schemeDefs(defs)
                         .cacheSalt("fig02")
                         .lines(wb::randomLines())
                         .seed(4321)
                         .shards(wb::benchShards()));
        wb::requireOk(results);

        CsvTable table({"scheme", "granularity_bits", "aux_pJ",
                        "blk_pJ", "total_pJ"});
        std::size_t i = 0;
        for (const unsigned g : grans) {
            for (const unsigned n : {6u, 4u}) {
                const auto &r = results[i++].replay;
                table.addRow(std::to_string(n) + "cosets", g,
                             r.auxEnergyPj.mean(),
                             r.dataEnergyPj.mean(),
                             r.energyPj.mean());
            }
        }
        table.write(std::cout);
        return 0;
    });
}
