/**
 * @file
 * Figure 12: average updated cells per line write for WLC+4cosets,
 * WLC+3cosets and WLCRC at granularities 8/16/32/64 (suite average,
 * blk/aux split).
 *
 * Expected shape (paper): at 16-bit blocks WLCRC updates ~8-10 %
 * fewer cells than the unrestricted schemes; at 64-bit all schemes
 * converge.
 */

#include "granularity_sweep.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        wb::banner("Figure 12", "updated cells vs granularity");
        wb::writeGranularityTable(
            wb::granularitySweep("Figure 12"),
            {"scheme", "granularity_bits", "blk_cells", "aux_cells",
             "total_cells"},
            [](const trace::ReplayResult &r) {
                return r.dataUpdated.mean();
            },
            [](const trace::ReplayResult &r) {
                return r.auxUpdated.mean();
            });
        return 0;
    });
}
