/**
 * @file
 * Figure 12: average updated cells per line write for WLC+4cosets,
 * WLC+3cosets and WLCRC at granularities 8/16/32/64 (suite average,
 * blk/aux split).
 *
 * Expected shape (paper): at 16-bit blocks WLCRC updates ~8-10 %
 * fewer cells than the unrestricted schemes; at 64-bit all schemes
 * converge.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "wlcrc/wlc_cosets_codec.hh"
#include "wlcrc/wlcrc_codec.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    wb::banner("Figure 12", "updated cells vs granularity");
    const pcm::EnergyModel energy;
    CsvTable table({"scheme", "granularity_bits", "blk_cells",
                    "aux_cells", "total_cells"});

    const unsigned n = trace::WorkloadProfile::all().size();
    auto run_suite = [&](const coset::LineCodec &codec,
                         const std::string &name, unsigned g) {
        double blk = 0, aux = 0;
        for (const auto &p : trace::WorkloadProfile::all()) {
            const auto r =
                wb::runWorkload(codec, p, wb::linesPerWorkload());
            blk += r.dataUpdated.mean();
            aux += r.auxUpdated.mean();
        }
        table.addRow(name, g, blk / n, aux / n, (blk + aux) / n);
    };

    for (const unsigned g : {8u, 16u, 32u, 64u}) {
        const core::WlcCosetsCodec four(energy, 4, g);
        run_suite(four, "4cosets", g);
        const core::WlcCosetsCodec three(energy, 3, g);
        run_suite(three, "3cosets", g);
        const core::WlcrcCodec wlcrc(energy, g);
        run_suite(wlcrc, "WLCRC", g);
    }
    table.write(std::cout);
    return 0;
}
