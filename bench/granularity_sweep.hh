/**
 * @file
 * Shared driver for Figures 11/12/13: WLC+4cosets, WLC+3cosets and
 * WLCRC at granularities 8/16/32/64 over the whole workload suite,
 * with one blk/aux metric pair tabulated per figure.
 *
 * The {workload x (scheme, granularity)} grid executes on the
 * parallel experiment runner; suite averages are the arithmetic mean
 * of the per-workload means (every workload replays the same number
 * of lines), matching the paper's equal-weight benchmark averages.
 */

#ifndef WLCRC_BENCH_GRANULARITY_SWEEP_HH
#define WLCRC_BENCH_GRANULARITY_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/csv.hh"
#include "runner/grid.hh"
#include "wlcrc/wlc_cosets_codec.hh"
#include "wlcrc/wlcrc_codec.hh"

namespace wlcrc::bench
{

/** Per-write metric, e.g. the mean data-cell energy. */
using GranularityMetric =
    std::function<double(const trace::ReplayResult &)>;

/** One (scheme, granularity) series of a granularity figure. */
struct GranularityRow
{
    std::string scheme; //!< "4cosets" / "3cosets" / "WLCRC"
    unsigned granularity;
    std::vector<trace::ReplayResult> perWorkload; //!< suite order

    /** Equal-weight suite average of @p metric. */
    double
    suiteAverage(const GranularityMetric &metric) const
    {
        double total = 0;
        for (const auto &r : perWorkload)
            total += metric(r);
        return total / perWorkload.size();
    }
};

/**
 * Run the Figure 11-13 grid, one result row per (scheme,
 * granularity) in the figures' order (per granularity: 4cosets,
 * 3cosets, WLCRC).
 */
inline std::vector<GranularityRow>
granularitySweep(const std::string &label)
{
    std::vector<runner::SchemeDef> defs;
    std::vector<GranularityRow> rows;
    for (const unsigned g : {8u, 16u, 32u, 64u}) {
        for (const unsigned n : {4u, 3u}) {
            defs.push_back(
                {std::to_string(n) + "cosets-" + std::to_string(g),
                 [n, g](const pcm::EnergyModel &energy) {
                     return std::make_unique<core::WlcCosetsCodec>(
                         energy, n, g);
                 }});
            rows.push_back({std::to_string(n) + "cosets", g, {}});
        }
        defs.push_back({"WLCRC-" + std::to_string(g),
                        [g](const pcm::EnergyModel &energy) {
                            return std::make_unique<
                                core::WlcrcCodec>(energy, g);
                        }});
        rows.push_back({"WLCRC", g, {}});
    }

    const auto results =
        makeRunner(label).run(runner::ExperimentGrid()
                                  .workloads(allWorkloadNames())
                                  .schemeDefs(defs)
                                  // One shared axis serves figures
                                  // 11-13; per-figure metrics read
                                  // the same cached replays.
                                  .cacheSalt("granularity")
                                  .lines(linesPerWorkload())
                                  .seed(1234)
                                  .shards(benchShards()));
    requireOk(results);

    const unsigned nworkloads = trace::WorkloadProfile::all().size();
    for (std::size_t d = 0; d < defs.size(); ++d) {
        for (unsigned w = 0; w < nworkloads; ++w)
            rows[d].perWorkload.push_back(
                results[w * defs.size() + d].replay);
    }
    return rows;
}

/**
 * Print the figure's suite-average table: one row per (scheme,
 * granularity) with @p blk and @p aux averages plus their sum.
 */
inline void
writeGranularityTable(const std::vector<GranularityRow> &rows,
                      const std::vector<std::string> &header,
                      const GranularityMetric &blk,
                      const GranularityMetric &aux)
{
    CsvTable table(header);
    for (const auto &row : rows) {
        double b = 0, a = 0;
        for (const auto &r : row.perWorkload) {
            b += blk(r);
            a += aux(r);
        }
        const double n = row.perWorkload.size();
        table.addRow(row.scheme, row.granularity, b / n, a / n,
                     (b + a) / n);
    }
    table.write(std::cout);
}

} // namespace wlcrc::bench

#endif // WLCRC_BENCH_GRANULARITY_SWEEP_HH
