/**
 * @file
 * Ablation study for the design choices DESIGN.md calls out:
 *
 *  1. restricted coset groups — {C1,C2}/{C1,C3} (paper) vs the
 *     unrestricted 3cosets and 4cosets at the same granularity;
 *  2. the frequency-ordered aux-cell mappings vs the per-block
 *     selector budget of the unrestricted schemes;
 *  3. the multi-objective and disturbance-aware selection modes
 *     (Section VIII-D and the paper's future work).
 *
 * Reports suite-average energy / updated cells / disturbance for
 * each variant at 16-bit granularity.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "pcm/disturbance.hh"
#include "runner/grid.hh"
#include "wlcrc/wlc_cosets_codec.hh"
#include "wlcrc/wlcrc_codec.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        wb::banner("Ablation",
                   "WLCRC design-choice ablation at 16-bit");

        const std::vector<runner::SchemeDef> defs = {
            {"WLCRC-16 (restricted, paper)",
             [](const pcm::EnergyModel &energy) {
                 return std::make_unique<core::WlcrcCodec>(energy,
                                                           16);
             }},
            {"WLC+3cosets-16 (unrestricted, k=9)",
             [](const pcm::EnergyModel &energy) {
                 return std::make_unique<core::WlcCosetsCodec>(
                     energy, 3, 16);
             }},
            {"WLC+4cosets-16 (unrestricted, k=9)",
             [](const pcm::EnergyModel &energy) {
                 return std::make_unique<core::WlcCosetsCodec>(
                     energy, 4, 16);
             }},
            {"WLCRC-16 multi-objective (T=1%)",
             [](const pcm::EnergyModel &energy) {
                 return std::make_unique<core::WlcrcCodec>(energy, 16,
                                                           0.01);
             }},
            {"WLCRC-16 disturbance-aware (future work)",
             [](const pcm::EnergyModel &energy) {
                 return std::make_unique<core::WlcrcCodec>(
                     core::WlcrcCodec::disturbanceAware(
                         energy, pcm::DisturbanceModel(), 16));
             }},
            {"WLCRC-16 disturbance-aware (lambda=1200)",
             [](const pcm::EnergyModel &energy) {
                 return std::make_unique<core::WlcrcCodec>(
                     core::WlcrcCodec::disturbanceAware(
                         energy, pcm::DisturbanceModel(), 16,
                         1200.0));
             }},
        };

        const auto results =
            wb::makeRunner("Ablation")
                .run(runner::ExperimentGrid()
                         .workloads(wb::allWorkloadNames())
                         .schemeDefs(defs)
                         .cacheSalt("ablation")
                         .lines(wb::linesPerWorkload())
                         .seed(1234)
                         .shards(wb::benchShards()));
        wb::requireOk(results);

        CsvTable table({"variant", "energy_pJ", "updated_cells",
                        "disturb_errors"});
        for (std::size_t d = 0; d < defs.size(); ++d) {
            table.addRow(
                defs[d].name,
                wb::suiteAverage(results, defs.size(), d,
                                 [](const trace::ReplayResult &r) {
                                     return r.energyPj.mean();
                                 }),
                wb::suiteAverage(results, defs.size(), d,
                                 [](const trace::ReplayResult &r) {
                                     return r.updatedCells.mean();
                                 }),
                wb::suiteAverage(results, defs.size(), d,
                                 [](const trace::ReplayResult &r) {
                                     return r.disturbErrors.mean();
                                 }));
        }
        table.write(std::cout);
        return 0;
    });
}
