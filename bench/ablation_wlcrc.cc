/**
 * @file
 * Ablation study for the design choices DESIGN.md calls out:
 *
 *  1. restricted coset groups — {C1,C2}/{C1,C3} (paper) vs the
 *     unrestricted 3cosets and 4cosets at the same granularity;
 *  2. the frequency-ordered aux-cell mappings vs the per-block
 *     selector budget of the unrestricted schemes;
 *  3. the multi-objective and disturbance-aware selection modes
 *     (Section VIII-D and the paper's future work).
 *
 * Reports suite-average energy / updated cells / disturbance for
 * each variant at 16-bit granularity.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "wlcrc/factory.hh"
#include "wlcrc/wlc_cosets_codec.hh"
#include "wlcrc/wlcrc_codec.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    wb::banner("Ablation", "WLCRC design-choice ablation at 16-bit");
    const pcm::EnergyModel energy;
    const pcm::DisturbanceModel disturb;
    CsvTable table({"variant", "energy_pJ", "updated_cells",
                    "disturb_errors"});

    auto run = [&](const coset::LineCodec &codec,
                   const std::string &label) {
        double e = 0, u = 0, d = 0;
        const auto &all = trace::WorkloadProfile::all();
        for (const auto &p : all) {
            const auto r =
                wb::runWorkload(codec, p, wb::linesPerWorkload());
            e += r.energyPj.mean();
            u += r.updatedCells.mean();
            d += r.disturbErrors.mean();
        }
        table.addRow(label, e / all.size(), u / all.size(),
                     d / all.size());
    };

    const core::WlcrcCodec restricted(energy, 16);
    run(restricted, "WLCRC-16 (restricted, paper)");
    const core::WlcCosetsCodec un3(energy, 3, 16);
    run(un3, "WLC+3cosets-16 (unrestricted, k=9)");
    const core::WlcCosetsCodec un4(energy, 4, 16);
    run(un4, "WLC+4cosets-16 (unrestricted, k=9)");
    const core::WlcrcCodec mo(energy, 16, 0.01);
    run(mo, "WLCRC-16 multi-objective (T=1%)");
    const auto da = core::WlcrcCodec::disturbanceAware(
        energy, disturb, 16);
    run(da, "WLCRC-16 disturbance-aware (future work)");
    const auto da_strong = core::WlcrcCodec::disturbanceAware(
        energy, disturb, 16, 1200.0);
    run(da_strong, "WLCRC-16 disturbance-aware (lambda=1200)");

    table.write(std::cout);
    return 0;
}
