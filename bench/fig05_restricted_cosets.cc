/**
 * @file
 * Figure 5: 4cosets vs 3cosets vs restricted 3-r-cosets on the
 * biased workloads, granularities 8..128 — (a) aux, (b) data block,
 * (c) total write energy.
 *
 * Expected shape: 3cosets costs only slightly more than 4cosets;
 * 3-r-cosets (one group bit per line + one bit per block) cuts aux
 * energy without giving up much data-block energy.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "coset/mapping.hh"
#include "coset/ncosets_codec.hh"
#include "coset/restricted_codec.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    wb::banner("Figure 5",
               "4cosets vs 3cosets vs 3-r-cosets (biased workloads)");
    const pcm::EnergyModel energy;
    CsvTable table({"scheme", "granularity_bits", "aux_pJ", "blk_pJ",
                    "total_pJ"});

    const unsigned nworkloads = trace::WorkloadProfile::all().size();
    auto run_suite = [&](const coset::LineCodec &codec,
                         const std::string &name, unsigned g) {
        double aux = 0, blk = 0;
        for (const auto &p : trace::WorkloadProfile::all()) {
            const auto r =
                wb::runWorkload(codec, p, wb::linesPerWorkload());
            aux += r.auxEnergyPj.mean();
            blk += r.dataEnergyPj.mean();
        }
        table.addRow(name, g, aux / nworkloads, blk / nworkloads,
                     (aux + blk) / nworkloads);
    };

    for (const unsigned g : {8u, 16u, 32u, 64u, 128u}) {
        const coset::NCosetsCodec four(
            energy, coset::tableICandidates(4), g);
        run_suite(four, "4cosets", g);
        const coset::NCosetsCodec three(
            energy, coset::tableICandidates(3), g);
        run_suite(three, "3cosets", g);
        const coset::RestrictedCosetsCodec restricted(energy, g);
        run_suite(restricted, "3-r-cosets", g);
    }
    table.write(std::cout);
    return 0;
}
