/**
 * @file
 * Figure 5: 4cosets vs 3cosets vs restricted 3-r-cosets on the
 * biased workloads, granularities 8..128 — (a) aux, (b) data block,
 * (c) total write energy.
 *
 * Expected shape: 3cosets costs only slightly more than 4cosets;
 * 3-r-cosets (one group bit per line + one bit per block) cuts aux
 * energy without giving up much data-block energy.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "coset/mapping.hh"
#include "coset/ncosets_codec.hh"
#include "coset/restricted_codec.hh"
#include "runner/grid.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        wb::banner(
            "Figure 5",
            "4cosets vs 3cosets vs 3-r-cosets (biased workloads)");

        std::vector<runner::SchemeDef> defs;
        std::vector<std::pair<std::string, unsigned>> rows;
        for (const unsigned g : {8u, 16u, 32u, 64u, 128u}) {
            for (const unsigned n : {4u, 3u}) {
                defs.push_back(
                    {std::to_string(n) + "cosets-" +
                         std::to_string(g),
                     [n, g](const pcm::EnergyModel &energy) {
                         return std::make_unique<
                             coset::NCosetsCodec>(
                             energy, coset::tableICandidates(n), g);
                     }});
                rows.emplace_back(std::to_string(n) + "cosets", g);
            }
            defs.push_back(
                {"3-r-cosets-" + std::to_string(g),
                 [g](const pcm::EnergyModel &energy) {
                     return std::make_unique<
                         coset::RestrictedCosetsCodec>(energy, g);
                 }});
            rows.emplace_back("3-r-cosets", g);
        }

        const auto results =
            wb::makeRunner("Figure 5")
                .run(runner::ExperimentGrid()
                         .workloads(wb::allWorkloadNames())
                         .schemeDefs(defs)
                         .cacheSalt("fig05")
                         .lines(wb::linesPerWorkload())
                         .seed(1234)
                         .shards(wb::benchShards()));
        wb::requireOk(results);

        const double nworkloads =
            trace::WorkloadProfile::all().size();
        CsvTable table({"scheme", "granularity_bits", "aux_pJ",
                        "blk_pJ", "total_pJ"});
        for (std::size_t d = 0; d < defs.size(); ++d) {
            const double aux =
                wb::suiteSum(results, defs.size(), d,
                             [](const trace::ReplayResult &r) {
                                 return r.auxEnergyPj.mean();
                             });
            const double blk =
                wb::suiteSum(results, defs.size(), d,
                             [](const trace::ReplayResult &r) {
                                 return r.dataEnergyPj.mean();
                             });
            table.addRow(rows[d].first, rows[d].second,
                         aux / nworkloads, blk / nworkloads,
                         (aux + blk) / nworkloads);
        }
        table.write(std::cout);
        return 0;
    });
}
