/**
 * @file
 * Section VI-B: hardware overhead of the WLCRC pipeline (Figure 7)
 * from the analytic 45 nm model — area, write/read delay and
 * per-access energy for each granularity, the WLC-only portion, and
 * the 6cosets comparison point.
 *
 * Paper reference values (Synopsys DC, FreePDK45, WLCRC-16):
 * 0.0498 mm^2, 2.63 ns write, 0.89 ns read, 0.94 pJ write, 0.27 pJ
 * read; WLC portion 0.0002 mm^2 / 0.13 ns / 0.0017 pJ.
 *
 * No transactions are replayed: each module evaluation is a
 * zero-line grid point whose custom replay hook fills its own
 * result slot, so the table rides the same runner/progress/golden
 * machinery as every other bench.
 */

#include "bench_common.hh"

#include <functional>

#include "common/csv.hh"
#include "hw/synth_model.hh"
#include "runner/grid.hh"
#include "runner/runner.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        std::printf("# Section VI-B: analytic 45nm hardware model\n");

        const hw::SynthModel model;
        const std::vector<
            std::pair<std::string, std::function<hw::SynthResult()>>>
            modules = {
                {"WLCRC-8", [&] { return model.wlcrc(8); }},
                {"WLCRC-16", [&] { return model.wlcrc(16); }},
                {"WLCRC-32", [&] { return model.wlcrc(32); }},
                {"WLCRC-64", [&] { return model.wlcrc(64); }},
                {"WLC-only", [&] { return model.wlcOnly(); }},
                {"6cosets-512", [&] { return model.nCosets(6, 512); }},
            };

        std::vector<hw::SynthResult> slots(modules.size());
        std::vector<runner::ExperimentSpec> specs;
        for (std::size_t m = 0; m < modules.size(); ++m) {
            runner::ExperimentSpec spec;
            spec.scheme = modules[m].first;
            spec.random = true; // zero-line source; stream unused
            spec.lines = 0;
            spec.customReplay =
                [&modules, &slots, m](
                    const runner::ExperimentSpec &,
                    const std::vector<trace::WriteTransaction> &) {
                    slots[m] = modules[m].second();
                    return trace::ReplayResult{};
                };
            specs.push_back(std::move(spec));
        }

        wb::requireOk(
            wb::makeRunner("Section VI-B").run(specs));

        CsvTable table({"module", "area_mm2", "write_delay_ns",
                        "read_delay_ns", "write_energy_pJ",
                        "read_energy_pJ", "gates"});
        for (std::size_t m = 0; m < modules.size(); ++m) {
            const auto &r = slots[m];
            table.addRow(modules[m].first, r.areaMm2, r.writeDelayNs,
                         r.readDelayNs, r.writeEnergyPj,
                         r.readEnergyPj, r.gateCount);
        }
        table.write(std::cout);
        return 0;
    });
}
