/**
 * @file
 * Section VI-B: hardware overhead of the WLCRC pipeline (Figure 7)
 * from the analytic 45 nm model — area, write/read delay and
 * per-access energy for each granularity, the WLC-only portion, and
 * the 6cosets comparison point.
 *
 * Paper reference values (Synopsys DC, FreePDK45, WLCRC-16):
 * 0.0498 mm^2, 2.63 ns write, 0.89 ns read, 0.94 pJ write, 0.27 pJ
 * read; WLC portion 0.0002 mm^2 / 0.13 ns / 0.0017 pJ.
 */

#include <cstdio>
#include <iostream>

#include "common/csv.hh"
#include "hw/synth_model.hh"

int
main()
{
    using namespace wlcrc;
    std::printf("# Section VI-B: analytic 45nm hardware model\n");
    CsvTable table({"module", "area_mm2", "write_delay_ns",
                    "read_delay_ns", "write_energy_pJ",
                    "read_energy_pJ", "gates"});

    const hw::SynthModel model;
    for (const unsigned g : {8u, 16u, 32u, 64u}) {
        const auto r = model.wlcrc(g);
        table.addRow("WLCRC-" + std::to_string(g), r.areaMm2,
                     r.writeDelayNs, r.readDelayNs, r.writeEnergyPj,
                     r.readEnergyPj, r.gateCount);
    }
    const auto wlc = model.wlcOnly();
    table.addRow("WLC-only", wlc.areaMm2, wlc.writeDelayNs,
                 wlc.readDelayNs, wlc.writeEnergyPj,
                 wlc.readEnergyPj, wlc.gateCount);
    const auto six = model.nCosets(6, 512);
    table.addRow("6cosets-512", six.areaMm2, six.writeDelayNs,
                 six.readDelayNs, six.writeEnergyPj,
                 six.readEnergyPj, six.gateCount);
    table.write(std::cout);
    return 0;
}
