/**
 * @file
 * Figure 14: sensitivity of WLCRC-16's write-energy improvement
 * (relative to the differential-write baseline) to the SET energy of
 * the intermediate/high states S3 and S4.
 *
 * Expected shape (paper): the improvement shrinks as S3/S4 get
 * cheaper but stays >= ~32 % even at a >6x reduction.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "coset/baseline_codec.hh"
#include "wlcrc/wlcrc_codec.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    wb::banner("Figure 14",
               "WLCRC-16 improvement vs intermediate state energy");
    CsvTable table({"S3_set_pJ", "S4_set_pJ", "baseline_pJ",
                    "wlcrc16_pJ", "improvement_pct"});

    const std::vector<std::pair<double, double>> levels = {
        {307, 547}, {152, 273}, {75, 135}, {50, 80}};
    for (const auto &[s3, s4] : levels) {
        const auto energy =
            pcm::EnergyModel::withHighStateEnergies(s3, s4);
        const coset::BaselineCodec base(energy);
        const core::WlcrcCodec wlcrc(energy, 16);
        auto mean_energy = [](const trace::ReplayResult &r) {
            return r.energyPj.mean();
        };
        const double be = wb::suiteAverage(
            base, wb::linesPerWorkload(), mean_energy);
        const double we = wb::suiteAverage(
            wlcrc, wb::linesPerWorkload(), mean_energy);
        table.addRow(s3, s4, be, we, 100.0 * (1 - we / be));
    }
    table.write(std::cout);
    return 0;
}
