/**
 * @file
 * Figure 14: sensitivity of WLCRC-16's write-energy improvement
 * (relative to the differential-write baseline) to the SET energy of
 * the intermediate/high states S3 and S4.
 *
 * Expected shape (paper): the improvement shrinks as S3/S4 get
 * cheaper but stays >= ~32 % even at a >6x reduction.
 *
 * The S3/S4 levels ride the grid's device-config axis; the runner
 * rebuilds each grid point's energy model from its DeviceConfig.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "runner/grid.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        wb::banner(
            "Figure 14",
            "WLCRC-16 improvement vs intermediate state energy");

        const std::vector<std::pair<double, double>> levels = {
            {307, 547}, {152, 273}, {75, 135}, {50, 80}};
        std::vector<runner::DeviceConfig> configs;
        for (const auto &[s3, s4] : levels) {
            runner::DeviceConfig cfg;
            cfg.s3 = s3;
            cfg.s4 = s4;
            configs.push_back(cfg);
        }

        const std::vector<std::string> schemes = {"Baseline",
                                                  "WLCRC-16"};
        const auto results =
            wb::makeRunner("Figure 14")
                .run(runner::ExperimentGrid()
                         .workloads(wb::allWorkloadNames())
                         .schemes(schemes)
                         .deviceConfigs(configs)
                         .lines(wb::linesPerWorkload())
                         .seed(1234)
                         .shards(wb::benchShards()));
        wb::requireOk(results);

        // Equal-weight suite average of (scheme s, config c); the
        // expansion is workload-major, then scheme, then config.
        const unsigned nworkloads =
            trace::WorkloadProfile::all().size();
        auto suite_energy = [&](unsigned s, unsigned c) {
            double total = 0;
            for (unsigned w = 0; w < nworkloads; ++w) {
                const auto idx =
                    (w * schemes.size() + s) * configs.size() + c;
                total += results[idx].replay.energyPj.mean();
            }
            return total / nworkloads;
        };

        CsvTable table({"S3_set_pJ", "S4_set_pJ", "baseline_pJ",
                        "wlcrc16_pJ", "improvement_pct"});
        for (unsigned c = 0; c < configs.size(); ++c) {
            const double be = suite_energy(0, c);
            const double we = suite_energy(1, c);
            table.addRow(levels[c].first, levels[c].second, be, we,
                         100.0 * (1 - we / be));
        }
        table.write(std::cout);
        return 0;
    });
}
