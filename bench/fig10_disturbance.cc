/**
 * @file
 * Figure 10: average write disturbance errors per line write for
 * all schemes across the benchmark suite.
 *
 * Expected shape (paper): all schemes average three to four errors
 * per 512-bit write; DIN highest (it writes the most cells); the
 * WLC-based schemes sit near the minimum; intensive workloads
 * (lesl, milc) reach seven to nine.
 */

#include "scheme_sweep.hh"

int
main()
{
    namespace wb = wlcrc::bench;
    return wb::benchMain([] {
        wb::banner("Figure 10", "write disturbance errors per line");
        const auto grand = wb::schemeSweep(
            "disturbance", [](const wlcrc::trace::ReplayResult &r) {
                return r.disturbErrors.mean();
            });
        wb::headline(grand, "WLCRC-16", "Baseline");
        wb::headline(grand, "WLCRC-16", "DIN");
        return 0;
    });
}
