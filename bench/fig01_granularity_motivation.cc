/**
 * @file
 * Figure 1: write energy of 6cosets + differential write as the
 * encoding granularity sweeps 8..512 bits, split into data-block
 * (blk) and auxiliary (aux) energy, for (a) random data and
 * (b) the biased SPEC/PARSEC workloads.
 *
 * Expected shape: blk energy falls as granularity shrinks; aux
 * energy grows and peaks at 8-bit blocks, where it neutralises much
 * of the gain — the paper's motivating observation.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "coset/mapping.hh"
#include "coset/ncosets_codec.hh"
#include "runner/grid.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        wb::banner("Figure 1",
                   "6cosets write energy vs data block granularity");

        const std::vector<unsigned> grans = {8,  16,  32,  64,
                                             128, 256, 512};
        std::vector<runner::SchemeDef> defs;
        for (const unsigned g : grans) {
            defs.push_back(
                {"6cosets-" + std::to_string(g),
                 [g](const pcm::EnergyModel &energy) {
                     return std::make_unique<coset::NCosetsCodec>(
                         energy, coset::sixCosetCandidates(), g);
                 }});
        }

        // One combined run: the 7 random points, then the
        // {workload x granularity} block, workload-major.
        auto specs = runner::ExperimentGrid()
                         .randomSource()
                         .schemeDefs(defs)
                         .cacheSalt("fig01")
                         .lines(wb::randomLines())
                         .seed(4321)
                         .shards(wb::benchShards())
                         .expand();
        const auto biased = runner::ExperimentGrid()
                                .workloads(wb::allWorkloadNames())
                                .schemeDefs(defs)
                         .cacheSalt("fig01")
                                .lines(wb::linesPerWorkload())
                                .seed(1234)
                                .shards(wb::benchShards())
                                .expand();
        specs.insert(specs.end(), biased.begin(), biased.end());

        const auto results =
            wb::makeRunner("Figure 1").run(specs);
        wb::requireOk(results);

        const unsigned nworkloads =
            trace::WorkloadProfile::all().size();
        CsvTable table({"workload_class", "granularity_bits",
                        "blk_pJ", "aux_pJ", "total_pJ"});
        for (std::size_t gi = 0; gi < grans.size(); ++gi) {
            const auto &random = results[gi].replay;
            table.addRow("random", grans[gi],
                         random.dataEnergyPj.mean(),
                         random.auxEnergyPj.mean(),
                         random.energyPj.mean());
            double blk = 0, aux = 0;
            for (unsigned w = 0; w < nworkloads; ++w) {
                const auto &r =
                    results[grans.size() * (1 + w) + gi].replay;
                blk += r.dataEnergyPj.mean();
                aux += r.auxEnergyPj.mean();
            }
            table.addRow("biased", grans[gi], blk / nworkloads,
                         aux / nworkloads,
                         (blk + aux) / nworkloads);
        }
        table.write(std::cout);
        return 0;
    });
}
