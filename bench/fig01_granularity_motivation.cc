/**
 * @file
 * Figure 1: write energy of 6cosets + differential write as the
 * encoding granularity sweeps 8..512 bits, split into data-block
 * (blk) and auxiliary (aux) energy, for (a) random data and
 * (b) the biased SPEC/PARSEC workloads.
 *
 * Expected shape: blk energy falls as granularity shrinks; aux
 * energy grows and peaks at 8-bit blocks, where it neutralises much
 * of the gain — the paper's motivating observation.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "coset/mapping.hh"
#include "coset/ncosets_codec.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    wb::banner("Figure 1",
               "6cosets write energy vs data block granularity");
    const pcm::EnergyModel energy;
    CsvTable table({"workload_class", "granularity_bits", "blk_pJ",
                    "aux_pJ", "total_pJ"});

    for (const unsigned g : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
        const coset::NCosetsCodec codec(
            energy, coset::sixCosetCandidates(), g);
        // (a) random workloads.
        const auto random =
            wb::runRandom(codec, wb::randomLines());
        table.addRow("random", g, random.dataEnergyPj.mean(),
                     random.auxEnergyPj.mean(),
                     random.energyPj.mean());
        // (b) biased workloads (suite average).
        double blk = 0, aux = 0;
        for (const auto &p : trace::WorkloadProfile::all()) {
            const auto r =
                wb::runWorkload(codec, p, wb::linesPerWorkload());
            blk += r.dataEnergyPj.mean();
            aux += r.auxEnergyPj.mean();
        }
        const unsigned n = trace::WorkloadProfile::all().size();
        table.addRow("biased", g, blk / n, aux / n,
                     (blk + aux) / n);
    }
    table.write(std::cout);
    return 0;
}
