/**
 * @file
 * Trace-store I/O benchmark and the container subsystem's tracked
 * perf baseline: compression ratio, block decode bandwidth, cold
 * replay throughput with synchronous vs decode-ahead block staging,
 * and the index-pruning win of range-sharded replay over a sorted
 * corpus.
 *
 * Corpus: one low-write-intensity synthesized stream (libq — the
 * suite's most compressible profile) written four ways: WLCTRC02,
 * WLCTRC03+lz in arrival order, and both again in sorted line-address
 * order (what `wlcrc_trace sort` produces; same-line records become
 * adjacent, which is where the LZ codec earns its keep).
 *
 * Knobs (on top of the usual WLCRC_BENCH_* set):
 *   WLCRC_BENCH_TRACE_LINES  corpus writes (default 120000)
 *   WLCRC_BENCH_JSON_OUT     write the BENCH_trace.json report
 *   WLCRC_BENCH_BASELINE     baseline CSV override (default: the
 *       checked-in bench/baselines/trace_io.baseline.csv)
 *   WLCRC_BENCH_CHECK=0.75   exit non-zero if decode MB/s or replay
 *       writes/s falls below this fraction of its baseline entry
 *       (machine-specific, like the encode_hot_path gate)
 *   WLCRC_TRACE_RATIO_FLOOR  minimum sorted-corpus compression
 *       ratio (default 5.0; deterministic, so always enforced)
 *   WLCRC_TRACE_AHEAD_FLOOR  when set, minimum decode-ahead replay
 *       speedup over synchronous decode; needs >= 2 cores to mean
 *       anything, so it is skipped (with a note) on 1-cpu machines
 *
 * Refresh the checked-in baseline after an intended perf change:
 *   ./bench_trace_io --update-baseline [path]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/csv.hh"
#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "tracefile/mapped_trace.hh"
#include "tracefile/source.hh"
#include "tracefile/writer.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

#include <unistd.h>

namespace
{

using namespace wlcrc;
namespace fs = std::filesystem;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
writeCorpus(const std::string &path,
            const std::vector<trace::WriteTransaction> &txns,
            tracefile::TraceFormat format)
{
    tracefile::WriterOptions opts;
    opts.format = format;
    tracefile::TraceFileWriter writer(path, opts);
    for (const auto &t : txns)
        writer.write(t);
    writer.close();
}

/** Full-file block decode bandwidth (verify + decompress), MB/s. */
double
decodeMbPerSec(const std::string &path, unsigned passes)
{
    const tracefile::MappedTrace trace(path);
    std::vector<uint8_t> scratch;
    double best = 0;
    for (unsigned p = 0; p < passes; ++p) {
        uint64_t records = 0;
        const auto start = std::chrono::steady_clock::now();
        for (uint64_t b = 0; b < trace.blockCount(); ++b)
            records += trace.readBlock(b, scratch).count;
        const double secs = secondsSince(start);
        const double mb = static_cast<double>(records) *
                          tracefile::recordBytes / 1e6;
        best = std::max(best, secs > 0 ? mb / secs : 0.0);
    }
    return best;
}

/**
 * Cold single-cursor replay throughput, writes/s. @p aheadDepth is
 * exported through WLCRC_DECODE_AHEAD before the cursor opens, so
 * this times exactly what a runner shard sees with that setting.
 */
double
replayWritesPerSec(const std::string &path, unsigned aheadDepth,
                   unsigned passes, double *energyOut)
{
    ::setenv("WLCRC_DECODE_AHEAD",
             std::to_string(aheadDepth).c_str(), 1);
    const auto source = tracefile::openTraceSource(path);
    const pcm::EnergyModel energy;
    const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
    const auto codec = core::makeCodec("WLCRC-16", energy);
    double best = 0;
    for (unsigned p = 0; p < passes; ++p) {
        auto cursor = source->open({});
        trace::Replayer rep(*codec, unit, 7);
        uint64_t writes = 0;
        const auto start = std::chrono::steady_clock::now();
        rep.runBatch([&](trace::WriteTransaction &slot) {
            auto t = cursor->next();
            if (!t)
                return false;
            slot = *t;
            ++writes;
            return true;
        });
        const double secs = secondsSince(start);
        best = std::max(best,
                        secs > 0 ? static_cast<double>(writes) / secs
                                 : 0.0);
        if (energyOut)
            *energyOut = rep.result().energyPj.mean();
    }
    ::unsetenv("WLCRC_DECODE_AHEAD");
    return best;
}

/** Sum of blocks decoded by every shard cursor of a sharded scan. */
uint64_t
blocksVisitedSharded(const tracefile::TransactionSource &source,
                     unsigned shards, tracefile::Partition mode)
{
    uint64_t visited = 0;
    for (unsigned s = 0; s < shards; ++s) {
        tracefile::ShardFilter filter{shards, s};
        if (mode == tracefile::Partition::range)
            filter = tracefile::rangePartition(source.addrBounds(),
                                               shards, s);
        auto cursor = source.open(filter);
        while (cursor->next()) {
        }
        visited += cursor->blocksVisited();
    }
    return visited;
}

std::map<std::string, double>
readBaseline(const std::string &path)
{
    std::map<std::string, double> out;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' ||
            line.rfind("metric,", 0) == 0)
            continue;
        const auto comma = line.find(',');
        if (comma == std::string::npos)
            continue;
        out[line.substr(0, comma)] =
            std::strtod(line.c_str() + comma + 1, nullptr);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    namespace wb = wlcrc::bench;

    return wb::benchMain([argc, argv] {
        const uint64_t lines =
            envU64("WLCRC_BENCH_TRACE_LINES", 120000);
        const unsigned passes = 3;
        const unsigned shards = 8;
        const unsigned aheadDepth = static_cast<unsigned>(
            envU64("WLCRC_DECODE_AHEAD", 4));
        const unsigned cpus = std::thread::hardware_concurrency();

        bool update_baseline = false;
        std::string baseline_path = WLCRC_TRACE_BASELINE;
        for (int a = 1; a < argc; ++a) {
            const std::string arg = argv[a];
            if (arg == "--update-baseline")
                update_baseline = true;
            else
                baseline_path = arg;
        }
        if (const char *env = std::getenv("WLCRC_BENCH_BASELINE"))
            baseline_path = env;

        // Corpus: arrival order + a locality-sorted copy
        // (stable by line address — what `wlcrc_trace sort` emits).
        trace::TraceSynthesizer synth(
            trace::WorkloadProfile::byName("libq"), 2718);
        std::vector<trace::WriteTransaction> txns;
        txns.reserve(lines);
        for (uint64_t i = 0; i < lines; ++i)
            txns.push_back(synth.next());
        std::vector<trace::WriteTransaction> sorted = txns;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const trace::WriteTransaction &a,
                            const trace::WriteTransaction &b) {
                             return a.lineAddr < b.lineAddr;
                         });

        const fs::path dir =
            fs::temp_directory_path() /
            ("wlcrc_trace_io." + std::to_string(::getpid()));
        fs::create_directories(dir);
        const std::string unV2 = (dir / "un.v2.trc").string();
        const std::string unV3 = (dir / "un.v3.trc").string();
        const std::string soV3 = (dir / "so.v3.trc").string();
        writeCorpus(unV2, txns, tracefile::TraceFormat::v2);
        writeCorpus(unV3, txns, tracefile::TraceFormat::v3);
        writeCorpus(soV3, sorted, tracefile::TraceFormat::v3);

        const double rawMb = static_cast<double>(lines) *
                             tracefile::recordBytes / 1e6;
        const auto ratioOf = [](const std::string &path) {
            const tracefile::MappedTrace t(path);
            return t.storedBytes()
                       ? static_cast<double>(t.records()) *
                             tracefile::recordBytes /
                             static_cast<double>(t.storedBytes())
                       : 0.0;
        };
        const double ratioUnsorted = ratioOf(unV3);
        const double ratioSorted = ratioOf(soV3);

        const double decodeMbs = decodeMbPerSec(soV3, passes);
        double syncEnergy = 0, aheadEnergy = 0;
        const double syncWps =
            replayWritesPerSec(soV3, 0, passes, &syncEnergy);
        const double aheadWps = replayWritesPerSec(
            soV3, aheadDepth, passes, &aheadEnergy);
        if (syncEnergy != aheadEnergy)
            throw std::runtime_error(
                "decode-ahead replay diverged from synchronous "
                "replay — staging must be result-invariant");
        const double speedup = syncWps > 0 ? aheadWps / syncWps : 0;

        // Pruning: unsorted+modulo (the legacy worst case — every
        // block holds every residue) vs sorted+range.
        const tracefile::MappedTraceSource unsortedSrc(unV3);
        const tracefile::MappedTraceSource sortedSrc(soV3);
        const uint64_t blocks =
            unsortedSrc.trace().blockCount() * shards;
        const uint64_t moduloVisited =
            blocksVisitedSharded(unsortedSrc, shards,
                                 tracefile::Partition::modulo);
        const uint64_t rangeVisited = blocksVisitedSharded(
            sortedSrc, shards, tracefile::Partition::range);

        std::remove(unV2.c_str());
        std::remove(unV3.c_str());
        std::remove(soV3.c_str());
        std::error_code ec;
        fs::remove(dir, ec);

        std::cout << "# trace_io: container compression, decode and "
                     "replay throughput\n"
                  << "# lines=" << lines << " raw_mb=" << rawMb
                  << " cpus=" << cpus << " shards=" << shards
                  << " decode_ahead=" << aheadDepth << "\n";
        CsvTable table({"metric", "value"});
        table.addRow("compression_ratio_unsorted", ratioUnsorted);
        table.addRow("compression_ratio_sorted", ratioSorted);
        table.addRow("decode_mb_per_sec", decodeMbs);
        table.addRow("replay_sync_writes_per_sec", syncWps);
        table.addRow("replay_ahead_writes_per_sec", aheadWps);
        table.addRow("decode_ahead_speedup", speedup);
        table.addRow("sharded_blocks_total", blocks);
        table.addRow("blocks_visited_modulo_unsorted",
                     moduloVisited);
        table.addRow("blocks_visited_range_sorted", rangeVisited);
        table.write(std::cout);

        if (update_baseline) {
            std::ofstream out(baseline_path);
            out << "# Trace I/O throughput baseline for "
                   "bench/trace_io (best of "
                << passes
                << " passes, WLCRC_BENCH_TRACE_LINES=" << lines
                << ", cpus=" << cpus
                << ").\n# Machine-specific; refresh with:\n"
                   "#   ./bench_trace_io --update-baseline\n"
                << "metric,value\n"
                << "decode_mb_per_sec," << decodeMbs << "\n"
                << "replay_sync_writes_per_sec," << syncWps << "\n";
            std::fprintf(stderr, "baseline written to %s\n",
                         baseline_path.c_str());
        }

        if (const char *json =
                std::getenv("WLCRC_BENCH_JSON_OUT")) {
            std::ofstream out(json);
            out << "{\n"
                << "  \"bench\": \"trace_io\",\n"
                << "  \"lines\": " << lines << ",\n"
                << "  \"raw_mb\": " << rawMb << ",\n"
                << "  \"cpus\": " << cpus << ",\n"
                << "  \"shards\": " << shards << ",\n"
                << "  \"decode_ahead\": " << aheadDepth << ",\n"
                << "  \"compression_ratio_unsorted\": "
                << ratioUnsorted << ",\n"
                << "  \"compression_ratio_sorted\": " << ratioSorted
                << ",\n"
                << "  \"decode_mb_per_sec\": " << decodeMbs << ",\n"
                << "  \"replay_sync_writes_per_sec\": " << syncWps
                << ",\n"
                << "  \"replay_ahead_writes_per_sec\": " << aheadWps
                << ",\n"
                << "  \"decode_ahead_speedup\": " << speedup
                << ",\n"
                << "  \"sharded_blocks_total\": " << blocks << ",\n"
                << "  \"blocks_visited_modulo_unsorted\": "
                << moduloVisited << ",\n"
                << "  \"blocks_visited_range_sorted\": "
                << rangeVisited << "\n"
                << "}\n";
        }

        int failures = 0;
        // The compression floor is deterministic (same synthesizer,
        // same codec, any machine), so it is always enforced.
        const double ratioFloor =
            envDouble("WLCRC_TRACE_RATIO_FLOOR", 5.0);
        if (ratioSorted < ratioFloor) {
            std::fprintf(stderr,
                         "COMPRESSION REGRESSION: sorted corpus "
                         "ratio %.2fx < floor %.2fx\n",
                         ratioSorted, ratioFloor);
            ++failures;
        }
        // Pruning must strictly beat the modulo worst case on the
        // sorted corpus — also deterministic.
        if (rangeVisited >= moduloVisited) {
            std::fprintf(stderr,
                         "PRUNING REGRESSION: range-sharded sorted "
                         "scan visited %llu blocks, modulo visited "
                         "%llu\n",
                         static_cast<unsigned long long>(
                             rangeVisited),
                         static_cast<unsigned long long>(
                             moduloVisited));
            ++failures;
        }
        if (const char *floor =
                std::getenv("WLCRC_TRACE_AHEAD_FLOOR")) {
            const double f = std::strtod(floor, nullptr);
            if (cpus < 2) {
                std::fprintf(
                    stderr,
                    "note: decode-ahead floor %.2fx skipped — "
                    "overlap needs >= 2 cpus, this machine has "
                    "%u\n",
                    f, cpus);
            } else if (speedup < f) {
                std::fprintf(stderr,
                             "DECODE-AHEAD REGRESSION: speedup "
                             "%.2fx < floor %.2fx\n",
                             speedup, f);
                ++failures;
            }
        }
        if (const char *check =
                std::getenv("WLCRC_BENCH_CHECK")) {
            const double frac = std::strtod(check, nullptr);
            const auto baseline = readBaseline(baseline_path);
            const auto gate = [&](const char *metric,
                                  double value) {
                const auto it = baseline.find(metric);
                if (it == baseline.end() || it->second <= 0)
                    return;
                if (value < frac * it->second) {
                    std::fprintf(stderr,
                                 "PERF REGRESSION: %s at %.1f < "
                                 "%.0f%% of baseline %.1f\n",
                                 metric, value, 100 * frac,
                                 it->second);
                    ++failures;
                }
            };
            gate("decode_mb_per_sec", decodeMbs);
            gate("replay_sync_writes_per_sec", syncWps);
        }
        return failures ? 1 : 0;
    });
}
