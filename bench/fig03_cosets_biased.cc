/**
 * @file
 * Figure 3: 6cosets vs 4cosets on the biased SPEC/PARSEC workloads
 * for granularities 8..128 — (a) aux, (b) data block, (c) total.
 *
 * Expected shape: 6cosets keeps a data-block advantage, but 4cosets
 * wins on aux energy (one aux symbol, frequent candidates on the
 * low-energy states), so the totals come out nearly equal — the
 * observation that justifies dropping to four candidates.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "runner/grid.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        wb::banner("Figure 3",
                   "6cosets vs 4cosets on biased workloads");

        const std::vector<unsigned> grans = {8, 16, 32, 64, 128};
        const auto defs = wb::sixVsFourCosetsDefs(grans);
        const auto results =
            wb::makeRunner("Figure 3")
                .run(runner::ExperimentGrid()
                         .workloads(wb::allWorkloadNames())
                         .schemeDefs(defs)
                         .cacheSalt("fig03")
                         .lines(wb::linesPerWorkload())
                         .seed(1234)
                         .shards(wb::benchShards()));
        wb::requireOk(results);

        const double nworkloads =
            trace::WorkloadProfile::all().size();
        CsvTable table({"scheme", "granularity_bits", "aux_pJ",
                        "blk_pJ", "total_pJ"});
        std::size_t d = 0;
        for (const unsigned g : grans) {
            for (const unsigned n : {6u, 4u}) {
                const double aux = wb::suiteSum(
                    results, defs.size(), d,
                    [](const trace::ReplayResult &r) {
                        return r.auxEnergyPj.mean();
                    });
                const double blk = wb::suiteSum(
                    results, defs.size(), d,
                    [](const trace::ReplayResult &r) {
                        return r.dataEnergyPj.mean();
                    });
                ++d;
                table.addRow(std::to_string(n) + "cosets", g,
                             aux / nworkloads, blk / nworkloads,
                             (aux + blk) / nworkloads);
            }
        }
        table.write(std::cout);
        return 0;
    });
}
