/**
 * @file
 * Figure 3: 6cosets vs 4cosets on the biased SPEC/PARSEC workloads
 * for granularities 8..128 — (a) aux, (b) data block, (c) total.
 *
 * Expected shape: 6cosets keeps a data-block advantage, but 4cosets
 * wins on aux energy (one aux symbol, frequent candidates on the
 * low-energy states), so the totals come out nearly equal — the
 * observation that justifies dropping to four candidates.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "coset/mapping.hh"
#include "coset/ncosets_codec.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    wb::banner("Figure 3", "6cosets vs 4cosets on biased workloads");
    const pcm::EnergyModel energy;
    CsvTable table({"scheme", "granularity_bits", "aux_pJ", "blk_pJ",
                    "total_pJ"});

    const unsigned nworkloads = trace::WorkloadProfile::all().size();
    for (const unsigned g : {8u, 16u, 32u, 64u, 128u}) {
        for (const unsigned n : {6u, 4u}) {
            const auto cands = n == 6
                                   ? coset::sixCosetCandidates()
                                   : coset::tableICandidates(4);
            const coset::NCosetsCodec codec(energy, cands, g);
            double aux = 0, blk = 0;
            for (const auto &p : trace::WorkloadProfile::all()) {
                const auto r = wb::runWorkload(
                    codec, p, wb::linesPerWorkload());
                aux += r.auxEnergyPj.mean();
                blk += r.dataEnergyPj.mean();
            }
            table.addRow(std::to_string(n) + "cosets", g,
                         aux / nworkloads, blk / nworkloads,
                         (aux + blk) / nworkloads);
        }
    }
    table.write(std::cout);
    return 0;
}
