/**
 * @file
 * Hot-path microbenchmark and the repo's tracked perf baseline: full
 * replay throughput (encode + differential program + disturbance) of
 * every Figure 8 scheme over one synthesized "gcc" write stream,
 * driven through Replayer::runBatch exactly like the sharded runner.
 *
 * Output: a CSV whose deterministic columns (mean energy / updated
 * cells) are pinned by the golden suite while the wall-clock columns
 * are masked, plus an optional machine-readable report:
 *
 *   WLCRC_BENCH_JSON_OUT=BENCH_encode.json  write the JSON report
 *   WLCRC_BENCH_BASELINE=<csv>   baseline override (default: the
 *       checked-in bench/baselines/encode_hot_path.baseline.csv,
 *       captured on the pre-refactor tree)
 *   WLCRC_BENCH_CHECK=0.75       exit non-zero if any scheme's
 *       writes/sec falls below this fraction of its baseline (the
 *       CI perf-smoke gate; baselines are machine-specific, so the
 *       gate only makes sense against a baseline captured on the
 *       same class of machine)
 *
 * Refresh the checked-in baseline after an intended perf change:
 *   WLCRC_BENCH_LINES=20000 ./bench_encode_hot_path \
 *       --update-baseline [path]
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/csv.hh"
#include "common/simd.hh"
#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;

struct SchemeRow
{
    std::string scheme;
    double meanEnergyPj = 0;
    double meanUpdated = 0;
    double writesPerSec = 0;
    double baselineWps = 0; //!< 0 = no baseline entry
};

/** scheme -> writes/sec from a baseline CSV ('#' comments allowed). */
std::map<std::string, double>
readBaseline(const std::string &path)
{
    std::map<std::string, double> out;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' ||
            line.rfind("scheme,", 0) == 0)
            continue;
        const auto comma = line.find(',');
        if (comma == std::string::npos)
            continue;
        out[line.substr(0, comma)] =
            std::strtod(line.c_str() + comma + 1, nullptr);
    }
    return out;
}

void
writeJson(const std::string &path, uint64_t lines, unsigned passes,
          const std::vector<SchemeRow> &rows)
{
    std::ofstream out(path);
    out << "{\n"
        << "  \"bench\": \"encode_hot_path\",\n"
        << "  \"simd\": \""
        << simd::kernelName(simd::activeKernel()) << "\",\n"
        << "  \"lines\": " << lines << ",\n"
        << "  \"passes\": " << passes << ",\n"
        << "  \"schemes\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SchemeRow &r = rows[i];
        out << "    {\"scheme\": \"" << r.scheme
            << "\", \"writes_per_sec\": " << r.writesPerSec
            << ", \"baseline_writes_per_sec\": " << r.baselineWps
            << ", \"speedup\": "
            << (r.baselineWps > 0 ? r.writesPerSec / r.baselineWps
                                  : 0.0)
            << ", \"mean_energy_pj\": " << r.meanEnergyPj
            << ", \"mean_updated\": " << r.meanUpdated << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    namespace wb = wlcrc::bench;

    return wb::benchMain([argc, argv] {
        const uint64_t lines = wb::linesPerWorkload();
        const unsigned passes = 3;

        bool update_baseline = false;
        std::string baseline_path = WLCRC_ENCODE_BASELINE;
        for (int a = 1; a < argc; ++a) {
            const std::string arg = argv[a];
            if (arg == "--update-baseline")
                update_baseline = true;
            else
                baseline_path = arg;
        }
        if (const char *env = std::getenv("WLCRC_BENCH_BASELINE"))
            baseline_path = env;

        trace::TraceSynthesizer synth(
            trace::WorkloadProfile::byName("gcc"), 2718);
        std::vector<trace::WriteTransaction> txns;
        txns.reserve(lines);
        for (uint64_t i = 0; i < lines; ++i)
            txns.push_back(synth.next());

        const pcm::EnergyModel energy;
        const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
        const auto baseline = readBaseline(baseline_path);

        std::vector<SchemeRow> rows;
        for (const auto &name : core::figure8Schemes()) {
            const auto codec = core::makeCodec(name, energy);
            SchemeRow row;
            row.scheme = name;
            double best_ns = 1e300;
            for (unsigned p = 0; p < passes; ++p) {
                trace::Replayer rep(*codec, unit, 7);
                std::size_t at = 0;
                const auto start =
                    std::chrono::steady_clock::now();
                // The runner's shard-loop entry: blocks of
                // transactions through LineCodec::encodeBatch.
                rep.runBatch([&](trace::WriteTransaction &slot) {
                    if (at >= txns.size())
                        return false;
                    slot = txns[at++];
                    return true;
                });
                const double ns =
                    std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                best_ns = std::min(best_ns, ns);
                row.meanEnergyPj = rep.result().energyPj.mean();
                row.meanUpdated = rep.result().updatedCells.mean();
            }
            row.writesPerSec =
                txns.empty() ? 0 : 1e9 * txns.size() / best_ns;
            if (const auto it = baseline.find(name);
                it != baseline.end())
                row.baselineWps = it->second;
            rows.push_back(row);
        }

        CsvTable table({"scheme", "lines", "mean_energy_pj",
                        "mean_updated", "writes_per_sec",
                        "speedup"});
        for (const SchemeRow &r : rows) {
            table.addRow(r.scheme, txns.size(), r.meanEnergyPj,
                         r.meanUpdated, r.writesPerSec,
                         r.baselineWps > 0
                             ? r.writesPerSec / r.baselineWps
                             : 0.0);
        }
        table.write(std::cout);

        if (update_baseline) {
            std::ofstream out(baseline_path);
            out << "# Replay throughput baseline for "
                   "bench/encode_hot_path (best of "
                << passes << " passes, WLCRC_BENCH_LINES=" << lines
                << ", simd=" << simd::kernelName(simd::activeKernel())
                << ").\n# Machine-specific; capture under "
                   "WLCRC_SIMD=scalar (see docs/simd.md) with:\n"
                   "#   WLCRC_SIMD=scalar WLCRC_BENCH_LINES="
                << lines
                << " ./bench_encode_hot_path --update-baseline\n"
                << "scheme,writes_per_sec\n";
            for (const SchemeRow &r : rows)
                out << r.scheme << "," << r.writesPerSec << "\n";
            std::fprintf(stderr, "baseline written to %s\n",
                         baseline_path.c_str());
        }

        if (const char *json = std::getenv("WLCRC_BENCH_JSON_OUT"))
            writeJson(json, lines, passes, rows);

        if (const char *check = std::getenv("WLCRC_BENCH_CHECK")) {
            const double floor_frac = std::strtod(check, nullptr);
            int failures = 0;
            for (const SchemeRow &r : rows) {
                if (r.baselineWps <= 0)
                    continue;
                if (r.writesPerSec < floor_frac * r.baselineWps) {
                    std::fprintf(
                        stderr,
                        "PERF REGRESSION: %s at %.0f writes/s < "
                        "%.0f%% of baseline %.0f\n",
                        r.scheme.c_str(), r.writesPerSec,
                        100 * floor_frac, r.baselineWps);
                    ++failures;
                }
            }
            if (failures)
                return 1;
        }
        return 0;
    });
}
