/**
 * @file
 * Figure 8: write energy (pJ per 512-bit line write) for all eight
 * evaluated schemes across the SPEC CPU2006 / PARSEC benchmarks,
 * grouped into high / low memory intensity.
 *
 * Expected shape (paper): WLCRC-16 lowest everywhere; ~52 % below
 * Baseline, ~39 % below 6cosets / DIN / COC+4cosets, ~10 % below
 * WLC+4cosets; HMI workloads well above LMI.
 */

#include "scheme_sweep.hh"

int
main()
{
    namespace wb = wlcrc::bench;
    return wb::benchMain([] {
        wb::banner("Figure 8", "write energy (pJ/line) per scheme");
        const auto grand = wb::schemeSweep(
            "energy", [](const wlcrc::trace::ReplayResult &r) {
                return r.energyPj.mean();
            });
        wb::headline(grand, "WLCRC-16", "Baseline");
        wb::headline(grand, "WLCRC-16", "6cosets");
        wb::headline(grand, "WLCRC-16", "COC+4cosets");
        wb::headline(grand, "WLCRC-16", "WLC+4cosets");
        wb::headline(grand, "WLCRC-16", "FlipMin");
        wb::headline(grand, "WLCRC-16", "DIN");
        return 0;
    });
}
