/**
 * @file
 * Google-benchmark microbenchmarks: software encode/decode
 * throughput of every scheme, plus the WLC compressibility check and
 * the compressor bank. Not a paper figure — these quantify the
 * simulator itself and give a software analogue of the Section VI-B
 * pipeline costs.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "compress/coc.hh"
#include "compress/fpc_bdi.hh"
#include "compress/wlc.hh"
#include "trace/value_model.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;

/** Pre-generated biased lines shared by all benchmarks. */
const std::vector<Line512> &
lines()
{
    static const std::vector<Line512> data = [] {
        Rng rng(2718);
        std::vector<Line512> v;
        for (int i = 0; i < 256; ++i) {
            const auto type = static_cast<trace::LineType>(
                rng.nextBelow(trace::numLineTypes));
            v.push_back(
                trace::ValueModel::generateLine(type, rng));
        }
        return v;
    }();
    return data;
}

void
encodeScheme(benchmark::State &state, const std::string &name)
{
    const pcm::EnergyModel energy;
    const auto codec = core::makeCodec(name, energy);
    std::vector<pcm::State> stored(codec->cellCount(),
                                   pcm::State::S1);
    size_t i = 0;
    for (auto _ : state) {
        const auto target =
            codec->encode(lines()[i++ % lines().size()], stored);
        benchmark::DoNotOptimize(target.cells.data());
        stored = target.cells;
    }
    state.SetItemsProcessed(state.iterations());
}

void
decodeScheme(benchmark::State &state, const std::string &name)
{
    const pcm::EnergyModel energy;
    const auto codec = core::makeCodec(name, energy);
    std::vector<pcm::State> stored(codec->cellCount(),
                                   pcm::State::S1);
    stored = codec->encode(lines()[0], stored).cells;
    for (auto _ : state) {
        const Line512 out = codec->decode(stored);
        benchmark::DoNotOptimize(out.word(0));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_WlcCheck(benchmark::State &state)
{
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::Wlc::lineCompressible(
            lines()[i++ % lines().size()],
            static_cast<unsigned>(state.range(0))));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WlcCheck)->Arg(6)->Arg(9);

void
BM_FpcBdi(benchmark::State &state)
{
    const compress::FpcBdi c;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.compress(lines()[i++ % lines().size()]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FpcBdi);

void
BM_Coc(benchmark::State &state)
{
    const compress::Coc c;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.compress(lines()[i++ % lines().size()]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Coc);

void
BM_SynthesizeTrace(benchmark::State &state)
{
    trace::TraceSynthesizer synth(
        trace::WorkloadProfile::byName("gcc"), 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(synth.next().newData.word(0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SynthesizeTrace);

} // namespace

int
main(int argc, char **argv)
{
    for (const auto &name : core::figure8Schemes()) {
        benchmark::RegisterBenchmark(("encode/" + name).c_str(),
                                     encodeScheme, name);
        benchmark::RegisterBenchmark(("decode/" + name).c_str(),
                                     decodeScheme, name);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
