/**
 * @file
 * Software throughput microbenchmarks of the simulator itself:
 * encode/decode rate of every Figure 8 scheme, the WLC
 * compressibility check, the compressor bank and trace synthesis.
 * Not a paper figure — these quantify the simulation hot paths and
 * give a software analogue of the Section VI-B pipeline costs.
 *
 * Each micro-kernel is one zero-replay grid point: the runner hands
 * the hook a synthesized "gcc" stream (WLCRC_BENCH_LINES long) and
 * the hook times its kernel over it. The `checksum` column is a
 * deterministic digest of the kernel's outputs, so the golden
 * harness can pin every kernel's *behaviour* while masking the
 * timing columns (`ns_per_op`, `ops_per_s`), which are inherently
 * machine-dependent.
 */

#include "bench_common.hh"

#include <chrono>

#include "common/csv.hh"
#include "compress/coc.hh"
#include "compress/fpc_bdi.hh"
#include "compress/wlc.hh"
#include "pcm/energy_model.hh"
#include "runner/runner.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;

/** What one timed kernel reports. */
struct KernelOutcome
{
    uint64_t checksum = 0; //!< deterministic digest of the outputs
    double nsPerOp = 0;    //!< wall time per processed line
};

/** Time @p body over @p txns; digest via @p body's return values. */
template <typename Body>
KernelOutcome
timeKernel(const std::vector<trace::WriteTransaction> &txns,
           Body &&body)
{
    KernelOutcome out;
    const auto start = std::chrono::steady_clock::now();
    for (const auto &t : txns)
        out.checksum = out.checksum * 0x100000001b3ull ^ body(t);
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    out.nsPerOp = txns.empty() ? 0 : ns / txns.size();
    return out;
}

} // namespace

int
main()
{
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        wb::banner("codec_throughput",
                   "software encode/decode throughput");

        using Kernel = std::function<KernelOutcome(
            const std::vector<trace::WriteTransaction> &)>;
        std::vector<std::pair<std::string, Kernel>> kernels;

        const pcm::EnergyModel energy;
        for (const auto &name : core::figure8Schemes()) {
            kernels.emplace_back(
                "encode/" + name, [name, &energy](const auto &txns) {
                    const auto codec = core::makeCodec(name, energy);
                    std::vector<pcm::State> stored(
                        codec->cellCount(), pcm::State::S1);
                    coset::EncodeScratch scratch;
                    pcm::TargetLine target;
                    return timeKernel(txns, [&](const auto &t) {
                        codec->encodeInto(
                            t.newData,
                            {stored.data(), stored.size()}, scratch,
                            target);
                        uint64_t updated = 0;
                        for (std::size_t i = 0; i < stored.size();
                             ++i) {
                            updated += target[i] != stored[i];
                            stored[i] = target[i];
                        }
                        return updated;
                    });
                });
            kernels.emplace_back(
                "decode/" + name, [name, &energy](const auto &txns) {
                    const auto codec = core::makeCodec(name, energy);
                    std::vector<pcm::State> stored(
                        codec->cellCount(), pcm::State::S1);
                    if (!txns.empty())
                        stored = codec->encode(txns[0].newData,
                                               stored)
                                     .toVector();
                    return timeKernel(txns, [&](const auto &) {
                        return codec->decode(stored).word(0);
                    });
                });
        }
        for (const unsigned k : {6u, 9u}) {
            kernels.emplace_back(
                "wlc_check/k=" + std::to_string(k),
                [k](const auto &txns) {
                    return timeKernel(txns, [&](const auto &t) {
                        return uint64_t{compress::Wlc::
                                            lineCompressible(
                                                t.newData, k)};
                    });
                });
        }
        kernels.emplace_back("compress/FPC+BDI", [](const auto &txns) {
            const compress::FpcBdi c;
            return timeKernel(txns, [&](const auto &t) {
                const auto bits = c.compressedBits(t.newData);
                return uint64_t{bits ? *bits : 0};
            });
        });
        kernels.emplace_back("compress/COC", [](const auto &txns) {
            const compress::Coc c;
            return timeKernel(txns, [&](const auto &t) {
                const auto bits = c.compressedBits(t.newData);
                return uint64_t{bits ? *bits : 0};
            });
        });
        kernels.emplace_back(
            "trace/synthesize", [](const auto &txns) {
                trace::TraceSynthesizer synth(
                    trace::WorkloadProfile::byName("gcc"), 5);
                return timeKernel(txns, [&](const auto &) {
                    return synth.next().newData.word(0);
                });
            });

        // One grid point per kernel, all sharing the same
        // synthesized biased stream spec.
        std::vector<KernelOutcome> slots(kernels.size());
        std::vector<runner::ExperimentSpec> specs;
        for (std::size_t k = 0; k < kernels.size(); ++k) {
            runner::ExperimentSpec spec;
            spec.scheme = kernels[k].first;
            spec.workload = "gcc";
            spec.lines = wb::linesPerWorkload();
            spec.seed = 2718;
            spec.customReplay =
                [&kernels, &slots, k](
                    const runner::ExperimentSpec &,
                    const std::vector<trace::WriteTransaction>
                        &txns) {
                    slots[k] = kernels[k].second(txns);
                    trace::ReplayResult out;
                    out.writes = txns.size();
                    return out;
                };
            specs.push_back(std::move(spec));
        }

        // One worker, always: concurrently-timed kernels would
        // measure contention, not kernel cost. The deterministic
        // columns are identical either way.
        wb::requireOk(
            wb::makeRunner("codec_throughput", 1).run(specs));

        CsvTable table({"kernel", "lines", "checksum", "ns_per_op",
                        "ops_per_s"});
        for (std::size_t k = 0; k < kernels.size(); ++k) {
            const auto &r = slots[k];
            table.addRow(kernels[k].first, wb::linesPerWorkload(),
                         r.checksum, r.nsPerOp,
                         r.nsPerOp > 0 ? 1e9 / r.nsPerOp : 0);
        }
        table.write(std::cout);
        return 0;
    });
}
