/**
 * @file
 * Figure 11: write energy of WLC+4cosets, WLC+3cosets and WLCRC for
 * data block granularities 8/16/32/64, split into data-block and
 * auxiliary components (suite average).
 *
 * Expected shape (paper): WLCRC-16 is the global minimum (~10-11 %
 * below the 32-bit optimum of the unrestricted schemes); 4cosets and
 * 3cosets bottom out at 32-bit blocks because their 16-bit variants
 * need k = 9 and lose WLC coverage.
 */

#include "granularity_sweep.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    return wb::benchMain([] {
        wb::banner("Figure 11",
                   "WLC+{4,3}cosets vs WLCRC energy vs granularity");

        const auto rows = wb::granularitySweep("Figure 11");
        wb::writeGranularityTable(
            rows,
            {"scheme", "granularity_bits", "blk_pJ", "aux_pJ",
             "total_pJ"},
            [](const trace::ReplayResult &r) {
                return r.dataEnergyPj.mean();
            },
            [](const trace::ReplayResult &r) {
                return r.auxEnergyPj.mean();
            });

        auto total_energy = [](const trace::ReplayResult &r) {
            return r.energyPj.mean();
        };
        double best_wlcrc16 = 0, best_unrestricted32 = 0;
        for (const auto &row : rows) {
            if (row.scheme == "WLCRC" && row.granularity == 16)
                best_wlcrc16 = row.suiteAverage(total_energy);
            if (row.scheme == "4cosets" && row.granularity == 32)
                best_unrestricted32 = row.suiteAverage(total_energy);
        }
        std::printf("# WLCRC-16 vs WLC+4cosets-32: %.1f%% lower\n",
                    100.0 * (1 - best_wlcrc16 /
                                     best_unrestricted32));
        return 0;
    });
}
