/**
 * @file
 * Figure 11: write energy of WLC+4cosets, WLC+3cosets and WLCRC for
 * data block granularities 8/16/32/64, split into data-block and
 * auxiliary components (suite average).
 *
 * Expected shape (paper): WLCRC-16 is the global minimum (~10-11 %
 * below the 32-bit optimum of the unrestricted schemes); 4cosets and
 * 3cosets bottom out at 32-bit blocks because their 16-bit variants
 * need k = 9 and lose WLC coverage.
 */

#include "bench_common.hh"

#include "common/csv.hh"
#include "wlcrc/wlc_cosets_codec.hh"
#include "wlcrc/wlcrc_codec.hh"

int
main()
{
    using namespace wlcrc;
    namespace wb = wlcrc::bench;

    wb::banner("Figure 11",
               "WLC+{4,3}cosets vs WLCRC energy vs granularity");
    const pcm::EnergyModel energy;
    CsvTable table({"scheme", "granularity_bits", "blk_pJ", "aux_pJ",
                    "total_pJ"});

    const unsigned n = trace::WorkloadProfile::all().size();
    auto run_suite = [&](const coset::LineCodec &codec,
                         const std::string &name, unsigned g) {
        double blk = 0, aux = 0;
        for (const auto &p : trace::WorkloadProfile::all()) {
            const auto r =
                wb::runWorkload(codec, p, wb::linesPerWorkload());
            blk += r.dataEnergyPj.mean();
            aux += r.auxEnergyPj.mean();
        }
        table.addRow(name, g, blk / n, aux / n, (blk + aux) / n);
    };

    double best_wlcrc16 = 0, best_unrestricted32 = 0;
    for (const unsigned g : {8u, 16u, 32u, 64u}) {
        const core::WlcCosetsCodec four(energy, 4, g);
        run_suite(four, "4cosets", g);
        const core::WlcCosetsCodec three(energy, 3, g);
        run_suite(three, "3cosets", g);
        const core::WlcrcCodec wlcrc(energy, g);
        run_suite(wlcrc, "WLCRC", g);
        if (g == 32) {
            best_unrestricted32 = wb::suiteAverage(
                four, wb::linesPerWorkload(),
                [](const trace::ReplayResult &r) {
                    return r.energyPj.mean();
                });
        }
        if (g == 16) {
            best_wlcrc16 = wb::suiteAverage(
                wlcrc, wb::linesPerWorkload(),
                [](const trace::ReplayResult &r) {
                    return r.energyPj.mean();
                });
        }
    }
    table.write(std::cout);
    std::printf("# WLCRC-16 vs WLC+4cosets-32: %.1f%% lower\n",
                100.0 * (1 - best_wlcrc16 / best_unrestricted32));
    return 0;
}
