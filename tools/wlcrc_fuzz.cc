/**
 * @file
 * Open-ended differential fuzzer for the encode hot path — the CLI
 * sibling of tests/encode_fuzz_test.cc (which runs a bounded budget
 * under ctest). Each iteration draws a pattern-biased payload and a
 * random stored line, encodes it under the scalar reference kernel,
 * and cross-checks:
 *
 *   - every available SIMD kernel (or just the one named by --simd),
 *   - the recompute-per-fetch scalar-scoring test hook,
 *   - periodically, a batched replay against a step()-ed replay.
 *
 * A seeded LZ stage runs first: pattern-biased buffers (runs,
 * repeats, 136-byte record-shaped periods) must round-trip through
 * the trace block codec bit-exactly, and bit-flipped / truncated
 * compressed streams plus pure garbage must be rejected with an
 * exception or a bounded return — never a crash or an out-of-bounds
 * read (the ASan/UBSan CI legs run this binary to back that claim).
 *
 * A seeded WRK1 stage follows: an in-process distributed-sweep head
 * (runner/remote.hh) is bombarded with hostile client streams —
 * raw garbage, random frame types, oversized and truncated frame
 * promises, Results carrying junk ids and junk JSON — and must
 * survive every one of them, still answering a well-formed
 * Hello+Pull with a Retry after the barrage.
 *
 * Any divergence prints a self-contained repro (iteration seed plus
 * full line hex) and exits 1; a clean run prints a summary and exits
 * 0. Seeds are derived per iteration from --seed, so a failure
 * reported as "iteration seed S" reproduces with --seed S --iters 1.
 *
 * Usage:
 *   wlcrc_fuzz [--iters N]       iterations (default 2000)
 *              [--seed N]        base seed (default 1)
 *              [--scheme NAME]   fuzz one scheme (default: all)
 *              [--simd KERNEL]   auto|scalar|avx2|neon (default auto)
 *              [--help]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/lz.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "coset/codec.hh"
#include "net/frame.hh"
#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "runner/remote.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"
#include "tracefile/format.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;
using pcm::State;
using simd::Kernel;

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: wlcrc_fuzz [--iters N] [--seed N] [--scheme NAME]\n"
        "                  [--simd auto|scalar|avx2|neon] [--help]\n"
        "\n"
        "Differential fuzzer: encodes random lines under every\n"
        "available SIMD kernel and the scalar-scoring test hook,\n"
        "failing loudly on any bit difference from the scalar\n"
        "reference. Seeded LZ round-trip/mutation and hostile WRK1\n"
        "client stages run first. Exits 0 on a clean run, 1 on a\n"
        "mismatch.\n");
}

std::vector<Kernel>
kernelsUnderTest()
{
    std::vector<Kernel> out;
    for (const Kernel k :
         {Kernel::Scalar, Kernel::Avx2, Kernel::Neon})
        if (simd::kernelAvailable(k))
            out.push_back(k);
    return out;
}

struct KernelScope
{
    explicit KernelScope(Kernel k) : prev_(simd::activeKernel())
    {
        simd::setKernel(k);
    }
    ~KernelScope() { simd::setKernel(prev_); }
    Kernel prev_;
};

struct ScalarScoringScope
{
    ScalarScoringScope()
    {
        coset::LineCodec::setScalarScoringForTest(true);
    }
    ~ScalarScoringScope()
    {
        coset::LineCodec::setScalarScoringForTest(false);
    }
};

/** Pattern-biased payload (see tests/encode_fuzz_test.cc). */
Line512
fuzzLine(Rng &rng)
{
    Line512 l;
    for (unsigned w = 0; w < lineWords; ++w) {
        switch (rng.nextBelow(5)) {
        case 0:
            l.setWord(w, 0);
            break;
        case 1:
            l.setWord(w, ~uint64_t{0});
            break;
        case 2: {
            const uint64_t byte = rng.next() & 0xff;
            l.setWord(w, byte * 0x0101010101010101ull);
            break;
        }
        case 3:
            l.setWord(w, rng.next() & 0xffff);
            break;
        default:
            l.setWord(w, rng.next());
        }
    }
    return l;
}

std::vector<State>
fuzzStored(Rng &rng, unsigned cells)
{
    std::vector<State> stored(cells);
    if (rng.chance(0.2)) {
        const State s = pcm::stateFromIndex(
            static_cast<unsigned>(rng.nextBelow(4)));
        for (auto &c : stored)
            c = s;
    } else {
        for (auto &c : stored)
            c = pcm::stateFromIndex(
                static_cast<unsigned>(rng.next() & 3));
    }
    return stored;
}

void
dumpCase(uint64_t seed, const std::string &scheme,
         const Line512 &data, const std::vector<State> &stored)
{
    std::fprintf(stderr,
                 "repro: wlcrc_fuzz --seed %llu --iters 1 --scheme "
                 "'%s'\n  data:",
                 static_cast<unsigned long long>(seed),
                 scheme.c_str());
    for (unsigned w = 0; w < lineWords; ++w)
        std::fprintf(stderr, " %016llx",
                     static_cast<unsigned long long>(data.word(w)));
    std::fprintf(stderr, "\n  stored:");
    for (const State s : stored)
        std::fprintf(stderr, "%u", pcm::stateIndex(s));
    std::fprintf(stderr, "\n");
}

/** True iff the targets are bit-identical; reports the first diff. */
bool
sameTarget(const pcm::TargetLine &got, const pcm::TargetLine &want,
           const char *what)
{
    if (got.size() != want.size() ||
        got.auxStart() != want.auxStart()) {
        std::fprintf(stderr,
                     "MISMATCH (%s): target shape %u/%u vs %u/%u\n",
                     what, got.size(), got.auxStart(), want.size(),
                     want.auxStart());
        return false;
    }
    for (unsigned i = 0; i < want.size(); ++i) {
        if (got[i] != want[i] || got.aux(i) != want.aux(i)) {
            std::fprintf(
                stderr,
                "MISMATCH (%s): cell %u state %u aux %d, scalar "
                "reference has state %u aux %d\n",
                what, i, pcm::stateIndex(got[i]),
                got.aux(i) ? 1 : 0, pcm::stateIndex(want[i]),
                want.aux(i) ? 1 : 0);
            return false;
        }
    }
    return true;
}

bool
sameResult(const trace::ReplayResult &a,
           const trace::ReplayResult &b, const char *what)
{
    const bool ok =
        a.writes == b.writes &&
        a.compressedWrites == b.compressedWrites &&
        a.vnrIterations == b.vnrIterations &&
        a.energyPj.mean() == b.energyPj.mean() &&
        a.energyPj.variance() == b.energyPj.variance() &&
        a.updatedCells.mean() == b.updatedCells.mean() &&
        a.disturbErrors.mean() == b.disturbErrors.mean();
    if (!ok)
        std::fprintf(stderr,
                     "MISMATCH (%s): replay results diverge "
                     "(energy %.17g vs %.17g)\n",
                     what, a.energyPj.mean(), b.energyPj.mean());
    return ok;
}

trace::ReplayResult
replayBatch(const coset::LineCodec &codec,
            const pcm::WriteUnit &unit,
            const std::vector<trace::WriteTransaction> &txns)
{
    trace::Replayer rep(codec, unit, 7);
    std::size_t at = 0;
    rep.runBatch([&](trace::WriteTransaction &slot) {
        if (at >= txns.size())
            return false;
        slot = txns[at++];
        return true;
    });
    return rep.result();
}

/** Pattern-biased LZ input: runs, repeats, record-shaped periods. */
std::vector<uint8_t>
fuzzLzBuffer(Rng &rng)
{
    const std::size_t len =
        static_cast<std::size_t>(rng.nextBelow(8192));
    std::vector<uint8_t> buf(len);
    std::size_t at = 0;
    while (at < len) {
        const std::size_t chunk = std::min<std::size_t>(
            len - at, 1 + rng.nextBelow(512));
        switch (rng.nextBelow(4)) {
        case 0: { // constant run
            const uint8_t b = static_cast<uint8_t>(rng.next());
            std::memset(buf.data() + at, b, chunk);
            break;
        }
        case 1: // random bytes
            for (std::size_t i = 0; i < chunk; ++i)
                buf[at + i] = static_cast<uint8_t>(rng.next());
            break;
        case 2: { // short period (compressible overlap matches)
            const std::size_t period = 1 + rng.nextBelow(8);
            for (std::size_t i = 0; i < chunk; ++i)
                buf[at + i] = static_cast<uint8_t>(
                    0x40 + (i % period));
            break;
        }
        default: // 136-byte record-shaped period, like real blocks
            for (std::size_t i = 0; i < chunk; ++i)
                buf[at + i] = static_cast<uint8_t>(
                    (i % 136) < 8 ? rng.next() : (i % 136));
        }
        at += chunk;
    }
    return buf;
}

/**
 * One seeded LZ case: round-trip must be exact; mutated compressed
 * streams and raw garbage must throw or return within bounds.
 * @return false (after a report) on a round-trip mismatch.
 */
bool
lzFuzzCase(uint64_t iseed, LzScratch &scratch)
{
    Rng rng(iseed);
    const std::vector<uint8_t> raw = fuzzLzBuffer(rng);
    std::vector<uint8_t> packed(lzCompressBound(raw.size()));
    const std::size_t packedLen =
        lzCompress(raw.data(), raw.size(), packed.data(),
                   packed.size(), &scratch);
    if (packedLen == 0) {
        std::fprintf(stderr,
                     "MISMATCH (lz): compress with full bound "
                     "buffer failed, %zu raw bytes (seed %llu)\n",
                     raw.size(),
                     static_cast<unsigned long long>(iseed));
        return false;
    }
    packed.resize(packedLen);
    std::vector<uint8_t> out(raw.size());
    const std::size_t got = lzDecompress(
        packed.data(), packed.size(), out.data(), out.size());
    if (got != raw.size() ||
        std::memcmp(out.data(), raw.data(), raw.size()) != 0) {
        std::fprintf(stderr,
                     "MISMATCH (lz): round trip %zu -> %zu -> %zu "
                     "bytes diverged (seed %llu)\n",
                     raw.size(), packed.size(), got,
                     static_cast<unsigned long long>(iseed));
        return false;
    }

    // Adversarial decodes: any outcome but a crash/over-read is
    // acceptable — corruption may cancel out, but most mutations
    // must surface as the codec's named errors.
    auto tryDecode = [&](const std::vector<uint8_t> &evil) {
        try {
            const std::size_t n = lzDecompress(
                evil.data(), evil.size(), out.data(), out.size());
            (void)n; // bounded by contract; ASan audits the rest
        } catch (const std::exception &) {
            // expected for most mutations
        }
    };
    std::vector<uint8_t> evil = packed;
    if (!evil.empty()) {
        evil[rng.nextBelow(evil.size())] ^=
            static_cast<uint8_t>(1u << rng.nextBelow(8));
        tryDecode(evil);
        evil.resize(rng.nextBelow(evil.size() + 1)); // truncate
        tryDecode(evil);
    }
    std::vector<uint8_t> garbage(rng.nextBelow(256));
    for (auto &b : garbage)
        b = static_cast<uint8_t>(rng.next());
    tryDecode(garbage);
    return true;
}

/** Loopback socket to the fuzzed head (100 ms recv timeout). */
int
wrk1Connect(uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    timeval tv{};
    tv.tv_usec = 100 * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    return fd;
}

/**
 * One seeded hostile WRK1 stream: a burst of malformed frames —
 * raw garbage, random frame types, lying length prefixes, junk
 * Results — thrown at the head, which must map each to a named
 * counter or a dropped connection, never a crash. Outcomes are
 * not asserted per-case (many mutations are legitimately ignored);
 * the survivability check is wrk1StillAnswers() after the barrage,
 * with ASan/UBSan auditing the head's memory behaviour.
 */
void
wrk1FuzzCase(uint64_t iseed, uint16_t port)
{
    using runner::WorkFrame;
    Rng rng(iseed);
    const int fd = wrk1Connect(port);
    if (fd < 0)
        return; // transient resource exhaustion; not a finding
    if (rng.chance(0.5)) { // half the streams open legitimately
        uint8_t v[4];
        tracefile::putLe32(v, runner::workProtocolVersion);
        net::sendFrame(fd, runner::workMagic,
                       static_cast<uint8_t>(WorkFrame::Hello), 0, v,
                       sizeof v);
    }
    const uint64_t burst = 1 + rng.nextBelow(6);
    for (uint64_t i = 0; i < burst; ++i) {
        switch (rng.nextBelow(5)) {
        case 0: { // raw garbage, no framing at all
            std::vector<uint8_t> junk(1 + rng.nextBelow(64));
            for (auto &b : junk)
                b = static_cast<uint8_t>(rng.next());
            if (!net::writeAll(fd, junk.data(), junk.size()))
                goto done;
            break;
        }
        case 1: { // well-framed, random type and payload
            std::vector<uint8_t> payload(rng.nextBelow(64));
            for (auto &b : payload)
                b = static_cast<uint8_t>(rng.next());
            if (!net::sendFrame(fd, runner::workMagic,
                                static_cast<uint8_t>(rng.next() &
                                                     0x0f),
                                0, payload.data(), payload.size()))
                goto done;
            break;
        }
        case 2: { // header whose length promise lies
            uint8_t header[net::frameHeaderBytes];
            net::FrameHeader h;
            h.type = static_cast<uint8_t>(WorkFrame::Result);
            h.payloadBytes =
                rng.chance(0.5)
                    ? (runner::maxWorkPayload + 1 +
                       static_cast<uint32_t>(rng.nextBelow(1u << 20)))
                    : static_cast<uint32_t>(1 + rng.nextBelow(256));
            net::encodeFrameHeader(header, runner::workMagic, h);
            if (!net::writeAll(fd, header, sizeof header))
                goto done;
            ::shutdown(fd, SHUT_WR); // never deliver the payload
            goto done;
        }
        case 3: { // Result with junk id and junk JSON
            std::vector<uint8_t> payload(8 + rng.nextBelow(96));
            tracefile::putLe64(payload.data(), rng.next());
            for (std::size_t b = 8; b < payload.size(); ++b)
                payload[b] = static_cast<uint8_t>(rng.next());
            if (!net::sendFrame(
                    fd, runner::workMagic,
                    static_cast<uint8_t>(WorkFrame::Result), 0,
                    payload.data(), payload.size()))
                goto done;
            break;
        }
        default: // legitimate Pull mixed into the hostility
            if (!net::sendFrame(fd, runner::workMagic,
                                static_cast<uint8_t>(WorkFrame::Pull),
                                0, nullptr, 0))
                goto done;
        }
        if (rng.chance(0.3)) { // sometimes drain the head's replies
            char buf[256];
            while (::read(fd, buf, sizeof buf) > 0)
                continue;
        }
    }
done:
    ::close(fd);
}

/** A well-formed Hello+Pull must still earn a Retry (or Fin). */
bool
wrk1StillAnswers(uint16_t port)
{
    using runner::WorkFrame;
    const int fd = wrk1Connect(port);
    if (fd < 0) {
        std::fprintf(stderr, "MISMATCH (wrk1): head stopped "
                             "accepting connections\n");
        return false;
    }
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    uint8_t v[4];
    tracefile::putLe32(v, runner::workProtocolVersion);
    net::sendFrame(fd, runner::workMagic,
                   static_cast<uint8_t>(WorkFrame::Hello), 0, v,
                   sizeof v);
    net::sendFrame(fd, runner::workMagic,
                   static_cast<uint8_t>(WorkFrame::Pull), 0, nullptr,
                   0);
    net::FrameHeader h;
    std::vector<uint8_t> payload;
    const net::RecvStatus st = net::recvFrame(
        fd, runner::workMagic, runner::maxWorkPayload, h, payload);
    ::close(fd);
    if (st != net::RecvStatus::Ok ||
        (h.type != static_cast<uint8_t>(WorkFrame::Retry) &&
         h.type != static_cast<uint8_t>(WorkFrame::Fin))) {
        std::fprintf(stderr,
                     "MISMATCH (wrk1): Hello+Pull answered with "
                     "status %d type %u, want a Retry\n",
                     static_cast<int>(st), unsigned{h.type});
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t iters = 2000;
    uint64_t seed = 1;
    std::string only_scheme;
    std::string simd_choice;

    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        const auto value = [&]() -> const char * {
            if (a + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++a];
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--iters") {
            iters = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--seed") {
            seed = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--scheme") {
            only_scheme = value();
        } else if (arg == "--simd") {
            simd_choice = value();
        } else {
            std::fprintf(stderr, "error: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    try {
        if (!simd_choice.empty())
            simd::setKernelFromText(simd_choice);

        std::vector<std::string> schemes;
        if (!only_scheme.empty()) {
            schemes.push_back(only_scheme);
        } else {
            schemes = core::figure8Schemes();
            for (const char *extra :
                 {"WLC+3cosets", "WLCRC-8", "WLCRC-32", "WLCRC-64",
                  "WLCRC-16-mo", "WLCRC-16-da"})
                schemes.push_back(extra);
        }

        const pcm::EnergyModel energy;
        std::vector<coset::CodecPtr> codecs;
        for (const auto &name : schemes)
            codecs.push_back(core::makeCodec(name, energy));

        const auto kernels = kernelsUnderTest();
        std::fprintf(stderr, "fuzzing %zu scheme(s), kernels:",
                     schemes.size());
        for (const Kernel k : kernels)
            std::fprintf(stderr, " %s", simd::kernelName(k));
        std::fprintf(stderr, ", %llu iterations, seed %llu\n",
                     static_cast<unsigned long long>(iters),
                     static_cast<unsigned long long>(seed));

        // LZ stage first: it is orders of magnitude cheaper than an
        // encode, so it shares the iteration budget 1:1. Seeds are
        // salted so the two stages never draw the same stream.
        LzScratch lzScratch;
        for (uint64_t iter = 0; iter < iters; ++iter)
            if (!lzFuzzCase(childSeed(seed ^ 0x6c7aull, iter),
                            lzScratch))
                return 1;

        // WRK1 stage: hostile client streams against an idle
        // distributed-sweep head. Connections are cheap on
        // loopback but not free, so the stage caps itself at 500
        // streams even under a bigger --iters budget.
        const uint64_t wrk1Cases = std::min<uint64_t>(iters, 500);
        uint64_t wrk1Errors = 0;
        {
            runner::RemoteBackend head{runner::RemoteBackendOptions{}};
            for (uint64_t iter = 0; iter < wrk1Cases; ++iter)
                wrk1FuzzCase(childSeed(seed ^ 0x57726bull, iter),
                             head.port());
            if (!wrk1StillAnswers(head.port()))
                return 1;
            for (const auto &[name, n] : head.errorCounts())
                wrk1Errors += n;
            head.stop();
        }

        uint64_t encodes = 0;
        for (uint64_t iter = 0; iter < iters; ++iter) {
            const uint64_t iseed = childSeed(seed, iter);
            Rng rng(iseed);
            const Line512 data = fuzzLine(rng);
            for (std::size_t c = 0; c < codecs.size(); ++c) {
                const coset::LineCodec &codec = *codecs[c];
                const auto stored =
                    fuzzStored(rng, codec.cellCount());

                pcm::TargetLine want;
                {
                    KernelScope scalar(Kernel::Scalar);
                    want = codec.encode(data, stored);
                }
                {
                    KernelScope scalar(Kernel::Scalar);
                    ScalarScoringScope hook;
                    if (!sameTarget(codec.encode(data, stored),
                                    want, "scoring hook")) {
                        dumpCase(iseed, schemes[c], data, stored);
                        return 1;
                    }
                }
                for (const Kernel k : kernels) {
                    KernelScope scope(k);
                    if (!sameTarget(codec.encode(data, stored),
                                    want, simd::kernelName(k))) {
                        dumpCase(iseed, schemes[c], data, stored);
                        return 1;
                    }
                }
                encodes += 2 + kernels.size();
            }
            if ((iter + 1) % 500 == 0)
                std::fprintf(
                    stderr, "  %llu/%llu iterations, %llu encodes\n",
                    static_cast<unsigned long long>(iter + 1),
                    static_cast<unsigned long long>(iters),
                    static_cast<unsigned long long>(encodes));
        }

        // Stream-level pass: batched vs stepped replay per kernel.
        const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
        trace::TraceSynthesizer synth(
            trace::WorkloadProfile::byName("gcc"),
            childSeed(seed, ~uint64_t{0}));
        std::vector<trace::WriteTransaction> txns;
        for (uint64_t i = 0; i < 500; ++i)
            txns.push_back(synth.next());
        for (std::size_t c = 0; c < codecs.size(); ++c) {
            trace::ReplayResult scalarBatch;
            {
                KernelScope scalar(Kernel::Scalar);
                scalarBatch = replayBatch(*codecs[c], unit, txns);
            }
            for (const Kernel k : kernels) {
                KernelScope scope(k);
                trace::Replayer stepped(*codecs[c], unit, 7);
                for (const auto &t : txns)
                    stepped.step(t);
                if (!sameResult(stepped.result(), scalarBatch,
                                "stepped replay") ||
                    !sameResult(replayBatch(*codecs[c], unit, txns),
                                scalarBatch, "batched replay")) {
                    std::fprintf(stderr,
                                 "repro: wlcrc_fuzz --seed %llu "
                                 "--scheme '%s' --simd %s\n",
                                 static_cast<unsigned long long>(
                                     seed),
                                 schemes[c].c_str(),
                                 simd::kernelName(k));
                    return 1;
                }
            }
        }

        std::fprintf(stderr,
                     "ok: %llu lz cases + %llu hostile wrk1 streams "
                     "(%llu named errors) + %llu encodes + %zu "
                     "replay streams, all kernels bit-identical\n",
                     static_cast<unsigned long long>(iters),
                     static_cast<unsigned long long>(wrk1Cases),
                     static_cast<unsigned long long>(wrk1Errors),
                     static_cast<unsigned long long>(encodes),
                     schemes.size());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
