/**
 * @file
 * wlcrc_trace: the trace-store Swiss army knife. Everything the
 * simulator consumes through --trace-in is produced, migrated and
 * audited here; all subcommands stream block-by-block / record-by-
 * record, so arbitrarily large traces fit in bounded memory.
 *
 * Subcommands:
 *   generate   synthesize a trace file from a benchmark profile, the
 *              random workload, or a multi-programmed blend of
 *              profiles (--mix "gcc:2,lbm:1" weights the programs'
 *              shares of the write stream)
 *   convert    re-frame a trace between WLCTRC01, WLCTRC02 and
 *              WLCTRC03 in any direction (the record encoding is
 *              shared, so every conversion is lossless)
 *   sort       rewrite a trace in ascending line-address order,
 *              preserving each line's write order — an external
 *              bucket sort bounded by --mem-mb, so traces far larger
 *              than RAM sort fine. Sorted containers compress
 *              better (same-line records become adjacent) and let
 *              range-partitioned shards prune almost every foreign
 *              block
 *   info       print header/index facts: format, records, blocks,
 *              address range, and for WLCTRC03 the per-codec block
 *              mix and compression ratio; --blocks adds the
 *              per-block table
 *   verify     audit integrity — CRC-check every container block
 *              (stored and, for compressed blocks, decompressed
 *              content) plus the footer index, or fully scan a
 *              WLCTRC01 dump for truncation; exits non-zero on
 *              corruption
 *
 * Examples:
 *   wlcrc_trace generate --workload gcc --lines 100000 --out gcc.trc
 *   wlcrc_trace generate --mix "lesl:2,libq:1" --lines 1e5 \
 *       --out blend.trc --format v3 --codec lz
 *   wlcrc_trace convert old.trc new.trc --format v3
 *   wlcrc_trace sort blend.trc sorted.trc --format v3 --mem-mb 64
 *   wlcrc_trace info blend.trc --blocks
 *   wlcrc_trace verify blend.trc
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "tracefile/block_codec.hh"
#include "tracefile/format.hh"
#include "tracefile/mapped_trace.hh"
#include "tracefile/source.hh"
#include "tracefile/writer.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"

namespace
{

using namespace wlcrc;

void
usageText(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: wlcrc_trace <subcommand> [options]\n"
        "  generate (--workload W | --random | --mix \"A:w,B:w\")\n"
        "           --out FILE [--lines N] [--seed S]\n"
        "           [--format v1|v2|v3] [--codec raw|lz|zstd]\n"
        "           [--block-records N]\n"
        "  convert  IN OUT [--format v1|v2|v3] [--codec C]\n"
        "           [--block-records N]\n"
        "  sort     IN OUT [--format v1|v2|v3] [--codec C]\n"
        "           [--block-records N] [--mem-mb M]\n"
        "  info     FILE [--blocks]\n"
        "  verify   FILE\n"
        "  --help   print this usage and exit 0\n");
}

int
usage()
{
    usageText(stderr);
    return 2;
}

/** Parse "gcc:2,lbm:1" into blend programs (weight defaults 1). */
std::vector<trace::MixedSynthesizer::Program>
parseMix(const std::string &spec)
{
    std::vector<trace::MixedSynthesizer::Program> programs;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string entry = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (!entry.empty()) {
            trace::MixedSynthesizer::Program p;
            const std::size_t colon = entry.find(':');
            if (colon == std::string::npos) {
                p.profile = entry;
            } else {
                p.profile = entry.substr(0, colon);
                p.weight =
                    std::strtod(entry.c_str() + colon + 1, nullptr);
            }
            programs.push_back(std::move(p));
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (programs.empty())
        throw std::invalid_argument("--mix: no programs in '" +
                                    spec + "'");
    return programs;
}

/** Sink writing any container format behind one call shape. */
class AnyWriter
{
  public:
    AnyWriter(const std::string &path, const std::string &format,
              uint32_t blockRecords, const std::string &codec)
    {
        if (format == "v2" || format == "v3") {
            tracefile::WriterOptions opts;
            opts.recordsPerBlock = blockRecords;
            opts.format = format == "v3"
                              ? tracefile::TraceFormat::v3
                              : tracefile::TraceFormat::v2;
            if (!codec.empty()) {
                if (format != "v3")
                    throw std::invalid_argument(
                        "--codec applies to --format v3 only");
                opts.codec = tracefile::parseCodecName(codec);
            }
            container_.emplace(path, opts);
        } else if (format == "v1") {
            if (!codec.empty())
                throw std::invalid_argument(
                    "--codec applies to --format v3 only");
            v1_.emplace(path);
        } else {
            throw std::invalid_argument("unknown --format '" +
                                        format +
                                        "' (v1, v2 or v3)");
        }
    }

    void
    write(const trace::WriteTransaction &txn)
    {
        if (container_)
            container_->write(txn);
        else
            v1_->write(txn);
    }

    uint64_t
    close()
    {
        if (container_) {
            container_->close();
            return container_->written();
        }
        v1_->close(); // throws on a failed/truncated write
        return v1_->written();
    }

  private:
    std::optional<tracefile::TraceFileWriter> container_;
    std::optional<trace::TraceWriter> v1_;
};

struct Args
{
    std::vector<std::string> positional;
    std::string workload, mix, out;
    std::string format, codec;
    bool random = false, blocks = false;
    uint64_t lines = 10000, seed = 1;
    uint64_t memMb = 64;
    uint32_t blockRecords = tracefile::defaultRecordsPerBlock;
    bool ok = true;
};

Args
parseArgs(int argc, char **argv, int from)
{
    Args a;
    for (int i = from; i < argc; ++i) {
        const std::string s = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                a.ok = false;
                return "";
            }
            return argv[++i];
        };
        if (s == "--workload")
            a.workload = next();
        else if (s == "--mix")
            a.mix = next();
        else if (s == "--random")
            a.random = true;
        else if (s == "--out")
            a.out = next();
        else if (s == "--format")
            a.format = next();
        else if (s == "--codec")
            a.codec = next();
        else if (s == "--lines")
            a.lines = static_cast<uint64_t>(
                std::strtod(next(), nullptr)); // accepts 1e6
        else if (s == "--seed")
            a.seed = std::strtoull(next(), nullptr, 0);
        else if (s == "--mem-mb")
            a.memMb = std::strtoull(next(), nullptr, 0);
        else if (s == "--block-records")
            a.blockRecords =
                static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
        else if (s == "--blocks")
            a.blocks = true;
        else if (!s.empty() && s[0] == '-')
            a.ok = false;
        else
            a.positional.push_back(s);
    }
    return a;
}

int
cmdGenerate(const Args &a)
{
    const int sources = !a.workload.empty() + !a.mix.empty() +
                        a.random;
    if (!a.ok || sources != 1 || a.out.empty() ||
        !a.positional.empty())
        return usage();

    std::function<trace::WriteTransaction()> draw;
    std::string what;
    std::optional<trace::TraceSynthesizer> synth;
    std::optional<trace::MixedSynthesizer> mixed;
    std::optional<trace::RandomWorkload> random;
    if (!a.workload.empty()) {
        synth.emplace(trace::WorkloadProfile::byName(a.workload),
                      a.seed);
        draw = [&] { return synth->next(); };
        what = "workload " + a.workload;
    } else if (!a.mix.empty()) {
        mixed.emplace(parseMix(a.mix), a.seed);
        draw = [&] { return mixed->next(); };
        what = "blend " + a.mix;
    } else {
        random.emplace(a.seed);
        draw = [&] { return random->next(); };
        what = "random data";
    }

    AnyWriter writer(a.out, a.format.empty() ? "v2" : a.format,
                     a.blockRecords, a.codec);
    for (uint64_t i = 0; i < a.lines; ++i)
        writer.write(draw());
    const uint64_t written = writer.close();
    std::printf("wrote %llu records of %s to %s\n",
                static_cast<unsigned long long>(written),
                what.c_str(), a.out.c_str());
    return 0;
}

int
cmdConvert(const Args &a)
{
    if (!a.ok || a.positional.size() != 2)
        return usage();
    const std::string &in = a.positional[0];
    const std::string &out = a.positional[1];

    const auto source = tracefile::openTraceSource(in);
    AnyWriter writer(out, a.format.empty() ? "v2" : a.format,
                     a.blockRecords, a.codec);
    auto cursor = source->open({});
    while (auto t = cursor->next())
        writer.write(*t);
    const uint64_t written = writer.close();
    std::printf("converted %llu records: %s -> %s (%s)\n",
                static_cast<unsigned long long>(written), in.c_str(),
                out.c_str(),
                a.format.empty() ? "v2" : a.format.c_str());
    return 0;
}

/**
 * The sort engine: an external-memory bucket sort over line
 * addresses.
 *
 * A stream that fits the record budget is loaded, stable-sorted
 * (std::stable_sort keeps equal addresses in arrival order — the
 * property the replay's old/new chaining depends on) and written. A
 * bigger stream is distributed: one scan histograms addresses into
 * up to 64K equal-width bins over the stream's [min, max] span, the
 * bins are greedily grouped into contiguous buckets that each fit
 * the budget, a second scan appends every record to its bucket's
 * WLCTRC01 spill file, and the buckets recurse in ascending order.
 * A bucket that still exceeds the budget but spans a single address
 * is already sorted (arrival order IS its final order), so it is
 * stream-copied without ever being held in memory. The address span
 * shrinks ~64000-fold per level, so recursion depth is at most 4
 * even for a full 64-bit address space.
 */
void
sortSource(const tracefile::TransactionSource &src, AnyWriter &out,
           uint64_t budgetRecords, const std::string &tmpBase,
           int depth)
{
    const uint64_t n = src.records();
    if (n == 0)
        return;
    const auto [lo, hi] = src.addrBounds();
    if (n <= budgetRecords) {
        std::vector<trace::WriteTransaction> txns;
        txns.reserve(n);
        auto cursor = src.open({});
        while (auto t = cursor->next())
            txns.push_back(std::move(*t));
        std::stable_sort(txns.begin(), txns.end(),
                         [](const trace::WriteTransaction &x,
                            const trace::WriteTransaction &y) {
                             return x.lineAddr < y.lineAddr;
                         });
        for (const auto &t : txns)
            out.write(t);
        return;
    }
    if (lo == hi) {
        // One address: arrival order is the stable-sorted order.
        auto cursor = src.open({});
        while (auto t = cursor->next())
            out.write(*t);
        return;
    }

    // Distribute. Equal-width bins over the span; every record of
    // one address lands in exactly one bin, so per-line order is
    // preserved through the spill files.
    const unsigned __int128 span =
        static_cast<unsigned __int128>(hi - lo) + 1;
    const uint64_t kBins = 1 << 16;
    const uint64_t width = static_cast<uint64_t>(
        (span + kBins - 1) / kBins); // >= 1
    const auto binOf = [&](uint64_t addr) {
        return (addr - lo) / width;
    };
    std::vector<uint64_t> counts(
        static_cast<std::size_t>(
            std::min<unsigned __int128>(kBins, span)),
        0);
    {
        auto cursor = src.open({});
        while (auto t = cursor->next())
            ++counts[binOf(t->lineAddr)];
    }

    // Greedy contiguous grouping: bucketOf[bin] -> bucket id. A
    // single bin over budget becomes its own (oversized) bucket and
    // recursion deals with it.
    std::vector<std::size_t> bucketOf(counts.size());
    std::size_t buckets = 0;
    uint64_t acc = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        if (b > 0 && acc > 0 && acc + counts[b] > budgetRecords) {
            ++buckets;
            acc = 0;
        }
        bucketOf[b] = buckets;
        acc += counts[b];
    }
    ++buckets;

    std::vector<std::optional<trace::TraceWriter>> spill(buckets);
    std::vector<std::string> spillPath(buckets);
    for (std::size_t k = 0; k < buckets; ++k) {
        spillPath[k] = tmpBase + "." + std::to_string(depth) + "." +
                       std::to_string(k) + ".tmp";
        spill[k].emplace(spillPath[k]);
    }
    {
        auto cursor = src.open({});
        while (auto t = cursor->next())
            spill[bucketOf[binOf(t->lineAddr)]]->write(*t);
    }
    for (auto &w : spill)
        w->close();
    spill.clear(); // release the write handles before re-reading

    for (std::size_t k = 0; k < buckets; ++k) {
        const tracefile::V1FileSource part(spillPath[k]);
        sortSource(part, out, budgetRecords, tmpBase, depth + 1);
        std::filesystem::remove(spillPath[k]);
    }
}

int
cmdSort(const Args &a)
{
    if (!a.ok || a.positional.size() != 2 || a.memMb == 0)
        return usage();
    const std::string &in = a.positional[0];
    const std::string &out = a.positional[1];

    const auto source = tracefile::openTraceSource(in);
    const uint64_t budgetRecords =
        std::max<uint64_t>(1, a.memMb * 1024 * 1024 /
                                  sizeof(trace::WriteTransaction));
    AnyWriter writer(out, a.format.empty() ? "v2" : a.format,
                     a.blockRecords, a.codec);
    sortSource(*source, writer, budgetRecords, out + ".sort", 0);
    const uint64_t written = writer.close();
    std::printf("sorted %llu records by line address: %s -> %s\n",
                static_cast<unsigned long long>(written), in.c_str(),
                out.c_str());
    return 0;
}

int
cmdInfo(const Args &a)
{
    if (!a.ok || a.positional.size() != 1)
        return usage();
    const std::string &path = a.positional[0];

    const auto format = tracefile::detectFormat(path);
    const char *how =
        format == tracefile::TraceFormat::v1
            ? "sequential dump, streamed scans only"
            : (format == tracefile::TraceFormat::v2
                   ? "blocked + indexed, mmap random access"
                   : "blocked + indexed, per-block compression");
    const char digit = format == tracefile::TraceFormat::v1   ? '1'
                       : format == tracefile::TraceFormat::v2 ? '2'
                                                              : '3';
    std::printf("file:    %s\nformat:  WLCTRC0%c (%s)\n",
                path.c_str(), digit, how);
    if (format == tracefile::TraceFormat::v1) {
        const tracefile::V1FileSource source(path);
        std::printf("records: %llu (from file size; run `verify` to "
                    "check for truncation)\n",
                    static_cast<unsigned long long>(
                        source.records()));
        return 0;
    }

    const tracefile::MappedTrace trace(path);
    std::printf("records: %llu\nblocks:  %llu x %u records "
                "(%u B raw each)\naddrs:   [%llu, %llu]\n",
                static_cast<unsigned long long>(trace.records()),
                static_cast<unsigned long long>(trace.blockCount()),
                trace.recordsPerBlock(),
                trace.recordsPerBlock() * tracefile::recordBytes,
                static_cast<unsigned long long>(trace.minAddr()),
                static_cast<unsigned long long>(trace.maxAddr()));
    if (trace.format() == tracefile::TraceFormat::v3) {
        const uint64_t raw =
            trace.records() * tracefile::recordBytes;
        const uint64_t stored = trace.storedBytes();
        uint64_t perCodec[3] = {0, 0, 0};
        for (uint64_t b = 0; b < trace.blockCount(); ++b)
            ++perCodec[static_cast<unsigned>(
                trace.blockInfo(b).codec)];
        std::printf("stored:  %llu B of %llu B raw "
                    "(ratio %.2fx; blocks: %llu raw, %llu lz, "
                    "%llu zstd)\n",
                    static_cast<unsigned long long>(stored),
                    static_cast<unsigned long long>(raw),
                    stored ? static_cast<double>(raw) /
                                 static_cast<double>(stored)
                           : 0.0,
                    static_cast<unsigned long long>(perCodec[0]),
                    static_cast<unsigned long long>(perCodec[1]),
                    static_cast<unsigned long long>(perCodec[2]));
    }
    if (a.blocks) {
        std::printf("%8s %8s %12s %12s %10s %6s %10s %7s\n", "block",
                    "count", "min_addr", "max_addr", "crc32",
                    "codec", "stored_b", "ratio");
        for (uint64_t b = 0; b < trace.blockCount(); ++b) {
            const auto &info = trace.blockInfo(b);
            std::printf(
                "%8llu %8u %12llu %12llu 0x%08x %6s %10u %6.2fx\n",
                static_cast<unsigned long long>(b), info.count,
                static_cast<unsigned long long>(info.minAddr),
                static_cast<unsigned long long>(info.maxAddr),
                info.crc, tracefile::codecName(info.codec),
                info.storedBytes,
                info.storedBytes
                    ? static_cast<double>(info.count *
                                          tracefile::recordBytes) /
                          static_cast<double>(info.storedBytes)
                    : 0.0);
        }
    }
    return 0;
}

int
cmdVerify(const Args &a)
{
    if (!a.ok || a.positional.size() != 1)
        return usage();
    const std::string &path = a.positional[0];

    if (tracefile::detectFormat(path) == tracefile::TraceFormat::v1) {
        // No checksums in v1 — the strongest audit is a full scan,
        // which throws on a truncated trailing record.
        trace::TraceReader reader(path);
        uint64_t n = 0;
        while (reader.read())
            ++n;
        std::printf("ok: %s: %llu records, no truncation "
                    "(WLCTRC01 carries no checksums)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(n));
        return 0;
    }
    // Construction already validates header/trailer/index CRC and
    // the v3 block chain; verifyAll() re-checksums every stored
    // block and, for compressed blocks, the decompressed content.
    const tracefile::MappedTrace trace(path);
    const uint64_t n = trace.verifyAll();
    std::printf("ok: %s: %llu records in %llu blocks, all "
                "checksums match\n",
                path.c_str(), static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(trace.blockCount()));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "help") {
        usageText(stdout);
        return 0;
    }
    try {
        const Args args = parseArgs(argc, argv, 2);
        if (cmd == "generate")
            return cmdGenerate(args);
        if (cmd == "convert")
            return cmdConvert(args);
        if (cmd == "sort")
            return cmdSort(args);
        if (cmd == "info")
            return cmdInfo(args);
        if (cmd == "verify")
            return cmdVerify(args);
        return usage();
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}
