/**
 * @file
 * wlcrc_trace: the trace-store Swiss army knife. Everything the
 * simulator consumes through --trace-in is produced, migrated and
 * audited here; all subcommands stream block-by-block / record-by-
 * record, so arbitrarily large traces fit in constant memory.
 *
 * Subcommands:
 *   generate   synthesize a trace file from a benchmark profile, the
 *              random workload, or a multi-programmed blend of
 *              profiles (--mix "gcc:2,lbm:1" weights the programs'
 *              shares of the write stream)
 *   convert    re-frame a trace between WLCTRC01 and WLCTRC02 (the
 *              record encoding is shared, so conversion is lossless
 *              both ways)
 *   info       print header/index facts: format, records, blocks,
 *              address range; --blocks adds the per-block table
 *   verify     audit integrity — CRC-check every WLCTRC02 block (and
 *              the footer index), or fully scan a WLCTRC01 dump for
 *              truncation; exits non-zero on corruption
 *
 * Examples:
 *   wlcrc_trace generate --workload gcc --lines 100000 --out gcc.trc
 *   wlcrc_trace generate --mix "lesl:2,libq:1" --lines 1e5 \
 *       --out blend.trc
 *   wlcrc_trace convert old.trc new.trc --format v2
 *   wlcrc_trace info blend.trc --blocks
 *   wlcrc_trace verify blend.trc
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "tracefile/format.hh"
#include "tracefile/mapped_trace.hh"
#include "tracefile/source.hh"
#include "tracefile/writer.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"

namespace
{

using namespace wlcrc;

void
usageText(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: wlcrc_trace <subcommand> [options]\n"
        "  generate (--workload W | --random | --mix \"A:w,B:w\")\n"
        "           --out FILE [--lines N] [--seed S]\n"
        "           [--format v1|v2] [--block-records N]\n"
        "  convert  IN OUT [--format v1|v2] [--block-records N]\n"
        "  info     FILE [--blocks]\n"
        "  verify   FILE\n"
        "  --help   print this usage and exit 0\n");
}

int
usage()
{
    usageText(stderr);
    return 2;
}

/** Parse "gcc:2,lbm:1" into blend programs (weight defaults 1). */
std::vector<trace::MixedSynthesizer::Program>
parseMix(const std::string &spec)
{
    std::vector<trace::MixedSynthesizer::Program> programs;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string entry = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (!entry.empty()) {
            trace::MixedSynthesizer::Program p;
            const std::size_t colon = entry.find(':');
            if (colon == std::string::npos) {
                p.profile = entry;
            } else {
                p.profile = entry.substr(0, colon);
                p.weight =
                    std::strtod(entry.c_str() + colon + 1, nullptr);
            }
            programs.push_back(std::move(p));
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (programs.empty())
        throw std::invalid_argument("--mix: no programs in '" +
                                    spec + "'");
    return programs;
}

/** Sink writing either container format behind one call shape. */
class AnyWriter
{
  public:
    AnyWriter(const std::string &path, const std::string &format,
              uint32_t blockRecords)
    {
        if (format == "v2")
            v2_.emplace(path, blockRecords);
        else if (format == "v1")
            v1_.emplace(path);
        else
            throw std::invalid_argument("unknown --format '" +
                                        format + "' (v1 or v2)");
    }

    void
    write(const trace::WriteTransaction &txn)
    {
        if (v2_)
            v2_->write(txn);
        else
            v1_->write(txn);
    }

    uint64_t
    close()
    {
        if (v2_) {
            v2_->close();
            return v2_->written();
        }
        v1_->close(); // throws on a failed/truncated write
        return v1_->written();
    }

  private:
    std::optional<tracefile::TraceFileWriter> v2_;
    std::optional<trace::TraceWriter> v1_;
};

struct Args
{
    std::vector<std::string> positional;
    std::string workload, mix, out;
    std::string format;
    bool random = false, blocks = false;
    uint64_t lines = 10000, seed = 1;
    uint32_t blockRecords = tracefile::defaultRecordsPerBlock;
    bool ok = true;
};

Args
parseArgs(int argc, char **argv, int from)
{
    Args a;
    for (int i = from; i < argc; ++i) {
        const std::string s = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                a.ok = false;
                return "";
            }
            return argv[++i];
        };
        if (s == "--workload")
            a.workload = next();
        else if (s == "--mix")
            a.mix = next();
        else if (s == "--random")
            a.random = true;
        else if (s == "--out")
            a.out = next();
        else if (s == "--format")
            a.format = next();
        else if (s == "--lines")
            a.lines = static_cast<uint64_t>(
                std::strtod(next(), nullptr)); // accepts 1e6
        else if (s == "--seed")
            a.seed = std::strtoull(next(), nullptr, 0);
        else if (s == "--block-records")
            a.blockRecords =
                static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
        else if (s == "--blocks")
            a.blocks = true;
        else if (!s.empty() && s[0] == '-')
            a.ok = false;
        else
            a.positional.push_back(s);
    }
    return a;
}

int
cmdGenerate(const Args &a)
{
    const int sources = !a.workload.empty() + !a.mix.empty() +
                        a.random;
    if (!a.ok || sources != 1 || a.out.empty() ||
        !a.positional.empty())
        return usage();

    std::function<trace::WriteTransaction()> draw;
    std::string what;
    std::optional<trace::TraceSynthesizer> synth;
    std::optional<trace::MixedSynthesizer> mixed;
    std::optional<trace::RandomWorkload> random;
    if (!a.workload.empty()) {
        synth.emplace(trace::WorkloadProfile::byName(a.workload),
                      a.seed);
        draw = [&] { return synth->next(); };
        what = "workload " + a.workload;
    } else if (!a.mix.empty()) {
        mixed.emplace(parseMix(a.mix), a.seed);
        draw = [&] { return mixed->next(); };
        what = "blend " + a.mix;
    } else {
        random.emplace(a.seed);
        draw = [&] { return random->next(); };
        what = "random data";
    }

    AnyWriter writer(a.out, a.format.empty() ? "v2" : a.format,
                     a.blockRecords);
    for (uint64_t i = 0; i < a.lines; ++i)
        writer.write(draw());
    const uint64_t written = writer.close();
    std::printf("wrote %llu records of %s to %s\n",
                static_cast<unsigned long long>(written),
                what.c_str(), a.out.c_str());
    return 0;
}

int
cmdConvert(const Args &a)
{
    if (!a.ok || a.positional.size() != 2)
        return usage();
    const std::string &in = a.positional[0];
    const std::string &out = a.positional[1];

    const auto source = tracefile::openTraceSource(in);
    AnyWriter writer(out, a.format.empty() ? "v2" : a.format,
                     a.blockRecords);
    auto cursor = source->open({});
    while (auto t = cursor->next())
        writer.write(*t);
    const uint64_t written = writer.close();
    std::printf("converted %llu records: %s -> %s (%s)\n",
                static_cast<unsigned long long>(written), in.c_str(),
                out.c_str(),
                a.format.empty() ? "v2" : a.format.c_str());
    return 0;
}

int
cmdInfo(const Args &a)
{
    if (!a.ok || a.positional.size() != 1)
        return usage();
    const std::string &path = a.positional[0];

    const auto format = tracefile::detectFormat(path);
    std::printf("file:    %s\nformat:  WLCTRC0%c (%s)\n",
                path.c_str(),
                format == tracefile::TraceFormat::v1 ? '1' : '2',
                format == tracefile::TraceFormat::v1
                    ? "sequential dump, streamed scans only"
                    : "blocked + indexed, mmap random access");
    if (format == tracefile::TraceFormat::v1) {
        const tracefile::V1FileSource source(path);
        std::printf("records: %llu (from file size; run `verify` to "
                    "check for truncation)\n",
                    static_cast<unsigned long long>(
                        source.records()));
        return 0;
    }

    const tracefile::MappedTrace trace(path);
    std::printf("records: %llu\nblocks:  %llu x %u records "
                "(%u B each)\naddrs:   [%llu, %llu]\n",
                static_cast<unsigned long long>(trace.records()),
                static_cast<unsigned long long>(trace.blockCount()),
                trace.recordsPerBlock(),
                trace.recordsPerBlock() * tracefile::recordBytes,
                static_cast<unsigned long long>(trace.minAddr()),
                static_cast<unsigned long long>(trace.maxAddr()));
    if (a.blocks) {
        std::printf("%8s %8s %12s %12s %10s\n", "block", "count",
                    "min_addr", "max_addr", "crc32");
        for (uint64_t b = 0; b < trace.blockCount(); ++b) {
            const auto &info = trace.blockInfo(b);
            std::printf("%8llu %8u %12llu %12llu 0x%08x\n",
                        static_cast<unsigned long long>(b),
                        info.count,
                        static_cast<unsigned long long>(info.minAddr),
                        static_cast<unsigned long long>(info.maxAddr),
                        info.crc);
        }
    }
    return 0;
}

int
cmdVerify(const Args &a)
{
    if (!a.ok || a.positional.size() != 1)
        return usage();
    const std::string &path = a.positional[0];

    if (tracefile::detectFormat(path) == tracefile::TraceFormat::v1) {
        // No checksums in v1 — the strongest audit is a full scan,
        // which throws on a truncated trailing record.
        trace::TraceReader reader(path);
        uint64_t n = 0;
        while (reader.read())
            ++n;
        std::printf("ok: %s: %llu records, no truncation "
                    "(WLCTRC01 carries no checksums)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(n));
        return 0;
    }
    // Construction already validates header/trailer/index CRC;
    // verifyAll() re-checksums every record block.
    const tracefile::MappedTrace trace(path);
    const uint64_t n = trace.verifyAll();
    std::printf("ok: %s: %llu records in %llu blocks, all "
                "checksums match\n",
                path.c_str(), static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(trace.blockCount()));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "help") {
        usageText(stdout);
        return 0;
    }
    try {
        const Args args = parseArgs(argc, argv, 2);
        if (cmd == "generate")
            return cmdGenerate(args);
        if (cmd == "convert")
            return cmdConvert(args);
        if (cmd == "info")
            return cmdInfo(args);
        if (cmd == "verify")
            return cmdVerify(args);
        return usage();
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}
