/**
 * @file
 * wlcrc_load: the load harness for wlcrc_serve — N concurrent
 * connections streaming framed WriteTransactions from synthesizer
 * profiles or an existing WLCTRC corpus, with target-rate pacing and
 * a latency/throughput summary.
 *
 * Stream partitioning (the default): every connection derives the
 * SAME global stream from --seed and keeps only the records whose
 * addr %% connections equals its index — exactly how the offline
 * runner's shard cursors partition a trace. With the server started
 * with --banks equal to --connections and the same stream, bank i
 * receives exactly connection i's records in order, so a captured
 * session replays offline to bit-identical statistics
 * (docs/serve.md). --independent trades that equivalence for raw
 * stress: each connection synthesizes its own stream (childSeed per
 * connection, disjoint address windows).
 *
 * Options:
 *   --host <H>             server address (default 127.0.0.1)
 *   --port <P>             server port (required)
 *   --connections <N>      concurrent connections (default 4)
 *   --lines <N>            TOTAL writes across all connections
 *                          (default 10000; partitioned by address)
 *   --workload <name> | --random | --trace-in <file>
 *                          stream source (exactly one)
 *   --seed <S>             synthesis seed (default 1)
 *   --rate <W>             per-connection writes/second pacing
 *                          (default 0 = as fast as possible)
 *   --frame-records <N>    records per Write frame (default 64)
 *   --ack-every <N>        request an Ack every N frames (default
 *                          32; 0 = never) — the RTT sample includes
 *                          any backpressure stall
 *   --independent          per-connection independent streams (see
 *                          above; breaks capture-replay equivalence)
 *   --stats                don't stream: send one StatsReq, print
 *                          the telemetry JSON and exit
 *   --help                 print usage and exit 0
 *
 * Output: a summary with per-run totals, writes/s and ack RTT
 * percentiles. Exit status 0 only if every connection closed with a
 * clean ByeAck.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "serve/client.hh"
#include "tracefile/source.hh"
#include "trace/workload.hh"

namespace
{

using namespace wlcrc;

struct Options
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    unsigned connections = 4;
    uint64_t lines = 10000;
    std::string workload;
    bool random = false;
    std::string traceIn;
    uint64_t seed = 1;
    double rate = 0;
    std::size_t frameRecords = 64;
    uint64_t ackEvery = 32;
    bool independent = false;
    bool statsOnly = false;
    bool help = false;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --port P [--host H] [--connections N] "
        "[--lines N]\n"
        "          (--workload W | --random | --trace-in F) "
        "[--seed S]\n"
        "          [--rate W] [--frame-records N] [--ack-every N]\n"
        "          [--independent] [--stats] [--help]\n",
        argv0);
}

std::optional<Options>
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--host") {
            if (const char *v = next())
                o.host = v;
        } else if (a == "--port") {
            if (const char *v = next())
                o.port = static_cast<uint16_t>(
                    std::strtoul(v, nullptr, 0));
        } else if (a == "--connections") {
            if (const char *v = next())
                o.connections = std::strtoul(v, nullptr, 0);
        } else if (a == "--lines") {
            if (const char *v = next())
                o.lines = std::strtoull(v, nullptr, 0);
        } else if (a == "--workload") {
            if (const char *v = next())
                o.workload = v;
        } else if (a == "--random") {
            o.random = true;
        } else if (a == "--trace-in") {
            if (const char *v = next())
                o.traceIn = v;
        } else if (a == "--seed") {
            if (const char *v = next())
                o.seed = std::strtoull(v, nullptr, 0);
        } else if (a == "--rate") {
            if (const char *v = next())
                o.rate = std::strtod(v, nullptr);
        } else if (a == "--frame-records") {
            if (const char *v = next())
                o.frameRecords = std::strtoull(v, nullptr, 0);
        } else if (a == "--ack-every") {
            if (const char *v = next())
                o.ackEvery = std::strtoull(v, nullptr, 0);
        } else if (a == "--independent") {
            o.independent = true;
        } else if (a == "--stats") {
            o.statsOnly = true;
        } else if (a == "--help") {
            o.help = true;
        } else {
            usage(argv[0]);
            return std::nullopt;
        }
    }
    if (o.help)
        return o;
    if (o.port == 0) {
        std::fprintf(stderr, "--port is required\n");
        usage(argv[0]);
        return std::nullopt;
    }
    if (o.statsOnly)
        return o;
    const int sources =
        !o.workload.empty() + o.random + !o.traceIn.empty();
    if (sources != 1 || o.connections == 0 ||
        o.frameRecords == 0) {
        usage(argv[0]);
        return std::nullopt;
    }
    return o;
}

/** Per-connection outcome. */
struct ConnResult
{
    uint64_t sent = 0;
    uint64_t acked = 0;       //!< admitted count from the last Ack
    std::vector<double> rttUs;
    bool clean = false;
    std::string error;
};

/**
 * Pull interface over the connection's share of the stream. For the
 * synthesizers this re-derives the full global stream and filters by
 * address residue (the shard idiom); a trace cursor filters the same
 * way inside the reader.
 */
class StreamSlice
{
  public:
    virtual ~StreamSlice() = default;
    virtual std::optional<trace::WriteTransaction> next() = 0;
};

class SynthSlice : public StreamSlice
{
  public:
    SynthSlice(const Options &o, unsigned conn)
    {
        if (o.independent) {
            // Stress mode: own stream, own address window.
            seedOffset_ = static_cast<uint64_t>(conn) << 32;
            remaining_ = o.lines / o.connections +
                         (conn < o.lines % o.connections ? 1 : 0);
            filter_ = {1, 0};
            makeSynth(o, childSeed(o.seed, conn));
        } else {
            // Partitioned mode: the full global stream, filtered to
            // this connection's residue class.
            remaining_ = o.lines;
            filter_ = {o.connections, conn};
            makeSynth(o, o.seed);
        }
    }

    std::optional<trace::WriteTransaction>
    next() override
    {
        while (remaining_ > 0) {
            --remaining_;
            trace::WriteTransaction txn =
                synth_ ? synth_->next() : random_->next();
            txn.lineAddr += seedOffset_;
            if (filter_.accepts(txn.lineAddr))
                return txn;
        }
        return std::nullopt;
    }

  private:
    void
    makeSynth(const Options &o, uint64_t seed)
    {
        if (o.random)
            random_ =
                std::make_unique<trace::RandomWorkload>(seed);
        else
            synth_ = std::make_unique<trace::TraceSynthesizer>(
                trace::WorkloadProfile::byName(o.workload), seed);
    }

    std::unique_ptr<trace::TraceSynthesizer> synth_;
    std::unique_ptr<trace::RandomWorkload> random_;
    tracefile::ShardFilter filter_;
    uint64_t remaining_ = 0;
    uint64_t seedOffset_ = 0;
};

class CursorSlice : public StreamSlice
{
  public:
    CursorSlice(const tracefile::TransactionSource &source,
                unsigned connections, unsigned conn)
        : cursor_(source.open(
              tracefile::ShardFilter{connections, conn}))
    {}

    std::optional<trace::WriteTransaction>
    next() override
    {
        return cursor_->next();
    }

  private:
    std::unique_ptr<tracefile::TraceCursor> cursor_;
};

void
runConnection(const Options &o,
              const tracefile::TransactionSource *source,
              unsigned conn, ConnResult &out)
{
    using clock = std::chrono::steady_clock;
    try {
        std::unique_ptr<StreamSlice> slice;
        if (source)
            slice = std::make_unique<CursorSlice>(
                *source, o.connections, conn);
        else
            slice = std::make_unique<SynthSlice>(o, conn);

        serve::Client client;
        client.connect(o.host, o.port);
        client.hello(conn);

        std::vector<trace::WriteTransaction> frame;
        frame.reserve(o.frameRecords);
        uint64_t framesSent = 0;
        const auto start = clock::now();
        const auto flush = [&](bool streamDone) {
            if (frame.empty())
                return;
            const bool wantAck =
                o.ackEvery &&
                (framesSent % o.ackEvery == 0 || streamDone);
            const auto t0 = clock::now();
            client.sendWrites(frame.data(), frame.size(), wantAck);
            if (wantAck) {
                out.acked = client.readAck();
                out.rttUs.push_back(
                    std::chrono::duration<double, std::micro>(
                        clock::now() - t0)
                        .count());
            }
            out.sent += frame.size();
            ++framesSent;
            frame.clear();
            if (o.rate > 0) {
                // Pace against the ideal schedule, not the previous
                // send — bursts after a stall catch back up.
                const double dueSec =
                    static_cast<double>(out.sent) / o.rate;
                const auto due =
                    start + std::chrono::duration_cast<
                                clock::duration>(
                                std::chrono::duration<double>(
                                    dueSec));
                std::this_thread::sleep_until(due);
            }
        };
        for (;;) {
            auto txn = slice->next();
            if (!txn)
                break;
            frame.push_back(*txn);
            if (frame.size() >= o.frameRecords)
                flush(false);
        }
        flush(true);
        (void)client.bye();
        out.clean = true;
    } catch (const std::exception &e) {
        out.error = e.what();
    }
}

double
percentile(std::vector<double> &v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1));
    return v[idx];
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parse(argc, argv);
    if (!opts)
        return 2;
    if (opts->help) {
        usage(argv[0]);
        return 0;
    }
    try {
        if (opts->statsOnly) {
            serve::Client client;
            client.connect(opts->host, opts->port);
            std::printf("%s\n", client.stats().c_str());
            return 0;
        }

        std::shared_ptr<tracefile::TransactionSource> source;
        if (!opts->traceIn.empty())
            source = tracefile::openTraceSource(opts->traceIn);

        std::vector<ConnResult> results(opts->connections);
        std::vector<std::thread> threads;
        threads.reserve(opts->connections);
        const auto start = std::chrono::steady_clock::now();
        for (unsigned c = 0; c < opts->connections; ++c)
            threads.emplace_back([&, c] {
                runConnection(*opts, source.get(), c, results[c]);
            });
        for (auto &t : threads)
            t.join();
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();

        uint64_t sent = 0;
        unsigned cleanConns = 0;
        std::vector<double> rtt;
        for (unsigned c = 0; c < opts->connections; ++c) {
            const ConnResult &r = results[c];
            sent += r.sent;
            cleanConns += r.clean;
            rtt.insert(rtt.end(), r.rttUs.begin(), r.rttUs.end());
            if (!r.clean)
                std::fprintf(stderr,
                             "wlcrc_load: connection %u: %s\n", c,
                             r.error.c_str());
        }
        double rttSum = 0;
        for (const double v : rtt)
            rttSum += v;
        std::printf(
            "wlcrc_load: %u/%u connections clean, %llu writes in "
            "%.3f s (%.0f writes/s)\n",
            cleanConns, opts->connections,
            static_cast<unsigned long long>(sent), elapsed,
            elapsed > 0 ? static_cast<double>(sent) / elapsed : 0.0);
        if (!rtt.empty())
            std::printf(
                "wlcrc_load: ack rtt us: mean %.1f p50 %.1f "
                "p95 %.1f max %.1f (%zu samples)\n",
                rttSum / static_cast<double>(rtt.size()),
                percentile(rtt, 0.50), percentile(rtt, 0.95),
                percentile(rtt, 1.0), rtt.size());
        return cleanConns == opts->connections ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "wlcrc_load: %s\n", e.what());
        return 1;
    }
}
