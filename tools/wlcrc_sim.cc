/**
 * @file
 * wlcrc_sim: the command-line front end of the trace-driven
 * simulator — the workflow of the paper's Section VII in one binary,
 * executed by the parallel experiment runner (src/runner).
 *
 * Modes:
 *   --workload <name>      synthesize the named benchmark workload
 *   --random               random-data workload (Figures 1a/2)
 *   --trace-in <file>      replay an existing binary trace; the
 *                          format (WLCTRC01 / WLCTRC02) is
 *                          auto-detected and the file is streamed —
 *                          never loaded whole — so traces larger
 *                          than RAM replay fine
 *   --trace-out <file>     also persist the synthesized trace
 *   --trace-format v1|v2   container written by --trace-out
 *                          (default v1; `wlcrc_trace convert`
 *                          re-frames either way)
 *
 * Options:
 *   --scheme <name>        encoding scheme (default WLCRC-16);
 *                          may be repeated
 *   --lines <N>            write transactions to simulate
 *   --seed <S>             RNG seed
 *   --jobs <N>             worker threads (default: all cores)
 *   --shards <N>           shards per scheme run (default 1);
 *                          results depend on the shard count but
 *                          never on --jobs
 *   --vnr                  run Verify-n-Restore after each write
 *   --wear <endurance>     track per-cell wear and project lifetime
 *   --s3 <pJ> --s4 <pJ>    override intermediate-state SET energies
 *   --json                 report JSON instead of CSV
 *   --progress             stderr progress/ETA line while running
 *
 * Output: one row/object per scheme with the paper's three metrics.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runner/grid.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "tracefile/source.hh"
#include "tracefile/writer.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"

namespace
{

using namespace wlcrc;

struct Options
{
    std::vector<std::string> schemes;
    std::string workload;
    std::string traceIn;
    std::string traceOut;
    std::string traceFormat = "v1";
    bool random = false;
    bool vnr = false;
    bool json = false;
    bool progress = false;
    uint64_t lines = 10000;
    uint64_t seed = 1;
    uint64_t wearEndurance = 0;
    unsigned jobs = 0;
    unsigned shards = 1;
    double s3 = 307.0, s4 = 547.0;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--scheme S]... (--workload W | --random | "
        "--trace-in F)\n"
        "          [--trace-out F] [--trace-format v1|v2] "
        "[--lines N] [--seed S] [--jobs N] [--shards N]\n"
        "          [--vnr] [--wear ENDURANCE] [--s3 pJ] [--s4 pJ] "
        "[--json] [--progress]\n",
        argv0);
}

std::optional<Options>
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--scheme") {
            if (const char *v = next())
                o.schemes.push_back(v);
        } else if (a == "--workload") {
            if (const char *v = next())
                o.workload = v;
        } else if (a == "--trace-in") {
            if (const char *v = next())
                o.traceIn = v;
        } else if (a == "--trace-out") {
            if (const char *v = next())
                o.traceOut = v;
        } else if (a == "--trace-format") {
            if (const char *v = next())
                o.traceFormat = v;
        } else if (a == "--random") {
            o.random = true;
        } else if (a == "--vnr") {
            o.vnr = true;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--progress") {
            o.progress = true;
        } else if (a == "--lines") {
            if (const char *v = next())
                o.lines = std::strtoull(v, nullptr, 0);
        } else if (a == "--seed") {
            if (const char *v = next())
                o.seed = std::strtoull(v, nullptr, 0);
        } else if (a == "--jobs") {
            if (const char *v = next())
                o.jobs = std::strtoul(v, nullptr, 0);
        } else if (a == "--shards") {
            if (const char *v = next())
                o.shards = std::strtoul(v, nullptr, 0);
        } else if (a == "--wear") {
            if (const char *v = next())
                o.wearEndurance = std::strtoull(v, nullptr, 0);
        } else if (a == "--s3") {
            if (const char *v = next())
                o.s3 = std::strtod(v, nullptr);
        } else if (a == "--s4") {
            if (const char *v = next())
                o.s4 = std::strtod(v, nullptr);
        } else {
            usage(argv[0]);
            return std::nullopt;
        }
    }
    if (o.schemes.empty())
        o.schemes.push_back("WLCRC-16");
    const int sources = !o.workload.empty() + o.random +
                        !o.traceIn.empty();
    if (sources != 1 ||
        (o.traceFormat != "v1" && o.traceFormat != "v2")) {
        usage(argv[0]);
        return std::nullopt;
    }
    if (!o.traceIn.empty() && !o.traceOut.empty()) {
        std::fprintf(stderr,
                     "--trace-out only persists a synthesized "
                     "stream; to re-frame an existing trace use "
                     "`wlcrc_trace convert`\n");
        usage(argv[0]);
        return std::nullopt;
    }
    return o;
}

/**
 * Persist the synthesized stream for --trace-out, as a legacy
 * WLCTRC01 dump or an indexed WLCTRC02 container. This only writes
 * the file; the runner's shards re-synthesize the identical stream
 * from the seed, so the reported source stays the workload name.
 */
void
persistTrace(const Options &o)
{
    auto emit = [&](auto &&write) {
        if (o.random) {
            trace::RandomWorkload random(o.seed);
            for (uint64_t i = 0; i < o.lines; ++i)
                write(random.next());
        } else {
            trace::TraceSynthesizer synth(
                trace::WorkloadProfile::byName(o.workload), o.seed);
            for (uint64_t i = 0; i < o.lines; ++i)
                write(synth.next());
        }
    };
    if (o.traceFormat == "v2") {
        tracefile::TraceFileWriter writer(o.traceOut);
        emit([&](const trace::WriteTransaction &t) {
            writer.write(t);
        });
        writer.close();
    } else {
        trace::TraceWriter writer(o.traceOut);
        emit([&](const trace::WriteTransaction &t) {
            writer.write(t);
        });
        writer.close();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parse(argc, argv);
    if (!opts)
        return 2;

    try {
        runner::DeviceConfig device;
        device.s3 = opts->s3;
        device.s4 = opts->s4;
        device.vnr = opts->vnr;
        device.wearEndurance = opts->wearEndurance;

        runner::ExperimentGrid grid;
        grid.schemes(opts->schemes)
            .lines(opts->lines)
            .seed(opts->seed)
            .shards(opts->shards)
            .deviceConfigs({device});
        if (!opts->traceIn.empty())
            grid.sources({tracefile::openTraceSource(opts->traceIn)});
        else if (opts->random)
            grid.randomSource();
        else
            grid.workloads({opts->workload});
        if (!opts->traceOut.empty())
            persistTrace(*opts);

        runner::RunnerOptions ropts;
        ropts.jobs = opts->jobs;
        if (opts->progress)
            ropts.progress = runner::stderrProgress("wlcrc_sim");
        const runner::ExperimentRunner engine(ropts);
        const auto results = engine.run(grid);

        for (const auto &r : results) {
            if (!r.ok) {
                std::fprintf(stderr, "error: %s: %s\n",
                             r.spec.label().c_str(),
                             r.error.c_str());
                return 1;
            }
        }
        if (opts->json)
            runner::JsonReporter().write(std::cout, results);
        else
            runner::CsvReporter().write(std::cout, results);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    return 0;
}
