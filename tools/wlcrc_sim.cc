/**
 * @file
 * wlcrc_sim: the command-line front end of the trace-driven
 * simulator — the workflow of the paper's Section VII in one binary,
 * executed by the parallel experiment runner (src/runner).
 *
 * Modes:
 *   --workload <name>      synthesize the named benchmark workload
 *   --random               random-data workload (Figures 1a/2)
 *   --trace-in <file>      replay an existing binary trace; the
 *                          format (WLCTRC01 / WLCTRC02) is
 *                          auto-detected and the file is streamed —
 *                          never loaded whole — so traces larger
 *                          than RAM replay fine
 *   --trace-out <file>     also persist the synthesized trace
 *   --trace-format v1|v2|v3 container written by --trace-out
 *                          (default v1; v3 compresses blocks with
 *                          --trace-codec, default lz; `wlcrc_trace
 *                          convert` re-frames any direction)
 *   --trace-codec <C>      v3 block codec: raw, lz or zstd
 *
 * Options:
 *   --scheme <name>        encoding scheme (default WLCRC-16);
 *                          may be repeated
 *   --lines <N>            write transactions to simulate
 *   --seed <S>             RNG seed
 *   --jobs <N>             worker threads (default: all cores)
 *   --shards <N>           shards per scheme run (default 1);
 *                          results depend on the shard count but
 *                          never on --jobs
 *   --partition <mode>     how shards slice the address space:
 *                          modulo (default) or range (contiguous
 *                          spans of the trace's address range;
 *                          needs --trace-in). Part of the result,
 *                          like --shards
 *   --decode-ahead <N>     stage N compressed blocks ahead of the
 *                          replay on a background decode thread
 *                          (sets $WLCRC_DECODE_AHEAD, so process-
 *                          backend workers inherit it; 0 = decode
 *                          synchronously; results are identical
 *                          either way)
 *   --backend <name>       execution backend: thread (default),
 *                          serial, process (child wlcrc_sim
 *                          workers) or remote (this process becomes
 *                          the head node of a distributed sweep;
 *                          results identical for all)
 *   --listen <port>        (remote) listen on 127.0.0.1:<port> for
 *                          wlcrc_worker connections; 0 or absent
 *                          picks an ephemeral port. The bound port
 *                          is printed to stderr either way
 *   --workers <N>          (remote) spawn N local wlcrc_worker
 *                          processes ($WLCRC_WORKER_BIN, default:
 *                          wlcrc_worker next to this binary)
 *   --reissue-sec <S>      (remote) straggler deadline: an issued
 *                          point unanswered for S seconds is
 *                          reissued to another worker (default 30)
 *   --cache-remote <H:P>   consult a remote head node's result
 *                          cache instead of a local directory
 *                          (wins over --cache-dir/$WLCRC_CACHE_DIR)
 *   --cache-dir <dir>      result cache directory (also via
 *                          $WLCRC_CACHE_DIR); unchanged points are
 *                          served without replaying
 *   --no-cache             ignore $WLCRC_CACHE_DIR for this run
 *   --vnr                  run Verify-n-Restore after each write
 *   --wear <endurance>     track per-cell wear and project lifetime
 *   --wear-csv <file>      dump the merged per-cell wear histogram
 *                          (requires --wear; disables caching for
 *                          the run, since a cache entry cannot
 *                          carry the tracker)
 *   --leveler <cfg>        wear-leveling scheme between replayer
 *                          and device: none, start-gap[:pN][:rN] or
 *                          page-remap[:pN][:gN]; may be repeated
 *                          to sweep schemes
 *   --endurance <cfg>      per-cell endurance budgets,
 *                          mean[:cov[:ecc[:cap]]]
 *   --lifetime             loop the stream until first uncorrectable
 *                          cell death (requires --endurance)
 *   --s3 <pJ> --s4 <pJ>    override intermediate-state SET energies
 *   --simd <kernel>        encode kernel: auto (default), scalar,
 *                          avx2 or neon; results are bit-identical
 *                          for every choice (also via $WLCRC_SIMD;
 *                          propagated to process-backend workers)
 *   --json                 report JSON instead of CSV
 *   --progress             stderr progress/ETA line while running
 *   --worker <specfile>    internal: run one serialized spec and
 *                          print its JSON report (ProcessBackend's
 *                          child protocol — see docs/cli.md)
 *   --help                 print usage and exit 0
 *
 * Output: one row/object per scheme with the paper's three metrics.
 * With a cache, a summary line "wlcrc_sim: cache <dir>: N points:
 * H hits, R replayed, S stored" goes to stderr.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/simd.hh"
#include "runner/backend.hh"
#include "runner/grid.hh"
#include "runner/remote.hh"
#include "runner/report.hh"
#include "runner/result_cache.hh"
#include "runner/runner.hh"
#include "runner/spec_codec.hh"
#include "tracefile/block_codec.hh"
#include "tracefile/source.hh"
#include "tracefile/writer.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"
#include "wearlevel/config.hh"

namespace
{

using namespace wlcrc;

struct Options
{
    std::vector<std::string> schemes;
    std::string workload;
    std::string traceIn;
    std::string traceOut;
    std::string traceFormat = "v1";
    std::string traceCodec;
    std::string partition = "modulo";
    std::string decodeAhead;
    std::string backend = "thread";
    std::string cacheDir; // resolved from flag/env in main()
    std::string cacheRemote;
    unsigned listenPort = 0;
    unsigned workers = 0;
    double reissueSec = 30.0;
    bool remoteFlags = false; //!< any --listen/--workers/--reissue-sec
    std::string workerSpec;
    std::vector<std::string> levelers;
    std::string endurance;
    std::string wearCsv;
    bool lifetime = false;
    bool noCache = false;
    bool random = false;
    bool vnr = false;
    bool json = false;
    bool progress = false;
    bool help = false;
    uint64_t lines = 10000;
    uint64_t seed = 1;
    uint64_t wearEndurance = 0;
    unsigned jobs = 0;
    unsigned shards = 1;
    double s3 = 307.0, s4 = 547.0;
    std::string simd;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--scheme S]... (--workload W | --random | "
        "--trace-in F)\n"
        "          [--trace-out F] [--trace-format v1|v2|v3] "
        "[--trace-codec raw|lz|zstd]\n"
        "          [--lines N] [--seed S] [--jobs N] [--shards N] "
        "[--partition modulo|range] [--decode-ahead N]\n"
        "          [--backend thread|serial|process|remote] "
        "[--cache-dir D] [--no-cache]\n"
        "          [--listen PORT] [--workers N] "
        "[--reissue-sec S] [--cache-remote HOST:PORT]\n"
        "          [--vnr] [--wear ENDURANCE] [--wear-csv F] "
        "[--s3 pJ] [--s4 pJ] [--json] [--progress]\n"
        "          [--simd auto|scalar|avx2|neon]\n"
        "          [--leveler CFG]... [--endurance CFG] "
        "[--lifetime]\n"
        "          [--worker SPECFILE] [--help]\n",
        argv0);
}

std::optional<Options>
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--scheme") {
            if (const char *v = next())
                o.schemes.push_back(v);
        } else if (a == "--workload") {
            if (const char *v = next())
                o.workload = v;
        } else if (a == "--trace-in") {
            if (const char *v = next())
                o.traceIn = v;
        } else if (a == "--trace-out") {
            if (const char *v = next())
                o.traceOut = v;
        } else if (a == "--trace-format") {
            if (const char *v = next())
                o.traceFormat = v;
        } else if (a == "--trace-codec") {
            if (const char *v = next())
                o.traceCodec = v;
        } else if (a == "--partition") {
            if (const char *v = next())
                o.partition = v;
        } else if (a == "--decode-ahead") {
            if (const char *v = next())
                o.decodeAhead = v;
        } else if (a == "--backend") {
            if (const char *v = next())
                o.backend = v;
        } else if (a == "--cache-dir") {
            if (const char *v = next())
                o.cacheDir = v;
        } else if (a == "--cache-remote") {
            if (const char *v = next())
                o.cacheRemote = v;
        } else if (a == "--listen") {
            // Validated strictly: a silently truncated port (or a
            // non-numeric straggler deadline below) would steer
            // the whole cluster somewhere unintended.
            const char *v = next();
            char *end = nullptr;
            const unsigned long port =
                v ? std::strtoul(v, &end, 10) : 0;
            if (!v || end == v || *end != '\0' || port == 0 ||
                port > 65535) {
                std::fprintf(stderr,
                             "--listen needs a port in 1..65535, "
                             "got \"%s\"\n",
                             v ? v : "");
                return std::nullopt;
            }
            o.listenPort = static_cast<unsigned>(port);
            o.remoteFlags = true;
        } else if (a == "--workers") {
            const char *v = next();
            char *end = nullptr;
            const unsigned long n =
                v ? std::strtoul(v, &end, 10) : 0;
            if (!v || end == v || *end != '\0' || n == 0 ||
                n > 4096) {
                std::fprintf(stderr,
                             "--workers needs a count in 1..4096, "
                             "got \"%s\"\n",
                             v ? v : "");
                return std::nullopt;
            }
            o.workers = static_cast<unsigned>(n);
            o.remoteFlags = true;
        } else if (a == "--reissue-sec") {
            const char *v = next();
            char *end = nullptr;
            const double sec = v ? std::strtod(v, &end) : 0.0;
            if (!v || end == v || *end != '\0' || !(sec > 0.0)) {
                std::fprintf(stderr,
                             "--reissue-sec needs a positive "
                             "number of seconds, got \"%s\"\n",
                             v ? v : "");
                return std::nullopt;
            }
            o.reissueSec = sec;
            o.remoteFlags = true;
        } else if (a == "--no-cache") {
            o.noCache = true;
        } else if (a == "--worker") {
            if (const char *v = next())
                o.workerSpec = v;
        } else if (a == "--help") {
            o.help = true;
        } else if (a == "--random") {
            o.random = true;
        } else if (a == "--vnr") {
            o.vnr = true;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--progress") {
            o.progress = true;
        } else if (a == "--lines") {
            if (const char *v = next())
                o.lines = std::strtoull(v, nullptr, 0);
        } else if (a == "--seed") {
            if (const char *v = next())
                o.seed = std::strtoull(v, nullptr, 0);
        } else if (a == "--jobs") {
            if (const char *v = next())
                o.jobs = std::strtoul(v, nullptr, 0);
        } else if (a == "--shards") {
            if (const char *v = next())
                o.shards = std::strtoul(v, nullptr, 0);
        } else if (a == "--wear") {
            if (const char *v = next())
                o.wearEndurance = std::strtoull(v, nullptr, 0);
        } else if (a == "--wear-csv") {
            if (const char *v = next())
                o.wearCsv = v;
        } else if (a == "--leveler") {
            if (const char *v = next())
                o.levelers.push_back(v);
        } else if (a == "--endurance") {
            if (const char *v = next())
                o.endurance = v;
        } else if (a == "--lifetime") {
            o.lifetime = true;
        } else if (a == "--simd") {
            if (const char *v = next())
                o.simd = v;
        } else if (a == "--s3") {
            if (const char *v = next())
                o.s3 = std::strtod(v, nullptr);
        } else if (a == "--s4") {
            if (const char *v = next())
                o.s4 = std::strtod(v, nullptr);
        } else {
            usage(argv[0]);
            return std::nullopt;
        }
    }
    if (o.help || !o.workerSpec.empty())
        return o; // no stream/scheme validation applies
    if (o.schemes.empty())
        o.schemes.push_back("WLCRC-16");
    const int sources = !o.workload.empty() + o.random +
                        !o.traceIn.empty();
    if (sources != 1 ||
        (o.traceFormat != "v1" && o.traceFormat != "v2" &&
         o.traceFormat != "v3") ||
        (o.partition != "modulo" && o.partition != "range") ||
        (o.backend != "thread" && o.backend != "serial" &&
         o.backend != "process" && o.backend != "remote")) {
        usage(argv[0]);
        return std::nullopt;
    }
    if (o.backend == "remote" && o.listenPort == 0 &&
        o.workers == 0) {
        std::fprintf(stderr,
                     "--backend remote needs someone to do the "
                     "work: pass --workers N (spawn local "
                     "wlcrc_worker processes) and/or --listen PORT "
                     "(external workers connect there)\n");
        usage(argv[0]);
        return std::nullopt;
    }
    if (o.backend != "remote" && o.remoteFlags) {
        std::fprintf(stderr,
                     "--listen/--workers/--reissue-sec configure "
                     "the head node; pass --backend remote\n");
        usage(argv[0]);
        return std::nullopt;
    }
    if (!o.traceCodec.empty() && o.traceFormat != "v3") {
        std::fprintf(stderr, "--trace-codec applies to "
                             "--trace-format v3 only\n");
        usage(argv[0]);
        return std::nullopt;
    }
    if (o.partition == "range" && o.traceIn.empty()) {
        std::fprintf(stderr,
                     "--partition range slices a stored trace's "
                     "address span; it needs --trace-in\n");
        usage(argv[0]);
        return std::nullopt;
    }
    if (!o.traceIn.empty() && !o.traceOut.empty()) {
        std::fprintf(stderr,
                     "--trace-out only persists a synthesized "
                     "stream; to re-frame an existing trace use "
                     "`wlcrc_trace convert`\n");
        usage(argv[0]);
        return std::nullopt;
    }
    if (o.lifetime && o.endurance.empty()) {
        std::fprintf(stderr,
                     "--lifetime needs per-cell budgets; pass "
                     "--endurance mean[:cov[:ecc[:cap]]]\n");
        usage(argv[0]);
        return std::nullopt;
    }
    if (!o.wearCsv.empty() && o.wearEndurance == 0) {
        std::fprintf(stderr,
                     "--wear-csv dumps the tracker --wear enables; "
                     "pass --wear ENDURANCE too\n");
        usage(argv[0]);
        return std::nullopt;
    }
    return o;
}

/**
 * Persist the synthesized stream for --trace-out, as a legacy
 * WLCTRC01 dump or an indexed WLCTRC02/03 container. This only writes
 * the file; the runner's shards re-synthesize the identical stream
 * from the seed, so the reported source stays the workload name.
 */
void
persistTrace(const Options &o)
{
    auto emit = [&](auto &&write) {
        if (o.random) {
            trace::RandomWorkload random(o.seed);
            for (uint64_t i = 0; i < o.lines; ++i)
                write(random.next());
        } else {
            trace::TraceSynthesizer synth(
                trace::WorkloadProfile::byName(o.workload), o.seed);
            for (uint64_t i = 0; i < o.lines; ++i)
                write(synth.next());
        }
    };
    if (o.traceFormat == "v2" || o.traceFormat == "v3") {
        tracefile::WriterOptions wopts;
        if (o.traceFormat == "v3") {
            wopts.format = tracefile::TraceFormat::v3;
            if (!o.traceCodec.empty())
                wopts.codec =
                    tracefile::parseCodecName(o.traceCodec);
        }
        tracefile::TraceFileWriter writer(o.traceOut, wopts);
        emit([&](const trace::WriteTransaction &t) {
            writer.write(t);
        });
        writer.close();
    } else {
        trace::TraceWriter writer(o.traceOut);
        emit([&](const trace::WriteTransaction &t) {
            writer.write(t);
        });
        writer.close();
    }
}

/**
 * Child side of the ProcessBackend protocol: run the serialized
 * spec on this process (serially — the parent owns parallelism
 * across points) and print the standard one-element JSON report.
 * Replay failures travel in-band as ok=false objects with exit 0;
 * a non-zero exit means the protocol itself broke (unreadable or
 * malformed spec file).
 */
int
workerMain(const std::string &specFile)
{
    std::ifstream in(specFile, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "error: cannot read spec file %s\n",
                     specFile.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const runner::ExperimentSpec spec =
        runner::parseSpec(text.str());
    const runner::ExperimentResult res =
        runner::runSpecSerial(spec);
    runner::JsonReporter().write(std::cout, {res});
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parse(argc, argv);
    if (!opts)
        return 2;
    if (opts->help) {
        usage(argv[0]);
        return 0;
    }

    try {
        if (!opts->simd.empty()) {
            // Resolve now (validates the name, throws on typos) and
            // export the concrete kernel so process-backend workers
            // inherit the same choice.
            simd::setKernelFromText(opts->simd);
            ::setenv("WLCRC_SIMD",
                     simd::kernelName(simd::activeKernel()), 1);
        }
        if (!opts->decodeAhead.empty()) {
            // Validate here (envU64 would otherwise throw deep in a
            // cursor open) and export, so process-backend workers
            // stage the same depth.
            char *end = nullptr;
            std::strtoull(opts->decodeAhead.c_str(), &end, 10);
            if (end != opts->decodeAhead.c_str() +
                           opts->decodeAhead.size() ||
                opts->decodeAhead.empty())
                throw std::invalid_argument(
                    "--decode-ahead wants a block count, got '" +
                    opts->decodeAhead + "'");
            ::setenv("WLCRC_DECODE_AHEAD",
                     opts->decodeAhead.c_str(), 1);
        }
        if (!opts->workerSpec.empty())
            return workerMain(opts->workerSpec);
        runner::DeviceConfig device;
        device.s3 = opts->s3;
        device.s4 = opts->s4;
        device.vnr = opts->vnr;
        device.wearEndurance = opts->wearEndurance;

        runner::ExperimentGrid grid;
        grid.schemes(opts->schemes)
            .lines(opts->lines)
            .seed(opts->seed)
            .shards(opts->shards)
            .partition(opts->partition == "range"
                           ? tracefile::Partition::range
                           : tracefile::Partition::modulo)
            .deviceConfigs({device});
        if (!opts->traceIn.empty())
            grid.sources({tracefile::openTraceSource(opts->traceIn)});
        else if (opts->random)
            grid.randomSource();
        else
            grid.workloads({opts->workload});
        if (!opts->levelers.empty()) {
            std::vector<wearlevel::LevelerConfig> axis;
            for (const auto &l : opts->levelers)
                axis.push_back(wearlevel::parseLeveler(l));
            grid.levelers(std::move(axis));
        }
        if (!opts->endurance.empty())
            grid.endurances(
                {wearlevel::parseEndurance(opts->endurance)});
        if (opts->lifetime)
            grid.lifetime();
        if (!opts->traceOut.empty())
            persistTrace(*opts);

        runner::RunnerOptions ropts;
        ropts.jobs = opts->jobs;
        if (opts->progress)
            ropts.progress = runner::stderrProgress("wlcrc_sim");

        // --cache-dir wins over $WLCRC_CACHE_DIR; --no-cache
        // disables both (the env var lets CI and wrapper scripts
        // turn caching on without touching every command line);
        // --cache-remote wins over everything.
        std::string cacheDir = opts->cacheDir;
        if (cacheDir.empty())
            cacheDir = envString("WLCRC_CACHE_DIR", "");
        if (opts->noCache)
            cacheDir.clear();
        std::shared_ptr<runner::CacheStore> localStore;
        if (!cacheDir.empty())
            localStore =
                std::make_shared<runner::DirCacheStore>(cacheDir);

        std::shared_ptr<runner::RemoteBackend> remote;
        if (opts->backend == "remote") {
            runner::RemoteBackendOptions bopts;
            bopts.port =
                static_cast<uint16_t>(opts->listenPort);
            bopts.reissueSec = opts->reissueSec;
            if (opts->workers > 0) {
                // $WLCRC_WORKER_BIN overrides the sibling default,
                // so tests and CI can point at a specific build.
                std::string bin =
                    envString("WLCRC_WORKER_BIN", "");
                if (bin.empty()) {
                    const std::string self = argv[0];
                    const auto slash = self.rfind('/');
                    bin = (slash == std::string::npos
                               ? std::string(".")
                               : self.substr(0, slash)) +
                          "/wlcrc_worker";
                }
                bopts.workerBinary = bin;
                bopts.spawnWorkers = opts->workers;
            }
            // The head serves its own cache store to the cluster,
            // so head-local and worker-shared caching are one
            // namespace of entries.
            bopts.serveCache = localStore;
            remote = std::make_shared<runner::RemoteBackend>(
                std::move(bopts));
            std::fprintf(stderr,
                         "wlcrc_sim: head listening on "
                         "127.0.0.1:%u\n",
                         static_cast<unsigned>(remote->port()));
            ropts.backend = remote;
        } else if (opts->backend != "thread") {
            ropts.backend =
                runner::makeBackend(opts->backend, argv[0]);
        }

        runner::RunStats stats;
        std::string cacheLabel = cacheDir;
        if (!opts->cacheRemote.empty()) {
            const auto [host, port] =
                runner::parseHostPort(opts->cacheRemote);
            ropts.cacheStore =
                std::make_shared<runner::RemoteCacheStore>(host,
                                                           port);
            ropts.stats = &stats;
            cacheLabel = "remote " + opts->cacheRemote;
        } else if (localStore) {
            ropts.cacheStore = localStore;
            ropts.stats = &stats;
        }

        const runner::ExperimentRunner engine(ropts);
        std::vector<runner::ExperimentSpec> specs = grid.expand();
        // A wear-histogram dump needs the merged per-cell tracker
        // on each result; such specs run in-process and uncached.
        if (!opts->wearCsv.empty())
            for (auto &s : specs)
                s.keepWearTracker = true;
        const auto results = engine.run(specs);
        if (remote) {
            // Fin to the workers before reporting: the sweep is
            // over, and CI greps these fault counters.
            remote->stop();
            std::string faults;
            for (const auto &[name, n] : remote->errorCounts())
                faults += " " + name + "=" + std::to_string(n);
            if (!faults.empty())
                std::fprintf(stderr,
                             "wlcrc_sim: remote faults:%s\n",
                             faults.c_str());
        }
        if (ropts.stats)
            std::fprintf(stderr, "wlcrc_sim: cache %s: %s\n",
                         cacheLabel.c_str(),
                         stats.summary().c_str());

        for (const auto &r : results) {
            if (!r.ok) {
                std::fprintf(stderr, "error: %s: %s\n",
                             r.spec.label().c_str(),
                             r.error.c_str());
                return 1;
            }
        }
        if (!opts->wearCsv.empty()) {
            std::ofstream out(opts->wearCsv,
                              std::ios::binary | std::ios::trunc);
            if (!out)
                throw std::runtime_error("cannot write " +
                                         opts->wearCsv);
            for (const auto &r : results) {
                out << "# " << r.spec.label() << "\n"
                    << "writes,cells\n";
                if (r.wearTracker)
                    for (const auto &[writes, cells] :
                         r.wearTracker->histogram())
                        out << writes << "," << cells << "\n";
            }
            std::fprintf(stderr,
                         "wlcrc_sim: wear histogram -> %s\n",
                         opts->wearCsv.c_str());
        }
        if (opts->json)
            runner::JsonReporter().write(std::cout, results);
        else
            runner::CsvReporter().write(std::cout, results);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    return 0;
}
