/**
 * @file
 * wlcrc_sim: the command-line front end of the trace-driven
 * simulator — the workflow of the paper's Section VII in one binary.
 *
 * Modes:
 *   --workload <name>      synthesize the named benchmark workload
 *   --random               random-data workload (Figures 1a/2)
 *   --trace-in <file>      replay an existing binary trace
 *   --trace-out <file>     also persist the synthesized trace
 *
 * Options:
 *   --scheme <name>        encoding scheme (default WLCRC-16);
 *                          may be repeated
 *   --lines <N>            write transactions to simulate
 *   --seed <S>             RNG seed
 *   --vnr                  run Verify-n-Restore after each write
 *   --wear <endurance>     track per-cell wear and project lifetime
 *   --s3 <pJ> --s4 <pJ>    override intermediate-state SET energies
 *
 * Output: one CSV row per scheme with the paper's three metrics.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "pcm/wear.hh"
#include "trace/replay.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;

struct Options
{
    std::vector<std::string> schemes;
    std::string workload;
    std::string traceIn;
    std::string traceOut;
    bool random = false;
    bool vnr = false;
    uint64_t lines = 10000;
    uint64_t seed = 1;
    uint64_t wearEndurance = 0;
    double s3 = 307.0, s4 = 547.0;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--scheme S]... (--workload W | --random | "
        "--trace-in F)\n"
        "          [--trace-out F] [--lines N] [--seed S] [--vnr]\n"
        "          [--wear ENDURANCE] [--s3 pJ] [--s4 pJ]\n",
        argv0);
}

std::optional<Options>
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--scheme") {
            if (const char *v = next())
                o.schemes.push_back(v);
        } else if (a == "--workload") {
            if (const char *v = next())
                o.workload = v;
        } else if (a == "--trace-in") {
            if (const char *v = next())
                o.traceIn = v;
        } else if (a == "--trace-out") {
            if (const char *v = next())
                o.traceOut = v;
        } else if (a == "--random") {
            o.random = true;
        } else if (a == "--vnr") {
            o.vnr = true;
        } else if (a == "--lines") {
            if (const char *v = next())
                o.lines = std::strtoull(v, nullptr, 0);
        } else if (a == "--seed") {
            if (const char *v = next())
                o.seed = std::strtoull(v, nullptr, 0);
        } else if (a == "--wear") {
            if (const char *v = next())
                o.wearEndurance = std::strtoull(v, nullptr, 0);
        } else if (a == "--s3") {
            if (const char *v = next())
                o.s3 = std::strtod(v, nullptr);
        } else if (a == "--s4") {
            if (const char *v = next())
                o.s4 = std::strtod(v, nullptr);
        } else {
            usage(argv[0]);
            return std::nullopt;
        }
    }
    if (o.schemes.empty())
        o.schemes.push_back("WLCRC-16");
    const int sources = !o.workload.empty() + o.random +
                        !o.traceIn.empty();
    if (sources != 1) {
        usage(argv[0]);
        return std::nullopt;
    }
    return o;
}

/** Pull the transaction stream for one full scheme run. */
std::vector<trace::WriteTransaction>
gatherTransactions(const Options &o)
{
    std::vector<trace::WriteTransaction> txns;
    if (!o.traceIn.empty()) {
        trace::TraceReader reader(o.traceIn);
        while (const auto t = reader.read())
            txns.push_back(*t);
    } else if (o.random) {
        trace::RandomWorkload random(o.seed);
        for (uint64_t i = 0; i < o.lines; ++i)
            txns.push_back(random.next());
    } else {
        trace::TraceSynthesizer synth(
            trace::WorkloadProfile::byName(o.workload), o.seed);
        for (uint64_t i = 0; i < o.lines; ++i)
            txns.push_back(synth.next());
    }
    if (!o.traceOut.empty()) {
        trace::TraceWriter writer(o.traceOut);
        for (const auto &t : txns)
            writer.write(t);
    }
    return txns;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parse(argc, argv);
    if (!opts)
        return 2;

    try {
        const auto energy = pcm::EnergyModel::withHighStateEnergies(
            opts->s3, opts->s4);
        const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
        const auto txns = gatherTransactions(*opts);

        CsvTable table({"scheme", "writes", "energy_pJ",
                        "updated_cells", "disturb_errors",
                        "compressed_pct", "vnr_iterations",
                        "max_cell_wear", "projected_lifetime"});
        for (const auto &scheme : opts->schemes) {
            const auto codec = core::makeCodec(scheme, energy);
            trace::Replayer rep(*codec, unit, opts->seed);
            pcm::WearTracker wear(codec->cellCount());
            if (opts->wearEndurance)
                rep.device().attachWearTracker(&wear);
            double vnr = 0;
            for (const auto &t : txns) {
                if (opts->vnr) {
                    // Re-encode through the replayer but with the
                    // repair loop enabled on the device write.
                    vnr += rep.step(t).vnrIterations;
                } else {
                    rep.step(t);
                }
            }
            const auto &r = rep.result();
            table.newRow();
            table.add(scheme);
            table.add(r.writes);
            table.add(r.energyPj.mean());
            table.add(r.updatedCells.mean());
            table.add(r.disturbErrors.mean());
            table.add(100.0 * r.compressedWrites /
                      std::max<uint64_t>(1, r.writes));
            table.add(vnr / std::max<uint64_t>(1, r.writes));
            if (opts->wearEndurance) {
                table.add(wear.summary().maxCellWrites);
                table.add(wear.projectedLifetime(
                    opts->wearEndurance, r.writes));
            } else {
                table.add("-");
                table.add("-");
            }
        }
        table.write(std::cout);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    return 0;
}
