/**
 * @file
 * wlcrc_serve: the live write-stream service (docs/serve.md) — a TCP
 * daemon that encodes framed WriteTransaction streams from many
 * concurrent clients through bank-sharded device state, with live
 * telemetry and optional WLCTRC02 capture of every accepted stream.
 *
 * Options:
 *   --port <P>             listen port on 127.0.0.1 (default 0 =
 *                          ephemeral; the bound port is printed as
 *                          "wlcrc_serve: listening on 127.0.0.1:P")
 *   --scheme <name>        encoding scheme (default WLCRC-16)
 *   --banks <N>            device banks / encode workers (default 4);
 *                          bank = lineAddr % banks, seeded like the
 *                          offline runner's shards
 *   --seed <S>             master device seed (default 1)
 *   --queue-capacity <N>   per-bank admission ring (default 1024);
 *                          full ring = backpressure on the client
 *   --capture <dir>        write each connection's accepted stream
 *                          to <dir>/stream-<id>.wlctrc
 *   --capture-format <F>   capture container revision: v2
 *                          (uncompressed, default) or v3
 *                          (per-block compressed)
 *   --capture-codec <C>    v3 block codec: lz (default), zstd (if
 *                          built in) or raw
 *   --max-writes <N>       stop after admitting N writes
 *   --run-seconds <S>      stop after S seconds of wall time
 *   --max-conns <N>        stop after N connections closed
 *   --vnr                  Verify-n-Restore per write
 *   --wear <endurance>     track per-cell wear; final report adds
 *                          the wear block + projected lifetime
 *   --s3 <pJ> --s4 <pJ>    intermediate-state SET energy overrides
 *   --help                 print usage and exit 0
 *
 * SIGINT/SIGTERM drain gracefully: connections are shut down, every
 * admitted write is encoded, capture files get valid CRC'd footers,
 * and the final exact telemetry report is printed as JSON on stdout.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "serve/server.hh"
#include "tracefile/block_codec.hh"

namespace
{

using namespace wlcrc;

wlcrc::serve::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->requestStop(); // an atomic store; signal-safe
}

struct Options
{
    serve::ServerConfig cfg;
    bool help = false;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--port P] [--scheme S] [--banks N] [--seed S]\n"
        "          [--queue-capacity N] [--capture DIR] "
        "[--max-writes N]\n"
        "          [--capture-format v2|v3] "
        "[--capture-codec raw|lz|zstd]\n"
        "          [--run-seconds S] [--max-conns N] [--vnr] "
        "[--wear ENDURANCE]\n"
        "          [--s3 pJ] [--s4 pJ] [--help]\n",
        argv0);
}

std::optional<Options>
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--port") {
            if (const char *v = next())
                o.cfg.port = static_cast<uint16_t>(
                    std::strtoul(v, nullptr, 0));
        } else if (a == "--scheme") {
            if (const char *v = next())
                o.cfg.engine.scheme = v;
        } else if (a == "--banks") {
            if (const char *v = next())
                o.cfg.engine.banks = std::strtoul(v, nullptr, 0);
        } else if (a == "--seed") {
            if (const char *v = next())
                o.cfg.engine.seed = std::strtoull(v, nullptr, 0);
        } else if (a == "--queue-capacity") {
            if (const char *v = next())
                o.cfg.engine.queueCapacity =
                    std::strtoull(v, nullptr, 0);
        } else if (a == "--capture") {
            if (const char *v = next())
                o.cfg.captureDir = v;
        } else if (a == "--capture-format") {
            if (const char *v = next()) {
                const std::string f = v;
                if (f == "v2") {
                    o.cfg.captureOptions.format =
                        tracefile::TraceFormat::v2;
                } else if (f == "v3") {
                    o.cfg.captureOptions.format =
                        tracefile::TraceFormat::v3;
                } else {
                    std::fprintf(
                        stderr,
                        "--capture-format must be v2 or v3\n");
                    return std::nullopt;
                }
            }
        } else if (a == "--capture-codec") {
            if (const char *v = next()) {
                try {
                    o.cfg.captureOptions.codec =
                        tracefile::parseCodecName(v);
                } catch (const std::exception &e) {
                    std::fprintf(stderr, "--capture-codec: %s\n",
                                 e.what());
                    return std::nullopt;
                }
            }
        } else if (a == "--max-writes") {
            if (const char *v = next())
                o.cfg.maxWrites = std::strtoull(v, nullptr, 0);
        } else if (a == "--run-seconds") {
            if (const char *v = next())
                o.cfg.runSeconds = std::strtod(v, nullptr);
        } else if (a == "--max-conns") {
            if (const char *v = next())
                o.cfg.maxConns = std::strtoul(v, nullptr, 0);
        } else if (a == "--vnr") {
            o.cfg.engine.vnr = true;
        } else if (a == "--wear") {
            if (const char *v = next())
                o.cfg.engine.wearEndurance =
                    std::strtoull(v, nullptr, 0);
        } else if (a == "--s3") {
            if (const char *v = next())
                o.cfg.engine.s3 = std::strtod(v, nullptr);
        } else if (a == "--s4") {
            if (const char *v = next())
                o.cfg.engine.s4 = std::strtod(v, nullptr);
        } else if (a == "--help") {
            o.help = true;
        } else {
            usage(argv[0]);
            return std::nullopt;
        }
    }
    if (o.help)
        return o;
    if (o.cfg.captureOptions.format == tracefile::TraceFormat::v3 &&
        !tracefile::codecAvailable(o.cfg.captureOptions.codec)) {
        std::fprintf(stderr,
                     "--capture-codec %s: not built into this "
                     "binary\n",
                     tracefile::codecName(o.cfg.captureOptions.codec));
        return std::nullopt;
    }
    if (o.cfg.engine.banks == 0 ||
        o.cfg.engine.queueCapacity == 0) {
        std::fprintf(stderr,
                     "--banks and --queue-capacity must be > 0\n");
        usage(argv[0]);
        return std::nullopt;
    }
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parse(argc, argv);
    if (!opts)
        return 2;
    if (opts->help) {
        usage(argv[0]);
        return 0;
    }
    try {
        serve::Server server(opts->cfg);
        server.start();
        g_server = &server;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        // The banner is the machine-readable port handshake the load
        // tool, tests and CI parse — keep the format stable.
        std::printf("wlcrc_serve: listening on 127.0.0.1:%u\n",
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);
        server.wait();
        std::printf("%s\n", server.snapshotJson(true).c_str());
        std::fprintf(stderr, "wlcrc_serve: stopped (%s)\n",
                     server.stopReason().c_str());
        g_server = nullptr;
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "wlcrc_serve: %s\n", e.what());
        return 1;
    }
}
