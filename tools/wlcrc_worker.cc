/**
 * @file
 * wlcrc_worker — distributed-sweep worker process.
 *
 * Connects to a wlcrc_sim head node (--backend remote / --listen),
 * pulls grid points over the WRK1 protocol and replays each one
 * through the stock in-process path (runner/remote.hh has the
 * protocol; docs/distributed.md the topology). Run one per core on
 * every machine that should take part in a sweep, or let the head
 * spawn them locally.
 *
 * Writes NOTHING to stdout (except --help): the head's stdout is
 * the byte-compared report stream, and a locally spawned worker
 * shares the terminal. Status goes to stderr.
 *
 * The --kill-after / --hang-after flags are fault injection for the
 * test suite and CI chaos job — a worker that dies or hangs
 * mid-point must never change a sweep's bytes, only its wall time.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/simd.hh"
#include "runner/remote.hh"

namespace
{

void
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: wlcrc_worker --connect HOST:PORT [options]\n"
        "\n"
        "Serve grid points for a wlcrc_sim head node (WRK1\n"
        "protocol, docs/distributed.md). Exits when the head\n"
        "sends Fin or the connection drops.\n"
        "\n"
        "  --connect HOST:PORT  head node to pull work from\n"
        "                       (bare PORT means 127.0.0.1)\n"
        "  --loops N            concurrent pull loops, each its\n"
        "                       own connection (default 1)\n"
        "  --poll-ms MS         idle poll interval (default 50)\n"
        "  --simd KERNEL        encode kernel: auto scalar avx2\n"
        "                       neon (default auto)\n"
        "  --kill-after N       fault injection: SIGKILL self on\n"
        "                       receiving the Nth point\n"
        "  --hang-after N       fault injection: hang forever on\n"
        "                       receiving the Nth point\n"
        "  --help               this text\n");
}

struct Options
{
    wlcrc::runner::WorkerOptions worker;
    unsigned loops = 1;
    std::string simd = "auto";
    bool help = false;
};

Options
parse(int argc, char **argv)
{
    Options o;
    bool haveConnect = false;
    auto value = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            throw std::runtime_error(std::string(flag) +
                                     " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            o.help = true;
        } else if (arg == "--connect") {
            const auto [host, port] = wlcrc::runner::parseHostPort(
                value(i, "--connect"));
            o.worker.host = host;
            o.worker.port = port;
            haveConnect = true;
        } else if (arg == "--loops") {
            o.loops = static_cast<unsigned>(
                std::stoul(value(i, "--loops")));
            if (o.loops == 0)
                throw std::runtime_error("--loops must be >= 1");
        } else if (arg == "--poll-ms") {
            o.worker.pollMs =
                std::stoi(value(i, "--poll-ms"));
            if (o.worker.pollMs < 0)
                throw std::runtime_error(
                    "--poll-ms must be >= 0");
        } else if (arg == "--simd") {
            o.simd = value(i, "--simd");
        } else if (arg == "--kill-after") {
            o.worker.killAfter =
                std::stoi(value(i, "--kill-after"));
        } else if (arg == "--hang-after") {
            o.worker.hangAfter =
                std::stoi(value(i, "--hang-after"));
        } else {
            throw std::runtime_error("unknown option " + arg);
        }
    }
    if (!o.help && !haveConnect)
        throw std::runtime_error("--connect HOST:PORT is required");
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wlcrc;

    Options opts;
    try {
        opts = parse(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "wlcrc_worker: %s\n", e.what());
        usage(stderr);
        return 2;
    }
    if (opts.help) {
        usage(stdout);
        return 0;
    }
    try {
        simd::setKernelFromText(opts.simd);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "wlcrc_worker: %s\n", e.what());
        return 2;
    }

    // Each loop is an independent connection so the head's queue,
    // reissue and death accounting see N workers, not one.
    std::vector<std::thread> threads;
    std::vector<runner::WorkerStats> stats(opts.loops);
    std::vector<std::string> errors(opts.loops);
    for (unsigned i = 0; i < opts.loops; ++i) {
        threads.emplace_back([&, i] {
            try {
                stats[i] = runner::runWorkerLoop(opts.worker);
            } catch (const std::exception &e) {
                errors[i] = e.what();
            }
        });
    }
    runner::WorkerStats total;
    bool failed = false;
    for (unsigned i = 0; i < opts.loops; ++i) {
        threads[i].join();
        total.pointsRun += stats[i].pointsRun;
        total.failures += stats[i].failures;
        if (!errors[i].empty()) {
            failed = true;
            std::fprintf(stderr, "wlcrc_worker: loop %u: %s\n", i,
                         errors[i].c_str());
        }
    }
    std::fprintf(stderr,
                 "wlcrc_worker: served %llu point%s (%llu failed "
                 "in-band)\n",
                 static_cast<unsigned long long>(total.pointsRun),
                 total.pointsRun == 1 ? "" : "s",
                 static_cast<unsigned long long>(total.failures));
    return failed ? 1 : 0;
}
