/**
 * @file
 * Unit tests for the PCM substrate: energy model (Table II),
 * disturbance model, differential write unit, VnR and the device.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "pcm/cell.hh"
#include "pcm/config.hh"
#include "pcm/device.hh"
#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "pcm/wear.hh"
#include "pcm/write_unit.hh"

namespace
{

using namespace wlcrc;
using pcm::DisturbanceModel;
using pcm::EnergyModel;
using pcm::State;
using pcm::TargetLine;
using pcm::WriteUnit;

TEST(EnergyModel, TableIIDefaults)
{
    const EnergyModel e;
    EXPECT_DOUBLE_EQ(e.resetPj(), 36.0);
    EXPECT_DOUBLE_EQ(e.programEnergy(State::S1), 36.0);
    EXPECT_DOUBLE_EQ(e.programEnergy(State::S2), 56.0);
    EXPECT_DOUBLE_EQ(e.programEnergy(State::S3), 343.0);
    EXPECT_DOUBLE_EQ(e.programEnergy(State::S4), 583.0);
}

TEST(EnergyModel, DifferentialWriteIsFreeWhenUnchanged)
{
    const EnergyModel e;
    for (unsigned s = 0; s < pcm::numStates; ++s) {
        const State st = pcm::stateFromIndex(s);
        EXPECT_DOUBLE_EQ(e.writeEnergy(st, st), 0.0);
    }
    EXPECT_GT(e.writeEnergy(State::S1, State::S2), 0.0);
}

TEST(EnergyModel, Figure14Scaling)
{
    const EnergyModel scaled =
        EnergyModel::withHighStateEnergies(75.0, 135.0);
    EXPECT_DOUBLE_EQ(scaled.setPj(State::S3), 75.0);
    EXPECT_DOUBLE_EQ(scaled.setPj(State::S4), 135.0);
    EXPECT_DOUBLE_EQ(scaled.setPj(State::S1), 0.0);
    EXPECT_DOUBLE_EQ(scaled.setPj(State::S2), 20.0);
}

TEST(StateNames, AreReadable)
{
    EXPECT_STREQ(pcm::stateName(State::S1), "S1");
    EXPECT_STREQ(pcm::stateName(State::S4), "S4");
}

TEST(Disturbance, S2IsImmune)
{
    const DisturbanceModel d;
    std::vector<State> cells(3, State::S2);
    std::vector<bool> updated = {true, false, true};
    EXPECT_DOUBLE_EQ(d.expected(cells, updated), 0.0);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(d.sample(cells, updated, rng), 0u);
}

TEST(Disturbance, ExpectedMatchesSingleExposure)
{
    const DisturbanceModel d;
    // idle S3 cell with one programmed neighbour: DER = 27.6 %.
    std::vector<State> cells = {State::S1, State::S3};
    std::vector<bool> updated = {true, false};
    EXPECT_NEAR(d.expected(cells, updated), 0.276, 1e-12);
}

TEST(Disturbance, TwoExposuresCompound)
{
    const DisturbanceModel d;
    // idle S1 flanked by two programmed cells: 1-(1-p)^2.
    std::vector<State> cells = {State::S2, State::S1, State::S2};
    std::vector<bool> updated = {true, false, true};
    EXPECT_NEAR(d.expected(cells, updated),
                1.0 - (1 - 0.123) * (1 - 0.123), 1e-12);
}

TEST(Disturbance, ProgrammedCellsAreNotDisturbed)
{
    const DisturbanceModel d;
    std::vector<State> cells(8, State::S3);
    std::vector<bool> updated(8, true);
    EXPECT_DOUBLE_EQ(d.expected(cells, updated), 0.0);
}

TEST(Disturbance, SampleConvergesToExpectation)
{
    const DisturbanceModel d;
    std::vector<State> cells = {State::S2, State::S3, State::S2,
                                State::S4, State::S2, State::S1};
    std::vector<bool> updated = {true, false, true,
                                 false, true, false};
    const double expect = d.expected(cells, updated);
    Rng rng(77);
    double total = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        total += d.sample(cells, updated, rng);
    EXPECT_NEAR(total / n, expect, 0.01);
}

TEST(WriteUnit, ProgramsOnlyDifferingCells)
{
    const WriteUnit unit{EnergyModel(), DisturbanceModel()};
    std::vector<State> stored = {State::S1, State::S2, State::S3};
    TargetLine target(3);
    target.assign({State::S1, State::S4, State::S3});
    Rng rng(1);
    const auto st = unit.program(stored, target, rng);
    EXPECT_EQ(st.dataUpdated, 1u);
    EXPECT_DOUBLE_EQ(st.dataEnergyPj, 583.0);
    EXPECT_EQ(stored[1], State::S4);
}

TEST(WriteUnit, SplitsAuxAndData)
{
    const WriteUnit unit{EnergyModel(), DisturbanceModel()};
    std::vector<State> stored(4, State::S1);
    TargetLine target(4);
    target.assign({State::S2, State::S2, State::S2, State::S2});
    target.setAuxStart(2);
    Rng rng(1);
    const auto st = unit.program(stored, target, rng);
    EXPECT_EQ(st.dataUpdated, 2u);
    EXPECT_EQ(st.auxUpdated, 2u);
    EXPECT_DOUBLE_EQ(st.dataEnergyPj, 2 * 56.0);
    EXPECT_DOUBLE_EQ(st.auxEnergyPj, 2 * 56.0);
}

TEST(WriteUnit, IdenticalTargetIsFree)
{
    const WriteUnit unit{EnergyModel(), DisturbanceModel()};
    std::vector<State> stored(16, State::S3);
    TargetLine target(16);
    for (unsigned i = 0; i < 16; ++i)
        target[i] = stored[i];
    Rng rng(1);
    const auto st = unit.program(stored, target, rng);
    EXPECT_EQ(st.totalUpdated(), 0u);
    EXPECT_DOUBLE_EQ(st.totalEnergyPj(), 0.0);
    EXPECT_EQ(st.totalDisturbed(), 0u);
}

TEST(WriteUnit, VnrConverges)
{
    const WriteUnit unit{EnergyModel(), DisturbanceModel()};
    // Alternate S1/S4 -> lots of disturbance-prone idle neighbours.
    std::vector<State> stored(64, State::S1);
    TargetLine target(64);
    for (unsigned i = 0; i < 64; ++i)
        target[i] = (i % 2) ? State::S4 : State::S1;
    Rng rng(5);
    const auto st = unit.program(stored, target, rng, true);
    // Paper: VnR removes all disturbances within 3-5 iterations.
    EXPECT_GE(st.vnrIterations, 1u);
    EXPECT_LE(st.vnrIterations, 12u);
}

TEST(WriteStats, Accumulate)
{
    pcm::WriteStats a, b;
    a.dataEnergyPj = 10;
    a.dataUpdated = 1;
    b.dataEnergyPj = 5;
    b.auxEnergyPj = 2;
    b.auxUpdated = 3;
    a += b;
    EXPECT_DOUBLE_EQ(a.totalEnergyPj(), 17.0);
    EXPECT_EQ(a.totalUpdated(), 4u);
}

TEST(Device, AllocatesFreshLinesAtS1)
{
    const WriteUnit unit{EnergyModel(), DisturbanceModel()};
    pcm::Device dev(8, unit);
    EXPECT_FALSE(dev.hasLine(42));
    auto &line = dev.line(42);
    EXPECT_TRUE(dev.hasLine(42));
    for (const auto s : line)
        EXPECT_EQ(s, State::S1);
}

TEST(Device, AccumulatesTotals)
{
    const WriteUnit unit{EnergyModel(), DisturbanceModel()};
    pcm::Device dev(4, unit);
    TargetLine target(4);
    target.assign({State::S2, State::S2, State::S1, State::S1});
    dev.write(0, target);
    dev.write(1, target);
    EXPECT_EQ(dev.writeCount(), 2u);
    EXPECT_EQ(dev.totals().dataUpdated, 4u);
    dev.resetStats();
    EXPECT_EQ(dev.writeCount(), 0u);
    EXPECT_EQ(dev.totals().dataUpdated, 0u);
}

TEST(SystemConfig, TableIITopology)
{
    const pcm::SystemConfig cfg;
    EXPECT_EQ(cfg.totalBanks(), 2u * 2u * 16u);
    EXPECT_EQ(cfg.writeQueueEntries, 32u);
    EXPECT_DOUBLE_EQ(cfg.writeDrainThreshold, 0.80);
    EXPECT_EQ(cfg.l2Bytes, 2ull * 1024 * 1024);
}

TEST(WearTracker, MergeMatchesSingleTrackerOracle)
{
    pcm::WearTracker oracle(4), a(4), b(4);
    // Disjoint addresses (the sharded-replay case) plus one shared
    // address to cover elementwise addition.
    for (int i = 0; i < 50; ++i) {
        oracle.recordProgram(10, i % 4);
        a.recordProgram(10, i % 4);
        oracle.recordProgram(20, i % 3);
        b.recordProgram(20, i % 3);
        oracle.recordProgram(30, 0);
        (i % 2 ? a : b).recordProgram(30, 0);
    }
    a.merge(b);
    for (const uint64_t addr : {10u, 20u, 30u}) {
        for (unsigned c = 0; c < 4; ++c)
            EXPECT_EQ(a.cellWrites(addr, c),
                      oracle.cellWrites(addr, c));
    }
    const auto sa = a.summary(), so = oracle.summary();
    EXPECT_EQ(sa.maxCellWrites, so.maxCellWrites);
    EXPECT_EQ(sa.totalWrites, so.totalWrites);
    EXPECT_EQ(sa.touchedCells, so.touchedCells);
}

} // namespace
