/**
 * @file
 * Tests for the memory-system substrate: address mapping, the L2
 * write-back cache, the memory controller's write-pausing policy and
 * the end-to-end PcmSystem pipeline.
 */

#include <gtest/gtest.h>

#include <set>

#include "coset/baseline_codec.hh"
#include "memsys/address.hh"
#include "memsys/controller.hh"
#include "memsys/l2cache.hh"
#include "memsys/system.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;
using memsys::AddressMapper;
using memsys::L2Cache;
using memsys::MemoryController;
using memsys::PcmSystem;
using pcm::State;
using pcm::SystemConfig;

// ----------------------------------------------------------- address

TEST(AddressMapper, CoversAllBanks)
{
    const SystemConfig cfg;
    const AddressMapper map(cfg);
    std::set<unsigned> banks;
    for (uint64_t a = 0; a < cfg.totalBanks(); ++a)
        banks.insert(map.locate(a).flatBank);
    EXPECT_EQ(banks.size(), cfg.totalBanks());
}

TEST(AddressMapper, ChannelInterleavesFirst)
{
    const SystemConfig cfg;
    const AddressMapper map(cfg);
    EXPECT_NE(map.locate(0).channel, map.locate(1).channel);
    EXPECT_EQ(map.locate(0).channel, map.locate(2).channel);
}

TEST(AddressMapper, FieldsWithinBounds)
{
    const SystemConfig cfg;
    const AddressMapper map(cfg);
    for (uint64_t a = 0; a < 10000; a += 37) {
        const auto loc = map.locate(a);
        EXPECT_LT(loc.channel, cfg.channels);
        EXPECT_LT(loc.dimm, cfg.dimmsPerChannel);
        EXPECT_LT(loc.bank, cfg.banksPerDimm);
        EXPECT_LT(loc.flatBank, cfg.totalBanks());
    }
}

// ---------------------------------------------------------------- L2

TEST(L2Cache, HitAfterFill)
{
    const SystemConfig cfg;
    L2Cache l2(cfg);
    EXPECT_FALSE(l2.access(100, false).has_value());
    EXPECT_EQ(l2.misses(), 1u);
    l2.access(100, false);
    EXPECT_EQ(l2.hits(), 1u);
}

TEST(L2Cache, DirtyEvictionEmitsWriteback)
{
    SystemConfig cfg;
    cfg.l2Bytes = 8 * 64; // tiny: 1 set x 8 ways
    cfg.l2Ways = 8;
    L2Cache l2(cfg);
    Line512 data;
    data.setWord(0, 0xabc);
    l2.access(0, true, &data);
    // Fill all other ways, then one more to evict line 0.
    for (uint64_t a = 1; a <= 8; ++a) {
        const auto wb = l2.access(a, false);
        if (a < 8) {
            EXPECT_FALSE(wb.has_value());
        } else {
            ASSERT_TRUE(wb.has_value());
            EXPECT_EQ(wb->lineAddr, 0u);
            EXPECT_EQ(wb->newData.word(0), 0xabcu);
            EXPECT_EQ(wb->oldData, Line512());
        }
    }
    EXPECT_EQ(l2.writebacks(), 1u);
}

TEST(L2Cache, CleanEvictionIsSilent)
{
    SystemConfig cfg;
    cfg.l2Bytes = 2 * 64;
    cfg.l2Ways = 2;
    L2Cache l2(cfg);
    l2.access(0, false);
    l2.access(1, false);
    EXPECT_FALSE(l2.access(2, false).has_value());
    EXPECT_EQ(l2.writebacks(), 0u);
}

TEST(L2Cache, FlushDrainsAllDirtyLines)
{
    const SystemConfig cfg;
    L2Cache l2(cfg);
    Line512 d1, d2;
    d1.setWord(0, 1);
    d2.setWord(0, 2);
    l2.access(10, true, &d1);
    l2.access(20, true, &d2);
    l2.access(30, false);
    const auto txns = l2.flush();
    EXPECT_EQ(txns.size(), 2u);
    EXPECT_EQ(l2.memoryImage(10).word(0), 1u);
    EXPECT_EQ(l2.memoryImage(20).word(0), 2u);
}

TEST(L2Cache, WritebackCarriesOldContents)
{
    SystemConfig cfg;
    cfg.l2Bytes = 1 * 64;
    cfg.l2Ways = 1;
    L2Cache l2(cfg);
    Line512 v1, v2;
    v1.setWord(0, 111);
    v2.setWord(0, 222);
    l2.access(5, true, &v1);
    l2.access(6, false); // evicts 5, image[5] = v1
    l2.access(5, true, &v2);
    const auto wb = l2.access(6, false); // evicts 5 again
    ASSERT_TRUE(wb.has_value());
    EXPECT_EQ(wb->oldData.word(0), 111u);
    EXPECT_EQ(wb->newData.word(0), 222u);
}

// -------------------------------------------------------- controller

TEST(Controller, ServicesReadsAndWrites)
{
    const SystemConfig cfg;
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const coset::BaselineCodec codec(e);
    MemoryController mc(cfg, codec, unit);

    trace::WriteTransaction txn;
    txn.lineAddr = 3;
    txn.newData.setWord(0, 0xff);
    EXPECT_TRUE(mc.enqueueWrite(txn));
    mc.enqueueRead(7);
    mc.drain();
    EXPECT_EQ(mc.stats().readsServiced, 1u);
    EXPECT_EQ(mc.stats().writesServiced, 1u);
    EXPECT_EQ(codec.decode(mc.device().line(3)), txn.newData);
}

TEST(Controller, WriteQueueBoundsAndStalls)
{
    const SystemConfig cfg;
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const coset::BaselineCodec codec(e);
    MemoryController mc(cfg, codec, unit);
    trace::WriteTransaction txn;
    unsigned accepted = 0;
    for (unsigned i = 0; i < cfg.writeQueueEntries + 5; ++i) {
        txn.lineAddr = i;
        accepted += mc.enqueueWrite(txn);
    }
    EXPECT_EQ(accepted, cfg.writeQueueEntries);
    EXPECT_EQ(mc.stats().stallCycles, 5u);
    EXPECT_DOUBLE_EQ(mc.writeQueueFill(), 1.0);
    mc.drain();
    EXPECT_TRUE(mc.queuesEmpty());
}

TEST(Controller, DrainModeEngagesPastThreshold)
{
    const SystemConfig cfg;
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const coset::BaselineCodec codec(e);
    MemoryController mc(cfg, codec, unit);
    // Saturate the write queue to one bank and add a read: with the
    // queue past 80 %, writes must be serviced ahead of the read.
    trace::WriteTransaction txn;
    const unsigned banks = cfg.totalBanks();
    for (unsigned i = 0; i < cfg.writeQueueEntries; ++i) {
        txn.lineAddr = i * banks; // all map to bank 0
        ASSERT_TRUE(mc.enqueueWrite(txn));
    }
    mc.enqueueRead(0);
    mc.tick();
    EXPECT_EQ(mc.stats().writesServiced, 1u);
    EXPECT_EQ(mc.stats().readsServiced, 0u);
    EXPECT_GT(mc.stats().drainCycles, 0u);
}

TEST(Controller, ReadsWinBelowThreshold)
{
    const SystemConfig cfg;
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const coset::BaselineCodec codec(e);
    MemoryController mc(cfg, codec, unit);
    trace::WriteTransaction txn;
    txn.lineAddr = 0;
    mc.enqueueWrite(txn);
    mc.enqueueRead(0); // same bank
    mc.tick();
    EXPECT_EQ(mc.stats().readsServiced, 1u);
    EXPECT_EQ(mc.stats().writesServiced, 0u);
}

// ------------------------------------------------------------ system

TEST(PcmSystem, EndToEndCoherence)
{
    const SystemConfig cfg;
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const auto codec = core::makeCodec("WLCRC-16", e);
    const auto &profile = trace::WorkloadProfile::byName("gcc");
    PcmSystem sys(cfg, *codec, unit, profile, 31);
    sys.runAccesses(20000);
    sys.finish();

    EXPECT_GT(sys.storesIssued(), 0u);
    EXPECT_GT(sys.loadsIssued(), 0u);
    EXPECT_GT(sys.l2().writebacks(), 0u);
    const auto &mc = sys.controller();
    EXPECT_EQ(mc.stats().writesServiced, sys.l2().writebacks());
    EXPECT_GT(mc.device().writeCount(), 0u);

    // Coherence through the full stack: decoding what PCM stores
    // must reproduce the memory image the L2 believes is in PCM.
    unsigned checked = 0;
    for (uint64_t addr = 0; addr < profile.footprintLines; ++addr) {
        if (!sys.controller().device().hasLine(addr))
            continue;
        auto &dev = const_cast<memsys::MemoryController &>(mc)
                        .device();
        ASSERT_EQ(codec->decode(dev.line(addr)),
                  sys.l2().memoryImage(addr))
            << "line " << addr;
        ++checked;
    }
    EXPECT_GT(checked, 100u);
}

TEST(PcmSystem, WriteEnergyDependsOnScheme)
{
    const SystemConfig cfg;
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const auto &profile = trace::WorkloadProfile::byName("milc");
    const coset::BaselineCodec base(e);
    const auto wlcrc16 = core::makeCodec("WLCRC-16", e);

    PcmSystem sys_base(cfg, base, unit, profile, 37);
    sys_base.runAccesses(15000);
    sys_base.finish();
    PcmSystem sys_wlcrc(cfg, *wlcrc16, unit, profile, 37);
    sys_wlcrc.runAccesses(15000);
    sys_wlcrc.finish();

    const double e_base =
        sys_base.controller().device().totals().dataEnergyPj;
    const double e_wlcrc =
        sys_wlcrc.controller().device().totals().totalEnergyPj();
    EXPECT_LT(e_wlcrc, e_base);
}

} // namespace
