/**
 * @file
 * Tests for the parallel experiment runner: grid expansion, thread
 * pool basics, shard/seed derivation, per-spec error capture, and —
 * the load-bearing property — merged results and reports that are
 * byte-identical whether a sharded sweep runs on 1 thread or 4.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "runner/grid.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "runner/thread_pool.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;
using runner::CsvReporter;
using runner::DeviceConfig;
using runner::ExperimentGrid;
using runner::ExperimentRunner;
using runner::ExperimentSpec;
using runner::JsonReporter;
using runner::RunnerOptions;
using runner::ThreadPool;

// ------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

// ---------------------------------------------------- seed splitting

TEST(ChildSeed, DeterministicAndDistinct)
{
    std::set<uint64_t> seen;
    for (uint64_t shard = 0; shard < 64; ++shard) {
        const uint64_t s = childSeed(42, shard);
        EXPECT_EQ(s, childSeed(42, shard));
        EXPECT_NE(s, 42u);
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 64u); // no collisions across shards
    EXPECT_NE(childSeed(1, 0), childSeed(2, 0));
}

TEST(ShardOf, PartitionsAddressesStably)
{
    for (uint64_t addr = 0; addr < 1000; ++addr) {
        const unsigned s = runner::shardOf(addr, 4);
        EXPECT_LT(s, 4u);
        EXPECT_EQ(s, runner::shardOf(addr, 4));
    }
    EXPECT_EQ(runner::shardOf(12345, 1), 0u);
}

// -------------------------------------------------- ExperimentGrid

TEST(ExperimentGrid, ExpandsCartesianProductInStableOrder)
{
    const auto specs = ExperimentGrid()
                           .workloads({"lesl", "milc"})
                           .schemes({"Baseline", "WLCRC-16"})
                           .seeds({1, 2})
                           .lines(100)
                           .shards(3)
                           .expand();
    ASSERT_EQ(specs.size(), 8u);
    // workload-major, then scheme, then seed.
    EXPECT_EQ(specs[0].workload, "lesl");
    EXPECT_EQ(specs[0].scheme, "Baseline");
    EXPECT_EQ(specs[0].seed, 1u);
    EXPECT_EQ(specs[1].seed, 2u);
    EXPECT_EQ(specs[2].scheme, "WLCRC-16");
    EXPECT_EQ(specs[4].workload, "milc");
    for (const auto &s : specs) {
        EXPECT_EQ(s.lines, 100u);
        EXPECT_EQ(s.shards, 3u);
    }
}

TEST(ExperimentGrid, SizeMatchesExpand)
{
    ExperimentGrid grid;
    grid.workloads({"lesl", "milc", "lbm"})
        .schemes({"Baseline", "FNW"})
        .deviceConfigs({DeviceConfig{}, DeviceConfig{}});
    EXPECT_EQ(grid.size(), 12u);
    EXPECT_EQ(grid.expand().size(), grid.size());
}

TEST(ExperimentGrid, RequiresATransactionSource)
{
    EXPECT_THROW(ExperimentGrid().expand(), std::invalid_argument);
    EXPECT_NO_THROW(ExperimentGrid().randomSource().expand());
}

TEST(ExperimentGrid, RandomSourceMarksSpecs)
{
    const auto specs =
        ExperimentGrid().randomSource().lines(50).expand();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_TRUE(specs[0].random);
    EXPECT_EQ(specs[0].sourceName(), "random");
}

// ------------------------------------------------ ExperimentRunner

TEST(ExperimentRunner, SingleShardMatchesLegacySerialReplay)
{
    // The runner with shards=1 must be bit-identical with driving a
    // Replayer by hand, seed included.
    const uint64_t seed = 77;
    const uint64_t lines = 300;

    ExperimentSpec spec;
    spec.scheme = "WLCRC-16";
    spec.workload = "lesl";
    spec.lines = lines;
    spec.seed = seed;
    const auto results = ExperimentRunner({2}).run({spec});
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok) << results[0].error;

    const pcm::EnergyModel energy;
    const auto codec = core::makeCodec("WLCRC-16", energy);
    const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
    trace::Replayer rep(*codec, unit, seed);
    trace::TraceSynthesizer synth(
        trace::WorkloadProfile::byName("lesl"), seed);
    rep.run(synth, lines);

    const auto &a = results[0].replay;
    const auto &b = rep.result();
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_DOUBLE_EQ(a.energyPj.mean(), b.energyPj.mean());
    EXPECT_DOUBLE_EQ(a.energyPj.variance(), b.energyPj.variance());
    EXPECT_DOUBLE_EQ(a.updatedCells.mean(), b.updatedCells.mean());
    EXPECT_DOUBLE_EQ(a.disturbErrors.mean(),
                     b.disturbErrors.mean());
    EXPECT_EQ(a.compressedWrites, b.compressedWrites);
}

TEST(ExperimentRunner, ShardedRunReplaysEveryTransaction)
{
    ExperimentSpec spec;
    spec.workload = "milc";
    spec.lines = 500;
    spec.shards = 4;
    const auto results = ExperimentRunner({4}).run({spec});
    ASSERT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[0].replay.writes, 500u);
    EXPECT_EQ(results[0].replay.energyPj.count(), 500u);
}

TEST(ExperimentRunner, ErrorsAreCapturedPerSpec)
{
    ExperimentSpec bad;
    bad.scheme = "no-such-scheme";
    bad.workload = "lesl";
    bad.lines = 10;
    ExperimentSpec good;
    good.workload = "lesl";
    good.lines = 10;
    const auto results = ExperimentRunner({2}).run({bad, good});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("no-such-scheme"),
              std::string::npos);
    EXPECT_TRUE(results[1].ok) << results[1].error;
}

TEST(ExperimentRunner, WearIsMergedAcrossShards)
{
    ExperimentSpec spec;
    spec.workload = "lesl";
    spec.lines = 400;
    spec.device.wearEndurance = 1000000;

    auto sharded = spec;
    sharded.shards = 4;

    const auto serial = ExperimentRunner({1}).run({spec});
    const auto parallel = ExperimentRunner({4}).run({sharded});
    ASSERT_TRUE(serial[0].ok && parallel[0].ok);
    // Wear counts updated cells, whose totals depend only on the
    // stream and stored state (not on the per-shard disturbance
    // seeds) — both partitions see every line write, so the merged
    // sharded wear must equal the serial run's exactly.
    EXPECT_GT(parallel[0].wear.totalWrites, 0u);
    EXPECT_EQ(parallel[0].wear.totalWrites,
              serial[0].wear.totalWrites);
    EXPECT_EQ(parallel[0].wear.maxCellWrites,
              serial[0].wear.maxCellWrites);
    EXPECT_EQ(parallel[0].wear.touchedCells,
              serial[0].wear.touchedCells);
    EXPECT_EQ(parallel[0].projectedLifetime,
              serial[0].projectedLifetime);
    EXPECT_GT(parallel[0].projectedLifetime, 0u);
}

// The acceptance-criteria property: a sharded multi-scheme sweep
// reported to CSV is byte-identical on 1 thread and on 4 threads.
TEST(ExperimentRunner, ShardedSweepCsvIsIdenticalAcrossJobCounts)
{
    const auto grid = ExperimentGrid()
                          .workloads({"lesl", "milc"})
                          .schemes({"Baseline", "6cosets",
                                    "WLCRC-16"})
                          .lines(300)
                          .seed(9)
                          .shards(4);

    std::string csv[2], json[2];
    const unsigned jobs[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        const auto results =
            ExperimentRunner({jobs[i]}).run(grid);
        for (const auto &r : results)
            ASSERT_TRUE(r.ok) << r.error;
        std::ostringstream c, j;
        CsvReporter().write(c, results);
        JsonReporter().write(j, results);
        csv[i] = c.str();
        json[i] = j.str();
    }
    EXPECT_FALSE(csv[0].empty());
    EXPECT_EQ(csv[0], csv[1]);
    EXPECT_EQ(json[0], json[1]);
}

} // namespace
