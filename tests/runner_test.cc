/**
 * @file
 * Tests for the parallel experiment runner: grid expansion, thread
 * pool basics, shard/seed derivation, per-spec error capture, and —
 * the load-bearing property — merged results and reports that are
 * byte-identical whether a sharded sweep runs on 1 thread or 4.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "runner/grid.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "runner/thread_pool.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;
using runner::CsvReporter;
using runner::DeviceConfig;
using runner::ExperimentGrid;
using runner::ExperimentRunner;
using runner::ExperimentSpec;
using runner::JsonReporter;
using runner::RunnerOptions;
using runner::RunProgress;
using runner::SchemeDef;
using runner::ThreadPool;

RunnerOptions
jobs(unsigned n)
{
    RunnerOptions opts;
    opts.jobs = n;
    return opts;
}

// ------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

// ---------------------------------------------------- seed splitting

TEST(ChildSeed, DeterministicAndDistinct)
{
    std::set<uint64_t> seen;
    for (uint64_t shard = 0; shard < 64; ++shard) {
        const uint64_t s = childSeed(42, shard);
        EXPECT_EQ(s, childSeed(42, shard));
        EXPECT_NE(s, 42u);
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 64u); // no collisions across shards
    EXPECT_NE(childSeed(1, 0), childSeed(2, 0));
}

TEST(ShardOf, PartitionsAddressesStably)
{
    for (uint64_t addr = 0; addr < 1000; ++addr) {
        const unsigned s = runner::shardOf(addr, 4);
        EXPECT_LT(s, 4u);
        EXPECT_EQ(s, runner::shardOf(addr, 4));
    }
    EXPECT_EQ(runner::shardOf(12345, 1), 0u);
}

// -------------------------------------------------- ExperimentGrid

TEST(ExperimentGrid, ExpandsCartesianProductInStableOrder)
{
    const auto specs = ExperimentGrid()
                           .workloads({"lesl", "milc"})
                           .schemes({"Baseline", "WLCRC-16"})
                           .seeds({1, 2})
                           .lines(100)
                           .shards(3)
                           .expand();
    ASSERT_EQ(specs.size(), 8u);
    // workload-major, then scheme, then seed.
    EXPECT_EQ(specs[0].workload, "lesl");
    EXPECT_EQ(specs[0].scheme, "Baseline");
    EXPECT_EQ(specs[0].seed, 1u);
    EXPECT_EQ(specs[1].seed, 2u);
    EXPECT_EQ(specs[2].scheme, "WLCRC-16");
    EXPECT_EQ(specs[4].workload, "milc");
    for (const auto &s : specs) {
        EXPECT_EQ(s.lines, 100u);
        EXPECT_EQ(s.shards, 3u);
    }
}

TEST(ExperimentGrid, SizeMatchesExpand)
{
    ExperimentGrid grid;
    grid.workloads({"lesl", "milc", "lbm"})
        .schemes({"Baseline", "FNW"})
        .deviceConfigs({DeviceConfig{}, DeviceConfig{}});
    EXPECT_EQ(grid.size(), 12u);
    EXPECT_EQ(grid.expand().size(), grid.size());
}

TEST(ExperimentGrid, RequiresATransactionSource)
{
    EXPECT_THROW(ExperimentGrid().expand(), std::invalid_argument);
    EXPECT_NO_THROW(ExperimentGrid().randomSource().expand());
}

TEST(ExperimentGrid, RandomSourceMarksSpecs)
{
    const auto specs =
        ExperimentGrid().randomSource().lines(50).expand();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_TRUE(specs[0].random);
    EXPECT_EQ(specs[0].sourceName(), "random");
}

TEST(ExperimentGrid, EmptyAxisThrows)
{
    EXPECT_THROW(ExperimentGrid()
                     .randomSource()
                     .schemes({})
                     .expand(),
                 std::invalid_argument);
    EXPECT_THROW(ExperimentGrid()
                     .randomSource()
                     .lineCounts({})
                     .expand(),
                 std::invalid_argument);
    EXPECT_THROW(
        ExperimentGrid().randomSource().seeds({}).expand(),
        std::invalid_argument);
    EXPECT_THROW(ExperimentGrid()
                     .randomSource()
                     .deviceConfigs({})
                     .expand(),
                 std::invalid_argument);
}

TEST(ExperimentGrid, SinglePointGridIsOneFullyDefaultedSpec)
{
    const auto specs = ExperimentGrid()
                           .workloads({"lesl"})
                           .expand();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].scheme, "WLCRC-16");
    EXPECT_EQ(specs[0].workload, "lesl");
    EXPECT_EQ(specs[0].shards, 1u);
    EXPECT_FALSE(specs[0].codecFactory);
    EXPECT_FALSE(specs[0].customReplay);
}

TEST(ExperimentGrid, DuplicateSchemeNamesThrow)
{
    EXPECT_THROW(ExperimentGrid()
                     .randomSource()
                     .schemes({"Baseline", "FNW", "Baseline"})
                     .expand(),
                 std::invalid_argument);
    // Same rule for the factory-carrying axis: the name is the row
    // identity.
    auto factory = [](const pcm::EnergyModel &energy) {
        return core::makeCodec("WLCRC-16", energy);
    };
    EXPECT_THROW(ExperimentGrid()
                     .randomSource()
                     .schemeDefs({{"X", factory}, {"X", factory}})
                     .expand(),
                 std::invalid_argument);
}

TEST(ChildSeed, NoCollisionsAcross10kShardIds)
{
    std::set<uint64_t> seen;
    for (uint64_t shard = 0; shard < 10000; ++shard)
        seen.insert(childSeed(1234, shard));
    EXPECT_EQ(seen.size(), 10000u);
    // Different parents must not alias onto the same child streams.
    for (uint64_t shard = 0; shard < 10000; ++shard)
        seen.insert(childSeed(1235, shard));
    EXPECT_EQ(seen.size(), 20000u);
}

// ------------------------------------------------ ExperimentRunner

TEST(ExperimentRunner, SingleShardMatchesLegacySerialReplay)
{
    // The runner with shards=1 must be bit-identical with driving a
    // Replayer by hand, seed included.
    const uint64_t seed = 77;
    const uint64_t lines = 300;

    ExperimentSpec spec;
    spec.scheme = "WLCRC-16";
    spec.workload = "lesl";
    spec.lines = lines;
    spec.seed = seed;
    const auto results = ExperimentRunner(jobs(2)).run({spec});
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok) << results[0].error;

    const pcm::EnergyModel energy;
    const auto codec = core::makeCodec("WLCRC-16", energy);
    const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
    trace::Replayer rep(*codec, unit, seed);
    trace::TraceSynthesizer synth(
        trace::WorkloadProfile::byName("lesl"), seed);
    rep.run(synth, lines);

    const auto &a = results[0].replay;
    const auto &b = rep.result();
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_DOUBLE_EQ(a.energyPj.mean(), b.energyPj.mean());
    EXPECT_DOUBLE_EQ(a.energyPj.variance(), b.energyPj.variance());
    EXPECT_DOUBLE_EQ(a.updatedCells.mean(), b.updatedCells.mean());
    EXPECT_DOUBLE_EQ(a.disturbErrors.mean(),
                     b.disturbErrors.mean());
    EXPECT_EQ(a.compressedWrites, b.compressedWrites);
}

TEST(ExperimentRunner, ShardedRunReplaysEveryTransaction)
{
    ExperimentSpec spec;
    spec.workload = "milc";
    spec.lines = 500;
    spec.shards = 4;
    const auto results = ExperimentRunner(jobs(4)).run({spec});
    ASSERT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[0].replay.writes, 500u);
    EXPECT_EQ(results[0].replay.energyPj.count(), 500u);
}

TEST(ExperimentRunner, ErrorsAreCapturedPerSpec)
{
    ExperimentSpec bad;
    bad.scheme = "no-such-scheme";
    bad.workload = "lesl";
    bad.lines = 10;
    ExperimentSpec good;
    good.workload = "lesl";
    good.lines = 10;
    const auto results = ExperimentRunner(jobs(2)).run({bad, good});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("no-such-scheme"),
              std::string::npos);
    EXPECT_TRUE(results[1].ok) << results[1].error;
}

TEST(ExperimentRunner, WearIsMergedAcrossShards)
{
    ExperimentSpec spec;
    spec.workload = "lesl";
    spec.lines = 400;
    spec.device.wearEndurance = 1000000;

    auto sharded = spec;
    sharded.shards = 4;

    const auto serial = ExperimentRunner(jobs(1)).run({spec});
    const auto parallel = ExperimentRunner(jobs(4)).run({sharded});
    ASSERT_TRUE(serial[0].ok && parallel[0].ok);
    // Wear counts updated cells, whose totals depend only on the
    // stream and stored state (not on the per-shard disturbance
    // seeds) — both partitions see every line write, so the merged
    // sharded wear must equal the serial run's exactly.
    EXPECT_GT(parallel[0].wear.totalWrites, 0u);
    EXPECT_EQ(parallel[0].wear.totalWrites,
              serial[0].wear.totalWrites);
    EXPECT_EQ(parallel[0].wear.maxCellWrites,
              serial[0].wear.maxCellWrites);
    EXPECT_EQ(parallel[0].wear.touchedCells,
              serial[0].wear.touchedCells);
    EXPECT_EQ(parallel[0].projectedLifetime,
              serial[0].projectedLifetime);
    EXPECT_GT(parallel[0].projectedLifetime, 0u);
}

TEST(ExperimentRunner, CodecFactoryOverridesSchemeLookup)
{
    // A factory-built codec must replay identically to the same
    // codec reached through its factory name; the scheme string is
    // then only a label (and may be factory-unknown).
    ExperimentSpec by_name;
    by_name.scheme = "WLCRC-16";
    by_name.workload = "lesl";
    by_name.lines = 200;

    ExperimentSpec by_factory = by_name;
    by_factory.scheme = "not-a-factory-name";
    by_factory.codecFactory = [](const pcm::EnergyModel &energy) {
        return core::makeCodec("WLCRC-16", energy);
    };

    const auto results =
        ExperimentRunner(jobs(2)).run({by_name, by_factory});
    ASSERT_TRUE(results[0].ok) << results[0].error;
    ASSERT_TRUE(results[1].ok) << results[1].error;
    EXPECT_DOUBLE_EQ(results[0].replay.energyPj.mean(),
                     results[1].replay.energyPj.mean());
    EXPECT_EQ(results[0].replay.compressedWrites,
              results[1].replay.compressedWrites);
}

TEST(ExperimentRunner, CustomReplayGetsFullStreamInOrder)
{
    ExperimentSpec spec;
    spec.workload = "milc";
    spec.lines = 150;
    spec.seed = 5;
    spec.shards = 4; // forced to a single pass for custom replays

    std::atomic<int> calls{0};
    std::vector<uint64_t> addrs;
    spec.customReplay =
        [&](const ExperimentSpec &s,
            const std::vector<trace::WriteTransaction> &txns) {
            ++calls;
            for (const auto &t : txns)
                addrs.push_back(t.lineAddr);
            trace::ReplayResult out;
            out.writes = txns.size();
            (void)s;
            return out;
        };
    const auto results = ExperimentRunner(jobs(4)).run({spec});
    ASSERT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(results[0].replay.writes, 150u);

    // The hook sees the exact synthesized stream, in stream order.
    trace::TraceSynthesizer synth(
        trace::WorkloadProfile::byName("milc"), 5);
    ASSERT_EQ(addrs.size(), 150u);
    for (unsigned i = 0; i < 150; ++i)
        EXPECT_EQ(addrs[i], synth.next().lineAddr);
}

TEST(ExperimentRunner, CustomReplayErrorsAreCaptured)
{
    ExperimentSpec spec;
    spec.workload = "lesl";
    spec.lines = 10;
    spec.customReplay =
        [](const ExperimentSpec &,
           const std::vector<trace::WriteTransaction> &)
        -> trace::ReplayResult {
        throw std::runtime_error("hook exploded");
    };
    const auto results = ExperimentRunner(jobs(2)).run({spec});
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("hook exploded"),
              std::string::npos);
}

TEST(ExperimentRunner, ProgressReportsEveryTaskWithEta)
{
    const auto grid = ExperimentGrid()
                          .workloads({"lesl", "milc"})
                          .schemes({"Baseline", "FNW"})
                          .lines(50)
                          .shards(3);

    std::vector<RunProgress> seen;
    RunnerOptions opts;
    opts.jobs = 4;
    opts.progress = [&seen](const RunProgress &p) {
        seen.push_back(p); // serialised by the runner
    };
    const auto results = ExperimentRunner(opts).run(grid);
    ASSERT_EQ(results.size(), 4u);

    // Initial 0/total snapshot plus one call per (spec, shard).
    ASSERT_EQ(seen.size(), 1u + 4 * 3);
    EXPECT_EQ(seen.front().tasksDone, 0u);
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i].tasksDone, i);
        EXPECT_EQ(seen[i].tasksTotal, 12u);
        EXPECT_GE(seen[i].elapsedSec, 0.0);
        EXPECT_GE(seen[i].etaSec, 0.0);
    }
    EXPECT_EQ(seen.back().tasksDone, seen.back().tasksTotal);
    EXPECT_DOUBLE_EQ(seen.back().etaSec, 0.0);
    EXPECT_DOUBLE_EQ(seen.back().fraction(), 1.0);
}

// The acceptance-criteria property: a sharded multi-scheme sweep
// reported to CSV is byte-identical on 1 thread and on 4 threads.
TEST(ExperimentRunner, ShardedSweepCsvIsIdenticalAcrossJobCounts)
{
    const auto grid = ExperimentGrid()
                          .workloads({"lesl", "milc"})
                          .schemes({"Baseline", "6cosets",
                                    "WLCRC-16"})
                          .lines(300)
                          .seed(9)
                          .shards(4);

    std::string csv[2], json[2];
    const unsigned job_counts[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        const auto results =
            ExperimentRunner(jobs(job_counts[i])).run(grid);
        for (const auto &r : results)
            ASSERT_TRUE(r.ok) << r.error;
        std::ostringstream c, j;
        CsvReporter().write(c, results);
        JsonReporter().write(j, results);
        csv[i] = c.str();
        json[i] = j.str();
    }
    EXPECT_FALSE(csv[0].empty());
    EXPECT_EQ(csv[0], csv[1]);
    EXPECT_EQ(json[0], json[1]);
}

} // namespace
