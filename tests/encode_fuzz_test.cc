/**
 * @file
 * Seeded differential fuzzer for the encode hot path.
 *
 * Complements simd_equivalence_test's fixed adversarial scenarios
 * with bulk randomized coverage: every iteration draws a fresh
 * (data, stored) pair from a pattern-biased generator — runs of
 * all-zero words to trigger the compressors, repeated bytes, dense
 * random noise — and asserts that
 *
 *   1. every available SIMD kernel encodes bit-identically to the
 *      scalar reference kernel,
 *   2. the table-driven scoring matches the recompute-per-fetch
 *      setScalarScoringForTest() hook, and
 *   3. a batched replay (LineCodec::encodeBatch via runBatch) equals
 *      a step()-ed replay of the same stream, per kernel.
 *
 * Every failure message carries a self-contained repro: the derived
 * iteration seed plus full hex dumps of the payload words and stored
 * states, so a CI failure can be replayed locally with
 *
 *   WLCRC_FUZZ_SEED=<seed> WLCRC_FUZZ_ITERS=1 ./encode_fuzz_test
 *
 * Knobs (both also honoured by tools/wlcrc_fuzz, the open-ended CLI
 * sibling of this bounded suite):
 *
 *   WLCRC_FUZZ_ITERS  iterations per test (default 120)
 *   WLCRC_FUZZ_SEED   base seed (default 20260808)
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/simd.hh"
#include "coset/codec.hh"
#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;
using pcm::State;
using simd::Kernel;

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 0) : fallback;
}

uint64_t
fuzzIters()
{
    return envU64("WLCRC_FUZZ_ITERS", 120);
}

uint64_t
fuzzSeed()
{
    return envU64("WLCRC_FUZZ_SEED", 20260808);
}

std::vector<Kernel>
availableKernels()
{
    std::vector<Kernel> out;
    for (const Kernel k :
         {Kernel::Scalar, Kernel::Avx2, Kernel::Neon})
        if (simd::kernelAvailable(k))
            out.push_back(k);
    return out;
}

struct KernelScope
{
    explicit KernelScope(Kernel k) : prev_(simd::activeKernel())
    {
        simd::setKernel(k);
    }
    ~KernelScope() { simd::setKernel(prev_); }
    Kernel prev_;
};

struct ScalarScoringScope
{
    ScalarScoringScope()
    {
        coset::LineCodec::setScalarScoringForTest(true);
    }
    ~ScalarScoringScope()
    {
        coset::LineCodec::setScalarScoringForTest(false);
    }
};

std::vector<std::string>
allSchemes()
{
    auto names = core::figure8Schemes();
    for (const char *extra : {"WLC+3cosets", "WLCRC-8", "WLCRC-32",
                              "WLCRC-64", "WLCRC-16-mo",
                              "WLCRC-16-da"})
        names.push_back(extra);
    return names;
}

/**
 * Pattern-biased payload: per word, pick all-zero (compressible),
 * all-ones, a repeated random byte (FPC/BDI territory), or dense
 * noise. Uniform-random 512-bit lines almost never compress, so an
 * unbiased generator would leave the WLC formats and the selector
 * paths cold.
 */
Line512
fuzzLine(Rng &rng)
{
    Line512 l;
    for (unsigned w = 0; w < lineWords; ++w) {
        switch (rng.nextBelow(5)) {
        case 0:
            l.setWord(w, 0);
            break;
        case 1:
            l.setWord(w, ~uint64_t{0});
            break;
        case 2: {
            const uint64_t byte = rng.next() & 0xff;
            l.setWord(w, byte * 0x0101010101010101ull);
            break;
        }
        case 3:
            // Small signed values, the FPC/BDI sweet spot.
            l.setWord(w, rng.next() & 0xffff);
            break;
        default:
            l.setWord(w, rng.next());
        }
    }
    return l;
}

std::vector<State>
fuzzStored(Rng &rng, unsigned cells)
{
    std::vector<State> stored(cells);
    if (rng.chance(0.2)) {
        // Saturated line: every cell in one state.
        const State s = pcm::stateFromIndex(
            static_cast<unsigned>(rng.nextBelow(4)));
        for (auto &c : stored)
            c = s;
    } else {
        for (auto &c : stored)
            c = pcm::stateFromIndex(
                static_cast<unsigned>(rng.next() & 3));
    }
    return stored;
}

std::string
dumpCase(uint64_t seed, const std::string &scheme,
         const Line512 &data, const std::vector<State> &stored)
{
    std::ostringstream os;
    os << "repro: WLCRC_FUZZ_SEED=" << seed
       << " WLCRC_FUZZ_ITERS=1 (scheme " << scheme << ")\n  data:";
    os << std::hex;
    for (unsigned w = 0; w < lineWords; ++w)
        os << " " << data.word(w);
    os << std::dec << "\n  stored:";
    for (const State s : stored)
        os << pcm::stateIndex(s);
    return os.str();
}

void
expectSameTarget(const pcm::TargetLine &got,
                 const pcm::TargetLine &want,
                 const std::string &what, const std::string &repro)
{
    ASSERT_EQ(got.size(), want.size()) << what << "\n" << repro;
    ASSERT_EQ(got.auxStart(), want.auxStart())
        << what << "\n" << repro;
    for (unsigned i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i], want[i])
            << what << " cell " << i << "\n" << repro;
        ASSERT_EQ(got.aux(i), want.aux(i))
            << what << " aux " << i << "\n" << repro;
    }
}

TEST(EncodeFuzz, KernelsAndHookAgreeOnRandomLines)
{
    const auto schemes = allSchemes();
    const auto kernels = availableKernels();
    const pcm::EnergyModel energy;

    std::vector<coset::CodecPtr> codecs;
    for (const auto &name : schemes)
        codecs.push_back(core::makeCodec(name, energy));

    const uint64_t base = fuzzSeed();
    const uint64_t iters = fuzzIters();
    for (uint64_t iter = 0; iter < iters; ++iter) {
        const uint64_t seed = childSeed(base, iter);
        Rng rng(seed);
        const Line512 data = fuzzLine(rng);
        for (std::size_t c = 0; c < codecs.size(); ++c) {
            const coset::LineCodec &codec = *codecs[c];
            const auto stored =
                fuzzStored(rng, codec.cellCount());
            const std::string repro =
                dumpCase(seed, schemes[c], data, stored);

            pcm::TargetLine want;
            {
                KernelScope scalar(Kernel::Scalar);
                want = codec.encode(data, stored);
            }
            {
                KernelScope scalar(Kernel::Scalar);
                ScalarScoringScope hook;
                expectSameTarget(codec.encode(data, stored), want,
                                 schemes[c] + "/hook", repro);
            }
            for (const Kernel k : kernels) {
                KernelScope scope(k);
                expectSameTarget(
                    codec.encode(data, stored), want,
                    schemes[c] + "/" +
                        std::string(simd::kernelName(k)),
                    repro);
            }
        }
    }
}

void
expectSameStat(const stats::RunningStat &a,
               const stats::RunningStat &b, const std::string &what)
{
    EXPECT_EQ(a.count(), b.count()) << what;
    EXPECT_EQ(a.mean(), b.mean()) << what;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
    EXPECT_EQ(a.variance(), b.variance()) << what;
}

void
expectSameResult(const trace::ReplayResult &a,
                 const trace::ReplayResult &b,
                 const std::string &what)
{
    expectSameStat(a.energyPj, b.energyPj, what + "/energy");
    expectSameStat(a.updatedCells, b.updatedCells,
                   what + "/updated");
    expectSameStat(a.disturbErrors, b.disturbErrors,
                   what + "/disturb");
    EXPECT_EQ(a.writes, b.writes) << what;
    EXPECT_EQ(a.compressedWrites, b.compressedWrites) << what;
    EXPECT_EQ(a.vnrIterations, b.vnrIterations) << what;
}

TEST(EncodeFuzz, BatchMatchesSteppedPerKernel)
{
    const pcm::EnergyModel energy;
    const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
    const uint64_t base = fuzzSeed();
    // Stream length grows with the iteration budget but stays
    // bounded; the default budget replays ~1.4k writes per scheme.
    const uint64_t streamLen = 200 + fuzzIters() * 10;

    for (const auto &name : allSchemes()) {
        const auto codec = core::makeCodec(name, energy);
        trace::TraceSynthesizer synth(
            trace::WorkloadProfile::byName("gcc"),
            childSeed(base, 777));
        std::vector<trace::WriteTransaction> txns;
        for (uint64_t i = 0; i < streamLen; ++i)
            txns.push_back(synth.next());
        const std::string repro =
            "repro: WLCRC_FUZZ_SEED=" + std::to_string(base) +
            " ./encode_fuzz_test (scheme " + name + ")";

        trace::ReplayResult scalarBatch;
        {
            KernelScope scalar(Kernel::Scalar);
            trace::Replayer rep(*codec, unit, 7);
            std::size_t at = 0;
            rep.runBatch([&](trace::WriteTransaction &slot) {
                if (at >= txns.size())
                    return false;
                slot = txns[at++];
                return true;
            });
            scalarBatch = rep.result();
        }
        for (const Kernel k : availableKernels()) {
            KernelScope scope(k);
            trace::Replayer stepped(*codec, unit, 7);
            for (const auto &t : txns)
                stepped.step(t);
            expectSameResult(stepped.result(), scalarBatch,
                             name + "/stepped/" +
                                 simd::kernelName(k) + "\n" +
                                 repro);

            trace::Replayer batch(*codec, unit, 7);
            std::size_t at = 0;
            batch.runBatch([&](trace::WriteTransaction &slot) {
                if (at >= txns.size())
                    return false;
                slot = txns[at++];
                return true;
            });
            expectSameResult(batch.result(), scalarBatch,
                             name + "/batch/" +
                                 simd::kernelName(k) + "\n" +
                                 repro);
        }
    }
}

} // namespace
