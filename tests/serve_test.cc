/**
 * @file
 * Tests for the live write-stream service (src/serve):
 *
 *  - BoundedQueue semantics: blocking push (backpressure), close +
 *    drain delivery guarantee, stall accounting;
 *  - BankEngine equivalence: the bank-sharded live encode reproduces
 *    an offline sharded Replayer merge bit for bit;
 *  - allocation guard: the steady-state submit->encode path performs
 *    no heap allocation (global operator new instrumented);
 *  - protocol framing over a socketpair: clean EOF, bad magic,
 *    oversized and truncated frames map to their named errors;
 *  - in-process Server + Client round trip: Hello/Write/Ack/Stats/
 *    Bye against a real listening socket;
 *  - subprocess capture-replay equivalence: a seeded wlcrc_load
 *    session against wlcrc_serve --capture, the captured WLCTRC02
 *    streams recombined and replayed with wlcrc_sim --shards, and
 *    the demand-write statistics compared token-for-token;
 *  - subprocess protocol robustness: malformed clients each produce
 *    a clean named per-connection error without affecting a healthy
 *    connection on the same server.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "runner/json_mini.hh"
#include "runner/runner.hh"
#include "serve/client.hh"
#include "serve/engine.hh"
#include "serve/protocol.hh"
#include "serve/queue.hh"
#include "serve/server.hh"
#include "tracefile/format.hh"
#include "tracefile/mapped_trace.hh"
#include "tracefile/source.hh"
#include "tracefile/writer.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

#include "subprocess.hh"

// ---------------------------------------------------------------
// Global operator new/delete instrumentation (same pattern as
// encode_equivalence_test). Only the delta inside a measured region
// matters; gtest's own allocations happen outside.
namespace
{
std::atomic<uint64_t> g_allocCount{0};
}

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return ::operator new(size, std::nothrow);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace
{

using namespace wlcrc;

std::vector<trace::WriteTransaction>
makeStream(uint64_t lines, uint64_t seed,
           const std::string &workload = "lesl")
{
    trace::TraceSynthesizer synth(
        trace::WorkloadProfile::byName(workload), seed);
    std::vector<trace::WriteTransaction> out;
    out.reserve(lines);
    for (uint64_t i = 0; i < lines; ++i)
        out.push_back(synth.next());
    return out;
}

// ------------------------------------------------------- BoundedQueue

TEST(BoundedQueue, DeliversInOrder)
{
    serve::BoundedQueue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueue, ZeroCapacityThrows)
{
    EXPECT_THROW(serve::BoundedQueue<int> q(0),
                 std::invalid_argument);
}

TEST(BoundedQueue, FullPushBlocksUntilConsumerDrains)
{
    serve::BoundedQueue<int> q(2);
    ASSERT_TRUE(q.push(1));
    ASSERT_TRUE(q.push(2));
    EXPECT_EQ(q.stallCount(), 0u);

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(q.push(3)); // blocks: queue is full
        pushed.store(true);
    });
    // The producer must stall, not complete: memory stays bounded by
    // the preallocated ring no matter how fast producers are.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(q.depth(), 2u);

    int v = 0;
    EXPECT_TRUE(q.pop(v));
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_GE(q.stallCount(), 1u);
}

TEST(BoundedQueue, CloseDrainsQueuedItemsThenStops)
{
    serve::BoundedQueue<int> q(4);
    ASSERT_TRUE(q.push(7));
    ASSERT_TRUE(q.push(8));
    q.close();
    EXPECT_FALSE(q.push(9)); // rejected after close
    int v = 0;
    EXPECT_TRUE(q.pop(v)); // ...but queued items still deliver
    EXPECT_EQ(v, 7);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 8);
    EXPECT_FALSE(q.pop(v)); // closed + drained
}

// --------------------------------------------------------- BankEngine

/** Offline reference: sharded Replayer merge, runner idiom. */
trace::ReplayResult
offlineShardedReplay(const std::vector<trace::WriteTransaction> &txns,
                     const std::string &scheme, uint64_t seed,
                     unsigned shards)
{
    const auto energy = pcm::EnergyModel::withHighStateEnergies(
        307.0, 547.0);
    const auto codec = core::makeCodec(scheme, energy);
    const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
    trace::ReplayResult merged;
    for (unsigned s = 0; s < shards; ++s) {
        trace::Replayer rep(*codec, unit,
                            runner::shardSeed(seed, s, shards));
        for (const auto &t : txns)
            if (runner::shardOf(t.lineAddr, shards) == s)
                rep.step(t);
        merged.merge(rep.result());
    }
    return merged;
}

void
expectResultsIdentical(const trace::ReplayResult &a,
                       const trace::ReplayResult &b)
{
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.compressedWrites, b.compressedWrites);
    EXPECT_EQ(a.vnrIterations, b.vnrIterations);
    EXPECT_EQ(a.energyPj.mean(), b.energyPj.mean());
    EXPECT_EQ(a.energyPj.stddev(), b.energyPj.stddev());
    EXPECT_EQ(a.updatedCells.mean(), b.updatedCells.mean());
    EXPECT_EQ(a.disturbErrors.mean(), b.disturbErrors.mean());
    EXPECT_EQ(a.dataEnergyPj.mean(), b.dataEnergyPj.mean());
    EXPECT_EQ(a.auxEnergyPj.mean(), b.auxEnergyPj.mean());
}

TEST(BankEngine, MatchesOfflineShardedReplayBitForBit)
{
    const auto txns = makeStream(400, 11);
    serve::EngineConfig cfg;
    cfg.scheme = "WLCRC-16";
    cfg.banks = 3;
    cfg.seed = 9;
    serve::BankEngine engine(cfg);
    engine.start();
    serve::ConnTicket ticket;
    for (const auto &t : txns)
        ASSERT_TRUE(engine.submit(t, &ticket));
    engine.stop();
    EXPECT_EQ(engine.totalEncoded(), txns.size());
    EXPECT_EQ(ticket.encoded.load(), txns.size());

    const auto offline =
        offlineShardedReplay(txns, "WLCRC-16", 9, 3);
    expectResultsIdentical(engine.mergedResult(), offline);
}

TEST(BankEngine, SnapshotsConvergeToExactResult)
{
    const auto txns = makeStream(200, 4);
    serve::EngineConfig cfg;
    cfg.banks = 2;
    cfg.seed = 5;
    serve::BankEngine engine(cfg);
    engine.start();
    for (const auto &t : txns)
        ASSERT_TRUE(engine.submit(t, nullptr));
    engine.stop();
    // After the drain, the published seqlock snapshots equal the
    // exact per-bank results.
    uint64_t snapWrites = 0;
    for (const auto &s : engine.snapshot())
        snapWrites += s.replay.writes;
    EXPECT_EQ(snapWrites, txns.size());
}

TEST(BankEngine, SubmitAfterStopIsRejected)
{
    serve::EngineConfig cfg;
    cfg.banks = 1;
    serve::BankEngine engine(cfg);
    engine.start();
    engine.stop();
    serve::ConnTicket ticket;
    const auto txns = makeStream(1, 1);
    EXPECT_FALSE(engine.submit(txns[0], &ticket));
    EXPECT_EQ(ticket.accepted.load(), 0u);
}

TEST(AllocationGuard, SteadyStateEncodePathAllocatesNothing)
{
    const auto txns = makeStream(300, 21);
    serve::EngineConfig cfg;
    cfg.banks = 2;
    cfg.queueCapacity = 64;
    serve::BankEngine engine(cfg);
    engine.start();
    serve::ConnTicket ticket;
    // Warm up: primes every line in the device image and grows the
    // replayers' reusable buffers.
    for (const auto &t : txns)
        ASSERT_TRUE(engine.submit(t, &ticket));
    engine.drainWait(ticket);

    const uint64_t before =
        g_allocCount.load(std::memory_order_relaxed);
    for (const auto &t : txns)
        engine.submit(t, &ticket);
    engine.drainWait(ticket);
    const uint64_t after =
        g_allocCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "submit->encode steady state allocated";
    engine.stop();
}

// ----------------------------------------------------- protocol frames

/** recvFrame against bytes pushed through a socketpair. */
serve::RecvStatus
recvFromBytes(const void *bytes, std::size_t n,
              serve::FrameHeader &h)
{
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    EXPECT_TRUE(serve::writeAll(fds[0], bytes, n));
    ::close(fds[0]); // EOF after our bytes
    std::vector<uint8_t> payload;
    const auto st = serve::recvFrame(fds[1], h, payload);
    ::close(fds[1]);
    return st;
}

TEST(Protocol, RoundTripsAFrame)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const char payload[] = "hello";
    ASSERT_TRUE(serve::sendFrame(fds[0], serve::FrameType::StatsReply,
                                 0, payload, 5));
    serve::FrameHeader h;
    std::vector<uint8_t> got;
    ASSERT_EQ(serve::recvFrame(fds[1], h, got),
              serve::RecvStatus::Ok);
    EXPECT_EQ(static_cast<serve::FrameType>(h.type),
              serve::FrameType::StatsReply);
    ASSERT_EQ(got.size(), 5u);
    EXPECT_EQ(std::memcmp(got.data(), payload, 5), 0);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(Protocol, CleanEofOnFrameBoundary)
{
    serve::FrameHeader h;
    EXPECT_EQ(recvFromBytes(nullptr, 0, h),
              serve::RecvStatus::CleanEof);
}

TEST(Protocol, BadMagicIsNamed)
{
    uint8_t junk[serve::frameHeaderBytes] = {0xde, 0xad, 0xbe, 0xef};
    serve::FrameHeader h;
    const auto st = recvFromBytes(junk, sizeof junk, h);
    EXPECT_EQ(st, serve::RecvStatus::BadMagic);
    EXPECT_STREQ(serve::recvErrorName(st), "bad-magic");
}

TEST(Protocol, OversizedFrameIsNamed)
{
    serve::FrameHeader h;
    h.type = static_cast<uint8_t>(serve::FrameType::Write);
    h.payloadBytes = serve::maxFramePayload + 1;
    uint8_t hdr[serve::frameHeaderBytes];
    serve::encodeFrameHeader(hdr, h);
    serve::FrameHeader got;
    const auto st = recvFromBytes(hdr, sizeof hdr, got);
    EXPECT_EQ(st, serve::RecvStatus::Oversized);
    EXPECT_STREQ(serve::recvErrorName(st), "oversized-frame");
}

TEST(Protocol, TruncatedFrameIsNamed)
{
    serve::FrameHeader h;
    h.type = static_cast<uint8_t>(serve::FrameType::Write);
    h.payloadBytes = 136;
    uint8_t bytes[serve::frameHeaderBytes + 10];
    serve::encodeFrameHeader(bytes, h);
    std::memset(bytes + serve::frameHeaderBytes, 0, 10);
    serve::FrameHeader got;
    const auto st = recvFromBytes(bytes, sizeof bytes, got);
    EXPECT_EQ(st, serve::RecvStatus::Truncated);
    EXPECT_STREQ(serve::recvErrorName(st), "truncated-frame");
}

// ------------------------------------------- in-process server+client

TEST(Server, HelloWriteAckStatsByeRoundTrip)
{
    serve::ServerConfig cfg;
    cfg.engine.banks = 2;
    cfg.engine.seed = 3;
    serve::Server server(cfg);
    server.start();
    ASSERT_GT(server.port(), 0);

    const auto txns = makeStream(100, 8);
    serve::Client client;
    client.connect("127.0.0.1", server.port());
    client.hello(42);
    client.sendWrites(txns.data(), 60, true);
    EXPECT_EQ(client.readAck(), 60u);
    client.sendWrites(txns.data() + 60, 40, false);

    const auto stats = runner::parseJson(client.stats());
    EXPECT_EQ(stats.at("serve_version").asU64(), 1u);
    EXPECT_EQ(stats.at("banks").asU64(), 2u);
    EXPECT_EQ(stats.at("accepted").asU64(), 100u);
    EXPECT_EQ(stats.at("final").asBool(), false);

    const auto byeAck = runner::parseJson(client.bye());
    EXPECT_EQ(byeAck.at("stream").asU64(), 42u);
    EXPECT_EQ(byeAck.at("accepted").asU64(), 100u);
    // Bye drains: every admitted write is encoded before the ack.
    EXPECT_EQ(byeAck.at("encoded").asU64(), 100u);
    EXPECT_TRUE(byeAck.at("clean").asBool());

    server.requestStop();
    server.wait();
    const auto report = runner::parseJson(server.snapshotJson(true));
    EXPECT_EQ(report.at("encoded").asU64(), 100u);
    EXPECT_TRUE(report.at("result").at("ok").asBool());
    EXPECT_EQ(report.at("result").at("writes").asU64(), 100u);
}

TEST(Server, WriteWithoutHelloIsRejectedByName)
{
    serve::ServerConfig cfg;
    cfg.engine.banks = 1;
    serve::Server server(cfg);
    server.start();

    const auto txns = makeStream(1, 1);
    serve::Client client;
    client.connect("127.0.0.1", server.port());
    client.sendWrites(txns.data(), 1, true);
    EXPECT_THROW(
        {
            try {
                client.readAck();
            } catch (const std::runtime_error &e) {
                EXPECT_NE(std::string(e.what()).find("no-hello"),
                          std::string::npos)
                    << e.what();
                throw;
            }
        },
        std::runtime_error);

    // The server keeps serving other connections afterwards.
    serve::Client ok;
    ok.connect("127.0.0.1", server.port());
    ok.hello(1);
    ok.sendWrites(txns.data(), 1, true);
    EXPECT_EQ(ok.readAck(), 1u);
    (void)ok.bye();
    server.requestStop();
    server.wait();
}

// ------------------------------------------------- subprocess harness

struct ServerProc
{
    FILE *pipe = nullptr;
    uint16_t port = 0;

    /** Reads stdout to EOF (the final report) and reaps. */
    std::string
    finish()
    {
        std::string out;
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0)
            out.append(buf, n);
        ::pclose(pipe);
        pipe = nullptr;
        return out;
    }
};

/** Spawn wlcrc_serve and parse the listening banner for the port. */
ServerProc
spawnServer(const std::string &args)
{
    ServerProc proc;
    const std::string cmd =
        std::string(WLCRC_SERVE_BIN) + " " + args + " 2>/dev/null";
    proc.pipe = ::popen(cmd.c_str(), "r");
    if (!proc.pipe)
        throw std::runtime_error("popen failed: " + cmd);
    char line[256];
    if (!std::fgets(line, sizeof line, proc.pipe))
        throw std::runtime_error("no banner from wlcrc_serve");
    const char *colon = std::strrchr(line, ':');
    if (!colon)
        throw std::runtime_error(std::string("bad banner: ") + line);
    proc.port = static_cast<uint16_t>(
        std::strtoul(colon + 1, nullptr, 10));
    return proc;
}

std::filesystem::path
freshDir(const std::string &name)
{
    const auto dir =
        std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

// -------------------------------------- capture-replay equivalence

/**
 * Drive a captured server session and diff its telemetry against an
 * offline wlcrc_sim replay of the recombined capture, token for
 * token. @p captureFlags selects the capture container flavour;
 * @p expectV3 additionally asserts the per-stream files landed as
 * (compressed) WLCTRC03.
 */
void
runCaptureReplayCase(const std::string &dirName,
                     const std::string &captureFlags, bool expectV3)
{
    const auto dir = freshDir(dirName);
    ServerProc server = spawnServer(
        "--port 0 --scheme WLCRC-16 --banks 4 --seed 9 --capture " +
        dir.string() + captureFlags + " --max-conns 4");

    int exit_code = -1;
    const std::string loadOut = test::captureStdout(
        std::string(WLCRC_LOAD_BIN) + " --port " +
            std::to_string(server.port) +
            " --connections 4 --workload lesl --lines 300"
            " --seed 5 2>&1",
        exit_code);
    ASSERT_EQ(exit_code, 0) << loadOut;

    // All 4 connections closed -> the server drains and reports.
    const std::string reportText = server.finish();
    const auto report = runner::parseJson(reportText);
    ASSERT_TRUE(report.at("final").asBool());
    const auto &live = report.at("result");
    ASSERT_TRUE(live.at("ok").asBool());
    ASSERT_EQ(live.at("writes").asU64(), 300u);

    // Recombine the per-stream captures in stream order. The cross-
    // file order is irrelevant for the sharded replay (connections
    // carry disjoint address residue classes), but a fixed order
    // keeps the combined file deterministic.
    const auto combined = dir / "combined.wlctrc";
    {
        tracefile::TraceFileWriter writer(combined.string());
        uint64_t records = 0;
        for (unsigned i = 0; i < 4; ++i) {
            const auto part =
                dir / ("stream-" + std::to_string(i) + ".wlctrc");
            ASSERT_TRUE(std::filesystem::exists(part)) << part;
            if (expectV3) {
                const tracefile::MappedTrace capture(part.string());
                EXPECT_EQ(capture.format(),
                          tracefile::TraceFormat::v3)
                    << part;
                EXPECT_TRUE(capture.anyCompressed()) << part;
            } else {
                EXPECT_EQ(tracefile::detectFormat(part.string()),
                          tracefile::TraceFormat::v2)
                    << part;
            }
            const auto src = tracefile::openTraceSource(part.string());
            auto cursor = src->open();
            while (auto txn = cursor->next()) {
                writer.write(*txn);
                ++records;
            }
        }
        writer.close();
        ASSERT_EQ(records, 300u);
    }

    // Offline replay: same scheme, seed and shard count as the
    // server's banks. Every demand-write statistic must match the
    // server's telemetry token for token — doubles included.
    const std::string simOut = test::captureStdout(
        std::string(WLCRC_SIM_BIN) + " --trace-in " +
            combined.string() +
            " --scheme WLCRC-16 --seed 9 --shards 4 --json"
            " 2>/dev/null",
        exit_code);
    ASSERT_EQ(exit_code, 0) << simOut;
    const auto simDoc = runner::parseJson(simOut);
    ASSERT_EQ(simDoc.array.size(), 1u);
    const auto &offline = simDoc.array[0];
    ASSERT_TRUE(offline.at("ok").asBool());

    for (const char *field :
         {"writes", "compressed_writes", "vnr_iterations",
          "energy_pj", "data_energy_pj", "aux_energy_pj",
          "updated_cells", "data_updated", "aux_updated",
          "disturb_errors", "data_disturbed", "aux_disturbed",
          "compressed_pct", "vnr_per_write"}) {
        EXPECT_EQ(live.at(field).text, offline.at(field).text)
            << "field " << field << " diverged";
    }
    std::filesystem::remove_all(dir);
}

TEST(CaptureReplay, ServerTelemetryMatchesOfflineReplayExactly)
{
    runCaptureReplayCase("wlcrc_serve_capture_test", "", false);
}

TEST(CaptureReplay, CompressedCaptureReplaysIdentically)
{
    // Same equivalence, but the per-stream captures land as
    // compressed WLCTRC03: capture compression must be framing
    // only, invisible to the replayed statistics.
    runCaptureReplayCase("wlcrc_serve_capture_v3_test",
                         " --capture-format v3 --capture-codec lz",
                         true);
}

// ------------------------------------------- protocol robustness

TEST(Robustness, MalformedClientsFailCleanlyWithoutCollateral)
{
    ServerProc server = spawnServer("--port 0 --banks 2 --max-conns 5");
    const auto txns = makeStream(50, 3);

    // The healthy connection outlives every attacker.
    serve::Client good;
    good.connect("127.0.0.1", server.port);
    good.hello(1);
    good.sendWrites(txns.data(), 25, true);
    EXPECT_EQ(good.readAck(), 25u);

    { // garbage magic
        serve::Client bad;
        bad.connect("127.0.0.1", server.port);
        const uint8_t junk[12] = {1, 2, 3, 4, 5, 6};
        bad.sendRaw(junk, sizeof junk);
    }
    { // oversized length
        serve::Client bad;
        bad.connect("127.0.0.1", server.port);
        serve::FrameHeader h;
        h.type = static_cast<uint8_t>(serve::FrameType::Write);
        h.payloadBytes = serve::maxFramePayload + 1;
        uint8_t hdr[serve::frameHeaderBytes];
        serve::encodeFrameHeader(hdr, h);
        bad.sendRaw(hdr, sizeof hdr);
    }
    { // truncated frame: header promises 136 B, delivers 10
        serve::Client bad;
        bad.connect("127.0.0.1", server.port);
        serve::FrameHeader h;
        h.type = static_cast<uint8_t>(serve::FrameType::Write);
        h.payloadBytes = 136;
        uint8_t bytes[serve::frameHeaderBytes + 10] = {};
        serve::encodeFrameHeader(bytes, h);
        bad.sendRaw(bytes, sizeof bytes);
    } // destructor closes mid-payload
    { // mid-stream disconnect after a valid Hello + Write
        serve::Client bad;
        bad.connect("127.0.0.1", server.port);
        bad.hello(99);
        bad.sendWrites(txns.data() + 25, 10, false);
        bad.close();
    }

    // Poll the healthy connection's stats until the server has
    // counted all four failures (their readers run concurrently).
    const char *expected[] = {"bad-magic", "oversized-frame",
                              "truncated-frame", "disconnect"};
    bool allCounted = false;
    for (int tries = 0; tries < 100 && !allCounted; ++tries) {
        const auto stats = runner::parseJson(good.stats());
        const auto &errors = stats.at("errors");
        allCounted = true;
        for (const char *name : expected)
            if (!errors.has(name) ||
                errors.at(name).asU64() < 1)
                allCounted = false;
        if (!allCounted)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(allCounted) << good.stats();

    // The healthy connection still works end to end.
    good.sendWrites(txns.data() + 35, 15, true);
    EXPECT_EQ(good.readAck(), 40u);
    const auto byeAck = runner::parseJson(good.bye());
    EXPECT_TRUE(byeAck.at("clean").asBool());
    EXPECT_EQ(byeAck.at("encoded").asU64(), 40u);

    // 5 connections closed -> max-conns stop -> final report.
    const auto report = runner::parseJson(server.finish());
    EXPECT_TRUE(report.at("final").asBool());
    EXPECT_EQ(report.at("stop_reason").asString(), "max-conns");
    const auto &errors = report.at("errors");
    for (const char *name : expected)
        EXPECT_GE(errors.at(name).asU64(), 1u) << name;
    // The disconnected stream's 10 writes were still encoded; only
    // the clean stream and the disconnected one carried writes.
    EXPECT_EQ(report.at("encoded").asU64(), 50u);
}

} // namespace
