/**
 * @file
 * Differential proof layer for the SIMD encode kernels.
 *
 * Every vector kernel (AVX2/NEON) is required to be *bit-identical*
 * to the always-compiled scalar reference — not approximately equal:
 * the golden CSVs, the result cache and cross-machine reproducibility
 * all assume the dispatch choice never changes a number. This suite
 * enforces that at three levels:
 *
 * 1. Kernel level: byteDiffMask / mapSymbols / accumRows4 / accumRows8
 *    of every available kernel against the scalar table, over
 *    randomized inputs and the edge geometries (partial last word,
 *    single-cell ranges, range ends at 31).
 *
 * 2. Codec level: every scheme x energy model x kernel over
 *    randomized and adversarial lines (all-zero, all-ones/aux-heavy,
 *    saturated-wear stored states, max-cells-differ) — the encoded
 *    TargetLine must match the scalar kernel's cell for cell, aux
 *    bit for aux bit; and under the scalar kernel it must also match
 *    the setScalarScoringForTest() recompute-per-fetch path.
 *
 * 3. Replay level: a full stream replay per kernel produces
 *    bit-identical ReplayResults (all moments, not just means).
 *
 * On a machine without AVX2/NEON the vector legs skip silently and
 * the scalar reference is still exercised against the test-hook
 * scoring, so the suite passes everywhere (CI runs it under
 * WLCRC_SIMD=scalar too).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/simd.hh"
#include "coset/codec.hh"
#include "coset/ncosets_codec.hh"
#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;
using pcm::State;
using simd::Kernel;

/** Kernels compiled in and usable on this CPU (scalar always). */
std::vector<Kernel>
availableKernels()
{
    std::vector<Kernel> out;
    for (const Kernel k :
         {Kernel::Scalar, Kernel::Avx2, Kernel::Neon})
        if (simd::kernelAvailable(k))
            out.push_back(k);
    return out;
}

/** RAII: force a kernel for one scope, restore the previous one. */
struct KernelScope
{
    explicit KernelScope(Kernel k) : prev_(simd::activeKernel())
    {
        simd::setKernel(k);
    }
    ~KernelScope() { simd::setKernel(prev_); }
    Kernel prev_;
};

/** RAII: enable the scalar-scoring test hook for one scope. */
struct ScalarScoringScope
{
    ScalarScoringScope()
    {
        coset::LineCodec::setScalarScoringForTest(true);
    }
    ~ScalarScoringScope()
    {
        coset::LineCodec::setScalarScoringForTest(false);
    }
};

// -------------------------------------------------- kernel level

TEST(SimdKernels, ScalarAlwaysAvailableAndNamed)
{
    EXPECT_TRUE(simd::kernelAvailable(Kernel::Scalar));
    EXPECT_STREQ(simd::kernelName(Kernel::Scalar), "scalar");
    EXPECT_STREQ(simd::kernelName(Kernel::Avx2), "avx2");
    EXPECT_STREQ(simd::kernelName(Kernel::Neon), "neon");
    // "auto" resolves to something runnable.
    EXPECT_TRUE(simd::kernelAvailable(simd::parseKernel("auto")));
}

TEST(SimdKernels, ParseRejectsUnknownNames)
{
    EXPECT_THROW(simd::parseKernel("sse9"), std::invalid_argument);
    EXPECT_THROW(simd::parseKernel(""), std::invalid_argument);
    EXPECT_THROW(simd::parseKernel("AVX2"), std::invalid_argument);
}

TEST(SimdKernels, UnavailableKernelsRefuseToActivate)
{
    for (const Kernel k : {Kernel::Avx2, Kernel::Neon}) {
        if (simd::kernelAvailable(k))
            continue;
        EXPECT_THROW(simd::setKernel(k), std::invalid_argument);
        EXPECT_THROW(simd::opsFor(k), std::invalid_argument);
    }
}

TEST(SimdKernels, ByteDiffMaskMatchesScalar)
{
    const simd::Ops &ref = simd::opsFor(Kernel::Scalar);
    Rng rng(101);
    for (const Kernel k : availableKernels()) {
        const simd::Ops &ops = simd::opsFor(k);
        for (const unsigned n :
             {1u, 2u, 31u, 63u, 64u, 65u, 127u, 256u, 257u, 767u,
              768u}) {
            std::vector<uint8_t> a(n), b(n);
            for (unsigned i = 0; i < n; ++i) {
                a[i] = static_cast<uint8_t>(rng.next() & 3);
                // ~half the bytes equal, so both branches matter.
                b[i] = rng.chance(0.5)
                           ? a[i]
                           : static_cast<uint8_t>(rng.next() & 3);
            }
            const unsigned nw = (n + 63) / 64;
            // Poison the outputs to catch unwritten words.
            std::vector<uint64_t> got(nw, ~uint64_t{0});
            std::vector<uint64_t> want(nw, ~uint64_t{0});
            ref.byteDiffMask(a.data(), b.data(), n, want.data());
            ops.byteDiffMask(a.data(), b.data(), n, got.data());
            for (unsigned w = 0; w < nw; ++w)
                EXPECT_EQ(got[w], want[w])
                    << simd::kernelName(k) << " n=" << n
                    << " word " << w;
            // Bits at or past n must be zero (CellMask invariant).
            if (n % 64) {
                EXPECT_EQ(got[nw - 1] >> (n % 64), 0u)
                    << simd::kernelName(k) << " n=" << n;
            }
        }
        // Identical buffers produce an all-zero mask.
        std::vector<uint8_t> same(256, 2);
        std::vector<uint64_t> mask(4, ~uint64_t{0});
        ops.byteDiffMask(same.data(), same.data(), 256, mask.data());
        for (const uint64_t w : mask)
            EXPECT_EQ(w, 0u) << simd::kernelName(k);
    }
}

TEST(SimdKernels, MapSymbolsMatchesScalar)
{
    const simd::Ops &ref = simd::opsFor(Kernel::Scalar);
    Rng rng(202);
    for (const Kernel k : availableKernels()) {
        const simd::Ops &ops = simd::opsFor(k);
        for (const auto &[lo, hi] :
             std::initializer_list<std::pair<unsigned, unsigned>>{
                 {0u, 31u},
                 {0u, 0u},
                 {31u, 31u},
                 {1u, 30u},
                 {5u, 17u},
                 {16u, 31u},
                 {0u, 15u}}) {
            for (unsigned round = 0; round < 32; ++round) {
                const uint64_t word = rng.next();
                uint8_t map4[4];
                for (auto &m : map4)
                    m = static_cast<uint8_t>(rng.next() & 3);
                // Sentinel fill: cells outside [lo, hi] must be
                // left untouched.
                std::array<uint8_t, 32> got, want;
                got.fill(0xEE);
                want.fill(0xEE);
                ref.mapSymbols(word, map4, lo, hi, want.data());
                ops.mapSymbols(word, map4, lo, hi, got.data());
                EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                                         got.size()))
                    << simd::kernelName(k) << " [" << lo << ","
                    << hi << "]";
            }
        }
    }
}

/** Shared body for the accumRows4/accumRows8 equivalence checks. */
void
checkAccumRows(unsigned stride, uint64_t seed)
{
    const simd::Ops &ref = simd::opsFor(Kernel::Scalar);
    Rng rng(seed);
    for (const Kernel k : availableKernels()) {
        const simd::Ops &ops = simd::opsFor(k);
        for (const auto &[lo, hi] :
             std::initializer_list<std::pair<unsigned, unsigned>>{
                 {0u, 31u},
                 {0u, 30u},
                 {0u, 0u},
                 {31u, 31u},
                 {3u, 12u},
                 {7u, 31u}}) {
            for (unsigned round = 0; round < 32; ++round) {
                std::vector<double> rows(4 * 4 * stride);
                for (auto &r : rows)
                    r = rng.nextDouble() * 1000.0;
                std::array<uint8_t, 32> stored;
                for (auto &s : stored)
                    s = static_cast<uint8_t>(rng.next() & 3);
                const uint64_t word = rng.next();
                // Non-zero accumulator seeds: kernels must add, not
                // overwrite.
                std::vector<double> got(stride), want(stride);
                for (unsigned m = 0; m < stride; ++m)
                    got[m] = want[m] = rng.nextDouble();
                const auto fnRef = stride == 4 ? ref.accumRows4
                                               : ref.accumRows8;
                const auto fnOps = stride == 4 ? ops.accumRows4
                                               : ops.accumRows8;
                fnRef(rows.data(), stored.data(), word, lo, hi,
                      want.data());
                fnOps(rows.data(), stored.data(), word, lo, hi,
                      got.data());
                for (unsigned m = 0; m < stride; ++m)
                    EXPECT_EQ(got[m], want[m])
                        << simd::kernelName(k) << " stride="
                        << stride << " [" << lo << "," << hi
                        << "] lane " << m;
            }
        }
    }
}

TEST(SimdKernels, AccumRows4BitIdentical) { checkAccumRows(4, 303); }

TEST(SimdKernels, AccumRows8BitIdentical) { checkAccumRows(8, 404); }

/** Random ascending, disjoint (not necessarily contiguous) block
 *  ranges over cells 0..31. */
void
randomDisjointBlocks(Rng &rng, std::array<uint8_t, 8> &lo,
                     std::array<uint8_t, 8> &hi, unsigned &nblocks)
{
    nblocks = 1 + static_cast<unsigned>(rng.next() % 8);
    unsigned next = 0;
    for (unsigned b = 0; b < nblocks; ++b) {
        // Leave room for the remaining blocks (1 cell each).
        const unsigned slack = 32 - next - (nblocks - b);
        const unsigned start =
            next + static_cast<unsigned>(rng.next() % (slack / 2 + 1));
        const unsigned len =
            1 + static_cast<unsigned>(
                    rng.next() % (32 - start - (nblocks - 1 - b)));
        lo[b] = static_cast<uint8_t>(start);
        hi[b] = static_cast<uint8_t>(start + len - 1);
        next = start + len;
    }
}

TEST(SimdKernels, AccumBlocks4MatchesComposedAccumRows4)
{
    const simd::Ops &ref = simd::opsFor(Kernel::Scalar);
    Rng rng(505);
    for (const Kernel k : availableKernels()) {
        const simd::Ops &ops = simd::opsFor(k);
        for (unsigned round = 0; round < 128; ++round) {
            std::array<uint8_t, 8> lo{}, hi{};
            unsigned nblocks = 0;
            randomDisjointBlocks(rng, lo, hi, nblocks);
            std::vector<double> rows(4 * 4 * 4);
            for (auto &r : rows)
                r = rng.nextDouble() * 1000.0;
            // The contract lets kernels read all 32 stored bytes.
            std::array<uint8_t, 32> stored;
            for (auto &s : stored)
                s = static_cast<uint8_t>(rng.next() & 3);
            const uint64_t word = rng.next();
            // Non-zero accumulator seeds: the fused kernel must add.
            std::array<double, 32> got, want;
            for (unsigned m = 0; m < 32; ++m)
                got[m] = want[m] = rng.nextDouble();
            for (unsigned b = 0; b < nblocks; ++b)
                ref.accumRows4(rows.data(), stored.data(), word,
                               lo[b], hi[b], want.data() + 4 * b);
            ops.accumBlocks4(rows.data(), stored.data(), word,
                             lo.data(), hi.data(), nblocks,
                             got.data());
            for (unsigned m = 0; m < 4 * nblocks; ++m)
                EXPECT_EQ(got[m], want[m])
                    << simd::kernelName(k) << " round " << round
                    << " lane " << m;
            // Accumulator lanes past nblocks stay untouched.
            for (unsigned m = 4 * nblocks; m < 32; ++m)
                EXPECT_EQ(got[m], want[m])
                    << simd::kernelName(k) << " round " << round
                    << " padding lane " << m;
        }
    }
}

TEST(SimdKernels, MapBlocksMatchesComposedMapSymbols)
{
    const simd::Ops &ref = simd::opsFor(Kernel::Scalar);
    Rng rng(606);
    for (const Kernel k : availableKernels()) {
        const simd::Ops &ops = simd::opsFor(k);
        for (unsigned round = 0; round < 128; ++round) {
            // Contract: ascending disjoint blocks whose union is the
            // contiguous range [lo[0], hi[nblocks - 1]] — partition
            // a random cell range into 1..8 chunks.
            const unsigned a =
                static_cast<unsigned>(rng.next() % 32);
            const unsigned z =
                a + static_cast<unsigned>(rng.next() % (32 - a));
            const unsigned span = z - a + 1;
            const unsigned nblocks =
                1 + static_cast<unsigned>(rng.next() % 8) % span;
            std::array<uint8_t, 8> lo{}, hi{};
            unsigned next = a;
            for (unsigned b = 0; b < nblocks; ++b) {
                const unsigned room =
                    z - next + 1 - (nblocks - 1 - b);
                const unsigned len =
                    b + 1 == nblocks
                        ? z - next + 1
                        : 1 + static_cast<unsigned>(rng.next() %
                                                    room);
                lo[b] = static_cast<uint8_t>(next);
                hi[b] = static_cast<uint8_t>(next + len - 1);
                next += len;
            }
            const uint64_t word = rng.next();
            std::array<std::array<uint8_t, 4>, 8> maps;
            const uint8_t *tables[8];
            for (unsigned b = 0; b < nblocks; ++b) {
                for (auto &m : maps[b])
                    m = static_cast<uint8_t>(rng.next() & 3);
                tables[b] = maps[b].data();
            }
            // Sentinel fill: cells outside [a, z] must be untouched.
            std::array<uint8_t, 32> got, want;
            got.fill(0xEE);
            want.fill(0xEE);
            for (unsigned b = 0; b < nblocks; ++b)
                ref.mapSymbols(word, tables[b], lo[b], hi[b],
                               want.data());
            ops.mapBlocks(word, tables, lo.data(), hi.data(),
                          nblocks, got.data());
            EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                                     got.size()))
                << simd::kernelName(k) << " round " << round << " ["
                << a << "," << z << "] nblocks=" << nblocks;
        }
    }
}

// --------------------------------------------------- codec level

/** All factory schemes plus the extra configurations the encode
 *  equivalence suite pins. */
std::vector<std::string>
allSchemes()
{
    auto names = core::figure8Schemes();
    for (const char *extra : {"WLC+3cosets", "WLCRC-8", "WLCRC-32",
                              "WLCRC-64", "WLCRC-16-mo",
                              "WLCRC-16-da"})
        names.push_back(extra);
    return names;
}

/** One encode scenario: a payload plus the pre-write line state. */
struct LineCase
{
    std::string label;
    Line512 data;
    std::vector<State> stored;
};

Line512
randomLine(Rng &rng)
{
    Line512 l;
    for (unsigned w = 0; w < lineWords; ++w)
        l.setWord(w, rng.next());
    return l;
}

Line512
constantLine(uint64_t word)
{
    Line512 l;
    for (unsigned w = 0; w < lineWords; ++w)
        l.setWord(w, word);
    return l;
}

/**
 * Randomized plus adversarial scenarios for one codec: all-zero
 * payloads (compressible, selector/aux-heavy), all-ones, stored
 * lines pinned at the highest-energy state (saturated wear),
 * max-cells-differ (every data cell must be reprogrammed), and the
 * realistic stored-equals-previous-encode case.
 */
std::vector<LineCase>
makeCases(const coset::LineCodec &codec, Rng &rng)
{
    const unsigned cells = codec.cellCount();
    const auto allStored = [&](State s) {
        return std::vector<State>(cells, s);
    };
    std::vector<State> randomStored(cells);
    for (auto &s : randomStored)
        s = pcm::stateFromIndex(
            static_cast<unsigned>(rng.next() & 3));

    std::vector<LineCase> cases;
    cases.push_back(
        {"all-zero/fresh", constantLine(0), allStored(State::S1)});
    cases.push_back({"all-zero/saturated", constantLine(0),
                     allStored(State::S4)});
    cases.push_back({"all-ones/saturated",
                     constantLine(~uint64_t{0}),
                     allStored(State::S4)});
    cases.push_back({"alternating/random",
                     constantLine(0x5555555555555555ull),
                     randomStored});
    for (unsigned i = 0; i < 6; ++i) {
        cases.push_back({"random-" + std::to_string(i),
                         randomLine(rng), randomStored});
        for (auto &s : cases.back().stored)
            s = pcm::stateFromIndex(
                static_cast<unsigned>(rng.next() & 3));
    }
    // stored = encode of a previous payload: the differential-write
    // shape real replays hit every write.
    const Line512 prev = randomLine(rng);
    const pcm::TargetLine t =
        codec.encode(prev, allStored(State::S1));
    cases.push_back({"after-encode", randomLine(rng), t.toVector()});
    return cases;
}

void
expectSameTarget(const pcm::TargetLine &got,
                 const pcm::TargetLine &want, const std::string &what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    ASSERT_EQ(got.auxStart(), want.auxStart()) << what;
    for (unsigned i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << what << " cell " << i;
        ASSERT_EQ(got.aux(i), want.aux(i))
            << what << " aux bit " << i;
    }
}

TEST(SimdCodecEquivalence, EveryCodecEveryKernelBitIdentical)
{
    Rng rng(515);
    for (const pcm::EnergyModel &energy :
         {pcm::EnergyModel(),
          pcm::EnergyModel::withHighStateEnergies(75.0, 135.0)}) {
        for (const auto &name : allSchemes()) {
            const auto codec = core::makeCodec(name, energy);
            const auto cases = makeCases(*codec, rng);
            for (const LineCase &lc : cases) {
                pcm::TargetLine want;
                {
                    KernelScope scalar(Kernel::Scalar);
                    want = codec->encode(lc.data, lc.stored);
                }
                // The scalar-scoring hook is the second independent
                // reference: cost rows recomputed from the
                // EnergyModel per fetch.
                {
                    KernelScope scalar(Kernel::Scalar);
                    ScalarScoringScope hook;
                    expectSameTarget(
                        codec->encode(lc.data, lc.stored), want,
                        name + "/" + lc.label + "/hook");
                }
                for (const Kernel k : availableKernels()) {
                    KernelScope scope(k);
                    expectSameTarget(
                        codec->encode(lc.data, lc.stored), want,
                        name + "/" + lc.label + "/" +
                            simd::kernelName(k));
                }
            }
        }
    }
}

TEST(SimdCodecEquivalence, NonFactorySixCosetsUsesEightLaneKernel)
{
    // 6cosets at several granularities, including blocks that span
    // 64-bit word boundaries (granularity > 64), drives accumRows8.
    Rng rng(616);
    const pcm::EnergyModel energy;
    for (const unsigned g : {16u, 64u, 128u, 512u}) {
        const coset::NCosetsCodec codec(
            energy, coset::sixCosetCandidates(), g);
        const auto cases = makeCases(codec, rng);
        for (const LineCase &lc : cases) {
            pcm::TargetLine want;
            {
                KernelScope scalar(Kernel::Scalar);
                want = codec.encode(lc.data, lc.stored);
            }
            for (const Kernel k : availableKernels()) {
                KernelScope scope(k);
                expectSameTarget(codec.encode(lc.data, lc.stored),
                                 want,
                                 codec.name() + "-g" +
                                     std::to_string(g) + "/" +
                                     lc.label + "/" +
                                     simd::kernelName(k));
            }
        }
    }
}

// -------------------------------------------------- replay level

void
expectSameStat(const stats::RunningStat &a,
               const stats::RunningStat &b, const std::string &what)
{
    EXPECT_EQ(a.count(), b.count()) << what;
    EXPECT_EQ(a.mean(), b.mean()) << what;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
    EXPECT_EQ(a.variance(), b.variance()) << what;
}

void
expectSameResult(const trace::ReplayResult &a,
                 const trace::ReplayResult &b,
                 const std::string &what)
{
    expectSameStat(a.energyPj, b.energyPj, what + "/energy");
    expectSameStat(a.dataEnergyPj, b.dataEnergyPj,
                   what + "/dataEnergy");
    expectSameStat(a.auxEnergyPj, b.auxEnergyPj,
                   what + "/auxEnergy");
    expectSameStat(a.updatedCells, b.updatedCells,
                   what + "/updated");
    expectSameStat(a.disturbErrors, b.disturbErrors,
                   what + "/disturb");
    EXPECT_EQ(a.writes, b.writes) << what;
    EXPECT_EQ(a.compressedWrites, b.compressedWrites) << what;
    EXPECT_EQ(a.vnrIterations, b.vnrIterations) << what;
}

trace::ReplayResult
replayWithKernel(Kernel k, const coset::LineCodec &codec,
                 const pcm::WriteUnit &unit,
                 const std::vector<trace::WriteTransaction> &txns)
{
    KernelScope scope(k);
    trace::Replayer rep(codec, unit, 7);
    std::size_t at = 0;
    rep.runBatch([&](trace::WriteTransaction &slot) {
        if (at >= txns.size())
            return false;
        slot = txns[at++];
        return true;
    });
    return rep.result();
}

TEST(SimdReplayEquivalence, FullReplayBitIdenticalAcrossKernels)
{
    trace::TraceSynthesizer synth(
        trace::WorkloadProfile::byName("gcc"), 99);
    std::vector<trace::WriteTransaction> txns;
    for (uint64_t i = 0; i < 400; ++i)
        txns.push_back(synth.next());

    const pcm::EnergyModel energy;
    const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
    for (const auto &name : allSchemes()) {
        const auto codec = core::makeCodec(name, energy);
        const auto scalar =
            replayWithKernel(Kernel::Scalar, *codec, unit, txns);
        for (const Kernel k : availableKernels()) {
            if (k == Kernel::Scalar)
                continue;
            expectSameResult(
                replayWithKernel(k, *codec, unit, txns), scalar,
                name + "/" + simd::kernelName(k));
        }
    }
}

} // namespace
