/**
 * @file
 * Golden-output regression harness for the figure bench suite.
 *
 * Every bench binary is executed at a small fixed scale
 * (WLCRC_BENCH_LINES=120, WLCRC_BENCH_RANDOM_LINES=240, 2 replay
 * shards) and its stdout is compared byte-for-byte against a
 * checked-in golden CSV under tests/golden/ — so any codec, model
 * or harness change that drifts a figure's numbers fails ctest
 * instead of silently corrupting the artifact evaluation. Each
 * binary additionally runs with WLCRC_BENCH_JOBS=1 and =4 and the
 * two outputs must be identical, extending the runner's
 * parallelism-independence guarantee to the whole figure suite.
 *
 * The throughput bench reports wall-clock columns; those cells are
 * masked ('*') before comparison, pinning its deterministic
 * behaviour (kernel set, line counts, checksums) only.
 *
 * Execution backends and result caching extend the same guarantee:
 * every bench must match its golden under WLCRC_BENCH_BACKEND=serial
 * too, the process backend (child wlcrc_sim workers) is pinned to
 * the golden for a representative scheme sweep, and a cached re-run
 * must be byte-identical while replaying zero points.
 *
 * Refreshing goldens after an intended change:
 *     WLCRC_UPDATE_GOLDEN=1 ctest -R bench_golden
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "subprocess.hh"

namespace
{

/** One bench binary under golden test. */
struct BenchCase
{
    const char *name;     //!< bench/<name>.cc, binary bench_<name>
    bool maskTiming;      //!< mask wall-clock columns before diffing
};

const BenchCase kBenches[] = {
    {"fig01_granularity_motivation", false},
    {"fig02_cosets_random", false},
    {"fig03_cosets_biased", false},
    {"fig04_compression_coverage", false},
    {"fig05_restricted_cosets", false},
    {"fig08_write_energy", false},
    {"fig09_endurance", false},
    {"fig10_disturbance", false},
    {"fig11_granularity_energy", false},
    {"fig12_granularity_endurance", false},
    {"fig13_granularity_disturbance", false},
    {"fig14_energy_sensitivity", false},
    {"ablation_wlcrc", false},
    {"multi_objective", false},
    {"hw_overhead", false},
    {"lifetime_sweep", false},
    {"codec_throughput", true},
    {"encode_hot_path", true},
};

/** Columns that are wall-clock measurements, never compared. */
const std::set<std::string> kVolatileColumns = {
    "ns_per_op", "ops_per_s", "writes_per_sec", "speedup"};

/** Capture a command's stdout; stderr is discarded. */
std::string
capture(const std::string &cmd, int &exit_code)
{
    return wlcrc::test::captureStdout(cmd + " 2>/dev/null",
                                      exit_code);
}

/** Naive comma split — bench CSV cells never contain commas. */
std::vector<std::string>
splitCells(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    for (const char c : line) {
        if (c == ',') {
            cells.push_back(cell);
            cell.clear();
        } else {
            cell += c;
        }
    }
    cells.push_back(cell);
    return cells;
}

/**
 * Replace every cell of a volatile column with '*'. Comment lines
 * and tables without volatile columns pass through untouched, so
 * this is the identity for the deterministic benches.
 */
std::string
maskVolatileColumns(const std::string &text)
{
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    std::set<std::size_t> volatile_idx;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') {
            volatile_idx.clear(); // next table re-parses its header
            out << line << '\n';
            continue;
        }
        auto cells = splitCells(line);
        bool is_header = false;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (kVolatileColumns.count(cells[i])) {
                if (!is_header)
                    volatile_idx.clear();
                is_header = true;
                volatile_idx.insert(i);
            }
        }
        if (!is_header) {
            for (const std::size_t i : volatile_idx)
                if (i < cells.size())
                    cells[i] = "*";
        }
        for (std::size_t i = 0; i < cells.size(); ++i)
            out << (i ? "," : "") << cells[i];
        out << '\n';
    }
    return out.str();
}

std::string
benchCommand(const std::string &name, unsigned jobs,
             const std::string &extraEnv = {})
{
    std::ostringstream cmd;
    cmd << "WLCRC_BENCH_LINES=120 WLCRC_BENCH_RANDOM_LINES=240"
        << " WLCRC_BENCH_SHARDS=2 WLCRC_BENCH_PROGRESS=0"
        << " WLCRC_BENCH_JOBS=" << jobs;
    if (!extraEnv.empty())
        cmd << " " << extraEnv;
    cmd << " " << WLCRC_BENCH_DIR << "/bench_" << name;
    return cmd.str();
}

std::string
goldenPath(const std::string &name)
{
    return std::string(WLCRC_GOLDEN_DIR) + "/" + name + ".csv";
}

/** Golden file contents ("" when absent). */
std::string
readGolden(const std::string &name)
{
    std::ifstream golden(goldenPath(name), std::ios::binary);
    std::stringstream buf;
    buf << golden.rdbuf();
    return buf.str();
}

class bench_golden : public ::testing::TestWithParam<BenchCase>
{
};

TEST_P(bench_golden, OutputMatchesGoldenAndIsJobCountInvariant)
{
    const BenchCase &bench = GetParam();

    int exit1 = -1, exit4 = -1;
    std::string out1 = capture(benchCommand(bench.name, 1), exit1);
    std::string out4 = capture(benchCommand(bench.name, 4), exit4);
    ASSERT_EQ(exit1, 0) << "bench_" << bench.name
                        << " (jobs=1) failed:\n"
                        << out1;
    ASSERT_EQ(exit4, 0) << "bench_" << bench.name
                        << " (jobs=4) failed:\n"
                        << out4;
    ASSERT_FALSE(out1.empty());

    if (bench.maskTiming) {
        out1 = maskVolatileColumns(out1);
        out4 = maskVolatileColumns(out4);
    }

    // Parallelism independence: the report is a function of the
    // spec grid, never of the worker count.
    EXPECT_EQ(out1, out4)
        << "bench_" << bench.name
        << " output depends on WLCRC_BENCH_JOBS";

    const std::string path = goldenPath(bench.name);
    if (std::getenv("WLCRC_UPDATE_GOLDEN")) {
        std::ofstream golden(path, std::ios::binary);
        ASSERT_TRUE(golden.is_open())
            << "cannot write golden file " << path;
        golden << out1;
        return;
    }

    std::ifstream golden(path, std::ios::binary);
    ASSERT_TRUE(golden.is_open())
        << "missing golden file " << path
        << " — regenerate with: WLCRC_UPDATE_GOLDEN=1 ctest -R "
           "bench_golden";
    std::stringstream expected;
    expected << golden.rdbuf();
    EXPECT_EQ(out1, expected.str())
        << "bench_" << bench.name
        << " drifted from its golden CSV. If the change is "
           "intended, refresh with: WLCRC_UPDATE_GOLDEN=1 ctest -R "
           "bench_golden";
}

// Backends relocate replay work without changing stdout: every
// bench must reproduce its golden CSV under the serial backend too
// (the thread-backend comparison is the golden test above).
TEST_P(bench_golden, SerialBackendMatchesGolden)
{
    if (std::getenv("WLCRC_UPDATE_GOLDEN"))
        GTEST_SKIP() << "goldens being refreshed";
    const BenchCase &bench = GetParam();
    const std::string expected = readGolden(bench.name);
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << goldenPath(bench.name);

    int exit_code = -1;
    std::string out = capture(
        benchCommand(bench.name, 1, "WLCRC_BENCH_BACKEND=serial"),
        exit_code);
    ASSERT_EQ(exit_code, 0) << out;
    if (bench.maskTiming)
        out = maskVolatileColumns(out);
    EXPECT_EQ(out, expected)
        << "bench_" << bench.name
        << " output depends on the execution backend";
}

INSTANTIATE_TEST_SUITE_P(
    Figures, bench_golden, ::testing::ValuesIn(kBenches),
    [](const ::testing::TestParamInfo<BenchCase> &info) {
        return std::string(info.param.name);
    });

// The process backend forks real wlcrc_sim workers; pin a full
// scheme×workload sweep to the same golden bytes. One
// representative bench keeps suite runtime sane — backend_test
// covers the protocol itself at unit scale.
TEST(bench_backends, Fig08ProcessBackendMatchesGolden)
{
    if (std::getenv("WLCRC_UPDATE_GOLDEN"))
        GTEST_SKIP() << "goldens being refreshed";
    const std::string expected = readGolden("fig08_write_energy");
    ASSERT_FALSE(expected.empty());

    int exit_code = -1;
    const std::string out = capture(
        benchCommand("fig08_write_energy", 4,
                     "WLCRC_BENCH_BACKEND=process "
                     "WLCRC_WORKER_BIN=" WLCRC_SIM_BIN),
        exit_code);
    ASSERT_EQ(exit_code, 0) << out;
    EXPECT_EQ(out, expected);
}

// Lifetime replays always execute single-sharded (a leveler's
// mapping spans the whole address space), but they still cross the
// process boundary like any other spec: the sweep must reproduce
// its golden bytes under forked wlcrc_sim workers too.
TEST(bench_backends, LifetimeSweepProcessBackendMatchesGolden)
{
    if (std::getenv("WLCRC_UPDATE_GOLDEN"))
        GTEST_SKIP() << "goldens being refreshed";
    const std::string expected = readGolden("lifetime_sweep");
    ASSERT_FALSE(expected.empty());

    int exit_code = -1;
    const std::string out = capture(
        benchCommand("lifetime_sweep", 4,
                     "WLCRC_BENCH_BACKEND=process "
                     "WLCRC_WORKER_BIN=" WLCRC_SIM_BIN),
        exit_code);
    ASSERT_EQ(exit_code, 0) << out;
    EXPECT_EQ(out, expected);
}

// A cached lifetime sweep must re-run without replaying a single
// point: death detection, remap accounting and the CoV timeline all
// round-trip through the result cache.
TEST(bench_backends, LifetimeSweepCachedRerunIsAllHits)
{
    if (std::getenv("WLCRC_UPDATE_GOLDEN"))
        GTEST_SKIP() << "goldens being refreshed";
    const std::string dir =
        ::testing::TempDir() + "wlcrc_lifetime_cache";
    std::system(("rm -rf '" + dir + "'").c_str());
    const std::string env =
        "WLCRC_BENCH_CACHE_DIR='" + dir + "'";

    int exit1 = -1, exit2 = -1, exit3 = -1;
    const std::string cold =
        capture(benchCommand("lifetime_sweep", 4, env), exit1);
    const std::string warm =
        capture(benchCommand("lifetime_sweep", 4, env), exit2);
    ASSERT_EQ(exit1, 0);
    ASSERT_EQ(exit2, 0);
    EXPECT_EQ(cold, warm);
    EXPECT_EQ(cold, readGolden("lifetime_sweep"));

    const std::string summary = wlcrc::test::captureStdout(
        benchCommand("lifetime_sweep", 4, env) +
            " 2>&1 1>/dev/null",
        exit3);
    ASSERT_EQ(exit3, 0) << summary;
    EXPECT_NE(summary.find(" 0 replayed"), std::string::npos)
        << summary;
}

// A cached re-run must serve every point (0 replayed) and still be
// byte-identical — the acceptance property of the result cache.
TEST(bench_backends, Fig08CachedRerunIsByteIdenticalAndAllHits)
{
    if (std::getenv("WLCRC_UPDATE_GOLDEN"))
        GTEST_SKIP() << "goldens being refreshed";
    const std::string dir =
        ::testing::TempDir() + "wlcrc_bench_cache";
    std::system(("rm -rf '" + dir + "'").c_str());
    const std::string env =
        "WLCRC_BENCH_CACHE_DIR='" + dir + "'";

    int exit1 = -1, exit2 = -1, exit3 = -1;
    const std::string cold =
        capture(benchCommand("fig08_write_energy", 4, env), exit1);
    const std::string warm =
        capture(benchCommand("fig08_write_energy", 4, env), exit2);
    ASSERT_EQ(exit1, 0);
    ASSERT_EQ(exit2, 0);
    EXPECT_EQ(cold, warm);
    EXPECT_EQ(cold, readGolden("fig08_write_energy"));

    // Third (fully cached, cheap) run with stderr captured: the
    // summary must report zero replayed points.
    const std::string summary = wlcrc::test::captureStdout(
        benchCommand("fig08_write_energy", 4, env) +
            " 2>&1 1>/dev/null",
        exit3);
    ASSERT_EQ(exit3, 0) << summary;
    EXPECT_NE(summary.find(" 0 replayed"), std::string::npos)
        << summary;
}

} // namespace
