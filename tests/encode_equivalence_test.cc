/**
 * @file
 * Guards for the allocation-free batched encode hot path.
 *
 * 1. Scalar-scoring equivalence: every registered scheme is replayed
 *    once with the cached 4x4 cost tables (the hot path) and once
 *    with LineCodec::setScalarScoringForTest(true), which recomputes
 *    every cost row from the EnergyModel per fetch — the
 *    pre-refactor scalar scoring. The two replays must produce
 *    bit-identical ReplayResults, for the default Table II energies
 *    and for a Figure 14 scaled model (the case a stale cost table
 *    would get wrong).
 *
 * 2. Batch/step equivalence: Replayer::runBatch (the runner's entry,
 *    which encodes blocks through LineCodec::encodeBatch) must equal
 *    step()-ing the same stream transaction by transaction.
 *
 * 3. Allocation guard: a steady-state write (every line already
 *    primed, scratch buffers warmed) performs zero heap allocations
 *    for the selection codecs. The compression-backed formats (DIN,
 *    COC+4cosets) still stage their bitstreams on the heap; their
 *    per-write allocation count is asserted bounded so regressions
 *    (e.g. a reintroduced per-cell vector) stay visible.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "coset/codec.hh"
#include "coset/ncosets_codec.hh"
#include "coset/restricted_codec.hh"
#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

// ---------------------------------------------------------------
// Global operator new/delete instrumentation. Only the delta inside
// a measured region matters; gtest's own allocations happen outside.
namespace
{
std::atomic<uint64_t> g_allocCount{0};
}

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

// The nothrow forms must route through the same malloc/free pair:
// the STL's temporary buffers (e.g. stable_sort) allocate with
// nothrow new, and under ASan a nothrow-new/plain-delete pair split
// between the runtime's interceptor and these overrides reports an
// alloc-dealloc mismatch.
void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return ::operator new(size, std::nothrow);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace
{

using namespace wlcrc;

/** All factory schemes plus non-factory codec configurations. */
std::vector<std::string>
allSchemes()
{
    auto names = core::figure8Schemes();
    for (const char *extra : {"WLC+3cosets", "WLCRC-8", "WLCRC-32",
                              "WLCRC-64", "WLCRC-16-mo",
                              "WLCRC-16-da"})
        names.push_back(extra);
    return names;
}

/** RAII: enable scalar scoring for one replay. */
struct ScalarScoringScope
{
    ScalarScoringScope()
    {
        coset::LineCodec::setScalarScoringForTest(true);
    }
    ~ScalarScoringScope()
    {
        coset::LineCodec::setScalarScoringForTest(false);
    }
};

void
expectSameStat(const stats::RunningStat &a,
               const stats::RunningStat &b, const std::string &what)
{
    EXPECT_EQ(a.count(), b.count()) << what;
    EXPECT_EQ(a.mean(), b.mean()) << what;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
    EXPECT_EQ(a.variance(), b.variance()) << what;
}

void
expectSameResult(const trace::ReplayResult &a,
                 const trace::ReplayResult &b,
                 const std::string &what)
{
    expectSameStat(a.energyPj, b.energyPj, what + "/energy");
    expectSameStat(a.dataEnergyPj, b.dataEnergyPj,
                   what + "/dataEnergy");
    expectSameStat(a.auxEnergyPj, b.auxEnergyPj,
                   what + "/auxEnergy");
    expectSameStat(a.updatedCells, b.updatedCells,
                   what + "/updated");
    expectSameStat(a.disturbErrors, b.disturbErrors,
                   what + "/disturb");
    EXPECT_EQ(a.writes, b.writes) << what;
    EXPECT_EQ(a.compressedWrites, b.compressedWrites) << what;
    EXPECT_EQ(a.vnrIterations, b.vnrIterations) << what;
}

std::vector<trace::WriteTransaction>
makeStream(uint64_t count, uint64_t seed)
{
    trace::TraceSynthesizer synth(
        trace::WorkloadProfile::byName("gcc"), seed);
    std::vector<trace::WriteTransaction> txns;
    txns.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
        txns.push_back(synth.next());
    return txns;
}

trace::ReplayResult
replayStepped(const coset::LineCodec &codec,
              const pcm::WriteUnit &unit,
              const std::vector<trace::WriteTransaction> &txns)
{
    trace::Replayer rep(codec, unit, 7);
    for (const auto &t : txns)
        rep.step(t);
    return rep.result();
}

TEST(EncodeEquivalence, ScalarScoringMatchesCostTables)
{
    const auto txns = makeStream(400, 11);
    for (const pcm::EnergyModel &energy :
         {pcm::EnergyModel(),
          pcm::EnergyModel::withHighStateEnergies(75.0, 135.0)}) {
        const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
        for (const auto &name : allSchemes()) {
            const auto codec = core::makeCodec(name, energy);
            const auto fast = replayStepped(*codec, unit, txns);
            trace::ReplayResult scalar;
            {
                ScalarScoringScope scope;
                scalar = replayStepped(*codec, unit, txns);
            }
            expectSameResult(fast, scalar, name);
        }
    }
}

TEST(EncodeEquivalence, ScalarScoringMatchesForNonFactoryCodecs)
{
    const auto txns = makeStream(300, 12);
    const pcm::EnergyModel energy;
    const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
    const coset::NCosetsCodec four(
        energy, coset::tableICandidates(4), 32);
    const coset::RestrictedCosetsCodec restricted(energy, 16);
    for (const coset::LineCodec *codec :
         {static_cast<const coset::LineCodec *>(&four),
          static_cast<const coset::LineCodec *>(&restricted)}) {
        const auto fast = replayStepped(*codec, unit, txns);
        trace::ReplayResult scalar;
        {
            ScalarScoringScope scope;
            scalar = replayStepped(*codec, unit, txns);
        }
        expectSameResult(fast, scalar, codec->name());
    }
}

TEST(EncodeEquivalence, BatchedReplayMatchesStepped)
{
    const auto txns = makeStream(500, 13);
    const pcm::EnergyModel energy;
    const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
    for (const auto &name : allSchemes()) {
        const auto codec = core::makeCodec(name, energy);
        const auto stepped = replayStepped(*codec, unit, txns);

        trace::Replayer batched(*codec, unit, 7);
        std::size_t at = 0;
        const uint64_t replayed =
            batched.runBatch([&](trace::WriteTransaction &slot) {
                if (at >= txns.size())
                    return false;
                slot = txns[at++];
                return true;
            });
        EXPECT_EQ(replayed, txns.size()) << name;
        expectSameResult(stepped, batched.result(), name);
    }
}

TEST(EncodeEquivalence, BatchPrefetchIsIdentityOnResults)
{
    // WLCRC_PREFETCH=1 issues software prefetches for each batch's
    // stored lines before encodeBatch. It is a pure memory-system
    // hint, so a prefetching replay must be bit-identical to the
    // default. The flag is sampled at Replayer construction.
    const auto txns = makeStream(400, 15);
    const pcm::EnergyModel energy;
    const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
    for (const char *name : {"WLCRC-16", "DIN", "6cosets"}) {
        const auto codec = core::makeCodec(name, energy);
        const auto plain = replayStepped(*codec, unit, txns);

        ASSERT_EQ(::setenv("WLCRC_PREFETCH", "1", 1), 0);
        trace::Replayer prefetching(*codec, unit, 7);
        ASSERT_EQ(::unsetenv("WLCRC_PREFETCH"), 0);

        std::size_t at = 0;
        prefetching.runBatch([&](trace::WriteTransaction &slot) {
            if (at >= txns.size())
                return false;
            slot = txns[at++];
            return true;
        });
        expectSameResult(plain, prefetching.result(),
                         std::string(name) + "/prefetch");
    }
}

TEST(EncodeEquivalence, BatchedReplayMatchesWithVnR)
{
    // VnR consumes extra rng draws per disturbed write; batching
    // must not perturb the draw order.
    const auto txns = makeStream(300, 14);
    const pcm::EnergyModel energy;
    const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
    const auto codec = core::makeCodec("WLCRC-16", energy);

    trace::Replayer stepped(*codec, unit, 7, true);
    for (const auto &t : txns)
        stepped.step(t);

    trace::Replayer batched(*codec, unit, 7, true);
    std::size_t at = 0;
    batched.runBatch([&](trace::WriteTransaction &slot) {
        if (at >= txns.size())
            return false;
        slot = txns[at++];
        return true;
    });
    expectSameResult(stepped.result(), batched.result(), "vnr");
}

/** Allocations per steady-state write, after a warm-up pass. */
double
steadyStateAllocsPerWrite(const std::string &scheme)
{
    const pcm::EnergyModel energy;
    const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
    const auto codec = core::makeCodec(scheme, energy);
    const auto txns = makeStream(200, 15);
    trace::Replayer rep(*codec, unit, 7);
    // Warm up: primes every line and grows reusable buffers.
    for (const auto &t : txns)
        rep.step(t);
    const uint64_t before =
        g_allocCount.load(std::memory_order_relaxed);
    for (const auto &t : txns)
        rep.step(t);
    const uint64_t after =
        g_allocCount.load(std::memory_order_relaxed);
    return static_cast<double>(after - before) /
           static_cast<double>(txns.size());
}

TEST(AllocationGuard, SelectionCodecsAllocateNothingSteadyState)
{
    for (const char *scheme :
         {"Baseline", "FlipMin", "FNW", "6cosets", "WLC+4cosets",
          "WLC+3cosets", "WLCRC-8", "WLCRC-16", "WLCRC-32",
          "WLCRC-64", "WLCRC-16-mo", "WLCRC-16-da"}) {
        EXPECT_EQ(steadyStateAllocsPerWrite(scheme), 0.0) << scheme;
    }
}

TEST(AllocationGuard, CompressionBackedSchemesAllocateNothing)
{
    // The compressor bank builds its candidate streams in inline
    // BitBuffer storage and DIN's BCH stage encodes through
    // Bch::encodeInto, so the compression-backed schemes hit the
    // same zero-allocation bar as the selection codecs.
    EXPECT_EQ(steadyStateAllocsPerWrite("DIN"), 0.0);
    EXPECT_EQ(steadyStateAllocsPerWrite("COC+4cosets"), 0.0);
}

} // namespace
