/**
 * @file
 * Unit + property tests for the coset module: Table I mappings,
 * aux coding, and the Baseline / NCosets / Restricted / FNW /
 * FlipMin / DIN codecs.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "coset/aux_coding.hh"
#include "coset/baseline_codec.hh"
#include "coset/din_codec.hh"
#include "coset/flipmin_codec.hh"
#include "coset/fnw_codec.hh"
#include "coset/mapping.hh"
#include "coset/ncosets_codec.hh"
#include "coset/restricted_codec.hh"
#include "trace/value_model.hh"

namespace
{

using namespace wlcrc;
using coset::LineCodec;
using coset::Mapping;
using pcm::EnergyModel;
using pcm::State;
using trace::LineType;
using trace::ValueModel;

Line512
randomLine(Rng &rng)
{
    Line512 line;
    for (unsigned w = 0; w < lineWords; ++w)
        line.setWord(w, rng.next());
    return line;
}

std::vector<State>
randomStored(unsigned cells, Rng &rng)
{
    std::vector<State> stored(cells);
    for (auto &s : stored)
        s = pcm::stateFromIndex(
            static_cast<unsigned>(rng.nextBelow(4)));
    return stored;
}

/** Differential-write energy of a target against stored states. */
double
targetEnergy(const pcm::TargetLine &t, const std::vector<State> &old,
             const EnergyModel &e)
{
    double total = 0;
    for (size_t i = 0; i < t.size(); ++i)
        total += e.writeEnergy(old[i], t[i]);
    return total;
}

// ------------------------------------------------------------ Table I

TEST(Mapping, TableIDefaultMapping)
{
    const Mapping &c1 = coset::defaultMapping();
    EXPECT_EQ(c1.encode(0b00), State::S1);
    EXPECT_EQ(c1.encode(0b10), State::S2);
    EXPECT_EQ(c1.encode(0b11), State::S3);
    EXPECT_EQ(c1.encode(0b01), State::S4);
}

TEST(Mapping, TableICandidates)
{
    const Mapping &c2 = coset::tableICandidate(2);
    EXPECT_EQ(c2.encode(0b11), State::S1);
    EXPECT_EQ(c2.encode(0b00), State::S2);
    EXPECT_EQ(c2.encode(0b10), State::S3);
    EXPECT_EQ(c2.encode(0b01), State::S4);

    const Mapping &c3 = coset::tableICandidate(3);
    EXPECT_EQ(c3.encode(0b11), State::S1);
    EXPECT_EQ(c3.encode(0b01), State::S2);
    EXPECT_EQ(c3.encode(0b00), State::S3);
    EXPECT_EQ(c3.encode(0b10), State::S4);

    const Mapping &c4 = coset::tableICandidate(4);
    EXPECT_EQ(c4.encode(0b11), State::S1);
    EXPECT_EQ(c4.encode(0b00), State::S2);
    EXPECT_EQ(c4.encode(0b01), State::S3);
    EXPECT_EQ(c4.encode(0b10), State::S4);
}

TEST(Mapping, C1AndC3CoverAllSymbolsWithLowStates)
{
    // Section III: combined, C1 and C3 map every symbol to a
    // low-energy state in at least one of the two.
    const Mapping &c1 = coset::tableICandidate(1);
    const Mapping &c3 = coset::tableICandidate(3);
    for (unsigned sym = 0; sym < 4; ++sym) {
        const bool low1 = c1.encode(sym) == State::S1 ||
                          c1.encode(sym) == State::S2;
        const bool low3 = c3.encode(sym) == State::S1 ||
                          c3.encode(sym) == State::S2;
        EXPECT_TRUE(low1 || low3) << "symbol " << sym;
    }
}

TEST(Mapping, AllCandidatesAreBijections)
{
    for (unsigned k = 1; k <= 4; ++k) {
        const Mapping &m = coset::tableICandidate(k);
        for (unsigned sym = 0; sym < 4; ++sym)
            EXPECT_EQ(m.decode(m.encode(sym)), sym);
    }
    for (const Mapping *m : coset::sixCosetCandidates()) {
        for (unsigned sym = 0; sym < 4; ++sym)
            EXPECT_EQ(m->decode(m->encode(sym)), sym);
    }
}

TEST(Mapping, SixCosetsCoverAllSymbolPairs)
{
    // Every unordered symbol pair must land on {S1, S2} in exactly
    // one candidate (Wang et al.'s C(4,2) = 6 construction).
    const auto candidates = coset::sixCosetCandidates();
    ASSERT_EQ(candidates.size(), 6u);
    std::set<std::pair<unsigned, unsigned>> covered;
    for (const Mapping *m : candidates) {
        unsigned lo[2], n = 0;
        for (unsigned sym = 0; sym < 4; ++sym) {
            if (m->encode(sym) == State::S1 ||
                m->encode(sym) == State::S2)
                lo[n++] = sym;
        }
        ASSERT_EQ(n, 2u);
        covered.insert({std::min(lo[0], lo[1]),
                        std::max(lo[0], lo[1])});
    }
    EXPECT_EQ(covered.size(), 6u);
}

TEST(Mapping, SixCosetsIncludeDefault)
{
    const auto candidates = coset::sixCosetCandidates();
    bool has_default = false;
    for (const Mapping *m : candidates)
        has_default |= (*m == coset::defaultMapping());
    EXPECT_TRUE(has_default);
}

// --------------------------------------------------------- aux coding

TEST(AuxCoding, IndexStatesRoundTrip)
{
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(coset::auxIndexFromState(coset::auxIndexState(c)),
                  c);
}

TEST(AuxCoding, CheapPairsAreSortedAndUnique)
{
    const EnergyModel e;
    const auto pairs = coset::cheapStatePairs(e);
    double prev = -1;
    std::set<std::pair<unsigned, unsigned>> seen;
    for (const auto &[a, b] : pairs) {
        const double cost = e.setPj(a) + e.setPj(b);
        EXPECT_GE(cost, prev);
        prev = cost;
        EXPECT_TRUE(
            seen.insert({pcm::stateIndex(a), pcm::stateIndex(b)})
                .second);
    }
    // The six cheapest combinations avoid S4 entirely.
    for (const auto &[a, b] : pairs) {
        EXPECT_NE(a, State::S4);
        EXPECT_NE(b, State::S4);
    }
}

TEST(AuxCoding, PackUnpackBits)
{
    const std::vector<uint8_t> bits = {1, 0, 1, 1, 0, 1, 0};
    std::vector<State> cells;
    coset::packBitsToStates(bits, cells);
    EXPECT_EQ(cells.size(), 4u);
    EXPECT_EQ(coset::unpackBitsFromStates(cells, bits.size()), bits);
}

// ------------------------------------------------------------- codecs

/** Round-trip property shared by every codec. */
void
checkRoundTrip(const LineCodec &codec, uint64_t seed, int iters = 200)
{
    Rng rng(seed);
    std::vector<State> stored = randomStored(codec.cellCount(), rng);
    for (int i = 0; i < iters; ++i) {
        // Alternate biased and random payloads.
        const Line512 data =
            (i % 2) ? randomLine(rng)
                    : ValueModel::generateLine(
                          static_cast<LineType>(
                              rng.nextBelow(trace::numLineTypes)),
                          rng);
        const pcm::TargetLine target = codec.encode(data, stored);
        ASSERT_EQ(target.size(), codec.cellCount());
        stored = target.toVector();
        ASSERT_EQ(codec.decode(stored), data)
            << codec.name() << " iteration " << i;
    }
}

TEST(BaselineCodec, RoundTripAndNoAux)
{
    const EnergyModel e;
    const coset::BaselineCodec codec(e);
    EXPECT_EQ(codec.cellCount(), lineSymbols);
    checkRoundTrip(codec, 101);
}

class NCosetsParam
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(NCosetsParam, RoundTrip)
{
    const auto [ncand, gran] = GetParam();
    const EnergyModel e;
    const auto cands = ncand == 6 ? coset::sixCosetCandidates()
                                  : coset::tableICandidates(ncand);
    const coset::NCosetsCodec codec(e, cands, gran);
    checkRoundTrip(codec, 100 * ncand + gran, 60);
}

TEST_P(NCosetsParam, NeverWorseThanForcingTheFirstCandidate)
{
    // Per-block minimisation (data + aux cost) can never spend more
    // than unconditionally using the first candidate everywhere.
    const auto [ncand, gran] = GetParam();
    const EnergyModel e;
    const auto cands = ncand == 6 ? coset::sixCosetCandidates()
                                  : coset::tableICandidates(ncand);
    const coset::NCosetsCodec codec(e, cands, gran);
    Rng rng(2);
    std::vector<State> stored = randomStored(codec.cellCount(), rng);
    for (int i = 0; i < 50; ++i) {
        const Line512 data = randomLine(rng);
        const auto target = codec.encode(data, stored);
        double enc = targetEnergy(target, stored, e);
        // Forced: candidate 0 on every block; aux cells match the
        // real codec's layout only for <=4 candidates with one aux
        // cell per block, so compare data-cell spend plus an upper
        // bound on aux spend.
        const Mapping &c0 = *cands[0];
        double forced_data = 0;
        for (unsigned s = 0; s < lineSymbols; ++s) {
            forced_data += e.writeEnergy(stored[s],
                                         c0.encode(data.symbol(s)));
        }
        // Aux for candidate 0 everywhere: codec's own encoding of
        // candidate 0 costs at most one full reprogram per aux cell.
        const unsigned aux_cells = codec.cellCount() - lineSymbols;
        const double aux_bound =
            aux_cells * e.programEnergy(State::S2);
        EXPECT_LE(enc, forced_data + aux_bound + 1e-9);
        stored = target.toVector();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NCosetsParam,
    ::testing::Combine(::testing::Values(3u, 4u, 6u),
                       ::testing::Values(8u, 16u, 32u, 64u, 128u,
                                         256u, 512u)));

TEST(NCosetsCodec, AuxCellBudget)
{
    const EnergyModel e;
    const coset::NCosetsCodec four(e, coset::tableICandidates(4), 16);
    EXPECT_EQ(four.auxCellsPerBlock(), 1u);
    EXPECT_EQ(four.cellCount(), lineSymbols + 32);
    const coset::NCosetsCodec six(e, coset::sixCosetCandidates(), 16);
    EXPECT_EQ(six.auxCellsPerBlock(), 2u);
    EXPECT_EQ(six.cellCount(), lineSymbols + 64);
}

class RestrictedParam : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RestrictedParam, RoundTrip)
{
    const EnergyModel e;
    const coset::RestrictedCosetsCodec codec(e, GetParam());
    checkRoundTrip(codec, 300 + GetParam(), 60);
}

TEST_P(RestrictedParam, AuxBudgetHalvedVsUnrestricted)
{
    const EnergyModel e;
    const coset::RestrictedCosetsCodec codec(e, GetParam());
    // 1 global bit + 1 bit per block vs 2 bits per block.
    EXPECT_EQ(codec.auxBits(), 1 + lineBits / GetParam());
    EXPECT_LT(codec.auxBits(), 2 * lineBits / GetParam());
}

INSTANTIATE_TEST_SUITE_P(Grains, RestrictedParam,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

TEST(RestrictedCodec, SectionVExampleBudget)
{
    // Section V: 16-bit granularity -> 33 aux bits (17 cells) vs 64.
    const EnergyModel e;
    const coset::RestrictedCosetsCodec codec(e, 16);
    EXPECT_EQ(codec.auxBits(), 33u);
    EXPECT_EQ(codec.auxCells(), 17u);
}

TEST(FnwCodec, RoundTrip)
{
    const EnergyModel e;
    const coset::FnwCodec codec(e);
    EXPECT_EQ(codec.cellCount(), lineSymbols + 2);
    checkRoundTrip(codec, 400);
}

TEST(FnwCodec, FlipsWhenComplementIsCheaper)
{
    const EnergyModel e;
    const coset::FnwCodec codec(e);
    // Stored: everything S3 (= symbol 11). New data: all-0s.
    // Writing 0s directly would reprogram every cell; flipping makes
    // each 128-bit block all-1s == symbol 11 == stored -> free.
    std::vector<State> stored(codec.cellCount(), State::S3);
    const Line512 zeros;
    const auto target = codec.encode(zeros, stored);
    unsigned changed_data = 0;
    for (unsigned s = 0; s < lineSymbols; ++s)
        changed_data += target[s] != stored[s];
    EXPECT_EQ(changed_data, 0u);
    EXPECT_EQ(codec.decode(target.toVector()), zeros);
}

TEST(FlipMinCodec, RoundTrip)
{
    const EnergyModel e;
    const coset::FlipMinCodec codec(e);
    EXPECT_EQ(codec.cellCount(), lineSymbols + 2);
    checkRoundTrip(codec, 500);
}

TEST(FlipMinCodec, IdentityCandidateBoundsCost)
{
    // Mask 0 is the identity, so FlipMin never spends more than the
    // baseline encoding (plus aux-cell cost it accounts for).
    const EnergyModel e;
    const coset::FlipMinCodec codec(e);
    const coset::BaselineCodec base(e);
    Rng rng(501);
    std::vector<State> stored = randomStored(codec.cellCount(), rng);
    for (int i = 0; i < 30; ++i) {
        const Line512 data = randomLine(rng);
        const auto target = codec.encode(data, stored);
        const std::vector<State> base_stored(
            stored.begin(), stored.begin() + lineSymbols);
        const auto base_target = base.encode(data, base_stored);
        const double enc = targetEnergy(target, stored, e);
        double raw = 0;
        for (unsigned s = 0; s < lineSymbols; ++s)
            raw += e.writeEnergy(stored[s], base_target[s]);
        // identity + worst-case aux rewrite of two cells
        EXPECT_LE(enc, raw + 2 * e.programEnergy(State::S4) + 1e-9);
        stored = target.toVector();
    }
}

TEST(DinCodec, ExpansionAvoidsS4Codewords)
{
    for (unsigned v = 0; v < 8; ++v) {
        const unsigned cw = coset::DinCodec::expand3to4(v);
        // Neither 2-bit symbol may be 01 (-> S4 under the default
        // mapping).
        EXPECT_NE(cw & 3u, 1u);
        EXPECT_NE((cw >> 2) & 3u, 1u);
        EXPECT_EQ(coset::DinCodec::shrink4to3(cw), v);
    }
}

TEST(DinCodec, RoundTripCompressibleAndNot)
{
    const EnergyModel e;
    const coset::DinCodec codec(e);
    checkRoundTrip(codec, 600, 80);
}

TEST(DinCodec, CompressedFormatSurvivesTwoFlippedCells)
{
    // DIN's raison d'etre: the 20-bit BCH corrects up to two
    // disturbance errors during verification.
    const EnergyModel e;
    const coset::DinCodec codec(e);
    Rng rng(601);
    std::vector<State> stored(codec.cellCount(), State::S1);
    const Line512 data =
        ValueModel::generateLine(LineType::Zeroish, rng);
    auto target = codec.encode(data, stored);
    ASSERT_EQ(target[lineSymbols], State::S1)
        << "zeroish line must be FPC+BDI compressible";
    // Flip two random data cells' low bit (S1<->S2 keeps the decoded
    // bit the same only for some mappings; flip the decoded *bits*
    // instead by swapping to the complementary-symbol state).
    auto flip_bit = [&](unsigned cell, unsigned bit_in_cell) {
        const auto &map = coset::defaultMapping();
        const unsigned sym = map.decode(target[cell]);
        target[cell] = map.encode(sym ^ (1u << bit_in_cell));
    };
    flip_bit(17, 0);
    flip_bit(203, 1);
    EXPECT_EQ(codec.decode(target.toVector()), data);
}

} // namespace
