/**
 * @file
 * Result-cache correctness: the spec hash moves on every semantic
 * spec field (and only then), cacheability and process-
 * serializability rules hold, canonical specs round-trip through
 * the worker parser, and the ResultCache itself serves byte-exact
 * results, treats corrupt or version-mismatched entries as misses,
 * and invalidates when a trace file's content changes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "runner/backend.hh"
#include "runner/grid.hh"
#include "runner/json_mini.hh"
#include "runner/remote.hh"
#include "runner/report.hh"
#include "runner/result_cache.hh"
#include "runner/runner.hh"
#include "runner/spec_codec.hh"
#include "tracefile/source.hh"
#include "tracefile/writer.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;
using runner::cacheableSpec;
using runner::canonicalSpec;
using runner::ExperimentResult;
using runner::ExperimentRunner;
using runner::ExperimentSpec;
using runner::parseSpec;
using runner::processSerializable;
using runner::ResultCache;
using runner::RunnerOptions;
using runner::RunStats;
using runner::specHash;

namespace fs = std::filesystem;

/** Fresh per-test directory under the gtest temp root. */
std::string
tempDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("wlcrc_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

ExperimentSpec
baseSpec()
{
    ExperimentSpec spec;
    spec.scheme = "Baseline";
    spec.workload = "lesl";
    spec.lines = 60;
    spec.seed = 7;
    spec.shards = 2;
    return spec;
}

std::string
csvOf(const std::vector<ExperimentResult> &results)
{
    std::ostringstream os;
    runner::CsvReporter().write(os, results);
    return os.str();
}

// ---------------------------------------------------------- hashing

TEST(SpecHash, StableForEqualSpecs)
{
    EXPECT_EQ(specHash(baseSpec()), specHash(baseSpec()));
}

TEST(SpecHash, MovesOnEverySemanticField)
{
    const uint64_t base = specHash(baseSpec());
    const auto differs = [&](auto mutate, const char *what) {
        ExperimentSpec s = baseSpec();
        mutate(s);
        EXPECT_NE(specHash(s), base) << "hash ignored " << what;
    };
    differs([](auto &s) { s.scheme = "WLCRC-16"; }, "scheme");
    differs([](auto &s) { s.workload = "gcc"; }, "workload");
    differs([](auto &s) { s.workload.clear(); s.random = true; },
            "stream kind");
    differs([](auto &s) { s.lines = 61; }, "lines");
    differs([](auto &s) { s.seed = 8; }, "seed");
    differs([](auto &s) { s.shards = 3; }, "shards");
    differs(
        [](auto &s) {
            s.partition = tracefile::Partition::range;
        },
        "partition");
    differs([](auto &s) { s.device.s3 = 300.5; }, "device s3");
    differs([](auto &s) { s.device.s4 = 500.25; }, "device s4");
    differs([](auto &s) { s.device.vnr = true; }, "device vnr");
    differs([](auto &s) { s.device.wearEndurance = 1000; },
            "device wear");
    differs([](auto &s) { s.cacheSalt = "x"; }, "cache salt");
    differs(
        [](auto &s) {
            s.leveler = wearlevel::parseLeveler("start-gap");
        },
        "leveler scheme");
    differs(
        [](auto &s) {
            s.leveler =
                wearlevel::parseLeveler("start-gap:p50:r32");
        },
        "leveler parameters");
    differs(
        [](auto &s) {
            s.endurance = wearlevel::parseEndurance("100:0.2");
        },
        "endurance budgets");
    differs(
        [](auto &s) {
            s.endurance = wearlevel::parseEndurance("100");
            s.lifetime = true;
        },
        "lifetime mode");
}

TEST(SpecHash, LevelerParameterVariantsAllDiffer)
{
    // Same scheme, different knobs must never collide: each knob
    // is part of the canonical leveler token.
    const auto hashOf = [](const char *cfg) {
        ExperimentSpec s = baseSpec();
        s.leveler = wearlevel::parseLeveler(cfg);
        return specHash(s);
    };
    EXPECT_NE(hashOf("start-gap:p100:r64"),
              hashOf("start-gap:p100:r32"));
    EXPECT_NE(hashOf("start-gap:p100:r64"),
              hashOf("start-gap:p50:r64"));
    EXPECT_NE(hashOf("page-remap:p100:g8"),
              hashOf("page-remap:p100:g4"));
    EXPECT_NE(hashOf("start-gap"), hashOf("page-remap"));
}

TEST(SpecHash, TraceContentDigestInvalidates)
{
    const std::string dir = tempDir("digest");
    const std::string path = dir + "/t.trc";
    const auto writeTrace = [&](uint64_t seed) {
        tracefile::TraceFileWriter w(path, 16);
        trace::WriteTransaction t{};
        for (uint64_t i = 0; i < 40; ++i) {
            t.lineAddr = (i * seed) % 17;
            t.newData.setWord(0, i + seed);
            w.write(t);
        }
        w.close();
    };

    writeTrace(3);
    ExperimentSpec spec = baseSpec();
    spec.workload.clear();
    auto src = tracefile::openTraceSource(path);
    spec.source = src;
    const uint64_t before = specHash(spec);

    // Relabeling is presentation-only: served results carry the
    // caller's spec, so the label must NOT move the hash.
    src->setLabel("renamed");
    EXPECT_EQ(specHash(spec), before);

    // Same path, different bytes: the footer CRC digest must move
    // the hash even though every spec field is unchanged.
    writeTrace(4);
    spec.source = tracefile::openTraceSource(path);
    EXPECT_NE(specHash(spec), before);
}

TEST(SpecHash, V3DigestTracksPayloadNotFraming)
{
    // The WLCTRC03 content digest is framing-invariant: rewriting
    // one stream as v2, v3+lz or v3+raw (recompression, conversion)
    // must serve the same cache entries, while any payload change
    // must miss.
    const std::string dir = tempDir("digest_v3");
    const std::string path = dir + "/t.trc";
    const auto writeTrace = [&](tracefile::TraceFormat format,
                                tracefile::BlockCodec codec,
                                uint64_t salt) {
        tracefile::WriterOptions options;
        options.recordsPerBlock = 16;
        options.format = format;
        options.codec = codec;
        tracefile::TraceFileWriter w(path, options);
        trace::WriteTransaction t{};
        for (uint64_t i = 0; i < 80; ++i) {
            t.lineAddr = i % 23;
            t.newData.setWord(0, i + salt);
            w.write(t);
        }
        w.close();
    };
    const auto hashNow = [&] {
        ExperimentSpec spec = baseSpec();
        spec.workload.clear();
        spec.source = tracefile::openTraceSource(path);
        return specHash(spec);
    };

    writeTrace(tracefile::TraceFormat::v2,
               tracefile::BlockCodec::raw, 1);
    const uint64_t v2Hash = hashNow();

    // Recompression-identical rewrites keep every hash.
    writeTrace(tracefile::TraceFormat::v3,
               tracefile::BlockCodec::lz, 1);
    EXPECT_EQ(hashNow(), v2Hash) << "v3+lz rewrite moved the hash";
    writeTrace(tracefile::TraceFormat::v3,
               tracefile::BlockCodec::raw, 1);
    EXPECT_EQ(hashNow(), v2Hash) << "v3+raw rewrite moved the hash";

    // A one-word payload change moves it.
    writeTrace(tracefile::TraceFormat::v3,
               tracefile::BlockCodec::lz, 2);
    EXPECT_NE(hashNow(), v2Hash) << "payload mutation kept the hash";
}

// --------------------------------------------------- eligibility

TEST(SpecCodec, CacheabilityRules)
{
    EXPECT_TRUE(cacheableSpec(baseSpec()));

    ExperimentSpec custom = baseSpec();
    custom.customReplay = [](const ExperimentSpec &,
                             const auto &) {
        return trace::ReplayResult{};
    };
    EXPECT_FALSE(cacheableSpec(custom));

    ExperimentSpec factory = baseSpec();
    factory.codecFactory = [](const pcm::EnergyModel &e) {
        return core::makeCodec("Baseline", e);
    };
    EXPECT_FALSE(cacheableSpec(factory)) << "unsalted factory";
    factory.cacheSalt = "test:Baseline";
    EXPECT_TRUE(cacheableSpec(factory)) << "salted factory";

    // A cache hit cannot carry the per-cell tracker the caller
    // asked to keep, so such specs must always replay.
    ExperimentSpec tracker = baseSpec();
    tracker.keepWearTracker = true;
    EXPECT_FALSE(cacheableSpec(tracker));

    // Leveled / lifetime specs are plain data: cacheable as-is.
    ExperimentSpec leveled = baseSpec();
    leveled.leveler = wearlevel::parseLeveler("start-gap");
    leveled.endurance = wearlevel::parseEndurance("100");
    leveled.lifetime = true;
    EXPECT_TRUE(cacheableSpec(leveled));
}

TEST(SpecCodec, ProcessSerializabilityRules)
{
    std::string why;
    EXPECT_TRUE(processSerializable(baseSpec(), &why)) << why;

    ExperimentSpec factory = baseSpec();
    factory.codecFactory = [](const pcm::EnergyModel &e) {
        return core::makeCodec("Baseline", e);
    };
    EXPECT_FALSE(processSerializable(factory, &why));
    EXPECT_FALSE(why.empty());

    ExperimentSpec memory = baseSpec();
    memory.workload.clear();
    memory.source = std::make_shared<tracefile::VectorSource>(
        std::make_shared<std::vector<trace::WriteTransaction>>(
            4, trace::WriteTransaction{}));
    EXPECT_FALSE(processSerializable(memory, &why));

    // The worker's JSON report cannot carry a per-cell tracker.
    ExperimentSpec tracker = baseSpec();
    tracker.keepWearTracker = true;
    EXPECT_FALSE(processSerializable(tracker, &why));

    // Lifetime results are plain JSON fields: workers handle them.
    ExperimentSpec leveled = baseSpec();
    leveled.leveler = wearlevel::parseLeveler("start-gap");
    leveled.endurance = wearlevel::parseEndurance("100");
    leveled.lifetime = true;
    EXPECT_TRUE(processSerializable(leveled, &why)) << why;
}

TEST(SpecCodec, CanonicalSpecRoundTripsThroughParse)
{
    ExperimentSpec spec = baseSpec();
    spec.device.vnr = true;
    spec.device.wearEndurance = 123;
    spec.device.s3 = 301.75;
    const ExperimentSpec back = parseSpec(canonicalSpec(spec));
    EXPECT_EQ(canonicalSpec(back), canonicalSpec(spec));

    // Range partitioning is a cache-relevant field: emitted only
    // when non-default (keeping pre-existing keys stable) and
    // parsed back faithfully.
    EXPECT_EQ(canonicalSpec(baseSpec()).find("partition="),
              std::string::npos);
    ExperimentSpec ranged = baseSpec();
    ranged.partition = tracefile::Partition::range;
    EXPECT_NE(canonicalSpec(ranged).find("partition=range\n"),
              std::string::npos);
    const ExperimentSpec rangedBack =
        parseSpec(canonicalSpec(ranged));
    EXPECT_EQ(rangedBack.partition, tracefile::Partition::range);
    EXPECT_EQ(canonicalSpec(rangedBack), canonicalSpec(ranged));
}

TEST(SpecCodec, LifetimeSpecRoundTripsThroughParse)
{
    ExperimentSpec spec = baseSpec();
    spec.leveler = wearlevel::parseLeveler("page-remap:p75:g4");
    spec.endurance = wearlevel::parseEndurance("250:0.125:1:5000");
    spec.lifetime = true;
    const ExperimentSpec back = parseSpec(canonicalSpec(spec));
    EXPECT_EQ(back.leveler, spec.leveler);
    EXPECT_EQ(back.endurance, spec.endurance);
    EXPECT_TRUE(back.lifetime);
    EXPECT_EQ(canonicalSpec(back), canonicalSpec(spec));
}

TEST(SpecCodec, DefaultLevelerFieldsLeaveCanonicalSpecUnchanged)
{
    // The subsystem's existence must not move any pre-existing
    // cache key: inactive leveler/endurance/lifetime emit nothing.
    const std::string text = canonicalSpec(baseSpec());
    EXPECT_EQ(text.find("leveler="), std::string::npos);
    EXPECT_EQ(text.find("endurance="), std::string::npos);
    EXPECT_EQ(text.find("lifetime="), std::string::npos);
}

TEST(SpecCodec, ParseRejectsGarbage)
{
    EXPECT_THROW(parseSpec("not-a-spec\n"), std::runtime_error);
    EXPECT_THROW(parseSpec(std::string(runner::specMagic) +
                           "\nscheme=X\nstream=workload:w\n"
                           "bogus_key=1\n"),
                 std::runtime_error);
    EXPECT_THROW(parseSpec(std::string(runner::specMagic) +
                           "\nscheme=X\nstream=workload:w\n"
                           "factory=1\n"),
                 std::runtime_error);
}

// ------------------------------------------------------ ResultCache

TEST(ResultCacheTest, StoreThenLookupIsExact)
{
    ResultCache cache(tempDir("roundtrip"));

    ExperimentResult res;
    res.spec = baseSpec();
    res.ok = true;
    res.replay.writes = 60;
    res.replay.compressedWrites = 13;
    res.replay.vnrIterations = 5;
    res.replay.energyPj.add(1234.56789);
    res.replay.energyPj.add(41.0 / 3.0);
    res.replay.updatedCells.add(17.25);
    cache.store(res);

    const auto hit = cache.lookup(res.spec);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->ok);
    EXPECT_EQ(hit->replay.writes, 60u);
    EXPECT_EQ(hit->replay.compressedWrites, 13u);
    EXPECT_EQ(hit->replay.vnrIterations, 5u);
    // Bit-exact mean round trip is what keeps cached CSV rows
    // byte-identical to replayed ones.
    EXPECT_EQ(hit->replay.energyPj.mean(),
              res.replay.energyPj.mean());
    EXPECT_EQ(hit->replay.updatedCells.mean(), 17.25);

    ExperimentSpec other = baseSpec();
    other.seed += 1;
    EXPECT_FALSE(cache.lookup(other).has_value());
}

TEST(ResultCacheTest, CorruptEntryIsAMiss)
{
    ResultCache cache(tempDir("corrupt"));
    ExperimentResult res;
    res.spec = baseSpec();
    res.ok = true;
    res.replay.writes = 1;
    cache.store(res);
    ASSERT_TRUE(cache.lookup(res.spec).has_value());

    std::ofstream(cache.entryPath(res.spec), std::ios::binary)
        << "{\"cache_version\":1, truncated garbage";
    EXPECT_FALSE(cache.lookup(res.spec).has_value());
}

TEST(ResultCacheTest, ReportVersionMismatchIsRejected)
{
    // readResultObject() is the gate every cached/worker result
    // passes through; a version bump must throw, not merge.
    std::ostringstream os;
    ExperimentResult res;
    res.spec = baseSpec();
    res.ok = true;
    runner::writeResultObject(os, res);
    std::string text = os.str();
    const std::string tag =
        "\"report_version\":" +
        std::to_string(runner::kReportVersion);
    const auto pos = text.find(tag);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, tag.size(), "\"report_version\":9999");
    EXPECT_THROW(runner::readResultObject(runner::parseJson(text),
                                          baseSpec()),
                 std::runtime_error);
}

// --------------------------------------- runner integration

TEST(CachedRunner, RerunServesEveryPointByteIdentically)
{
    const std::string dir = tempDir("rerun");
    const auto grid = runner::ExperimentGrid()
                          .schemes({"Baseline", "WLCRC-16"})
                          .workloads({"lesl", "gcc"})
                          .lines(60)
                          .seed(3)
                          .shards(2);

    RunStats first, second;
    RunnerOptions opts;
    opts.jobs = 2;
    opts.cacheDir = dir;
    opts.stats = &first;
    const auto r1 = ExperimentRunner(opts).run(grid);
    opts.stats = &second;
    const auto r2 = ExperimentRunner(opts).run(grid);

    EXPECT_EQ(first.points, 4u);
    EXPECT_EQ(first.cacheHits, 0u);
    EXPECT_EQ(first.replayed, 4u);
    EXPECT_EQ(first.stored, 4u);
    EXPECT_EQ(second.cacheHits, 4u);
    EXPECT_EQ(second.replayed, 0u);
    EXPECT_EQ(second.stored, 0u);
    EXPECT_EQ(csvOf(r1), csvOf(r2));

    // An uncached engine agrees too: the cache changes where
    // results come from, never what they are.
    RunnerOptions plain;
    plain.jobs = 2;
    EXPECT_EQ(csvOf(ExperimentRunner(plain).run(grid)), csvOf(r1));
}

TEST(CachedRunner, EachSpecFieldMutationMisses)
{
    const std::string dir = tempDir("mutations");
    RunnerOptions opts;
    opts.jobs = 2;
    opts.cacheDir = dir;

    RunStats prime;
    opts.stats = &prime;
    ExperimentRunner(opts).run({baseSpec()});
    ASSERT_EQ(prime.stored, 1u);

    const auto replaysAfter = [&](auto mutate) {
        ExperimentSpec s = baseSpec();
        mutate(s);
        RunStats stats;
        opts.stats = &stats;
        ExperimentRunner(opts).run({s});
        return stats.replayed == 1 && stats.cacheHits == 0;
    };
    EXPECT_TRUE(replaysAfter([](auto &s) { s.scheme = "FNW"; }));
    EXPECT_TRUE(replaysAfter([](auto &s) { s.workload = "gcc"; }));
    EXPECT_TRUE(replaysAfter([](auto &s) { s.lines = 61; }));
    EXPECT_TRUE(replaysAfter([](auto &s) { s.seed = 8; }));
    EXPECT_TRUE(replaysAfter([](auto &s) { s.shards = 1; }));
    EXPECT_TRUE(replaysAfter([](auto &s) { s.device.vnr = true; }));
    EXPECT_TRUE(replaysAfter([](auto &s) {
        s.leveler = wearlevel::parseLeveler("start-gap:p50:r32");
    }));
    EXPECT_TRUE(replaysAfter([](auto &s) {
        s.endurance = wearlevel::parseEndurance("100:0.2");
    }));
    EXPECT_TRUE(replaysAfter([](auto &s) {
        s.endurance = wearlevel::parseEndurance("100:0.2");
        s.lifetime = true;
    }));

    // And the unmutated spec still hits.
    RunStats again;
    opts.stats = &again;
    ExperimentRunner(opts).run({baseSpec()});
    EXPECT_EQ(again.cacheHits, 1u);
}

TEST(CachedRunner, CorruptEntryFallsBackToReplay)
{
    const std::string dir = tempDir("fallback");
    RunnerOptions opts;
    opts.jobs = 1;
    opts.cacheDir = dir;

    RunStats prime;
    opts.stats = &prime;
    const auto r1 = ExperimentRunner(opts).run({baseSpec()});
    ASSERT_EQ(prime.stored, 1u);

    ResultCache cache(dir);
    std::ofstream(cache.entryPath(baseSpec()), std::ios::binary)
        << "** not json **";

    RunStats stats;
    opts.stats = &stats;
    const auto r2 = ExperimentRunner(opts).run({baseSpec()});
    EXPECT_EQ(stats.cacheHits, 0u);
    EXPECT_EQ(stats.replayed, 1u);
    EXPECT_EQ(stats.stored, 1u) << "entry must be repaired";
    EXPECT_EQ(csvOf(r1), csvOf(r2));

    RunStats healed;
    opts.stats = &healed;
    ExperimentRunner(opts).run({baseSpec()});
    EXPECT_EQ(healed.cacheHits, 1u);
}

TEST(CachedRunner, FailedPointsAreNeverCached)
{
    const std::string dir = tempDir("failures");
    ExperimentSpec bad = baseSpec();
    bad.scheme = "no-such-scheme";

    RunnerOptions opts;
    opts.jobs = 1;
    opts.cacheDir = dir;
    RunStats s1, s2;
    opts.stats = &s1;
    const auto r1 = ExperimentRunner(opts).run({bad});
    ASSERT_FALSE(r1[0].ok);
    EXPECT_EQ(s1.stored, 0u);

    opts.stats = &s2;
    ExperimentRunner(opts).run({bad});
    EXPECT_EQ(s2.cacheHits, 0u) << "failures must re-run";
    EXPECT_EQ(s2.replayed, 1u);
}

// --------------------------------------------- CacheStore seam

TEST(CacheStoreSeam, HashValidationBlocksPathTraversal)
{
    // Remote clients supply the hash that becomes a file name; the
    // store must reject anything but the 16 lowercase hex digits
    // specHashHex() produces.
    EXPECT_NO_THROW(
        runner::checkCacheHash("0123456789abcdef"));
    for (const char *bad :
         {"", "short", "0123456789ABCDEF", "0123456789abcde/",
          "../../etc/passwd", "0123456789abcdef0"})
        EXPECT_THROW(runner::checkCacheHash(bad),
                     std::runtime_error)
            << bad;

    runner::DirCacheStore store(tempDir("traversal"));
    EXPECT_THROW(store.get("../../etc/passwd"),
                 std::runtime_error);
    EXPECT_THROW(store.put("..", "x"), std::runtime_error);
}

TEST(CacheStoreSeam, ConcurrentDirPutsDoNotCollideOnTmpNames)
{
    // Regression: the temp name used to be path + ".tmp." + pid,
    // which two threads of one process (the head node serving
    // concurrent remote PUTs) share — interleaved writes, then a
    // double rename that throws. Unique-per-writer names make
    // same-hash puts idempotent: last complete entry wins.
    runner::DirCacheStore store(tempDir("tmprace"));
    const std::string hash = "00000000deadbeef";
    const std::string entry(64 * 1024, 'x');
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < 40; ++i) {
                try {
                    store.put(hash, entry);
                } catch (const std::exception &) {
                    failures.fetch_add(1);
                }
            }
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    const auto got = store.get(hash);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, entry) << "entry interleaved two writers";
}

TEST(CacheStoreSeam, RemoteGetPutRoundTrips)
{
    auto dirStore = std::make_shared<runner::DirCacheStore>(
        tempDir("remote_rt"));
    runner::RemoteBackendOptions bopts;
    bopts.serveCache = dirStore;
    runner::RemoteBackend head(std::move(bopts));

    runner::RemoteCacheStore client("127.0.0.1", head.port());
    const std::string hash = "0123456789abcdef";
    EXPECT_FALSE(client.get(hash).has_value());

    const std::string entry = "{\"cache_version\":1}\n";
    client.put(hash, entry);
    const auto viaWire = client.get(hash);
    ASSERT_TRUE(viaWire.has_value());
    EXPECT_EQ(*viaWire, entry);
    // ...and the bytes really live in the head's directory store.
    const auto onDisk = dirStore->get(hash);
    ASSERT_TRUE(onDisk.has_value());
    EXPECT_EQ(*onDisk, entry);

    // Client-side validation refuses hostile keys outright.
    EXPECT_THROW(client.get("../../etc/passwd"),
                 std::runtime_error);
}

TEST(CacheStoreSeam, ClusterRerunReplaysZeroPoints)
{
    auto dirStore = std::make_shared<runner::DirCacheStore>(
        tempDir("cluster"));
    runner::RemoteBackendOptions bopts;
    bopts.serveCache = dirStore;
    runner::RemoteBackend head(std::move(bopts));

    const auto grid = runner::ExperimentGrid()
                          .schemes({"Baseline", "WLCRC-16"})
                          .workloads({"lesl", "gcc"})
                          .lines(60)
                          .seed(3)
                          .shards(2);
    RunnerOptions opts;
    opts.jobs = 2;
    opts.cacheStore = std::make_shared<runner::RemoteCacheStore>(
        "127.0.0.1", head.port());

    RunStats first, second;
    opts.stats = &first;
    const auto r1 = ExperimentRunner(opts).run(grid);
    opts.stats = &second;
    const auto r2 = ExperimentRunner(opts).run(grid);

    EXPECT_EQ(first.replayed, 4u);
    EXPECT_EQ(first.stored, 4u);
    EXPECT_EQ(second.cacheHits, 4u);
    EXPECT_EQ(second.replayed, 0u) << "cluster rerun must replay "
                                      "nothing";
    EXPECT_EQ(csvOf(r1), csvOf(r2));

    // A second "machine" (its own connection) sees the same
    // entries: zero replays there too.
    RunStats elsewhere;
    RunnerOptions other;
    other.jobs = 2;
    other.cacheStore =
        std::make_shared<runner::RemoteCacheStore>(
            "127.0.0.1", head.port());
    other.stats = &elsewhere;
    const auto r3 = ExperimentRunner(other).run(grid);
    EXPECT_EQ(elsewhere.replayed, 0u);
    EXPECT_EQ(csvOf(r3), csvOf(r1));
}

TEST(CacheStoreSeam, CorruptRemoteEntryDegradesToAMiss)
{
    const std::string dir = tempDir("remote_corrupt");
    auto dirStore =
        std::make_shared<runner::DirCacheStore>(dir);
    runner::RemoteBackendOptions bopts;
    bopts.serveCache = dirStore;
    runner::RemoteBackend head(std::move(bopts));

    RunnerOptions opts;
    opts.jobs = 1;
    opts.cacheStore = std::make_shared<runner::RemoteCacheStore>(
        "127.0.0.1", head.port());
    RunStats prime;
    opts.stats = &prime;
    const auto r1 = ExperimentRunner(opts).run({baseSpec()});
    ASSERT_EQ(prime.stored, 1u);

    std::ofstream(dirStore->entryPath(
                      runner::specHashHex(baseSpec())),
                  std::ios::binary)
        << "** not json **";

    RunStats stats;
    opts.stats = &stats;
    const auto r2 = ExperimentRunner(opts).run({baseSpec()});
    EXPECT_EQ(stats.cacheHits, 0u);
    EXPECT_EQ(stats.replayed, 1u);
    EXPECT_EQ(stats.stored, 1u) << "entry must be repaired";
    EXPECT_EQ(csvOf(r1), csvOf(r2));

    RunStats healed;
    opts.stats = &healed;
    ExperimentRunner(opts).run({baseSpec()});
    EXPECT_EQ(healed.cacheHits, 1u);
}

TEST(CacheStoreSeam, ConcurrentRemotePutsOfSameHashAreIdempotent)
{
    auto dirStore = std::make_shared<runner::DirCacheStore>(
        tempDir("remote_race"));
    runner::RemoteBackendOptions bopts;
    bopts.serveCache = dirStore;
    runner::RemoteBackend head(std::move(bopts));

    const std::string hash = "fedcba9876543210";
    const std::string entry(32 * 1024, 'y');
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t)
        threads.emplace_back([&] {
            try {
                // Each thread is its own client connection, like
                // N workers finishing the same reissued point.
                runner::RemoteCacheStore client("127.0.0.1",
                                                head.port());
                for (int i = 0; i < 20; ++i)
                    client.put(hash, entry);
            } catch (const std::exception &) {
                failures.fetch_add(1);
            }
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    runner::RemoteCacheStore client("127.0.0.1", head.port());
    const auto got = client.get(hash);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, entry);
}

TEST(CacheStoreSeam, DeadRemoteStoreDegradesLookupToAMiss)
{
    // ResultCache::lookup must absorb a vanished head: transport
    // errors are a miss (the point replays), never a crash.
    uint16_t port = 0;
    {
        runner::RemoteBackendOptions bopts;
        runner::RemoteBackend head(std::move(bopts));
        port = head.port();
        head.stop();
    }
    // The head is gone; connecting at all now fails.
    EXPECT_THROW(runner::RemoteCacheStore("127.0.0.1", port),
                 std::runtime_error);
}

} // namespace
