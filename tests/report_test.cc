/**
 * @file
 * Reporter coverage: CSV quoting of metacharacters in grid
 * coordinates, JSON string escaping, and a full round-trip parse of
 * `wlcrc_sim --json` output through a minimal in-test JSON parser
 * (the repo deliberately has no JSON dependency).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/experiment.hh"
#include "runner/report.hh"
#include "subprocess.hh"

namespace
{

using namespace wlcrc;
using runner::CsvReporter;
using runner::ExperimentResult;
using runner::JsonReporter;

// ------------------------------------------------- tiny CSV parser

/** Split one RFC-4180-style CSV line into unescaped cells. */
std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"' && i + 1 < line.size() &&
                line[i + 1] == '"') {
                cell += '"';
                ++i;
            } else if (c == '"') {
                quoted = false;
            } else {
                cell += c;
            }
        } else if (c == '"' && cell.empty()) {
            quoted = true;
        } else if (c == ',') {
            cells.push_back(cell);
            cell.clear();
        } else {
            cell += c;
        }
    }
    cells.push_back(cell);
    return cells;
}

// ------------------------------------------------ tiny JSON parser

struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue &
    at(const std::string &key) const
    {
        const auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }
    bool has(const std::string &key) const
    {
        return object.count(key) > 0;
    }
};

/** Strict recursive-descent JSON parser (throws on any garbage). */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        const JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const std::string &word)
    {
        skipWs();
        if (text_.compare(pos_, word.size(), word) != 0)
            return false;
        pos_ += word.size();
        return true;
    }

    JsonValue
    value()
    {
        JsonValue v;
        switch (peek()) {
        case '{': {
            v.type = JsonValue::Type::Object;
            expect('{');
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            for (;;) {
                expect('"');
                --pos_; // string() re-reads the quote
                const std::string key = string();
                expect(':');
                v.object.emplace(key, value());
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        case '[': {
            v.type = JsonValue::Type::Array;
            expect('[');
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            for (;;) {
                v.array.push_back(value());
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        case '"':
            v.type = JsonValue::Type::String;
            v.string = string();
            return v;
        default:
            if (consume("true")) {
                v.type = JsonValue::Type::Bool;
                v.boolean = true;
                return v;
            }
            if (consume("false")) {
                v.type = JsonValue::Type::Bool;
                v.boolean = false;
                return v;
            }
            if (consume("null"))
                return v;
            return numberValue();
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("dangling escape");
            c = text_[pos_++];
            switch (c) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("short \\u escape");
                const unsigned code = std::stoul(
                    text_.substr(pos_, 4), nullptr, 16);
                pos_ += 4;
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported");
                out += static_cast<char>(code);
                break;
            }
            default: fail("unknown escape");
            }
        }
        expect('"');
        return out;
    }

    JsonValue
    numberValue()
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (start == pos_)
            fail("expected a value");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

// ------------------------------------------------------- CSV tests

ExperimentResult
okResult()
{
    ExperimentResult r;
    r.ok = true;
    r.replay.writes = 4;
    r.replay.compressedWrites = 2;
    return r;
}

TEST(CsvReporter, QuotesCommasAndQuotesInNames)
{
    auto r = okResult();
    r.spec.scheme = "WLCRC,16";
    r.spec.workload = "say \"hi\",now";

    std::ostringstream os;
    CsvReporter().write(os, {r});
    const std::string text = os.str();

    // The metacharacters must be quoted on the wire...
    EXPECT_NE(text.find("\"WLCRC,16\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"say \"\"hi\"\",now\""),
              std::string::npos)
        << text;

    // ...and a conforming CSV parser must get the originals back.
    std::istringstream in(text);
    std::string header_line, row_line;
    ASSERT_TRUE(std::getline(in, header_line));
    ASSERT_TRUE(std::getline(in, row_line));
    const auto header = parseCsvLine(header_line);
    const auto row = parseCsvLine(row_line);
    ASSERT_EQ(row.size(), header.size());
    EXPECT_EQ(row[0], "WLCRC,16");
    EXPECT_EQ(row[1], "say \"hi\",now");
    EXPECT_EQ(row[5], "ok");
}

TEST(CsvReporter, OneRowPerResultEvenOnError)
{
    auto good = okResult();
    ExperimentResult bad;
    bad.spec.scheme = "nope";
    bad.error = "unknown scheme";

    std::ostringstream os;
    CsvReporter().write(os, {good, bad});
    std::istringstream in(os.str());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u); // header + 2 rows
    EXPECT_NE(lines[2].find("error"), std::string::npos);
}

// ------------------------------------------------------ JSON tests

TEST(JsonReporter, EscapesQuotesBackslashesAndControlChars)
{
    ExperimentResult r;
    r.spec.scheme = "sch\"eme\\x";
    r.error = "line1\nline2\ttabbed";

    std::ostringstream os;
    JsonReporter().write(os, {r});

    const auto doc = JsonParser(os.str()).parse();
    ASSERT_EQ(doc.type, JsonValue::Type::Array);
    ASSERT_EQ(doc.array.size(), 1u);
    const auto &obj = doc.array[0];
    EXPECT_EQ(obj.at("scheme").string, "sch\"eme\\x");
    EXPECT_FALSE(obj.at("ok").boolean);
    EXPECT_EQ(obj.at("error").string, "line1\nline2\ttabbed");
}

TEST(JsonReporter, RoundTripsMetricsThroughAParser)
{
    auto r = okResult();
    r.spec.scheme = "WLCRC-16";
    r.spec.workload = "lesl";
    r.spec.lines = 4;
    r.spec.seed = 9;
    r.spec.shards = 2;

    std::ostringstream os;
    JsonReporter().write(os, {r});
    const auto doc = JsonParser(os.str()).parse();
    const auto &obj = doc.array.at(0);
    EXPECT_EQ(obj.at("scheme").string, "WLCRC-16");
    EXPECT_EQ(obj.at("source").string, "lesl");
    EXPECT_EQ(obj.at("lines").number, 4.0);
    EXPECT_EQ(obj.at("seed").number, 9.0);
    EXPECT_EQ(obj.at("shards").number, 2.0);
    EXPECT_TRUE(obj.at("ok").boolean);
    EXPECT_EQ(obj.at("writes").number, 4.0);
    EXPECT_EQ(obj.at("compressed_pct").number, 50.0);
}

// -------------------------------------- wlcrc_sim --json round trip

TEST(JsonReporter, WlcrcSimJsonOutputParses)
{
    int exit_code = -1;
    const std::string out = test::captureStdout(
        std::string(WLCRC_SIM_BIN) +
            " --workload lesl --scheme WLCRC-16 --scheme Baseline"
            " --lines 120 --seed 3 --shards 2 --jobs 2 --json",
        exit_code);
    ASSERT_EQ(exit_code, 0) << out;

    const auto doc = JsonParser(out).parse();
    ASSERT_EQ(doc.type, JsonValue::Type::Array);
    ASSERT_EQ(doc.array.size(), 2u);
    EXPECT_EQ(doc.array[0].at("scheme").string, "WLCRC-16");
    EXPECT_EQ(doc.array[1].at("scheme").string, "Baseline");
    for (const auto &obj : doc.array) {
        EXPECT_EQ(obj.at("source").string, "lesl");
        EXPECT_EQ(obj.at("lines").number, 120.0);
        EXPECT_EQ(obj.at("seed").number, 3.0);
        EXPECT_EQ(obj.at("shards").number, 2.0);
        EXPECT_TRUE(obj.at("ok").boolean);
        EXPECT_EQ(obj.at("writes").number, 120.0);
        EXPECT_GT(obj.at("energy_pj").number, 0.0);
        EXPECT_GE(obj.at("updated_cells").number, 0.0);
        EXPECT_FALSE(obj.has("error"));
    }
}

} // namespace
