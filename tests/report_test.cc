/**
 * @file
 * Reporter coverage: CSV quoting of metacharacters in grid
 * coordinates, JSON string escaping, and a full round-trip parse of
 * `wlcrc_sim --json` output through runner::parseJson — the same
 * parser the result cache and the worker protocol rely on, so the
 * round trip exercises the production decode path.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/experiment.hh"
#include "runner/json_mini.hh"
#include "runner/report.hh"
#include "subprocess.hh"

namespace
{

using namespace wlcrc;
using runner::CsvReporter;
using runner::ExperimentResult;
using runner::JsonReporter;

// ------------------------------------------------- tiny CSV parser

/** Split one RFC-4180-style CSV line into unescaped cells. */
std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"' && i + 1 < line.size() &&
                line[i + 1] == '"') {
                cell += '"';
                ++i;
            } else if (c == '"') {
                quoted = false;
            } else {
                cell += c;
            }
        } else if (c == '"' && cell.empty()) {
            quoted = true;
        } else if (c == ',') {
            cells.push_back(cell);
            cell.clear();
        } else {
            cell += c;
        }
    }
    cells.push_back(cell);
    return cells;
}

// ------------------------------------------------------- CSV tests

ExperimentResult
okResult()
{
    ExperimentResult r;
    r.ok = true;
    r.replay.writes = 4;
    r.replay.compressedWrites = 2;
    return r;
}

TEST(CsvReporter, QuotesCommasAndQuotesInNames)
{
    auto r = okResult();
    r.spec.scheme = "WLCRC,16";
    r.spec.workload = "say \"hi\",now";

    std::ostringstream os;
    CsvReporter().write(os, {r});
    const std::string text = os.str();

    // The metacharacters must be quoted on the wire...
    EXPECT_NE(text.find("\"WLCRC,16\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"say \"\"hi\"\",now\""),
              std::string::npos)
        << text;

    // ...and a conforming CSV parser must get the originals back.
    std::istringstream in(text);
    std::string header_line, row_line;
    ASSERT_TRUE(std::getline(in, header_line));
    ASSERT_TRUE(std::getline(in, row_line));
    const auto header = parseCsvLine(header_line);
    const auto row = parseCsvLine(row_line);
    ASSERT_EQ(row.size(), header.size());
    EXPECT_EQ(row[0], "WLCRC,16");
    EXPECT_EQ(row[1], "say \"hi\",now");
    EXPECT_EQ(row[5], "ok");
}

TEST(CsvReporter, OneRowPerResultEvenOnError)
{
    auto good = okResult();
    ExperimentResult bad;
    bad.spec.scheme = "nope";
    bad.error = "unknown scheme";

    std::ostringstream os;
    CsvReporter().write(os, {good, bad});
    std::istringstream in(os.str());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u); // header + 2 rows
    EXPECT_NE(lines[2].find("error"), std::string::npos);
}

// ------------------------------------------------------ JSON tests

TEST(JsonReporter, EscapesQuotesBackslashesAndControlChars)
{
    ExperimentResult r;
    r.spec.scheme = "sch\"eme\\x";
    r.error = "line1\nline2\ttabbed";

    std::ostringstream os;
    JsonReporter().write(os, {r});

    const auto doc = runner::parseJson(os.str());
    ASSERT_EQ(doc.type, runner::JsonValue::Type::Array);
    ASSERT_EQ(doc.array.size(), 1u);
    const auto &obj = doc.array[0];
    EXPECT_EQ(obj.at("scheme").asString(), "sch\"eme\\x");
    EXPECT_FALSE(obj.at("ok").asBool());
    EXPECT_EQ(obj.at("error").asString(), "line1\nline2\ttabbed");
}

TEST(JsonReporter, RoundTripsMetricsThroughAParser)
{
    auto r = okResult();
    r.spec.scheme = "WLCRC-16";
    r.spec.workload = "lesl";
    r.spec.lines = 4;
    r.spec.seed = 9;
    r.spec.shards = 2;

    std::ostringstream os;
    JsonReporter().write(os, {r});
    const auto doc = runner::parseJson(os.str());
    const auto &obj = doc.array.at(0);
    EXPECT_EQ(obj.at("report_version").asDouble(),
              static_cast<double>(runner::kReportVersion));
    EXPECT_EQ(obj.at("scheme").asString(), "WLCRC-16");
    EXPECT_EQ(obj.at("source").asString(), "lesl");
    EXPECT_EQ(obj.at("lines").asDouble(), 4.0);
    EXPECT_EQ(obj.at("seed").asDouble(), 9.0);
    EXPECT_EQ(obj.at("shards").asDouble(), 2.0);
    EXPECT_TRUE(obj.at("ok").asBool());
    EXPECT_EQ(obj.at("writes").asDouble(), 4.0);
    EXPECT_EQ(obj.at("compressed_writes").asDouble(), 2.0);
    EXPECT_EQ(obj.at("compressed_pct").asDouble(), 50.0);
}

// -------------------------------------- wlcrc_sim --json round trip

TEST(JsonReporter, WlcrcSimJsonOutputParses)
{
    int exit_code = -1;
    const std::string out = test::captureStdout(
        std::string(WLCRC_SIM_BIN) +
            " --workload lesl --scheme WLCRC-16 --scheme Baseline"
            " --lines 120 --seed 3 --shards 2 --jobs 2 --json",
        exit_code);
    ASSERT_EQ(exit_code, 0) << out;

    const auto doc = runner::parseJson(out);
    ASSERT_EQ(doc.type, runner::JsonValue::Type::Array);
    ASSERT_EQ(doc.array.size(), 2u);
    EXPECT_EQ(doc.array[0].at("scheme").asString(), "WLCRC-16");
    EXPECT_EQ(doc.array[1].at("scheme").asString(), "Baseline");
    for (const auto &obj : doc.array) {
        EXPECT_EQ(obj.at("report_version").asDouble(),
                  static_cast<double>(runner::kReportVersion));
        EXPECT_EQ(obj.at("source").asString(), "lesl");
        EXPECT_EQ(obj.at("lines").asDouble(), 120.0);
        EXPECT_EQ(obj.at("seed").asDouble(), 3.0);
        EXPECT_EQ(obj.at("shards").asDouble(), 2.0);
        EXPECT_TRUE(obj.at("ok").asBool());
        EXPECT_EQ(obj.at("writes").asDouble(), 120.0);
        EXPECT_GT(obj.at("energy_pj").asDouble(), 0.0);
        EXPECT_GE(obj.at("updated_cells").asDouble(), 0.0);
        EXPECT_FALSE(obj.has("error"));
    }
}

} // namespace
