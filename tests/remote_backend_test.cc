/**
 * @file
 * Distributed-backend equivalence and fault injection. The identity
 * half pins the contract that RemoteBackend only relocates work:
 * the same grid — synthesized, trace-sourced, leveled, lifetime —
 * produces byte-identical reports under serial, thread, process and
 * remote execution, at one worker and at four. The fault half
 * proves the sweep's bytes survive a hostile cluster: workers
 * SIGKILLed mid-point, workers hanging past the reissue deadline,
 * in-band ok=false results, and clients speaking garbage — each
 * mapped to a named error counter, never to a wrong or missing row.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/frame.hh"
#include "runner/backend.hh"
#include "runner/grid.hh"
#include "runner/remote.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "runner/spec_codec.hh"
#include "subprocess.hh"
#include "tracefile/format.hh"
#include "tracefile/source.hh"
#include "tracefile/writer.hh"
#include "wearlevel/config.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;
using runner::ExperimentGrid;
using runner::ExperimentResult;
using runner::ExperimentRunner;
using runner::ExperimentSpec;
using runner::RemoteBackend;
using runner::RemoteBackendOptions;
using runner::RunnerOptions;
using runner::ThreadBackend;
using runner::WorkFrame;

std::string
csvOf(const std::vector<ExperimentResult> &results)
{
    std::ostringstream os;
    runner::CsvReporter().write(os, results);
    return os.str();
}

ExperimentGrid
smallGrid()
{
    return ExperimentGrid()
        .schemes({"Baseline", "WLCRC-16"})
        .workloads({"lesl", "gcc"})
        .lines(60)
        .seed(3)
        .shards(3);
}

std::string
runWith(std::shared_ptr<const runner::ExecutionBackend> backend,
        const ExperimentGrid &grid, unsigned jobs = 2)
{
    RunnerOptions opts;
    opts.jobs = jobs;
    opts.backend = std::move(backend);
    return csvOf(ExperimentRunner(opts).run(grid));
}

/** Head that spawns its own local workers. */
std::shared_ptr<RemoteBackend>
spawningHead(unsigned workers, double reissueSec = 30.0)
{
    RemoteBackendOptions opts;
    opts.workerBinary = WLCRC_WORKER_BIN;
    opts.spawnWorkers = workers;
    opts.reissueSec = reissueSec;
    return std::make_shared<RemoteBackend>(std::move(opts));
}

/** Head with no workers of its own — tests attach their own. */
std::shared_ptr<RemoteBackend>
bareHead(double reissueSec = 30.0)
{
    RemoteBackendOptions opts;
    opts.reissueSec = reissueSec;
    return std::make_shared<RemoteBackend>(std::move(opts));
}

/** Launch an external wlcrc_worker against @p head. */
pid_t
spawnWorker(const RemoteBackend &head,
            const std::string &extraFlags = "")
{
    return test::spawnBackground(
        "exec " + std::string(WLCRC_WORKER_BIN) +
        " --connect 127.0.0.1:" + std::to_string(head.port()) +
        " --poll-ms 10 " + extraFlags + " 2>/dev/null");
}

/** Raw WRK1 client socket for hostile-peer tests. */
int
rawConnect(uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    return fd;
}

void
sendHello(int fd)
{
    uint8_t v[4];
    tracefile::putLe32(v, runner::workProtocolVersion);
    net::sendFrame(fd, runner::workMagic,
                   static_cast<uint8_t>(WorkFrame::Hello), 0, v,
                   sizeof v);
}

/** Pull until a Work frame arrives; {pointId, spec text}. */
std::pair<uint64_t, std::string>
pullWork(int fd)
{
    net::FrameHeader h;
    std::vector<uint8_t> payload;
    for (int tries = 0; tries < 500; ++tries) {
        net::sendFrame(fd, runner::workMagic,
                       static_cast<uint8_t>(WorkFrame::Pull), 0,
                       nullptr, 0);
        if (net::recvFrame(fd, runner::workMagic,
                           runner::maxWorkPayload, h, payload) !=
            net::RecvStatus::Ok)
            break;
        if (h.type == static_cast<uint8_t>(WorkFrame::Work) &&
            payload.size() >= 8)
            return {tracefile::getLe64(payload.data()),
                    std::string(payload.begin() + 8,
                                payload.end())};
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "no Work frame arrived on this connection";
    return {UINT64_MAX, ""};
}

/** Honestly replay @p specText and send its Result for @p id. */
void
sendResultFor(int fd, uint64_t id, const std::string &specText)
{
    const runner::ExperimentResult r =
        runner::runSpecSerial(runner::parseSpec(specText));
    std::ostringstream os;
    runner::writeResultObject(os, r);
    const std::string json = os.str();
    std::vector<uint8_t> p(8 + json.size());
    tracefile::putLe64(p.data(), id);
    std::memcpy(p.data() + 8, json.data(), json.size());
    net::sendFrame(fd, runner::workMagic,
                   static_cast<uint8_t>(WorkFrame::Result), 0,
                   p.data(), p.size());
}

/** Wait (bounded) until @p counter appears in the head's counts. */
bool
waitForCounter(const RemoteBackend &head, const std::string &name,
               int maxMs = 5000)
{
    for (int waited = 0; waited < maxMs; waited += 10) {
        if (head.errorCounts().count(name))
            return true;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
    }
    return false;
}

// ----------------------------------------------------------------
// Byte-identity matrix
// ----------------------------------------------------------------

TEST(RemoteBackend, MatchesEveryOtherBackendOnTheSameGrid)
{
    const auto grid = smallGrid();
    const std::string thread =
        runWith(std::make_shared<ThreadBackend>(), grid);
    EXPECT_EQ(runWith(std::make_shared<runner::SerialBackend>(),
                      grid),
              thread);
    EXPECT_EQ(runWith(std::make_shared<runner::ProcessBackend>(
                          WLCRC_SIM_BIN),
                      grid),
              thread);
    EXPECT_EQ(runWith(spawningHead(1), grid), thread)
        << "one remote worker";
    EXPECT_EQ(runWith(spawningHead(4), grid), thread)
        << "four remote workers";
}

TEST(RemoteBackend, ReplaysTraceFilesByteIdentically)
{
    namespace fs = std::filesystem;
    const fs::path path =
        fs::path(::testing::TempDir()) / "wlcrc_remote.trc";
    {
        tracefile::TraceFileWriter w(path.string(), 16);
        trace::WriteTransaction t{};
        for (uint64_t i = 0; i < 80; ++i) {
            t.lineAddr = (i * 7) % 23;
            t.newData.setWord(0, i * 0x9e3779b97f4a7c15ULL);
            w.write(t);
        }
        w.close();
    }
    const auto grid =
        ExperimentGrid()
            .schemes({"Baseline", "WLCRC-16"})
            .sources({tracefile::openTraceSource(path.string())})
            .seed(5)
            .shards(4);
    EXPECT_EQ(runWith(spawningHead(4), grid),
              runWith(std::make_shared<ThreadBackend>(), grid));
}

TEST(RemoteBackend, LeveledLifetimeSweepIsByteIdentical)
{
    const auto grid =
        ExperimentGrid()
            .schemes({"Baseline", "WLCRC-16"})
            .workloads({"gcc"})
            .lines(150)
            .seed(3)
            .levelers({wearlevel::parseLeveler("none"),
                       wearlevel::parseLeveler("start-gap:p8:r16")})
            .endurances({wearlevel::parseEndurance("80:0.2")})
            .lifetime();
    const std::string thread =
        runWith(std::make_shared<ThreadBackend>(), grid);
    EXPECT_EQ(runWith(spawningHead(1), grid), thread);
    EXPECT_EQ(runWith(spawningHead(4), grid), thread);
}

TEST(RemoteBackend, JsonReportsAreByteIdentical)
{
    const auto grid = smallGrid();
    RunnerOptions opts;
    opts.jobs = 2;
    auto jsonOf = [&](std::shared_ptr<const runner::ExecutionBackend>
                          backend) {
        opts.backend = std::move(backend);
        std::ostringstream os;
        runner::JsonReporter().write(
            os, ExperimentRunner(opts).run(grid));
        return os.str();
    };
    EXPECT_EQ(jsonOf(spawningHead(2)),
              jsonOf(std::make_shared<ThreadBackend>()));
}

TEST(RemoteBackend, FallsBackInlineForClosureSpecs)
{
    std::vector<runner::SchemeDef> defs = {
        {"factory-baseline", [](const pcm::EnergyModel &e) {
             return core::makeCodec("Baseline", e);
         }}};
    const auto grid = ExperimentGrid()
                          .schemeDefs(defs)
                          .workloads({"lesl"})
                          .lines(50)
                          .seed(2)
                          .shards(2);
    EXPECT_EQ(runWith(spawningHead(2), grid),
              runWith(std::make_shared<ThreadBackend>(), grid));
}

TEST(RemoteBackend, MakeBackendWiresTheRemoteName)
{
    const auto backend =
        runner::makeBackend("remote", WLCRC_WORKER_BIN);
    EXPECT_EQ(backend->name(), std::string("remote"));
    EXPECT_EQ(runWith(backend, smallGrid()),
              runWith(std::make_shared<ThreadBackend>(),
                      smallGrid()));
    EXPECT_THROW(runner::makeBackend("remote"),
                 std::invalid_argument);
}

TEST(RemoteBackend, HeadCliRunIsByteIdenticalToThreadCli)
{
    // End to end through wlcrc_sim: a remote-head sweep's stdout
    // must equal the stock thread backend's, byte for byte.
    const std::string base =
        std::string(WLCRC_SIM_BIN) +
        " --scheme Baseline --scheme WLCRC-16 --workload lesl"
        " --lines 60 --seed 3 --shards 3";
    int rcThread = 0, rcRemote = 0;
    const std::string threadOut = test::captureStdout(
        base + " 2>/dev/null", rcThread);
    const std::string remoteOut = test::captureStdout(
        "WLCRC_WORKER_BIN=" + std::string(WLCRC_WORKER_BIN) + " " +
            base + " --backend remote --workers 2 2>/dev/null",
        rcRemote);
    EXPECT_EQ(rcThread, 0);
    EXPECT_EQ(rcRemote, 0);
    EXPECT_EQ(remoteOut, threadOut);
    EXPECT_FALSE(remoteOut.empty());
}

// ----------------------------------------------------------------
// Fault injection
// ----------------------------------------------------------------

TEST(RemoteFaults, WorkerKilledMidPointIsReissuedToAnother)
{
    const auto grid = smallGrid();
    const std::string expect =
        runWith(std::make_shared<ThreadBackend>(), grid);

    auto head = bareHead();
    // The saboteur SIGKILLs itself on its first Work frame. It is
    // the only worker until the head has actually counted its death
    // — so it is guaranteed to receive (and die holding) a point —
    // and only then does the rescue thread attach the healthy
    // worker that must absorb the requeued work.
    const pid_t saboteur =
        spawnWorker(*head, "--kill-after 1");
    pid_t healthy = -1;
    std::thread rescue([&] {
        waitForCounter(*head, "worker-died", /*maxMs=*/20000);
        healthy = spawnWorker(*head);
    });

    EXPECT_EQ(runWith(head, grid), expect);
    rescue.join();
    const auto counts = head->errorCounts();
    ASSERT_TRUE(counts.count("worker-died"));
    EXPECT_GE(counts.at("worker-died"), 1u);

    head->stop();
    test::reap(saboteur);
    test::reap(healthy);
}

TEST(RemoteFaults, HungWorkerPastDeadlineIsReissued)
{
    const auto grid = smallGrid();
    const std::string expect =
        runWith(std::make_shared<ThreadBackend>(), grid);

    auto head = bareHead(/*reissueSec=*/0.3);
    // The saboteur hangs on its first Work frame. It stays the
    // only worker until the head has actually reissued its held
    // point — a fast healthy worker could otherwise drain the
    // whole queue before the saboteur's first successful Pull —
    // and only then does the rescue thread attach the healthy
    // worker that must absorb the requeued work.
    const pid_t hung = spawnWorker(*head, "--hang-after 1");
    pid_t healthy = -1;
    std::thread rescue([&] {
        waitForCounter(*head, "reissued", /*maxMs=*/20000);
        healthy = spawnWorker(*head);
    });

    EXPECT_EQ(runWith(head, grid), expect);
    rescue.join();
    const auto counts = head->errorCounts();
    ASSERT_TRUE(counts.count("reissued"));
    EXPECT_GE(counts.at("reissued"), 1u);

    head->stop();
    test::killAndReap(hung); // still asleep on its held point
    test::reap(healthy);
}

TEST(RemoteFaults, WorkerErrorResultsAreAuthoritativeNotRetried)
{
    ExperimentSpec good;
    good.scheme = "Baseline";
    good.workload = "lesl";
    good.lines = 40;
    ExperimentSpec bad = good;
    bad.scheme = "no-such-scheme";

    auto head = spawningHead(2);
    RunnerOptions opts;
    opts.jobs = 2;
    opts.backend = head;
    const auto results = ExperimentRunner(opts).run({good, bad});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("no-such-scheme"),
              std::string::npos)
        << results[1].error;
    const auto counts = head->errorCounts();
    ASSERT_TRUE(counts.count("worker-reported-error"));
    EXPECT_EQ(counts.at("worker-reported-error"), 1u);
    EXPECT_FALSE(counts.count("worker-died"));
    EXPECT_FALSE(counts.count("reissued"));
}

TEST(RemoteFaults, GarbageBytesAreCountedAndConnectionDropped)
{
    auto head = bareHead();
    const int fd = rawConnect(head->port());
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(net::writeAll(fd, junk, sizeof junk - 1));
    EXPECT_TRUE(waitForCounter(*head, "bad-magic"));
    // The head answers with a named Error frame before closing.
    char buf[256];
    std::string reply;
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n <= 0)
            break;
        reply.append(buf, static_cast<std::size_t>(n));
    }
    EXPECT_NE(reply.find("bad-magic"), std::string::npos);
    ::close(fd);

    // ...and the head still serves a full sweep afterwards.
    const pid_t worker = spawnWorker(*head);
    EXPECT_EQ(runWith(head, smallGrid()),
              runWith(std::make_shared<ThreadBackend>(),
                      smallGrid()));
    head->stop();
    test::reap(worker);
}

TEST(RemoteFaults, PullBeforeHelloIsRejected)
{
    auto head = bareHead();
    const int fd = rawConnect(head->port());
    net::sendFrame(fd, runner::workMagic,
                   static_cast<uint8_t>(WorkFrame::Pull), 0,
                   nullptr, 0);
    EXPECT_TRUE(waitForCounter(*head, "bad-hello"));
    ::close(fd);
}

TEST(RemoteFaults, UnknownFrameTypeAfterHelloIsRejected)
{
    auto head = bareHead();
    const int fd = rawConnect(head->port());
    sendHello(fd);
    net::sendFrame(fd, runner::workMagic, 250, 0, nullptr, 0);
    EXPECT_TRUE(waitForCounter(*head, "bad-frame-type"));
    ::close(fd);
}

TEST(RemoteFaults, OversizedFrameIsRejected)
{
    auto head = bareHead();
    const int fd = rawConnect(head->port());
    sendHello(fd);
    // A header promising 512 MiB must be refused outright, not
    // buffered: send the header alone and watch the counter.
    uint8_t header[net::frameHeaderBytes];
    net::FrameHeader h;
    h.type = static_cast<uint8_t>(WorkFrame::Result);
    h.payloadBytes = 512u << 20;
    net::encodeFrameHeader(header, runner::workMagic, h);
    ASSERT_TRUE(net::writeAll(fd, header, sizeof header));
    EXPECT_TRUE(waitForCounter(*head, "oversized-frame"));
    ::close(fd);
}

TEST(RemoteFaults, TruncatedFrameIsCounted)
{
    auto head = bareHead();
    const int fd = rawConnect(head->port());
    sendHello(fd);
    uint8_t header[net::frameHeaderBytes];
    net::FrameHeader h;
    h.type = static_cast<uint8_t>(WorkFrame::Result);
    h.payloadBytes = 64; // promised, never sent
    net::encodeFrameHeader(header, runner::workMagic, h);
    ASSERT_TRUE(net::writeAll(fd, header, sizeof header));
    ::shutdown(fd, SHUT_WR);
    EXPECT_TRUE(waitForCounter(*head, "truncated-frame"));
    ::close(fd);
}

TEST(RemoteFaults, MalformedResultRequeuesThePoint)
{
    auto head = bareHead();

    RunnerOptions opts;
    opts.jobs = 1;
    opts.backend = head;
    const auto grid = ExperimentGrid()
                          .schemes({"Baseline"})
                          .workloads({"lesl"})
                          .lines(40)
                          .seed(1);
    std::vector<ExperimentResult> results;
    std::thread sweep([&] {
        results = ExperimentRunner(opts).run(grid);
    });

    // A hostile client pulls the point and answers with garbage
    // JSON; the head must requeue it for the honest worker.
    const int fd = rawConnect(head->port());
    sendHello(fd);
    net::sendFrame(fd, runner::workMagic,
                   static_cast<uint8_t>(WorkFrame::Pull), 0,
                   nullptr, 0);
    net::FrameHeader h;
    std::vector<uint8_t> payload;
    for (;;) { // poll until the sweep's point is issued to us
        ASSERT_EQ(net::recvFrame(fd, runner::workMagic,
                                 runner::maxWorkPayload, h,
                                 payload),
                  net::RecvStatus::Ok);
        if (h.type == static_cast<uint8_t>(WorkFrame::Work))
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
        net::sendFrame(fd, runner::workMagic,
                       static_cast<uint8_t>(WorkFrame::Pull), 0,
                       nullptr, 0);
    }
    std::vector<uint8_t> reply(payload.begin(),
                               payload.begin() + 8);
    const char junk[] = "this is not json";
    reply.insert(reply.end(), junk, junk + sizeof junk - 1);
    net::sendFrame(fd, runner::workMagic,
                   static_cast<uint8_t>(WorkFrame::Result), 0,
                   reply.data(), reply.size());
    EXPECT_TRUE(waitForCounter(*head, "malformed-result"));
    ::close(fd);

    const pid_t worker = spawnWorker(*head);
    sweep.join();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok);
    head->stop();
    test::reap(worker);
}

TEST(RemoteFaults, LateResultOfReissuedPointRetiresItsQueueEntry)
{
    // Regression: reissuing a point queues a fresh Pending entry;
    // when the original slow-but-alive worker's result then
    // arrives and wins, that entry goes stale. Handing it out
    // anyway flipped the Done point back to Issued — completion
    // was double-counted and a finished row could be reported as
    // "remote backend stopped".
    auto head = bareHead(/*reissueSec=*/0.3);

    ExperimentSpec s0;
    s0.scheme = "Baseline";
    s0.workload = "lesl";
    s0.lines = 40;
    ExperimentSpec s1 = s0;
    s1.workload = "gcc";
    const std::vector<ExperimentSpec> specs{s0, s1};

    std::atomic<unsigned> completed{0};
    std::vector<ExperimentResult> results;
    std::thread sweep([&] {
        results = head->run(specs, 1, [&] { ++completed; });
    });

    // The slow worker pulls both points, then stalls past the
    // reissue deadline while keeping its connection open.
    const int slow = rawConnect(head->port());
    sendHello(slow);
    const auto w0 = pullWork(slow);
    const auto w1 = pullWork(slow);
    ASSERT_NE(w0.first, w1.first);
    for (int waited = 0;; waited += 10) {
        const auto counts = head->errorCounts();
        const auto it = counts.find("reissued");
        if (it != counts.end() && it->second >= 2)
            break;
        ASSERT_LT(waited, 10000) << "points never reissued";
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
    }

    // Its late (but first) result must win — and must retire the
    // point's requeued queue entry along the way.
    sendResultFor(slow, w0.first, w0.second);
    for (int waited = 0; completed.load() < 1; waited += 10) {
        ASSERT_LT(waited, 10000) << "late result not accepted";
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
    }

    // A fresh worker pulling now must be handed the other point,
    // never the completed one out of the stale entry.
    const int fresh = rawConnect(head->port());
    sendHello(fresh);
    const auto wb = pullWork(fresh);
    EXPECT_EQ(wb.first, w1.first)
        << "head reissued a completed point from a stale entry";
    sendResultFor(fresh, wb.first, wb.second);

    sweep.join();
    ::close(slow);
    ::close(fresh);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_TRUE(results[1].ok) << results[1].error;
    EXPECT_EQ(completed.load(), 2u);
    const auto counts = head->errorCounts();
    EXPECT_FALSE(counts.count("duplicate-result"));
    head->stop();
}

TEST(RemoteFaults, StopMidRunFailsUnfinishedPointsInBand)
{
    auto head = bareHead(); // no workers will ever answer
    RunnerOptions opts;
    opts.jobs = 1;
    opts.backend = head;
    std::vector<ExperimentResult> results;
    std::thread sweep([&] {
        results = ExperimentRunner(opts).run(smallGrid());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    head->stop();
    sweep.join();
    ASSERT_EQ(results.size(), smallGrid().expand().size());
    for (const auto &r : results) {
        EXPECT_FALSE(r.ok);
        EXPECT_NE(r.error.find("stopped"), std::string::npos);
    }
}

TEST(RemoteFaults, CliHeadSurvivesAKilledWorker)
{
    // End to end: the head spawns three workers via a wrapper that
    // turns exactly one of them (mkdir is the atomic coin toss)
    // into a saboteur that dies on its first point — stdout must
    // still be byte-identical to the stock run.
    namespace fs = std::filesystem;
    const fs::path dir(::testing::TempDir());
    const fs::path wrapper = dir / "wlcrc_chaos_worker.sh";
    const fs::path lock = dir / "wlcrc_chaos_worker.lock";
    fs::remove_all(lock);
    {
        std::ofstream out(wrapper);
        out << "#!/bin/sh\n"
            << "if mkdir '" << lock.string() << "' 2>/dev/null; "
            << "then exec '" << WLCRC_WORKER_BIN
            << "' \"$@\" --kill-after 1; fi\n"
            << "exec '" << WLCRC_WORKER_BIN << "' \"$@\"\n";
    }
    fs::permissions(wrapper, fs::perms::owner_all,
                    fs::perm_options::add);

    const std::string base =
        std::string(WLCRC_SIM_BIN) +
        " --scheme Baseline --scheme WLCRC-16 --workload lesl"
        " --lines 60 --seed 3 --shards 3";
    int rc = 0;
    const std::string expect =
        test::captureStdout(base + " 2>/dev/null", rc);
    ASSERT_EQ(rc, 0);
    const std::string out = test::captureStdout(
        "WLCRC_WORKER_BIN=" + wrapper.string() + " " + base +
            " --backend remote --workers 3 2>/dev/null",
        rc);
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(out, expect);
    fs::remove_all(lock);
}

} // namespace
