/**
 * @file
 * Tests for the analytic 45 nm hardware model (Section VI-B
 * substitute): envelope checks against the paper's synthesized
 * numbers and structural monotonicity.
 */

#include <gtest/gtest.h>

#include "hw/synth_model.hh"

namespace
{

using wlcrc::hw::SynthModel;
using wlcrc::hw::SynthResult;

TEST(SynthModel, Wlcrc16WithinPaperEnvelope)
{
    const SynthModel m;
    const SynthResult r = m.wlcrc(16);
    // Paper: 0.0498 mm^2, 2.63 ns write, 0.89 ns read, 0.94 pJ
    // write, 0.27 pJ read. The analytic model must land in the same
    // regime (within ~2x), not on the exact synthesis output.
    EXPECT_GT(r.areaMm2, 0.0498 / 2);
    EXPECT_LT(r.areaMm2, 0.0498 * 2);
    EXPECT_GT(r.writeDelayNs, 2.63 / 2);
    EXPECT_LT(r.writeDelayNs, 2.63 * 2);
    EXPECT_GT(r.readDelayNs, 0.89 / 2);
    EXPECT_LT(r.readDelayNs, 0.89 * 2);
    EXPECT_GT(r.writeEnergyPj, 0.94 / 2);
    EXPECT_LT(r.writeEnergyPj, 0.94 * 2);
    EXPECT_GT(r.readEnergyPj, 0.27 / 2);
    EXPECT_LT(r.readEnergyPj, 0.27 * 2);
}

TEST(SynthModel, WlcPortionIsTiny)
{
    const SynthModel m;
    const SynthResult wlc = m.wlcOnly();
    const SynthResult full = m.wlcrc(16);
    // Paper: 0.0002 mm^2, 0.13 ns, 0.0017 pJ — negligible vs the
    // encoder.
    EXPECT_LT(wlc.areaMm2, 0.001);
    EXPECT_LT(wlc.areaMm2, full.areaMm2 / 50);
    EXPECT_LT(wlc.writeDelayNs, 0.3);
    EXPECT_LT(wlc.writeEnergyPj, 0.01);
}

TEST(SynthModel, ReadPathFasterThanWritePath)
{
    const SynthModel m;
    for (unsigned g : {8u, 16u, 32u, 64u}) {
        const SynthResult r = m.wlcrc(g);
        EXPECT_LT(r.readDelayNs, r.writeDelayNs) << g;
        EXPECT_LT(r.readEnergyPj, r.writeEnergyPj) << g;
    }
}

TEST(SynthModel, FinerGranularityCostsMoreLogic)
{
    const SynthModel m;
    EXPECT_GT(m.wlcrc(16).gateCount, m.wlcrc(64).gateCount);
    EXPECT_GT(m.wlcrc(8).gateCount, m.wlcrc(32).gateCount);
}

TEST(SynthModel, MoreCandidatesCostMore)
{
    const SynthModel m;
    EXPECT_GT(m.nCosets(6, 512).gateCount,
              m.nCosets(4, 512).gateCount);
    EXPECT_GT(m.nCosets(4, 512).gateCount,
              m.nCosets(3, 512).gateCount);
}

TEST(SynthModel, AreaIsNegligibleVsMainMemory)
{
    // Sanity: the encoder must be a vanishing fraction of a PCM die
    // (tens to hundreds of mm^2).
    const SynthModel m;
    EXPECT_LT(m.wlcrc(16).areaMm2, 0.2);
}

} // namespace
