/**
 * @file
 * Unit tests for the common substrate: Line512, Rng, CsvTable,
 * BitBuffer and env helpers.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/csv.hh"
#include "common/env.hh"
#include "common/line512.hh"
#include "common/rng.hh"
#include "compress/bitbuffer.hh"

namespace
{

using wlcrc::CsvTable;
using wlcrc::Line512;
using wlcrc::lineBits;
using wlcrc::lineSymbols;
using wlcrc::lineWords;
using wlcrc::Rng;
using wlcrc::compress::BitBuffer;
using wlcrc::compress::BitReader;

TEST(Line512, DefaultIsZero)
{
    Line512 line;
    for (unsigned w = 0; w < lineWords; ++w)
        EXPECT_EQ(line.word(w), 0u);
    for (unsigned b = 0; b < lineBits; ++b)
        EXPECT_EQ(line.bit(b), 0u);
}

TEST(Line512, BitSetGet)
{
    Line512 line;
    line.setBit(0, 1);
    line.setBit(63, 1);
    line.setBit(64, 1);
    line.setBit(511, 1);
    EXPECT_EQ(line.bit(0), 1u);
    EXPECT_EQ(line.bit(63), 1u);
    EXPECT_EQ(line.bit(64), 1u);
    EXPECT_EQ(line.bit(511), 1u);
    EXPECT_EQ(line.bit(1), 0u);
    line.setBit(63, 0);
    EXPECT_EQ(line.bit(63), 0u);
    EXPECT_EQ(line.word(0), 1u);
}

TEST(Line512, SymbolMapsToBitPairs)
{
    Line512 line;
    line.setSymbol(0, 3);
    EXPECT_EQ(line.bit(0), 1u);
    EXPECT_EQ(line.bit(1), 1u);
    line.setSymbol(1, 2); // bits {3,2} = {1,0}
    EXPECT_EQ(line.bit(2), 0u);
    EXPECT_EQ(line.bit(3), 1u);
    EXPECT_EQ(line.symbol(1), 2u);
    // Symbol 32 lives in word 1.
    line.setSymbol(32, 1);
    EXPECT_EQ(line.word(1) & 3u, 1u);
}

TEST(Line512, BitsCrossWordBoundary)
{
    Line512 line;
    line.setBits(60, 8, 0xab);
    EXPECT_EQ(line.bits(60, 8), 0xabu);
    EXPECT_EQ(line.bits(60, 4), 0xbu);
    EXPECT_EQ(line.bits(64, 4), 0xau);
    // Full 64-bit read/write at an unaligned offset.
    line.setBits(100, 64, 0xdeadbeefcafef00dull);
    EXPECT_EQ(line.bits(100, 64), 0xdeadbeefcafef00dull);
    // Neighbouring bits are untouched.
    EXPECT_EQ(line.bits(60, 8), 0xabu);
}

TEST(Line512, SetBitsMasksValue)
{
    Line512 line;
    line.setBits(8, 4, 0xff); // only low 4 bits stored
    EXPECT_EQ(line.bits(8, 4), 0xfu);
    EXPECT_EQ(line.bits(12, 4), 0u);
}

TEST(Line512, XorAndNot)
{
    Line512 a, b;
    a.setWord(0, 0xff00ff00ff00ff00ull);
    b.setWord(0, 0x0ff00ff00ff00ff0ull);
    const Line512 x = a ^ b;
    EXPECT_EQ(x.word(0), 0xf0f0f0f0f0f0f0f0ull);
    const Line512 n = ~Line512();
    for (unsigned w = 0; w < lineWords; ++w)
        EXPECT_EQ(n.word(w), ~uint64_t{0});
    EXPECT_EQ((a ^ a), Line512());
}

TEST(Line512, HexRoundTripVisual)
{
    Line512 line;
    line.setWord(7, 0x0123456789abcdefull);
    const std::string hex = line.toHex();
    EXPECT_EQ(hex.substr(0, 16), "0123456789abcdef");
    EXPECT_EQ(hex.size(), 16 * 8 + 7); // 8 words + separators
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBelow(17), 17u);
        const uint64_t v = rng.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(3);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Csv, WritesHeaderAndRows)
{
    CsvTable t({"a", "b"});
    t.addRow(1, "x");
    t.addRow(2.5, "y,z");
    std::ostringstream os;
    t.write(os);
    EXPECT_EQ(os.str(), "a,b\n1,x\n2.5,\"y,z\"\n");
}

TEST(Csv, EscapesQuotes)
{
    CsvTable t({"v"});
    t.addRow("he said \"hi\"");
    std::ostringstream os;
    t.write(os);
    EXPECT_EQ(os.str(), "v\n\"he said \"\"hi\"\"\"\n");
}

TEST(BitBuffer, AppendReadRoundTrip)
{
    BitBuffer buf;
    buf.append(0x5, 3);
    buf.append(0xdeadbeef, 32);
    buf.append(1, 1);
    EXPECT_EQ(buf.size(), 36u);
    EXPECT_EQ(buf.read(0, 3), 0x5u);
    EXPECT_EQ(buf.read(3, 32), 0xdeadbeefu);
    EXPECT_EQ(buf.read(35, 1), 1u);
}

TEST(BitBuffer, CrossesWordBoundary)
{
    BitBuffer buf;
    buf.append(~uint64_t{0}, 60);
    buf.append(0xabc, 12);
    EXPECT_EQ(buf.read(60, 12), 0xabcu);
}

TEST(BitBuffer, LineRoundTrip)
{
    BitBuffer buf;
    for (unsigned i = 0; i < 7; ++i)
        buf.append(0x123456789abcdefull * (i + 1), 61);
    const wlcrc::Line512 line = buf.toLine();
    const BitBuffer back = BitBuffer::fromLine(line, buf.size());
    EXPECT_EQ(buf, back);
}

TEST(BitBuffer, ReaderConsumesSequentially)
{
    BitBuffer buf;
    buf.append(3, 2);
    buf.append(9, 5);
    BitReader in(buf);
    EXPECT_EQ(in.take(2), 3u);
    EXPECT_EQ(in.take(5), 9u);
    EXPECT_TRUE(in.exhausted());
}

TEST(Env, ParsesAndFallsBack)
{
    ::setenv("WLCRC_TEST_ENV_U64", "123", 1);
    EXPECT_EQ(wlcrc::envU64("WLCRC_TEST_ENV_U64", 7), 123u);
    EXPECT_EQ(wlcrc::envU64("WLCRC_TEST_ENV_MISSING", 7), 7u);
    ::setenv("WLCRC_TEST_ENV_HEX", "0x20", 1);
    EXPECT_EQ(wlcrc::envU64("WLCRC_TEST_ENV_HEX", 7), 32u);
    ::setenv("WLCRC_TEST_ENV_D", "0.25", 1);
    EXPECT_DOUBLE_EQ(wlcrc::envDouble("WLCRC_TEST_ENV_D", 1.0), 0.25);
    ::setenv("WLCRC_TEST_ENV_EXP", "1.5e2", 1);
    EXPECT_DOUBLE_EQ(wlcrc::envDouble("WLCRC_TEST_ENV_EXP", 1.0),
                     150.0);
    EXPECT_EQ(wlcrc::envString("WLCRC_TEST_ENV_MISSING", "dflt"),
              "dflt");
    // Empty is treated as unset, not as malformed.
    ::setenv("WLCRC_TEST_ENV_EMPTY", "", 1);
    EXPECT_EQ(wlcrc::envU64("WLCRC_TEST_ENV_EMPTY", 7), 7u);
    EXPECT_DOUBLE_EQ(wlcrc::envDouble("WLCRC_TEST_ENV_EMPTY", 1.5),
                     1.5);
}

TEST(Env, RejectsMalformedValuesLoudly)
{
    // A typo'd knob (e.g. WLCRC_BENCH_LINES=300O) must not silently
    // run with the default.
    for (const char *bad :
         {"12x", "300O", "1 2", "-5", "--3", " -7", "x",
          "99999999999999999999999"}) {
        ::setenv("WLCRC_TEST_ENV_BAD", bad, 1);
        EXPECT_THROW(wlcrc::envU64("WLCRC_TEST_ENV_BAD", 7),
                     std::invalid_argument)
            << "value: " << bad;
    }
    for (const char *bad : {"0.5x", "1.2.3", "zero", "1e999999"}) {
        ::setenv("WLCRC_TEST_ENV_BAD", bad, 1);
        EXPECT_THROW(wlcrc::envDouble("WLCRC_TEST_ENV_BAD", 1.0),
                     std::invalid_argument)
            << "value: " << bad;
    }
    // envDouble accepts signs — only envU64 rejects them.
    ::setenv("WLCRC_TEST_ENV_NEG", "-0.5", 1);
    EXPECT_DOUBLE_EQ(wlcrc::envDouble("WLCRC_TEST_ENV_NEG", 1.0),
                     -0.5);
    // Subnormals underflow (strtod sets ERANGE) but are still valid
    // parses, not malformed input.
    ::setenv("WLCRC_TEST_ENV_SUBNORMAL", "1e-310", 1);
    EXPECT_NEAR(
        wlcrc::envDouble("WLCRC_TEST_ENV_SUBNORMAL", 1.0) * 1e300,
        1e-10, 1e-12);
}

} // namespace
