/**
 * @file
 * Tests for the extension modules: per-cell wear tracking, the
 * disturbance-aware WLCRC mode (the paper's future work), and
 * per-profile statistical properties of the workload suite.
 */

#include <gtest/gtest.h>

#include "compress/wlc.hh"
#include "pcm/wear.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"
#include "wlcrc/wlcrc_codec.hh"

namespace
{

using namespace wlcrc;
using pcm::State;
using pcm::WearTracker;

// --------------------------------------------------------------- wear

TEST(WearTracker, CountsPrograms)
{
    WearTracker wear(4);
    wear.recordProgram(10, 0);
    wear.recordProgram(10, 0);
    wear.recordProgram(10, 3);
    wear.recordProgram(11, 1);
    EXPECT_EQ(wear.cellWrites(10, 0), 2u);
    EXPECT_EQ(wear.cellWrites(10, 3), 1u);
    EXPECT_EQ(wear.cellWrites(10, 1), 0u);
    EXPECT_EQ(wear.cellWrites(99, 0), 0u);
}

TEST(WearTracker, SummaryAggregates)
{
    WearTracker wear(2);
    for (int i = 0; i < 5; ++i)
        wear.recordProgram(0, 0);
    wear.recordProgram(0, 1);
    const auto s = wear.summary();
    EXPECT_EQ(s.maxCellWrites, 5u);
    EXPECT_EQ(s.touchedCells, 2u);
    EXPECT_EQ(s.totalWrites, 6u);
    EXPECT_DOUBLE_EQ(s.avgCellWrites, 3.0);
    EXPECT_DOUBLE_EQ(s.imbalance(), 5.0 / 3.0);
}

TEST(WearTracker, RecordLineUsesMask)
{
    WearTracker wear(3);
    wear.recordLine(7, {true, false, true});
    EXPECT_EQ(wear.cellWrites(7, 0), 1u);
    EXPECT_EQ(wear.cellWrites(7, 1), 0u);
    EXPECT_EQ(wear.cellWrites(7, 2), 1u);
}

TEST(WearTracker, LifetimeProjection)
{
    WearTracker wear(1);
    for (int i = 0; i < 10; ++i)
        wear.recordProgram(0, 0);
    // 10 cell programs over 100 line writes -> rate 0.1/write;
    // endurance 1000 -> (1000-10)/0.1 = 9900 writes left.
    EXPECT_EQ(wear.projectedLifetime(1000, 100), 9900u);
    // Already exhausted.
    EXPECT_EQ(wear.projectedLifetime(10, 100), 0u);
    // No data.
    WearTracker empty(1);
    EXPECT_EQ(empty.projectedLifetime(1000, 100), 0u);
}

TEST(WearTracker, DeviceIntegration)
{
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    pcm::Device dev(4, unit);
    WearTracker wear(4);
    dev.attachWearTracker(&wear);

    pcm::TargetLine t(4);
    t.assign({State::S2, State::S1, State::S1, State::S1});
    dev.write(0, t); // cell 0 changes (fresh lines start at S1)
    dev.write(0, t); // nothing changes
    t[1] = State::S3;
    dev.write(0, t); // cell 1 changes
    EXPECT_EQ(wear.cellWrites(0, 0), 1u);
    EXPECT_EQ(wear.cellWrites(0, 1), 1u);
    EXPECT_EQ(wear.summary().totalWrites, 2u);
}

TEST(WearTracker, EncodingEvensOutWear)
{
    // WLCRC touches fewer cells per write than the baseline, so its
    // total wear must be lower over the same transaction stream.
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const auto &p = trace::WorkloadProfile::byName("gcc");

    uint64_t wear_total[2];
    int i = 0;
    for (const char *scheme : {"Baseline", "WLCRC-16"}) {
        const auto codec = core::makeCodec(scheme, e);
        trace::Replayer rep(*codec, unit);
        WearTracker wear(codec->cellCount());
        rep.device().attachWearTracker(&wear);
        trace::TraceSynthesizer synth(p, 3);
        rep.run(synth, 500);
        wear_total[i++] = wear.summary().totalWrites;
    }
    EXPECT_LT(wear_total[1], wear_total[0]);
}

// ------------------------------------------------ disturbance-aware

TEST(DisturbanceAware, FactoryBuildsIt)
{
    const pcm::EnergyModel e;
    const auto codec = core::makeCodec("WLCRC-16-da", e);
    EXPECT_EQ(codec->name(), "WLCRC-16-da");
}

TEST(DisturbanceAware, RoundTripStillExact)
{
    const pcm::EnergyModel e;
    const auto da = core::WlcrcCodec::disturbanceAware(
        e, pcm::DisturbanceModel(), 16);
    Rng rng(5);
    std::vector<State> stored(da.cellCount(), State::S1);
    for (int i = 0; i < 200; ++i) {
        const auto type = static_cast<trace::LineType>(
            rng.nextBelow(trace::numLineTypes));
        const Line512 data =
            trace::ValueModel::generateLine(type, rng);
        stored = da.encode(data, stored).toVector();
        ASSERT_EQ(da.decode(stored), data);
    }
}

TEST(DisturbanceAware, ReducesDisturbanceAtSmallEnergyCost)
{
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    double energy[2], disturb[2];
    int i = 0;
    for (const char *scheme : {"WLCRC-16", "WLCRC-16-da"}) {
        const auto codec = core::makeCodec(scheme, e);
        double es = 0, ds = 0;
        for (const auto &p : trace::WorkloadProfile::all()) {
            trace::Replayer rep(*codec, unit);
            trace::TraceSynthesizer synth(p, 11);
            rep.run(synth, 300);
            es += rep.result().energyPj.mean();
            ds += rep.result().disturbErrors.mean();
        }
        energy[i] = es;
        disturb[i] = ds;
        ++i;
    }
    EXPECT_LT(disturb[1], disturb[0]);
    EXPECT_LT(energy[1], energy[0] * 1.10);
}

TEST(DisturbanceAware, ZeroLambdaMatchesPlain)
{
    const pcm::EnergyModel e;
    const auto da = core::WlcrcCodec::disturbanceAware(
        e, pcm::DisturbanceModel(), 16, 0.0);
    const core::WlcrcCodec plain(e, 16);
    Rng rng(6);
    std::vector<State> sa(da.cellCount(), State::S1);
    std::vector<State> sp(plain.cellCount(), State::S1);
    for (int i = 0; i < 100; ++i) {
        const Line512 data = trace::ValueModel::generateLine(
            static_cast<trace::LineType>(
                rng.nextBelow(trace::numLineTypes)),
            rng);
        sa = da.encode(data, sa).toVector();
        sp = plain.encode(data, sp).toVector();
        ASSERT_EQ(sa, sp);
    }
}

// ------------------------------------------- per-profile statistics

class ProfileStats : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ProfileStats, WlcCoverageMatchesFigure4Band)
{
    const auto &p = trace::WorkloadProfile::byName(GetParam());
    trace::TraceSynthesizer synth(p, 99);
    unsigned ok6 = 0, ok9 = 0;
    const int n = 800;
    for (int i = 0; i < n; ++i) {
        const Line512 d = synth.next().newData;
        ok6 += compress::Wlc::lineCompressible(d, 6);
        ok9 += compress::Wlc::lineCompressible(d, 9);
    }
    // Figure 4: every benchmark compresses most lines at k <= 6,
    // and k = 9 coverage is strictly lower.
    EXPECT_GT(ok6, n * 0.75) << GetParam();
    EXPECT_LT(ok9, ok6) << GetParam();
}

TEST_P(ProfileStats, IntensityOrdersEnergy)
{
    // A profile's baseline write energy must scale with its word
    // change probability relative to libq (the least intensive).
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const auto codec = core::makeCodec("Baseline", e);
    auto energy_of = [&](const std::string &name) {
        trace::Replayer rep(*codec, unit);
        trace::TraceSynthesizer synth(
            trace::WorkloadProfile::byName(name), 13);
        rep.run(synth, 300);
        return rep.result().energyPj.mean();
    };
    if (GetParam() == "libq")
        GTEST_SKIP() << "reference workload";
    if (trace::WorkloadProfile::byName(GetParam()).highIntensity) {
        EXPECT_GT(energy_of(GetParam()), energy_of("libq"));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileStats,
    ::testing::Values("lesl", "milc", "wrf", "sopl", "zeus", "lbm",
                      "gcc", "asta", "mcf", "cann", "libq", "omne"));

} // namespace
