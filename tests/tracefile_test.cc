/**
 * @file
 * Tests for the out-of-core trace store (src/tracefile): WLCTRC02
 * container round trips, corruption detection, block-index pruning,
 * the TransactionSource replay path, and the acceptance properties —
 * byte-identical wlcrc_sim CSV whether a stream is replayed from
 * memory, a WLCTRC01 dump or a WLCTRC02 container, with streamed
 * (block-bounded) memory use.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <vector>

#include "common/crc32.hh"
#include "common/lz.hh"
#include "common/rng.hh"
#include "runner/grid.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "tracefile/block_codec.hh"
#include "tracefile/format.hh"
#include "tracefile/mapped_trace.hh"
#include "tracefile/source.hh"
#include "tracefile/writer.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"

#ifdef WLCRC_TRACE_BIN
#include "subprocess.hh"
#endif

namespace
{

using namespace wlcrc;
using tracefile::MappedTrace;
using tracefile::MappedTraceSource;
using tracefile::ShardFilter;
using tracefile::TraceFileWriter;
using tracefile::TransactionSource;
using tracefile::V1FileSource;
using tracefile::VectorSource;
using trace::MixedSynthesizer;
using trace::TraceSynthesizer;
using trace::WorkloadProfile;
using trace::WriteTransaction;

std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** RAII deleter for test artifacts. */
struct TmpFile
{
    explicit TmpFile(std::string n) : path(tmpPath(std::move(n))) {}
    ~TmpFile() { std::filesystem::remove(path); }
    const std::string path;
};

std::vector<WriteTransaction>
sampleStream(uint64_t n, const char *workload = "gcc",
             uint64_t seed = 11)
{
    TraceSynthesizer synth(WorkloadProfile::byName(workload), seed);
    std::vector<WriteTransaction> txns;
    txns.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        txns.push_back(synth.next());
    return txns;
}

void
writeV2(const std::string &path,
        const std::vector<WriteTransaction> &txns,
        uint32_t recordsPerBlock)
{
    TraceFileWriter writer(path, recordsPerBlock);
    for (const auto &t : txns)
        writer.write(t);
    writer.close();
}

void
writeV1(const std::string &path,
        const std::vector<WriteTransaction> &txns)
{
    trace::TraceWriter writer(path);
    for (const auto &t : txns)
        writer.write(t);
}

void
writeV3(const std::string &path,
        const std::vector<WriteTransaction> &txns,
        uint32_t recordsPerBlock,
        tracefile::BlockCodec codec = tracefile::BlockCodec::lz)
{
    tracefile::WriterOptions options;
    options.recordsPerBlock = recordsPerBlock;
    options.format = tracefile::TraceFormat::v3;
    options.codec = codec;
    TraceFileWriter writer(path, options);
    for (const auto &t : txns)
        writer.write(t);
    writer.close();
}

/** Incompressible stream: every address and data word random. */
std::vector<WriteTransaction>
noiseStream(uint64_t n, uint64_t seed = 97)
{
    Rng rng(seed);
    std::vector<WriteTransaction> txns(n);
    for (auto &t : txns) {
        t.lineAddr = rng.next();
        for (unsigned w = 0; w < 8; ++w) {
            t.oldData.setWord(w, rng.next());
            t.newData.setWord(w, rng.next());
        }
    }
    return txns;
}

/** Set an environment variable for one scope, restoring on exit. */
struct ScopedEnv
{
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char *name_;
};

/** Flip one byte of a file in place. */
void
corruptByte(const std::string &path, std::uint64_t offset)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char c;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

// -------------------------------------------------------------- crc32

TEST(Crc32, MatchesKnownVectors)
{
    EXPECT_EQ(crc32("", 0), 0u);
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    // Incremental checksumming continues a message.
    const uint32_t part = crc32("12345", 5);
    EXPECT_EQ(crc32("6789", 4, part), 0xcbf43926u);
}

// ------------------------------------------------------------ lz codec

TEST(LzCodec, RoundTripsPatternedAndRecordShapedBuffers)
{
    Rng rng(3);
    LzScratch scratch;
    std::vector<uint8_t> raw, packed, back;
    for (int round = 0; round < 60; ++round) {
        raw.clear();
        const int chunks = 1 + static_cast<int>(rng.nextBelow(6));
        for (int c = 0; c < chunks; ++c) {
            const uint64_t kind = rng.nextBelow(4);
            const std::size_t len = 1 + rng.nextBelow(2000);
            if (kind == 0) {
                raw.insert(raw.end(), len,
                           static_cast<uint8_t>(round));
            } else if (kind == 1) {
                const std::size_t period = 1 + rng.nextBelow(8);
                for (std::size_t i = 0; i < len; ++i)
                    raw.push_back(static_cast<uint8_t>(
                        (i % period) * 31 + round));
            } else if (kind == 2) {
                for (std::size_t i = 0; i < len; ++i)
                    raw.push_back(static_cast<uint8_t>(rng.next()));
            } else {
                // Record-shaped: a 136-byte pattern repeating with
                // small per-copy edits, the trace-block case.
                uint8_t rec[tracefile::recordBytes];
                for (auto &b : rec)
                    b = static_cast<uint8_t>(rng.next());
                for (std::size_t i = 0; i < len; ++i) {
                    if (i % sizeof rec == 0)
                        rec[rng.nextBelow(sizeof rec)] ^= 1;
                    raw.push_back(rec[i % sizeof rec]);
                }
            }
        }
        packed.assign(lzCompressBound(raw.size()), 0);
        const std::size_t n =
            lzCompress(raw.data(), raw.size(), packed.data(),
                       packed.size(), &scratch);
        ASSERT_GT(n, 0u) << "round " << round;
        back.assign(raw.size(), 0xee);
        ASSERT_EQ(lzDecompress(packed.data(), n, back.data(),
                               back.size()),
                  raw.size())
            << "round " << round;
        ASSERT_EQ(back, raw) << "round " << round;
        // An empty stream decodes to zero bytes.
        EXPECT_EQ(lzDecompress(packed.data(), 0, back.data(),
                               back.size()),
                  0u);
    }
}

TEST(LzCodec, DemandsAStrictWinOrReportsNoFit)
{
    // Incompressible bytes cannot beat raw storage: with the
    // writer's dstCap = srcLen - 1 contract the compressor reports
    // no fit instead of expanding.
    Rng rng(7);
    std::vector<uint8_t> raw(4096);
    for (auto &b : raw)
        b = static_cast<uint8_t>(rng.next());
    std::vector<uint8_t> packed(raw.size() - 1);
    EXPECT_EQ(lzCompress(raw.data(), raw.size(), packed.data(),
                         packed.size()),
              0u);

    // A constant run shrinks dramatically under the same cap.
    std::fill(raw.begin(), raw.end(), uint8_t{'a'});
    const std::size_t n = lzCompress(raw.data(), raw.size(),
                                     packed.data(), packed.size());
    ASSERT_GT(n, 0u);
    EXPECT_LT(n, raw.size() / 8);
    std::vector<uint8_t> back(raw.size());
    EXPECT_EQ(lzDecompress(packed.data(), n, back.data(),
                           back.size()),
              raw.size());
    EXPECT_EQ(back, raw);
}

TEST(LzCodec, MalformedStreamsThrowNamedErrors)
{
    const auto expectLzError = [](const std::vector<uint8_t> &src,
                                  std::size_t dstCap) {
        std::vector<uint8_t> dst(dstCap + 1);
        try {
            lzDecompress(src.data(), src.size(), dst.data(), dstCap);
            FAIL() << "malformed stream decoded";
        } catch (const std::runtime_error &err) {
            EXPECT_EQ(std::string(err.what()).find("lz: "), 0u)
                << err.what();
        }
    };

    std::vector<uint8_t> raw(3000, uint8_t{'z'});
    std::vector<uint8_t> packed(lzCompressBound(raw.size()));
    const std::size_t n = lzCompress(raw.data(), raw.size(),
                                     packed.data(), packed.size());
    ASSERT_GT(n, 0u);
    packed.resize(n);

    // Chopping the final byte tears the last sequence.
    expectLzError({packed.begin(), packed.end() - 1}, raw.size());
    // A valid stream into a too-small output overflows by name.
    expectLzError(packed, raw.size() - 1);
    // Hand-built defects: a match whose offset points before the
    // start of the decoded window, and a zero offset.
    expectLzError({0x01, 0xff, 0xff}, 64);
    expectLzError({0x01, 0x00, 0x00}, 64);
    // A token demanding literals the input does not carry.
    expectLzError({0x50, 'a', 'b'}, 64);
}

// ------------------------------------------------------ format basics

TEST(TraceFormat, RecordCodecRoundTrips)
{
    const auto txns = sampleStream(50);
    uint8_t buf[tracefile::recordBytes];
    for (const auto &t : txns) {
        tracefile::encodeRecord(buf, t);
        const auto back = tracefile::decodeRecord(buf);
        EXPECT_EQ(back.lineAddr, t.lineAddr);
        EXPECT_EQ(back.oldData, t.oldData);
        EXPECT_EQ(back.newData, t.newData);
    }
}

TEST(TraceFormat, RangeHasResiduePredicates)
{
    // Unfiltered and wide ranges always intersect.
    EXPECT_TRUE(tracefile::rangeHasResidue(5, 5, 1, 0));
    EXPECT_TRUE(tracefile::rangeHasResidue(0, 63, 64, 17));
    EXPECT_TRUE(tracefile::rangeHasResidue(100, 163, 64, 0));
    // Narrow range [8, 11] mod 64 covers residues 8..11 only.
    for (unsigned r = 0; r < 64; ++r)
        EXPECT_EQ(tracefile::rangeHasResidue(8, 11, 64, r),
                  r >= 8 && r <= 11);
    // Wrapped interval: [62, 65] mod 64 covers {62, 63, 0, 1}.
    for (unsigned r = 0; r < 64; ++r)
        EXPECT_EQ(tracefile::rangeHasResidue(62, 65, 64, r),
                  r >= 62 || r <= 1);
    // Single-address range.
    EXPECT_TRUE(tracefile::rangeHasResidue(130, 130, 64, 2));
    EXPECT_FALSE(tracefile::rangeHasResidue(130, 130, 64, 3));
}

TEST(TraceFormat, DetectFormatSniffsBothMagics)
{
    TmpFile v1("wlcrc_detect_v1.trc"), v2("wlcrc_detect_v2.trc"),
        junk("wlcrc_detect_junk.trc");
    const auto txns = sampleStream(10);
    writeV1(v1.path, txns);
    writeV2(v2.path, txns, 4);
    {
        std::ofstream os(junk.path, std::ios::binary);
        os << "GARBAGEFILE";
    }
    EXPECT_EQ(tracefile::detectFormat(v1.path),
              tracefile::TraceFormat::v1);
    EXPECT_EQ(tracefile::detectFormat(v2.path),
              tracefile::TraceFormat::v2);
    EXPECT_THROW(tracefile::detectFormat(junk.path),
                 std::runtime_error);
    EXPECT_THROW(tracefile::detectFormat(tmpPath("wlcrc_nope.trc")),
                 std::runtime_error);
}

// ------------------------------------------------- container round trip

TEST(TraceFileWriter, RoundTripsThroughMappedTrace)
{
    TmpFile file("wlcrc_v2_roundtrip.trc");
    const auto txns = sampleStream(1000);
    writeV2(file.path, txns, 64);

    MappedTrace trace(file.path);
    EXPECT_EQ(trace.records(), 1000u);
    EXPECT_EQ(trace.recordsPerBlock(), 64u);
    EXPECT_EQ(trace.blockCount(), (1000 + 63) / 64);
    EXPECT_EQ(trace.verifyAll(), 1000u);

    // Random access decodes the exact records, in order.
    for (uint64_t i = 0; i < trace.records(); ++i) {
        const auto t = trace.record(i);
        ASSERT_EQ(t.lineAddr, txns[i].lineAddr) << i;
        ASSERT_EQ(t.oldData, txns[i].oldData) << i;
        ASSERT_EQ(t.newData, txns[i].newData) << i;
    }
    EXPECT_THROW(trace.record(1000), std::runtime_error);

    // The final block holds the remainder; index min/max are exact.
    const auto &last = trace.blockInfo(trace.blockCount() - 1);
    EXPECT_EQ(last.count, 1000 % 64);
    for (uint64_t b = 0; b < trace.blockCount(); ++b) {
        const auto &info = trace.blockInfo(b);
        uint64_t lo = ~uint64_t{0}, hi = 0;
        for (uint32_t i = 0; i < info.count; ++i) {
            const auto addr = trace.recordInBlock(b, i).lineAddr;
            lo = std::min(lo, addr);
            hi = std::max(hi, addr);
        }
        EXPECT_EQ(info.minAddr, lo) << b;
        EXPECT_EQ(info.maxAddr, hi) << b;
    }
}

TEST(TraceFileWriter, EmptyTraceIsValid)
{
    TmpFile file("wlcrc_v2_empty.trc");
    writeV2(file.path, {}, 16);
    MappedTrace trace(file.path);
    EXPECT_EQ(trace.records(), 0u);
    EXPECT_EQ(trace.blockCount(), 0u);
    EXPECT_EQ(trace.verifyAll(), 0u);
    auto cursor = MappedTraceSource(file.path).open({});
    EXPECT_FALSE(cursor->next());
}

TEST(TraceFileWriter, RejectsZeroBlockCapacityAndWriteAfterClose)
{
    TmpFile file("wlcrc_v2_badcap.trc");
    EXPECT_THROW(TraceFileWriter(file.path, 0),
                 std::invalid_argument);
    TraceFileWriter writer(file.path, 4);
    writer.write(WriteTransaction{});
    writer.close();
    writer.close(); // idempotent
    EXPECT_THROW(writer.write(WriteTransaction{}),
                 std::runtime_error);
}

// ------------------------------------------- WLCTRC03 round trip

TEST(TraceFileWriterV3, CompressedContainerRoundTripsAndShrinks)
{
    TmpFile v3("wlcrc_v3_roundtrip.trc"), v2("wlcrc_v3_ref_v2.trc");
    const auto txns = sampleStream(1000, "libq", 13);
    writeV3(v3.path, txns, 64);
    writeV2(v2.path, txns, 64);

    EXPECT_EQ(tracefile::detectFormat(v3.path),
              tracefile::TraceFormat::v3);
    MappedTrace trace(v3.path);
    EXPECT_EQ(trace.format(), tracefile::TraceFormat::v3);
    EXPECT_EQ(trace.records(), 1000u);
    EXPECT_EQ(trace.recordsPerBlock(), 64u);
    EXPECT_EQ(trace.verifyAll(), 1000u);
    EXPECT_TRUE(trace.anyCompressed());
    EXPECT_LT(trace.storedBytes(),
              1000ull * tracefile::recordBytes);
    EXPECT_LT(std::filesystem::file_size(v3.path),
              std::filesystem::file_size(v2.path));

    uint64_t lzBlocks = 0;
    for (uint64_t b = 0; b < trace.blockCount(); ++b) {
        const auto &info = trace.blockInfo(b);
        if (info.codec == tracefile::BlockCodec::lz) {
            ++lzBlocks;
            EXPECT_LT(info.storedBytes,
                      info.count * tracefile::recordBytes) << b;
        }
    }
    EXPECT_GT(lzBlocks, 0u);

    for (uint64_t i = 0; i < trace.records(); ++i) {
        const auto t = trace.record(i);
        ASSERT_EQ(t.lineAddr, txns[i].lineAddr) << i;
        ASSERT_EQ(t.oldData, txns[i].oldData) << i;
        ASSERT_EQ(t.newData, txns[i].newData) << i;
    }

    // The content fingerprint is codec-invariant: a v3 file carries
    // the same record-content CRC a v2 file of the same stream
    // stores as its index checksum, so the result cache sees one
    // digest for one stream in any framing.
    MappedTrace ref(v2.path);
    EXPECT_EQ(ref.contentCrc(), ref.indexCrc());
    EXPECT_EQ(trace.contentCrc(), ref.contentCrc());
    EXPECT_EQ(tracefile::openTraceSource(v3.path)->contentDigest(),
              tracefile::openTraceSource(v2.path)->contentDigest());
}

TEST(TraceFileWriterV3, IncompressibleBlocksFallBackToRaw)
{
    TmpFile v3("wlcrc_v3_noise.trc"), v2("wlcrc_v3_noise_v2.trc");
    const auto txns = noiseStream(300);
    writeV3(v3.path, txns, 64);
    writeV2(v2.path, txns, 64);

    MappedTrace trace(v3.path);
    EXPECT_FALSE(trace.anyCompressed());
    EXPECT_EQ(trace.storedBytes(),
              300ull * tracefile::recordBytes);
    for (uint64_t b = 0; b < trace.blockCount(); ++b) {
        const auto &info = trace.blockInfo(b);
        EXPECT_EQ(info.codec, tracefile::BlockCodec::raw) << b;
        EXPECT_EQ(info.storedBytes,
                  info.count * tracefile::recordBytes) << b;
        EXPECT_EQ(info.storedCrc, info.crc) << b;
    }
    EXPECT_EQ(trace.verifyAll(), 300u);
    // All-raw v3 costs exactly the larger index entries, nothing
    // else: the no-shrink-no-expand guarantee, byte-exact.
    EXPECT_EQ(std::filesystem::file_size(v3.path),
              std::filesystem::file_size(v2.path) +
                  trace.blockCount() *
                      (tracefile::indexEntryBytesV3 -
                       tracefile::indexEntryBytes));
    EXPECT_EQ(tracefile::gather(MappedTraceSource(v3.path)).size(),
              300u);
}

TEST(TraceFileWriterV3, RawCodecAndUnavailableCodecs)
{
    TmpFile v3("wlcrc_v3_rawcodec.trc");
    const auto txns = sampleStream(200, "libq", 17);
    writeV3(v3.path, txns, 32, tracefile::BlockCodec::raw);
    MappedTrace trace(v3.path);
    EXPECT_FALSE(trace.anyCompressed());
    EXPECT_EQ(trace.verifyAll(), 200u);
    const auto back = tracefile::gather(MappedTraceSource(v3.path));
    ASSERT_EQ(back.size(), txns.size());
    for (std::size_t i = 0; i < back.size(); ++i)
        ASSERT_EQ(back[i].newData, txns[i].newData) << i;

    EXPECT_TRUE(tracefile::codecAvailable(tracefile::BlockCodec::raw));
    EXPECT_TRUE(tracefile::codecAvailable(tracefile::BlockCodec::lz));
#ifndef WLCRC_HAVE_ZSTD
    // A codec this build cannot encode fails at construction, by
    // name, instead of writing an unreadable file.
    EXPECT_FALSE(
        tracefile::codecAvailable(tracefile::BlockCodec::zstd));
    TmpFile bad("wlcrc_v3_nozstd.trc");
    EXPECT_THROW(writeV3(bad.path, txns, 32,
                         tracefile::BlockCodec::zstd),
                 std::exception);
#endif
}

TEST(TraceFileWriterV3, EmptyTraceIsValid)
{
    TmpFile file("wlcrc_v3_empty.trc");
    writeV3(file.path, {}, 16);
    MappedTrace trace(file.path);
    EXPECT_EQ(trace.format(), tracefile::TraceFormat::v3);
    EXPECT_EQ(trace.records(), 0u);
    EXPECT_EQ(trace.blockCount(), 0u);
    EXPECT_FALSE(trace.anyCompressed());
    auto cursor = MappedTraceSource(file.path).open({});
    EXPECT_FALSE(cursor->next());
}

// -------------------------------------------------- corruption paths

TEST(MappedTrace, RejectsBadMagic)
{
    TmpFile file("wlcrc_v2_badmagic.trc");
    writeV2(file.path, sampleStream(20), 8);
    corruptByte(file.path, 0); // header magic
    EXPECT_THROW(MappedTrace{file.path}, std::runtime_error);
}

TEST(MappedTrace, RejectsTruncatedTrailer)
{
    TmpFile file("wlcrc_v2_trunc.trc");
    writeV2(file.path, sampleStream(20), 8);
    const auto full = std::filesystem::file_size(file.path);
    std::filesystem::resize_file(file.path, full - 7);
    EXPECT_THROW(MappedTrace{file.path}, std::runtime_error);
}

TEST(MappedTrace, RejectsCorruptFooterIndex)
{
    TmpFile file("wlcrc_v2_badindex.trc");
    const auto txns = sampleStream(20);
    writeV2(file.path, txns, 8);
    // First index entry starts right after the record area.
    const uint64_t indexOffset =
        tracefile::headerBytes +
        txns.size() * uint64_t{tracefile::recordBytes};
    corruptByte(file.path, indexOffset + 9); // a minAddr byte
    try {
        MappedTrace trace(file.path);
        FAIL() << "corrupt index accepted";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("index checksum"),
                  std::string::npos)
            << err.what();
    }
}

TEST(MappedTrace, CorruptBlockFailsVerifyAndCursor)
{
    TmpFile file("wlcrc_v2_badblock.trc");
    writeV2(file.path, sampleStream(100), 16);
    // Flip a payload byte inside block 2.
    corruptByte(file.path, tracefile::headerBytes +
                               2ull * 16 * tracefile::recordBytes +
                               40);
    MappedTrace trace(file.path); // structure is still sound
    EXPECT_NO_THROW(trace.verifyBlock(0));
    EXPECT_THROW(trace.verifyBlock(2), std::runtime_error);
    EXPECT_THROW(trace.verifyAll(), std::runtime_error);

    // A streaming replay trips over the bad block, not past it.
    auto source = std::make_shared<MappedTraceSource>(file.path);
    auto cursor = source->open({});
    EXPECT_THROW(
        [&] {
            while (cursor->next()) {
            }
        }(),
        std::runtime_error);

    // And through the runner the spec fails cleanly, per spec.
    runner::ExperimentSpec spec;
    spec.scheme = "Baseline";
    spec.source = source;
    const auto results = runner::ExperimentRunner().run({spec});
    ASSERT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("checksum"), std::string::npos)
        << results[0].error;
}

// ------------------------------------------- v3 corruption paths

std::vector<uint8_t>
slurpBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
spillBytes(const std::string &path, const std::vector<uint8_t> &b)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
}

/**
 * Patch one field of a v3 footer-index entry and recompute the
 * trailer's index checksum, so the lie survives the structural CRC
 * and must be caught by the index sanity checks themselves.
 */
void
patchV3IndexEntry(const std::string &path, uint64_t block,
                  uint32_t fieldOffset, uint64_t value,
                  unsigned fieldBytes)
{
    auto bytes = slurpBytes(path);
    ASSERT_GT(bytes.size(), std::size_t{tracefile::trailerBytes});
    const std::size_t trailer =
        bytes.size() - tracefile::trailerBytes;
    const uint64_t indexOffset = tracefile::getLe64(&bytes[trailer]);
    const uint64_t blockCount =
        tracefile::getLe64(&bytes[trailer + 8]);
    ASSERT_LT(block, blockCount);
    uint8_t *entry = &bytes[indexOffset +
                            block * tracefile::indexEntryBytesV3];
    if (fieldBytes == 4)
        tracefile::putLe32(entry + fieldOffset,
                           static_cast<uint32_t>(value));
    else if (fieldBytes == 8)
        tracefile::putLe64(entry + fieldOffset, value);
    else
        entry[fieldOffset] = static_cast<uint8_t>(value);
    tracefile::putLe32(
        &bytes[trailer + 24],
        crc32(&bytes[indexOffset],
              blockCount * tracefile::indexEntryBytesV3));
    spillBytes(path, bytes);
}

// v3 index-entry field offsets (docs/trace-format.md).
constexpr uint32_t kV3FieldStoredBytes = 32;
constexpr uint32_t kV3FieldCodec = 40;

TEST(MappedTraceV3, BitFlippedCompressedPayloadFailsByName)
{
    TmpFile file("wlcrc_v3_badpayload.trc");
    writeV3(file.path, sampleStream(1000, "libq", 19), 64);
    // Flip a byte inside block 0's stored (compressed) bytes. The
    // structure is sound, so mapping succeeds; the damage surfaces
    // when — and only when — the block is decoded.
    corruptByte(file.path, tracefile::headerBytes + 3);
    MappedTrace trace(file.path);
    ASSERT_EQ(trace.blockInfo(0).codec, tracefile::BlockCodec::lz);
    try {
        trace.verifyBlock(0);
        FAIL() << "corrupt compressed block verified";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what())
                      .find("stored-byte checksum mismatch"),
                  std::string::npos)
            << err.what();
    }
    EXPECT_THROW(trace.verifyAll(), std::runtime_error);
    EXPECT_NO_THROW(trace.verifyBlock(1));

    auto cursor = MappedTraceSource(file.path).open({});
    EXPECT_THROW(
        [&] {
            while (cursor->next()) {
            }
        }(),
        std::runtime_error);
}

TEST(MappedTraceV3, TruncationFailsAtConstruction)
{
    TmpFile file("wlcrc_v3_trunc.trc");
    writeV3(file.path, sampleStream(500, "libq", 23), 64);
    const auto full = std::filesystem::file_size(file.path);
    std::filesystem::resize_file(file.path, full - 9);
    EXPECT_THROW(MappedTrace{file.path}, std::runtime_error);
    std::filesystem::resize_file(file.path, 10);
    EXPECT_THROW(MappedTrace{file.path}, std::runtime_error);
}

TEST(MappedTraceV3, LyingIndexFieldsFailByName)
{
    TmpFile file("wlcrc_v3_lying.trc");
    const auto txns = sampleStream(1000, "libq", 29);
    const auto expectCtorError = [&](const std::string &needle) {
        try {
            MappedTrace trace(file.path);
            FAIL() << "lying index accepted (wanted: " << needle
                   << ")";
        } catch (const std::runtime_error &err) {
            EXPECT_NE(std::string(err.what()).find(needle),
                      std::string::npos)
                << err.what() << "\n  (wanted: " << needle << ")";
        }
    };

    // Tampering with the index without fixing the trailer CRC is
    // caught by the checksum before any field is believed.
    writeV3(file.path, txns, 64);
    {
        const auto bytes = slurpBytes(file.path);
        const uint64_t indexOffset = tracefile::getLe64(
            &bytes[bytes.size() - tracefile::trailerBytes]);
        corruptByte(file.path, indexOffset + 32); // storedBytes
    }
    expectCtorError("footer index checksum mismatch");

    // A storedBytes lie that survives the CRC breaks the offset
    // chain at the next block.
    writeV3(file.path, txns, 64);
    patchV3IndexEntry(file.path, 0, kV3FieldStoredBytes,
                      MappedTrace(file.path).blockInfo(0).storedBytes
                          + 1,
                      4);
    expectCtorError("stored offset breaks the block chain");

    // The last block's size is bounded by the index position.
    writeV3(file.path, txns, 64);
    {
        MappedTrace probe(file.path);
        patchV3IndexEntry(file.path, probe.blockCount() - 1,
                          kV3FieldStoredBytes, 1u << 30, 4);
    }
    expectCtorError("stored size runs past the index");

    // Unknown codec bytes are rejected up front.
    writeV3(file.path, txns, 64);
    patchV3IndexEntry(file.path, 0, kV3FieldCodec, 9, 1);
    expectCtorError("unknown codec byte");

    // A block stored at raw size but labelled compressed is
    // impossible: the writer stores such blocks raw. Relabelling a
    // raw block's codec byte is exactly that lie.
    writeV3(file.path, noiseStream(200, 31), 4096);
    ASSERT_FALSE(MappedTrace(file.path).anyCompressed());
    patchV3IndexEntry(file.path, 0, kV3FieldCodec,
                      static_cast<uint64_t>(tracefile::BlockCodec::lz),
                      1);
    expectCtorError("compressed block larger than raw");

    // An understated size leaves the record area unaccounted.
    const auto oneBlock = sampleStream(200, "libq", 31);
    writeV3(file.path, oneBlock, 4096);
    ASSERT_TRUE(MappedTrace(file.path).anyCompressed());
    patchV3IndexEntry(file.path, 0, kV3FieldStoredBytes,
                      MappedTrace(file.path).blockInfo(0).storedBytes
                          - 1,
                      4);
    expectCtorError("stored blocks do not fill the record area");

    // A raw block's stored size must equal its record count's.
    writeV3(file.path, noiseStream(100, 41), 4096,
            tracefile::BlockCodec::raw);
    patchV3IndexEntry(file.path, 0, kV3FieldStoredBytes,
                      100ull * tracefile::recordBytes - 1, 4);
    expectCtorError("raw stored size disagrees with its record "
                    "count");
}

// ------------------------------------------------------- v1 satellite

TEST(TraceReader, TruncatedTrailingRecordThrowsWithOffset)
{
    TmpFile file("wlcrc_v1_truncated.trc");
    writeV1(file.path, sampleStream(3));
    // Chop the last record mid-payload: 8 B magic + 3 records, minus
    // 50 bytes leaves record 2 torn.
    const auto full = std::filesystem::file_size(file.path);
    std::filesystem::resize_file(file.path, full - 50);

    trace::TraceReader reader(file.path);
    EXPECT_TRUE(reader.read());
    EXPECT_TRUE(reader.read());
    try {
        reader.read();
        FAIL() << "truncated record read as clean EOF";
    } catch (const std::runtime_error &err) {
        const std::string what = err.what();
        // Offset of the torn record: 8 + 2 * 136.
        EXPECT_NE(what.find("truncated record"), std::string::npos);
        EXPECT_NE(what.find("byte offset 280"), std::string::npos)
            << what;
    }
}

TEST(V1FileSource, CountsRecordsFromFileSize)
{
    TmpFile file("wlcrc_v1_count.trc");
    writeV1(file.path, sampleStream(123));
    V1FileSource source(file.path);
    EXPECT_EQ(source.records(), 123u);
    EXPECT_EQ(tracefile::gather(source).size(), 123u);
}

// ---------------------------------------------------------- pruning

TEST(MappedTraceSource, ShardCursorPrunesByBlockAddressRange)
{
    // Sequential line addresses make blocks narrow address windows:
    // with 8-record blocks and a 64-way shard split, a shard's
    // residue class appears in 1/8 of the blocks. The index must
    // prune the rest without decoding them.
    TmpFile file("wlcrc_v2_pruning.trc");
    std::vector<WriteTransaction> txns(4096);
    for (uint64_t i = 0; i < txns.size(); ++i)
        txns[i].lineAddr = i;
    writeV2(file.path, txns, 8);

    MappedTraceSource source(file.path);
    ASSERT_EQ(source.trace().blockCount(), 512u);

    std::size_t yielded_total = 0;
    for (unsigned shard = 0; shard < 64; ++shard) {
        auto cursor = source.open(ShardFilter{64, shard});
        std::size_t yielded = 0;
        while (auto t = cursor->next()) {
            EXPECT_EQ(t->lineAddr % 64, shard);
            ++yielded;
        }
        yielded_total += yielded;
        EXPECT_EQ(yielded, 4096u / 64);
        // Only blocks whose 8-address window holds this residue were
        // decoded: 64 of 512, an 8x pruning win.
        EXPECT_EQ(cursor->blocksVisited(), 64u) << "shard " << shard;
    }
    EXPECT_EQ(yielded_total, txns.size()); // partition is exact

    // An unfiltered cursor visits everything.
    auto all = source.open({});
    while (all->next()) {
    }
    EXPECT_EQ(all->blocksVisited(), 512u);
}

// ------------------------------------------------ range partition

TEST(Sharding, RangePartitionTilesAnyBoundsExactly)
{
    // Narrow bounds: shards are contiguous, cover [lo, hi], and
    // every address lands in exactly one.
    const std::pair<uint64_t, uint64_t> bounds{100, 612};
    std::vector<ShardFilter> filters;
    for (unsigned s = 0; s < 7; ++s)
        filters.push_back(tracefile::rangePartition(bounds, 7, s));
    EXPECT_EQ(filters.front().lo, 100u);
    EXPECT_EQ(filters.back().hi, 612u);
    for (unsigned s = 0; s + 1 < 7; ++s)
        EXPECT_EQ(filters[s].hi + 1, filters[s + 1].lo) << s;
    for (uint64_t addr = 100; addr <= 612; ++addr) {
        unsigned owners = 0;
        for (const auto &f : filters)
            owners += f.accepts(addr);
        ASSERT_EQ(owners, 1u) << addr;
    }
    EXPECT_FALSE(filters.front().accepts(99));
    EXPECT_FALSE(filters.back().accepts(613));

    // The full 64-bit span must not overflow the slice arithmetic.
    const std::pair<uint64_t, uint64_t> full{0, ~uint64_t{0}};
    const auto f0 = tracefile::rangePartition(full, 3, 0);
    const auto f1 = tracefile::rangePartition(full, 3, 1);
    const auto f2 = tracefile::rangePartition(full, 3, 2);
    EXPECT_EQ(f0.lo, 0u);
    EXPECT_EQ(f2.hi, ~uint64_t{0});
    EXPECT_EQ(f0.hi + 1, f1.lo);
    EXPECT_EQ(f1.hi + 1, f2.lo);
    for (const uint64_t addr :
         {uint64_t{0}, f0.hi, f1.lo, f1.hi, f2.lo, ~uint64_t{0}}) {
        EXPECT_EQ(f0.accepts(addr) + f1.accepts(addr) +
                      f2.accepts(addr),
                  1)
            << addr;
    }

    // More shards than addresses: surplus shards get empty slices,
    // the tiling stays exact.
    for (const uint64_t addr : {10, 11, 12}) {
        unsigned owners = 0;
        for (unsigned s = 0; s < 8; ++s)
            owners +=
                tracefile::rangePartition({10, 12}, 8, s)
                    .accepts(addr);
        EXPECT_EQ(owners, 1u) << addr;
    }

    // shards <= 1 means unfiltered, and inverted bounds are refused.
    EXPECT_TRUE(tracefile::rangePartition(bounds, 1, 0).all());
    EXPECT_THROW(tracefile::rangePartition({5, 4}, 2, 0),
                 std::invalid_argument);
}

TEST(Sharding, BlockIntersectsMatchesFilterSemantics)
{
    ShardFilter range{4, 1, tracefile::Partition::range, 100, 200};
    EXPECT_TRUE(tracefile::blockIntersects(range, 50, 100));
    EXPECT_TRUE(tracefile::blockIntersects(range, 150, 160));
    EXPECT_TRUE(tracefile::blockIntersects(range, 200, 500));
    EXPECT_FALSE(tracefile::blockIntersects(range, 0, 99));
    EXPECT_FALSE(tracefile::blockIntersects(range, 201, 500));

    ShardFilter mod{4, 1};
    EXPECT_TRUE(tracefile::blockIntersects(mod, 5, 5));
    EXPECT_FALSE(tracefile::blockIntersects(mod, 6, 6));
    EXPECT_TRUE(tracefile::blockIntersects(ShardFilter{}, 6, 6));
}

TEST(RangeSharding, SortedContainerPrunesToContiguousBlockRuns)
{
    // On an address-sorted container a range shard owns one
    // contiguous run of blocks: with 4096 sequential addresses in
    // 8-record blocks, each of 64 range shards decodes exactly
    // 512/64 = 8 blocks — a 64x pruning win, where modulo sharding
    // (same file, same shard count) must decode 64 blocks.
    TmpFile file("wlcrc_v3_rangeprune.trc");
    std::vector<WriteTransaction> txns(4096);
    for (uint64_t i = 0; i < txns.size(); ++i)
        txns[i].lineAddr = i;
    writeV3(file.path, txns, 8);

    MappedTraceSource source(file.path);
    ASSERT_EQ(source.trace().blockCount(), 512u);
    ASSERT_EQ(source.addrBounds(),
              (std::pair<uint64_t, uint64_t>{0, 4095}));

    std::size_t yielded_total = 0;
    for (unsigned shard = 0; shard < 64; ++shard) {
        const auto filter = tracefile::rangePartition(
            source.addrBounds(), 64, shard);
        auto cursor = source.open(filter);
        uint64_t prev = 0;
        std::size_t yielded = 0;
        while (auto t = cursor->next()) {
            EXPECT_TRUE(filter.accepts(t->lineAddr));
            if (yielded > 0) {
                EXPECT_LT(prev, t->lineAddr);
            }
            prev = t->lineAddr;
            ++yielded;
        }
        yielded_total += yielded;
        EXPECT_EQ(yielded, 4096u / 64);
        EXPECT_EQ(cursor->blocksVisited(), 8u) << "shard " << shard;

        auto modulo = source.open(ShardFilter{64, shard});
        while (modulo->next()) {
        }
        EXPECT_EQ(modulo->blocksVisited(), 64u) << "shard " << shard;
    }
    EXPECT_EQ(yielded_total, txns.size()); // partition is exact
}

TEST(RangeSharding, SynthesizedSpecFailsWithNamedError)
{
    // Range partitioning needs stored address bounds; a synthesized
    // stream has none and the spec must fail cleanly, not fudge.
    runner::ExperimentSpec spec;
    spec.scheme = "Baseline";
    spec.workload = "gcc";
    spec.lines = 100;
    spec.shards = 2;
    spec.partition = tracefile::Partition::range;
    const auto results = runner::ExperimentRunner().run({spec});
    ASSERT_FALSE(results[0].ok);
    EXPECT_NE(
        results[0].error.find("partition=range requires a trace "
                              "source"),
        std::string::npos)
        << results[0].error;
}

// ------------------------------------------------------ decode-ahead

TEST(DecodeAhead, StagedReplayIsBitIdenticalToSynchronous)
{
    TmpFile file("wlcrc_v3_ahead.trc");
    const auto txns = sampleStream(3000, "libq", 43);
    writeV3(file.path, txns, 32);
    MappedTraceSource source(file.path);
    ASSERT_TRUE(source.trace().anyCompressed());

    const auto collect = [&](const ShardFilter &filter,
                             uint64_t &visited) {
        std::vector<WriteTransaction> got;
        auto cursor = source.open(filter);
        while (auto t = cursor->next())
            got.push_back(*t);
        visited = cursor->blocksVisited();
        return got;
    };
    const auto same = [](const std::vector<WriteTransaction> &a,
                         const std::vector<WriteTransaction> &b) {
        if (a.size() != b.size())
            return false;
        for (std::size_t i = 0; i < a.size(); ++i)
            if (a[i].lineAddr != b[i].lineAddr ||
                a[i].oldData != b[i].oldData ||
                a[i].newData != b[i].newData)
                return false;
        return true;
    };

    uint64_t syncVisited = 0, aheadVisited = 0;
    std::vector<WriteTransaction> sync, ahead;
    {
        ScopedEnv env("WLCRC_DECODE_AHEAD", "0");
        sync = collect({}, syncVisited);
    }
    {
        ScopedEnv env("WLCRC_DECODE_AHEAD", "5");
        ahead = collect({}, aheadVisited);
    }
    EXPECT_EQ(sync.size(), 3000u);
    EXPECT_TRUE(same(sync, ahead));
    EXPECT_EQ(syncVisited, aheadVisited);

    // Sharded: staging composes with block pruning.
    {
        ScopedEnv env("WLCRC_DECODE_AHEAD", "0");
        sync = collect(ShardFilter{8, 3}, syncVisited);
    }
    {
        ScopedEnv env("WLCRC_DECODE_AHEAD", "4");
        ahead = collect(ShardFilter{8, 3}, aheadVisited);
    }
    EXPECT_FALSE(sync.empty());
    EXPECT_TRUE(same(sync, ahead));
    EXPECT_EQ(syncVisited, aheadVisited);

    // The staging ring is visible only in the memory bound: depth
    // slots versus one synchronous block view. A compressed
    // container defaults to staged decode (depth 2) when the env
    // knob is unset.
    const std::size_t blockBytes = 32u * tracefile::recordBytes;
    {
        ScopedEnv env("WLCRC_DECODE_AHEAD", "0");
        EXPECT_EQ(source.open({})->bufferBytes(), blockBytes);
    }
    {
        ScopedEnv env("WLCRC_DECODE_AHEAD", "5");
        EXPECT_GT(source.open({})->bufferBytes(), blockBytes);
    }
    EXPECT_GT(source.open({})->bufferBytes(), blockBytes);
}

TEST(DecodeAhead, ErrorsPropagateThroughTheStagingRing)
{
    TmpFile file("wlcrc_v3_ahead_err.trc");
    writeV3(file.path, sampleStream(2000, "libq", 47), 32);
    // Corrupt a mid-file block's stored bytes.
    const MappedTrace probe(file.path);
    corruptByte(file.path,
                probe.blockInfo(probe.blockCount() / 2).offset + 2);

    ScopedEnv env("WLCRC_DECODE_AHEAD", "3");
    auto cursor = MappedTraceSource(file.path).open({});
    try {
        while (cursor->next()) {
        }
        FAIL() << "staged cursor swallowed a corrupt block";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("checksum mismatch"),
                  std::string::npos)
            << err.what();
    }
}

// ------------------------------------- replay equivalence (acceptance)

std::string
replayCsv(const std::shared_ptr<const TransactionSource> &source,
          unsigned jobs, unsigned shards,
          tracefile::Partition partition =
              tracefile::Partition::modulo)
{
    runner::ExperimentGrid grid;
    grid.schemes({"Baseline", "WLCRC-16"})
        .sources({source})
        .shards(shards)
        .partition(partition)
        .seed(21);
    const auto results =
        runner::ExperimentRunner({jobs, nullptr}).run(grid);
    for (const auto &r : results) {
        EXPECT_TRUE(r.ok) << r.error;
    }
    std::ostringstream os;
    runner::CsvReporter().write(os, results);
    return os.str();
}

TEST(ReplayEquivalence, VectorV1AndV2ProduceIdenticalCsv)
{
    // The acceptance property: one stream, three containers, one
    // byte-exact report — sharded, to exercise the filtered cursors.
    TmpFile v1("wlcrc_equiv_v1.trc"), v2("wlcrc_equiv_v2.trc");
    const auto txns = sampleStream(1500, "milc", 29);
    writeV1(v1.path, txns);
    writeV2(v2.path, txns, 64);

    const auto fromVector = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(txns));
    const auto fromV1 = tracefile::openTraceSource(v1.path);
    const auto fromV2 = tracefile::openTraceSource(v2.path);

    const auto csvVector = replayCsv(fromVector, 2, 4);
    EXPECT_FALSE(csvVector.empty());
    EXPECT_EQ(csvVector, replayCsv(fromV1, 2, 4));
    EXPECT_EQ(csvVector, replayCsv(fromV2, 2, 4));
}

TEST(ReplayEquivalence, V2ReplayIsIdenticalAcrossJobCounts)
{
    TmpFile v2("wlcrc_jobs_v2.trc");
    writeV2(v2.path, sampleStream(1200, "lesl", 31), 128);
    const auto source = tracefile::openTraceSource(v2.path);
    const auto csv1 = replayCsv(source, 1, 4);
    const auto csv4 = replayCsv(source, 4, 4);
    EXPECT_FALSE(csv1.empty());
    EXPECT_EQ(csv1, csv4);
}

TEST(ReplayEquivalence, StreamedReplayIsBoundedByBlockSize)
{
    // A trace whose record payload dwarfs the cursor's buffer must
    // still replay correctly: proof that replay streams per block
    // instead of slurping. 2000 records x 136 B = 272 kB payload vs
    // a 4-record (544 B) block buffer.
    TmpFile v2("wlcrc_stream_bound.trc");
    const auto txns = sampleStream(2000, "zeus", 37);
    writeV2(v2.path, txns, 4);

    const auto source = tracefile::openTraceSource(v2.path);
    auto cursor = source->open({});
    const std::size_t payload =
        txns.size() * tracefile::recordBytes;
    EXPECT_EQ(cursor->bufferBytes(),
              4u * tracefile::recordBytes);
    EXPECT_LT(cursor->bufferBytes() * 100, payload);

    const auto fromVector = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(txns));
    EXPECT_EQ(replayCsv(source, 2, 2), replayCsv(fromVector, 2, 2));
}

TEST(ReplayEquivalence, V3ContainersMatchEveryOtherFraming)
{
    // The acceptance property extended to WLCTRC03: one stream,
    // five framings (memory, v1, v2, v3 raw, v3 lz), one byte-exact
    // sharded report — and for the compressed container the report
    // is also invariant to job count and decode-ahead depth.
    TmpFile v1("wlcrc_equiv3_v1.trc"), v2("wlcrc_equiv3_v2.trc"),
        v3raw("wlcrc_equiv3_v3raw.trc"),
        v3lz("wlcrc_equiv3_v3lz.trc");
    const auto txns = sampleStream(1500, "milc", 53);
    writeV1(v1.path, txns);
    writeV2(v2.path, txns, 64);
    writeV3(v3raw.path, txns, 64, tracefile::BlockCodec::raw);
    writeV3(v3lz.path, txns, 64, tracefile::BlockCodec::lz);

    const auto fromVector = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(txns));
    const auto csv = replayCsv(fromVector, 2, 4);
    EXPECT_FALSE(csv.empty());
    EXPECT_EQ(csv, replayCsv(tracefile::openTraceSource(v1.path),
                             2, 4));
    EXPECT_EQ(csv, replayCsv(tracefile::openTraceSource(v2.path),
                             2, 4));
    EXPECT_EQ(csv, replayCsv(tracefile::openTraceSource(v3raw.path),
                             2, 4));
    const auto fromLz = tracefile::openTraceSource(v3lz.path);
    EXPECT_EQ(csv, replayCsv(fromLz, 2, 4));
    EXPECT_EQ(csv, replayCsv(fromLz, 1, 4));
    EXPECT_EQ(csv, replayCsv(fromLz, 4, 4));
    {
        ScopedEnv env("WLCRC_DECODE_AHEAD", "0");
        EXPECT_EQ(csv, replayCsv(fromLz, 2, 4));
    }
    {
        ScopedEnv env("WLCRC_DECODE_AHEAD", "7");
        EXPECT_EQ(csv, replayCsv(fromLz, 2, 4));
    }
}

TEST(ReplayEquivalence, RangePartitionIsFramingAndJobInvariant)
{
    // Range partitioning changes which shard replays which line, so
    // its report differs from modulo's — but it must be identical
    // across container generations and job counts for one stream.
    TmpFile v2("wlcrc_range_v2.trc"), v3("wlcrc_range_v3.trc");
    auto txns = sampleStream(1200, "lesl", 59);
    std::stable_sort(txns.begin(), txns.end(),
                     [](const WriteTransaction &a,
                        const WriteTransaction &b) {
                         return a.lineAddr < b.lineAddr;
                     });
    writeV2(v2.path, txns, 64);
    writeV3(v3.path, txns, 64);

    const auto fromV2 = tracefile::openTraceSource(v2.path);
    const auto fromV3 = tracefile::openTraceSource(v3.path);
    const auto range =
        replayCsv(fromV2, 1, 4, tracefile::Partition::range);
    EXPECT_FALSE(range.empty());
    EXPECT_EQ(range,
              replayCsv(fromV3, 1, 4, tracefile::Partition::range));
    EXPECT_EQ(range,
              replayCsv(fromV3, 4, 4, tracefile::Partition::range));
}

// ------------------------------------------------- grid source axis

TEST(ExperimentGrid, SourceAxisExpandsSourceMajor)
{
    const auto a = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(
            sampleStream(10)));
    const auto b = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(
            sampleStream(20)));
    a->setLabel("trace-a");
    b->setLabel("trace-b");
    const auto specs = runner::ExperimentGrid()
                           .sources({a, b})
                           .schemes({"Baseline", "WLCRC-16"})
                           .expand();
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].sourceName(), "trace-a");
    EXPECT_EQ(specs[1].sourceName(), "trace-a");
    EXPECT_EQ(specs[2].sourceName(), "trace-b");
    EXPECT_EQ(specs[0].scheme, "Baseline");
    EXPECT_EQ(specs[1].scheme, "WLCRC-16");
    EXPECT_EQ(runner::ExperimentGrid()
                  .sources({a, b})
                  .schemes({"Baseline", "WLCRC-16"})
                  .size(),
              4u);
}

TEST(ExperimentGrid, DuplicateSourceLabelsThrow)
{
    const auto a = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(
            sampleStream(10)));
    const auto b = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(
            sampleStream(10)));
    EXPECT_THROW(
        runner::ExperimentGrid().sources({a, b}).expand(),
        std::invalid_argument);
    EXPECT_THROW(
        runner::ExperimentGrid().sources({nullptr}).expand(),
        std::invalid_argument);
}

// --------------------------------------------------- mixed workloads

TEST(MixedSynthesizer, DeterministicDisjointWindowsAndCoherent)
{
    const std::vector<MixedSynthesizer::Program> programs = {
        {"gcc", 2.0}, {"libq", 1.0}};
    MixedSynthesizer a(programs, 5), b(programs, 5);
    const uint64_t gccFootprint =
        WorkloadProfile::byName("gcc").footprintLines;

    std::unordered_map<uint64_t, Line512> image;
    std::size_t inFirstWindow = 0;
    for (int i = 0; i < 4000; ++i) {
        const auto ta = a.next();
        const auto tb = b.next();
        ASSERT_EQ(ta.lineAddr, tb.lineAddr);
        ASSERT_EQ(ta.newData, tb.newData);

        // Address windows are disjoint per program.
        inFirstWindow += ta.lineAddr < gccFootprint;
        // Coherent image across the blend: old == last new.
        const auto it = image.find(ta.lineAddr);
        if (it != image.end())
            ASSERT_EQ(ta.oldData, it->second) << "write " << i;
        image[ta.lineAddr] = ta.newData;
    }
    EXPECT_EQ(a.baseOf(0), 0u);
    EXPECT_EQ(a.baseOf(1), gccFootprint);
    // Weighted 2:1 — the gcc window should take roughly 2/3.
    EXPECT_GT(inFirstWindow, 4000 * 0.55);
    EXPECT_LT(inFirstWindow, 4000 * 0.78);
}

TEST(MixedSynthesizer, RejectsBadPrograms)
{
    EXPECT_THROW(MixedSynthesizer({}, 1), std::invalid_argument);
    EXPECT_THROW(MixedSynthesizer({{"nope", 1.0}}, 1),
                 std::invalid_argument);
    EXPECT_THROW(MixedSynthesizer({{"gcc", 0.0}}, 1),
                 std::invalid_argument);
}

// -------------------------------------------------------- conversion

TEST(Conversion, V1ToV2AndBackPreservesEveryRecord)
{
    TmpFile v1("wlcrc_conv_v1.trc"), v2("wlcrc_conv_v2.trc"),
        back("wlcrc_conv_back.trc");
    const auto txns = sampleStream(700, "cann", 41);
    writeV1(v1.path, txns);

    // v1 -> v2 via the streaming cursor (what `convert` does).
    {
        auto cursor = V1FileSource(v1.path).open({});
        TraceFileWriter writer(v2.path, 32);
        while (auto t = cursor->next())
            writer.write(*t);
        writer.close();
    }
    // v2 -> v1.
    {
        auto cursor = MappedTraceSource(v2.path).open({});
        trace::TraceWriter writer(back.path);
        while (auto t = cursor->next())
            writer.write(*t);
    }
    // The v1 bytes round-trip exactly: same record encoding.
    std::ifstream f1(v1.path, std::ios::binary),
        f2(back.path, std::ios::binary);
    std::stringstream s1, s2;
    s1 << f1.rdbuf();
    s2 << f2.rdbuf();
    EXPECT_EQ(s1.str(), s2.str());
    EXPECT_FALSE(s1.str().empty());
}

TEST(Conversion, V2ToV3AndBackIsByteExact)
{
    // Compression is framing, not content: v2 -> v3 -> v2 with the
    // same blocking regenerates the original file byte for byte.
    TmpFile v2("wlcrc_conv23_v2.trc"), v3("wlcrc_conv23_v3.trc"),
        back("wlcrc_conv23_back.trc");
    const auto txns = sampleStream(900, "libq", 67);
    writeV2(v2.path, txns, 64);
    {
        auto cursor = MappedTraceSource(v2.path).open({});
        tracefile::WriterOptions options;
        options.recordsPerBlock = 64;
        options.format = tracefile::TraceFormat::v3;
        TraceFileWriter writer(v3.path, options);
        while (auto t = cursor->next())
            writer.write(*t);
        writer.close();
    }
    EXPECT_LT(std::filesystem::file_size(v3.path),
              std::filesystem::file_size(v2.path));
    {
        auto cursor = MappedTraceSource(v3.path).open({});
        TraceFileWriter writer(back.path, 64);
        while (auto t = cursor->next())
            writer.write(*t);
        writer.close();
    }
    const auto a = slurpBytes(v2.path);
    const auto b = slurpBytes(back.path);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    // And the cache-facing digest never moved along the way.
    const auto digest =
        tracefile::openTraceSource(v2.path)->contentDigest();
    EXPECT_EQ(digest,
              tracefile::openTraceSource(v3.path)->contentDigest());
    EXPECT_EQ(digest,
              tracefile::openTraceSource(back.path)
                  ->contentDigest());
}

// ------------------------------------------------ wlcrc_trace tool

#ifdef WLCRC_TRACE_BIN

std::string
traceTool(const std::string &args)
{
    int rc = 0;
    const auto out = test::captureStdout(
        std::string(WLCRC_TRACE_BIN) + " " + args + " 2>&1", rc);
    EXPECT_EQ(rc, 0) << args << "\n" << out;
    return out;
}

TEST(TraceTool, ExternalSortIsStableUnderTinyMemoryBudget)
{
    // 20000 records over 3000 colliding addresses against a 1 MiB
    // record budget (~7.7k records) force the spill-and-recurse
    // path; a per-record serial stamped into the data words makes
    // stability observable.
    TmpFile in("wlcrc_sort_in.trc"), out("wlcrc_sort_out.trc");
    Rng rng(61);
    std::vector<WriteTransaction> txns(20000);
    for (uint64_t i = 0; i < txns.size(); ++i) {
        txns[i].lineAddr = rng.nextBelow(3000);
        txns[i].newData.setWord(0, i);
    }
    writeV2(in.path, txns, 256);

    traceTool("sort " + in.path + " " + out.path +
              " --format v3 --mem-mb 1");

    auto expect = txns;
    std::stable_sort(expect.begin(), expect.end(),
                     [](const WriteTransaction &a,
                        const WriteTransaction &b) {
                         return a.lineAddr < b.lineAddr;
                     });
    MappedTraceSource sorted(out.path);
    const auto got = tracefile::gather(sorted);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].lineAddr, expect[i].lineAddr) << i;
        ASSERT_EQ(got[i].newData.word(0),
                  expect[i].newData.word(0))
            << i;
    }
    // Sorting bought compression: near-constant per-block address
    // deltas squeeze under the lz codec.
    EXPECT_TRUE(sorted.trace().anyCompressed());
}

TEST(TraceTool, SortStreamsASingleOversizedAddressRun)
{
    // All records share one address, so no budget can split them:
    // the sorter must fall back to a stream copy that preserves
    // arrival order (the sort is stable even degenerate).
    TmpFile in("wlcrc_sort1_in.trc"), out("wlcrc_sort1_out.trc");
    std::vector<WriteTransaction> txns(20000);
    for (uint64_t i = 0; i < txns.size(); ++i) {
        txns[i].lineAddr = 7;
        txns[i].newData.setWord(0, i);
    }
    writeV1(in.path, txns);

    traceTool("sort " + in.path + " " + out.path +
              " --format v2 --mem-mb 1");

    const auto got =
        tracefile::gather(MappedTraceSource(out.path));
    ASSERT_EQ(got.size(), txns.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].lineAddr, 7u) << i;
        ASSERT_EQ(got[i].newData.word(0), i) << i;
    }
}

TEST(TraceTool, ConvertInfoAndVerifyCoverV3)
{
    TmpFile v2("wlcrc_tool_v2.trc"), v3("wlcrc_tool_v3.trc"),
        back("wlcrc_tool_back.trc");
    writeV2(v2.path, sampleStream(500, "libq", 71), 64);

    traceTool("convert " + v2.path + " " + v3.path +
              " --format v3 --codec lz --block-records 64");
    const auto info = traceTool("info " + v3.path + " --blocks");
    EXPECT_NE(info.find("WLCTRC03"), std::string::npos) << info;
    EXPECT_NE(info.find("ratio"), std::string::npos) << info;
    EXPECT_NE(info.find(" lz"), std::string::npos) << info;
    EXPECT_NE(info.find("codec"), std::string::npos) << info;
    EXPECT_NE(traceTool("verify " + v3.path).find("all checksums "
                                                  "match"),
              std::string::npos);

    traceTool("convert " + v3.path + " " + back.path +
              " --format v2 --block-records 64");
    EXPECT_EQ(slurpBytes(back.path), slurpBytes(v2.path));
}

#endif // WLCRC_TRACE_BIN

} // namespace
