/**
 * @file
 * Tests for the out-of-core trace store (src/tracefile): WLCTRC02
 * container round trips, corruption detection, block-index pruning,
 * the TransactionSource replay path, and the acceptance properties —
 * byte-identical wlcrc_sim CSV whether a stream is replayed from
 * memory, a WLCTRC01 dump or a WLCTRC02 container, with streamed
 * (block-bounded) memory use.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "common/crc32.hh"
#include "runner/grid.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "tracefile/format.hh"
#include "tracefile/mapped_trace.hh"
#include "tracefile/source.hh"
#include "tracefile/writer.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"

namespace
{

using namespace wlcrc;
using tracefile::MappedTrace;
using tracefile::MappedTraceSource;
using tracefile::ShardFilter;
using tracefile::TraceFileWriter;
using tracefile::TransactionSource;
using tracefile::V1FileSource;
using tracefile::VectorSource;
using trace::MixedSynthesizer;
using trace::TraceSynthesizer;
using trace::WorkloadProfile;
using trace::WriteTransaction;

std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** RAII deleter for test artifacts. */
struct TmpFile
{
    explicit TmpFile(std::string n) : path(tmpPath(std::move(n))) {}
    ~TmpFile() { std::filesystem::remove(path); }
    const std::string path;
};

std::vector<WriteTransaction>
sampleStream(uint64_t n, const char *workload = "gcc",
             uint64_t seed = 11)
{
    TraceSynthesizer synth(WorkloadProfile::byName(workload), seed);
    std::vector<WriteTransaction> txns;
    txns.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        txns.push_back(synth.next());
    return txns;
}

void
writeV2(const std::string &path,
        const std::vector<WriteTransaction> &txns,
        uint32_t recordsPerBlock)
{
    TraceFileWriter writer(path, recordsPerBlock);
    for (const auto &t : txns)
        writer.write(t);
    writer.close();
}

void
writeV1(const std::string &path,
        const std::vector<WriteTransaction> &txns)
{
    trace::TraceWriter writer(path);
    for (const auto &t : txns)
        writer.write(t);
}

/** Flip one byte of a file in place. */
void
corruptByte(const std::string &path, std::uint64_t offset)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char c;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

// -------------------------------------------------------------- crc32

TEST(Crc32, MatchesKnownVectors)
{
    EXPECT_EQ(crc32("", 0), 0u);
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    // Incremental checksumming continues a message.
    const uint32_t part = crc32("12345", 5);
    EXPECT_EQ(crc32("6789", 4, part), 0xcbf43926u);
}

// ------------------------------------------------------ format basics

TEST(TraceFormat, RecordCodecRoundTrips)
{
    const auto txns = sampleStream(50);
    uint8_t buf[tracefile::recordBytes];
    for (const auto &t : txns) {
        tracefile::encodeRecord(buf, t);
        const auto back = tracefile::decodeRecord(buf);
        EXPECT_EQ(back.lineAddr, t.lineAddr);
        EXPECT_EQ(back.oldData, t.oldData);
        EXPECT_EQ(back.newData, t.newData);
    }
}

TEST(TraceFormat, RangeHasResiduePredicates)
{
    // Unfiltered and wide ranges always intersect.
    EXPECT_TRUE(tracefile::rangeHasResidue(5, 5, 1, 0));
    EXPECT_TRUE(tracefile::rangeHasResidue(0, 63, 64, 17));
    EXPECT_TRUE(tracefile::rangeHasResidue(100, 163, 64, 0));
    // Narrow range [8, 11] mod 64 covers residues 8..11 only.
    for (unsigned r = 0; r < 64; ++r)
        EXPECT_EQ(tracefile::rangeHasResidue(8, 11, 64, r),
                  r >= 8 && r <= 11);
    // Wrapped interval: [62, 65] mod 64 covers {62, 63, 0, 1}.
    for (unsigned r = 0; r < 64; ++r)
        EXPECT_EQ(tracefile::rangeHasResidue(62, 65, 64, r),
                  r >= 62 || r <= 1);
    // Single-address range.
    EXPECT_TRUE(tracefile::rangeHasResidue(130, 130, 64, 2));
    EXPECT_FALSE(tracefile::rangeHasResidue(130, 130, 64, 3));
}

TEST(TraceFormat, DetectFormatSniffsBothMagics)
{
    TmpFile v1("wlcrc_detect_v1.trc"), v2("wlcrc_detect_v2.trc"),
        junk("wlcrc_detect_junk.trc");
    const auto txns = sampleStream(10);
    writeV1(v1.path, txns);
    writeV2(v2.path, txns, 4);
    {
        std::ofstream os(junk.path, std::ios::binary);
        os << "GARBAGEFILE";
    }
    EXPECT_EQ(tracefile::detectFormat(v1.path),
              tracefile::TraceFormat::v1);
    EXPECT_EQ(tracefile::detectFormat(v2.path),
              tracefile::TraceFormat::v2);
    EXPECT_THROW(tracefile::detectFormat(junk.path),
                 std::runtime_error);
    EXPECT_THROW(tracefile::detectFormat(tmpPath("wlcrc_nope.trc")),
                 std::runtime_error);
}

// ------------------------------------------------- container round trip

TEST(TraceFileWriter, RoundTripsThroughMappedTrace)
{
    TmpFile file("wlcrc_v2_roundtrip.trc");
    const auto txns = sampleStream(1000);
    writeV2(file.path, txns, 64);

    MappedTrace trace(file.path);
    EXPECT_EQ(trace.records(), 1000u);
    EXPECT_EQ(trace.recordsPerBlock(), 64u);
    EXPECT_EQ(trace.blockCount(), (1000 + 63) / 64);
    EXPECT_EQ(trace.verifyAll(), 1000u);

    // Random access decodes the exact records, in order.
    for (uint64_t i = 0; i < trace.records(); ++i) {
        const auto t = trace.record(i);
        ASSERT_EQ(t.lineAddr, txns[i].lineAddr) << i;
        ASSERT_EQ(t.oldData, txns[i].oldData) << i;
        ASSERT_EQ(t.newData, txns[i].newData) << i;
    }
    EXPECT_THROW(trace.record(1000), std::runtime_error);

    // The final block holds the remainder; index min/max are exact.
    const auto &last = trace.blockInfo(trace.blockCount() - 1);
    EXPECT_EQ(last.count, 1000 % 64);
    for (uint64_t b = 0; b < trace.blockCount(); ++b) {
        const auto &info = trace.blockInfo(b);
        uint64_t lo = ~uint64_t{0}, hi = 0;
        for (uint32_t i = 0; i < info.count; ++i) {
            const auto addr = trace.recordInBlock(b, i).lineAddr;
            lo = std::min(lo, addr);
            hi = std::max(hi, addr);
        }
        EXPECT_EQ(info.minAddr, lo) << b;
        EXPECT_EQ(info.maxAddr, hi) << b;
    }
}

TEST(TraceFileWriter, EmptyTraceIsValid)
{
    TmpFile file("wlcrc_v2_empty.trc");
    writeV2(file.path, {}, 16);
    MappedTrace trace(file.path);
    EXPECT_EQ(trace.records(), 0u);
    EXPECT_EQ(trace.blockCount(), 0u);
    EXPECT_EQ(trace.verifyAll(), 0u);
    auto cursor = MappedTraceSource(file.path).open({});
    EXPECT_FALSE(cursor->next());
}

TEST(TraceFileWriter, RejectsZeroBlockCapacityAndWriteAfterClose)
{
    TmpFile file("wlcrc_v2_badcap.trc");
    EXPECT_THROW(TraceFileWriter(file.path, 0),
                 std::invalid_argument);
    TraceFileWriter writer(file.path, 4);
    writer.write(WriteTransaction{});
    writer.close();
    writer.close(); // idempotent
    EXPECT_THROW(writer.write(WriteTransaction{}),
                 std::runtime_error);
}

// -------------------------------------------------- corruption paths

TEST(MappedTrace, RejectsBadMagic)
{
    TmpFile file("wlcrc_v2_badmagic.trc");
    writeV2(file.path, sampleStream(20), 8);
    corruptByte(file.path, 0); // header magic
    EXPECT_THROW(MappedTrace{file.path}, std::runtime_error);
}

TEST(MappedTrace, RejectsTruncatedTrailer)
{
    TmpFile file("wlcrc_v2_trunc.trc");
    writeV2(file.path, sampleStream(20), 8);
    const auto full = std::filesystem::file_size(file.path);
    std::filesystem::resize_file(file.path, full - 7);
    EXPECT_THROW(MappedTrace{file.path}, std::runtime_error);
}

TEST(MappedTrace, RejectsCorruptFooterIndex)
{
    TmpFile file("wlcrc_v2_badindex.trc");
    const auto txns = sampleStream(20);
    writeV2(file.path, txns, 8);
    // First index entry starts right after the record area.
    const uint64_t indexOffset =
        tracefile::headerBytes +
        txns.size() * uint64_t{tracefile::recordBytes};
    corruptByte(file.path, indexOffset + 9); // a minAddr byte
    try {
        MappedTrace trace(file.path);
        FAIL() << "corrupt index accepted";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("index checksum"),
                  std::string::npos)
            << err.what();
    }
}

TEST(MappedTrace, CorruptBlockFailsVerifyAndCursor)
{
    TmpFile file("wlcrc_v2_badblock.trc");
    writeV2(file.path, sampleStream(100), 16);
    // Flip a payload byte inside block 2.
    corruptByte(file.path, tracefile::headerBytes +
                               2ull * 16 * tracefile::recordBytes +
                               40);
    MappedTrace trace(file.path); // structure is still sound
    EXPECT_NO_THROW(trace.verifyBlock(0));
    EXPECT_THROW(trace.verifyBlock(2), std::runtime_error);
    EXPECT_THROW(trace.verifyAll(), std::runtime_error);

    // A streaming replay trips over the bad block, not past it.
    auto source = std::make_shared<MappedTraceSource>(file.path);
    auto cursor = source->open({});
    EXPECT_THROW(
        [&] {
            while (cursor->next()) {
            }
        }(),
        std::runtime_error);

    // And through the runner the spec fails cleanly, per spec.
    runner::ExperimentSpec spec;
    spec.scheme = "Baseline";
    spec.source = source;
    const auto results = runner::ExperimentRunner().run({spec});
    ASSERT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("checksum"), std::string::npos)
        << results[0].error;
}

// ------------------------------------------------------- v1 satellite

TEST(TraceReader, TruncatedTrailingRecordThrowsWithOffset)
{
    TmpFile file("wlcrc_v1_truncated.trc");
    writeV1(file.path, sampleStream(3));
    // Chop the last record mid-payload: 8 B magic + 3 records, minus
    // 50 bytes leaves record 2 torn.
    const auto full = std::filesystem::file_size(file.path);
    std::filesystem::resize_file(file.path, full - 50);

    trace::TraceReader reader(file.path);
    EXPECT_TRUE(reader.read());
    EXPECT_TRUE(reader.read());
    try {
        reader.read();
        FAIL() << "truncated record read as clean EOF";
    } catch (const std::runtime_error &err) {
        const std::string what = err.what();
        // Offset of the torn record: 8 + 2 * 136.
        EXPECT_NE(what.find("truncated record"), std::string::npos);
        EXPECT_NE(what.find("byte offset 280"), std::string::npos)
            << what;
    }
}

TEST(V1FileSource, CountsRecordsFromFileSize)
{
    TmpFile file("wlcrc_v1_count.trc");
    writeV1(file.path, sampleStream(123));
    V1FileSource source(file.path);
    EXPECT_EQ(source.records(), 123u);
    EXPECT_EQ(tracefile::gather(source).size(), 123u);
}

// ---------------------------------------------------------- pruning

TEST(MappedTraceSource, ShardCursorPrunesByBlockAddressRange)
{
    // Sequential line addresses make blocks narrow address windows:
    // with 8-record blocks and a 64-way shard split, a shard's
    // residue class appears in 1/8 of the blocks. The index must
    // prune the rest without decoding them.
    TmpFile file("wlcrc_v2_pruning.trc");
    std::vector<WriteTransaction> txns(4096);
    for (uint64_t i = 0; i < txns.size(); ++i)
        txns[i].lineAddr = i;
    writeV2(file.path, txns, 8);

    MappedTraceSource source(file.path);
    ASSERT_EQ(source.trace().blockCount(), 512u);

    std::size_t yielded_total = 0;
    for (unsigned shard = 0; shard < 64; ++shard) {
        auto cursor = source.open(ShardFilter{64, shard});
        std::size_t yielded = 0;
        while (auto t = cursor->next()) {
            EXPECT_EQ(t->lineAddr % 64, shard);
            ++yielded;
        }
        yielded_total += yielded;
        EXPECT_EQ(yielded, 4096u / 64);
        // Only blocks whose 8-address window holds this residue were
        // decoded: 64 of 512, an 8x pruning win.
        EXPECT_EQ(cursor->blocksVisited(), 64u) << "shard " << shard;
    }
    EXPECT_EQ(yielded_total, txns.size()); // partition is exact

    // An unfiltered cursor visits everything.
    auto all = source.open({});
    while (all->next()) {
    }
    EXPECT_EQ(all->blocksVisited(), 512u);
}

// ------------------------------------- replay equivalence (acceptance)

std::string
replayCsv(const std::shared_ptr<const TransactionSource> &source,
          unsigned jobs, unsigned shards)
{
    runner::ExperimentGrid grid;
    grid.schemes({"Baseline", "WLCRC-16"})
        .sources({source})
        .shards(shards)
        .seed(21);
    const auto results =
        runner::ExperimentRunner({jobs, nullptr}).run(grid);
    for (const auto &r : results) {
        EXPECT_TRUE(r.ok) << r.error;
    }
    std::ostringstream os;
    runner::CsvReporter().write(os, results);
    return os.str();
}

TEST(ReplayEquivalence, VectorV1AndV2ProduceIdenticalCsv)
{
    // The acceptance property: one stream, three containers, one
    // byte-exact report — sharded, to exercise the filtered cursors.
    TmpFile v1("wlcrc_equiv_v1.trc"), v2("wlcrc_equiv_v2.trc");
    const auto txns = sampleStream(1500, "milc", 29);
    writeV1(v1.path, txns);
    writeV2(v2.path, txns, 64);

    const auto fromVector = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(txns));
    const auto fromV1 = tracefile::openTraceSource(v1.path);
    const auto fromV2 = tracefile::openTraceSource(v2.path);

    const auto csvVector = replayCsv(fromVector, 2, 4);
    EXPECT_FALSE(csvVector.empty());
    EXPECT_EQ(csvVector, replayCsv(fromV1, 2, 4));
    EXPECT_EQ(csvVector, replayCsv(fromV2, 2, 4));
}

TEST(ReplayEquivalence, V2ReplayIsIdenticalAcrossJobCounts)
{
    TmpFile v2("wlcrc_jobs_v2.trc");
    writeV2(v2.path, sampleStream(1200, "lesl", 31), 128);
    const auto source = tracefile::openTraceSource(v2.path);
    const auto csv1 = replayCsv(source, 1, 4);
    const auto csv4 = replayCsv(source, 4, 4);
    EXPECT_FALSE(csv1.empty());
    EXPECT_EQ(csv1, csv4);
}

TEST(ReplayEquivalence, StreamedReplayIsBoundedByBlockSize)
{
    // A trace whose record payload dwarfs the cursor's buffer must
    // still replay correctly: proof that replay streams per block
    // instead of slurping. 2000 records x 136 B = 272 kB payload vs
    // a 4-record (544 B) block buffer.
    TmpFile v2("wlcrc_stream_bound.trc");
    const auto txns = sampleStream(2000, "zeus", 37);
    writeV2(v2.path, txns, 4);

    const auto source = tracefile::openTraceSource(v2.path);
    auto cursor = source->open({});
    const std::size_t payload =
        txns.size() * tracefile::recordBytes;
    EXPECT_EQ(cursor->bufferBytes(),
              4u * tracefile::recordBytes);
    EXPECT_LT(cursor->bufferBytes() * 100, payload);

    const auto fromVector = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(txns));
    EXPECT_EQ(replayCsv(source, 2, 2), replayCsv(fromVector, 2, 2));
}

// ------------------------------------------------- grid source axis

TEST(ExperimentGrid, SourceAxisExpandsSourceMajor)
{
    const auto a = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(
            sampleStream(10)));
    const auto b = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(
            sampleStream(20)));
    a->setLabel("trace-a");
    b->setLabel("trace-b");
    const auto specs = runner::ExperimentGrid()
                           .sources({a, b})
                           .schemes({"Baseline", "WLCRC-16"})
                           .expand();
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].sourceName(), "trace-a");
    EXPECT_EQ(specs[1].sourceName(), "trace-a");
    EXPECT_EQ(specs[2].sourceName(), "trace-b");
    EXPECT_EQ(specs[0].scheme, "Baseline");
    EXPECT_EQ(specs[1].scheme, "WLCRC-16");
    EXPECT_EQ(runner::ExperimentGrid()
                  .sources({a, b})
                  .schemes({"Baseline", "WLCRC-16"})
                  .size(),
              4u);
}

TEST(ExperimentGrid, DuplicateSourceLabelsThrow)
{
    const auto a = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(
            sampleStream(10)));
    const auto b = std::make_shared<VectorSource>(
        std::make_shared<std::vector<WriteTransaction>>(
            sampleStream(10)));
    EXPECT_THROW(
        runner::ExperimentGrid().sources({a, b}).expand(),
        std::invalid_argument);
    EXPECT_THROW(
        runner::ExperimentGrid().sources({nullptr}).expand(),
        std::invalid_argument);
}

// --------------------------------------------------- mixed workloads

TEST(MixedSynthesizer, DeterministicDisjointWindowsAndCoherent)
{
    const std::vector<MixedSynthesizer::Program> programs = {
        {"gcc", 2.0}, {"libq", 1.0}};
    MixedSynthesizer a(programs, 5), b(programs, 5);
    const uint64_t gccFootprint =
        WorkloadProfile::byName("gcc").footprintLines;

    std::unordered_map<uint64_t, Line512> image;
    std::size_t inFirstWindow = 0;
    for (int i = 0; i < 4000; ++i) {
        const auto ta = a.next();
        const auto tb = b.next();
        ASSERT_EQ(ta.lineAddr, tb.lineAddr);
        ASSERT_EQ(ta.newData, tb.newData);

        // Address windows are disjoint per program.
        inFirstWindow += ta.lineAddr < gccFootprint;
        // Coherent image across the blend: old == last new.
        const auto it = image.find(ta.lineAddr);
        if (it != image.end())
            ASSERT_EQ(ta.oldData, it->second) << "write " << i;
        image[ta.lineAddr] = ta.newData;
    }
    EXPECT_EQ(a.baseOf(0), 0u);
    EXPECT_EQ(a.baseOf(1), gccFootprint);
    // Weighted 2:1 — the gcc window should take roughly 2/3.
    EXPECT_GT(inFirstWindow, 4000 * 0.55);
    EXPECT_LT(inFirstWindow, 4000 * 0.78);
}

TEST(MixedSynthesizer, RejectsBadPrograms)
{
    EXPECT_THROW(MixedSynthesizer({}, 1), std::invalid_argument);
    EXPECT_THROW(MixedSynthesizer({{"nope", 1.0}}, 1),
                 std::invalid_argument);
    EXPECT_THROW(MixedSynthesizer({{"gcc", 0.0}}, 1),
                 std::invalid_argument);
}

// -------------------------------------------------------- conversion

TEST(Conversion, V1ToV2AndBackPreservesEveryRecord)
{
    TmpFile v1("wlcrc_conv_v1.trc"), v2("wlcrc_conv_v2.trc"),
        back("wlcrc_conv_back.trc");
    const auto txns = sampleStream(700, "cann", 41);
    writeV1(v1.path, txns);

    // v1 -> v2 via the streaming cursor (what `convert` does).
    {
        auto cursor = V1FileSource(v1.path).open({});
        TraceFileWriter writer(v2.path, 32);
        while (auto t = cursor->next())
            writer.write(*t);
        writer.close();
    }
    // v2 -> v1.
    {
        auto cursor = MappedTraceSource(v2.path).open({});
        trace::TraceWriter writer(back.path);
        while (auto t = cursor->next())
            writer.write(*t);
    }
    // The v1 bytes round-trip exactly: same record encoding.
    std::ifstream f1(v1.path, std::ios::binary),
        f2(back.path, std::ios::binary);
    std::stringstream s1, s2;
    s1 << f1.rdbuf();
    s2 << f2.rdbuf();
    EXPECT_EQ(s1.str(), s2.str());
    EXPECT_FALSE(s1.str().empty());
}

} // namespace
