/**
 * @file
 * Execution-backend equivalence: serial, thread and process
 * execution of the same grid must produce byte-identical reports —
 * a backend relocates work, it never changes results. The process
 * cases exercise the real `wlcrc_sim --worker` protocol end to end
 * (spec temp file out, JSON report back), including in-band error
 * propagation and the inline fallback for closure-bearing specs.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "runner/backend.hh"
#include "runner/grid.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "tracefile/source.hh"
#include "tracefile/writer.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;
using runner::ExperimentGrid;
using runner::ExperimentResult;
using runner::ExperimentRunner;
using runner::ExperimentSpec;
using runner::makeBackend;
using runner::ProcessBackend;
using runner::RunnerOptions;
using runner::SerialBackend;
using runner::ThreadBackend;

std::string
csvOf(const std::vector<ExperimentResult> &results)
{
    std::ostringstream os;
    runner::CsvReporter().write(os, results);
    return os.str();
}

ExperimentGrid
smallGrid()
{
    return ExperimentGrid()
        .schemes({"Baseline", "WLCRC-16"})
        .workloads({"lesl", "gcc"})
        .lines(60)
        .seed(3)
        .shards(3);
}

std::string
runWith(std::shared_ptr<const runner::ExecutionBackend> backend,
        const ExperimentGrid &grid, unsigned jobs = 2)
{
    RunnerOptions opts;
    opts.jobs = jobs;
    opts.backend = std::move(backend);
    return csvOf(ExperimentRunner(opts).run(grid));
}

TEST(Backends, SerialThreadAndProcessAreByteIdentical)
{
    const auto grid = smallGrid();
    const std::string thread =
        runWith(std::make_shared<ThreadBackend>(), grid);
    EXPECT_EQ(runWith(std::make_shared<SerialBackend>(), grid),
              thread);
    EXPECT_EQ(runWith(nullptr, grid), thread) << "default backend";
    EXPECT_EQ(
        runWith(std::make_shared<ProcessBackend>(WLCRC_SIM_BIN),
                grid),
        thread);
}

TEST(Backends, ProcessBackendReplaysTraceFilesByteIdentically)
{
    namespace fs = std::filesystem;
    const fs::path path =
        fs::path(::testing::TempDir()) / "wlcrc_backend.trc";
    {
        tracefile::TraceFileWriter w(path.string(), 16);
        trace::WriteTransaction t{};
        for (uint64_t i = 0; i < 80; ++i) {
            t.lineAddr = (i * 7) % 23;
            t.newData.setWord(0, i * 0x9e3779b97f4a7c15ULL);
            w.write(t);
        }
        w.close();
    }
    const auto grid =
        ExperimentGrid()
            .schemes({"Baseline", "WLCRC-16"})
            .sources({tracefile::openTraceSource(path.string())})
            .seed(5)
            .shards(4);
    EXPECT_EQ(
        runWith(std::make_shared<ProcessBackend>(WLCRC_SIM_BIN),
                grid),
        runWith(std::make_shared<ThreadBackend>(), grid));
}

TEST(Backends, LifetimeSweepIsBackendAndJobCountInvariant)
{
    // A lifetime sweep (leveler x endurance over a workload) runs
    // single-sharded but must still be byte-identical wherever and
    // however parallel it executes — including forked wlcrc_sim
    // workers, whose JSON report carries the full lifetime block.
    const auto grid =
        ExperimentGrid()
            .schemes({"Baseline", "WLCRC-16"})
            .workloads({"gcc"})
            .lines(150)
            .seed(3)
            .levelers({wearlevel::parseLeveler("none"),
                       wearlevel::parseLeveler("start-gap:p8:r16")})
            .endurances({wearlevel::parseEndurance("80:0.2")})
            .lifetime();
    const std::string thread =
        runWith(std::make_shared<ThreadBackend>(), grid);
    EXPECT_EQ(runWith(std::make_shared<SerialBackend>(), grid),
              thread);
    EXPECT_EQ(
        runWith(std::make_shared<ProcessBackend>(WLCRC_SIM_BIN),
                grid),
        thread);
    EXPECT_EQ(runWith(std::make_shared<ThreadBackend>(), grid, 1),
              runWith(std::make_shared<ThreadBackend>(), grid, 4));
}

TEST(Backends, ProcessBackendPropagatesWorkerErrorsInBand)
{
    ExperimentSpec good;
    good.scheme = "Baseline";
    good.workload = "lesl";
    good.lines = 40;
    ExperimentSpec bad = good;
    bad.scheme = "no-such-scheme";

    RunnerOptions opts;
    opts.jobs = 2;
    opts.backend = std::make_shared<ProcessBackend>(WLCRC_SIM_BIN);
    const auto results =
        ExperimentRunner(opts).run({good, bad});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("no-such-scheme"),
              std::string::npos)
        << results[1].error;
}

TEST(Backends, ProcessBackendFallsBackInlineForClosureSpecs)
{
    // codecFactory cannot cross a process boundary; the backend
    // must run such specs inline and still match in-process output.
    std::vector<runner::SchemeDef> defs = {
        {"factory-baseline", [](const pcm::EnergyModel &e) {
             return core::makeCodec("Baseline", e);
         }}};
    const auto grid = ExperimentGrid()
                          .schemeDefs(defs)
                          .workloads({"lesl"})
                          .lines(50)
                          .seed(2)
                          .shards(2);
    EXPECT_EQ(
        runWith(std::make_shared<ProcessBackend>(WLCRC_SIM_BIN),
                grid),
        runWith(std::make_shared<ThreadBackend>(), grid));
}

TEST(Backends, BrokenWorkerBinaryFailsThePointNotTheRun)
{
    RunnerOptions opts;
    opts.jobs = 1;
    opts.backend =
        std::make_shared<ProcessBackend>("/no/such/worker");
    const auto results =
        ExperimentRunner(opts).run(smallGrid().expand());
    for (const auto &r : results) {
        EXPECT_FALSE(r.ok);
        EXPECT_NE(r.error.find("process backend"),
                  std::string::npos);
    }
}

TEST(Backends, MakeBackendValidatesNames)
{
    EXPECT_EQ(makeBackend("serial")->name(),
              std::string("serial"));
    EXPECT_EQ(makeBackend("thread")->name(),
              std::string("thread"));
    EXPECT_EQ(makeBackend("process", "/bin/true")->name(),
              std::string("process"));
    EXPECT_THROW(makeBackend("process"), std::invalid_argument);
    EXPECT_THROW(makeBackend("gpu"), std::invalid_argument);
}

} // namespace
