/**
 * @file
 * Unit + property tests for the compression substrate: WLC, FPC,
 * BDI, FPC+BDI and the COC bank.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/bdi.hh"
#include "compress/coc.hh"
#include "compress/fpc.hh"
#include "compress/fpc_bdi.hh"
#include "compress/wlc.hh"
#include "trace/value_model.hh"

namespace
{

using namespace wlcrc;
using compress::Bdi;
using compress::Coc;
using compress::Fpc;
using compress::FpcBdi;
using compress::Wlc;
using trace::LineType;
using trace::ValueModel;

Line512
lineOfWords(uint64_t w)
{
    Line512 line;
    for (unsigned i = 0; i < lineWords; ++i)
        line.setWord(i, w);
    return line;
}

// ---------------------------------------------------------------- WLC

TEST(Wlc, MsbRunLength)
{
    EXPECT_EQ(Wlc::msbRunLength(0), 64u);
    EXPECT_EQ(Wlc::msbRunLength(~uint64_t{0}), 64u);
    EXPECT_EQ(Wlc::msbRunLength(1), 63u);
    EXPECT_EQ(Wlc::msbRunLength(uint64_t{1} << 63), 1u);
    EXPECT_EQ(Wlc::msbRunLength(uint64_t{1} << 57), 6u);
    EXPECT_EQ(Wlc::msbRunLength(~(uint64_t{1} << 57)), 6u);
}

TEST(Wlc, LineCompressibleRequiresAllWords)
{
    Line512 line; // all zero: compressible at any k
    EXPECT_TRUE(Wlc::lineCompressible(line, 9));
    line.setWord(3, uint64_t{1} << 57); // run of 6
    EXPECT_TRUE(Wlc::lineCompressible(line, 6));
    EXPECT_FALSE(Wlc::lineCompressible(line, 7));
}

TEST(Wlc, SignExtendInvertsCompression)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        // Word compressible at k = 6: 5 reclaimed bits.
        uint64_t w = rng.next();
        const unsigned run = 6 + rng.next() % 10;
        // Force an MSB run of at least `run`.
        if (w >> 63)
            w |= ~uint64_t{0} << (64 - run);
        else
            w &= ~(~uint64_t{0} << (64 - run));
        ASSERT_GE(Wlc::msbRunLength(w), run);
        // Clobber the reclaimed bits, then decompress.
        const uint64_t garbled = w ^ (0x15ull << 59);
        EXPECT_EQ(Wlc::signExtendWord(garbled, 5), w);
    }
}

// ---------------------------------------------------------------- FPC

TEST(Fpc, ClassifiesPatterns)
{
    EXPECT_EQ(Fpc::classify(0), 0u);
    EXPECT_EQ(Fpc::classify(0x7), 1u);
    EXPECT_EQ(Fpc::classify(0xfffffff9u), 1u); // -7
    EXPECT_EQ(Fpc::classify(0x75), 2u);
    EXPECT_EQ(Fpc::classify(0x7ab5), 3u);
    EXPECT_EQ(Fpc::classify(0x0000b000u), 4u);
    EXPECT_EQ(Fpc::classify(0xababababu), 6u);
    EXPECT_EQ(Fpc::classify(0xdeadbeefu), 7u);
}

TEST(Fpc, ZeroLineCompressesToPrefixesOnly)
{
    const Fpc fpc;
    const auto s = fpc.compress(Line512());
    ASSERT_TRUE(s);
    EXPECT_EQ(s->size(), 16u * 3u);
}

TEST(Fpc, RoundTripStructuredLines)
{
    const Fpc fpc;
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
        Line512 line;
        for (unsigned c = 0; c < 16; ++c) {
            uint32_t w = 0;
            switch (rng.nextBelow(6)) {
              case 0: w = 0; break;
              case 1: w = rng.next() & 0x7; break;
              case 2:
                w = static_cast<uint32_t>(
                    -static_cast<int32_t>(rng.nextBelow(100)));
                break;
              case 3: w = rng.next() & 0xffff; break;
              case 4: {
                const uint32_t b = rng.next() & 0xff;
                w = b | (b << 8) | (b << 16) | (b << 24);
                break;
              }
              default: w = static_cast<uint32_t>(rng.next()); break;
            }
            line.setBits(c * 32, 32, w);
        }
        const auto s = fpc.compress(line);
        if (!s)
            continue; // line didn't beat 512 bits: nothing to check
        ASSERT_LT(s->size(), lineBits);
        EXPECT_EQ(fpc.decompress(*s), line);
    }
}

// ---------------------------------------------------------------- BDI

TEST(Bdi, ZeroAndRepeatedLines)
{
    const Bdi bdi;
    const auto z = bdi.compress(Line512());
    ASSERT_TRUE(z);
    EXPECT_EQ(z->size(), 4u);
    EXPECT_EQ(bdi.decompress(*z), Line512());

    const Line512 rep = lineOfWords(0xdeadbeefcafebabeull);
    const auto r = bdi.compress(rep);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->size(), 4u + 64u);
    EXPECT_EQ(bdi.decompress(*r), rep);
}

TEST(Bdi, Base8Delta1)
{
    const Bdi bdi;
    Line512 line;
    for (unsigned w = 0; w < lineWords; ++w)
        line.setWord(w, 0x1000000000ull + w * 3);
    const auto s = bdi.compress(line);
    ASSERT_TRUE(s);
    EXPECT_EQ(bdi.decompress(*s), line);
    // base(64) + imm mask(8) + deltas(8x8) + header(4)
    EXPECT_EQ(s->size(), 4u + 64u + 8u + 64u);
}

TEST(Bdi, MixedImmediates)
{
    const Bdi bdi;
    Line512 line;
    // Half near a large base, half near zero: BDI's implicit
    // zero-base immediates must kick in.
    for (unsigned w = 0; w < lineWords; ++w) {
        line.setWord(w, (w % 2) ? 0x123456780000ull + w
                                : uint64_t(w) * 7);
    }
    const auto s = bdi.compress(line);
    ASSERT_TRUE(s);
    EXPECT_EQ(bdi.decompress(*s), line);
}

TEST(Bdi, IncompressibleRandomLine)
{
    const Bdi bdi;
    Rng rng(3);
    Line512 line;
    for (unsigned w = 0; w < lineWords; ++w)
        line.setWord(w, rng.next());
    EXPECT_FALSE(bdi.compress(line).has_value());
}

TEST(Bdi, TwoDistantBasesDefeatIt)
{
    const Bdi bdi;
    Rng rng(33);
    Line512 line;
    for (unsigned w = 0; w < lineWords; ++w) {
        line.setWord(w, trace::ValueModel::generateWord(
                            LineType::Integer, rng));
    }
    // Pointer-heavy integer lines mix two distant bases with
    // high-entropy middle bits: no BDI configuration fits.
    line.setWord(0, 0x0000500123456788ull);
    line.setWord(1, 0x00007f0987654320ull);
    line.setWord(2, 0x0000534aa5a5a5a0ull);
    line.setWord(3, 0x00007f3c3c3c3c38ull);
    EXPECT_FALSE(bdi.compress(line).has_value());
}

class BdiConfigs
    : public ::testing::TestWithParam<Bdi::Config>
{
};

TEST_P(BdiConfigs, RoundTripWithinDeltaRange)
{
    const auto cfg = GetParam();
    Rng rng(cfg.valueBytes * 10 + cfg.deltaBytes);
    Line512 line;
    const unsigned n = 64 / cfg.valueBytes;
    const uint64_t base = rng.next() >> 8;
    const uint64_t half =
        uint64_t{1} << (cfg.deltaBytes * 8 - 1);
    for (unsigned i = 0; i < n; ++i) {
        const uint64_t delta = rng.nextBelow(half);
        line.setBits(i * cfg.valueBytes * 8, cfg.valueBytes * 8,
                     base + delta);
    }
    const auto payload = Bdi::tryConfig(line, cfg);
    ASSERT_TRUE(payload);
    EXPECT_EQ(Bdi::undoConfig(*payload, cfg), line);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, BdiConfigs,
    ::testing::Values(Bdi::Config{8, 1}, Bdi::Config{8, 2},
                      Bdi::Config{8, 4}, Bdi::Config{4, 1},
                      Bdi::Config{4, 2}, Bdi::Config{2, 1}));

// ------------------------------------------------------------ FPC+BDI

TEST(FpcBdi, PicksBetterOfBoth)
{
    const FpcBdi both;
    const Fpc fpc;
    const Bdi bdi;
    Rng rng(5);
    for (int i = 0; i < 300; ++i) {
        const auto type =
            static_cast<LineType>(rng.nextBelow(trace::numLineTypes));
        const Line512 line = ValueModel::generateLine(type, rng);
        const auto s = both.compress(line);
        const auto f = fpc.compress(line);
        const auto b = bdi.compress(line);
        if (!s) {
            EXPECT_FALSE(f || b);
            continue;
        }
        unsigned best = lineBits;
        if (f)
            best = std::min(best, f->size());
        if (b)
            best = std::min(best, b->size());
        EXPECT_EQ(s->size(), best + 1); // +1 selector bit
        EXPECT_EQ(both.decompress(*s), line);
    }
}

// ---------------------------------------------------------------- COC

TEST(Coc, RoundTripAcrossLineTypes)
{
    const Coc coc;
    Rng rng(6);
    for (int i = 0; i < 500; ++i) {
        const auto type =
            static_cast<LineType>(rng.nextBelow(trace::numLineTypes));
        const Line512 line = ValueModel::generateLine(type, rng);
        const auto s = coc.compress(line);
        if (s)
            EXPECT_EQ(coc.decompress(*s), line);
    }
}

TEST(Coc, CoversMoreThanFpcBdi)
{
    // The coverage-oriented bank must compress (to any size) at
    // least everything FPC+BDI compresses, and strictly more lines
    // of the mid-magnitude class.
    const Coc coc;
    const FpcBdi fpcbdi;
    Rng rng(7);
    unsigned coc_ok = 0, fpcbdi_ok = 0;
    for (int i = 0; i < 400; ++i) {
        const Line512 line =
            ValueModel::generateLine(LineType::Mid6, rng);
        coc_ok += coc.compress(line).has_value();
        fpcbdi_ok += fpcbdi.compress(line).has_value();
    }
    EXPECT_GT(coc_ok, 350u);
    EXPECT_GT(coc_ok, fpcbdi_ok);
}

TEST(Coc, SignPackHandlesNegativeRuns)
{
    const Coc coc;
    Line512 line;
    Rng rng(8);
    for (unsigned w = 0; w < lineWords; ++w) {
        // Mid-magnitude negative values: MSB run of 1s.
        line.setWord(w, ~((uint64_t{1} << 57) | rng.nextBelow(1u << 20)));
    }
    const auto s = coc.compress(line);
    ASSERT_TRUE(s);
    EXPECT_LE(s->size(), 485u);
    EXPECT_EQ(coc.decompress(*s), line);
}

TEST(Coc, BankSizeMatchesSpirit)
{
    // Kim et al. use 28 compressors; our bank is the same order.
    EXPECT_GE(Coc::bankSize(), 20u);
}

} // namespace
