/**
 * @file
 * Unit + property tests for the ECC substrate: GF(2^m) arithmetic,
 * the shortened BCH(t=2) code used by DIN, and the (72,64) extended
 * Hamming code behind FlipMin's coset masks.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/bch.hh"
#include "ecc/gf2m.hh"
#include "ecc/hamming.hh"

namespace
{

using wlcrc::Rng;
using wlcrc::ecc::Bch;
using wlcrc::ecc::GF2m;
using wlcrc::ecc::Hamming7264;

class GF2mParam : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GF2mParam, FieldAxioms)
{
    const GF2m f(GetParam());
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        const uint32_t a =
            static_cast<uint32_t>(rng.nextBelow(f.n())) + 1;
        const uint32_t b =
            static_cast<uint32_t>(rng.nextBelow(f.n())) + 1;
        // Commutativity, inverses, associativity with division.
        EXPECT_EQ(f.mul(a, b), f.mul(b, a));
        EXPECT_EQ(f.mul(a, f.inv(a)), 1u);
        EXPECT_EQ(f.div(f.mul(a, b), b), a);
        EXPECT_EQ(f.mul(a, 1), a);
        EXPECT_EQ(f.mul(a, 0), 0u);
    }
}

TEST_P(GF2mParam, LogExpInverse)
{
    const GF2m f(GetParam());
    for (unsigned i = 0; i < f.n(); ++i)
        EXPECT_EQ(f.log(f.alphaPow(i)), i % f.n());
}

TEST_P(GF2mParam, PowMatchesRepeatedMul)
{
    const GF2m f(GetParam());
    const uint32_t g = f.alphaPow(1);
    uint32_t acc = 1;
    for (int k = 0; k < 20; ++k) {
        EXPECT_EQ(f.pow(g, k), acc);
        acc = f.mul(acc, g);
    }
    EXPECT_EQ(f.pow(g, -1), f.inv(g));
}

INSTANTIATE_TEST_SUITE_P(Fields, GF2mParam,
                         ::testing::Values(4u, 8u, 10u, 13u));

TEST(GF2m, RejectsBadDegree)
{
    EXPECT_THROW(GF2m(2), std::invalid_argument);
    EXPECT_THROW(GF2m(17), std::invalid_argument);
}

TEST(GF2m, RejectsNonPrimitivePoly)
{
    // x^4 + x^3 + x^2 + x + 1 is irreducible but not primitive.
    EXPECT_THROW(GF2m(4, 0b11111), std::invalid_argument);
}

TEST(Bch, DinParametersGiveTwentyParityBits)
{
    const Bch bch(10, 2, 492);
    EXPECT_EQ(bch.parityBits(), 20u);
    EXPECT_EQ(bch.codewordBits(), 512u);
}

TEST(Bch, CleanCodewordDecodesToZeroErrors)
{
    const Bch bch(10, 2, 492);
    Rng rng(1);
    std::vector<uint8_t> data(492);
    for (auto &b : data)
        b = rng.next() & 1;
    auto cw = bch.encode(data);
    EXPECT_EQ(bch.decode(cw), 0);
    for (unsigned i = 0; i < 492; ++i)
        EXPECT_EQ(cw[i], data[i]);
}

class BchErrors : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BchErrors, CorrectsSingleError)
{
    const Bch bch(10, 2, 492);
    std::vector<uint8_t> data(492, 0);
    data[37] = 1;
    data[401] = 1;
    const auto clean = bch.encode(data);
    auto corrupted = clean;
    corrupted[GetParam()] ^= 1;
    EXPECT_EQ(bch.decode(corrupted), 1);
    EXPECT_EQ(corrupted, clean);
}

TEST_P(BchErrors, CorrectsDoubleError)
{
    const Bch bch(10, 2, 492);
    Rng rng(GetParam());
    std::vector<uint8_t> data(492);
    for (auto &b : data)
        b = rng.next() & 1;
    const auto clean = bch.encode(data);
    auto corrupted = clean;
    const unsigned p1 = GetParam();
    const unsigned p2 = (GetParam() + 251) % 512;
    corrupted[p1] ^= 1;
    corrupted[p2] ^= 1;
    EXPECT_EQ(bch.decode(corrupted), 2);
    EXPECT_EQ(corrupted, clean);
}

INSTANTIATE_TEST_SUITE_P(Positions, BchErrors,
                         ::testing::Values(0u, 1u, 63u, 255u, 491u,
                                           492u, 500u, 511u));

TEST(Bch, RandomDoubleErrorsSweep)
{
    const Bch bch(10, 2, 492);
    Rng rng(99);
    std::vector<uint8_t> data(492);
    for (auto &b : data)
        b = rng.next() & 1;
    const auto clean = bch.encode(data);
    for (int trial = 0; trial < 50; ++trial) {
        auto corrupted = clean;
        const unsigned p1 =
            static_cast<unsigned>(rng.nextBelow(512));
        unsigned p2 = static_cast<unsigned>(rng.nextBelow(512));
        if (p2 == p1)
            p2 = (p2 + 1) % 512;
        corrupted[p1] ^= 1;
        corrupted[p2] ^= 1;
        ASSERT_EQ(bch.decode(corrupted), 2)
            << "positions " << p1 << "," << p2;
        ASSERT_EQ(corrupted, clean);
    }
}

TEST(Bch, SmallFieldConfig)
{
    // A toy (15, 7, t=2) BCH: 8 parity bits over GF(2^4).
    const Bch bch(4, 2, 7);
    EXPECT_EQ(bch.parityBits(), 8u);
    std::vector<uint8_t> data = {1, 0, 1, 1, 0, 0, 1};
    auto cw = bch.encode(data);
    cw[2] ^= 1;
    cw[9] ^= 1;
    EXPECT_EQ(bch.decode(cw), 2);
    for (unsigned i = 0; i < 7; ++i)
        EXPECT_EQ(cw[i], data[i]);
}

TEST(Bch, RejectsOversizedPayload)
{
    EXPECT_THROW(Bch(4, 2, 8), std::invalid_argument);
    EXPECT_THROW(Bch(10, 3, 100), std::invalid_argument);
}

TEST(Hamming, RoundTripNoError)
{
    const Hamming7264 h;
    Rng rng(4);
    for (int i = 0; i < 100; ++i) {
        const uint64_t data = rng.next();
        const auto [d, parity] = h.encode(data);
        int status = -1;
        EXPECT_EQ(h.decode(d, parity, status), data);
        EXPECT_EQ(status, 0);
    }
}

TEST(Hamming, CorrectsEverySingleDataBitError)
{
    const Hamming7264 h;
    const uint64_t data = 0xfeedfacecafebeefull;
    const auto [d, parity] = h.encode(data);
    for (unsigned bit = 0; bit < 64; ++bit) {
        int status = -1;
        const uint64_t corrupted = d ^ (uint64_t{1} << bit);
        EXPECT_EQ(h.decode(corrupted, parity, status), data)
            << "bit " << bit;
        EXPECT_EQ(status, 1);
    }
}

TEST(Hamming, DetectsDoubleDataBitError)
{
    const Hamming7264 h;
    const uint64_t data = 0x0123456789abcdefull;
    const auto [d, parity] = h.encode(data);
    int status = -1;
    h.decode(d ^ 0b11, parity, status);
    EXPECT_EQ(status, 2);
}

TEST(FlipMinMasks, DeterministicAndDistinct)
{
    const auto a = wlcrc::ecc::flipMinMasks(16, 0x51f0);
    const auto b = wlcrc::ecc::flipMinMasks(16, 0x51f0);
    ASSERT_EQ(a.size(), 16u);
    EXPECT_EQ(a[0], wlcrc::Line512()); // identity candidate
    for (unsigned i = 0; i < 16; ++i) {
        EXPECT_EQ(a[i], b[i]);
        for (unsigned j = i + 1; j < 16; ++j)
            EXPECT_NE(a[i], a[j]);
    }
}

} // namespace
