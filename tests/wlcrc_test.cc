/**
 * @file
 * Unit + property tests for the core contribution: word layouts
 * (Figure 6), the WLCRC codec at all four granularities, the
 * WLC+n-cosets codec, COC+4cosets, the multi-objective variant and
 * the codec factory.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "compress/wlc.hh"
#include "coset/baseline_codec.hh"
#include "trace/value_model.hh"
#include "wlcrc/coc_cosets_codec.hh"
#include "wlcrc/factory.hh"
#include "wlcrc/wlc_cosets_codec.hh"
#include "wlcrc/wlcrc_codec.hh"
#include "wlcrc/word_layout.hh"

namespace
{

using namespace wlcrc;
using core::WlcCosetsCodec;
using core::WlcrcCodec;
using core::WordLayout;
using pcm::EnergyModel;
using pcm::State;
using trace::LineType;
using trace::ValueModel;

std::vector<State>
randomStored(unsigned cells, Rng &rng)
{
    std::vector<State> stored(cells);
    for (auto &s : stored)
        s = pcm::stateFromIndex(
            static_cast<unsigned>(rng.nextBelow(4)));
    return stored;
}

/** A line guaranteed WLC-compressible at parameter @p k. */
Line512
compressibleLine(unsigned k, Rng &rng)
{
    Line512 line;
    for (unsigned w = 0; w < lineWords; ++w) {
        uint64_t v = rng.next();
        if (v >> 63)
            v |= ~uint64_t{0} << (64 - k);
        else
            v &= ~(~uint64_t{0} << (64 - k));
        line.setWord(w, v);
    }
    return line;
}

// -------------------------------------------------------- WordLayout

class LayoutParam : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LayoutParam, CellsPartitionTheWord)
{
    const WordLayout &l = WordLayout::restricted(GetParam());
    // Every cell 0..31 is owned by exactly one block or is aux-only.
    std::set<unsigned> owned;
    for (const auto &b : l.blocks) {
        for (unsigned c = b.loCell; c <= b.hiCell; ++c)
            EXPECT_TRUE(owned.insert(c).second) << "cell " << c;
    }
    for (unsigned c : l.auxOnlyCells)
        EXPECT_TRUE(owned.insert(c).second) << "aux cell " << c;
    EXPECT_EQ(owned.size(), 32u);
}

TEST_P(LayoutParam, SelectorBitsLiveInReclaimedRegion)
{
    const WordLayout &l = WordLayout::restricted(GetParam());
    const unsigned first_reclaimed = 64 - l.reclaimed;
    EXPECT_GE(l.groupBitPos, first_reclaimed);
    for (unsigned pos : l.blockBitPos)
        EXPECT_GE(pos, first_reclaimed);
    // Group + one bit per block exactly fills the reclaimed region.
    EXPECT_EQ(1 + l.blockBitPos.size(), l.reclaimed);
    EXPECT_EQ(l.k(), l.reclaimed + 1);
}

TEST_P(LayoutParam, DecodeOrderResolvesDependencies)
{
    const WordLayout &l = WordLayout::restricted(GetParam());
    // Walking decodeOrder, each block's selector bit must be either
    // in an aux-only cell or inside an already-decoded block.
    std::set<unsigned> known_cells(l.auxOnlyCells.begin(),
                                   l.auxOnlyCells.end());
    for (unsigned b : l.decodeOrder) {
        const unsigned sel_cell = l.blockBitPos[b] / 2;
        EXPECT_TRUE(known_cells.count(sel_cell))
            << "block " << b << " selector cell " << sel_cell;
        for (unsigned c = l.blocks[b].loCell;
             c <= l.blocks[b].hiCell; ++c)
            known_cells.insert(c);
    }
}

TEST_P(LayoutParam, CostCellsAreFullyInsideDataBits)
{
    const WordLayout &l = WordLayout::restricted(GetParam());
    for (const auto &b : l.blocks) {
        EXPECT_GE(b.loCostCell * 2, b.loBit);
        EXPECT_LE(b.hiCostCell * 2 + 1,
                  b.hiBit + (b.hiBit % 2 == 0 ? 1 : 0));
        EXPECT_LE(b.hiCostCell * 2 + 1, 63 - l.reclaimed + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Grains, LayoutParam,
                         ::testing::Values(8u, 16u, 32u));

TEST(WordLayout, Figure6Layout16)
{
    const WordLayout &l = WordLayout::restricted(16);
    EXPECT_EQ(l.reclaimed, 5u);
    EXPECT_EQ(l.k(), 6u);
    EXPECT_EQ(l.signBit, 58u);
    EXPECT_EQ(l.groupBitPos, 63u);
    ASSERT_EQ(l.blocks.size(), 4u);
    // The paper's 11-bit most significant block b58..b48.
    EXPECT_EQ(l.blocks[3].loBit, 48u);
    EXPECT_EQ(l.blocks[3].hiBit, 58u);
    EXPECT_EQ(l.blocks[3].hiCostCell, 28u);
    EXPECT_EQ(l.blocks[3].hiCell, 29u);
}

// ------------------------------------------------------------- WLCRC

class WlcrcParam : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WlcrcParam, RoundTripCompressibleLines)
{
    const EnergyModel e;
    const WlcrcCodec codec(e, GetParam());
    Rng rng(1000 + GetParam());
    std::vector<State> stored = randomStored(codec.cellCount(), rng);
    for (int i = 0; i < 300; ++i) {
        const Line512 data =
            compressibleLine(codec.compressionK(), rng);
        ASSERT_TRUE(codec.compressible(data));
        const auto target = codec.encode(data, stored);
        EXPECT_EQ(target[lineSymbols], State::S1);
        stored = target.toVector();
        ASSERT_EQ(codec.decode(stored), data) << "iter " << i;
    }
}

TEST_P(WlcrcParam, RoundTripIncompressibleLines)
{
    const EnergyModel e;
    const WlcrcCodec codec(e, GetParam());
    Rng rng(2000 + GetParam());
    std::vector<State> stored = randomStored(codec.cellCount(), rng);
    int raw_seen = 0;
    for (int i = 0; i < 200; ++i) {
        Line512 data;
        for (unsigned w = 0; w < lineWords; ++w)
            data.setWord(w, rng.next());
        const auto target = codec.encode(data, stored);
        if (!codec.compressible(data)) {
            EXPECT_EQ(target[lineSymbols], State::S2);
            ++raw_seen;
        }
        stored = target.toVector();
        ASSERT_EQ(codec.decode(stored), data);
    }
    EXPECT_GT(raw_seen, 150); // random lines are rarely compressible
}

TEST_P(WlcrcParam, RoundTripRealisticWorkloadData)
{
    const EnergyModel e;
    const WlcrcCodec codec(e, GetParam());
    Rng rng(3000 + GetParam());
    std::vector<State> stored = randomStored(codec.cellCount(), rng);
    for (int i = 0; i < 300; ++i) {
        const auto type = static_cast<LineType>(
            rng.nextBelow(trace::numLineTypes));
        const Line512 data = ValueModel::generateLine(type, rng);
        stored = codec.encode(data, stored).toVector();
        ASSERT_EQ(codec.decode(stored), data)
            << lineTypeName(type) << " iter " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Grains, WlcrcParam,
                         ::testing::Values(8u, 16u, 32u, 64u));

TEST(Wlcrc, CompressionKPerGranularity)
{
    const EnergyModel e;
    EXPECT_EQ(WlcrcCodec(e, 8).compressionK(), 9u);
    EXPECT_EQ(WlcrcCodec(e, 16).compressionK(), 6u);
    EXPECT_EQ(WlcrcCodec(e, 32).compressionK(), 4u);
    EXPECT_EQ(WlcrcCodec(e, 64).compressionK(), 3u);
}

TEST(Wlcrc, SpaceOverheadIsOneCell)
{
    const EnergyModel e;
    const WlcrcCodec codec(e, 16);
    // Section VI-A: < 0.4 % overhead = 1 cell per 256.
    EXPECT_EQ(codec.cellCount(), lineSymbols + 1);
}

TEST(Wlcrc, RejectsBadGranularity)
{
    const EnergyModel e;
    EXPECT_THROW(WlcrcCodec(e, 24), std::invalid_argument);
    EXPECT_THROW(WlcrcCodec(e, 128), std::invalid_argument);
}

TEST(Wlcrc, AuxCellsUseDefaultMappingLowStates)
{
    // Figure 6 / Section IX-A: an all-C1 encoding (aux bits all 0)
    // leaves the reclaimed cells in S1.
    const EnergyModel e;
    const WlcrcCodec codec(e, 16);
    Rng rng(42);
    // Stored all S1, write an all-zero line: C1 keeps everything at
    // S1 for free, so the aux-only cells (30, 31 per word) stay S1.
    std::vector<State> stored(codec.cellCount(), State::S1);
    const auto target = codec.encode(Line512(), stored);
    for (unsigned w = 0; w < lineWords; ++w) {
        EXPECT_EQ(target[w * 32 + 30], State::S1);
        EXPECT_EQ(target[w * 32 + 31], State::S1);
        EXPECT_TRUE(target.aux(w * 32 + 30));
        EXPECT_TRUE(target.aux(w * 32 + 31));
    }
}

TEST(Wlcrc, EncodingNeverCostsMoreThanAllC1)
{
    // The restricted selection includes "C1 everywhere" (all
    // selector bits 0, either group), so the chosen encoding of each
    // word can never cost more on its cost-cells than C1.
    const EnergyModel e;
    const WlcrcCodec codec(e, 16);
    const coset::BaselineCodec base(e);
    Rng rng(77);
    std::vector<State> stored = randomStored(codec.cellCount(), rng);
    for (int i = 0; i < 100; ++i) {
        const Line512 data = compressibleLine(6, rng);
        const auto target = codec.encode(data, stored);
        const std::vector<State> base_stored(
            stored.begin(), stored.begin() + lineSymbols);
        const auto raw = base.encode(data, base_stored);
        double enc = 0, c1 = 0;
        const auto &layout = WordLayout::restricted(16);
        for (unsigned w = 0; w < lineWords; ++w) {
            for (const auto &blk : layout.blocks) {
                for (unsigned c = blk.loCostCell;
                     c <= blk.hiCostCell; ++c) {
                    enc += e.writeEnergy(stored[w * 32 + c],
                                         target[w * 32 + c]);
                    c1 += e.writeEnergy(stored[w * 32 + c],
                                        raw[w * 32 + c]);
                }
            }
        }
        EXPECT_LE(enc, c1 + 1e-9);
        stored = target.toVector();
    }
}

// ------------------------------------------------- multi-objective

TEST(WlcrcMultiObjective, ReducesUpdatedCellsAtSmallEnergyCost)
{
    const EnergyModel e;
    const pcm::DisturbanceModel d;
    const pcm::WriteUnit unit(e, d);
    const WlcrcCodec plain(e, 16);
    const WlcrcCodec mo(e, 16, 0.01);
    Rng rng(88);

    double plain_energy = 0, mo_energy = 0;
    long plain_updated = 0, mo_updated = 0;
    std::vector<State> sp(plain.cellCount(), State::S1);
    std::vector<State> sm(mo.cellCount(), State::S1);
    Rng rng2(88);
    for (int i = 0; i < 400; ++i) {
        const auto type = static_cast<LineType>(i % 4); // biased mix
        const Line512 data = ValueModel::generateLine(type, rng);
        const auto tp = plain.encode(data, sp);
        const auto tm = mo.encode(data, sm);
        for (unsigned c = 0; c < plain.cellCount(); ++c) {
            plain_energy += e.writeEnergy(sp[c], tp[c]);
            plain_updated += sp[c] != tp[c];
            mo_energy += e.writeEnergy(sm[c], tm[c]);
            mo_updated += sm[c] != tm[c];
        }
        sp = tp.toVector();
        sm = tm.toVector();
        ASSERT_EQ(mo.decode(sm), data);
    }
    // Section VIII-D: fewer updated cells, energy within ~2 %.
    EXPECT_LE(mo_updated, plain_updated);
    EXPECT_LE(mo_energy, plain_energy * 1.03);
}

TEST(WlcrcMultiObjective, NameReflectsMode)
{
    const EnergyModel e;
    EXPECT_EQ(WlcrcCodec(e, 16).name(), "WLCRC-16");
    EXPECT_EQ(WlcrcCodec(e, 16, 0.01).name(), "WLCRC-16-mo");
}

// -------------------------------------------------- WLC + n cosets

class WlcCosetsParam
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(WlcCosetsParam, RoundTrip)
{
    const auto [ncand, gran] = GetParam();
    const EnergyModel e;
    const WlcCosetsCodec codec(e, ncand, gran);
    Rng rng(4000 + 10 * ncand + gran);
    std::vector<State> stored = randomStored(codec.cellCount(), rng);
    for (int i = 0; i < 200; ++i) {
        const Line512 data =
            (i % 3 == 0) ? compressibleLine(codec.compressionK(), rng)
                         : ValueModel::generateLine(
                               static_cast<LineType>(rng.nextBelow(
                                   trace::numLineTypes)),
                               rng);
        stored = codec.encode(data, stored).toVector();
        ASSERT_EQ(codec.decode(stored), data) << codec.name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WlcCosetsParam,
    ::testing::Combine(::testing::Values(3u, 4u),
                       ::testing::Values(8u, 16u, 32u, 64u)));

TEST(WlcCosets, ReclaimedBitsMatchSectionVI)
{
    const EnergyModel e;
    // "WLC has to reclaim 16, 8, 4 and 2 bits per word" for
    // granularities 8, 16, 32, 64.
    EXPECT_EQ(WlcCosetsCodec(e, 4, 8).reclaimedBits(), 16u);
    EXPECT_EQ(WlcCosetsCodec(e, 4, 16).reclaimedBits(), 8u);
    EXPECT_EQ(WlcCosetsCodec(e, 4, 32).reclaimedBits(), 4u);
    EXPECT_EQ(WlcCosetsCodec(e, 4, 64).reclaimedBits(), 2u);
}

TEST(WlcCosets, CoverageDropsWithFinerGranularity)
{
    // Figure 4's cliff: k = 5 compresses far more lines than k = 9.
    const EnergyModel e;
    const WlcCosetsCodec g32(e, 4, 32); // k = 5
    const WlcCosetsCodec g16(e, 4, 16); // k = 9
    Rng rng(99);
    unsigned ok32 = 0, ok16 = 0;
    for (int i = 0; i < 2000; ++i) {
        const Line512 data =
            ValueModel::generateLine(LineType::Mid6, rng);
        ok32 += g32.compressible(data);
        ok16 += g16.compressible(data);
    }
    EXPECT_GT(ok32, 1800u);
    EXPECT_LT(ok16, 400u);
}

// ------------------------------------------------------ COC+4cosets

TEST(CocCosets, RoundTripAllFormats)
{
    const EnergyModel e;
    const core::CocCosetsCodec codec(e);
    Rng rng(5000);
    std::vector<State> stored = randomStored(codec.cellCount(), rng);
    std::set<State> flags_seen;
    for (int i = 0; i < 400; ++i) {
        const auto type = static_cast<LineType>(
            rng.nextBelow(trace::numLineTypes));
        const Line512 data = ValueModel::generateLine(type, rng);
        const auto target = codec.encode(data, stored);
        flags_seen.insert(target[lineSymbols]);
        stored = target.toVector();
        ASSERT_EQ(codec.decode(stored), data)
            << lineTypeName(type) << " iter " << i;
    }
    // Compressed-16, compressed-32 and raw must all occur.
    EXPECT_EQ(flags_seen.size(), 3u);
}

// ----------------------------------------------------------- factory

TEST(Factory, BuildsEveryFigure8Scheme)
{
    const EnergyModel e;
    for (const auto &name : core::figure8Schemes()) {
        const auto codec = core::makeCodec(name, e);
        ASSERT_NE(codec, nullptr);
        // Codec names may append their granularity (6cosets-512,
        // WLC+4cosets-32) but must start with the scheme name.
        EXPECT_EQ(codec->name().rfind(name, 0), 0u) << codec->name();
        EXPECT_GE(codec->cellCount(), lineSymbols);
    }
}

TEST(Factory, RejectsUnknownScheme)
{
    const EnergyModel e;
    EXPECT_THROW(core::makeCodec("nonsense", e),
                 std::invalid_argument);
}

TEST(Factory, AllSchemesRoundTripTogether)
{
    const EnergyModel e;
    Rng rng(6000);
    std::vector<coset::CodecPtr> codecs;
    std::vector<std::vector<State>> stores;
    for (const auto &name : core::figure8Schemes()) {
        codecs.push_back(core::makeCodec(name, e));
        stores.emplace_back(codecs.back()->cellCount(), State::S1);
    }
    for (int i = 0; i < 60; ++i) {
        const auto type = static_cast<LineType>(
            rng.nextBelow(trace::numLineTypes));
        const Line512 data = ValueModel::generateLine(type, rng);
        for (size_t c = 0; c < codecs.size(); ++c) {
            stores[c] = codecs[c]->encode(data, stores[c]).toVector();
            ASSERT_EQ(codecs[c]->decode(stores[c]), data)
                << codecs[c]->name();
        }
    }
}

} // namespace
