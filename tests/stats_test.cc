/**
 * @file
 * Unit tests for the stats package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace
{

using wlcrc::stats::Histogram;
using wlcrc::stats::RunningStat;
using wlcrc::stats::StatSet;

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombinedStream)
{
    RunningStat all, a, b;
    for (int i = 0; i < 100; ++i) {
        const double x = i * 0.37 - 3;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, empty;
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(5);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10.0); // [0,40) + overflow
    for (double x : {0.0, 5.0, 9.99, 10.0, 25.0, 39.9, 40.0, 100.0})
        h.add(x);
    EXPECT_EQ(h.total(), 8u);
    EXPECT_EQ(h.bucketCount(0), 3u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, Cdf)
{
    Histogram h(10, 1.0);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_DOUBLE_EQ(h.cdfAt(5.0), 0.5);
    EXPECT_DOUBLE_EQ(h.cdfAt(10.0), 1.0);
}

TEST(StatSet, NamedAccumulation)
{
    StatSet set;
    set["energy"].add(10);
    set["energy"].add(20);
    set["cells"].add(3);
    EXPECT_EQ(set["energy"].count(), 2u);
    EXPECT_DOUBLE_EQ(set["energy"].mean(), 15.0);
    EXPECT_NE(set.find("cells"), nullptr);
    EXPECT_EQ(set.find("nope"), nullptr);
}

TEST(StatSet, MergeCombinesByName)
{
    StatSet all, a, b;
    for (int i = 0; i < 60; ++i) {
        const double x = 0.5 * i - 7;
        all["energy"].add(x);
        (i % 2 ? a : b)["energy"].add(x);
        if (i % 3 == 0) {
            all["cells"].add(i);
            (i % 2 ? a : b)["cells"].add(i);
        }
    }
    b["only_b"].add(42);
    a.merge(b);
    ASSERT_NE(a.find("energy"), nullptr);
    EXPECT_EQ(a.find("energy")->count(),
              all.find("energy")->count());
    EXPECT_NEAR(a.find("energy")->mean(),
                all.find("energy")->mean(), 1e-12);
    EXPECT_NEAR(a.find("energy")->variance(),
                all.find("energy")->variance(), 1e-9);
    EXPECT_EQ(a.find("cells")->count(), all.find("cells")->count());
    ASSERT_NE(a.find("only_b"), nullptr);
    EXPECT_DOUBLE_EQ(a.find("only_b")->mean(), 42.0);
}

TEST(StatSet, WritesCsv)
{
    StatSet set;
    set["a"].add(1);
    std::ostringstream os;
    set.write(os);
    EXPECT_NE(os.str().find("name,count,mean"), std::string::npos);
    EXPECT_NE(os.str().find("a,1,1"), std::string::npos);
}

} // namespace
