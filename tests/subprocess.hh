/**
 * @file
 * Shared test helper: run a shell command and capture its stdout.
 * Used by the golden-output bench harness and the wlcrc_sim --json
 * round-trip test.
 */

#ifndef WLCRC_TESTS_SUBPROCESS_HH
#define WLCRC_TESTS_SUBPROCESS_HH

#include <cstdio>
#include <stdexcept>
#include <string>

namespace wlcrc::test
{

/**
 * Run @p cmd via /bin/sh and return its stdout. @p exit_code gets
 * the raw pclose() status. Redirect stderr in the command string if
 * it should be discarded.
 */
inline std::string
captureStdout(const std::string &cmd, int &exit_code)
{
    FILE *pipe = ::popen(cmd.c_str(), "r");
    if (!pipe)
        throw std::runtime_error("popen failed: " + cmd);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0)
        out.append(buf, n);
    exit_code = ::pclose(pipe);
    return out;
}

} // namespace wlcrc::test

#endif // WLCRC_TESTS_SUBPROCESS_HH
