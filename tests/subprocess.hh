/**
 * @file
 * Shared test helpers: run a shell command and capture its stdout,
 * or spawn one in the background and reap (or kill) it later. Used
 * by the golden-output bench harness, the wlcrc_sim --json round
 * trip, and the distributed-backend suite's worker subprocesses.
 */

#ifndef WLCRC_TESTS_SUBPROCESS_HH
#define WLCRC_TESTS_SUBPROCESS_HH

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <stdexcept>
#include <string>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace wlcrc::test
{

/**
 * Run @p cmd via /bin/sh and return its stdout. @p exit_code gets
 * the raw pclose() status. Redirect stderr in the command string if
 * it should be discarded.
 */
inline std::string
captureStdout(const std::string &cmd, int &exit_code)
{
    FILE *pipe = ::popen(cmd.c_str(), "r");
    if (!pipe)
        throw std::runtime_error("popen failed: " + cmd);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0)
        out.append(buf, n);
    exit_code = ::pclose(pipe);
    return out;
}

/**
 * Start @p cmd via `/bin/sh -c` without waiting, returning the
 * shell's pid. Use `exec some-binary args` as the command when the
 * test needs to signal the binary itself (SIGKILL fault injection):
 * exec replaces the shell, so the returned pid IS the binary's.
 */
inline pid_t
spawnBackground(const std::string &cmd)
{
    const pid_t pid = ::fork();
    if (pid < 0)
        throw std::runtime_error("fork failed: " + cmd);
    if (pid == 0) {
        ::execl("/bin/sh", "sh", "-c", cmd.c_str(),
                static_cast<char *>(nullptr));
        ::_exit(127);
    }
    return pid;
}

/** Blocking waitpid; returns the raw status (-1 on error). */
inline int
reap(pid_t pid)
{
    int status = -1;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR)
        continue;
    return status;
}

/** SIGKILL @p pid and reap it (idempotent on an exited child). */
inline void
killAndReap(pid_t pid)
{
    ::kill(pid, SIGKILL);
    reap(pid);
}

} // namespace wlcrc::test

#endif // WLCRC_TESTS_SUBPROCESS_HH
