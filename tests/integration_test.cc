/**
 * @file
 * Integration and paper-shape tests: every scheme replayed over
 * every workload, checking correctness (decode == written data) and
 * the headline relationships the paper reports — WLCRC-16 beating
 * the baseline and 6cosets on energy, endurance in the right regime,
 * disturbance errors in the 2-6 per line band, WLC coverage.
 */

#include <gtest/gtest.h>

#include "stats/stats.hh"
#include "trace/replay.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;
using trace::Replayer;
using trace::TraceSynthesizer;
using trace::WorkloadProfile;

constexpr uint64_t linesPerRun = 400;

/** Replay one scheme over one workload and return the results. */
trace::ReplayResult
runScheme(const std::string &scheme, const WorkloadProfile &profile,
          uint64_t seed = 97)
{
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const auto codec = core::makeCodec(scheme, e);
    Replayer rep(*codec, unit, seed);
    TraceSynthesizer synth(profile, seed);
    rep.run(synth, linesPerRun);
    return rep.result();
}

class PerWorkload : public ::testing::TestWithParam<std::string>
{
  protected:
    const WorkloadProfile &
    profile() const
    {
        return WorkloadProfile::byName(GetParam());
    }
};

TEST_P(PerWorkload, AllSchemesDecodeCorrectly)
{
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    for (const auto &scheme : core::figure8Schemes()) {
        const auto codec = core::makeCodec(scheme, e);
        Replayer rep(*codec, unit);
        TraceSynthesizer synth(profile(), 55);
        Line512 last;
        uint64_t last_addr = 0;
        for (int i = 0; i < 150; ++i) {
            const auto txn = synth.next();
            rep.step(txn);
            last = txn.newData;
            last_addr = txn.lineAddr;
        }
        ASSERT_EQ(codec->decode(rep.device().line(last_addr)), last)
            << scheme << " on " << GetParam();
    }
}

TEST_P(PerWorkload, WlcrcBeatsBaselineEnergy)
{
    const auto base = runScheme("Baseline", profile());
    const auto wlcrc = runScheme("WLCRC-16", profile());
    EXPECT_LT(wlcrc.energyPj.mean(), base.energyPj.mean())
        << GetParam();
}

TEST_P(PerWorkload, DisturbanceInPaperBand)
{
    // Figure 10: three to four errors per line on average across
    // schemes; per-workload values range roughly 1-9.
    for (const auto &scheme :
         {"Baseline", "6cosets", "WLCRC-16"}) {
        const auto r = runScheme(scheme, profile());
        EXPECT_GT(r.disturbErrors.mean(), 0.2) << scheme;
        EXPECT_LT(r.disturbErrors.mean(), 12.0) << scheme;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PerWorkload,
    ::testing::Values("lesl", "milc", "wrf", "sopl", "zeus", "lbm",
                      "gcc", "asta", "mcf", "cann", "libq", "omne"));

TEST(PaperShape, WlcrcBeats6cosetsOnSuiteAverage)
{
    stats::RunningStat six, wlcrc;
    for (const auto &p : WorkloadProfile::all()) {
        six.add(runScheme("6cosets", p).energyPj.mean());
        wlcrc.add(runScheme("WLCRC-16", p).energyPj.mean());
    }
    // Paper: 39 % average improvement; insist on a clear win.
    EXPECT_LT(wlcrc.mean(), six.mean() * 0.85);
}

TEST(PaperShape, WlcrcBeatsWlc4cosetsOnSuiteAverage)
{
    stats::RunningStat w4, wlcrc;
    for (const auto &p : WorkloadProfile::all()) {
        w4.add(runScheme("WLC+4cosets", p).energyPj.mean());
        wlcrc.add(runScheme("WLCRC-16", p).energyPj.mean());
    }
    // Paper: ~10 % improvement of WLCRC-16 over WLC+4cosets-32.
    EXPECT_LT(wlcrc.mean(), w4.mean());
}

TEST(PaperShape, Endurance20PercentRegime)
{
    stats::RunningStat base, wlcrc;
    for (const auto &p : WorkloadProfile::all()) {
        base.add(runScheme("Baseline", p).updatedCells.mean());
        wlcrc.add(runScheme("WLCRC-16", p).updatedCells.mean());
    }
    // Paper Figure 9: ~20 % fewer updated cells than baseline.
    EXPECT_LT(wlcrc.mean(), base.mean());
}

TEST(PaperShape, HmiWorkloadsUseMoreEnergyThanLmi)
{
    stats::RunningStat hmi, lmi;
    for (const auto &p : WorkloadProfile::all()) {
        const auto r = runScheme("Baseline", p);
        (p.highIntensity ? hmi : lmi).add(r.energyPj.mean());
    }
    EXPECT_GT(hmi.mean(), lmi.mean());
}

TEST(PaperShape, SixteenBitIsWlcrcEnergyOptimum)
{
    // Figure 11: the WLCRC energy minimum sits at 16-bit blocks.
    std::map<unsigned, double> energy;
    for (unsigned g : {8u, 16u, 32u, 64u}) {
        stats::RunningStat s;
        for (const auto &p : WorkloadProfile::all()) {
            s.add(runScheme("WLCRC-" + std::to_string(g), p)
                      .energyPj.mean());
        }
        energy[g] = s.mean();
    }
    EXPECT_LT(energy[16], energy[8]);
    EXPECT_LT(energy[16], energy[32]);
    EXPECT_LT(energy[16], energy[64]);
}

TEST(PaperShape, MultiObjectiveTradesEnergyForEndurance)
{
    stats::RunningStat plain_e, mo_e, plain_u, mo_u;
    for (const auto &p : WorkloadProfile::all()) {
        const auto plain = runScheme("WLCRC-16", p);
        const auto mo = runScheme("WLCRC-16-mo", p);
        plain_e.add(plain.energyPj.mean());
        mo_e.add(mo.energyPj.mean());
        plain_u.add(plain.updatedCells.mean());
        mo_u.add(mo.updatedCells.mean());
    }
    // Section VIII-D: T = 1 % costs ~1-2 % energy, saves updated
    // cells.
    EXPECT_LT(mo_u.mean(), plain_u.mean());
    EXPECT_LT(mo_e.mean(), plain_e.mean() * 1.05);
}

TEST(PaperShape, AuxEnergyShareSmallForWlcrc16)
{
    // Section IX-A: the auxiliary part peaks at ~5.5 % of total
    // write energy for WLCRC-16.
    stats::RunningStat aux_share;
    for (const auto &p : WorkloadProfile::all()) {
        const auto r = runScheme("WLCRC-16", p);
        aux_share.add(r.auxEnergyPj.mean() /
                      std::max(1.0, r.energyPj.mean()));
    }
    EXPECT_LT(aux_share.mean(), 0.15);
}

TEST(PaperShape, Figure14SensitivityMonotone)
{
    // Scaling down S3/S4 energies shrinks WLCRC's absolute win but
    // it must keep beating the baseline (paper: still 32 % at >6x).
    const std::vector<std::pair<double, double>> levels = {
        {307, 547}, {152, 273}, {75, 135}, {50, 80}};
    double prev_gain = 1.0;
    for (const auto &[s3, s4] : levels) {
        const auto e =
            pcm::EnergyModel::withHighStateEnergies(s3, s4);
        const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
        const auto base = core::makeCodec("Baseline", e);
        const auto wlcrc = core::makeCodec("WLCRC-16", e);
        stats::RunningStat be, we;
        for (const auto &p :
             {WorkloadProfile::byName("gcc"),
              WorkloadProfile::byName("milc")}) {
            Replayer rb(*base, unit);
            TraceSynthesizer sb(p, 3);
            rb.run(sb, 250);
            be.add(rb.result().energyPj.mean());
            Replayer rw(*wlcrc, unit);
            TraceSynthesizer sw(p, 3);
            rw.run(sw, 250);
            we.add(rw.result().energyPj.mean());
        }
        const double gain = 1.0 - we.mean() / be.mean();
        EXPECT_GT(gain, 0.10);
        EXPECT_LE(gain, prev_gain + 0.05);
        prev_gain = gain;
    }
}

} // namespace
