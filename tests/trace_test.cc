/**
 * @file
 * Tests for the workload substrate: value models, benchmark
 * profiles, the trace synthesizer, trace file I/O and the replayer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "compress/wlc.hh"
#include "coset/baseline_codec.hh"
#include "trace/replay.hh"
#include "trace/trace_io.hh"
#include "trace/value_model.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;
using compress::Wlc;
using trace::LineType;
using trace::RandomWorkload;
using trace::TraceSynthesizer;
using trace::ValueModel;
using trace::WorkloadProfile;
using trace::WriteTransaction;

// -------------------------------------------------------- ValueModel

TEST(ValueModel, ZeroishWordsHaveLongMsbRuns)
{
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t w =
            ValueModel::generateWord(LineType::Zeroish, rng);
        EXPECT_GE(Wlc::msbRunLength(w), 9u);
    }
}

TEST(ValueModel, IntegerWordsCompressibleAtK9)
{
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t w =
            ValueModel::generateWord(LineType::Integer, rng);
        EXPECT_GE(Wlc::msbRunLength(w), 9u);
    }
}

TEST(ValueModel, Mid6WordsHaveRunsOfAtLeastSix)
{
    Rng rng(3);
    unsigned exactly6 = 0;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t w =
            ValueModel::generateWord(LineType::Mid6, rng);
        const unsigned run = Wlc::msbRunLength(w);
        EXPECT_GE(run, 6u);
        exactly6 += run == 6;
    }
    // Most Mid6 words must pin the run at exactly 6, creating the
    // k = 7 coverage cliff of Figure 4.
    EXPECT_GT(exactly6, 1000u);
}

TEST(ValueModel, FloatWordsDefeatWlc)
{
    Rng rng(4);
    unsigned shallow = 0;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t w =
            ValueModel::generateWord(LineType::Float, rng);
        shallow += Wlc::msbRunLength(w) < 4;
    }
    // Doubles' exponent bits break the MSB run almost always
    // (zero words inside float lines are allowed).
    EXPECT_GT(shallow, 1400u);
}

TEST(ValueModel, MutationPreservesClassSignature)
{
    Rng rng(5);
    for (const auto type : {LineType::Zeroish, LineType::Integer,
                            LineType::Mid6, LineType::Mid7}) {
        const unsigned min_run =
            type == LineType::Zeroish || type == LineType::Integer
                ? 9u
                : 6u;
        uint64_t w = ValueModel::generateWord(type, rng);
        for (int i = 0; i < 300; ++i) {
            w = ValueModel::mutateWord(type, w, rng);
            ASSERT_GE(Wlc::msbRunLength(w), min_run)
                << lineTypeName(type);
        }
    }
}

// ---------------------------------------------------------- profiles

TEST(WorkloadProfile, ThirteenPaperWorkloadsMinusOne)
{
    // 12 SPEC + canneal = 13 in the paper; our registry carries the
    // 12 distinct names used in the figures (libq/omne/etc).
    const auto &all = WorkloadProfile::all();
    EXPECT_EQ(all.size(), 12u);
    unsigned hmi = 0;
    for (const auto &p : all) {
        double sum = 0;
        for (double q : p.lineTypeProbs)
            sum += q;
        EXPECT_NEAR(sum, 1.0, 1e-9) << p.name;
        EXPECT_GT(p.wordChangeProb, 0.0);
        EXPECT_LE(p.wordChangeProb, 1.0);
        hmi += p.highIntensity;
    }
    EXPECT_EQ(hmi, 7u); // lesl milc wrf sopl zeus lbm gcc
}

TEST(WorkloadProfile, LookupByName)
{
    EXPECT_EQ(WorkloadProfile::byName("lesl").name, "lesl");
    EXPECT_TRUE(WorkloadProfile::byName("milc").highIntensity);
    EXPECT_FALSE(WorkloadProfile::byName("libq").highIntensity);
    EXPECT_THROW(WorkloadProfile::byName("nope"),
                 std::invalid_argument);
}

// ------------------------------------------------------- synthesizer

TEST(TraceSynthesizer, Deterministic)
{
    const auto &p = WorkloadProfile::byName("gcc");
    TraceSynthesizer a(p, 42), b(p, 42);
    for (int i = 0; i < 200; ++i) {
        const auto ta = a.next();
        const auto tb = b.next();
        EXPECT_EQ(ta.lineAddr, tb.lineAddr);
        EXPECT_EQ(ta.oldData, tb.oldData);
        EXPECT_EQ(ta.newData, tb.newData);
    }
}

TEST(TraceSynthesizer, OldNewChaining)
{
    // The old data of a write must equal the new data of the
    // previous write to the same address: a coherent memory image.
    const auto &p = WorkloadProfile::byName("mcf");
    TraceSynthesizer synth(p, 7);
    std::unordered_map<uint64_t, Line512> image;
    for (int i = 0; i < 3000; ++i) {
        const auto txn = synth.next();
        const auto it = image.find(txn.lineAddr);
        if (it != image.end())
            ASSERT_EQ(txn.oldData, it->second) << "write " << i;
        image[txn.lineAddr] = txn.newData;
    }
}

TEST(TraceSynthesizer, EveryWriteChangesSomething)
{
    const auto &p = WorkloadProfile::byName("libq");
    TraceSynthesizer synth(p, 8);
    for (int i = 0; i < 2000; ++i) {
        const auto txn = synth.next();
        EXPECT_NE(txn.oldData, txn.newData);
    }
}

TEST(TraceSynthesizer, AddressesStayInFootprint)
{
    const auto &p = WorkloadProfile::byName("zeus");
    TraceSynthesizer synth(p, 9);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(synth.next().lineAddr, p.footprintLines);
}

TEST(RandomWorkload, FreshAddressesAndHighEntropy)
{
    RandomWorkload w(3);
    uint64_t prev_addr = ~uint64_t{0};
    unsigned zero_words = 0;
    for (int i = 0; i < 100; ++i) {
        const auto txn = w.next();
        EXPECT_NE(txn.lineAddr, prev_addr);
        prev_addr = txn.lineAddr;
        for (unsigned j = 0; j < lineWords; ++j)
            zero_words += txn.newData.word(j) == 0;
    }
    EXPECT_EQ(zero_words, 0u);
}

// ---------------------------------------------------------- trace IO

TEST(TraceIo, RoundTrip)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "wlcrc_trace_test.bin";
    const auto &p = WorkloadProfile::byName("cann");
    TraceSynthesizer synth(p, 11);
    std::vector<WriteTransaction> txns;
    {
        trace::TraceWriter writer(path.string());
        for (int i = 0; i < 500; ++i) {
            txns.push_back(synth.next());
            writer.write(txns.back());
        }
        EXPECT_EQ(writer.written(), 500u);
    }
    {
        trace::TraceReader reader(path.string());
        for (int i = 0; i < 500; ++i) {
            const auto txn = reader.read();
            ASSERT_TRUE(txn);
            EXPECT_EQ(txn->lineAddr, txns[i].lineAddr);
            EXPECT_EQ(txn->oldData, txns[i].oldData);
            EXPECT_EQ(txn->newData, txns[i].newData);
        }
        EXPECT_FALSE(reader.read());
    }
    std::filesystem::remove(path);
}

TEST(TraceIo, RejectsBadMagic)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "wlcrc_bad_magic.bin";
    {
        std::ofstream os(path, std::ios::binary);
        os << "NOTATRACE";
    }
    EXPECT_THROW(trace::TraceReader reader(path.string()),
                 std::runtime_error);
    std::filesystem::remove(path);
}

// ----------------------------------------------------------- replay

TEST(Replayer, DeviceContentsTrackLastWrite)
{
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const auto codec = core::makeCodec("WLCRC-16", e);
    trace::Replayer rep(*codec, unit);
    const auto &p = WorkloadProfile::byName("omne");
    TraceSynthesizer synth(p, 13);
    std::unordered_map<uint64_t, Line512> last;
    for (int i = 0; i < 500; ++i) {
        const auto txn = synth.next();
        rep.step(txn);
        last[txn.lineAddr] = txn.newData;
    }
    for (const auto &[addr, data] : last)
        ASSERT_EQ(codec->decode(rep.device().line(addr)), data);
}

TEST(Replayer, StatsArePopulatedAndConsistent)
{
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const coset::BaselineCodec codec(e);
    trace::Replayer rep(codec, unit);
    const auto &p = WorkloadProfile::byName("lesl");
    TraceSynthesizer synth(p, 17);
    rep.run(synth, 400);
    const auto &r = rep.result();
    EXPECT_EQ(r.writes, 400u);
    EXPECT_GT(r.energyPj.mean(), 0.0);
    EXPECT_GT(r.updatedCells.mean(), 0.0);
    EXPECT_NEAR(r.energyPj.mean(),
                r.dataEnergyPj.mean() + r.auxEnergyPj.mean(), 1e-6);
    // Baseline has no aux cells at all.
    EXPECT_EQ(r.auxEnergyPj.max(), 0.0);
}

TEST(ReplayResult, MergeMatchesSingleStreamOracle)
{
    // Feed one sample stream into an oracle result and, split
    // round-robin, into two partial results; merging the partials
    // must reproduce the oracle's Welford moments and counters.
    trace::ReplayResult oracle, a, b;
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        const double energy = 20.0 + rng.nextDouble() * 500.0;
        const double cells = rng.nextBelow(128);
        const double errors = rng.nextBelow(8);
        for (trace::ReplayResult *r :
             {&oracle, i % 2 ? &a : &b}) {
            r->energyPj.add(energy);
            r->updatedCells.add(cells);
            r->disturbErrors.add(errors);
            ++r->writes;
            if (errors > 0)
                ++r->vnrIterations;
            if (i % 3 == 0)
                ++r->compressedWrites;
        }
    }
    a.merge(b);
    EXPECT_EQ(a.writes, oracle.writes);
    EXPECT_EQ(a.compressedWrites, oracle.compressedWrites);
    EXPECT_EQ(a.vnrIterations, oracle.vnrIterations);
    EXPECT_EQ(a.energyPj.count(), oracle.energyPj.count());
    EXPECT_NEAR(a.energyPj.mean(), oracle.energyPj.mean(), 1e-9);
    EXPECT_NEAR(a.energyPj.variance(), oracle.energyPj.variance(),
                1e-6);
    EXPECT_DOUBLE_EQ(a.energyPj.min(), oracle.energyPj.min());
    EXPECT_DOUBLE_EQ(a.energyPj.max(), oracle.energyPj.max());
    EXPECT_NEAR(a.updatedCells.mean(), oracle.updatedCells.mean(),
                1e-9);
    EXPECT_NEAR(a.disturbErrors.mean(),
                oracle.disturbErrors.mean(), 1e-9);
}

TEST(ReplayResult, MergeWithEmptyIsIdentity)
{
    trace::ReplayResult r, empty;
    r.energyPj.add(5.0);
    ++r.writes;
    r.merge(empty);
    EXPECT_EQ(r.writes, 1u);
    EXPECT_DOUBLE_EQ(r.energyPj.mean(), 5.0);
    empty.merge(r);
    EXPECT_EQ(empty.writes, 1u);
    EXPECT_DOUBLE_EQ(empty.energyPj.mean(), 5.0);
}

TEST(Replayer, VnrFlagEnablesRepairLoop)
{
    // With VnR enabled the repair loop runs to convergence, so the
    // iteration count must be at least the detection-only count.
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const auto codec = core::makeCodec("Baseline", e);
    trace::Replayer plain(*codec, unit, 5);
    trace::Replayer vnr(*codec, unit, 5, true);
    TraceSynthesizer s1(WorkloadProfile::byName("lesl"), 5);
    TraceSynthesizer s2(WorkloadProfile::byName("lesl"), 5);
    plain.run(s1, 200);
    vnr.run(s2, 200);
    EXPECT_GT(plain.result().vnrIterations, 0u);
    EXPECT_GE(vnr.result().vnrIterations,
              plain.result().vnrIterations);
}

TEST(Replayer, WlcCompressesMostBiasedLines)
{
    // Figure 4's headline: WLC (k = 6) compresses > 85 % of lines
    // across the benchmark suite.
    const pcm::EnergyModel e;
    const pcm::WriteUnit unit{e, pcm::DisturbanceModel()};
    const auto codec = core::makeCodec("WLCRC-16", e);
    uint64_t total = 0, compressed = 0;
    for (const auto &p : WorkloadProfile::all()) {
        trace::Replayer rep(*codec, unit);
        TraceSynthesizer synth(p, 23);
        rep.run(synth, 300);
        total += rep.result().writes;
        compressed += rep.result().compressedWrites;
    }
    EXPECT_GT(static_cast<double>(compressed) / total, 0.85);
}

} // namespace
