/**
 * @file
 * Wear-leveling subsystem: leveler config round-trips, Start-Gap
 * mapping algebra (bijective, rotating), page-remap hot/cold swaps,
 * deterministic per-cell endurance budgets, lifetime-to-failure
 * replay (including the headline property: Start-Gap and page-remap
 * both outlive the pass-through NullLeveler on a hot-spot trace),
 * and the WearTracker histogram/merge accessors feeding --wear-csv.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "common/rng.hh"
#include "pcm/write_unit.hh"
#include "runner/grid.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "wearlevel/config.hh"
#include "wearlevel/leveler.hh"
#include "wearlevel/lifetime.hh"
#include "wlcrc/factory.hh"

namespace
{

using namespace wlcrc;
using wearlevel::EnduranceConfig;
using wearlevel::LevelerConfig;
using wearlevel::LifetimeEngine;
using wearlevel::LineMove;

// ------------------------------------------------------ config codec

TEST(LevelerConfig, FormatParseRoundTrips)
{
    for (const char *text :
         {"none", "start-gap:p100:r64", "start-gap:p8:r16",
          "page-remap:p100:g8", "page-remap:p75:g4"}) {
        const LevelerConfig cfg = wearlevel::parseLeveler(text);
        EXPECT_EQ(wearlevel::formatLeveler(cfg), text);
        EXPECT_EQ(wearlevel::parseLeveler(
                      wearlevel::formatLeveler(cfg)),
                  cfg);
    }
    // Bare scheme names take the documented defaults.
    EXPECT_EQ(wearlevel::formatLeveler(
                  wearlevel::parseLeveler("start-gap")),
              "start-gap:p100:r64");
    EXPECT_EQ(wearlevel::formatLeveler(
                  wearlevel::parseLeveler("page-remap")),
              "page-remap:p100:g8");
    EXPECT_FALSE(wearlevel::parseLeveler("none").active());
    EXPECT_TRUE(wearlevel::parseLeveler("start-gap").active());
}

TEST(LevelerConfig, ParseRejectsGarbage)
{
    EXPECT_THROW(wearlevel::parseLeveler("rotate-left"),
                 std::invalid_argument);
    EXPECT_THROW(wearlevel::parseLeveler("start-gap:p0"),
                 std::invalid_argument);
    EXPECT_THROW(wearlevel::parseLeveler("start-gap:px"),
                 std::invalid_argument);
    EXPECT_THROW(wearlevel::parseLeveler("page-remap:g0"),
                 std::invalid_argument);
    EXPECT_THROW(wearlevel::parseLeveler(""),
                 std::invalid_argument);
}

TEST(EnduranceConfigTest, FormatParseRoundTrips)
{
    const EnduranceConfig full =
        wearlevel::parseEndurance("1000:0.25:2:50000");
    EXPECT_EQ(full.meanWrites, 1000u);
    EXPECT_DOUBLE_EQ(full.cov, 0.25);
    EXPECT_EQ(full.eccDeadCells, 2u);
    EXPECT_EQ(full.maxWrites, 50000u);
    EXPECT_EQ(wearlevel::parseEndurance(
                  wearlevel::formatEndurance(full)),
              full);

    // Trailing fields are optional on the CLI.
    const EnduranceConfig bare = wearlevel::parseEndurance("300");
    EXPECT_EQ(bare.meanWrites, 300u);
    EXPECT_DOUBLE_EQ(bare.cov, 0.0);
    EXPECT_TRUE(bare.active());
    EXPECT_FALSE(EnduranceConfig{}.active());

    EXPECT_THROW(wearlevel::parseEndurance("abc"),
                 std::invalid_argument);
    EXPECT_THROW(wearlevel::parseEndurance("100:-0.5"),
                 std::invalid_argument);
}

// -------------------------------------------------------- Start-Gap

TEST(StartGapLeveler, MappingStaysBijectivePerRegion)
{
    LevelerConfig cfg = wearlevel::parseLeveler("start-gap:p5:r8");
    const auto lev = wearlevel::makeLeveler(cfg);
    const uint64_t lines = 16; // two regions of 8

    std::vector<LineMove> moves;
    Rng rng(9);
    for (int i = 0; i < 500; ++i) {
        lev->onWrite(rng.next() % lines, moves);
        std::set<uint64_t> phys;
        for (uint64_t l = 0; l < lines; ++l)
            EXPECT_TRUE(phys.insert(lev->map(l)).second)
                << "two logicals map to one slot after write " << i;
        // Each region's lines stay inside its 9-slot window.
        for (uint64_t l = 0; l < lines; ++l) {
            const uint64_t region = l / 8;
            EXPECT_GE(lev->map(l), region * 9);
            EXPECT_LT(lev->map(l), (region + 1) * 9);
        }
    }
}

TEST(StartGapLeveler, RotatesEveryPeriodWrites)
{
    LevelerConfig cfg = wearlevel::parseLeveler("start-gap:p4:r8");
    const auto lev = wearlevel::makeLeveler(cfg);

    std::vector<LineMove> moves;
    // 3 writes: no move yet; the 4th triggers exactly one.
    for (int i = 0; i < 3; ++i)
        lev->onWrite(0, moves);
    EXPECT_TRUE(moves.empty());
    lev->onWrite(0, moves);
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(lev->map(moves[0].logical), moves[0].toPhys);
    EXPECT_EQ(lev->stats().movesRequested, 1u);

    // A full rotation cycle visits every slot: after (region+1) *
    // period writes, each line has been displaced at least once.
    std::set<uint64_t> displaced;
    for (int i = 0; i < 9 * 4 * 3; ++i) {
        moves.clear();
        lev->onWrite(0, moves);
        for (const auto &m : moves)
            displaced.insert(m.logical);
    }
    EXPECT_EQ(displaced.size(), 8u)
        << "rotation never reached some lines";
}

// ------------------------------------------------------- page-remap

TEST(PageRemapLeveler, SwapsHotPageWithColdFrame)
{
    LevelerConfig cfg =
        wearlevel::parseLeveler("page-remap:p16:g2");
    const auto lev = wearlevel::makeLeveler(cfg);

    std::vector<LineMove> moves;
    // Touch two cold pages once (lines 4..7), then hammer page 0
    // (lines 0..1) up to the decision point.
    lev->onWrite(4, moves);
    lev->onWrite(6, moves);
    ASSERT_TRUE(moves.empty());
    while (moves.empty())
        lev->onWrite(0, moves);

    // The swap relocates the hot page: line 0 no longer maps to
    // phys 0, and the mapping stays bijective.
    EXPECT_NE(lev->map(0), 0u);
    EXPECT_EQ(moves.size(), 4u) << "2 lines per page, both ways";
    std::set<uint64_t> phys;
    for (uint64_t l = 0; l < 8; ++l)
        EXPECT_TRUE(phys.insert(lev->map(l)).second);
    EXPECT_GE(lev->stats().remapEvents, 1u);
    EXPECT_GT(lev->stats().tableBytes, 0u);
}

// ------------------------------------------------- endurance budgets

TEST(CellBudget, DeterministicAndMeanCentred)
{
    EnduranceConfig cfg = wearlevel::parseEndurance("1000:0.2");
    const uint64_t a = wearlevel::cellBudget(cfg, 7, 3, 11);
    EXPECT_EQ(wearlevel::cellBudget(cfg, 7, 3, 11), a)
        << "budget must be a pure function of (line, cell, seed)";
    EXPECT_NE(wearlevel::cellBudget(cfg, 8, 3, 11), a)
        << "seed must perturb the budget";

    // cov = 0 collapses to the mean exactly.
    EnduranceConfig fixed = wearlevel::parseEndurance("1000");
    for (unsigned c = 0; c < 16; ++c)
        EXPECT_EQ(wearlevel::cellBudget(fixed, 7, 0, c), 1000u);

    // With variance, the sample mean stays near the configured
    // mean and every budget is positive.
    double sum = 0;
    uint64_t minB = UINT64_MAX, maxB = 0;
    const unsigned n = 4000;
    for (unsigned i = 0; i < n; ++i) {
        const uint64_t b =
            wearlevel::cellBudget(cfg, 7, i / 64, i % 64);
        sum += static_cast<double>(b);
        minB = std::min(minB, b);
        maxB = std::max(maxB, b);
    }
    EXPECT_NEAR(sum / n, 1000.0, 25.0);
    EXPECT_GE(minB, 1u);
    EXPECT_GT(maxB, minB) << "variance produced no spread";
}

// --------------------------------------------------- lifetime engine

LifetimeEngine::Options
engineOpts(const char *leveler, const char *endurance)
{
    LifetimeEngine::Options opts;
    opts.leveler = wearlevel::parseLeveler(leveler);
    opts.endurance = wearlevel::parseEndurance(endurance);
    opts.seed = 21;
    return opts;
}

wearlevel::LifetimeResult
runToFailure(const char *leveler, const char *endurance)
{
    const pcm::EnergyModel energy;
    const pcm::DisturbanceModel disturbance;
    const pcm::WriteUnit unit(energy, disturbance);
    const auto codec = core::makeCodec("WLCRC-16", energy);
    LifetimeEngine engine(*codec, unit,
                          engineOpts(leveler, endurance));
    const auto trace = wearlevel::hotspotTrace(64, 400, 21);
    return engine.run(trace, /*loopUntilDeath=*/true);
}

TEST(LifetimeEngineTest, DeathIsDeterministic)
{
    const auto a = runToFailure("none", "60:0.2");
    const auto b = runToFailure("none", "60:0.2");
    ASSERT_TRUE(a.died);
    EXPECT_EQ(a.writesToFailure, b.writesToFailure);
    EXPECT_EQ(a.failedLine, b.failedLine);
    EXPECT_EQ(a.failedCell, b.failedCell);
    EXPECT_EQ(a.maxCellWear, b.maxCellWear);
    EXPECT_EQ(a.wearCovTimeline, b.wearCovTimeline);
    EXPECT_EQ(a.extraWrites, 0u) << "NullLeveler never remaps";
}

TEST(LifetimeEngineTest, WriteCapStopsAnImmortalDevice)
{
    // A huge budget with a small cap: the device survives and the
    // demand-write count equals the cap exactly.
    const auto res = runToFailure("none", "1000000:0:0:1000");
    EXPECT_FALSE(res.died);
    EXPECT_EQ(res.demandWrites, 1000u);
    EXPECT_EQ(res.writesToFailure, 1000u);
}

TEST(LifetimeEngineTest, EccSparesDelayDeath)
{
    const auto strict = runToFailure("none", "60:0.2:0");
    const auto spares = runToFailure("none", "60:0.2:4");
    ASSERT_TRUE(strict.died);
    ASSERT_TRUE(spares.died);
    EXPECT_GT(spares.writesToFailure, strict.writesToFailure)
        << "tolerating dead cells must extend the lifetime";
}

TEST(LifetimeEngineTest, StartGapOutlivesNullLeveler)
{
    const auto plain = runToFailure("none", "60");
    const auto leveled = runToFailure("start-gap:p8:r16", "60");
    ASSERT_TRUE(plain.died);
    ASSERT_TRUE(leveled.died);
    // Conservative bound: the bench shows ~4x at this shape; any
    // regression below 1.3x means the rotation stopped working.
    EXPECT_GE(static_cast<double>(leveled.writesToFailure),
              1.3 * static_cast<double>(plain.writesToFailure));
    EXPECT_GT(leveled.extraWrites, 0u);
    EXPECT_GT(leveled.remapEvents, 0u);
}

TEST(LifetimeEngineTest, PageRemapOutlivesNullLeveler)
{
    const auto plain = runToFailure("none", "60");
    const auto leveled = runToFailure("page-remap:p64:g8", "60");
    ASSERT_TRUE(plain.died);
    ASSERT_TRUE(leveled.died);
    EXPECT_GE(static_cast<double>(leveled.writesToFailure),
              1.3 * static_cast<double>(plain.writesToFailure));
    EXPECT_GT(leveled.extraWrites, 0u);
    EXPECT_GT(leveled.tableBytes, 0u);
}

TEST(LifetimeEngineTest, CovTimelineIsBoundedAndSampled)
{
    const auto res = runToFailure("none", "60:0.2");
    ASSERT_FALSE(res.wearCovTimeline.empty());
    EXPECT_LE(res.wearCovTimeline.size(), 128u);
    EXPECT_GT(res.covSampleEvery, 0u);
    for (const double cov : res.wearCovTimeline)
        EXPECT_GE(cov, 0.0);
    EXPECT_GT(res.finalWearCov, 0.0)
        << "a hot-spot trace must leave uneven wear";
}

// ----------------------------------------------- runner integration

TEST(LifetimeRunner, IdentityLevelerMatchesStockReplayStats)
{
    // A Start-Gap leveler whose period is never reached performs
    // zero moves: the demand replay must then be byte-identical in
    // every replay column to the stock (non-lifetime) path.
    runner::ExperimentSpec stock;
    stock.scheme = "WLCRC-16";
    stock.workload = "gcc";
    stock.lines = 120;
    stock.seed = 5;

    runner::ExperimentSpec idle = stock;
    idle.leveler = wearlevel::parseLeveler("start-gap:p100000");
    idle.endurance = wearlevel::parseEndurance("1000000");

    const runner::ExperimentRunner engine;
    const auto rs = engine.run({stock, idle});
    ASSERT_TRUE(rs[0].ok) << rs[0].error;
    ASSERT_TRUE(rs[1].ok) << rs[1].error;
    EXPECT_EQ(rs[1].replay.writes, rs[0].replay.writes);
    EXPECT_EQ(rs[1].replay.energyPj.mean(),
              rs[0].replay.energyPj.mean());
    EXPECT_EQ(rs[1].replay.updatedCells.mean(),
              rs[0].replay.updatedCells.mean());
    EXPECT_EQ(rs[1].replay.disturbErrors.mean(),
              rs[0].replay.disturbErrors.mean());
    EXPECT_EQ(rs[1].lifetime.extraWrites, 0u);
    EXPECT_FALSE(rs[1].lifetime.died);
}

TEST(LifetimeRunner, LifetimeWithoutEnduranceFailsThePoint)
{
    runner::ExperimentSpec spec;
    spec.scheme = "Baseline";
    spec.workload = "gcc";
    spec.lines = 50;
    spec.lifetime = true;
    const auto rs = runner::ExperimentRunner().run({spec});
    ASSERT_FALSE(rs[0].ok);
    EXPECT_NE(rs[0].error.find("endurance"), std::string::npos)
        << rs[0].error;
}

// ------------------------------------------------------ WearTracker

TEST(WearTrackerTest, HistogramAndAccessors)
{
    pcm::WearTracker t(8);
    t.recordProgram(3, 0);
    t.recordProgram(3, 0);
    t.recordProgram(3, 1);
    t.recordProgram(9, 2);

    EXPECT_EQ(t.trackedLines(), 2u);
    ASSERT_NE(t.lineWear(3), nullptr);
    EXPECT_EQ((*t.lineWear(3))[0], 2u);
    EXPECT_EQ((*t.lineWear(3))[1], 1u);
    EXPECT_EQ(t.lineWear(4), nullptr);

    const std::map<uint32_t, uint64_t> hist = t.histogram();
    // wear 1: two cells (line3 cell1, line9 cell2); wear 2: one.
    EXPECT_EQ(hist.at(1), 2u);
    EXPECT_EQ(hist.at(2), 1u);
    EXPECT_EQ(hist.count(0), 0u) << "untouched cells excluded";

    const auto sum = t.summary();
    EXPECT_EQ(sum.maxCellWrites, 2u);
    EXPECT_GT(sum.covCellWrites, 0.0);
}

TEST(WearTrackerTest, MergeEdgeCases)
{
    pcm::WearTracker a(8), b(8), narrow(4);
    a.recordProgram(1, 0);
    b.recordProgram(1, 0);
    EXPECT_THROW(a.merge(a), std::invalid_argument)
        << "self-merge would double every count";
    EXPECT_THROW(a.merge(narrow), std::invalid_argument)
        << "cells-per-line mismatch";
    a.merge(b);
    EXPECT_EQ((*a.lineWear(1))[0], 2u);
}

TEST(WearTrackerTest, ShardedMergeEqualsSingleShardReplay)
{
    // Wear masks are a deterministic function of the stream, so a
    // 4-shard merged tracker must equal the 1-shard tracker cell
    // for cell — the property --wear-csv relies on. Jobs count is
    // exercised too (it must never matter).
    const auto trackerFor = [](unsigned shards, unsigned jobs) {
        runner::ExperimentSpec spec;
        spec.scheme = "WLCRC-16";
        spec.workload = "lesl";
        spec.lines = 200;
        spec.seed = 11;
        spec.shards = shards;
        spec.device.wearEndurance = 100000;
        spec.keepWearTracker = true;
        runner::RunnerOptions opts;
        opts.jobs = jobs;
        const auto rs =
            runner::ExperimentRunner(opts).run({spec});
        EXPECT_TRUE(rs[0].ok) << rs[0].error;
        return rs[0].wearTracker;
    };

    const auto one = trackerFor(1, 1);
    const auto four = trackerFor(4, 1);
    const auto fourJ4 = trackerFor(4, 4);
    ASSERT_TRUE(one && four && fourJ4);

    EXPECT_EQ(one->histogram(), four->histogram());
    EXPECT_EQ(four->histogram(), fourJ4->histogram());
    EXPECT_EQ(one->summary().maxCellWrites,
              four->summary().maxCellWrites);
    EXPECT_EQ(one->trackedLines(), four->trackedLines());
    for (uint64_t addr = 0; addr < 64; ++addr) {
        const auto *w1 = one->lineWear(addr);
        const auto *w4 = four->lineWear(addr);
        ASSERT_EQ(w1 == nullptr, w4 == nullptr) << addr;
        if (w1)
            EXPECT_EQ(*w1, *w4) << "line " << addr;
    }
}

} // namespace
