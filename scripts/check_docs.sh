#!/usr/bin/env bash
# Docs health check, run by CI (docs job) and ctest (docs_check):
#
#   1. every intra-repo markdown link in README.md and docs/*.md
#      resolves to an existing file;
#   2. every --flag printed by `wlcrc_sim --help`,
#      `wlcrc_trace --help`, `wlcrc_fuzz --help`,
#      `wlcrc_serve --help`, `wlcrc_load --help` and
#      `wlcrc_worker --help` is documented in docs/cli.md;
#   3. every wlcrc_trace subcommand in its usage text (generate,
#      convert, sort, info, verify, ...) has a `### \`<sub>\``
#      section in docs/cli.md.
#
# Usage: scripts/check_docs.sh [BUILD_DIR]   (default: build)
set -u
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
status=0

# ------------------------------------------------- 1. link check
for f in README.md docs/*.md; do
  [ -f "$f" ] || { echo "MISSING DOC: $f"; status=1; continue; }
  dir=$(dirname "$f")
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue # same-page anchor
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $f -> $target"
      status=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

# ------------------------------------- 2. CLI flag coverage
for tool in wlcrc_sim wlcrc_trace wlcrc_fuzz wlcrc_serve wlcrc_load wlcrc_worker; do
  bin="$BUILD_DIR/$tool"
  if [ ! -x "$bin" ]; then
    echo "MISSING BINARY: $bin (build the tools first)"
    status=1
    continue
  fi
  while IFS= read -r flag; do
    if ! grep -q -- "$flag" docs/cli.md; then
      echo "UNDOCUMENTED FLAG: $tool $flag (in --help but not docs/cli.md)"
      status=1
    fi
  done < <("$bin" --help | grep -oE '(^|[^a-z0-9-])--[a-z0-9-]+' \
             | grep -oE -- '--[a-z0-9-]+' | sort -u)
done

# --------------------------- 3. wlcrc_trace subcommand coverage
trace_bin="$BUILD_DIR/wlcrc_trace"
if [ -x "$trace_bin" ]; then
  while IFS= read -r sub; do
    [ -z "$sub" ] && continue
    if ! grep -q "^### \`$sub\`" docs/cli.md; then
      echo "UNDOCUMENTED SUBCOMMAND: wlcrc_trace $sub (in usage but no \`### $sub\` section in docs/cli.md)"
      status=1
    fi
  done < <("$trace_bin" --help | grep -oE '^  [a-z][a-z-]+ ' \
             | tr -d ' ' | sort -u)
fi

if [ "$status" -eq 0 ]; then
  echo "docs check: all links resolve, all CLI flags documented"
fi
exit "$status"
