#include "synth_model.hh"

#include <cassert>
#include <cmath>

namespace wlcrc::hw
{

namespace
{

/** Gate cost of an n-bit ripple/carry-select adder. */
double
adderGates(unsigned bits)
{
    return bits * 6.5;
}

/** Gate cost of an n-bit magnitude comparator. */
double
comparatorGates(unsigned bits)
{
    return bits * 4.0;
}

} // namespace

SynthResult
SynthModel::fromGates(double gates, double depth_fo4_write,
                      double depth_fo4_read) const
{
    SynthResult r;
    r.gateCount = static_cast<unsigned>(gates);
    r.areaMm2 = gates * areaPerGateMm2;
    r.writeDelayNs = depth_fo4_write * fo4DelayNs;
    r.readDelayNs = depth_fo4_read * fo4DelayNs;
    r.writeEnergyPj = gates * energyPerGatePj * activityFactor;
    // The decode path exercises roughly the mux/LUT third of the
    // design (no adder trees or comparators).
    r.readEnergyPj = r.writeEnergyPj * 0.29;
    return r;
}

SynthResult
SynthModel::wlcrc(unsigned granularity_bits) const
{
    assert(granularity_bits == 8 || granularity_bits == 16 ||
           granularity_bits == 32 || granularity_bits == 64);
    const unsigned cells_per_word = 32;
    const unsigned nblocks =
        granularity_bits == 64 ? 1 : (64 / granularity_bits) -
                                         (granularity_bits == 8 ? 1
                                                                : 0);
    const unsigned cells_per_block =
        granularity_bits / 2; // approximate; top block is shorter
    const unsigned nmaps = 3;
    const unsigned cost_bits = 11; // max block cost ~ 8 * 583 pJ

    // Per word module (Figure 7, "Restricted [Wi]"):
    double gates = 0.0;
    // 1. Per-cell, per-mapping state translation + energy LUT.
    gates += cells_per_word * nmaps * 18.0;
    // 2. Cost adder tree per block per mapping.
    gates += nblocks * nmaps * cells_per_block *
             adderGates(cost_bits) / 4.0;
    // 3. Within-group and cross-group comparators + group adders.
    gates += nblocks * 2 * comparatorGates(cost_bits);
    gates += 2 * nblocks * adderGates(cost_bits + 3);
    gates += comparatorGates(cost_bits + 3);
    // 4. Output mux: selected mapping per cell (2 bits/cell).
    gates += cells_per_word * 2 * 8.0;
    // 5. Decoder: selector decode + per-cell inverse-map mux.
    gates += cells_per_word * 2 * 10.0 + nblocks * 12.0;

    // Eight word modules in parallel plus the WLC front-end and the
    // line-level steering logic.
    double total = gates * 8;
    total += wlcOnly().gateCount;
    total += 450.0; // flag handling, enable fan-out, output steering

    // Write path: LUT (4 FO4) + adder tree (log2 cells * adder
    // depth) + two comparator stages + output mux.
    const double tree_depth =
        std::ceil(std::log2(std::max(2u, cells_per_block)));
    const double depth_write =
        4 + tree_depth * 14 + 2 * 12 + 6 +
        (granularity_bits == 8 ? 8 : 0);
    // Read path: flag check + selector decode + inverse-map mux.
    const double depth_read = 4 + 10 + 12;
    return fromGates(total, depth_write, depth_read);
}

SynthResult
SynthModel::wlcOnly() const
{
    // Per word: k-MSB uniformity (XOR reduce + AND tree) for
    // compression, sign-extension fan-out for decompression.
    const double per_word = 15.0;
    const double total = per_word * 8 + 14.0; // + line AND reduce
    return fromGates(total, 4.0, 3.5);
}

SynthResult
SynthModel::nCosets(unsigned candidates,
                    unsigned granularity_bits) const
{
    const unsigned symbols = granularity_bits / 2;
    const unsigned cost_bits = 14;
    double gates = 0.0;
    gates += symbols * candidates * 18.0;
    gates += candidates * symbols * adderGates(cost_bits) / 4.0;
    gates += (candidates - 1) * comparatorGates(cost_bits);
    gates += symbols * 2 * (4.0 + candidates);
    const double tree_depth =
        std::ceil(std::log2(std::max(2u, symbols)));
    return fromGates(gates, 4 + tree_depth * 14 + 12 + 6, 4 + 12 + 14);
}

} // namespace wlcrc::hw
