/**
 * @file
 * Analytic 45 nm hardware model for the WLCRC encoder/decoder
 * pipeline (Figure 7), substituting for the paper's Synopsys Design
 * Compiler + FreePDK45 synthesis (Section VI-B); see DESIGN.md.
 *
 * The model counts the structural primitives of the design —
 * energy-cost lookup tables, carry-save adder trees, comparators and
 * selection muxes per restricted-coset module, plus the trivial WLC
 * MSB-uniformity checkers — and converts them to area/delay/energy
 * with published FreePDK45 standard-cell characteristics. A single
 * calibration factor aligns the WLCRC-16 write path with the paper's
 * synthesized 2.63 ns; everything else follows structurally.
 */

#ifndef WLCRC_HW_SYNTH_MODEL_HH
#define WLCRC_HW_SYNTH_MODEL_HH

#include <string>

namespace wlcrc::hw
{

/** Synthesis-style results for one module. */
struct SynthResult
{
    double areaMm2 = 0.0;
    double writeDelayNs = 0.0;
    double readDelayNs = 0.0;
    double writeEnergyPj = 0.0;
    double readEnergyPj = 0.0;
    unsigned gateCount = 0;
};

/** Analytic gate-level model of the WLCRC pipeline at 45 nm. */
class SynthModel
{
  public:
    SynthModel() = default;

    /**
     * Full WLCRC compression+encoding and decoding+decompression
     * blocks for a given data block granularity (8/16/32/64), eight
     * word modules in parallel as in Figure 7.
     */
    SynthResult wlcrc(unsigned granularity_bits) const;

    /** Just the WLC compress/decompress portion. */
    SynthResult wlcOnly() const;

    /** An unrestricted n-cosets encoder at line granularity
     *  (the 6cosets comparison point). */
    SynthResult nCosets(unsigned candidates,
                        unsigned granularity_bits) const;

  private:
    /** Convert a gate count + logic depth into a SynthResult. */
    SynthResult fromGates(double gates, double depth_fo4_write,
                          double depth_fo4_read) const;

    // FreePDK45 standard-cell characteristics (NAND2-equivalent).
    static constexpr double areaPerGateMm2 = 0.798e-6; // mm^2/gate
    static constexpr double fo4DelayNs = 0.034;        // ns
    static constexpr double energyPerGatePj = 1.1e-4;  // pJ/switch
    static constexpr double activityFactor = 0.18;
};

} // namespace wlcrc::hw

#endif // WLCRC_HW_SYNTH_MODEL_HH
