/**
 * @file
 * TraceFileWriter: streaming writer of the WLCTRC02/03 containers.
 *
 * Records are serialized into a single in-memory block buffer
 * (recordsPerBlock × 136 B); a full buffer is checksummed, appended
 * to the file and its index entry queued for the footer. close()
 * flushes the final partial block and writes the index + trailer.
 *
 * For WLCTRC03 each full buffer is additionally run through the
 * configured codec into a reused compression scratch and stored
 * compressed when that strictly shrinks it, raw otherwise — so a v3
 * file never carries an expanded block. Memory use is two blocks
 * (records + compression scratch) regardless of trace length, with
 * zero allocations after the first block.
 */

#ifndef WLCRC_TRACEFILE_WRITER_HH
#define WLCRC_TRACEFILE_WRITER_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/lz.hh"
#include "tracefile/format.hh"
#include "trace/transaction.hh"

namespace wlcrc::tracefile
{

/** Construction knobs of a TraceFileWriter. */
struct WriterOptions
{
    /**
     * Block capacity; smaller blocks mean a tighter streaming-memory
     * bound and finer-grained shard pruning, at the cost of a larger
     * footer index (and, for v3, a shallower compression window).
     */
    uint32_t recordsPerBlock = defaultRecordsPerBlock;
    /** Container generation to emit (v2 or v3). */
    TraceFormat format = TraceFormat::v2;
    /** Block codec for v3 output; ignored for v2. */
    BlockCodec codec = BlockCodec::lz;
};

/** Blocked, indexed trace writer (WLCTRC02/WLCTRC03). */
class TraceFileWriter
{
  public:
    /**
     * Open @p path for writing and emit the header.
     * @throws std::runtime_error on open failure or an unavailable
     *         codec, std::invalid_argument for recordsPerBlock = 0,
     *         format v1, or a codec byte this build cannot encode.
     */
    explicit TraceFileWriter(
        const std::string &path,
        uint32_t recordsPerBlock = defaultRecordsPerBlock);

    /** As above with full options (format + codec). */
    TraceFileWriter(const std::string &path,
                    const WriterOptions &options);

    /** Flushes and finalizes via close() if still open. */
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record. @throws std::runtime_error after close. */
    void write(const trace::WriteTransaction &txn);

    /**
     * Flush the pending partial block, write the footer index and
     * trailer, and close the file. Idempotent.
     * @throws std::runtime_error if the underlying stream failed.
     */
    void close();

    /** Records accepted so far. */
    uint64_t written() const { return total_; }

  private:
    void flushBlock();

    std::ofstream out_;
    std::string path_;
    WriterOptions options_;
    std::vector<uint8_t> block_; //!< serialized pending records
    std::vector<uint8_t> compressed_; //!< v3 compression scratch
    LzScratch lzScratch_;
    uint32_t pending_ = 0; //!< records in block_
    uint64_t pendingMin_ = 0;
    uint64_t pendingMax_ = 0;
    std::vector<BlockInfo> index_;
    uint64_t total_ = 0;
    uint64_t offset_ = headerBytes; //!< next stored-block offset
    bool open_ = true;
};

} // namespace wlcrc::tracefile

#endif // WLCRC_TRACEFILE_WRITER_HH
