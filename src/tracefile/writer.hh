/**
 * @file
 * TraceFileWriter: streaming writer of the WLCTRC02 container.
 *
 * Records are serialized into a single in-memory block buffer
 * (recordsPerBlock × 136 B); a full buffer is checksummed, appended
 * to the file and its index entry (count, crc32, min/max address)
 * queued for the footer. close() flushes the final partial block and
 * writes the index + trailer. Memory use is one block, regardless of
 * trace length.
 */

#ifndef WLCRC_TRACEFILE_WRITER_HH
#define WLCRC_TRACEFILE_WRITER_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "tracefile/format.hh"
#include "trace/transaction.hh"

namespace wlcrc::tracefile
{

/** Blocked, indexed trace writer (WLCTRC02). */
class TraceFileWriter
{
  public:
    /**
     * Open @p path for writing and emit the header.
     * @param recordsPerBlock block capacity; smaller blocks mean a
     *        tighter streaming-memory bound and finer-grained shard
     *        pruning, at the cost of a larger footer index.
     * @throws std::runtime_error on open failure,
     *         std::invalid_argument if recordsPerBlock is 0.
     */
    explicit TraceFileWriter(
        const std::string &path,
        uint32_t recordsPerBlock = defaultRecordsPerBlock);

    /** Flushes and finalizes via close() if still open. */
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record. @throws std::runtime_error after close. */
    void write(const trace::WriteTransaction &txn);

    /**
     * Flush the pending partial block, write the footer index and
     * trailer, and close the file. Idempotent.
     * @throws std::runtime_error if the underlying stream failed.
     */
    void close();

    /** Records accepted so far. */
    uint64_t written() const { return total_; }

  private:
    void flushBlock();

    std::ofstream out_;
    std::string path_;
    uint32_t recordsPerBlock_;
    std::vector<uint8_t> block_; //!< serialized pending records
    uint32_t pending_ = 0;       //!< records in block_
    uint64_t pendingMin_ = 0;
    uint64_t pendingMax_ = 0;
    std::vector<BlockInfo> index_;
    uint64_t total_ = 0;
    bool open_ = true;
};

} // namespace wlcrc::tracefile

#endif // WLCRC_TRACEFILE_WRITER_HH
