/**
 * @file
 * TransactionSource: the abstraction the sharded replay consumes
 * instead of a shared std::vector<WriteTransaction>.
 *
 * A source is an immutable, shareable description of a transaction
 * stream; open() hands out an independent forward cursor, optionally
 * restricted to one shard's address partition (addr % shards ==
 * shard). Cursors of the same source never share mutable state, so
 * every shard of every grid point can stream concurrently.
 *
 * Implementations:
 *  - VectorSource      wraps an in-memory stream (legacy paths,
 *                      tests, grid convenience API);
 *  - V1FileSource      streams a WLCTRC01 dump record by record —
 *                      one record buffered, nothing slurped;
 *  - MappedTraceSource walks a WLCTRC02 container block-wise over a
 *                      shared MappedTrace: a sharded cursor skips
 *                      whole blocks whose [min, max] address range
 *                      cannot intersect its residue class, and each
 *                      visited block is CRC-checked on entry.
 *
 * openTraceSource() sniffs the on-disk format and returns the right
 * implementation, so consumers (wlcrc_sim --trace-in, examples)
 * accept both generations transparently.
 */

#ifndef WLCRC_TRACEFILE_SOURCE_HH
#define WLCRC_TRACEFILE_SOURCE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "tracefile/mapped_trace.hh"
#include "trace/trace_io.hh"
#include "trace/transaction.hh"

namespace wlcrc::tracefile
{

/** Address partition a cursor is restricted to. */
struct ShardFilter
{
    unsigned shards = 1; //!< modulus; <= 1 means unfiltered
    unsigned shard = 0;  //!< residue class to keep

    bool all() const { return shards <= 1; }

    bool
    accepts(uint64_t addr) const
    {
        return all() || addr % shards == shard;
    }
};

/** Forward-only pull cursor over one shard's transactions. */
class TraceCursor
{
  public:
    virtual ~TraceCursor() = default;

    /** @return the next matching transaction, or nullopt at end. */
    virtual std::optional<trace::WriteTransaction> next() = 0;

    /**
     * Upper bound on the trace bytes this cursor ever buffers at
     * once — the streaming memory model: one record for a v1 file
     * scan, one block view for a v2 container, 0 for an already
     * materialised in-memory stream.
     */
    virtual std::size_t bufferBytes() const = 0;

    /**
     * Blocks this cursor has decoded so far. Non-blocked sources
     * report 0; for MappedTraceSource the gap between this and the
     * container's blockCount() is the index-pruning win.
     */
    virtual uint64_t blocksVisited() const { return 0; }
};

/** Shareable, immutable description of a transaction stream. */
class TransactionSource
{
  public:
    virtual ~TransactionSource() = default;

    /** Open an independent cursor over @p filter's partition. */
    virtual std::unique_ptr<TraceCursor>
    open(const ShardFilter &filter = {}) const = 0;

    /** Total records in the stream (all shards). */
    virtual uint64_t records() const = 0;

    /** Human-readable origin, e.g. "wlctrc02:foo.trc (12 blocks)". */
    virtual std::string describe() const = 0;

    /**
     * 64-bit digest of the stream's record content, independent of
     * the label. Two sources with equal digests replay the same
     * records in the same container framing; the result cache folds
     * it into specHash() so editing a trace file in place
     * invalidates cached results (docs/caching.md). A WLCTRC02
     * source reads it straight off the footer (free); v1 files and
     * in-memory vectors checksum their records on the first call
     * (cached thereafter, thread-safe).
     */
    virtual uint64_t contentDigest() const = 0;

    /**
     * On-disk path backing this source, or "" for in-memory
     * streams. A spec is process-serializable (ProcessBackend,
     * wlcrc_sim --worker) only if its source has a path a child
     * process can re-open.
     */
    virtual std::string filePath() const { return {}; }

    /**
     * Short tag used as the report "source" column. Defaults to
     * "trace" for every implementation so replaying one stream via
     * vector, v1 or v2 yields byte-identical reports; set it when a
     * source axis needs distinguishable rows.
     */
    const std::string &label() const { return label_; }
    void setLabel(std::string l) { label_ = std::move(l); }

  private:
    std::string label_ = "trace";
};

/** In-memory stream (shared, read-only). */
class VectorSource : public TransactionSource
{
  public:
    explicit VectorSource(
        std::shared_ptr<const std::vector<trace::WriteTransaction>>
            txns);

    std::unique_ptr<TraceCursor>
    open(const ShardFilter &filter) const override;
    uint64_t records() const override { return txns_->size(); }
    std::string describe() const override;
    uint64_t contentDigest() const override;

    /** The backing stream — lets consumers that genuinely need a
     *  vector (custom replay hooks) borrow it instead of copying. */
    const std::vector<trace::WriteTransaction> &
    transactions() const
    {
        return *txns_;
    }

  private:
    std::shared_ptr<const std::vector<trace::WriteTransaction>>
        txns_;
    mutable std::mutex digestMutex_;
    mutable std::optional<uint64_t> digest_;
};

/** Streaming WLCTRC01 file scan; each cursor re-opens the file. */
class V1FileSource : public TransactionSource
{
  public:
    /** @throws std::runtime_error on open failure or bad magic. */
    explicit V1FileSource(std::string path);

    std::unique_ptr<TraceCursor>
    open(const ShardFilter &filter) const override;
    uint64_t records() const override { return records_; }
    std::string describe() const override;
    uint64_t contentDigest() const override;
    std::string filePath() const override { return path_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    uint64_t records_;
    mutable std::mutex digestMutex_;
    mutable std::optional<uint64_t> digest_;
};

/** Block-pruned streaming over a shared WLCTRC02 mapping. */
class MappedTraceSource : public TransactionSource
{
  public:
    /** Map @p path (see MappedTrace for failure modes). */
    explicit MappedTraceSource(const std::string &path);
    /** Wrap an existing mapping. */
    explicit MappedTraceSource(std::shared_ptr<const MappedTrace> mt);

    std::unique_ptr<TraceCursor>
    open(const ShardFilter &filter) const override;
    uint64_t records() const override { return trace_->records(); }
    std::string describe() const override;
    uint64_t contentDigest() const override;
    std::string filePath() const override { return trace_->path(); }

    const MappedTrace &trace() const { return *trace_; }

  private:
    std::shared_ptr<const MappedTrace> trace_;
};

/**
 * Open @p path as a TransactionSource, auto-detecting WLCTRC01 vs
 * WLCTRC02 by magic. @throws std::runtime_error for anything else.
 */
std::shared_ptr<TransactionSource>
openTraceSource(const std::string &path);

/**
 * Materialise a source's full (unfiltered) stream. Only for
 * consumers that genuinely need a vector — custom replay hooks,
 * format conversion tests; the replay path never calls this.
 */
std::vector<trace::WriteTransaction>
gather(const TransactionSource &source);

} // namespace wlcrc::tracefile

#endif // WLCRC_TRACEFILE_SOURCE_HH
