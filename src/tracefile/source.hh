/**
 * @file
 * TransactionSource: the abstraction the sharded replay consumes
 * instead of a shared std::vector<WriteTransaction>.
 *
 * A source is an immutable, shareable description of a transaction
 * stream; open() hands out an independent forward cursor, optionally
 * restricted to one shard's address partition. Cursors of the same
 * source never share mutable state, so every shard of every grid
 * point can stream concurrently.
 *
 * Partitions come in two flavours (ShardFilter::mode):
 *  - modulo: addr % shards == shard — the default; spreads any
 *    address pattern evenly but intersects almost every block of an
 *    unsorted container;
 *  - range:  lo <= addr <= hi — equal slices of the source's
 *    address span (rangePartition()); on a locality-sorted
 *    container (wlcrc_trace sort) each shard touches only its own
 *    contiguous run of blocks, so pruning skips nearly everything
 *    else.
 *
 * Implementations:
 *  - VectorSource      wraps an in-memory stream (legacy paths,
 *                      tests, grid convenience API);
 *  - V1FileSource      streams a WLCTRC01 dump record by record —
 *                      one record buffered, nothing slurped;
 *  - MappedTraceSource walks a WLCTRC02/03 container block-wise over
 *                      a shared MappedTrace: a sharded cursor skips
 *                      whole blocks whose [min, max] address range
 *                      cannot intersect its partition, and each
 *                      visited block is CRC-checked (and, for v3,
 *                      decompressed and re-checked) on entry.
 *
 * Decode-ahead: cursors over a compressed container stage block
 * verify+decompress on a background producer thread through a
 * bounded ring of preallocated buffers (zero steady-state
 * allocations), so decode overlaps the consumer's encode work.
 * Depth comes from WLCRC_DECODE_AHEAD (0 forces synchronous decode;
 * unset defaults to 2 for compressed containers, 0 otherwise — raw
 * blocks are served zero-copy and gain nothing from staging). The
 * record stream, errors included, is bit-identical either way;
 * decode-ahead is a result-invariant execution knob like WLCRC_SIMD
 * and is excluded from spec hashes.
 *
 * openTraceSource() sniffs the on-disk format and returns the right
 * implementation, so consumers (wlcrc_sim --trace-in, examples)
 * accept all generations transparently.
 */

#ifndef WLCRC_TRACEFILE_SOURCE_HH
#define WLCRC_TRACEFILE_SOURCE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "tracefile/mapped_trace.hh"
#include "trace/trace_io.hh"
#include "trace/transaction.hh"

namespace wlcrc::tracefile
{

/** How a sharded replay partitions the address space. */
enum class Partition
{
    modulo, //!< addr % shards == shard (default)
    range,  //!< equal slices of the source's [min, max] span
};

/** @return "modulo" or "range". */
const char *partitionName(Partition p);

/** Parse "modulo" / "range". @throws std::invalid_argument. */
Partition parsePartitionName(const std::string &name);

/** Address partition a cursor is restricted to. */
struct ShardFilter
{
    unsigned shards = 1; //!< shard count; <= 1 means unfiltered
    unsigned shard = 0;  //!< this cursor's shard
    Partition mode = Partition::modulo;
    uint64_t lo = 0;              //!< range mode: inclusive low bound
    uint64_t hi = ~uint64_t{0};   //!< range mode: inclusive high bound

    bool all() const { return shards <= 1; }

    bool
    accepts(uint64_t addr) const
    {
        if (all())
            return true;
        if (mode == Partition::modulo)
            return addr % shards == shard;
        return addr >= lo && addr <= hi;
    }
};

/**
 * @return true if a block whose addresses span [minAddr, maxAddr]
 * can contain a record @p filter accepts — the block-pruning
 * predicate (modulo residue coverage or interval intersection).
 */
bool blockIntersects(const ShardFilter &filter, uint64_t minAddr,
                     uint64_t maxAddr);

/**
 * Build shard @p shard's range filter by slicing @p bounds (the
 * source's inclusive [min, max] address span) into @p shards
 * near-equal contiguous pieces. Every address lands in exactly one
 * shard, for any bounds including the full 64-bit span.
 */
ShardFilter rangePartition(std::pair<uint64_t, uint64_t> bounds,
                           unsigned shards, unsigned shard);

/** Forward-only pull cursor over one shard's transactions. */
class TraceCursor
{
  public:
    virtual ~TraceCursor() = default;

    /** @return the next matching transaction, or nullopt at end. */
    virtual std::optional<trace::WriteTransaction> next() = 0;

    /**
     * Upper bound on the trace bytes this cursor ever buffers at
     * once — the streaming memory model: one record for a v1 file
     * scan, one block view for a container scan (times the staging
     * depth when decode-ahead is active), 0 for an already
     * materialised in-memory stream.
     */
    virtual std::size_t bufferBytes() const = 0;

    /**
     * Blocks this cursor has decoded so far. Non-blocked sources
     * report 0; for MappedTraceSource the gap between this and the
     * container's blockCount() is the index-pruning win.
     */
    virtual uint64_t blocksVisited() const { return 0; }
};

/** Shareable, immutable description of a transaction stream. */
class TransactionSource
{
  public:
    virtual ~TransactionSource() = default;

    /** Open an independent cursor over @p filter's partition. */
    virtual std::unique_ptr<TraceCursor>
    open(const ShardFilter &filter = {}) const = 0;

    /** Total records in the stream (all shards). */
    virtual uint64_t records() const = 0;

    /** Human-readable origin, e.g. "wlctrc02:foo.trc (12 blocks)". */
    virtual std::string describe() const = 0;

    /**
     * Inclusive [min, max] line-address bounds of the stream ({0, 0}
     * when empty) — the basis of range partitioning. Containers read
     * it off the footer index (free); v1 files and vectors scan once
     * and cache (thread-safe).
     */
    virtual std::pair<uint64_t, uint64_t> addrBounds() const = 0;

    /**
     * 64-bit digest of the stream's record content, independent of
     * the label. Two sources with equal digests replay the same
     * records in the same container framing; the result cache folds
     * it into specHash() so editing a trace file in place
     * invalidates cached results (docs/caching.md). A WLCTRC02/03
     * source reads it straight off the footer (free) — for v3 the
     * digest covers the uncompressed content, so rewriting a file
     * with a different codec keeps it stable while any payload
     * change moves it; v1 files and in-memory vectors checksum
     * their records on the first call (cached thereafter,
     * thread-safe).
     */
    virtual uint64_t contentDigest() const = 0;

    /**
     * On-disk path backing this source, or "" for in-memory
     * streams. A spec is process-serializable (ProcessBackend,
     * wlcrc_sim --worker) only if its source has a path a child
     * process can re-open.
     */
    virtual std::string filePath() const { return {}; }

    /**
     * Short tag used as the report "source" column. Defaults to
     * "trace" for every implementation so replaying one stream via
     * vector, v1, v2 or v3 yields byte-identical reports; set it
     * when a source axis needs distinguishable rows.
     */
    const std::string &label() const { return label_; }
    void setLabel(std::string l) { label_ = std::move(l); }

  private:
    std::string label_ = "trace";
};

/** In-memory stream (shared, read-only). */
class VectorSource : public TransactionSource
{
  public:
    explicit VectorSource(
        std::shared_ptr<const std::vector<trace::WriteTransaction>>
            txns);

    std::unique_ptr<TraceCursor>
    open(const ShardFilter &filter) const override;
    uint64_t records() const override { return txns_->size(); }
    std::string describe() const override;
    std::pair<uint64_t, uint64_t> addrBounds() const override;
    uint64_t contentDigest() const override;

    /** The backing stream — lets consumers that genuinely need a
     *  vector (custom replay hooks) borrow it instead of copying. */
    const std::vector<trace::WriteTransaction> &
    transactions() const
    {
        return *txns_;
    }

  private:
    std::shared_ptr<const std::vector<trace::WriteTransaction>>
        txns_;
    mutable std::mutex digestMutex_;
    mutable std::optional<uint64_t> digest_;
    mutable std::optional<std::pair<uint64_t, uint64_t>> bounds_;
};

/** Streaming WLCTRC01 file scan; each cursor re-opens the file. */
class V1FileSource : public TransactionSource
{
  public:
    /** @throws std::runtime_error on open failure or bad magic. */
    explicit V1FileSource(std::string path);

    std::unique_ptr<TraceCursor>
    open(const ShardFilter &filter) const override;
    uint64_t records() const override { return records_; }
    std::string describe() const override;
    std::pair<uint64_t, uint64_t> addrBounds() const override;
    uint64_t contentDigest() const override;
    std::string filePath() const override { return path_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    uint64_t records_;
    mutable std::mutex digestMutex_;
    mutable std::optional<uint64_t> digest_;
    mutable std::optional<std::pair<uint64_t, uint64_t>> bounds_;
};

/** Block-pruned streaming over a shared WLCTRC02/03 mapping. */
class MappedTraceSource : public TransactionSource
{
  public:
    /** Map @p path (see MappedTrace for failure modes). */
    explicit MappedTraceSource(const std::string &path);
    /** Wrap an existing mapping. */
    explicit MappedTraceSource(std::shared_ptr<const MappedTrace> mt);

    std::unique_ptr<TraceCursor>
    open(const ShardFilter &filter) const override;
    uint64_t records() const override { return trace_->records(); }
    std::string describe() const override;
    std::pair<uint64_t, uint64_t> addrBounds() const override;
    uint64_t contentDigest() const override;
    std::string filePath() const override { return trace_->path(); }

    const MappedTrace &trace() const { return *trace_; }

  private:
    std::shared_ptr<const MappedTrace> trace_;
};

/**
 * Open @p path as a TransactionSource, auto-detecting WLCTRC01/02/03
 * by magic. @throws std::runtime_error for anything else.
 */
std::shared_ptr<TransactionSource>
openTraceSource(const std::string &path);

/**
 * Materialise a source's full (unfiltered) stream. Only for
 * consumers that genuinely need a vector — custom replay hooks,
 * format conversion tests; the replay path never calls this.
 */
std::vector<trace::WriteTransaction>
gather(const TransactionSource &source);

} // namespace wlcrc::tracefile

#endif // WLCRC_TRACEFILE_SOURCE_HH
