/**
 * @file
 * Per-block codec dispatch for the WLCTRC03 container.
 *
 * WLCTRC03 tags every block with a codec byte (format.hh BlockCodec)
 * so readers decode each block independently: raw blocks are served
 * zero-copy straight from the mapping, compressed blocks are
 * inflated into a caller-owned scratch buffer. The always-available
 * codec is the dependency-free LZ in common/lz.hh; zstd joins the
 * menu when CMake finds the library (WLCRC_HAVE_ZSTD) — a file
 * compressed with zstd on one machine fails with a named error, not
 * garbage, on a build without it.
 */

#ifndef WLCRC_TRACEFILE_BLOCK_CODEC_HH
#define WLCRC_TRACEFILE_BLOCK_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/lz.hh"
#include "tracefile/format.hh"

namespace wlcrc::tracefile
{

/** @return true if this build can encode/decode @p codec. */
bool codecAvailable(BlockCodec codec);

/** Parse "raw" / "lz" / "zstd". @throws std::invalid_argument. */
BlockCodec parseCodecName(const std::string &name);

/**
 * Compress @p src[0..srcLen) with @p codec into @p dst.
 * @return compressed size, or 0 if the result would not fit in
 * @p dstCap (callers then store the block raw).
 * @throws std::runtime_error if @p codec is unavailable or raw.
 */
std::size_t compressBlock(BlockCodec codec, const uint8_t *src,
                          std::size_t srcLen, uint8_t *dst,
                          std::size_t dstCap, LzScratch &scratch);

/**
 * Decompress @p src[0..srcLen) into @p dst[0..dstCap).
 * @return bytes produced.
 * @throws std::runtime_error naming the defect on malformed input,
 * and "built without zstd" style errors for unavailable codecs.
 */
std::size_t decompressBlock(BlockCodec codec, const uint8_t *src,
                            std::size_t srcLen, uint8_t *dst,
                            std::size_t dstCap);

} // namespace wlcrc::tracefile

#endif // WLCRC_TRACEFILE_BLOCK_CODEC_HH
