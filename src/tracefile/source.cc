#include "source.hh"

#include <algorithm>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/crc32.hh"
#include "common/env.hh"
#include "tracefile/format.hh"

namespace wlcrc::tracefile
{

namespace
{

/** Cursor over a shared in-memory vector. */
class VectorCursor : public TraceCursor
{
  public:
    VectorCursor(
        std::shared_ptr<const std::vector<trace::WriteTransaction>>
            txns,
        ShardFilter filter)
        : txns_(std::move(txns)), filter_(filter)
    {}

    std::optional<trace::WriteTransaction>
    next() override
    {
        while (pos_ < txns_->size()) {
            const auto &t = (*txns_)[pos_++];
            if (filter_.accepts(t.lineAddr))
                return t;
        }
        return std::nullopt;
    }

    std::size_t bufferBytes() const override { return 0; }

  private:
    std::shared_ptr<const std::vector<trace::WriteTransaction>>
        txns_;
    ShardFilter filter_;
    std::size_t pos_ = 0;
};

/** Record-at-a-time scan of a WLCTRC01 file. */
class V1Cursor : public TraceCursor
{
  public:
    V1Cursor(const std::string &path, ShardFilter filter)
        : reader_(path), filter_(filter)
    {}

    std::optional<trace::WriteTransaction>
    next() override
    {
        while (auto t = reader_.read()) {
            if (filter_.accepts(t->lineAddr))
                return t;
        }
        return std::nullopt;
    }

    std::size_t bufferBytes() const override { return recordBytes; }

  private:
    trace::TraceReader reader_;
    ShardFilter filter_;
};

/** Synchronous block-wise walk of a mapping with index pruning. */
class MappedCursor : public TraceCursor
{
  public:
    MappedCursor(std::shared_ptr<const MappedTrace> mt,
                 ShardFilter filter)
        : trace_(std::move(mt)), filter_(filter)
    {}

    std::optional<trace::WriteTransaction>
    next() override
    {
        while (true) {
            if (inBlock_ && rec_ < view_.count) {
                const uint8_t *p =
                    view_.data + std::size_t{rec_++} * recordBytes;
                if (filter_.accepts(getLe64(p)))
                    return decodeRecord(p);
                continue;
            }
            if (inBlock_) {
                ++block_; // finished the current block
                inBlock_ = false;
            }
            // Advance to the next block the filter can intersect.
            while (block_ < trace_->blockCount()) {
                const auto &info = trace_->blockInfo(block_);
                if (filter_.all() ||
                    blockIntersects(filter_, info.minAddr,
                                    info.maxAddr))
                    break;
                ++block_; // pruned: address range misses the shard
            }
            if (block_ >= trace_->blockCount())
                return std::nullopt;
            // Checksum (and decompress) on first entry.
            view_ = trace_->readBlock(block_, scratch_);
            ++visited_;
            inBlock_ = true;
            rec_ = 0;
        }
    }

    std::size_t
    bufferBytes() const override
    {
        return std::size_t{trace_->recordsPerBlock()} * recordBytes;
    }

    uint64_t blocksVisited() const override { return visited_; }

  private:
    std::shared_ptr<const MappedTrace> trace_;
    ShardFilter filter_;
    std::vector<uint8_t> scratch_;
    BlockView view_;
    uint64_t block_ = 0;
    uint32_t rec_ = 0;
    bool inBlock_ = false;
    uint64_t visited_ = 0;
};

/**
 * Decode-ahead block walk: a producer thread prunes, checksums and
 * decompresses blocks into a bounded ring of preallocated slots
 * while the consumer drains records — block decode overlaps the
 * caller's encode work. Slot buffers are sized by the first
 * compressed block and reused forever after (zero steady-state
 * allocations). Errors travel through the ring as exception_ptrs
 * and rethrow exactly where the synchronous cursor would have
 * thrown, so the record/error stream is bit-identical to
 * MappedCursor's.
 */
class PrefetchCursor : public TraceCursor
{
  public:
    PrefetchCursor(std::shared_ptr<const MappedTrace> mt,
                   ShardFilter filter, unsigned depth)
        : trace_(std::move(mt)), filter_(filter),
          slots_(depth > 0 ? depth : 1)
    {
        producer_ = std::thread([this] { produce(); });
    }

    ~PrefetchCursor() override
    {
        {
            std::lock_guard lk(m_);
            stop_ = true;
        }
        cvFree_.notify_all();
        producer_.join();
    }

    std::optional<trace::WriteTransaction>
    next() override
    {
        while (true) {
            if (cur_) {
                while (rec_ < cur_->view.count) {
                    const uint8_t *p =
                        cur_->view.data +
                        std::size_t{rec_++} * recordBytes;
                    if (filter_.accepts(getLe64(p)))
                        return decodeRecord(p);
                }
                {
                    std::lock_guard lk(m_);
                    cur_->filled = false;
                    ++consSeq_;
                }
                cvFree_.notify_one();
                cur_ = nullptr;
            }
            std::unique_lock lk(m_);
            cvFilled_.wait(lk, [this] {
                return prodSeq_ > consSeq_ || producerDone_;
            });
            if (prodSeq_ == consSeq_ && producerDone_)
                return std::nullopt;
            Slot &s = slots_[consSeq_ % slots_.size()];
            if (s.err) {
                // Consume the slot so destruction can't deadlock,
                // then surface the error exactly like a synchronous
                // readBlock() at this block would have.
                const std::exception_ptr err = s.err;
                s.err = nullptr;
                s.filled = false;
                ++consSeq_;
                lk.unlock();
                cvFree_.notify_one();
                std::rethrow_exception(err);
            }
            cur_ = &s;
            rec_ = 0;
            ++visited_;
        }
    }

    std::size_t
    bufferBytes() const override
    {
        return slots_.size() *
               std::size_t{trace_->recordsPerBlock()} * recordBytes;
    }

    uint64_t blocksVisited() const override { return visited_; }

  private:
    struct Slot
    {
        std::vector<uint8_t> scratch;
        BlockView view;
        std::exception_ptr err;
        bool filled = false;
    };

    void
    produce()
    {
        for (uint64_t b = 0; b < trace_->blockCount(); ++b) {
            const auto &info = trace_->blockInfo(b);
            if (!filter_.all() &&
                !blockIntersects(filter_, info.minAddr,
                                 info.maxAddr))
                continue;
            Slot &s = slots_[prodSeq_ % slots_.size()];
            {
                std::unique_lock lk(m_);
                cvFree_.wait(lk,
                             [&] { return stop_ || !s.filled; });
                if (stop_)
                    return;
            }
            // The slot is exclusively ours until filled is set.
            bool bad = false;
            try {
                s.view = trace_->readBlock(b, s.scratch);
                s.err = nullptr;
            } catch (...) {
                s.err = std::current_exception();
                bad = true;
            }
            {
                std::lock_guard lk(m_);
                s.filled = true;
                ++prodSeq_;
                if (bad)
                    producerDone_ = true; // error ends the stream
            }
            cvFilled_.notify_one();
            if (bad)
                return;
        }
        {
            std::lock_guard lk(m_);
            producerDone_ = true;
        }
        cvFilled_.notify_one();
    }

    std::shared_ptr<const MappedTrace> trace_;
    ShardFilter filter_;
    std::vector<Slot> slots_;
    std::thread producer_;
    std::mutex m_;
    std::condition_variable cvFilled_, cvFree_;
    uint64_t prodSeq_ = 0;  //!< slots published (guarded by m_)
    uint64_t consSeq_ = 0;  //!< slots released (guarded by m_)
    bool producerDone_ = false;
    bool stop_ = false;
    Slot *cur_ = nullptr; //!< slot the consumer is draining
    uint32_t rec_ = 0;
    uint64_t visited_ = 0;
};

/**
 * Staging depth for a cursor over @p trace: WLCRC_DECODE_AHEAD when
 * set (0 = synchronous), else 2 for compressed containers and 0 for
 * raw ones (raw blocks are zero-copy views; staging would only add
 * thread handoffs).
 */
unsigned
decodeAheadDepth(const MappedTrace &trace)
{
    const uint64_t def = trace.anyCompressed() ? 2 : 0;
    const uint64_t depth = envU64("WLCRC_DECODE_AHEAD", def);
    return static_cast<unsigned>(std::min<uint64_t>(depth, 64));
}

} // namespace

// --------------------------------------------------- partitioning

const char *
partitionName(Partition p)
{
    return p == Partition::modulo ? "modulo" : "range";
}

Partition
parsePartitionName(const std::string &name)
{
    if (name == "modulo")
        return Partition::modulo;
    if (name == "range")
        return Partition::range;
    throw std::invalid_argument(
        "unknown partition mode: " + name +
        " (expected modulo or range)");
}

bool
blockIntersects(const ShardFilter &filter, uint64_t minAddr,
                uint64_t maxAddr)
{
    if (filter.all())
        return true;
    if (filter.mode == Partition::modulo)
        return rangeHasResidue(minAddr, maxAddr, filter.shards,
                               filter.shard);
    return maxAddr >= filter.lo && minAddr <= filter.hi;
}

ShardFilter
rangePartition(std::pair<uint64_t, uint64_t> bounds, unsigned shards,
               unsigned shard)
{
    ShardFilter f;
    f.shards = shards;
    f.shard = shard;
    f.mode = Partition::range;
    if (shards <= 1)
        return f;
    const uint64_t lo = bounds.first;
    const uint64_t hi = bounds.second;
    if (lo > hi)
        throw std::invalid_argument(
            "rangePartition: inverted address bounds");
    // 128-bit arithmetic: span can be 2^64 for the full space, and
    // the per-shard products overflow 64 bits long before that.
    const unsigned __int128 span =
        static_cast<unsigned __int128>(hi) - lo + 1;
    f.lo = lo + static_cast<uint64_t>(span * shard / shards);
    f.hi = shard + 1 == shards
               ? hi
               : lo + static_cast<uint64_t>(
                          span * (shard + 1) / shards) -
                     1;
    return f;
}

// ------------------------------------------------------ VectorSource

VectorSource::VectorSource(
    std::shared_ptr<const std::vector<trace::WriteTransaction>> txns)
    : txns_(std::move(txns))
{
    if (!txns_)
        throw std::invalid_argument(
            "VectorSource: null transaction vector");
}

std::unique_ptr<TraceCursor>
VectorSource::open(const ShardFilter &filter) const
{
    return std::make_unique<VectorCursor>(txns_, filter);
}

std::string
VectorSource::describe() const
{
    std::ostringstream os;
    os << "memory (" << txns_->size() << " records)";
    return os.str();
}

std::pair<uint64_t, uint64_t>
VectorSource::addrBounds() const
{
    std::lock_guard lock(digestMutex_);
    if (!bounds_) {
        uint64_t lo = 0;
        uint64_t hi = 0;
        bool first = true;
        for (const auto &t : *txns_) {
            if (first || t.lineAddr < lo)
                lo = t.lineAddr;
            if (first || t.lineAddr > hi)
                hi = t.lineAddr;
            first = false;
        }
        bounds_ = {lo, hi};
    }
    return *bounds_;
}

uint64_t
VectorSource::contentDigest() const
{
    std::lock_guard lock(digestMutex_);
    if (!digest_) {
        uint32_t crc = 0;
        uint8_t buf[recordBytes];
        for (const auto &t : *txns_) {
            encodeRecord(buf, t);
            crc = crc32(buf, sizeof buf, crc);
        }
        digest_ = (uint64_t{crc} << 32) ^ txns_->size();
    }
    return *digest_;
}

// ------------------------------------------------------ V1FileSource

V1FileSource::V1FileSource(std::string path) : path_(std::move(path))
{
    // Constructing a reader validates existence and magic up front;
    // the byte count then pins the record count without a scan. A
    // trailing partial record surfaces when a cursor reaches it.
    trace::TraceReader probe(path_);
    const auto bytes = std::filesystem::file_size(path_);
    records_ = (bytes - sizeof(magicV1)) / recordBytes;
}

std::unique_ptr<TraceCursor>
V1FileSource::open(const ShardFilter &filter) const
{
    return std::make_unique<V1Cursor>(path_, filter);
}

std::string
V1FileSource::describe() const
{
    std::ostringstream os;
    os << "wlctrc01:" << path_ << " (" << records_
       << " records, streamed)";
    return os.str();
}

std::pair<uint64_t, uint64_t>
V1FileSource::addrBounds() const
{
    std::lock_guard lock(digestMutex_);
    if (!bounds_) {
        trace::TraceReader reader(path_);
        uint64_t lo = 0;
        uint64_t hi = 0;
        bool first = true;
        while (auto t = reader.read()) {
            if (first || t->lineAddr < lo)
                lo = t->lineAddr;
            if (first || t->lineAddr > hi)
                hi = t->lineAddr;
            first = false;
        }
        bounds_ = {lo, hi};
    }
    return *bounds_;
}

uint64_t
V1FileSource::contentDigest() const
{
    std::lock_guard lock(digestMutex_);
    if (!digest_) {
        // A v1 dump has no stored checksums, so the digest is a
        // full-file CRC (one streaming read, first call only).
        std::ifstream in(path_, std::ios::binary);
        if (!in)
            throw std::runtime_error(
                "V1FileSource: cannot reopen " + path_);
        uint32_t crc = 0;
        uint64_t bytes = 0;
        char buf[1 << 16];
        while (in.read(buf, sizeof buf) || in.gcount() > 0) {
            crc = crc32(buf, static_cast<std::size_t>(in.gcount()),
                        crc);
            bytes += static_cast<uint64_t>(in.gcount());
            if (in.eof())
                break;
        }
        digest_ = (uint64_t{crc} << 32) ^ bytes;
    }
    return *digest_;
}

// ------------------------------------------------- MappedTraceSource

MappedTraceSource::MappedTraceSource(const std::string &path)
    : trace_(std::make_shared<const MappedTrace>(path))
{}

MappedTraceSource::MappedTraceSource(
    std::shared_ptr<const MappedTrace> mt)
    : trace_(std::move(mt))
{
    if (!trace_)
        throw std::invalid_argument(
            "MappedTraceSource: null mapping");
}

std::unique_ptr<TraceCursor>
MappedTraceSource::open(const ShardFilter &filter) const
{
    const unsigned depth = decodeAheadDepth(*trace_);
    if (depth == 0 || trace_->records() == 0)
        return std::make_unique<MappedCursor>(trace_, filter);
    return std::make_unique<PrefetchCursor>(trace_, filter, depth);
}

std::pair<uint64_t, uint64_t>
MappedTraceSource::addrBounds() const
{
    return {trace_->minAddr(), trace_->maxAddr()};
}

uint64_t
MappedTraceSource::contentDigest() const
{
    // The codec-invariant content CRC covers every block's raw CRC,
    // which cover every record byte — one word pins the whole
    // container (and matches the v2 digest of the same records).
    return (uint64_t{trace_->contentCrc()} << 32) ^
           trace_->records();
}

std::string
MappedTraceSource::describe() const
{
    std::ostringstream os;
    os << "wlctrc0" << (trace_->format() == TraceFormat::v3 ? 3 : 2)
       << ":" << trace_->path() << " (" << trace_->records()
       << " records, " << trace_->blockCount() << " blocks of "
       << trace_->recordsPerBlock() << ", mmap)";
    return os.str();
}

// -------------------------------------------------------------- free

std::shared_ptr<TransactionSource>
openTraceSource(const std::string &path)
{
    switch (detectFormat(path)) {
    case TraceFormat::v1:
        return std::make_shared<V1FileSource>(path);
    case TraceFormat::v2:
    case TraceFormat::v3:
        return std::make_shared<MappedTraceSource>(path);
    }
    throw std::logic_error("openTraceSource: unreachable");
}

std::vector<trace::WriteTransaction>
gather(const TransactionSource &source)
{
    std::vector<trace::WriteTransaction> txns;
    txns.reserve(source.records());
    auto cursor = source.open({});
    while (auto t = cursor->next())
        txns.push_back(*t);
    return txns;
}

} // namespace wlcrc::tracefile
