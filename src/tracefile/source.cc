#include "source.hh"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/crc32.hh"
#include "tracefile/format.hh"

namespace wlcrc::tracefile
{

namespace
{

/** Cursor over a shared in-memory vector. */
class VectorCursor : public TraceCursor
{
  public:
    VectorCursor(
        std::shared_ptr<const std::vector<trace::WriteTransaction>>
            txns,
        ShardFilter filter)
        : txns_(std::move(txns)), filter_(filter)
    {}

    std::optional<trace::WriteTransaction>
    next() override
    {
        while (pos_ < txns_->size()) {
            const auto &t = (*txns_)[pos_++];
            if (filter_.accepts(t.lineAddr))
                return t;
        }
        return std::nullopt;
    }

    std::size_t bufferBytes() const override { return 0; }

  private:
    std::shared_ptr<const std::vector<trace::WriteTransaction>>
        txns_;
    ShardFilter filter_;
    std::size_t pos_ = 0;
};

/** Record-at-a-time scan of a WLCTRC01 file. */
class V1Cursor : public TraceCursor
{
  public:
    V1Cursor(const std::string &path, ShardFilter filter)
        : reader_(path), filter_(filter)
    {}

    std::optional<trace::WriteTransaction>
    next() override
    {
        while (auto t = reader_.read()) {
            if (filter_.accepts(t->lineAddr))
                return t;
        }
        return std::nullopt;
    }

    std::size_t bufferBytes() const override { return recordBytes; }

  private:
    trace::TraceReader reader_;
    ShardFilter filter_;
};

/** Block-wise walk of a WLCTRC02 mapping with index pruning. */
class MappedCursor : public TraceCursor
{
  public:
    MappedCursor(std::shared_ptr<const MappedTrace> mt,
                 ShardFilter filter)
        : trace_(std::move(mt)), filter_(filter)
    {}

    std::optional<trace::WriteTransaction>
    next() override
    {
        while (true) {
            if (inBlock_ && rec_ < trace_->blockInfo(block_).count) {
                const auto t = trace_->recordInBlock(block_, rec_++);
                if (filter_.accepts(t.lineAddr))
                    return t;
                continue;
            }
            if (inBlock_) {
                ++block_; // finished the current block
                inBlock_ = false;
            }
            // Advance to the next block the filter can intersect.
            while (block_ < trace_->blockCount()) {
                const auto &info = trace_->blockInfo(block_);
                if (filter_.all() ||
                    rangeHasResidue(info.minAddr, info.maxAddr,
                                    filter_.shards, filter_.shard))
                    break;
                ++block_; // pruned: address range misses the shard
            }
            if (block_ >= trace_->blockCount())
                return std::nullopt;
            trace_->verifyBlock(block_); // audit on first entry
            ++visited_;
            inBlock_ = true;
            rec_ = 0;
        }
    }

    std::size_t
    bufferBytes() const override
    {
        return std::size_t{trace_->recordsPerBlock()} * recordBytes;
    }

    uint64_t blocksVisited() const override { return visited_; }

  private:
    std::shared_ptr<const MappedTrace> trace_;
    ShardFilter filter_;
    uint64_t block_ = 0;
    uint32_t rec_ = 0;
    bool inBlock_ = false;
    uint64_t visited_ = 0;
};

} // namespace

// ------------------------------------------------------ VectorSource

VectorSource::VectorSource(
    std::shared_ptr<const std::vector<trace::WriteTransaction>> txns)
    : txns_(std::move(txns))
{
    if (!txns_)
        throw std::invalid_argument(
            "VectorSource: null transaction vector");
}

std::unique_ptr<TraceCursor>
VectorSource::open(const ShardFilter &filter) const
{
    return std::make_unique<VectorCursor>(txns_, filter);
}

std::string
VectorSource::describe() const
{
    std::ostringstream os;
    os << "memory (" << txns_->size() << " records)";
    return os.str();
}

uint64_t
VectorSource::contentDigest() const
{
    std::lock_guard lock(digestMutex_);
    if (!digest_) {
        uint32_t crc = 0;
        uint8_t buf[recordBytes];
        for (const auto &t : *txns_) {
            encodeRecord(buf, t);
            crc = crc32(buf, sizeof buf, crc);
        }
        digest_ = (uint64_t{crc} << 32) ^ txns_->size();
    }
    return *digest_;
}

// ------------------------------------------------------ V1FileSource

V1FileSource::V1FileSource(std::string path) : path_(std::move(path))
{
    // Constructing a reader validates existence and magic up front;
    // the byte count then pins the record count without a scan. A
    // trailing partial record surfaces when a cursor reaches it.
    trace::TraceReader probe(path_);
    const auto bytes = std::filesystem::file_size(path_);
    records_ = (bytes - sizeof(magicV1)) / recordBytes;
}

std::unique_ptr<TraceCursor>
V1FileSource::open(const ShardFilter &filter) const
{
    return std::make_unique<V1Cursor>(path_, filter);
}

std::string
V1FileSource::describe() const
{
    std::ostringstream os;
    os << "wlctrc01:" << path_ << " (" << records_
       << " records, streamed)";
    return os.str();
}

uint64_t
V1FileSource::contentDigest() const
{
    std::lock_guard lock(digestMutex_);
    if (!digest_) {
        // A v1 dump has no stored checksums, so the digest is a
        // full-file CRC (one streaming read, first call only).
        std::ifstream in(path_, std::ios::binary);
        if (!in)
            throw std::runtime_error(
                "V1FileSource: cannot reopen " + path_);
        uint32_t crc = 0;
        uint64_t bytes = 0;
        char buf[1 << 16];
        while (in.read(buf, sizeof buf) || in.gcount() > 0) {
            crc = crc32(buf, static_cast<std::size_t>(in.gcount()),
                        crc);
            bytes += static_cast<uint64_t>(in.gcount());
            if (in.eof())
                break;
        }
        digest_ = (uint64_t{crc} << 32) ^ bytes;
    }
    return *digest_;
}

// ------------------------------------------------- MappedTraceSource

MappedTraceSource::MappedTraceSource(const std::string &path)
    : trace_(std::make_shared<const MappedTrace>(path))
{}

MappedTraceSource::MappedTraceSource(
    std::shared_ptr<const MappedTrace> mt)
    : trace_(std::move(mt))
{
    if (!trace_)
        throw std::invalid_argument(
            "MappedTraceSource: null mapping");
}

std::unique_ptr<TraceCursor>
MappedTraceSource::open(const ShardFilter &filter) const
{
    return std::make_unique<MappedCursor>(trace_, filter);
}

uint64_t
MappedTraceSource::contentDigest() const
{
    // The footer index CRC covers every block's CRC, which cover
    // every record byte — one word pins the whole container.
    return (uint64_t{trace_->indexCrc()} << 32) ^ trace_->records();
}

std::string
MappedTraceSource::describe() const
{
    std::ostringstream os;
    os << "wlctrc02:" << trace_->path() << " ("
       << trace_->records() << " records, "
       << trace_->blockCount() << " blocks of "
       << trace_->recordsPerBlock() << ", mmap)";
    return os.str();
}

// -------------------------------------------------------------- free

std::shared_ptr<TransactionSource>
openTraceSource(const std::string &path)
{
    switch (detectFormat(path)) {
    case TraceFormat::v1:
        return std::make_shared<V1FileSource>(path);
    case TraceFormat::v2:
        return std::make_shared<MappedTraceSource>(path);
    }
    throw std::logic_error("openTraceSource: unreachable");
}

std::vector<trace::WriteTransaction>
gather(const TransactionSource &source)
{
    std::vector<trace::WriteTransaction> txns;
    txns.reserve(source.records());
    auto cursor = source.open({});
    while (auto t = cursor->next())
        txns.push_back(*t);
    return txns;
}

} // namespace wlcrc::tracefile
