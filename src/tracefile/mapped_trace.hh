/**
 * @file
 * MappedTrace: mmap-backed random-access reader of a WLCTRC02
 * container.
 *
 * The whole file is mapped read-only, so "loading" a multi-gigabyte
 * trace costs one mmap plus decoding the footer index — record bytes
 * are paged in lazily by the OS as blocks are actually touched, and
 * evicted under memory pressure. A forward scan therefore keeps at
 * most one block resident per cursor; nothing is ever slurped into a
 * std::vector.
 *
 * Corruption handling: structural problems (bad magic, impossible
 * offsets, index CRC mismatch) throw at construction; payload
 * corruption throws when — and only when — the affected block is
 * checksummed, either by verifyBlock()/verifyAll() or by a cursor
 * entering the block (tracefile/source.hh).
 */

#ifndef WLCRC_TRACEFILE_MAPPED_TRACE_HH
#define WLCRC_TRACEFILE_MAPPED_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tracefile/format.hh"
#include "trace/transaction.hh"

namespace wlcrc::tracefile
{

/** Read-only memory-mapped WLCTRC02 trace. */
class MappedTrace
{
  public:
    /**
     * Map @p path and decode header, index and trailer.
     * @throws std::runtime_error on open/map failure or any
     *         structural inconsistency.
     */
    explicit MappedTrace(const std::string &path);

    ~MappedTrace();

    MappedTrace(const MappedTrace &) = delete;
    MappedTrace &operator=(const MappedTrace &) = delete;

    const std::string &path() const { return path_; }
    /** Total records in the trace. */
    uint64_t records() const { return records_; }
    /** Number of record blocks. */
    uint64_t blockCount() const { return index_.size(); }
    /** Block capacity the file was written with. */
    uint32_t recordsPerBlock() const { return recordsPerBlock_; }
    /** Index entry of block @p b. */
    const BlockInfo &blockInfo(uint64_t b) const { return index_[b]; }
    /** Smallest line address in the trace (0 if empty). */
    uint64_t minAddr() const { return minAddr_; }
    /** Largest line address in the trace (0 if empty). */
    uint64_t maxAddr() const { return maxAddr_; }
    /**
     * CRC32 of the footer index, as stored in the trailer. The
     * index embeds every block's CRC, so this single word pins the
     * container's entire record content — the result cache uses it
     * as the trace content digest (docs/caching.md).
     */
    uint32_t indexCrc() const { return indexCrc_; }

    /** Raw serialized bytes of block @p b (count × recordBytes). */
    const uint8_t *blockData(uint64_t b) const;

    /** Decode record @p i of block @p b (no checksum pass). */
    trace::WriteTransaction recordInBlock(uint64_t b,
                                          uint32_t i) const;

    /** Decode record @p i of the whole trace (random access). */
    trace::WriteTransaction record(uint64_t i) const;

    /**
     * Recompute block @p b's checksum.
     * @throws std::runtime_error naming the block and file on
     *         mismatch.
     */
    void verifyBlock(uint64_t b) const;

    /** verifyBlock() every block. @return records audited. */
    uint64_t verifyAll() const;

  private:
    std::string path_;
    const uint8_t *base_ = nullptr; //!< mapping base (nullptr: empty)
    std::size_t size_ = 0;          //!< file/mapping length
    uint32_t recordsPerBlock_ = 0;
    uint64_t records_ = 0;
    uint64_t minAddr_ = 0;
    uint64_t maxAddr_ = 0;
    uint32_t indexCrc_ = 0;
    std::vector<BlockInfo> index_;
};

} // namespace wlcrc::tracefile

#endif // WLCRC_TRACEFILE_MAPPED_TRACE_HH
