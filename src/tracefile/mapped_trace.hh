/**
 * @file
 * MappedTrace: mmap-backed random-access reader of the WLCTRC02 and
 * WLCTRC03 containers.
 *
 * The whole file is mapped read-only, so "loading" a multi-gigabyte
 * trace costs one mmap plus decoding the footer index — record bytes
 * are paged in lazily by the OS as blocks are actually touched, and
 * evicted under memory pressure. A forward scan keeps at most one
 * decoded block resident per cursor; nothing is ever slurped into a
 * whole-file vector.
 *
 * Both container generations expose one uniform surface: every block
 * has a BlockInfo with storage offset, stored size, codec and both
 * checksums (synthesized from the fixed blocking for v2), and
 * readBlock() hands out the uncompressed record bytes — zero-copy
 * straight from the mapping for raw blocks, inflated into a
 * caller-reused scratch buffer for compressed ones.
 *
 * Corruption handling: structural problems (bad magic, impossible
 * offsets or sizes, index CRC mismatch) throw at construction;
 * payload corruption throws when — and only when — the affected
 * block is decoded, either by verifyBlock()/verifyAll() or by a
 * cursor entering the block (tracefile/source.hh). Compressed blocks
 * are checked in depth: stored-byte CRC before decode, then decoded
 * length and raw CRC after — a truncated, bit-flipped or
 * length-lying payload fails with a named error, never an over-read.
 */

#ifndef WLCRC_TRACEFILE_MAPPED_TRACE_HH
#define WLCRC_TRACEFILE_MAPPED_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tracefile/format.hh"
#include "trace/transaction.hh"

namespace wlcrc::tracefile
{

/** Uncompressed view of one block's record bytes. */
struct BlockView
{
    const uint8_t *data = nullptr; //!< count × recordBytes bytes
    uint32_t count = 0;            //!< records in the block
};

/** Read-only memory-mapped WLCTRC02/WLCTRC03 trace. */
class MappedTrace
{
  public:
    /**
     * Map @p path and decode header, index and trailer.
     * @throws std::runtime_error on open/map failure or any
     *         structural inconsistency.
     */
    explicit MappedTrace(const std::string &path);

    ~MappedTrace();

    MappedTrace(const MappedTrace &) = delete;
    MappedTrace &operator=(const MappedTrace &) = delete;

    const std::string &path() const { return path_; }
    /** Container generation (v2 or v3). */
    TraceFormat format() const { return format_; }
    /** Total records in the trace. */
    uint64_t records() const { return records_; }
    /** Number of record blocks. */
    uint64_t blockCount() const { return index_.size(); }
    /** Block capacity the file was written with. */
    uint32_t recordsPerBlock() const { return recordsPerBlock_; }
    /** Index entry of block @p b. */
    const BlockInfo &blockInfo(uint64_t b) const { return index_[b]; }
    /** Smallest line address in the trace (0 if empty). */
    uint64_t minAddr() const { return minAddr_; }
    /** Largest line address in the trace (0 if empty). */
    uint64_t maxAddr() const { return maxAddr_; }
    /** True if any block is stored compressed. */
    bool anyCompressed() const { return anyCompressed_; }
    /** Total stored block bytes (the compressed footprint). */
    uint64_t storedBytes() const { return storedBytes_; }
    /**
     * CRC32 of the footer index, as stored in the trailer. The
     * index embeds every block's CRC, so this single word pins the
     * container's entire byte content.
     */
    uint32_t indexCrc() const { return indexCrc_; }
    /**
     * CRC32 over the v2-style index serialization (count, rawCrc,
     * minAddr, maxAddr per block) — a codec- and layout-invariant
     * fingerprint of the record content and blocking. Equal to
     * indexCrc() for a v2 file; for v3 it survives recompression
     * with a different codec but moves on any payload change. The
     * result cache uses it as the trace content digest
     * (docs/caching.md).
     */
    uint32_t contentCrc() const { return contentCrc_; }

    /**
     * Stored (possibly compressed) bytes of block @p b, straight
     * from the mapping (blockInfo(b).storedBytes long).
     */
    const uint8_t *storedData(uint64_t b) const;

    /**
     * Checksum and decode block @p b. Raw blocks are CRC-checked and
     * returned zero-copy from the mapping; compressed blocks are
     * verified (stored CRC), inflated into @p scratch (resized once,
     * then reused across calls) and re-verified (length + raw CRC).
     * @throws std::runtime_error naming block, file and defect on
     *         any corruption.
     */
    BlockView readBlock(uint64_t b,
                        std::vector<uint8_t> &scratch) const;

    /**
     * Decode record @p i of block @p b. For compressed blocks this
     * inflates the whole block per call — random access is for
     * tools and tests; streaming paths use readBlock().
     */
    trace::WriteTransaction recordInBlock(uint64_t b,
                                          uint32_t i) const;

    /** Decode record @p i of the whole trace (random access). */
    trace::WriteTransaction record(uint64_t i) const;

    /**
     * Fully re-check block @p b (stored CRC, decode, length, raw
     * CRC). @throws std::runtime_error naming the block and file on
     * mismatch.
     */
    void verifyBlock(uint64_t b) const;

    /** verifyBlock() every block. @return records audited. */
    uint64_t verifyAll() const;

  private:
    void parseIndexV2(const uint8_t *footer, uint64_t blockCount,
                      uint64_t indexOffset);
    void parseIndexV3(const uint8_t *footer, uint64_t blockCount,
                      uint64_t indexOffset);

    std::string path_;
    const uint8_t *base_ = nullptr; //!< mapping base (nullptr: empty)
    std::size_t size_ = 0;          //!< file/mapping length
    TraceFormat format_ = TraceFormat::v2;
    uint32_t recordsPerBlock_ = 0;
    uint64_t records_ = 0;
    uint64_t minAddr_ = 0;
    uint64_t maxAddr_ = 0;
    uint32_t indexCrc_ = 0;
    uint32_t contentCrc_ = 0;
    bool anyCompressed_ = false;
    uint64_t storedBytes_ = 0;
    std::vector<BlockInfo> index_;
};

} // namespace wlcrc::tracefile

#endif // WLCRC_TRACEFILE_MAPPED_TRACE_HH
