#include "writer.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/crc32.hh"
#include "tracefile/block_codec.hh"

namespace wlcrc::tracefile
{

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 uint32_t recordsPerBlock)
    : TraceFileWriter(path, WriterOptions{recordsPerBlock,
                                          TraceFormat::v2,
                                          BlockCodec::lz})
{}

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 const WriterOptions &options)
    : out_(path, std::ios::binary), path_(path), options_(options)
{
    if (!out_)
        throw std::runtime_error("TraceFileWriter: cannot open " +
                                 path);
    if (options_.recordsPerBlock == 0)
        throw std::invalid_argument(
            "TraceFileWriter: recordsPerBlock must be > 0");
    if (options_.format != TraceFormat::v2 &&
        options_.format != TraceFormat::v3)
        throw std::invalid_argument(
            "TraceFileWriter: only v2 and v3 containers are "
            "writable (use trace::TraceWriter for v1)");
    const bool v3 = options_.format == TraceFormat::v3;
    if (v3 && options_.codec != BlockCodec::raw &&
        !codecAvailable(options_.codec))
        throw std::invalid_argument(
            std::string("TraceFileWriter: codec ") +
            codecName(options_.codec) +
            " is not available in this build");
    block_.resize(std::size_t{options_.recordsPerBlock} *
                  recordBytes);
    if (v3 && options_.codec != BlockCodec::raw)
        // Strict-win cap: a block that does not shrink stays raw.
        compressed_.resize(block_.size());

    uint8_t header[headerBytes] = {};
    std::memcpy(header, v3 ? magicV3 : magicV2, sizeof(magicV2));
    putLe32(header + 8, options_.recordsPerBlock);
    out_.write(reinterpret_cast<const char *>(header),
               sizeof(header));
}

TraceFileWriter::~TraceFileWriter()
{
    try {
        close();
    } catch (...) {
        // Destructors must not throw; a failed close surfaces when
        // the file is next opened (bad trailer / index).
    }
}

void
TraceFileWriter::write(const trace::WriteTransaction &txn)
{
    if (!open_)
        throw std::runtime_error(
            "TraceFileWriter: write after close on " + path_);
    encodeRecord(block_.data() +
                     std::size_t{pending_} * recordBytes,
                 txn);
    if (pending_ == 0) {
        pendingMin_ = txn.lineAddr;
        pendingMax_ = txn.lineAddr;
    } else {
        pendingMin_ = std::min(pendingMin_, txn.lineAddr);
        pendingMax_ = std::max(pendingMax_, txn.lineAddr);
    }
    ++pending_;
    ++total_;
    if (pending_ == options_.recordsPerBlock)
        flushBlock();
}

void
TraceFileWriter::flushBlock()
{
    const std::size_t rawLen = std::size_t{pending_} * recordBytes;
    BlockInfo info;
    info.count = pending_;
    info.crc = crc32(block_.data(), rawLen);
    info.minAddr = pendingMin_;
    info.maxAddr = pendingMax_;
    info.offset = offset_;

    const uint8_t *stored = block_.data();
    std::size_t storedLen = rawLen;
    info.codec = BlockCodec::raw;
    if (options_.format == TraceFormat::v3 &&
        options_.codec != BlockCodec::raw) {
        const std::size_t c = compressBlock(
            options_.codec, block_.data(), rawLen,
            compressed_.data(), rawLen - 1, lzScratch_);
        if (c != 0) {
            stored = compressed_.data();
            storedLen = c;
            info.codec = options_.codec;
        }
    }
    info.storedBytes = static_cast<uint32_t>(storedLen);
    info.storedCrc = info.codec == BlockCodec::raw
                         ? info.crc
                         : crc32(stored, storedLen);

    out_.write(reinterpret_cast<const char *>(stored),
               static_cast<std::streamsize>(storedLen));
    offset_ += storedLen;
    index_.push_back(info);
    pending_ = 0;
}

void
TraceFileWriter::close()
{
    if (!open_)
        return;
    open_ = false;
    if (pending_ > 0)
        flushBlock();

    const bool v3 = options_.format == TraceFormat::v3;
    const uint32_t entryBytes =
        v3 ? indexEntryBytesV3 : indexEntryBytes;
    std::vector<uint8_t> footer(index_.size() * entryBytes);
    for (std::size_t i = 0; i < index_.size(); ++i) {
        uint8_t *e = footer.data() + i * entryBytes;
        putLe32(e, index_[i].count);
        putLe32(e + 4, index_[i].crc);
        putLe64(e + 8, index_[i].minAddr);
        putLe64(e + 16, index_[i].maxAddr);
        if (v3) {
            putLe64(e + 24, index_[i].offset);
            putLe32(e + 32, index_[i].storedBytes);
            putLe32(e + 36, index_[i].storedCrc);
            e[40] = static_cast<uint8_t>(index_[i].codec);
            // bytes 41..47 stay zero (reserved)
        }
    }
    const uint64_t indexOffset = offset_;
    out_.write(reinterpret_cast<const char *>(footer.data()),
               static_cast<std::streamsize>(footer.size()));

    uint8_t trailer[trailerBytes] = {};
    putLe64(trailer, indexOffset);
    putLe64(trailer + 8, index_.size());
    putLe64(trailer + 16, total_);
    putLe32(trailer + 24, crc32(footer.data(), footer.size()));
    std::memcpy(trailer + 32, v3 ? magicIndexV3 : magicIndex,
                sizeof(magicIndex));
    out_.write(reinterpret_cast<const char *>(trailer),
               sizeof(trailer));

    out_.close();
    if (!out_)
        throw std::runtime_error("TraceFileWriter: write to " +
                                 path_ + " failed");
}

} // namespace wlcrc::tracefile
