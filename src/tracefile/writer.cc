#include "writer.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/crc32.hh"

namespace wlcrc::tracefile
{

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 uint32_t recordsPerBlock)
    : out_(path, std::ios::binary), path_(path),
      recordsPerBlock_(recordsPerBlock)
{
    if (!out_)
        throw std::runtime_error("TraceFileWriter: cannot open " +
                                 path);
    if (recordsPerBlock == 0)
        throw std::invalid_argument(
            "TraceFileWriter: recordsPerBlock must be > 0");
    block_.resize(std::size_t{recordsPerBlock_} * recordBytes);

    uint8_t header[headerBytes] = {};
    std::memcpy(header, magicV2, sizeof(magicV2));
    putLe32(header + 8, recordsPerBlock_);
    out_.write(reinterpret_cast<const char *>(header),
               sizeof(header));
}

TraceFileWriter::~TraceFileWriter()
{
    try {
        close();
    } catch (...) {
        // Destructors must not throw; a failed close surfaces when
        // the file is next opened (bad trailer / index).
    }
}

void
TraceFileWriter::write(const trace::WriteTransaction &txn)
{
    if (!open_)
        throw std::runtime_error(
            "TraceFileWriter: write after close on " + path_);
    encodeRecord(block_.data() +
                     std::size_t{pending_} * recordBytes,
                 txn);
    if (pending_ == 0) {
        pendingMin_ = txn.lineAddr;
        pendingMax_ = txn.lineAddr;
    } else {
        pendingMin_ = std::min(pendingMin_, txn.lineAddr);
        pendingMax_ = std::max(pendingMax_, txn.lineAddr);
    }
    ++pending_;
    ++total_;
    if (pending_ == recordsPerBlock_)
        flushBlock();
}

void
TraceFileWriter::flushBlock()
{
    const std::size_t bytes = std::size_t{pending_} * recordBytes;
    BlockInfo info;
    info.count = pending_;
    info.crc = crc32(block_.data(), bytes);
    info.minAddr = pendingMin_;
    info.maxAddr = pendingMax_;
    out_.write(reinterpret_cast<const char *>(block_.data()),
               static_cast<std::streamsize>(bytes));
    index_.push_back(info);
    pending_ = 0;
}

void
TraceFileWriter::close()
{
    if (!open_)
        return;
    open_ = false;
    if (pending_ > 0)
        flushBlock();

    std::vector<uint8_t> footer(index_.size() * indexEntryBytes);
    for (std::size_t i = 0; i < index_.size(); ++i) {
        uint8_t *e = footer.data() + i * indexEntryBytes;
        putLe32(e, index_[i].count);
        putLe32(e + 4, index_[i].crc);
        putLe64(e + 8, index_[i].minAddr);
        putLe64(e + 16, index_[i].maxAddr);
    }
    const uint64_t indexOffset =
        headerBytes + total_ * uint64_t{recordBytes};
    out_.write(reinterpret_cast<const char *>(footer.data()),
               static_cast<std::streamsize>(footer.size()));

    uint8_t trailer[trailerBytes] = {};
    putLe64(trailer, indexOffset);
    putLe64(trailer + 8, index_.size());
    putLe64(trailer + 16, total_);
    putLe32(trailer + 24, crc32(footer.data(), footer.size()));
    std::memcpy(trailer + 32, magicIndex, sizeof(magicIndex));
    out_.write(reinterpret_cast<const char *>(trailer),
               sizeof(trailer));

    out_.close();
    if (!out_)
        throw std::runtime_error("TraceFileWriter: write to " +
                                 path_ + " failed");
}

} // namespace wlcrc::tracefile
