#include "block_codec.hh"

#include <stdexcept>

#ifdef WLCRC_HAVE_ZSTD
#include <zstd.h>
#endif

namespace wlcrc::tracefile
{

bool
codecAvailable(BlockCodec codec)
{
    switch (codec) {
    case BlockCodec::raw:
    case BlockCodec::lz:
        return true;
    case BlockCodec::zstd:
#ifdef WLCRC_HAVE_ZSTD
        return true;
#else
        return false;
#endif
    }
    return false;
}

BlockCodec
parseCodecName(const std::string &name)
{
    if (name == "raw")
        return BlockCodec::raw;
    if (name == "lz")
        return BlockCodec::lz;
    if (name == "zstd")
        return BlockCodec::zstd;
    throw std::invalid_argument("unknown block codec: " + name +
                                " (expected raw, lz or zstd)");
}

std::size_t
compressBlock(BlockCodec codec, const uint8_t *src,
              std::size_t srcLen, uint8_t *dst, std::size_t dstCap,
              LzScratch &scratch)
{
    switch (codec) {
    case BlockCodec::raw:
        throw std::runtime_error(
            "compressBlock: raw is not a compressor");
    case BlockCodec::lz:
        return lzCompress(src, srcLen, dst, dstCap, &scratch);
    case BlockCodec::zstd:
#ifdef WLCRC_HAVE_ZSTD
    {
        const std::size_t r =
            ZSTD_compress(dst, dstCap, src, srcLen, 3);
        return ZSTD_isError(r) ? 0 : r;
    }
#else
        throw std::runtime_error(
            "compressBlock: this build has no zstd support");
#endif
    }
    throw std::runtime_error("compressBlock: unknown codec");
}

std::size_t
decompressBlock(BlockCodec codec, const uint8_t *src,
                std::size_t srcLen, uint8_t *dst, std::size_t dstCap)
{
    switch (codec) {
    case BlockCodec::raw:
        throw std::runtime_error(
            "decompressBlock: raw blocks need no decode");
    case BlockCodec::lz:
        return lzDecompress(src, srcLen, dst, dstCap);
    case BlockCodec::zstd:
#ifdef WLCRC_HAVE_ZSTD
    {
        const std::size_t r =
            ZSTD_decompress(dst, dstCap, src, srcLen);
        if (ZSTD_isError(r))
            throw std::runtime_error(
                std::string("zstd: corrupt block: ") +
                ZSTD_getErrorName(r));
        return r;
    }
#else
        throw std::runtime_error(
            "decompressBlock: block uses zstd but this build has "
            "no zstd support");
#endif
    }
    throw std::runtime_error("decompressBlock: unknown codec");
}

} // namespace wlcrc::tracefile
