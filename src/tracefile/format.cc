#include "format.hh"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace wlcrc::tracefile
{

void
putLe32(uint8_t *dst, uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        dst[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
}

void
putLe64(uint8_t *dst, uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        dst[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
}

uint32_t
getLe32(const uint8_t *src)
{
    uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= uint32_t{src[i]} << (8 * i);
    return v;
}

uint64_t
getLe64(const uint8_t *src)
{
    uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= uint64_t{src[i]} << (8 * i);
    return v;
}

void
encodeRecord(uint8_t *dst, const trace::WriteTransaction &txn)
{
    putLe64(dst, txn.lineAddr);
    for (unsigned w = 0; w < lineWords; ++w)
        putLe64(dst + 8 + 8 * w, txn.oldData.word(w));
    for (unsigned w = 0; w < lineWords; ++w)
        putLe64(dst + 8 + 8 * (lineWords + w), txn.newData.word(w));
}

trace::WriteTransaction
decodeRecord(const uint8_t *src)
{
    trace::WriteTransaction txn;
    txn.lineAddr = getLe64(src);
    for (unsigned w = 0; w < lineWords; ++w)
        txn.oldData.setWord(w, getLe64(src + 8 + 8 * w));
    for (unsigned w = 0; w < lineWords; ++w)
        txn.newData.setWord(w,
                            getLe64(src + 8 + 8 * (lineWords + w)));
    return txn;
}

bool
rangeHasResidue(uint64_t minAddr, uint64_t maxAddr, unsigned mod,
                unsigned residue)
{
    if (mod <= 1)
        return true;
    // A range spanning >= mod consecutive addresses hits every
    // residue class.
    if (maxAddr - minAddr >= mod - 1)
        return true;
    // Otherwise the residues covered form the cyclic interval
    // [minAddr % mod, maxAddr % mod].
    const unsigned lo = static_cast<unsigned>(minAddr % mod);
    const unsigned hi = static_cast<unsigned>(maxAddr % mod);
    if (lo <= hi)
        return lo <= residue && residue <= hi;
    return residue >= lo || residue <= hi; // wrapped interval
}

const char *
codecName(BlockCodec c)
{
    switch (c) {
    case BlockCodec::raw:
        return "raw";
    case BlockCodec::lz:
        return "lz";
    case BlockCodec::zstd:
        return "zstd";
    }
    return "?";
}

const char *
formatName(TraceFormat f)
{
    switch (f) {
    case TraceFormat::v1:
        return "v1";
    case TraceFormat::v2:
        return "v2";
    case TraceFormat::v3:
        return "v3";
    }
    return "?";
}

TraceFormat
detectFormat(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("trace: cannot open " + path);
    char got[8];
    if (!in.read(got, sizeof(got)))
        throw std::runtime_error(
            "trace: " + path + " is too short to hold a trace magic");
    if (std::memcmp(got, magicV1, sizeof(magicV1)) == 0)
        return TraceFormat::v1;
    if (std::memcmp(got, magicV2, sizeof(magicV2)) == 0)
        return TraceFormat::v2;
    if (std::memcmp(got, magicV3, sizeof(magicV3)) == 0)
        return TraceFormat::v3;
    throw std::runtime_error(
        "trace: " + path +
        " starts with no known trace magic (WLCTRC01/02/03)");
}

} // namespace wlcrc::tracefile
