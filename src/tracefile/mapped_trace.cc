#include "mapped_trace.hh"

#include <cstring>
#include <stdexcept>
#include <string>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc32.hh"

namespace wlcrc::tracefile
{

namespace
{

[[noreturn]] void
fail(const std::string &path, const std::string &what)
{
    throw std::runtime_error("MappedTrace: " + path + ": " + what);
}

} // namespace

MappedTrace::MappedTrace(const std::string &path) : path_(path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fail(path, "cannot open");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fail(path, "cannot stat");
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ < headerBytes + trailerBytes) {
        ::close(fd);
        fail(path, "too short to be a WLCTRC02 container");
    }
    void *map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (map == MAP_FAILED)
        fail(path, "mmap failed");
    base_ = static_cast<const uint8_t *>(map);

    try {
        if (std::memcmp(base_, magicV2, sizeof(magicV2)) != 0)
            fail(path, "bad WLCTRC02 magic");
        recordsPerBlock_ = getLe32(base_ + 8);
        if (recordsPerBlock_ == 0)
            fail(path, "recordsPerBlock is 0");

        const uint8_t *trailer = base_ + size_ - trailerBytes;
        if (std::memcmp(trailer + 32, magicIndex,
                        sizeof(magicIndex)) != 0)
            fail(path, "bad trailer magic (file truncated?)");
        const uint64_t indexOffset = getLe64(trailer);
        const uint64_t blockCount = getLe64(trailer + 8);
        records_ = getLe64(trailer + 16);
        indexCrc_ = getLe32(trailer + 24);
        const uint32_t indexCrc = indexCrc_;

        // Bound every trailer field against the mapped size before
        // any pointer arithmetic: all products below stay < size_,
        // so crafted values can't wrap the checks and walk the crc
        // off the mapping.
        if (indexOffset < headerBytes ||
            indexOffset > size_ - trailerBytes)
            fail(path, "trailer index offset outside the file");
        const uint64_t indexArea = size_ - trailerBytes - indexOffset;
        if (blockCount > indexArea / indexEntryBytes ||
            blockCount * indexEntryBytes != indexArea)
            fail(path, "trailer offsets inconsistent with file size");
        const uint64_t recordArea = indexOffset - headerBytes;
        if (records_ > recordArea / recordBytes ||
            records_ * uint64_t{recordBytes} != recordArea)
            fail(path, "record area size disagrees with totalRecords");
        const uint64_t indexBytes = indexArea;

        const uint8_t *footer = base_ + indexOffset;
        if (crc32(footer, indexBytes) != indexCrc)
            fail(path, "footer index checksum mismatch");

        index_.reserve(blockCount);
        uint64_t counted = 0;
        for (uint64_t b = 0; b < blockCount; ++b) {
            const uint8_t *e = footer + b * indexEntryBytes;
            BlockInfo info;
            info.count = getLe32(e);
            info.crc = getLe32(e + 4);
            info.minAddr = getLe64(e + 8);
            info.maxAddr = getLe64(e + 16);
            if (info.count == 0 || info.count > recordsPerBlock_)
                fail(path, "block " + std::to_string(b) +
                               " has impossible record count");
            if (b + 1 < blockCount &&
                info.count != recordsPerBlock_)
                fail(path, "non-final block " + std::to_string(b) +
                               " is not full");
            if (info.minAddr > info.maxAddr)
                fail(path, "block " + std::to_string(b) +
                               " has inverted address range");
            counted += info.count;
            if (b == 0 || info.minAddr < minAddr_)
                minAddr_ = info.minAddr;
            if (b == 0 || info.maxAddr > maxAddr_)
                maxAddr_ = info.maxAddr;
            index_.push_back(info);
        }
        if (counted != records_)
            fail(path, "index record counts disagree with trailer");
    } catch (...) {
        ::munmap(const_cast<uint8_t *>(base_), size_);
        throw;
    }
}

MappedTrace::~MappedTrace()
{
    if (base_)
        ::munmap(const_cast<uint8_t *>(base_), size_);
}

const uint8_t *
MappedTrace::blockData(uint64_t b) const
{
    return base_ + headerBytes +
           b * uint64_t{recordsPerBlock_} * recordBytes;
}

trace::WriteTransaction
MappedTrace::recordInBlock(uint64_t b, uint32_t i) const
{
    return decodeRecord(blockData(b) +
                        std::size_t{i} * recordBytes);
}

trace::WriteTransaction
MappedTrace::record(uint64_t i) const
{
    if (i >= records_)
        fail(path_, "record index " + std::to_string(i) +
                        " out of range");
    // All blocks but the last are full, so the block is a division.
    return recordInBlock(i / recordsPerBlock_,
                         static_cast<uint32_t>(i % recordsPerBlock_));
}

void
MappedTrace::verifyBlock(uint64_t b) const
{
    const auto &info = index_[b];
    if (crc32(blockData(b),
              std::size_t{info.count} * recordBytes) != info.crc)
        fail(path_, "block " + std::to_string(b) +
                        " checksum mismatch (corrupt trace)");
}

uint64_t
MappedTrace::verifyAll() const
{
    for (uint64_t b = 0; b < index_.size(); ++b)
        verifyBlock(b);
    return records_;
}

} // namespace wlcrc::tracefile
