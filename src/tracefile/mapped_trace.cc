#include "mapped_trace.hh"

#include <cstring>
#include <stdexcept>
#include <string>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc32.hh"
#include "tracefile/block_codec.hh"

namespace wlcrc::tracefile
{

namespace
{

[[noreturn]] void
fail(const std::string &path, const std::string &what)
{
    throw std::runtime_error("MappedTrace: " + path + ": " + what);
}

} // namespace

MappedTrace::MappedTrace(const std::string &path) : path_(path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fail(path, "cannot open");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fail(path, "cannot stat");
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ < headerBytes + trailerBytes) {
        ::close(fd);
        fail(path, "too short to be a WLCTRC02/03 container");
    }
    void *map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (map == MAP_FAILED)
        fail(path, "mmap failed");
    base_ = static_cast<const uint8_t *>(map);

    try {
        if (std::memcmp(base_, magicV2, sizeof(magicV2)) == 0)
            format_ = TraceFormat::v2;
        else if (std::memcmp(base_, magicV3, sizeof(magicV3)) == 0)
            format_ = TraceFormat::v3;
        else
            fail(path, "bad WLCTRC02/03 magic");
        const bool v3 = format_ == TraceFormat::v3;
        recordsPerBlock_ = getLe32(base_ + 8);
        if (recordsPerBlock_ == 0)
            fail(path, "recordsPerBlock is 0");

        const uint8_t *trailer = base_ + size_ - trailerBytes;
        if (std::memcmp(trailer + 32,
                        v3 ? magicIndexV3 : magicIndex,
                        sizeof(magicIndex)) != 0)
            fail(path, "bad trailer magic (file truncated?)");
        const uint64_t indexOffset = getLe64(trailer);
        const uint64_t blockCount = getLe64(trailer + 8);
        records_ = getLe64(trailer + 16);
        indexCrc_ = getLe32(trailer + 24);
        const uint32_t entryBytes =
            v3 ? indexEntryBytesV3 : indexEntryBytes;

        // Bound every trailer field against the mapped size before
        // any pointer arithmetic: all products below stay < size_,
        // so crafted values can't wrap the checks and walk the crc
        // off the mapping.
        if (indexOffset < headerBytes ||
            indexOffset > size_ - trailerBytes)
            fail(path, "trailer index offset outside the file");
        const uint64_t indexArea = size_ - trailerBytes - indexOffset;
        if (blockCount > indexArea / entryBytes ||
            blockCount * entryBytes != indexArea)
            fail(path, "trailer offsets inconsistent with file size");
        if (!v3) {
            const uint64_t recordArea = indexOffset - headerBytes;
            if (records_ > recordArea / recordBytes ||
                records_ * uint64_t{recordBytes} != recordArea)
                fail(path,
                     "record area size disagrees with totalRecords");
        }

        const uint8_t *footer = base_ + indexOffset;
        if (crc32(footer, indexArea) != indexCrc_)
            fail(path, "footer index checksum mismatch");

        if (v3)
            parseIndexV3(footer, blockCount, indexOffset);
        else
            parseIndexV2(footer, blockCount, indexOffset);

        // The codec-invariant content fingerprint: CRC over the
        // v2-style entry serialization. For v2 this reproduces the
        // stored footer bytes, so contentCrc_ == indexCrc_.
        uint8_t entry[indexEntryBytes];
        uint32_t crc = 0;
        for (const auto &info : index_) {
            putLe32(entry, info.count);
            putLe32(entry + 4, info.crc);
            putLe64(entry + 8, info.minAddr);
            putLe64(entry + 16, info.maxAddr);
            crc = crc32(entry, sizeof(entry), crc);
        }
        contentCrc_ = crc;
    } catch (...) {
        ::munmap(const_cast<uint8_t *>(base_), size_);
        throw;
    }
}

void
MappedTrace::parseIndexV2(const uint8_t *footer, uint64_t blockCount,
                          uint64_t indexOffset)
{
    index_.reserve(blockCount);
    uint64_t counted = 0;
    for (uint64_t b = 0; b < blockCount; ++b) {
        const uint8_t *e = footer + b * indexEntryBytes;
        BlockInfo info;
        info.count = getLe32(e);
        info.crc = getLe32(e + 4);
        info.minAddr = getLe64(e + 8);
        info.maxAddr = getLe64(e + 16);
        if (info.count == 0 || info.count > recordsPerBlock_)
            fail(path_, "block " + std::to_string(b) +
                            " has impossible record count");
        if (b + 1 < blockCount && info.count != recordsPerBlock_)
            fail(path_, "non-final block " + std::to_string(b) +
                            " is not full");
        if (info.minAddr > info.maxAddr)
            fail(path_, "block " + std::to_string(b) +
                            " has inverted address range");
        // Storage geometry is implied by the fixed blocking.
        info.offset = headerBytes +
                      b * uint64_t{recordsPerBlock_} * recordBytes;
        info.storedBytes = info.count * recordBytes;
        info.storedCrc = info.crc;
        info.codec = BlockCodec::raw;
        counted += info.count;
        storedBytes_ += info.storedBytes;
        if (b == 0 || info.minAddr < minAddr_)
            minAddr_ = info.minAddr;
        if (b == 0 || info.maxAddr > maxAddr_)
            maxAddr_ = info.maxAddr;
        index_.push_back(info);
    }
    if (counted != records_)
        fail(path_, "index record counts disagree with trailer");
    (void)indexOffset;
}

void
MappedTrace::parseIndexV3(const uint8_t *footer, uint64_t blockCount,
                          uint64_t indexOffset)
{
    index_.reserve(blockCount);
    uint64_t counted = 0;
    uint64_t expectOffset = headerBytes;
    for (uint64_t b = 0; b < blockCount; ++b) {
        const uint8_t *e = footer + b * indexEntryBytesV3;
        BlockInfo info;
        info.count = getLe32(e);
        info.crc = getLe32(e + 4);
        info.minAddr = getLe64(e + 8);
        info.maxAddr = getLe64(e + 16);
        info.offset = getLe64(e + 24);
        info.storedBytes = getLe32(e + 32);
        info.storedCrc = getLe32(e + 36);
        const uint8_t codec = e[40];
        if (info.count == 0 || info.count > recordsPerBlock_)
            fail(path_, "block " + std::to_string(b) +
                            " has impossible record count");
        if (b + 1 < blockCount && info.count != recordsPerBlock_)
            fail(path_, "non-final block " + std::to_string(b) +
                            " is not full");
        if (info.minAddr > info.maxAddr)
            fail(path_, "block " + std::to_string(b) +
                            " has inverted address range");
        if (codec > static_cast<uint8_t>(BlockCodec::zstd))
            fail(path_, "block " + std::to_string(b) +
                            " uses unknown codec byte " +
                            std::to_string(codec));
        info.codec = static_cast<BlockCodec>(codec);
        const uint64_t rawLen =
            uint64_t{info.count} * recordBytes;
        // Stored blocks must tile [header, indexOffset) exactly:
        // a lying offset or size cannot point outside the mapped
        // record area or overlap a neighbour.
        if (info.offset != expectOffset)
            fail(path_, "block " + std::to_string(b) +
                            " stored offset breaks the block chain");
        if (info.storedBytes == 0 ||
            info.storedBytes > indexOffset - info.offset)
            fail(path_, "block " + std::to_string(b) +
                            " stored size runs past the index");
        if (info.codec == BlockCodec::raw &&
            info.storedBytes != rawLen)
            fail(path_, "block " + std::to_string(b) +
                            " raw stored size disagrees with its "
                            "record count");
        if (info.codec != BlockCodec::raw &&
            info.storedBytes >= rawLen)
            fail(path_, "block " + std::to_string(b) +
                            " compressed block larger than raw "
                            "(writer never emits this)");
        expectOffset = info.offset + info.storedBytes;
        if (info.codec != BlockCodec::raw)
            anyCompressed_ = true;
        counted += info.count;
        storedBytes_ += info.storedBytes;
        if (b == 0 || info.minAddr < minAddr_)
            minAddr_ = info.minAddr;
        if (b == 0 || info.maxAddr > maxAddr_)
            maxAddr_ = info.maxAddr;
        index_.push_back(info);
    }
    if (counted != records_)
        fail(path_, "index record counts disagree with trailer");
    if (expectOffset != indexOffset)
        fail(path_, "stored blocks do not fill the record area");
}

MappedTrace::~MappedTrace()
{
    if (base_)
        ::munmap(const_cast<uint8_t *>(base_), size_);
}

const uint8_t *
MappedTrace::storedData(uint64_t b) const
{
    return base_ + index_[b].offset;
}

BlockView
MappedTrace::readBlock(uint64_t b,
                       std::vector<uint8_t> &scratch) const
{
    const auto &info = index_[b];
    const uint8_t *stored = storedData(b);
    if (info.codec == BlockCodec::raw) {
        if (crc32(stored, info.storedBytes) != info.crc)
            fail(path_, "block " + std::to_string(b) +
                            " checksum mismatch (corrupt trace)");
        return {stored, info.count};
    }
    if (crc32(stored, info.storedBytes) != info.storedCrc)
        fail(path_, "block " + std::to_string(b) +
                        " stored-byte checksum mismatch (corrupt "
                        "compressed block)");
    const std::size_t rawLen =
        std::size_t{info.count} * recordBytes;
    if (scratch.size() < rawLen)
        scratch.resize(rawLen);
    std::size_t got = 0;
    try {
        got = decompressBlock(info.codec, stored, info.storedBytes,
                              scratch.data(), rawLen);
    } catch (const std::exception &e) {
        fail(path_, "block " + std::to_string(b) +
                        " failed to decompress: " + e.what());
    }
    if (got != rawLen)
        fail(path_, "block " + std::to_string(b) +
                        " decompressed to " + std::to_string(got) +
                        " bytes, expected " + std::to_string(rawLen));
    if (crc32(scratch.data(), rawLen) != info.crc)
        fail(path_, "block " + std::to_string(b) +
                        " checksum mismatch after decompression "
                        "(corrupt trace)");
    return {scratch.data(), info.count};
}

trace::WriteTransaction
MappedTrace::recordInBlock(uint64_t b, uint32_t i) const
{
    const auto &info = index_[b];
    if (info.codec == BlockCodec::raw)
        return decodeRecord(storedData(b) +
                            std::size_t{i} * recordBytes);
    std::vector<uint8_t> scratch;
    const BlockView view = readBlock(b, scratch);
    return decodeRecord(view.data + std::size_t{i} * recordBytes);
}

trace::WriteTransaction
MappedTrace::record(uint64_t i) const
{
    if (i >= records_)
        fail(path_, "record index " + std::to_string(i) +
                        " out of range");
    // All blocks but the last are full, so the block is a division.
    return recordInBlock(i / recordsPerBlock_,
                         static_cast<uint32_t>(i % recordsPerBlock_));
}

void
MappedTrace::verifyBlock(uint64_t b) const
{
    std::vector<uint8_t> scratch;
    (void)readBlock(b, scratch);
}

uint64_t
MappedTrace::verifyAll() const
{
    std::vector<uint8_t> scratch;
    for (uint64_t b = 0; b < index_.size(); ++b)
        (void)readBlock(b, scratch);
    return records_;
}

} // namespace wlcrc::tracefile
