/**
 * @file
 * On-disk layout of the WLCTRC02 indexed trace container.
 *
 * The legacy WLCTRC01 format (trace/trace_io.hh) is a bare record
 * dump: fine for piping, useless for out-of-core replay — finding
 * anything means scanning everything. WLCTRC02 adds blocking and a
 * footer index so readers can seek, prune and audit:
 *
 *   header   16 B   magic "WLCTRC02", u32 recordsPerBlock, u32 0
 *   blocks   fixed-size runs of recordBytes-sized records; every
 *            block holds exactly recordsPerBlock records except the
 *            last, which holds the remainder (no padding)
 *   index    one 24 B entry per block:
 *            u32 count, u32 crc32(block bytes), u64 minAddr,
 *            u64 maxAddr  (min/max over the block's line addresses)
 *   trailer  40 B   u64 indexOffset, u64 blockCount,
 *            u64 totalRecords, u32 crc32(index bytes), u32 0,
 *            magic "WLCIDX02"
 *
 * Records are the same 136 bytes as WLCTRC01 (u64 lineAddr, 64 B old
 * data, 64 B new data, little-endian), so v1 <-> v2 conversion is
 * re-framing, never re-encoding. The trailer sits at EOF, so a
 * reader finds the index with one seek; the per-block min/max
 * addresses let a sharded replay skip whole blocks whose address
 * range cannot intersect its partition.
 */

#ifndef WLCRC_TRACEFILE_FORMAT_HH
#define WLCRC_TRACEFILE_FORMAT_HH

#include <cstdint>
#include <string>

#include "trace/transaction.hh"

namespace wlcrc::tracefile
{

/** Magic of the legacy sequential format (trace/trace_io). */
inline constexpr char magicV1[8] = {'W', 'L', 'C', 'T',
                                    'R', 'C', '0', '1'};
/** Magic opening a WLCTRC02 container. */
inline constexpr char magicV2[8] = {'W', 'L', 'C', 'T',
                                    'R', 'C', '0', '2'};
/** Magic closing the trailer (read backwards from EOF). */
inline constexpr char magicIndex[8] = {'W', 'L', 'C', 'I',
                                       'D', 'X', '0', '2'};

/** Serialized size of one record: u64 addr + old + new line. */
inline constexpr uint32_t recordBytes = 8 + 2 * (lineBits / 8);
/** Serialized size of the file header. */
inline constexpr uint32_t headerBytes = 16;
/** Serialized size of one footer-index entry. */
inline constexpr uint32_t indexEntryBytes = 24;
/** Serialized size of the trailer. */
inline constexpr uint32_t trailerBytes = 40;
/** Default block capacity: 4096 records ≈ 544 KiB per block. */
inline constexpr uint32_t defaultRecordsPerBlock = 4096;

/** Decoded footer-index entry of one block. */
struct BlockInfo
{
    uint32_t count = 0;   //!< records stored in the block
    uint32_t crc = 0;     //!< crc32 of the block's serialized bytes
    uint64_t minAddr = 0; //!< smallest line address in the block
    uint64_t maxAddr = 0; //!< largest line address in the block
};

// Little-endian scalar accessors on raw buffers. The container is
// byte-order-pinned like WLCTRC01, so files are portable.
void putLe32(uint8_t *dst, uint32_t v);
void putLe64(uint8_t *dst, uint64_t v);
uint32_t getLe32(const uint8_t *src);
uint64_t getLe64(const uint8_t *src);

/** Serialize @p txn into @p dst (recordBytes bytes). */
void encodeRecord(uint8_t *dst, const trace::WriteTransaction &txn);
/** Decode a record serialized by encodeRecord(). */
trace::WriteTransaction decodeRecord(const uint8_t *src);

/**
 * @return true if [minAddr, maxAddr] contains an address congruent
 * to @p residue mod @p mod — the block-pruning predicate: a block
 * whose address range has no such address holds nothing for the
 * shard replaying that residue class.
 */
bool rangeHasResidue(uint64_t minAddr, uint64_t maxAddr,
                     unsigned mod, unsigned residue);

/** Trace container generations. */
enum class TraceFormat
{
    v1, //!< WLCTRC01 sequential dump
    v2, //!< WLCTRC02 blocked + indexed container
};

/** @return "v1" or "v2". */
const char *formatName(TraceFormat f);

/**
 * Sniff the leading magic of @p path.
 * @throws std::runtime_error if the file cannot be opened or starts
 * with neither trace magic.
 */
TraceFormat detectFormat(const std::string &path);

} // namespace wlcrc::tracefile

#endif // WLCRC_TRACEFILE_FORMAT_HH
