/**
 * @file
 * On-disk layout of the WLCTRC02/WLCTRC03 indexed trace containers.
 *
 * The legacy WLCTRC01 format (trace/trace_io.hh) is a bare record
 * dump: fine for piping, useless for out-of-core replay — finding
 * anything means scanning everything. WLCTRC02 adds blocking and a
 * footer index so readers can seek, prune and audit:
 *
 *   header   16 B   magic "WLCTRC02", u32 recordsPerBlock, u32 0
 *   blocks   fixed-size runs of recordBytes-sized records; every
 *            block holds exactly recordsPerBlock records except the
 *            last, which holds the remainder (no padding)
 *   index    one 24 B entry per block:
 *            u32 count, u32 crc32(block bytes), u64 minAddr,
 *            u64 maxAddr  (min/max over the block's line addresses)
 *   trailer  40 B   u64 indexOffset, u64 blockCount,
 *            u64 totalRecords, u32 crc32(index bytes), u32 0,
 *            magic "WLCIDX02"
 *
 * WLCTRC03 keeps the record payload and blocking identical but
 * stores each block independently compressed (docs/trace-format.md
 * has the byte-level spec):
 *
 *   header   16 B   magic "WLCTRC03", u32 recordsPerBlock, u32 0
 *   blocks   variable-size stored byte runs, back to back; each is
 *            one block's records either raw or compressed with the
 *            codec named in its index entry
 *   index    one 48 B entry per block:
 *            u32 count, u32 rawCrc (crc32 of the *uncompressed*
 *            record bytes), u64 minAddr, u64 maxAddr,
 *            u64 offset (absolute file offset of the stored bytes),
 *            u32 storedBytes, u32 storedCrc (crc32 of the stored
 *            bytes), u8 codec (BlockCodec), 7 zero bytes
 *   trailer  40 B   as v2, magic "WLCIDX03"
 *
 * A writer compresses each block and falls back to raw storage when
 * the codec does not strictly shrink it, so a v3 file is never
 * larger than its v2 equivalent plus the bigger index. Records are
 * the same 136 bytes in all generations (u64 lineAddr, 64 B old
 * data, 64 B new data, little-endian), so conversion between any
 * two formats is re-framing, never re-encoding. The trailer sits at
 * EOF, so a reader finds the index with one seek; the per-block
 * min/max addresses let a sharded replay skip whole blocks whose
 * address range cannot intersect its partition.
 */

#ifndef WLCRC_TRACEFILE_FORMAT_HH
#define WLCRC_TRACEFILE_FORMAT_HH

#include <cstdint>
#include <string>

#include "trace/transaction.hh"

namespace wlcrc::tracefile
{

/** Magic of the legacy sequential format (trace/trace_io). */
inline constexpr char magicV1[8] = {'W', 'L', 'C', 'T',
                                    'R', 'C', '0', '1'};
/** Magic opening a WLCTRC02 container. */
inline constexpr char magicV2[8] = {'W', 'L', 'C', 'T',
                                    'R', 'C', '0', '2'};
/** Magic opening a WLCTRC03 container. */
inline constexpr char magicV3[8] = {'W', 'L', 'C', 'T',
                                    'R', 'C', '0', '3'};
/** Magic closing the v2 trailer (read backwards from EOF). */
inline constexpr char magicIndex[8] = {'W', 'L', 'C', 'I',
                                       'D', 'X', '0', '2'};
/** Magic closing the v3 trailer. */
inline constexpr char magicIndexV3[8] = {'W', 'L', 'C', 'I',
                                         'D', 'X', '0', '3'};

/** Serialized size of one record: u64 addr + old + new line. */
inline constexpr uint32_t recordBytes = 8 + 2 * (lineBits / 8);
/** Serialized size of the file header. */
inline constexpr uint32_t headerBytes = 16;
/** Serialized size of one v2 footer-index entry. */
inline constexpr uint32_t indexEntryBytes = 24;
/** Serialized size of one v3 footer-index entry. */
inline constexpr uint32_t indexEntryBytesV3 = 48;
/** Serialized size of the trailer. */
inline constexpr uint32_t trailerBytes = 40;
/** Default block capacity: 4096 records ≈ 544 KiB per block. */
inline constexpr uint32_t defaultRecordsPerBlock = 4096;

/** Per-block storage codec of a WLCTRC03 container. */
enum class BlockCodec : uint8_t
{
    raw = 0,  //!< records stored verbatim
    lz = 1,   //!< dependency-free LZ (common/lz.hh)
    zstd = 2, //!< zstd, present only when CMake finds the library
};

/** @return "raw", "lz" or "zstd". */
const char *codecName(BlockCodec c);

/**
 * Decoded footer-index entry of one block. For a v2 container the
 * storage fields are synthesized at load time (offset from the
 * fixed blocking, storedBytes = count × recordBytes, codec = raw,
 * storedCrc = rawCrc), so readers treat both generations uniformly.
 */
struct BlockInfo
{
    uint32_t count = 0;   //!< records stored in the block
    uint32_t crc = 0;     //!< crc32 of the *uncompressed* records
    uint64_t minAddr = 0; //!< smallest line address in the block
    uint64_t maxAddr = 0; //!< largest line address in the block
    uint64_t offset = 0;  //!< file offset of the stored bytes
    uint32_t storedBytes = 0; //!< on-disk size of the stored bytes
    uint32_t storedCrc = 0;   //!< crc32 of the stored bytes
    BlockCodec codec = BlockCodec::raw;
};

// Little-endian scalar accessors on raw buffers. The container is
// byte-order-pinned like WLCTRC01, so files are portable.
void putLe32(uint8_t *dst, uint32_t v);
void putLe64(uint8_t *dst, uint64_t v);
uint32_t getLe32(const uint8_t *src);
uint64_t getLe64(const uint8_t *src);

/** Serialize @p txn into @p dst (recordBytes bytes). */
void encodeRecord(uint8_t *dst, const trace::WriteTransaction &txn);
/** Decode a record serialized by encodeRecord(). */
trace::WriteTransaction decodeRecord(const uint8_t *src);

/**
 * @return true if [minAddr, maxAddr] contains an address congruent
 * to @p residue mod @p mod — the block-pruning predicate: a block
 * whose address range has no such address holds nothing for the
 * shard replaying that residue class.
 */
bool rangeHasResidue(uint64_t minAddr, uint64_t maxAddr,
                     unsigned mod, unsigned residue);

/** Trace container generations. */
enum class TraceFormat
{
    v1, //!< WLCTRC01 sequential dump
    v2, //!< WLCTRC02 blocked + indexed container
    v3, //!< WLCTRC03 per-block-compressed container
};

/** @return "v1", "v2" or "v3". */
const char *formatName(TraceFormat f);

/**
 * Sniff the leading magic of @p path.
 * @throws std::runtime_error if the file cannot be opened or starts
 * with neither trace magic.
 */
TraceFormat detectFormat(const std::string &path);

} // namespace wlcrc::tracefile

#endif // WLCRC_TRACEFILE_FORMAT_HH
