#include "wlc.hh"

#include <bit>
#include <cassert>

namespace wlcrc::compress
{

unsigned
Wlc::msbRunLength(uint64_t word)
{
    // Run of the MSB's value: flip if MSB is 1, then count zeros.
    const uint64_t normalised =
        (word >> 63) ? ~word : word;
    const int zeros = std::countl_zero(normalised);
    return zeros == 64 ? 64 : static_cast<unsigned>(zeros);
}

bool
Wlc::lineCompressible(const Line512 &line, unsigned k)
{
    assert(k >= 1 && k <= 64);
    for (unsigned w = 0; w < lineWords; ++w) {
        if (!wordCompressible(line.word(w), k))
            return false;
    }
    return true;
}

uint64_t
Wlc::signExtendWord(uint64_t word, unsigned reclaimed)
{
    assert(reclaimed >= 1 && reclaimed < 64);
    const unsigned sign_bit = 63 - reclaimed;
    const uint64_t mask = ~uint64_t{0} << sign_bit;
    if ((word >> sign_bit) & 1)
        return word | mask;
    return word & ~mask;
}

} // namespace wlcrc::compress
