/**
 * @file
 * LineCompressor: common interface of the variable-length 512-bit
 * line compressors (FPC, BDI, FPC+BDI, COC).
 */

#ifndef WLCRC_COMPRESS_COMPRESSOR_HH
#define WLCRC_COMPRESS_COMPRESSOR_HH

#include <memory>
#include <optional>
#include <string>

#include "common/line512.hh"
#include "compress/bitbuffer.hh"

namespace wlcrc::compress
{

/** Abstract variable-length memory-line compressor. */
class LineCompressor
{
  public:
    virtual ~LineCompressor() = default;

    /** Display name. */
    virtual std::string name() const = 0;

    /**
     * Compress @p line.
     * @return self-describing bitstream (metadata + payload), or
     *         nullopt when the line cannot be made smaller than 512
     *         bits by this compressor.
     */
    virtual std::optional<BitBuffer>
    compress(const Line512 &line) const = 0;

    /** Invert compress(); @p stream must come from this compressor. */
    virtual Line512 decompress(const BitBuffer &stream) const = 0;

    /**
     * Convenience: compressed size in bits, or nullopt.
     */
    std::optional<unsigned>
    compressedBits(const Line512 &line) const
    {
        const auto s = compress(line);
        return s ? std::optional<unsigned>(s->size()) : std::nullopt;
    }
};

using CompressorPtr = std::unique_ptr<LineCompressor>;

} // namespace wlcrc::compress

#endif // WLCRC_COMPRESS_COMPRESSOR_HH
