#include "bdi.hh"

#include <array>
#include <cassert>
#include <cstring>

namespace wlcrc::compress
{

namespace
{

/** Sign-extend the low @p bytes bytes of @p v to 64 bits. */
int64_t
sext(uint64_t v, unsigned bytes)
{
    const unsigned shift = 64 - bytes * 8;
    return static_cast<int64_t>(v << shift) >> shift;
}

/** True iff @p delta fits in a signed @p bytes-byte immediate. */
bool
fits(int64_t delta, unsigned bytes)
{
    const int64_t lim = int64_t{1} << (bytes * 8 - 1);
    return delta >= -lim && delta < lim;
}

/**
 * a - b in two's-complement (mod 2^64) arithmetic. For 8-byte
 * values the true difference can exceed int64_t — signed overflow,
 * UB — but BDI's delta coding is modular by construction: the
 * decoder adds the delta back mod 2^64, so a wrapped small delta
 * still round-trips to the exact original value.
 */
int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

/** a + b mod 2^64, the decode-side inverse of wrapSub. */
int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

} // namespace

const std::vector<Bdi::Config> &
Bdi::configs()
{
    static const std::vector<Config> cfgs = {
        {8, 1}, {8, 2}, {8, 4}, {4, 1}, {4, 2}, {2, 1},
    };
    return cfgs;
}

std::optional<BitBuffer>
Bdi::tryConfig(const Line512 &line, const Config &cfg)
{
    const unsigned n = 64 / cfg.valueBytes;
    assert(n <= 32); // smallest valueBytes is 2 bytes per value
    // First non-immediate (non-zero-fitting) value becomes the base.
    uint64_t base = 0;
    bool have_base = false;
    std::array<uint64_t, 32> values{};
    std::array<uint8_t, 32> imm{};
    for (unsigned i = 0; i < n; ++i) {
        values[i] = line.bits(i * cfg.valueBytes * 8,
                              cfg.valueBytes * 8);
        const int64_t v = sext(values[i], cfg.valueBytes);
        if (fits(v, cfg.deltaBytes)) {
            imm[i] = 1; // delta from the implicit zero base
            continue;
        }
        if (!have_base) {
            base = values[i];
            have_base = true;
        }
        const int64_t d = wrapSub(v, sext(base, cfg.valueBytes));
        if (!fits(d, cfg.deltaBytes))
            return std::nullopt;
    }

    BitBuffer out;
    out.append(base, cfg.valueBytes * 8);
    for (unsigned i = 0; i < n; ++i)
        out.append(imm[i], 1);
    for (unsigned i = 0; i < n; ++i) {
        const int64_t v = sext(values[i], cfg.valueBytes);
        const int64_t ref =
            imm[i] ? 0 : sext(base, cfg.valueBytes);
        out.append(static_cast<uint64_t>(wrapSub(v, ref)),
                   cfg.deltaBytes * 8);
    }
    return out;
}

Line512
Bdi::undoConfig(const BitBuffer &stream, const Config &cfg)
{
    BitReader in(stream);
    const unsigned n = 64 / cfg.valueBytes;
    const uint64_t base = in.take(cfg.valueBytes * 8);
    std::vector<uint8_t> imm(n);
    for (unsigned i = 0; i < n; ++i)
        imm[i] = static_cast<uint8_t>(in.take(1));
    Line512 line;
    for (unsigned i = 0; i < n; ++i) {
        const int64_t d =
            sext(in.take(cfg.deltaBytes * 8), cfg.deltaBytes);
        const int64_t ref =
            imm[i] ? 0 : sext(base, cfg.valueBytes);
        line.setBits(i * cfg.valueBytes * 8, cfg.valueBytes * 8,
                     static_cast<uint64_t>(wrapAdd(ref, d)));
    }
    return line;
}

std::optional<BitBuffer>
Bdi::compress(const Line512 &line) const
{
    // Zero line.
    bool zero = true;
    for (unsigned w = 0; w < lineWords && zero; ++w)
        zero = line.word(w) == 0;
    if (zero) {
        BitBuffer out;
        out.append(0, headerBits);
        return out;
    }
    // Repeated 8-byte value.
    bool rep = true;
    for (unsigned w = 1; w < lineWords && rep; ++w)
        rep = line.word(w) == line.word(0);
    if (rep) {
        BitBuffer out;
        out.append(1, headerBits);
        out.append(line.word(0), 64);
        return out;
    }
    // Base+delta configurations, best (smallest) first.
    std::optional<BitBuffer> best;
    unsigned best_id = 0;
    for (unsigned c = 0; c < configs().size(); ++c) {
        auto payload = tryConfig(line, configs()[c]);
        if (!payload)
            continue;
        if (!best || payload->size() < best->size()) {
            best = std::move(payload);
            best_id = c + 2;
        }
    }
    if (!best)
        return std::nullopt;
    BitBuffer out;
    out.append(best_id, headerBits);
    for (unsigned pos = 0; pos < best->size();) {
        const unsigned chunk = std::min(64u, best->size() - pos);
        out.append(best->read(pos, chunk), chunk);
        pos += chunk;
    }
    if (out.size() >= lineBits)
        return std::nullopt;
    return out;
}

Line512
Bdi::decompress(const BitBuffer &stream) const
{
    BitReader in(stream);
    const auto id = static_cast<unsigned>(in.take(headerBits));
    if (id == 0)
        return Line512();
    if (id == 1) {
        Line512 line;
        const uint64_t v = in.take(64);
        for (unsigned w = 0; w < lineWords; ++w)
            line.setWord(w, v);
        return line;
    }
    assert(id - 2 < configs().size());
    // Strip the header and hand the payload to undoConfig.
    BitBuffer payload;
    for (unsigned pos = headerBits; pos < stream.size();) {
        const unsigned chunk = std::min(64u, stream.size() - pos);
        payload.append(stream.read(pos, chunk), chunk);
        pos += chunk;
    }
    return undoConfig(payload, configs()[id - 2]);
}

} // namespace wlcrc::compress
