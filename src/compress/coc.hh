/**
 * @file
 * COC: a coverage-oriented compressor bank in the spirit of Frugal
 * ECC (Kim et al., SC'15): many variable-length compressors are tried
 * and the smallest result wins, maximising the *fraction of lines*
 * that compress (coverage) rather than the compression ratio.
 *
 * Substitution note (see DESIGN.md): the original COC uses 28
 * hand-tuned variable-length compressors. We enumerate a bank of the
 * same flavour — every BDI (value size, delta size) configuration,
 * FPC, zero/repeat detectors and per-word sign-extension packing —
 * which reproduces the two properties the paper relies on: >90 % line
 * coverage, and bit-position scrambling that defeats differential
 * write locality.
 */

#ifndef WLCRC_COMPRESS_COC_HH
#define WLCRC_COMPRESS_COC_HH

#include "compress/bdi.hh"
#include "compress/compressor.hh"
#include "compress/fpc.hh"

namespace wlcrc::compress
{

/** Coverage-oriented compressor bank. */
class Coc : public LineCompressor
{
  public:
    std::string name() const override { return "COC"; }

    std::optional<BitBuffer>
    compress(const Line512 &line) const override;

    Line512 decompress(const BitBuffer &stream) const override;

    /** Number of member compressors in the bank. */
    static unsigned bankSize();

  private:
    // Sub-stream ids: 0 = FPC, 1 = BDI, 2 + k = sign-pack with
    // kept-bit count kept = 15 + 2k per 64-bit word (k = 0..24);
    // odd counts reach a word whose MSB run is exactly r with
    // kept = 65 - r.
    static constexpr unsigned idBits = 5;

    Fpc fpc_;
    Bdi bdi_;
};

} // namespace wlcrc::compress

#endif // WLCRC_COMPRESS_COC_HH
