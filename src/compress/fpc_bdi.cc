#include "fpc_bdi.hh"

namespace wlcrc::compress
{

std::optional<BitBuffer>
FpcBdi::compress(const Line512 &line) const
{
    const auto f = fpc_.compress(line);
    const auto b = bdi_.compress(line);
    const BitBuffer *pick = nullptr;
    unsigned selector = 0;
    if (f && (!b || f->size() <= b->size())) {
        pick = &*f;
        selector = 0;
    } else if (b) {
        pick = &*b;
        selector = 1;
    }
    if (!pick)
        return std::nullopt;
    BitBuffer out;
    out.append(selector, 1);
    for (unsigned pos = 0; pos < pick->size();) {
        const unsigned chunk = std::min(64u, pick->size() - pos);
        out.append(pick->read(pos, chunk), chunk);
        pos += chunk;
    }
    if (out.size() >= lineBits)
        return std::nullopt;
    return out;
}

Line512
FpcBdi::decompress(const BitBuffer &stream) const
{
    const unsigned selector =
        static_cast<unsigned>(stream.read(0, 1));
    BitBuffer inner;
    for (unsigned pos = 1; pos < stream.size();) {
        const unsigned chunk = std::min(64u, stream.size() - pos);
        inner.append(stream.read(pos, chunk), chunk);
        pos += chunk;
    }
    return selector ? bdi_.decompress(inner) : fpc_.decompress(inner);
}

} // namespace wlcrc::compress
