/**
 * @file
 * BitBuffer: an append/read bit vector used by the variable-length
 * line compressors (FPC, BDI, COC) and by DIN's 3-to-4 expansion.
 */

#ifndef WLCRC_COMPRESS_BITBUFFER_HH
#define WLCRC_COMPRESS_BITBUFFER_HH

#include <array>
#include <cstdint>

#include "common/line512.hh"

namespace wlcrc::compress
{

/**
 * Fixed-capacity bit vector with LSB-first sequential access.
 *
 * Storage is inline (no heap) so the compressors can build and move
 * candidate streams on the encode hot path without allocating. The
 * capacity covers the worst producer in the tree: FPC's all-literal
 * stream (16 words x 35 bits = 560) plus FpcBdi's selector bit.
 * Words beyond size() are kept zero (append masks its value), which
 * makes the defaulted operator== compare equal exactly when the bit
 * sequences are equal.
 */
class BitBuffer
{
  public:
    static constexpr unsigned capacityBits = 768;

    BitBuffer() = default;

    /** Append the low @p len bits of @p value. */
    void append(uint64_t value, unsigned len);

    /** Read @p len bits starting at bit @p pos. */
    uint64_t read(unsigned pos, unsigned len) const;

    /** Number of bits stored. */
    unsigned size() const { return bits_; }

    /**
     * Pack into a Line512, bit i of the buffer at line bit i;
     * remaining line bits are zero. Buffer must fit (<= 512 bits).
     */
    Line512 toLine() const;

    /** Rebuild from the first @p bits bits of @p line. */
    static BitBuffer fromLine(const Line512 &line, unsigned bits);

    bool operator==(const BitBuffer &o) const = default;

  private:
    std::array<uint64_t, capacityBits / 64> words_{};
    unsigned bits_ = 0;
};

/** Sequential reader over a BitBuffer. */
class BitReader
{
  public:
    explicit BitReader(const BitBuffer &buf) : buf_(buf) {}

    /** Read and consume @p len bits. */
    uint64_t
    take(unsigned len)
    {
        const uint64_t v = buf_.read(pos_, len);
        pos_ += len;
        return v;
    }

    unsigned position() const { return pos_; }
    bool exhausted() const { return pos_ >= buf_.size(); }

  private:
    const BitBuffer &buf_;
    unsigned pos_ = 0;
};

} // namespace wlcrc::compress

#endif // WLCRC_COMPRESS_BITBUFFER_HH
