/**
 * @file
 * FPC+BDI: the composite compressor used by DIN — try both FPC and
 * BDI and keep the smaller result. A 1-bit selector prefixes the
 * chosen stream so decompression is self-describing.
 */

#ifndef WLCRC_COMPRESS_FPC_BDI_HH
#define WLCRC_COMPRESS_FPC_BDI_HH

#include "compress/bdi.hh"
#include "compress/compressor.hh"
#include "compress/fpc.hh"

namespace wlcrc::compress
{

/** Best-of FPC and BDI. */
class FpcBdi : public LineCompressor
{
  public:
    std::string name() const override { return "FPC+BDI"; }

    std::optional<BitBuffer>
    compress(const Line512 &line) const override;

    Line512 decompress(const BitBuffer &stream) const override;

  private:
    Fpc fpc_;
    Bdi bdi_;
};

} // namespace wlcrc::compress

#endif // WLCRC_COMPRESS_FPC_BDI_HH
