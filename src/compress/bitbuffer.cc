#include "bitbuffer.hh"

#include <cassert>

namespace wlcrc::compress
{

void
BitBuffer::append(uint64_t value, unsigned len)
{
    assert(len >= 1 && len <= 64);
    assert(bits_ + len <= capacityBits);
    if (len < 64)
        value &= (uint64_t{1} << len) - 1;
    const unsigned w = bits_ >> 6;
    const unsigned off = bits_ & 63;
    words_[w] |= value << off;
    if (off && off + len > 64)
        words_[w + 1] = value >> (64 - off);
    bits_ += len;
}

uint64_t
BitBuffer::read(unsigned pos, unsigned len) const
{
    assert(len >= 1 && len <= 64 && pos + len <= bits_);
    const unsigned w = pos >> 6;
    const unsigned off = pos & 63;
    uint64_t v = words_[w] >> off;
    if (off + len > 64)
        v |= words_[w + 1] << (64 - off);
    if (len < 64)
        v &= (uint64_t{1} << len) - 1;
    return v;
}

Line512
BitBuffer::toLine() const
{
    assert(bits_ <= lineBits);
    Line512 line;
    // Words past size() are zero by construction, so no tail
    // masking is needed.
    for (unsigned w = 0; w < (bits_ + 63) / 64; ++w)
        line.setWord(w, words_[w]);
    return line;
}

BitBuffer
BitBuffer::fromLine(const Line512 &line, unsigned bits)
{
    assert(bits <= lineBits);
    BitBuffer buf;
    unsigned pos = 0;
    while (pos < bits) {
        const unsigned chunk = std::min(64u, bits - pos);
        buf.append(line.bits(pos, chunk), chunk);
        pos += chunk;
    }
    return buf;
}

} // namespace wlcrc::compress
