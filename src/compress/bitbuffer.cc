#include "bitbuffer.hh"

#include <cassert>

namespace wlcrc::compress
{

void
BitBuffer::append(uint64_t value, unsigned len)
{
    assert(len >= 1 && len <= 64);
    if (len < 64)
        value &= (uint64_t{1} << len) - 1;
    const unsigned off = bits_ & 63;
    if (!off)
        words_.push_back(0);
    words_.back() |= value << off;
    if (off + len > 64) {
        words_.push_back(value >> (64 - off));
    }
    bits_ += len;
}

uint64_t
BitBuffer::read(unsigned pos, unsigned len) const
{
    assert(len >= 1 && len <= 64 && pos + len <= bits_);
    const unsigned w = pos >> 6;
    const unsigned off = pos & 63;
    uint64_t v = words_[w] >> off;
    if (off + len > 64)
        v |= words_[w + 1] << (64 - off);
    if (len < 64)
        v &= (uint64_t{1} << len) - 1;
    return v;
}

Line512
BitBuffer::toLine() const
{
    assert(bits_ <= lineBits);
    Line512 line;
    for (size_t w = 0; w < words_.size(); ++w)
        line.setWord(static_cast<unsigned>(w), words_[w]);
    // Mask tail garbage beyond bits_.
    if (bits_ & 63) {
        const unsigned w = bits_ >> 6;
        line.setWord(w, line.word(w) &
                            ((uint64_t{1} << (bits_ & 63)) - 1));
        for (unsigned i = w + 1; i < lineWords; ++i)
            line.setWord(i, 0);
    }
    return line;
}

BitBuffer
BitBuffer::fromLine(const Line512 &line, unsigned bits)
{
    assert(bits <= lineBits);
    BitBuffer buf;
    unsigned pos = 0;
    while (pos < bits) {
        const unsigned chunk = std::min(64u, bits - pos);
        buf.append(line.bits(pos, chunk), chunk);
        pos += chunk;
    }
    return buf;
}

} // namespace wlcrc::compress
