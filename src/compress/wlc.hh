/**
 * @file
 * WLC: the paper's Word-Level Compression (Section IV).
 *
 * A 512-bit line is WLC-compressible at parameter k iff, in each of
 * its eight 64-bit words, the k most significant bits are all-0 or
 * all-1. Compression then replaces those k bits by one (the sign)
 * bit, reclaiming k-1 bits per word for auxiliary coset information.
 * Decompression sign-extends bit 64-k back over the reclaimed region.
 *
 * WLC is deliberately *not* a bitstream compressor: all other bits
 * keep their positions, preserving the bit locality that makes
 * differential writes effective — the paper's key requirement.
 */

#ifndef WLCRC_COMPRESS_WLC_HH
#define WLCRC_COMPRESS_WLC_HH

#include <cstdint>

#include "common/line512.hh"

namespace wlcrc::compress
{

/** Word-Level Compression predicate and helpers. */
class Wlc
{
  public:
    /**
     * Length of the run of identical bits starting at the MSB of
     * @p word (1..64). A word with MSB run r is compressible for
     * any k <= r.
     */
    static unsigned msbRunLength(uint64_t word);

    /** True iff all k MSBs of @p word are equal. */
    static bool
    wordCompressible(uint64_t word, unsigned k)
    {
        return msbRunLength(word) >= k;
    }

    /** True iff every word of @p line is compressible at @p k. */
    static bool lineCompressible(const Line512 &line, unsigned k);

    /**
     * Sign-extend bit (63 - reclaimed) of @p word over the reclaimed
     * MSBs — WLC decompression of one word.
     */
    static uint64_t signExtendWord(uint64_t word, unsigned reclaimed);
};

} // namespace wlcrc::compress

#endif // WLCRC_COMPRESS_WLC_HH
