#include "fpc.hh"

#include <cassert>

namespace wlcrc::compress
{

namespace
{

/** True iff @p w equals its low @p bits bits sign-extended to 32. */
bool
signExtends(uint32_t w, unsigned bits)
{
    const int32_t v = static_cast<int32_t>(w << (32 - bits)) >>
                      (32 - bits);
    return static_cast<uint32_t>(v) == w;
}

constexpr unsigned wordsPerLine = 16;

} // namespace

unsigned
Fpc::classify(uint32_t w)
{
    if (w == 0)
        return 0;
    if (signExtends(w, 4))
        return 1;
    if (signExtends(w, 8))
        return 2;
    if (signExtends(w, 16))
        return 3;
    if ((w & 0xffff0000u) == 0)
        return 4;
    const uint32_t hi = w >> 16, lo = w & 0xffff;
    if (signExtends(hi << 16 >> 16, 8) && signExtends(lo, 8) &&
        signExtends(hi, 8))
        return 5;
    const uint32_t b = w & 0xff;
    if (w == (b | (b << 8) | (b << 16) | (b << 24)))
        return 6;
    return 7;
}

unsigned
Fpc::payloadBits(unsigned id)
{
    static const unsigned bits[8] = {0, 4, 8, 16, 16, 16, 8, 32};
    return bits[id];
}

std::optional<BitBuffer>
Fpc::compress(const Line512 &line) const
{
    BitBuffer out;
    for (unsigned i = 0; i < wordsPerLine; ++i) {
        const auto w =
            static_cast<uint32_t>(line.bits(i * 32, 32));
        const unsigned id = classify(w);
        out.append(id, 3);
        switch (id) {
          case 0:
            break;
          case 1:
            out.append(w & 0xf, 4);
            break;
          case 2:
            out.append(w & 0xff, 8);
            break;
          case 3:
          case 4:
            out.append(w & 0xffff, 16);
            break;
          case 5:
            out.append(w & 0xff, 8);
            out.append((w >> 16) & 0xff, 8);
            break;
          case 6:
            out.append(w & 0xff, 8);
            break;
          default:
            out.append(w, 32);
            break;
        }
    }
    if (out.size() >= lineBits)
        return std::nullopt;
    return out;
}

Line512
Fpc::decompress(const BitBuffer &stream) const
{
    Line512 line;
    BitReader in(stream);
    for (unsigned i = 0; i < wordsPerLine; ++i) {
        const auto id = static_cast<unsigned>(in.take(3));
        uint32_t w = 0;
        auto sext = [](uint64_t v, unsigned bits) {
            return static_cast<uint32_t>(
                static_cast<int32_t>(v << (32 - bits)) >>
                (32 - bits));
        };
        switch (id) {
          case 0:
            w = 0;
            break;
          case 1:
            w = sext(in.take(4), 4);
            break;
          case 2:
            w = sext(in.take(8), 8);
            break;
          case 3:
            w = sext(in.take(16), 16);
            break;
          case 4:
            w = static_cast<uint32_t>(in.take(16));
            break;
          case 5: {
            const uint32_t lo = sext(in.take(8), 8) & 0xffff;
            const uint32_t hi = sext(in.take(8), 8) & 0xffff;
            w = lo | (hi << 16);
            break;
          }
          case 6: {
            const uint32_t b = static_cast<uint32_t>(in.take(8));
            w = b | (b << 8) | (b << 16) | (b << 24);
            break;
          }
          default:
            w = static_cast<uint32_t>(in.take(32));
            break;
        }
        line.setBits(i * 32, 32, w);
    }
    return line;
}

} // namespace wlcrc::compress
