#include "coc.hh"

#include <cassert>

namespace wlcrc::compress
{

namespace
{

/** True iff @p w equals its low @p bits bits sign-extended to 64. */
bool
signExtends64(uint64_t w, unsigned bits)
{
    const int64_t v = static_cast<int64_t>(w << (64 - bits)) >>
                      (64 - bits);
    return static_cast<uint64_t>(v) == w;
}

constexpr unsigned firstSignPackId = 2;
constexpr unsigned signPackCount = 25; // kept = 15, 17, ..., 63

unsigned
keptBits(unsigned k)
{
    return 15 + 2 * k;
}

} // namespace

unsigned
Coc::bankSize()
{
    // FPC + BDI variants (zero, repeat, 6 configs) + sign packs.
    return 1 + 8 + signPackCount;
}

std::optional<BitBuffer>
Coc::compress(const Line512 &line) const
{
    std::optional<BitBuffer> best;
    unsigned best_id = 0;

    auto consider = [&](unsigned id, std::optional<BitBuffer> s) {
        if (!s)
            return;
        if (!best || s->size() < best->size()) {
            best = std::move(s);
            best_id = id;
        }
    };

    consider(0, fpc_.compress(line));
    consider(1, bdi_.compress(line));
    for (unsigned k = 0; k < signPackCount; ++k) {
        const unsigned kept = keptBits(k);
        bool ok = true;
        for (unsigned w = 0; w < lineWords && ok; ++w)
            ok = signExtends64(line.word(w), kept);
        if (!ok)
            continue;
        BitBuffer s;
        for (unsigned w = 0; w < lineWords; ++w)
            s.append(line.word(w), kept);
        consider(firstSignPackId + k, std::move(s));
    }

    if (!best || best->size() + idBits >= lineBits)
        return std::nullopt;
    BitBuffer out;
    out.append(best_id, idBits);
    for (unsigned pos = 0; pos < best->size();) {
        const unsigned chunk = std::min(64u, best->size() - pos);
        out.append(best->read(pos, chunk), chunk);
        pos += chunk;
    }
    return out;
}

Line512
Coc::decompress(const BitBuffer &stream) const
{
    const auto id = static_cast<unsigned>(stream.read(0, idBits));
    BitBuffer inner;
    for (unsigned pos = idBits; pos < stream.size();) {
        const unsigned chunk = std::min(64u, stream.size() - pos);
        inner.append(stream.read(pos, chunk), chunk);
        pos += chunk;
    }
    if (id == 0)
        return fpc_.decompress(inner);
    if (id == 1)
        return bdi_.decompress(inner);
    const unsigned kept = keptBits(id - firstSignPackId);
    Line512 line;
    BitReader in(inner);
    for (unsigned w = 0; w < lineWords; ++w) {
        const uint64_t v = in.take(kept);
        const int64_t x = static_cast<int64_t>(v << (64 - kept)) >>
                          (64 - kept);
        line.setWord(w, static_cast<uint64_t>(x));
    }
    return line;
}

} // namespace wlcrc::compress
