/**
 * @file
 * FPC: Frequent Pattern Compression (Alameldeen & Wood), operating on
 * sixteen 32-bit words per 512-bit line. Each word gets a 3-bit
 * pattern prefix plus a variable payload.
 */

#ifndef WLCRC_COMPRESS_FPC_HH
#define WLCRC_COMPRESS_FPC_HH

#include "compress/compressor.hh"

namespace wlcrc::compress
{

/**
 * Frequent Pattern Compression.
 *
 * Per-word patterns (prefix, payload bits):
 *   0 zero word                          (0)
 *   1 4-bit sign-extended                (4)
 *   2 8-bit sign-extended                (8)
 *   3 16-bit sign-extended               (16)
 *   4 upper half zero, lower half kept   (16)
 *   5 two independently 8-bit
 *     sign-extended halfwords            (16)
 *   6 all four bytes equal               (8)
 *   7 uncompressed                       (32)
 */
class Fpc : public LineCompressor
{
  public:
    std::string name() const override { return "FPC"; }

    std::optional<BitBuffer>
    compress(const Line512 &line) const override;

    Line512 decompress(const BitBuffer &stream) const override;

    /** Classify one 32-bit word; @return pattern id 0..7. */
    static unsigned classify(uint32_t word);

    /** Payload bit count of pattern @p id. */
    static unsigned payloadBits(unsigned id);
};

} // namespace wlcrc::compress

#endif // WLCRC_COMPRESS_FPC_HH
