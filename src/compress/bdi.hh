/**
 * @file
 * BDI: Base-Delta-Immediate compression (Pekhimenko et al., PACT'12)
 * for 512-bit lines: the line is viewed as equal-size values; if all
 * values fit within small deltas of a common base (plus an implicit
 * zero base for immediates), the line compresses to
 * base + delta array + immediate mask.
 */

#ifndef WLCRC_COMPRESS_BDI_HH
#define WLCRC_COMPRESS_BDI_HH

#include <vector>

#include "compress/compressor.hh"

namespace wlcrc::compress
{

/** Base-Delta-Immediate compression. */
class Bdi : public LineCompressor
{
  public:
    std::string name() const override { return "BDI"; }

    std::optional<BitBuffer>
    compress(const Line512 &line) const override;

    Line512 decompress(const BitBuffer &stream) const override;

    /**
     * One (value size, delta size) configuration. Public so that the
     * COC bank can enumerate configurations directly.
     */
    struct Config
    {
        unsigned valueBytes; //!< 2, 4 or 8
        unsigned deltaBytes; //!< < valueBytes
    };

    /** The standard BDI configuration set. */
    static const std::vector<Config> &configs();

    /**
     * Try one configuration. @return metadata-free payload size in
     * bits if every value is within delta range of the base or of
     * zero, else nullopt.
     */
    static std::optional<BitBuffer> tryConfig(const Line512 &line,
                                              const Config &cfg);

    /** Inverse of tryConfig for the same @p cfg. */
    static Line512 undoConfig(const BitBuffer &stream,
                              const Config &cfg);

  private:
    // Encoding ids in the stream header (4 bits):
    // 0 = zero line, 1 = repeated 8-byte value, 2.. = configs()[i-2].
    static constexpr unsigned headerBits = 4;
};

} // namespace wlcrc::compress

#endif // WLCRC_COMPRESS_BDI_HH
