/**
 * @file
 * Lightweight statistics primitives: running scalar statistics,
 * fixed-bucket histograms, and named stat sets, in the spirit of a
 * simulator stats package.
 */

#ifndef WLCRC_STATS_STATS_HH
#define WLCRC_STATS_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace wlcrc::stats
{

/**
 * Running mean / min / max / variance over a stream of samples
 * (Welford's algorithm; numerically stable).
 */
class RunningStat
{
  public:
    /** Add one sample. Inline: the replay path calls this 9x/write. */
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = x < min_ ? x : min_;
        max_ = x > max_ ? x : max_;
    }

    /** Merge another RunningStat into this one. */
    void merge(const RunningStat &o);

    /** Remove all samples. */
    void reset() { *this = RunningStat(); }

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    /** Sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(n_); }
    /** Population variance. */
    double variance() const;
    double stddev() const;

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram over [0, buckets * bucketWidth) with overflow bucket.
 */
class Histogram
{
  public:
    Histogram(unsigned buckets, double bucket_width);

    void add(double x);

    uint64_t bucketCount(unsigned b) const { return counts_.at(b); }
    uint64_t overflow() const { return overflow_; }
    uint64_t total() const { return total_; }
    unsigned buckets() const { return counts_.size(); }
    double bucketWidth() const { return width_; }

    /** Fraction of samples at or below @p x. */
    double cdfAt(double x) const;

    void write(std::ostream &os, const std::string &name) const;

  private:
    std::vector<uint64_t> counts_;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
    double width_;
};

/**
 * A named collection of RunningStats, addressed by string key.
 * Handy for per-benchmark/per-scheme result aggregation.
 */
class StatSet
{
  public:
    /** @return the stat named @p key, creating it on first use. */
    RunningStat &operator[](const std::string &key);

    const RunningStat *find(const std::string &key) const;

    /** Merge every stat of @p o into the same-named stat here. */
    void merge(const StatSet &o);

    /** Dump "name,count,mean,min,max,stddev" rows. */
    void write(std::ostream &os) const;

    auto begin() const { return stats_.begin(); }
    auto end() const { return stats_.end(); }

  private:
    std::map<std::string, RunningStat> stats_;
};

} // namespace wlcrc::stats

#endif // WLCRC_STATS_STATS_HH
