#include "stats.hh"

#include <algorithm>
#include <cmath>

namespace wlcrc::stats
{

void
RunningStat::merge(const RunningStat &o)
{
    if (!o.n_)
        return;
    if (!n_) {
        *this = o;
        return;
    }
    const double delta = o.mean_ - mean_;
    const double n = static_cast<double>(n_);
    const double m = static_cast<double>(o.n_);
    m2_ += o.m2_ + delta * delta * n * m / (n + m);
    mean_ += delta * m / (n + m);
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

double
RunningStat::variance() const
{
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(unsigned buckets, double bucket_width)
    : counts_(buckets, 0), width_(bucket_width)
{
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < 0) {
        ++counts_[0];
        return;
    }
    const auto b = static_cast<uint64_t>(x / width_);
    if (b >= counts_.size())
        ++overflow_;
    else
        ++counts_[b];
}

double
Histogram::cdfAt(double x) const
{
    if (!total_)
        return 0.0;
    uint64_t below = 0;
    for (unsigned b = 0; b < counts_.size(); ++b) {
        const double upper = (b + 1) * width_;
        if (upper <= x)
            below += counts_[b];
    }
    return static_cast<double>(below) / static_cast<double>(total_);
}

void
Histogram::write(std::ostream &os, const std::string &name) const
{
    for (unsigned b = 0; b < counts_.size(); ++b) {
        os << name << ",[" << b * width_ << "," << (b + 1) * width_
           << ")," << counts_[b] << '\n';
    }
    os << name << ",overflow," << overflow_ << '\n';
}

RunningStat &
StatSet::operator[](const std::string &key)
{
    return stats_[key];
}

void
StatSet::merge(const StatSet &o)
{
    for (const auto &[name, s] : o.stats_)
        stats_[name].merge(s);
}

const RunningStat *
StatSet::find(const std::string &key) const
{
    const auto it = stats_.find(key);
    return it == stats_.end() ? nullptr : &it->second;
}

void
StatSet::write(std::ostream &os) const
{
    os << "name,count,mean,min,max,stddev\n";
    for (const auto &[name, s] : stats_) {
        os << name << ',' << s.count() << ',' << s.mean() << ','
           << s.min() << ',' << s.max() << ',' << s.stddev() << '\n';
    }
}

} // namespace wlcrc::stats
