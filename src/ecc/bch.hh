/**
 * @file
 * Binary narrow-sense BCH code, shortened, correcting up to t errors
 * (t = 2 in this project: the "20-bit BCH" the DIN scheme attaches to
 * each encoded memory line).
 *
 * The code is constructed over GF(2^m) with n = 2^m - 1; the
 * generator polynomial is the LCM of the minimal polynomials of
 * alpha..alpha^{2t}. Encoding is systematic; decoding computes
 * syndromes and solves the error locator directly (closed form for
 * t <= 2) with a Chien search for root finding.
 */

#ifndef WLCRC_ECC_BCH_HH
#define WLCRC_ECC_BCH_HH

#include <cstdint>
#include <vector>

#include "ecc/gf2m.hh"

namespace wlcrc::ecc
{

/** Systematic shortened binary BCH codec. */
class Bch
{
  public:
    /**
     * @param m           field degree; block length n = 2^m - 1.
     * @param t           correctable errors (1 or 2).
     * @param data_bits   shortened payload length; must satisfy
     *                    data_bits + parityBits() <= n.
     */
    Bch(unsigned m, unsigned t, unsigned data_bits);

    unsigned parityBits() const { return parity_; }
    unsigned dataBits() const { return dataBits_; }
    unsigned codewordBits() const { return dataBits_ + parity_; }
    unsigned t() const { return t_; }

    /**
     * Systematically encode @p data (dataBits() bits, LSB-first per
     * byte entry: one bit per vector element).
     * @return codeword = data bits followed by parity bits.
     */
    std::vector<uint8_t> encode(const std::vector<uint8_t> &data) const;

    /**
     * Allocation-free encode for the hot path: reads dataBits() bit
     * bytes from @p data and writes codewordBits() bit bytes to
     * @p codeword (data bits first, then parity). The buffers may
     * not overlap.
     */
    void encodeInto(const uint8_t *data, uint8_t *codeword) const;

    /**
     * Decode @p received (codewordBits() bits), correcting in place.
     *
     * @return number of corrected errors (0..t), or -1 if the
     *         syndrome is uncorrectable.
     */
    int decode(std::vector<uint8_t> &received) const;

    /** The generator polynomial coefficients, degree parityBits(). */
    const std::vector<uint8_t> &generator() const { return gen_; }

  private:
    GF2m field_;
    unsigned t_;
    unsigned dataBits_;
    unsigned parity_;
    std::vector<uint8_t> gen_;
};

} // namespace wlcrc::ecc

#endif // WLCRC_ECC_BCH_HH
