/**
 * @file
 * Extended Hamming (72,64) SEC-DED code and FlipMin coset-mask
 * generation from its dual code.
 *
 * FlipMin (Jacobvitz et al., HPCA'13) builds its coset candidates
 * from the dual of a (72,64) Hamming generator matrix; since the
 * resulting candidates are essentially random binary vectors, the
 * paper adapts them to full 512-bit MLC lines. We do the same:
 * dual-code codewords are tiled/expanded deterministically into
 * 512-bit XOR masks.
 */

#ifndef WLCRC_ECC_HAMMING_HH
#define WLCRC_ECC_HAMMING_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/line512.hh"

namespace wlcrc::ecc
{

/** Extended Hamming (72,64) SEC-DED codec. */
class Hamming7264
{
  public:
    Hamming7264();

    /** Encode 64 data bits into a 72-bit codeword
     *  (data in low 64 bits of first element, parity in second). */
    std::pair<uint64_t, uint8_t> encode(uint64_t data) const;

    /**
     * Decode a received (data, parity) pair.
     * @return corrected data; sets @p status to 0 (clean), 1
     *         (corrected single error) or 2 (detected double error).
     */
    uint64_t decode(uint64_t data, uint8_t parity,
                    int &status) const;

    /** The 8 parity-check masks over data bits. */
    const std::array<uint64_t, 8> &checkMasks() const
    {
        return masks_;
    }

  private:
    std::array<uint64_t, 8> masks_;
};

/**
 * Deterministically derive @p count 512-bit XOR masks for FlipMin
 * from dual-code codewords of the (72,64) Hamming code.
 */
std::vector<Line512> flipMinMasks(unsigned count, uint64_t seed);

} // namespace wlcrc::ecc

#endif // WLCRC_ECC_HAMMING_HH
