#include "gf2m.hh"

#include <cassert>
#include <stdexcept>

namespace wlcrc::ecc
{

namespace
{

/** Default primitive polynomials (bit i = coefficient of x^i). */
uint32_t
defaultPoly(unsigned m)
{
    switch (m) {
      case 3: return 0b1011;                 // x^3+x+1
      case 4: return 0b10011;                // x^4+x+1
      case 5: return 0b100101;               // x^5+x^2+1
      case 6: return 0b1000011;              // x^6+x+1
      case 7: return 0b10001001;             // x^7+x^3+1
      case 8: return 0b100011101;            // x^8+x^4+x^3+x^2+1
      case 9: return 0b1000010001;           // x^9+x^4+1
      case 10: return 0b10000001001;         // x^10+x^3+1
      case 11: return 0b100000000101;        // x^11+x^2+1
      case 12: return 0b1000001010011;       // x^12+x^6+x^4+x+1
      case 13: return 0b10000000011011;      // x^13+x^4+x^3+x+1
      case 14: return 0b100010001000011;     // x^14+x^10+x^6+x+1
      case 15: return 0b1000000000000011;    // x^15+x+1
      case 16: return 0b10001000000001011;   // x^16+x^12+x^3+x+1
      default:
        throw std::invalid_argument("GF2m: unsupported degree");
    }
}

} // namespace

GF2m::GF2m(unsigned m, uint32_t poly) : m_(m), size_(1u << m)
{
    if (m < 3 || m > 16)
        throw std::invalid_argument("GF2m: m must be in [3,16]");
    if (!poly)
        poly = defaultPoly(m);

    exp_.assign(size_ * 2, 0);
    log_.assign(size_, -1);
    uint32_t x = 1;
    for (unsigned i = 0; i < n(); ++i) {
        exp_[i] = x;
        if (log_[x] != -1)
            throw std::invalid_argument("GF2m: poly not primitive");
        log_[x] = static_cast<int32_t>(i);
        x <<= 1;
        if (x & size_)
            x ^= poly;
    }
    if (x != 1)
        throw std::invalid_argument("GF2m: poly not primitive");
    // Duplicate table so alphaPow(i+j) never wraps during mul.
    for (unsigned i = 0; i < n(); ++i)
        exp_[n() + i] = exp_[i];
}

unsigned
GF2m::log(uint32_t x) const
{
    assert(x != 0 && x < size_);
    return static_cast<unsigned>(log_[x]);
}

uint32_t
GF2m::mul(uint32_t a, uint32_t b) const
{
    if (!a || !b)
        return 0;
    return exp_[log(a) + log(b)];
}

uint32_t
GF2m::inv(uint32_t a) const
{
    assert(a != 0);
    return exp_[n() - log(a)];
}

uint32_t
GF2m::div(uint32_t a, uint32_t b) const
{
    assert(b != 0);
    if (!a)
        return 0;
    return exp_[log(a) + n() - log(b)];
}

uint32_t
GF2m::pow(uint32_t a, int k) const
{
    if (!a)
        return k == 0 ? 1 : 0;
    const long order = static_cast<long>(n());
    long e = (static_cast<long>(log(a)) * k) % order;
    if (e < 0)
        e += order;
    return exp_[static_cast<unsigned>(e)];
}

} // namespace wlcrc::ecc
