#include "bch.hh"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

namespace wlcrc::ecc
{

namespace
{

/**
 * Minimal polynomial (over GF(2)) of alpha^i: the product of
 * (x + alpha^j) over the cyclotomic coset of i. Coefficients end up
 * in GF(2) by construction.
 */
std::vector<uint8_t>
minimalPoly(const GF2m &f, unsigned i)
{
    // Cyclotomic coset {i, 2i, 4i, ...} mod n.
    std::set<unsigned> coset;
    unsigned j = i % f.n();
    while (!coset.count(j)) {
        coset.insert(j);
        j = (j * 2) % f.n();
    }
    // Polynomial over GF(2^m), coefficient of x^k at index k.
    std::vector<uint32_t> poly{1};
    for (unsigned e : coset) {
        const uint32_t root = f.alphaPow(e);
        std::vector<uint32_t> next(poly.size() + 1, 0);
        for (size_t k = 0; k < poly.size(); ++k) {
            next[k + 1] ^= poly[k];            // x * poly
            next[k] ^= f.mul(poly[k], root);   // root * poly
        }
        poly = std::move(next);
    }
    std::vector<uint8_t> bits(poly.size());
    for (size_t k = 0; k < poly.size(); ++k) {
        assert(poly[k] <= 1 && "minimal poly must be binary");
        bits[k] = static_cast<uint8_t>(poly[k]);
    }
    return bits;
}

/** GF(2) polynomial multiply. */
std::vector<uint8_t>
polyMul(const std::vector<uint8_t> &a, const std::vector<uint8_t> &b)
{
    std::vector<uint8_t> r(a.size() + b.size() - 1, 0);
    for (size_t i = 0; i < a.size(); ++i) {
        if (!a[i])
            continue;
        for (size_t j = 0; j < b.size(); ++j)
            r[i + j] ^= a[i] & b[j];
    }
    return r;
}

} // namespace

Bch::Bch(unsigned m, unsigned t, unsigned data_bits)
    : field_(m), t_(t), dataBits_(data_bits)
{
    if (t < 1 || t > 2)
        throw std::invalid_argument("Bch: t must be 1 or 2");

    // Generator = LCM of minimal polynomials of alpha^1 .. alpha^{2t}
    // (even powers share cosets with odd ones, so gather distinct).
    gen_ = {1};
    std::set<unsigned> seen_cosets;
    for (unsigned i = 1; i <= 2 * t; ++i) {
        // Coset representative: smallest element of i's coset.
        unsigned rep = i % field_.n(), j = rep;
        do {
            j = (j * 2) % field_.n();
            rep = std::min(rep, j);
        } while (j != i % field_.n());
        if (!seen_cosets.insert(rep).second)
            continue;
        gen_ = polyMul(gen_, minimalPoly(field_, i));
    }
    parity_ = gen_.size() - 1;
    if (dataBits_ + parity_ > field_.n())
        throw std::invalid_argument("Bch: payload too long");
}

std::vector<uint8_t>
Bch::encode(const std::vector<uint8_t> &data) const
{
    assert(data.size() == dataBits_);
    std::vector<uint8_t> cw(codewordBits());
    encodeInto(data.data(), cw.data());
    return cw;
}

void
Bch::encodeInto(const uint8_t *data, uint8_t *codeword) const
{
    // Systematic: codeword(x) = data(x) * x^parity + remainder.
    // The work buffer holds data(x) * x^parity and is reduced in
    // place; n = 2^m - 1 <= 1023 for every field this project
    // constructs (m <= 10), so it fits on the stack.
    assert(dataBits_ + parity_ <= 1023);
    uint8_t shifted[1023];
    std::fill_n(shifted, parity_, uint8_t{0});
    std::copy(data, data + dataBits_, shifted + parity_);
    for (size_t i = parity_ + dataBits_; i-- > parity_;) {
        if (!shifted[i])
            continue;
        for (size_t j = 0; j < gen_.size(); ++j)
            shifted[i - parity_ + j] ^= gen_[j];
    }
    // Layout: data bits first, then parity bits (= the remainder
    // left in the low parity_ entries of the work buffer).
    std::copy(data, data + dataBits_, codeword);
    std::copy(shifted, shifted + parity_, codeword + dataBits_);
}

int
Bch::decode(std::vector<uint8_t> &received) const
{
    assert(received.size() == codewordBits());
    // Map storage layout back to polynomial coefficient positions:
    // coefficient of x^j is parity[j] for j < parity_, else
    // data[j - parity_].
    auto bit_at = [&](unsigned j) -> uint8_t & {
        return j < parity_ ? received[dataBits_ + j]
                           : received[j - parity_];
    };

    // Syndromes S_i = r(alpha^i), i = 1..2t.
    std::vector<uint32_t> synd(2 * t_ + 1, 0);
    bool all_zero = true;
    for (unsigned i = 1; i <= 2 * t_; ++i) {
        uint32_t s = 0;
        for (unsigned j = 0; j < codewordBits(); ++j) {
            if (bit_at(j))
                s ^= field_.alphaPow(i * j);
        }
        synd[i] = s;
        all_zero &= (s == 0);
    }
    if (all_zero)
        return 0;

    const uint32_t s1 = synd[1];
    if (t_ == 1 || (t_ == 2 && s1 != 0 &&
                    synd[3] == field_.mul(field_.mul(s1, s1), s1))) {
        // Single error at position log(S1).
        if (!s1)
            return -1;
        const unsigned pos = field_.log(s1);
        if (pos >= codewordBits())
            return -1; // error in the shortened (absent) prefix
        bit_at(pos) ^= 1;
        return 1;
    }

    // Two errors: sigma(x) = x^2 + s1 x + (s3 + s1^3)/s1.
    if (!s1)
        return -1;
    const uint32_t s1_cubed =
        field_.mul(field_.mul(s1, s1), s1);
    const uint32_t sigma2 = field_.div(synd[3] ^ s1_cubed, s1);
    // Chien search over valid positions.
    unsigned found[2];
    unsigned nfound = 0;
    for (unsigned j = 0; j < codewordBits() && nfound < 2; ++j) {
        const uint32_t x = field_.alphaPow(j);
        const uint32_t v =
            field_.mul(x, x) ^ field_.mul(s1, x) ^ sigma2;
        if (v == 0)
            found[nfound++] = j;
    }
    if (nfound != 2)
        return -1;
    bit_at(found[0]) ^= 1;
    bit_at(found[1]) ^= 1;
    return 2;
}

} // namespace wlcrc::ecc
