#include "hamming.hh"

#include <bit>
#include <cassert>

#include "common/rng.hh"

namespace wlcrc::ecc
{

Hamming7264::Hamming7264()
{
    // Standard Hamming construction: data bit d is checked by parity
    // bit p iff bit p of d's (power-of-two-skipping) position is set.
    // Mask 7 is the overall (extended/SEC-DED) parity over all data
    // bits; it is fixed up in encode() to also cover parity bits.
    masks_.fill(0);
    unsigned pos = 3; // codeword positions 1,2,4,... hold parity
    for (unsigned d = 0; d < 64; ++d) {
        while (std::has_single_bit(pos))
            ++pos;
        for (unsigned p = 0; p < 7; ++p) {
            if (pos & (1u << p))
                masks_[p] |= uint64_t{1} << d;
        }
        masks_[7] |= uint64_t{1} << d;
        ++pos;
    }
}

std::pair<uint64_t, uint8_t>
Hamming7264::encode(uint64_t data) const
{
    uint8_t parity = 0;
    for (unsigned p = 0; p < 7; ++p)
        parity |= (std::popcount(data & masks_[p]) & 1) << p;
    // Extended parity covers data plus the 7 Hamming parity bits.
    const unsigned overall = (std::popcount(data) +
                              std::popcount(unsigned(parity & 0x7f))) &
                             1;
    parity |= overall << 7;
    return {data, parity};
}

uint64_t
Hamming7264::decode(uint64_t data, uint8_t parity, int &status) const
{
    const auto [_, expect] = encode(data);
    const uint8_t syndrome7 = (parity ^ expect) & 0x7f;
    // Overall parity check over the received word: data bits, the 7
    // received Hamming parity bits and the received extended bit.
    // Any single stored-bit error flips exactly this sum.
    const unsigned overall =
        (std::popcount(data) +
         std::popcount(unsigned(parity & 0x7f)) +
         ((parity >> 7) & 1)) &
        1;
    if (!syndrome7 && !overall) {
        status = 0;
        return data;
    }
    if (syndrome7 && !overall) {
        status = 2; // double error detected, uncorrectable
        return data;
    }
    if (!syndrome7 && overall) {
        status = 1; // error in the extended parity bit itself
        return data;
    }
    // Single error: syndrome gives the codeword position; map back to
    // the data-bit index by skipping power-of-two positions.
    unsigned pos = 3, d = 0;
    for (; d < 64; ++d) {
        while (std::has_single_bit(pos))
            ++pos;
        if (pos == syndrome7)
            break;
        ++pos;
    }
    status = 1;
    if (d < 64)
        return data ^ (uint64_t{1} << d);
    return data; // error hit a parity position; data is intact
}

std::vector<Line512>
flipMinMasks(unsigned count, uint64_t seed)
{
    // Dual-code codewords of the (72,64) Hamming code are spanned by
    // the parity-check masks. Random GF(2) combinations of the check
    // masks give dual codewords over the data positions; eight
    // independent draws tile one 512-bit mask. The first mask is
    // all-zero so the identity encoding is always a candidate, as in
    // FlipMin.
    Hamming7264 code;
    Rng rng(seed);
    std::vector<Line512> masks;
    masks.reserve(count);
    masks.emplace_back(); // all-zero
    while (masks.size() < count) {
        Line512 m;
        for (unsigned w = 0; w < lineWords; ++w) {
            uint64_t word = 0;
            const unsigned combo =
                static_cast<unsigned>(rng.next() & 0xff);
            for (unsigned p = 0; p < 8; ++p) {
                if (combo & (1u << p))
                    word ^= code.checkMasks()[p];
            }
            // The dual-span over 64 data bits is only 8-dimensional;
            // whiten across words with a rotation so tiled masks do
            // not repeat byte patterns (the paper notes FlipMin's
            // candidates are essentially random vectors).
            word = std::rotl(word, static_cast<int>(rng.next() & 63));
            m.setWord(w, word);
        }
        masks.push_back(m);
    }
    return masks;
}

} // namespace wlcrc::ecc
