/**
 * @file
 * Arithmetic in the binary extension field GF(2^m), 3 <= m <= 16,
 * via exponential/logarithm tables over a primitive polynomial.
 * Substrate for the BCH code used by the DIN scheme.
 */

#ifndef WLCRC_ECC_GF2M_HH
#define WLCRC_ECC_GF2M_HH

#include <cstdint>
#include <vector>

namespace wlcrc::ecc
{

/** GF(2^m) with log/antilog tables. Elements are 0..2^m-1. */
class GF2m
{
  public:
    /**
     * @param m     field degree (3..16).
     * @param poly  primitive polynomial bits incl. x^m term; 0 picks
     *              a built-in default for the given m.
     */
    explicit GF2m(unsigned m, uint32_t poly = 0);

    unsigned m() const { return m_; }
    /** Field size minus one (order of the multiplicative group). */
    unsigned n() const { return size_ - 1; }

    /** alpha^i for 0 <= i (reduced mod n()). */
    uint32_t
    alphaPow(unsigned i) const
    {
        return exp_[i % n()];
    }

    /** Discrete log of nonzero @p x. */
    unsigned log(uint32_t x) const;

    uint32_t mul(uint32_t a, uint32_t b) const;
    uint32_t inv(uint32_t a) const;
    uint32_t div(uint32_t a, uint32_t b) const;
    /** a^k with k possibly negative (mod group order). */
    uint32_t pow(uint32_t a, int k) const;

  private:
    unsigned m_;
    uint32_t size_;
    std::vector<uint32_t> exp_;
    std::vector<int32_t> log_;
};

} // namespace wlcrc::ecc

#endif // WLCRC_ECC_GF2M_HH
