/**
 * @file
 * Per-word bit/cell layouts for the WLC-based codecs (Figure 6).
 *
 * After WLC reclaims the top `reclaimed` bits of a 64-bit word, the
 * remaining data bits are split into coset-encoded blocks. A block's
 * *cost cells* are the cells fully contained in its data bits — the
 * cells the parallel encoder can evaluate before auxiliary bits are
 * known; a block whose top data bit shares a cell with a reclaimed
 * bit also owns that shared cell when the final mapping is applied
 * (the paper's 11-bit most-significant block at 16-bit granularity).
 */

#ifndef WLCRC_WLCRC_WORD_LAYOUT_HH
#define WLCRC_WLCRC_WORD_LAYOUT_HH

#include <cstdint>
#include <vector>

namespace wlcrc::core
{

/** One coset-encoded block inside a 64-bit word. */
struct BlockLayout
{
    unsigned loBit;       //!< lowest data bit (within the word)
    unsigned hiBit;       //!< highest data bit (inclusive)
    unsigned loCell;      //!< first cell owned by the block
    unsigned hiCell;      //!< last cell owned (may hold an aux bit)
    unsigned loCostCell;  //!< first fully-known cell
    unsigned hiCostCell;  //!< last fully-known cell
};

/** Restricted-coset word layout for one WLCRC granularity. */
struct WordLayout
{
    unsigned granularity;     //!< data block size in bits
    unsigned reclaimed;       //!< WLC-reclaimed MSBs per word
    unsigned signBit;         //!< bit extended over the reclaimed MSBs
    unsigned groupBitPos;     //!< position of the coset-group bit
    std::vector<BlockLayout> blocks;
    std::vector<unsigned> blockBitPos;  //!< selector bit per block
    std::vector<unsigned> auxOnlyCells; //!< cells holding only aux bits
    std::vector<unsigned> decodeOrder;  //!< block decode dependency order

    /** WLC compressibility parameter: k MSBs must be uniform. */
    unsigned k() const { return reclaimed + 1; }

    /**
     * The layout for granularity @p g in {8, 16, 32} (g = 64 is the
     * unrestricted-3cosets special case handled by the codec itself).
     */
    static const WordLayout &restricted(unsigned g);
};

} // namespace wlcrc::core

#endif // WLCRC_WLCRC_WORD_LAYOUT_HH
