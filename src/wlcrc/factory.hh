/**
 * @file
 * Codec factory: builds any of the paper's evaluated schemes by name,
 * plus the standard Figure 8 scheme list.
 */

#ifndef WLCRC_WLCRC_FACTORY_HH
#define WLCRC_WLCRC_FACTORY_HH

#include <string>
#include <vector>

#include "coset/codec.hh"

namespace wlcrc::core
{

/**
 * Create a codec by scheme name. Recognised names:
 *   "Baseline", "FlipMin", "FNW", "DIN", "6cosets",
 *   "COC+4cosets", "WLC+4cosets" (32-bit), "WLC+3cosets",
 *   "WLCRC-8" / "WLCRC-16" / "WLCRC-32" / "WLCRC-64",
 *   "WLCRC-16-mo" (multi-objective, T = 1 %),
 *   "WLCRC-16-da" (disturbance-aware future-work extension).
 *
 * @throws std::invalid_argument for unknown names.
 */
coset::CodecPtr makeCodec(const std::string &name,
                          const pcm::EnergyModel &energy);

/** The eight schemes compared in Figures 8-10, in paper order. */
std::vector<std::string> figure8Schemes();

} // namespace wlcrc::core

#endif // WLCRC_WLCRC_FACTORY_HH
