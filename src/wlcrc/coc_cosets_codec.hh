/**
 * @file
 * COC+4cosets (an evaluation scheme in Section VIII): the line is
 * compressed with the COC bank; lines fitting in 448 bits are
 * 4coset-encoded at 16-bit granularity, lines fitting in 480 bits at
 * 32-bit granularity, everything else is written raw. The flag cell
 * distinguishes the three formats.
 *
 * Because COC's variable-length packing shifts bit positions between
 * consecutive writes of similar data, differential write loses its
 * locality advantage — the effect the paper demonstrates against.
 */

#ifndef WLCRC_WLCRC_COC_COSETS_CODEC_HH
#define WLCRC_WLCRC_COC_COSETS_CODEC_HH

#include "compress/coc.hh"
#include "coset/codec.hh"
#include "coset/mapping.hh"

namespace wlcrc::core
{

/** COC compression + unrestricted 4cosets. */
class CocCosetsCodec : public coset::LineCodec
{
  public:
    explicit CocCosetsCodec(const pcm::EnergyModel &energy);

    std::string name() const override { return "COC+4cosets"; }
    unsigned cellCount() const override { return lineSymbols + 1; }

    void encodeInto(const Line512 &data,
                    std::span<const pcm::State> stored,
                    coset::EncodeScratch &scratch,
                    pcm::TargetLine &target) const override;

    Line512 decode(
        const std::vector<pcm::State> &stored) const override;

    /** Payload budgets from the paper. */
    static constexpr unsigned budget16 = 448;
    static constexpr unsigned budget32 = 480;

  private:
    /** Coset-encode @p payload_bits of @p packed at @p granularity. */
    void encodePayload(const Line512 &packed, unsigned payload_bits,
                       unsigned granularity,
                       std::span<const pcm::State> stored,
                       pcm::TargetLine &target) const;

    Line512 decodePayload(const std::vector<pcm::State> &stored,
                          unsigned payload_bits,
                          unsigned granularity) const;

    compress::Coc coc_;
    /** Candidate-cost rows for the SIMD scoring kernel (stride 4). */
    std::array<double, pcm::numStates * 4 * 4> candRows_{};
};

} // namespace wlcrc::core

#endif // WLCRC_WLCRC_COC_COSETS_CODEC_HH
