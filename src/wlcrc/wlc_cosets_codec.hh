/**
 * @file
 * WLC + unrestricted coset coding (Section VI: "WLC can be integrated
 * with unrestricted 3cosets or 4cosets encodings").
 *
 * Each data block picks any candidate independently, so 2 aux bits
 * per block must be reclaimed by WLC: 2, 4, 8 or 16 bits per 64-bit
 * word for 64/32/16/8-bit granularity (k = 3/5/9/17). Aux bits are
 * held in whole cells at the top of each word, one cell per block,
 * storing the candidate index directly as a state (C1->S1, ...,
 * C4->S4 per Section IX-A). The paper's "WLC+4cosets" scheme is this
 * codec at 32-bit granularity.
 */

#ifndef WLCRC_WLCRC_WLC_COSETS_CODEC_HH
#define WLCRC_WLCRC_WLC_COSETS_CODEC_HH

#include "coset/codec.hh"
#include "coset/mapping.hh"

namespace wlcrc::core
{

/** WLC + unrestricted Table-I cosets. */
class WlcCosetsCodec : public coset::LineCodec
{
  public:
    /**
     * @param energy            write-energy model.
     * @param num_candidates    3 or 4 (Table I prefixes).
     * @param granularity_bits  8, 16, 32 or 64.
     */
    WlcCosetsCodec(const pcm::EnergyModel &energy,
                   unsigned num_candidates,
                   unsigned granularity_bits = 32);

    std::string name() const override;
    unsigned cellCount() const override { return lineSymbols + 1; }

    void encodeInto(const Line512 &data,
                    std::span<const pcm::State> stored,
                    coset::EncodeScratch &scratch,
                    pcm::TargetLine &target) const override;

    Line512 decode(
        const std::vector<pcm::State> &stored) const override;

    unsigned granularityBits() const { return granularity_; }
    /** Reclaimed bits per word (2 aux bits per block). */
    unsigned reclaimedBits() const { return reclaimed_; }
    /** WLC parameter k. */
    unsigned compressionK() const { return reclaimed_ + 1; }
    /** Data blocks actually encoded per word. */
    unsigned blocksPerWord() const { return blocks_; }

    bool compressible(const Line512 &data) const;

  private:
    unsigned candidates_;
    unsigned granularity_;
    unsigned reclaimed_;
    unsigned blocks_;
    /** Candidate-cost rows for the SIMD scoring kernel (stride 4,
     *  lanes past candidates_ zero-padded). */
    std::array<double, pcm::numStates * 4 * 4> candRows_{};
};

} // namespace wlcrc::core

#endif // WLCRC_WLCRC_WLC_COSETS_CODEC_HH
