#include "word_layout.hh"

#include <cassert>
#include <stdexcept>

namespace wlcrc::core
{

namespace
{

WordLayout
build16()
{
    // Figure 6(b): b63 = group, b62..b59 select the coset for blocks
    // 3..0, data bits b58..b0 in four blocks. Block 3 spans bits
    // 48..58; its top cell (29) also carries the aux bit b59, so its
    // cost cells stop at cell 28. Decode must therefore resolve
    // block 3 (selector b62, held in an aux-only cell) before block 0
    // (selector b59, inside block 3's cells).
    WordLayout l;
    l.granularity = 16;
    l.reclaimed = 5;
    l.signBit = 58;
    l.groupBitPos = 63;
    l.blocks = {
        {0, 15, 0, 7, 0, 7},
        {16, 31, 8, 15, 8, 15},
        {32, 47, 16, 23, 16, 23},
        {48, 58, 24, 29, 24, 28},
    };
    l.blockBitPos = {59, 60, 61, 62};
    l.auxOnlyCells = {30, 31};
    l.decodeOrder = {3, 2, 1, 0};
    return l;
}

WordLayout
build32()
{
    // b63 = group, b62 -> top block (bits 32..60), b61 -> block 0.
    // Cell 30 is shared between data bit b60 and aux bit b61.
    WordLayout l;
    l.granularity = 32;
    l.reclaimed = 3;
    l.signBit = 60;
    l.groupBitPos = 63;
    l.blocks = {
        {0, 31, 0, 15, 0, 15},
        {32, 60, 16, 30, 16, 29},
    };
    l.blockBitPos = {61, 62};
    l.auxOnlyCells = {31};
    l.decodeOrder = {1, 0};
    return l;
}

WordLayout
build8()
{
    // The most significant byte is fully compressed away (k = 9):
    // b63 = group, b62..b56 select the coset for blocks 6..0, data
    // bits b55..b0 in seven byte blocks. No cell sharing.
    WordLayout l;
    l.granularity = 8;
    l.reclaimed = 8;
    l.signBit = 55;
    l.groupBitPos = 63;
    for (unsigned j = 0; j < 7; ++j) {
        l.blocks.push_back({j * 8, j * 8 + 7, j * 4, j * 4 + 3,
                            j * 4, j * 4 + 3});
        l.blockBitPos.push_back(56 + j);
        l.decodeOrder.push_back(6 - j);
    }
    l.auxOnlyCells = {28, 29, 30, 31};
    return l;
}

} // namespace

const WordLayout &
WordLayout::restricted(unsigned g)
{
    static const WordLayout l8 = build8();
    static const WordLayout l16 = build16();
    static const WordLayout l32 = build32();
    switch (g) {
      case 8: return l8;
      case 16: return l16;
      case 32: return l32;
      default:
        throw std::invalid_argument(
            "WordLayout::restricted: granularity must be 8/16/32");
    }
}

} // namespace wlcrc::core
