/**
 * @file
 * WLCRC: the paper's primary contribution (Section VI) — Word-Level
 * Compression integrated with restricted coset coding.
 *
 * If every 64-bit word of the line has its k MSBs uniform, WLC
 * reclaims k-1 bits per word and each word is independently encoded
 * with restricted cosets: a per-word group bit selects {C1,C2} or
 * {C1,C3} and one bit per data block selects within the group
 * (Algorithm 1). Incompressible lines are written unencoded. A single
 * dedicated flag cell per line distinguishes the two formats, so the
 * total space overhead is one cell in 257 (< 0.4 %).
 *
 * Granularities: 16 (default, WLCRC-16), 32, 8, and 64 — the latter
 * degenerating to unrestricted 3cosets per word, as noted in the
 * paper.
 *
 * The optional multi-objective mode (Section VIII-D) trades energy
 * for endurance: when two choices' energies are within a threshold T
 * of each other, the one updating fewer cells wins.
 *
 * The optional *disturbance-aware* mode implements the paper's
 * stated future work ("extend the WLCRC encoding to be
 * write-disturbance aware"): candidate selection adds a per-state
 * penalty proportional to that state's disturbance error rate, so
 * the encoder steers idle-prone cells toward the immune state S2
 * and away from S3 (DER 27.6 %). The penalty shapes selection only;
 * reported write energy is always the physical energy.
 */

#ifndef WLCRC_WLCRC_WLCRC_CODEC_HH
#define WLCRC_WLCRC_WLCRC_CODEC_HH

#include <array>

#include "coset/codec.hh"
#include "pcm/disturbance.hh"
#include "coset/mapping.hh"
#include "wlcrc/word_layout.hh"

namespace wlcrc::core
{

/** WLC + restricted coset coding. */
class WlcrcCodec : public coset::LineCodec
{
  public:
    /**
     * @param energy            write-energy model.
     * @param granularity_bits  8, 16, 32 or 64.
     * @param endurance_threshold  multi-objective threshold T as a
     *        fraction (e.g. 0.01 for the paper's T = 1 %); 0 disables
     *        the endurance-aware tie-break.
     */
    WlcrcCodec(const pcm::EnergyModel &energy,
               unsigned granularity_bits = 16,
               double endurance_threshold = 0.0,
               const std::array<double, pcm::numStates>
                   &state_penalty_pj = {});

    /**
     * Disturbance-aware variant: per-state selection penalty
     * lambda * DER(state), from the paper's future-work direction.
     *
     * @param lambda_pj  weight converting an error rate into an
     *                   equivalent energy penalty (the expected VnR
     *                   repair cost per exposure; ~400 pJ covers two
     *                   neighbour exposures at mean program energy).
     */
    static WlcrcCodec disturbanceAware(
        const pcm::EnergyModel &energy,
        const pcm::DisturbanceModel &disturb,
        unsigned granularity_bits = 16, double lambda_pj = 400.0);

    std::string name() const override;
    /** 256 data cells + 1 compressed/raw flag cell. */
    unsigned cellCount() const override { return lineSymbols + 1; }

    pcm::TargetLine encode(
        const Line512 &data,
        const std::vector<pcm::State> &stored) const override;

    Line512 decode(
        const std::vector<pcm::State> &stored) const override;

    unsigned granularityBits() const { return granularity_; }

    /** WLC parameter: number of uniform MSBs required per word. */
    unsigned compressionK() const;

    /** True iff @p data would be stored in compressed+encoded form. */
    bool compressible(const Line512 &data) const;

  private:
    /** Encode one compressible word (restricted cosets, g<=32). */
    void encodeWordRestricted(
        unsigned w, uint64_t word,
        const std::vector<pcm::State> &stored,
        pcm::TargetLine &target) const;
    /** Encode one compressible word (3cosets, g=64). */
    void encodeWord64(unsigned w, uint64_t word,
                      const std::vector<pcm::State> &stored,
                      pcm::TargetLine &target) const;

    uint64_t decodeWordRestricted(
        unsigned w, const std::vector<pcm::State> &stored) const;
    uint64_t decodeWord64(
        unsigned w, const std::vector<pcm::State> &stored) const;

    /** Selection-time cost of programming @p target over @p old. */
    double
    selectCost(pcm::State old_state, pcm::State target) const
    {
        if (old_state == target)
            return 0.0;
        return cellCost(old_state, target) +
               penalty_[pcm::stateIndex(target)];
    }

    unsigned granularity_;
    double threshold_;
    std::array<double, pcm::numStates> penalty_{};
};

} // namespace wlcrc::core

#endif // WLCRC_WLCRC_WLCRC_CODEC_HH
