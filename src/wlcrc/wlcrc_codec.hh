/**
 * @file
 * WLCRC: the paper's primary contribution (Section VI) — Word-Level
 * Compression integrated with restricted coset coding.
 *
 * If every 64-bit word of the line has its k MSBs uniform, WLC
 * reclaims k-1 bits per word and each word is independently encoded
 * with restricted cosets: a per-word group bit selects {C1,C2} or
 * {C1,C3} and one bit per data block selects within the group
 * (Algorithm 1). Incompressible lines are written unencoded. A single
 * dedicated flag cell per line distinguishes the two formats, so the
 * total space overhead is one cell in 257 (< 0.4 %).
 *
 * Granularities: 16 (default, WLCRC-16), 32, 8, and 64 — the latter
 * degenerating to unrestricted 3cosets per word, as noted in the
 * paper.
 *
 * The optional multi-objective mode (Section VIII-D) trades energy
 * for endurance: when two choices' energies are within a threshold T
 * of each other, the one updating fewer cells wins.
 *
 * The optional *disturbance-aware* mode implements the paper's
 * stated future work ("extend the WLCRC encoding to be
 * write-disturbance aware"): candidate selection adds a per-state
 * penalty proportional to that state's disturbance error rate, so
 * the encoder steers idle-prone cells toward the immune state S2
 * and away from S3 (DER 27.6 %). The penalty shapes selection only;
 * reported write energy is always the physical energy.
 */

#ifndef WLCRC_WLCRC_WLCRC_CODEC_HH
#define WLCRC_WLCRC_WLCRC_CODEC_HH

#include <array>

#include "coset/codec.hh"
#include "pcm/disturbance.hh"
#include "coset/mapping.hh"
#include "wlcrc/word_layout.hh"

namespace wlcrc::core
{

/** WLC + restricted coset coding. */
class WlcrcCodec : public coset::LineCodec
{
  public:
    /**
     * @param energy            write-energy model.
     * @param granularity_bits  8, 16, 32 or 64.
     * @param endurance_threshold  multi-objective threshold T as a
     *        fraction (e.g. 0.01 for the paper's T = 1 %); 0 disables
     *        the endurance-aware tie-break.
     */
    WlcrcCodec(const pcm::EnergyModel &energy,
               unsigned granularity_bits = 16,
               double endurance_threshold = 0.0,
               const std::array<double, pcm::numStates>
                   &state_penalty_pj = {});

    /**
     * Disturbance-aware variant: per-state selection penalty
     * lambda * DER(state), from the paper's future-work direction.
     *
     * @param lambda_pj  weight converting an error rate into an
     *                   equivalent energy penalty (the expected VnR
     *                   repair cost per exposure; ~400 pJ covers two
     *                   neighbour exposures at mean program energy).
     */
    static WlcrcCodec disturbanceAware(
        const pcm::EnergyModel &energy,
        const pcm::DisturbanceModel &disturb,
        unsigned granularity_bits = 16, double lambda_pj = 400.0);

    std::string name() const override;
    /** 256 data cells + 1 compressed/raw flag cell. */
    unsigned cellCount() const override { return lineSymbols + 1; }

    void encodeInto(const Line512 &data,
                    std::span<const pcm::State> stored,
                    coset::EncodeScratch &scratch,
                    pcm::TargetLine &target) const override;

    Line512 decode(
        const std::vector<pcm::State> &stored) const override;

    unsigned granularityBits() const { return granularity_; }

    /** WLC parameter: number of uniform MSBs required per word. */
    unsigned compressionK() const;

    /** True iff @p data would be stored in compressed+encoded form. */
    bool compressible(const Line512 &data) const;

  private:
    /** Upper bound on restricted blocks per 64-bit word (g = 8). */
    static constexpr unsigned maxBlocksPerWord = 8;

    /**
     * Encode one compressible word (restricted cosets, g<=32).
     * @tparam Mo  multi-objective mode: track updated-cell counts
     *         for the endurance tie-break. The default (Mo = false,
     *         threshold 0) never consults them, so that path
     *         accumulates energies only — selections are identical.
     */
    template <bool Mo>
    void encodeWordRestricted(unsigned w, uint64_t word,
                              const pcm::State *stored,
                              pcm::TargetLine &target) const;
    /** Encode one compressible word (3cosets, g=64). */
    template <bool Mo>
    void encodeWord64(unsigned w, uint64_t word,
                      const pcm::State *stored,
                      pcm::TargetLine &target) const;

    uint64_t decodeWordRestricted(
        unsigned w, const std::vector<pcm::State> &stored) const;
    uint64_t decodeWord64(
        unsigned w, const std::vector<pcm::State> &stored) const;

    /**
     * Selection-cost row of a cell storing @p old_state:
     * row[stateIndex(t)] = 0 if t == old_state, else
     * writeEnergy + state penalty. Cached per codec; recomputed
     * per fetch under the scalar test hook.
     */
    const double *
    selectRow(pcm::State old_state) const
    {
        if (scalarScoringForTest()) [[unlikely]]
            return scalarSelectRow(old_state);
        return selectTable_[pcm::stateIndex(old_state)].data();
    }

    const double *scalarSelectRow(pcm::State old_state) const;

    /** Selection-time cost of programming @p target over @p old. */
    double
    selectCost(pcm::State old_state, pcm::State target) const
    {
        return selectRow(old_state)[pcm::stateIndex(target)];
    }

    unsigned granularity_;
    double threshold_;
    std::array<double, pcm::numStates> penalty_{};
    /** Cached restricted word layout (nullptr for g = 64). */
    const WordLayout *layout_ = nullptr;
    std::array<std::array<double, pcm::numStates>, pcm::numStates>
        selectTable_{};

    /**
     * Per-(stored state, symbol) select-cost contribution of one
     * cell to candidates C1/C2/C3, padded to four lanes so the
     * per-block scan is one vector add per cell. triU_ is the
     * matching updated-cell contribution.
     */
    std::array<std::array<std::array<double, 4>, 4>, pcm::numStates>
        triE_{};
    std::array<std::array<std::array<uint8_t, 4>, 4>,
               pcm::numStates>
        triU_{};

    /** Aux-only cell of the restricted layout, with the selector
     *  bits it hosts resolved at construction (-1 = the group bit,
     *  -2 = unused, else block index). */
    struct AuxCellPlan
    {
        uint8_t cell;
        int8_t hi;
        int8_t lo;
    };
    std::array<AuxCellPlan, 4> auxPlan_{};
    unsigned numAux_ = 0;

    /** Mapping of each aux-only cell (group-bit cell vs selector
     *  pair cell), resolved at construction so the per-word loops
     *  skip the function-local-static guards. */
    std::array<const coset::Mapping *, 4> auxMap_{};

    /** tableICandidate(1..3), cached for the per-word loops. */
    std::array<const coset::Mapping *, 3> candMaps_{};

    /** candMaps_[m]->stateTable(), cached so the per-word assembly
     *  picks each block's LUT with one indexed load. */
    std::array<const uint8_t *, 3> candTables_{};

    /** Restricted-layout fields flattened out of WordLayout so the
     *  per-word hot loop avoids the pointer chases (vector size
     *  division, blockBitPos indexing) on every word. */
    unsigned numBlocks_ = 0;
    unsigned groupBitPos_ = 0;
    unsigned compressionK_ = 0;
    std::array<uint8_t, maxBlocksPerWord> blockBitPos_{};

    /** Block cell ranges flattened to the argument layout of the
     *  fused simd kernels (accumBlocks4 / mapBlocks). */
    std::array<uint8_t, maxBlocksPerWord> blkLoCost_{};
    std::array<uint8_t, maxBlocksPerWord> blkHiCost_{};
    std::array<uint8_t, maxBlocksPerWord> blkLoCell_{};
    std::array<uint8_t, maxBlocksPerWord> blkHiCell_{};

    /** Block whose selector bit shares a data cell with a host
     *  block, in decode order. */
    struct SharedSelPlan
    {
        uint8_t block;
        uint8_t host;
        uint8_t pos;
    };
    std::array<SharedSelPlan, 4> sharedPlan_{};
    unsigned numShared_ = 0;
};

} // namespace wlcrc::core

#endif // WLCRC_WLCRC_WLCRC_CODEC_HH
