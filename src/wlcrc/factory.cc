#include "factory.hh"

#include <stdexcept>

#include "coset/baseline_codec.hh"
#include "coset/din_codec.hh"
#include "coset/flipmin_codec.hh"
#include "coset/fnw_codec.hh"
#include "coset/mapping.hh"
#include "coset/ncosets_codec.hh"
#include "wlcrc/coc_cosets_codec.hh"
#include "wlcrc/wlc_cosets_codec.hh"
#include "pcm/disturbance.hh"
#include "wlcrc/wlcrc_codec.hh"

namespace wlcrc::core
{

coset::CodecPtr
makeCodec(const std::string &name, const pcm::EnergyModel &energy)
{
    using coset::sixCosetCandidates;
    if (name == "Baseline")
        return std::make_unique<coset::BaselineCodec>(energy);
    if (name == "FlipMin")
        return std::make_unique<coset::FlipMinCodec>(energy);
    if (name == "FNW")
        return std::make_unique<coset::FnwCodec>(energy);
    if (name == "DIN")
        return std::make_unique<coset::DinCodec>(energy);
    if (name == "6cosets") {
        // Whole-line granularity: two aux cells per 512-bit line.
        return std::make_unique<coset::NCosetsCodec>(
            energy, sixCosetCandidates(), lineBits);
    }
    if (name == "COC+4cosets")
        return std::make_unique<CocCosetsCodec>(energy);
    if (name == "WLC+4cosets")
        return std::make_unique<WlcCosetsCodec>(energy, 4, 32);
    if (name == "WLC+3cosets")
        return std::make_unique<WlcCosetsCodec>(energy, 3, 32);
    if (name == "WLCRC-8")
        return std::make_unique<WlcrcCodec>(energy, 8);
    if (name == "WLCRC-16")
        return std::make_unique<WlcrcCodec>(energy, 16);
    if (name == "WLCRC-32")
        return std::make_unique<WlcrcCodec>(energy, 32);
    if (name == "WLCRC-64")
        return std::make_unique<WlcrcCodec>(energy, 64);
    if (name == "WLCRC-16-mo")
        return std::make_unique<WlcrcCodec>(energy, 16, 0.01);
    if (name == "WLCRC-16-da") {
        return std::make_unique<WlcrcCodec>(
            WlcrcCodec::disturbanceAware(energy,
                                         pcm::DisturbanceModel(),
                                         16));
    }
    throw std::invalid_argument("makeCodec: unknown scheme " + name);
}

std::vector<std::string>
figure8Schemes()
{
    return {"Baseline",    "FlipMin",     "FNW",
            "DIN",         "6cosets",     "COC+4cosets",
            "WLC+4cosets", "WLCRC-16"};
}

} // namespace wlcrc::core
