#include "wlcrc_codec.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "compress/wlc.hh"
#include "coset/aux_coding.hh"

namespace wlcrc::core
{

using coset::Mapping;
using coset::tableICandidate;
using pcm::State;

namespace
{

/** Energy and endurance cost of one choice. */
struct Cost
{
    double energy = 0.0;
    unsigned updated = 0;

    Cost &
    operator+=(const Cost &o)
    {
        energy += o.energy;
        updated += o.updated;
        return *this;
    }
};

/**
 * Symbol->state mappings for the aux-only cells, ordered by the
 * expected frequency of selector-bit patterns so the common ones
 * land on low-energy states (the Section IX-A allocation principle,
 * extended to both bits of a shared aux cell).
 *
 * A cell holding (group bit, block bit): all-C1 words give (0,0);
 * biased words that switch wholesale to C2 give (0,1); group-1
 * (random-leaning) words are rarer and already expensive.
 */
const Mapping &
auxGroupMapping()
{
    static const Mapping m({State::S1, State::S2, State::S3,
                            State::S4},
                           "AuxG");
    return m;
}

/** A cell holding two block-selector bits: (0,0) and (1,1) dominate
 *  (runs of data switch candidates together). */
const Mapping &
auxPairMapping()
{
    static const Mapping m({State::S1, State::S3, State::S4,
                            State::S2},
                           "AuxP");
    return m;
}

/**
 * Multi-objective comparison: prefer lower energy, unless the two
 * energies are within fraction @p threshold of the larger, in which
 * case prefer fewer updated cells (Section VIII-D).
 */
bool
better(const Cost &a, const Cost &b, double threshold)
{
    if (threshold > 0.0) {
        const double larger = std::max(a.energy, b.energy);
        if (larger > 0.0 &&
            std::abs(a.energy - b.energy) <= threshold * larger) {
            if (a.updated != b.updated)
                return a.updated < b.updated;
        }
    }
    return a.energy < b.energy;
}

} // namespace

WlcrcCodec::WlcrcCodec(
    const pcm::EnergyModel &energy, unsigned granularity_bits,
    double endurance_threshold,
    const std::array<double, pcm::numStates> &state_penalty_pj)
    : LineCodec(energy), granularity_(granularity_bits),
      threshold_(endurance_threshold), penalty_(state_penalty_pj)
{
    if (granularity_ != 8 && granularity_ != 16 &&
        granularity_ != 32 && granularity_ != 64) {
        throw std::invalid_argument(
            "WlcrcCodec: granularity must be 8/16/32/64");
    }
}

WlcrcCodec
WlcrcCodec::disturbanceAware(const pcm::EnergyModel &energy,
                             const pcm::DisturbanceModel &disturb,
                             unsigned granularity_bits,
                             double lambda_pj)
{
    std::array<double, pcm::numStates> penalty{};
    for (unsigned s = 0; s < pcm::numStates; ++s) {
        penalty[s] =
            lambda_pj * disturb.der(pcm::stateFromIndex(s));
    }
    return WlcrcCodec(energy, granularity_bits, 0.0, penalty);
}

std::string
WlcrcCodec::name() const
{
    std::string n = "WLCRC-" + std::to_string(granularity_);
    if (threshold_ > 0.0)
        n += "-mo";
    for (const double p : penalty_) {
        if (p > 0.0) {
            n += "-da";
            break;
        }
    }
    return n;
}

unsigned
WlcrcCodec::compressionK() const
{
    // g = 64 degenerates to unrestricted 3cosets: 2 reclaimed bits.
    return granularity_ == 64 ? 3
                              : WordLayout::restricted(granularity_)
                                        .reclaimed +
                                    1;
}

bool
WlcrcCodec::compressible(const Line512 &data) const
{
    return compress::Wlc::lineCompressible(data, compressionK());
}

void
WlcrcCodec::encodeWordRestricted(unsigned w, uint64_t word,
                                 const std::vector<State> &stored,
                                 pcm::TargetLine &target) const
{
    const WordLayout &layout = WordLayout::restricted(granularity_);
    const unsigned cell0 = w * 32;
    const unsigned nblocks = layout.blocks.size();
    const Mapping *maps[3] = {&tableICandidate(1), &tableICandidate(2),
                              &tableICandidate(3)};

    // Per-block cost of each candidate over the fully-known cells
    // (Algorithm 1 line 4, evaluated in parallel in hardware).
    std::vector<std::array<Cost, 3>> cost(nblocks);
    for (unsigned b = 0; b < nblocks; ++b) {
        const BlockLayout &blk = layout.blocks[b];
        for (unsigned c = blk.loCostCell; c <= blk.hiCostCell; ++c) {
            const unsigned sym =
                static_cast<unsigned>((word >> (c * 2)) & 3);
            for (unsigned m = 0; m < 3; ++m) {
                const State t = maps[m]->encode(sym);
                cost[b][m].energy +=
                    selectCost(stored[cell0 + c], t);
                if (t != stored[cell0 + c])
                    ++cost[b][m].updated;
            }
        }
    }

    // Selector-bit holder for each block: the aux-only cell (or the
    // data cell it shares with a block) whose rewrite cost the
    // choice of that selector bit controls. Writing an auxiliary
    // cell is a real differential write, so the selection must
    // charge for it — exactly as the unrestricted codecs do.
    auto aux_map = [&](unsigned cell) -> const Mapping & {
        return cell == layout.groupBitPos / 2 ? auxGroupMapping()
                                              : auxPairMapping();
    };
    auto aux_cell_cost = [&](unsigned cell,
                             unsigned sym) -> Cost {
        const State t = aux_map(cell).encode(sym);
        Cost k;
        k.energy = selectCost(stored[cell0 + cell], t);
        k.updated = t != stored[cell0 + cell] ? 1 : 0;
        return k;
    };

    // Evaluate both groups; within each, decide every selector bit
    // together with the aux cell it lands in.
    Cost group_cost[2];
    std::vector<uint8_t> pick[2];
    for (unsigned g = 0; g < 2; ++g) {
        pick[g].assign(nblocks, 0);
        const unsigned alt = g + 1; // candidate index into maps[]
        Cost total;

        // Pass 1: blocks whose selector bit sits in an aux-only
        // cell. Bits sharing one cell are decided jointly (their
        // states are coupled through the 2-bit symbol).
        for (unsigned cell : layout.auxOnlyCells) {
            const unsigned hi_bit = cell * 2 + 1;
            const unsigned lo_bit = cell * 2;
            // Identify what each bit of this cell is.
            auto bit_owner = [&](unsigned pos) -> int {
                if (pos == layout.groupBitPos)
                    return -1; // the group bit, fixed to g
                for (unsigned b = 0; b < nblocks; ++b)
                    if (layout.blockBitPos[b] == pos)
                        return static_cast<int>(b);
                return -2; // unused (never happens for 8/16/32)
            };
            const int hi = bit_owner(hi_bit);
            const int lo = bit_owner(lo_bit);
            Cost best;
            unsigned best_hi = 0, best_lo = 0;
            bool first = true;
            for (unsigned x = 0; x < (hi >= 0 ? 2u : 1u); ++x) {
                for (unsigned y = 0; y < (lo >= 0 ? 2u : 1u); ++y) {
                    const unsigned hb = hi == -1 ? g : x;
                    const unsigned lb = lo == -1 ? g : y;
                    Cost cand =
                        aux_cell_cost(cell, (hb << 1) | lb);
                    if (hi >= 0)
                        cand += cost[hi][x ? alt : 0];
                    if (lo >= 0)
                        cand += cost[lo][y ? alt : 0];
                    if (first || better(cand, best, threshold_)) {
                        best = cand;
                        best_hi = x;
                        best_lo = y;
                        first = false;
                    }
                }
            }
            if (hi >= 0)
                pick[g][hi] = static_cast<uint8_t>(best_hi);
            if (lo >= 0)
                pick[g][lo] = static_cast<uint8_t>(best_lo);
            total += best;
        }

        // Pass 2: blocks whose selector bit shares a data cell with
        // another block (decode order guarantees the host block is
        // already decided). The shared cell is mapped by the host
        // block's candidate.
        for (unsigned b : layout.decodeOrder) {
            const unsigned pos = layout.blockBitPos[b];
            const unsigned cell = pos / 2;
            bool in_aux = false;
            for (unsigned a : layout.auxOnlyCells)
                in_aux |= a == cell;
            if (in_aux)
                continue;
            // Find the host block owning this cell.
            bool found_host = false;
            unsigned host_idx = 0;
            for (unsigned hb = 0; hb < nblocks; ++hb) {
                if (cell >= layout.blocks[hb].loCell &&
                    cell <= layout.blocks[hb].hiCell && hb != b) {
                    found_host = true;
                    host_idx = hb;
                    break;
                }
            }
            assert(found_host && pos % 2 == 1 &&
                   "selector must be the high bit of a data cell");
            (void)found_host;
            const Mapping &host_map =
                pick[g][host_idx] ? *maps[alt] : *maps[0];
            const unsigned data_bit = static_cast<unsigned>(
                (word >> (pos - 1)) & 1);
            Cost best;
            unsigned best_x = 0;
            for (unsigned x = 0; x < 2; ++x) {
                const State t = host_map.encode((x << 1) | data_bit);
                Cost cand;
                cand.energy = selectCost(stored[cell0 + cell], t);
                cand.updated =
                    t != stored[cell0 + cell] ? 1 : 0;
                cand += cost[b][x ? alt : 0];
                if (x == 0 || better(cand, best, threshold_)) {
                    best = cand;
                    best_x = x;
                }
            }
            pick[g][b] = static_cast<uint8_t>(best_x);
            total += best;
        }
        group_cost[g] = total;
    }

    // Algorithm 1 line 5, with ties resolved toward group 0.
    const unsigned group =
        better(group_cost[1], group_cost[0], threshold_) ? 1 : 0;

    // Assemble the final bit pattern: data bits + aux bits in the
    // reclaimed region.
    uint64_t out = word;
    auto set_bit = [&out](unsigned pos, unsigned v) {
        out = (out & ~(uint64_t{1} << pos)) |
              (uint64_t(v & 1) << pos);
    };
    set_bit(layout.groupBitPos, group);
    for (unsigned b = 0; b < nblocks; ++b)
        set_bit(layout.blockBitPos[b], pick[group][b]);

    // Map block cells with their chosen candidate; aux-only cells
    // with the default mapping (their '0' bits land on S1).
    for (unsigned b = 0; b < nblocks; ++b) {
        const BlockLayout &blk = layout.blocks[b];
        const Mapping &m =
            pick[group][b] ? *maps[group + 1] : *maps[0];
        for (unsigned c = blk.loCell; c <= blk.hiCell; ++c) {
            const unsigned sym =
                static_cast<unsigned>((out >> (c * 2)) & 3);
            target.cells[cell0 + c] = m.encode(sym);
        }
    }
    for (unsigned c : layout.auxOnlyCells) {
        const unsigned sym =
            static_cast<unsigned>((out >> (c * 2)) & 3);
        const Mapping &am = c == layout.groupBitPos / 2
                                ? auxGroupMapping()
                                : auxPairMapping();
        target.cells[cell0 + c] = am.encode(sym);
        target.auxMask[cell0 + c] = true;
    }
}

void
WlcrcCodec::encodeWord64(unsigned w, uint64_t word,
                         const std::vector<State> &stored,
                         pcm::TargetLine &target) const
{
    // WLCRC-64 == unrestricted 3cosets on bits 61..0; the candidate
    // index is held in cell 31 directly as a state (C1->S1 etc.).
    const unsigned cell0 = w * 32;
    const Mapping *maps[3] = {&tableICandidate(1), &tableICandidate(2),
                              &tableICandidate(3)};
    Cost cost[3];
    for (unsigned m = 0; m < 3; ++m) {
        for (unsigned c = 0; c < 31; ++c) {
            const unsigned sym =
                static_cast<unsigned>((word >> (c * 2)) & 3);
            const State t = maps[m]->encode(sym);
            cost[m].energy += selectCost(stored[cell0 + c], t);
            if (t != stored[cell0 + c])
                ++cost[m].updated;
        }
        const State aux = coset::auxIndexState(m);
        cost[m].energy += selectCost(stored[cell0 + 31], aux);
        if (aux != stored[cell0 + 31])
            ++cost[m].updated;
    }
    unsigned best = 0;
    for (unsigned m = 1; m < 3; ++m)
        if (better(cost[m], cost[best], threshold_))
            best = m;

    for (unsigned c = 0; c < 31; ++c) {
        const unsigned sym =
            static_cast<unsigned>((word >> (c * 2)) & 3);
        target.cells[cell0 + c] = maps[best]->encode(sym);
    }
    target.cells[cell0 + 31] = coset::auxIndexState(best);
    target.auxMask[cell0 + 31] = true;
}

pcm::TargetLine
WlcrcCodec::encode(const Line512 &data,
                   const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    pcm::TargetLine target(cellCount());
    target.auxMask[lineSymbols] = true;

    if (!compressible(data)) {
        // Raw format: flag = S2, plain default-mapping write.
        const Mapping &c1 = tableICandidate(1);
        for (unsigned s = 0; s < lineSymbols; ++s)
            target.cells[s] = c1.encode(data.symbol(s));
        target.cells[lineSymbols] = State::S2;
        return target;
    }

    target.cells[lineSymbols] = State::S1; // flag: compressed
    for (unsigned w = 0; w < lineWords; ++w) {
        if (granularity_ == 64)
            encodeWord64(w, data.word(w), stored, target);
        else
            encodeWordRestricted(w, data.word(w), stored, target);
    }
    return target;
}

uint64_t
WlcrcCodec::decodeWordRestricted(
    unsigned w, const std::vector<State> &stored) const
{
    const WordLayout &layout = WordLayout::restricted(granularity_);
    const unsigned cell0 = w * 32;
    const Mapping &c1 = tableICandidate(1);

    uint64_t bits = 0;
    auto set_sym = [&bits](unsigned cell, unsigned sym) {
        bits = (bits & ~(uint64_t{3} << (cell * 2))) |
               (uint64_t(sym & 3) << (cell * 2));
    };
    // Aux-only cells first: they hold the group bit and the selector
    // bits of the independently-decodable blocks (written through
    // the frequency-ordered aux mappings).
    for (unsigned c : layout.auxOnlyCells) {
        const Mapping &am = c == layout.groupBitPos / 2
                                ? auxGroupMapping()
                                : auxPairMapping();
        set_sym(c, am.decode(stored[cell0 + c]));
    }

    const unsigned group =
        static_cast<unsigned>((bits >> layout.groupBitPos) & 1);
    const Mapping &alt = tableICandidate(group ? 3 : 2);

    // Blocks in dependency order: a block whose selector bit lives
    // inside another block's cells is decoded after that block.
    for (unsigned b : layout.decodeOrder) {
        const BlockLayout &blk = layout.blocks[b];
        const unsigned sel = static_cast<unsigned>(
            (bits >> layout.blockBitPos[b]) & 1);
        const Mapping &m = sel ? alt : c1;
        for (unsigned c = blk.loCell; c <= blk.hiCell; ++c)
            set_sym(c, m.decode(stored[cell0 + c]));
    }

    // WLC decompression: extend the sign bit over the reclaimed MSBs.
    return compress::Wlc::signExtendWord(bits, layout.reclaimed);
}

uint64_t
WlcrcCodec::decodeWord64(unsigned w,
                         const std::vector<State> &stored) const
{
    const unsigned cell0 = w * 32;
    const unsigned idx =
        coset::auxIndexFromState(stored[cell0 + 31]);
    const Mapping &m = tableICandidate(idx < 3 ? idx + 1 : 1);
    uint64_t bits = 0;
    for (unsigned c = 0; c < 31; ++c) {
        bits |= uint64_t(m.decode(stored[cell0 + c])) << (c * 2);
    }
    return compress::Wlc::signExtendWord(bits, 2);
}

Line512
WlcrcCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    Line512 data;
    if (stored[lineSymbols] != State::S1) {
        const Mapping &c1 = tableICandidate(1);
        for (unsigned s = 0; s < lineSymbols; ++s)
            data.setSymbol(s, c1.decode(stored[s]));
        return data;
    }
    for (unsigned w = 0; w < lineWords; ++w) {
        data.setWord(w, granularity_ == 64
                            ? decodeWord64(w, stored)
                            : decodeWordRestricted(w, stored));
    }
    return data;
}

} // namespace wlcrc::core
