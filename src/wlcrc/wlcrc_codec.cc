#include "wlcrc_codec.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <type_traits>

#include "common/simd.hh"
#include "compress/wlc.hh"
#include "coset/aux_coding.hh"

namespace wlcrc::core
{

using coset::Mapping;
using coset::tableICandidate;
using pcm::State;

namespace
{

/** Energy and endurance cost of one choice. */
struct Cost
{
    double energy = 0.0;
    unsigned updated = 0;

    Cost &
    operator+=(const Cost &o)
    {
        energy += o.energy;
        updated += o.updated;
        return *this;
    }
};

/**
 * Symbol->state mappings for the aux-only cells, ordered by the
 * expected frequency of selector-bit patterns so the common ones
 * land on low-energy states (the Section IX-A allocation principle,
 * extended to both bits of a shared aux cell).
 *
 * A cell holding (group bit, block bit): all-C1 words give (0,0);
 * biased words that switch wholesale to C2 give (0,1); group-1
 * (random-leaning) words are rarer and already expensive.
 */
const Mapping &
auxGroupMapping()
{
    static const Mapping m({State::S1, State::S2, State::S3,
                            State::S4},
                           "AuxG");
    return m;
}

/** A cell holding two block-selector bits: (0,0) and (1,1) dominate
 *  (runs of data switch candidates together). */
const Mapping &
auxPairMapping()
{
    static const Mapping m({State::S1, State::S3, State::S4,
                            State::S2},
                           "AuxP");
    return m;
}

/**
 * Multi-objective comparison: prefer lower energy, unless the two
 * energies are within fraction @p threshold of the larger, in which
 * case prefer fewer updated cells (Section VIII-D).
 */
bool
better(const Cost &a, const Cost &b, double threshold)
{
    if (threshold > 0.0) {
        const double larger = std::max(a.energy, b.energy);
        if (larger > 0.0 &&
            std::abs(a.energy - b.energy) <= threshold * larger) {
            if (a.updated != b.updated)
                return a.updated < b.updated;
        }
    }
    return a.energy < b.energy;
}

/** Candidate cost type: full Cost under multi-objective mode,
 *  plain energy otherwise (the tie-break never fires at T = 0, so
 *  tracking updated-cell counts would be dead work). */
template <bool Mo>
using CostOf = std::conditional_t<Mo, Cost, double>;

template <bool Mo>
inline CostOf<Mo>
makeCost(double energy, unsigned updated)
{
    if constexpr (Mo) {
        return Cost{energy, updated};
    } else {
        (void)updated;
        return energy;
    }
}

template <bool Mo>
inline bool
betterT(const CostOf<Mo> &a, const CostOf<Mo> &b, double threshold)
{
    if constexpr (Mo)
        return better(a, b, threshold);
    else
        return a < b;
}

} // namespace

WlcrcCodec::WlcrcCodec(
    const pcm::EnergyModel &energy, unsigned granularity_bits,
    double endurance_threshold,
    const std::array<double, pcm::numStates> &state_penalty_pj)
    : LineCodec(energy), granularity_(granularity_bits),
      threshold_(endurance_threshold), penalty_(state_penalty_pj)
{
    if (granularity_ != 8 && granularity_ != 16 &&
        granularity_ != 32 && granularity_ != 64) {
        throw std::invalid_argument(
            "WlcrcCodec: granularity must be 8/16/32/64");
    }
    if (granularity_ != 64)
        layout_ = &WordLayout::restricted(granularity_);
    // g = 64 degenerates to unrestricted 3cosets: 2 reclaimed bits.
    compressionK_ = granularity_ == 64 ? 3 : layout_->reclaimed + 1;
    for (unsigned m = 0; m < 3; ++m) {
        candMaps_[m] = &tableICandidate(m + 1);
        candTables_[m] = candMaps_[m]->stateTable();
    }
    for (unsigned s = 0; s < pcm::numStates; ++s) {
        for (unsigned t = 0; t < pcm::numStates; ++t) {
            selectTable_[s][t] =
                s == t ? 0.0
                       : energy.writeEnergy(pcm::stateFromIndex(s),
                                            pcm::stateFromIndex(t)) +
                             penalty_[t];
        }
    }

    // Per-cell contribution of each (stored, symbol) pair to the
    // three candidate costs; lane 3 stays zero (vector padding).
    for (unsigned s = 0; s < pcm::numStates; ++s) {
        for (unsigned sym = 0; sym < 4; ++sym) {
            for (unsigned m = 0; m < 3; ++m) {
                const pcm::State t =
                    tableICandidate(m + 1).encode(sym);
                triE_[s][sym][m] =
                    selectTable_[s][pcm::stateIndex(t)];
                triU_[s][sym][m] =
                    t != pcm::stateFromIndex(s) ? 1 : 0;
            }
        }
    }

    if (layout_) {
        // Flatten the layout's selector-bit ownership searches into
        // plans so the per-word loops run over plain arrays.
        const WordLayout &l = *layout_;
        const unsigned nblocks =
            static_cast<unsigned>(l.blocks.size());
        auto owner = [&](unsigned pos) -> int8_t {
            if (pos == l.groupBitPos)
                return -1; // the group bit
            for (unsigned b = 0; b < nblocks; ++b)
                if (l.blockBitPos[b] == pos)
                    return static_cast<int8_t>(b);
            return -2; // unused (never happens for 8/16/32)
        };
        numAux_ = static_cast<unsigned>(l.auxOnlyCells.size());
        assert(numAux_ <= auxPlan_.size());
        for (unsigned i = 0; i < numAux_; ++i) {
            const unsigned cell = l.auxOnlyCells[i];
            auxPlan_[i] = {static_cast<uint8_t>(cell),
                           owner(cell * 2 + 1), owner(cell * 2)};
            auxMap_[i] = cell == l.groupBitPos / 2
                             ? &auxGroupMapping()
                             : &auxPairMapping();
        }
        numBlocks_ = nblocks;
        groupBitPos_ = l.groupBitPos;
        for (unsigned b = 0; b < nblocks; ++b) {
            blockBitPos_[b] =
                static_cast<uint8_t>(l.blockBitPos[b]);
            blkLoCost_[b] =
                static_cast<uint8_t>(l.blocks[b].loCostCell);
            blkHiCost_[b] =
                static_cast<uint8_t>(l.blocks[b].hiCostCell);
            blkLoCell_[b] = static_cast<uint8_t>(l.blocks[b].loCell);
            blkHiCell_[b] = static_cast<uint8_t>(l.blocks[b].hiCell);
        }
        for (const unsigned b : l.decodeOrder) {
            const unsigned pos = l.blockBitPos[b];
            const unsigned cell = pos / 2;
            bool in_aux = false;
            for (const unsigned a : l.auxOnlyCells)
                in_aux |= a == cell;
            if (in_aux)
                continue;
            bool found_host = false;
            unsigned host = 0;
            for (unsigned hb = 0; hb < nblocks; ++hb) {
                if (cell >= l.blocks[hb].loCell &&
                    cell <= l.blocks[hb].hiCell && hb != b) {
                    found_host = true;
                    host = hb;
                    break;
                }
            }
            assert(found_host && pos % 2 == 1 &&
                   "selector must be the high bit of a data cell");
            (void)found_host;
            assert(numShared_ < sharedPlan_.size());
            sharedPlan_[numShared_++] = {static_cast<uint8_t>(b),
                                         static_cast<uint8_t>(host),
                                         static_cast<uint8_t>(pos)};
        }
    }
}

const double *
WlcrcCodec::scalarSelectRow(State old_state) const
{
    // Scalar test hook: recompute from the EnergyModel per fetch.
    thread_local std::array<std::array<double, pcm::numStates>, 4>
        ring;
    thread_local unsigned slot = 0;
    auto &row = ring[slot];
    slot = (slot + 1) % ring.size();
    for (unsigned t = 0; t < pcm::numStates; ++t) {
        const State ts = pcm::stateFromIndex(t);
        row[t] = old_state == ts
                     ? 0.0
                     : energyModel().writeEnergy(old_state, ts) +
                           penalty_[t];
    }
    return row.data();
}

WlcrcCodec
WlcrcCodec::disturbanceAware(const pcm::EnergyModel &energy,
                             const pcm::DisturbanceModel &disturb,
                             unsigned granularity_bits,
                             double lambda_pj)
{
    std::array<double, pcm::numStates> penalty{};
    for (unsigned s = 0; s < pcm::numStates; ++s) {
        penalty[s] =
            lambda_pj * disturb.der(pcm::stateFromIndex(s));
    }
    return WlcrcCodec(energy, granularity_bits, 0.0, penalty);
}

std::string
WlcrcCodec::name() const
{
    std::string n = "WLCRC-" + std::to_string(granularity_);
    if (threshold_ > 0.0)
        n += "-mo";
    for (const double p : penalty_) {
        if (p > 0.0) {
            n += "-da";
            break;
        }
    }
    return n;
}

unsigned
WlcrcCodec::compressionK() const
{
    return compressionK_;
}

bool
WlcrcCodec::compressible(const Line512 &data) const
{
    return compress::Wlc::lineCompressible(data, compressionK());
}

template <bool Mo>
void
WlcrcCodec::encodeWordRestricted(unsigned w, uint64_t word,
                                 const State *stored,
                                 pcm::TargetLine &target) const
{
    using CostT = CostOf<Mo>;
    const WordLayout &layout = *layout_;
    const unsigned cell0 = w * 32;
    const unsigned nblocks = numBlocks_;
    const simd::Ops &k = simd::ops();
    assert(nblocks <= maxBlocksPerWord);

    // Per-block cost of each candidate over the fully-known cells
    // (Algorithm 1 line 4, evaluated in parallel in hardware). The
    // fast path scores every block of the word with one fused
    // accumBlocks4 call over the precomputed (stored, symbol)
    // contribution rows — per block, the same doubles in the same
    // cell order as the scalar-hook path below, so selections are
    // identical. costE holds the sums at the kernel's stride of 4
    // (lane 3 is padding); the multi-objective mode keeps its own
    // energy+updates accumulation.
    alignas(32) std::array<double, maxBlocksPerWord * 4> costE;
    // Zero-initialised only in multi-objective mode: the energy-only
    // path never reads it, and a real per-word array here would cost
    // 24 dead stores plus 192 stack bytes on the hot path.
    [[maybe_unused]] std::conditional_t<
        Mo, std::array<std::array<CostT, 3>, maxBlocksPerWord>, char>
        costMo{};
    if constexpr (!Mo) {
        std::fill_n(costE.data(), std::size_t{nblocks} * 4, 0.0);
        if (!scalarScoringForTest()) [[likely]] {
            k.accumBlocks4(
                triE_[0][0].data(),
                reinterpret_cast<const uint8_t *>(stored) + cell0,
                word, blkLoCost_.data(), blkHiCost_.data(), nblocks,
                costE.data());
        } else {
            for (unsigned b = 0; b < nblocks; ++b) {
                const BlockLayout &blk = layout.blocks[b];
                for (unsigned c = blk.loCostCell;
                     c <= blk.hiCostCell; ++c) {
                    const unsigned sym = static_cast<unsigned>(
                        (word >> (c * 2)) & 3);
                    const State old_state = stored[cell0 + c];
                    const double *row = selectRow(old_state);
                    for (unsigned m = 0; m < 3; ++m) {
                        const State t = candMaps_[m]->encode(sym);
                        costE[b * 4 + m] += row[pcm::stateIndex(t)];
                    }
                }
            }
        }
    } else if (!scalarScoringForTest()) [[likely]] {
        for (unsigned b = 0; b < nblocks; ++b) {
            const BlockLayout &blk = layout.blocks[b];
            std::array<double, 4> e{};
            std::array<uint32_t, 4> u{};
            for (unsigned c = blk.loCostCell; c <= blk.hiCostCell;
                 ++c) {
                const unsigned sym = static_cast<unsigned>(
                    (word >> (c * 2)) & 3);
                const unsigned s =
                    pcm::stateIndex(stored[cell0 + c]);
                const double *ce = triE_[s][sym].data();
                for (unsigned m = 0; m < 4; ++m)
                    e[m] += ce[m];
                const uint8_t *cu = triU_[s][sym].data();
                for (unsigned m = 0; m < 4; ++m)
                    u[m] += cu[m];
            }
            for (unsigned m = 0; m < 3; ++m)
                costMo[b][m] = makeCost<Mo>(e[m], u[m]);
        }
    } else {
        for (unsigned b = 0; b < nblocks; ++b) {
            const BlockLayout &blk = layout.blocks[b];
            for (unsigned c = blk.loCostCell; c <= blk.hiCostCell;
                 ++c) {
                const unsigned sym =
                    static_cast<unsigned>((word >> (c * 2)) & 3);
                const State old_state = stored[cell0 + c];
                const double *row = selectRow(old_state);
                for (unsigned m = 0; m < 3; ++m) {
                    const State t = candMaps_[m]->encode(sym);
                    costMo[b][m] += makeCost<Mo>(
                        row[pcm::stateIndex(t)],
                        t != old_state ? 1u : 0u);
                }
            }
        }
    }
    // Block-cost accessor over whichever array the mode filled.
    const auto costAt = [&](unsigned b, unsigned m) -> CostT {
        if constexpr (Mo)
            return costMo[b][m];
        else
            return costE[b * 4 + m];
    };

    // Evaluate both groups; within each, decide every selector bit
    // together with the aux cell it lands in. Selector-bit hosting
    // (which aux cell / shared data cell holds which bit) was
    // resolved into auxPlan_/sharedPlan_ at construction. Best-so-
    // far tracking uses conditional moves (the take ternaries): the
    // winning combo is data-dependent, and a mispredicted branch
    // per combo costs more than the ternary ever does.
    CostT group_cost[2] = {};
    std::array<std::array<uint8_t, maxBlocksPerWord>, 2> pick{};
    for (unsigned g = 0; g < 2; ++g) {
        const unsigned alt = g + 1; // candidate index into candMaps_
        CostT total{};

        // Pass 1: blocks whose selector bit sits in an aux-only
        // cell. Bits sharing one cell are decided jointly (their
        // states are coupled through the 2-bit symbol). Writing an
        // auxiliary cell is a real differential write, so the
        // selection charges for it — exactly as the unrestricted
        // codecs do.
        for (unsigned a = 0; a < numAux_; ++a) {
            const AuxCellPlan &ap = auxPlan_[a];
            const Mapping &am = *auxMap_[a];
            const State old_state = stored[cell0 + ap.cell];
            const double *arow = selectRow(old_state);
            const int hi = ap.hi;
            const int lo = ap.lo;
            if constexpr (!Mo) {
                // Straight-line unrolls of the generic loop below:
                // same (x, y) evaluation order, same strict-< first-
                // wins ties, same left-to-right additions — the
                // picks are identical, minus the per-combo branches
                // (betterT<false> is a plain compare, so std::min
                // and comparison-keyed selects stay branchless).
                const uint8_t *atab = am.stateTable();
                const unsigned hb_fix = hi == -1 ? g : 0;
                const unsigned lb_fix = lo == -1 ? g : 0;
                if (hi >= 0 && lo >= 0) {
                    const unsigned hu = static_cast<unsigned>(hi);
                    const unsigned lu = static_cast<unsigned>(lo);
                    const double chi0 = costE[4 * hu];
                    const double chiA = costE[4 * hu + alt];
                    const double clo0 = costE[4 * lu];
                    const double cloA = costE[4 * lu + alt];
                    const double c00 = arow[atab[0]] + chi0 + clo0;
                    const double c01 = arow[atab[1]] + chi0 + cloA;
                    const double c10 = arow[atab[2]] + chiA + clo0;
                    const double c11 = arow[atab[3]] + chiA + cloA;
                    double bv = c00;
                    unsigned bi = 0;
                    bi = c01 < bv ? 1 : bi;
                    bv = std::min(c01, bv);
                    bi = c10 < bv ? 2 : bi;
                    bv = std::min(c10, bv);
                    bi = c11 < bv ? 3 : bi;
                    bv = std::min(c11, bv);
                    pick[g][hu] = static_cast<uint8_t>(bi >> 1);
                    pick[g][lu] = static_cast<uint8_t>(bi & 1);
                    total += bv;
                } else if (hi >= 0 || lo >= 0) {
                    const unsigned bu = static_cast<unsigned>(
                        hi >= 0 ? hi : lo);
                    const unsigned s0 = hi >= 0 ? lb_fix
                                                : (hb_fix << 1);
                    const unsigned s1 =
                        hi >= 0 ? (1u << 1) | lb_fix
                                : (hb_fix << 1) | 1u;
                    const double c0 =
                        arow[atab[s0]] + costE[4 * bu];
                    const double c1 =
                        arow[atab[s1]] + costE[4 * bu + alt];
                    const bool t1 = c1 < c0;
                    pick[g][bu] = static_cast<uint8_t>(t1);
                    total += std::min(c1, c0);
                } else {
                    total += arow[atab[(hb_fix << 1) | lb_fix]];
                }
                continue;
            }
            CostT best{};
            unsigned best_hi = 0, best_lo = 0;
            bool first = true;
            for (unsigned x = 0; x < (hi >= 0 ? 2u : 1u); ++x) {
                for (unsigned y = 0; y < (lo >= 0 ? 2u : 1u); ++y) {
                    const unsigned hb = hi == -1 ? g : x;
                    const unsigned lb = lo == -1 ? g : y;
                    const State t = am.encode((hb << 1) | lb);
                    CostT cand =
                        makeCost<Mo>(arow[pcm::stateIndex(t)],
                                     t != old_state ? 1u : 0u);
                    if (hi >= 0)
                        cand += costAt(static_cast<unsigned>(hi),
                                       x ? alt : 0);
                    if (lo >= 0)
                        cand += costAt(static_cast<unsigned>(lo),
                                       y ? alt : 0);
                    const bool take =
                        first ||
                        betterT<Mo>(cand, best, threshold_);
                    best = take ? cand : best;
                    best_hi = take ? x : best_hi;
                    best_lo = take ? y : best_lo;
                    first = false;
                }
            }
            if (hi >= 0)
                pick[g][hi] = static_cast<uint8_t>(best_hi);
            if (lo >= 0)
                pick[g][lo] = static_cast<uint8_t>(best_lo);
            total += best;
        }

        // Pass 2: blocks whose selector bit shares a data cell with
        // another block (decode order guarantees the host block is
        // already decided). The shared cell is mapped by the host
        // block's candidate.
        for (unsigned sp = 0; sp < numShared_; ++sp) {
            const SharedSelPlan &plan = sharedPlan_[sp];
            const unsigned cell = plan.pos / 2;
            const Mapping &host_map =
                pick[g][plan.host] ? *candMaps_[alt] : *candMaps_[0];
            const unsigned data_bit = static_cast<unsigned>(
                (word >> (plan.pos - 1)) & 1);
            const State old_state = stored[cell0 + cell];
            const double *srow = selectRow(old_state);
            CostT best{};
            unsigned best_x = 0;
            for (unsigned x = 0; x < 2; ++x) {
                const State t = host_map.encode((x << 1) | data_bit);
                CostT cand =
                    makeCost<Mo>(srow[pcm::stateIndex(t)],
                                 t != old_state ? 1u : 0u);
                cand += costAt(plan.block, x ? alt : 0);
                const bool take =
                    x == 0 || betterT<Mo>(cand, best, threshold_);
                best = take ? cand : best;
                best_x = take ? x : best_x;
            }
            pick[g][plan.block] = static_cast<uint8_t>(best_x);
            total += best;
        }
        group_cost[g] = total;
    }

    // Algorithm 1 line 5, with ties resolved toward group 0.
    const unsigned group =
        betterT<Mo>(group_cost[1], group_cost[0], threshold_) ? 1
                                                              : 0;

    // Assemble the final bit pattern: data bits + aux bits in the
    // reclaimed region.
    uint64_t out = word;
    auto set_bit = [&out](unsigned pos, unsigned v) {
        out = (out & ~(uint64_t{1} << pos)) |
              (uint64_t(v & 1) << pos);
    };
    set_bit(groupBitPos_, group);
    for (unsigned b = 0; b < nblocks; ++b)
        set_bit(blockBitPos_[b], pick[group][b]);

    // Map block cells with their chosen candidate (one fused kernel
    // call for the whole word); aux-only cells with the default
    // mapping (their '0' bits land on S1).
    uint8_t *tgt =
        reinterpret_cast<uint8_t *>(target.states()) + cell0;
    const uint8_t *tables[maxBlocksPerWord];
    for (unsigned b = 0; b < nblocks; ++b)
        tables[b] = candTables_[pick[group][b] ? group + 1 : 0];
    k.mapBlocks(out, tables, blkLoCell_.data(), blkHiCell_.data(),
                nblocks, tgt);
    for (unsigned a = 0; a < numAux_; ++a) {
        const unsigned c = auxPlan_[a].cell;
        const unsigned sym =
            static_cast<unsigned>((out >> (c * 2)) & 3);
        target[cell0 + c] = auxMap_[a]->encode(sym);
        target.markAux(cell0 + c);
    }
}

template <bool Mo>
void
WlcrcCodec::encodeWord64(unsigned w, uint64_t word,
                         const State *stored,
                         pcm::TargetLine &target) const
{
    using CostT = CostOf<Mo>;
    // WLCRC-64 == unrestricted 3cosets on bits 61..0; the candidate
    // index is held in cell 31 directly as a state (C1->S1 etc.).
    const unsigned cell0 = w * 32;
    const Mapping *maps[3] = {&tableICandidate(1), &tableICandidate(2),
                              &tableICandidate(3)};
    CostT cost[3] = {};
    if (!scalarScoringForTest()) [[likely]] {
        std::array<double, 4> e{};
        std::array<uint32_t, 4> u{};
        if constexpr (!Mo) {
            simd::ops().accumRows4(
                triE_[0][0].data(),
                reinterpret_cast<const uint8_t *>(stored) + cell0,
                word, 0, 30, e.data());
        } else {
            for (unsigned c = 0; c < 31; ++c) {
                const unsigned sym =
                    static_cast<unsigned>((word >> (c * 2)) & 3);
                const unsigned s =
                    pcm::stateIndex(stored[cell0 + c]);
                const double *ce = triE_[s][sym].data();
                for (unsigned m = 0; m < 4; ++m)
                    e[m] += ce[m];
                const uint8_t *cu = triU_[s][sym].data();
                for (unsigned m = 0; m < 4; ++m)
                    u[m] += cu[m];
            }
        }
        for (unsigned m = 0; m < 3; ++m)
            cost[m] = makeCost<Mo>(e[m], u[m]);
    } else {
        for (unsigned c = 0; c < 31; ++c) {
            const unsigned sym =
                static_cast<unsigned>((word >> (c * 2)) & 3);
            const State old_state = stored[cell0 + c];
            const double *row = selectRow(old_state);
            for (unsigned m = 0; m < 3; ++m) {
                const State t = maps[m]->encode(sym);
                cost[m] += makeCost<Mo>(row[pcm::stateIndex(t)],
                                        t != old_state ? 1u : 0u);
            }
        }
    }
    for (unsigned m = 0; m < 3; ++m) {
        const State aux = coset::auxIndexState(m);
        cost[m] += makeCost<Mo>(selectCost(stored[cell0 + 31], aux),
                                aux != stored[cell0 + 31] ? 1u : 0u);
    }
    unsigned best = 0;
    for (unsigned m = 1; m < 3; ++m)
        if (betterT<Mo>(cost[m], cost[best], threshold_))
            best = m;

    simd::ops().mapSymbols(
        word, maps[best]->stateTable(), 0, 30,
        reinterpret_cast<uint8_t *>(target.states()) + cell0);
    target[cell0 + 31] = coset::auxIndexState(best);
    target.markAux(cell0 + 31);
}

void
WlcrcCodec::encodeInto(const Line512 &data,
                       std::span<const State> stored,
                       coset::EncodeScratch &scratch,
                       pcm::TargetLine &target) const
{
    assert(stored.size() == cellCount());
    (void)scratch;
    target.reset(cellCount());
    target.setAuxStart(lineSymbols); // the flag cell

    if (!compressible(data)) {
        // Raw format: flag = S2, plain default-mapping write.
        const Mapping &c1 = tableICandidate(1);
        uint8_t *tgt = reinterpret_cast<uint8_t *>(target.states());
        const simd::Ops &k = simd::ops();
        for (unsigned w = 0; w < lineWords; ++w)
            k.mapSymbols(data.word(w), c1.stateTable(), 0, 31,
                         tgt + w * 32);
        target[lineSymbols] = State::S2;
        return;
    }

    target[lineSymbols] = State::S1; // flag: compressed
    const State *cells = stored.data();
    if (threshold_ > 0.0) {
        for (unsigned w = 0; w < lineWords; ++w) {
            if (granularity_ == 64)
                encodeWord64<true>(w, data.word(w), cells, target);
            else
                encodeWordRestricted<true>(w, data.word(w), cells,
                                           target);
        }
    } else {
        for (unsigned w = 0; w < lineWords; ++w) {
            if (granularity_ == 64)
                encodeWord64<false>(w, data.word(w), cells, target);
            else
                encodeWordRestricted<false>(w, data.word(w), cells,
                                            target);
        }
    }
}

uint64_t
WlcrcCodec::decodeWordRestricted(
    unsigned w, const std::vector<State> &stored) const
{
    const WordLayout &layout = WordLayout::restricted(granularity_);
    const unsigned cell0 = w * 32;
    const Mapping &c1 = tableICandidate(1);

    uint64_t bits = 0;
    auto set_sym = [&bits](unsigned cell, unsigned sym) {
        bits = (bits & ~(uint64_t{3} << (cell * 2))) |
               (uint64_t(sym & 3) << (cell * 2));
    };
    // Aux-only cells first: they hold the group bit and the selector
    // bits of the independently-decodable blocks (written through
    // the frequency-ordered aux mappings).
    for (unsigned c : layout.auxOnlyCells) {
        const Mapping &am = c == layout.groupBitPos / 2
                                ? auxGroupMapping()
                                : auxPairMapping();
        set_sym(c, am.decode(stored[cell0 + c]));
    }

    const unsigned group =
        static_cast<unsigned>((bits >> layout.groupBitPos) & 1);
    const Mapping &alt = tableICandidate(group ? 3 : 2);

    // Blocks in dependency order: a block whose selector bit lives
    // inside another block's cells is decoded after that block.
    for (unsigned b : layout.decodeOrder) {
        const BlockLayout &blk = layout.blocks[b];
        const unsigned sel = static_cast<unsigned>(
            (bits >> layout.blockBitPos[b]) & 1);
        const Mapping &m = sel ? alt : c1;
        for (unsigned c = blk.loCell; c <= blk.hiCell; ++c)
            set_sym(c, m.decode(stored[cell0 + c]));
    }

    // WLC decompression: extend the sign bit over the reclaimed MSBs.
    return compress::Wlc::signExtendWord(bits, layout.reclaimed);
}

uint64_t
WlcrcCodec::decodeWord64(unsigned w,
                         const std::vector<State> &stored) const
{
    const unsigned cell0 = w * 32;
    const unsigned idx =
        coset::auxIndexFromState(stored[cell0 + 31]);
    const Mapping &m = tableICandidate(idx < 3 ? idx + 1 : 1);
    uint64_t bits = 0;
    for (unsigned c = 0; c < 31; ++c) {
        bits |= uint64_t(m.decode(stored[cell0 + c])) << (c * 2);
    }
    return compress::Wlc::signExtendWord(bits, 2);
}

Line512
WlcrcCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    Line512 data;
    if (stored[lineSymbols] != State::S1) {
        const Mapping &c1 = tableICandidate(1);
        for (unsigned s = 0; s < lineSymbols; ++s)
            data.setSymbol(s, c1.decode(stored[s]));
        return data;
    }
    for (unsigned w = 0; w < lineWords; ++w) {
        data.setWord(w, granularity_ == 64
                            ? decodeWord64(w, stored)
                            : decodeWordRestricted(w, stored));
    }
    return data;
}

} // namespace wlcrc::core
