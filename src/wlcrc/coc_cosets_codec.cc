#include "coc_cosets_codec.hh"

#include <cassert>
#include <limits>

#include "common/simd.hh"
#include "coset/aux_coding.hh"

namespace wlcrc::core
{

using coset::Mapping;
using coset::tableICandidate;
using pcm::State;

CocCosetsCodec::CocCosetsCodec(const pcm::EnergyModel &energy)
    : LineCodec(energy)
{
    std::array<const Mapping *, 4> cands{};
    for (unsigned m = 0; m < 4; ++m)
        cands[m] = &tableICandidate(m + 1);
    buildCandidateCostRows({cands.data(), cands.size()}, 4,
                           candRows_.data());
}

void
CocCosetsCodec::encodePayload(const Line512 &packed,
                              unsigned payload_bits,
                              unsigned granularity,
                              std::span<const State> stored,
                              pcm::TargetLine &target) const
{
    // Payload cells first, then one aux cell per block, then filler.
    const unsigned payload_cells = payload_bits / 2;
    const unsigned nblocks = payload_bits / granularity;
    const unsigned symbols_per_block = granularity / 2;

    for (unsigned b = 0; b < nblocks; ++b) {
        const unsigned sym0 = b * symbols_per_block;
        const unsigned aux_cell = payload_cells + b;

        // Single pass over the block, all four candidates scored per
        // cell off its cost row (per-candidate sum order unchanged).
        // Blocks (8 or 16 symbols, 16-symbol aligned) never span a
        // 32-symbol word.
        std::array<double, 4> cost{};
        if (!scalarScoringForTest()) [[likely]] {
            const unsigned w = sym0 / 32;
            const unsigned lo = sym0 - w * 32;
            simd::ops().accumRows4(
                candRows_.data(),
                reinterpret_cast<const uint8_t *>(stored.data()) +
                    w * 32,
                packed.word(w), lo, lo + symbols_per_block - 1,
                cost.data());
        } else {
            for (unsigned s = 0; s < symbols_per_block; ++s) {
                const unsigned sym = packed.symbol(sym0 + s);
                const double *row = costRow(stored[sym0 + s]);
                for (unsigned m = 0; m < 4; ++m) {
                    cost[m] += row[pcm::stateIndex(
                        tableICandidate(m + 1).encode(sym))];
                }
            }
        }
        double best_cost = std::numeric_limits<double>::infinity();
        unsigned best = 0;
        for (unsigned m = 0; m < 4; ++m) {
            const double total =
                cost[m] +
                cellCost(stored[aux_cell], coset::auxIndexState(m));
            if (total < best_cost) {
                best_cost = total;
                best = m;
            }
        }
        const Mapping &map = tableICandidate(best + 1);
        {
            const unsigned w = sym0 / 32;
            const unsigned lo = sym0 - w * 32;
            simd::ops().mapSymbols(
                packed.word(w), map.stateTable(), lo,
                lo + symbols_per_block - 1,
                reinterpret_cast<uint8_t *>(target.states()) +
                    w * 32);
        }
        target[aux_cell] = coset::auxIndexState(best);
        target.markAux(aux_cell);
    }
    // Filler cells beyond payload + aux idle at S1.
    for (unsigned c = payload_cells + nblocks; c < lineSymbols; ++c) {
        target[c] = State::S1;
        target.markAux(c);
    }
}

Line512
CocCosetsCodec::decodePayload(const std::vector<State> &stored,
                              unsigned payload_bits,
                              unsigned granularity) const
{
    const unsigned payload_cells = payload_bits / 2;
    const unsigned nblocks = payload_bits / granularity;
    const unsigned symbols_per_block = granularity / 2;
    Line512 packed;
    for (unsigned b = 0; b < nblocks; ++b) {
        const unsigned sym0 = b * symbols_per_block;
        unsigned idx = coset::auxIndexFromState(
            stored[payload_cells + b]);
        const Mapping &map = tableICandidate(idx + 1);
        for (unsigned s = 0; s < symbols_per_block; ++s)
            packed.setSymbol(sym0 + s, map.decode(stored[sym0 + s]));
    }
    return packed;
}

void
CocCosetsCodec::encodeInto(const Line512 &data,
                           std::span<const State> stored,
                           coset::EncodeScratch &scratch,
                           pcm::TargetLine &target) const
{
    assert(stored.size() == cellCount());
    (void)scratch;
    target.reset(cellCount());
    target.setAuxStart(lineSymbols);

    // The COC bank stages its candidate streams in growable buffers;
    // like DIN, this scheme's steady-state write still allocates a
    // bounded amount (see tests/encode_equivalence_test.cc).
    const auto stream = coc_.compress(data);
    if (stream && stream->size() <= budget16) {
        encodePayload(stream->toLine(), budget16, 16, stored, target);
        target[lineSymbols] = State::S1;
        return;
    }
    if (stream && stream->size() <= budget32) {
        encodePayload(stream->toLine(), budget32, 32, stored, target);
        target[lineSymbols] = State::S3;
        return;
    }
    // Raw. Flag S2: with >90 % of lines compressing, the common
    // (compressed, 16-bit) format keeps the lowest-energy state.
    const Mapping &c1 = tableICandidate(1);
    uint8_t *tgt = reinterpret_cast<uint8_t *>(target.states());
    const simd::Ops &k = simd::ops();
    for (unsigned w = 0; w < lineWords; ++w)
        k.mapSymbols(data.word(w), c1.stateTable(), 0, 31,
                     tgt + w * 32);
    target[lineSymbols] = State::S2;
}

Line512
CocCosetsCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const State flag = stored[lineSymbols];
    if (flag == State::S2) {
        const Mapping &c1 = tableICandidate(1);
        Line512 data;
        for (unsigned s = 0; s < lineSymbols; ++s)
            data.setSymbol(s, c1.decode(stored[s]));
        return data;
    }
    const unsigned payload_bits =
        flag == State::S1 ? budget16 : budget32;
    const unsigned granularity = flag == State::S1 ? 16 : 32;
    const Line512 packed =
        decodePayload(stored, payload_bits, granularity);
    // The COC stream is self-describing; trailing padding is ignored.
    const auto stream =
        compress::BitBuffer::fromLine(packed, payload_bits);
    return coc_.decompress(stream);
}

} // namespace wlcrc::core
