#include "coc_cosets_codec.hh"

#include <cassert>
#include <limits>

#include "coset/aux_coding.hh"

namespace wlcrc::core
{

using coset::Mapping;
using coset::tableICandidate;
using pcm::State;

CocCosetsCodec::CocCosetsCodec(const pcm::EnergyModel &energy)
    : LineCodec(energy)
{
}

void
CocCosetsCodec::encodePayload(const Line512 &packed,
                              unsigned payload_bits,
                              unsigned granularity,
                              std::span<const State> stored,
                              pcm::TargetLine &target) const
{
    // Payload cells first, then one aux cell per block, then filler.
    const unsigned payload_cells = payload_bits / 2;
    const unsigned nblocks = payload_bits / granularity;
    const unsigned symbols_per_block = granularity / 2;

    for (unsigned b = 0; b < nblocks; ++b) {
        const unsigned sym0 = b * symbols_per_block;
        const unsigned aux_cell = payload_cells + b;

        // Single pass over the block, all four candidates scored per
        // cell off its cost row (per-candidate sum order unchanged).
        std::array<double, 4> cost{};
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            const unsigned sym = packed.symbol(sym0 + s);
            const double *row = costRow(stored[sym0 + s]);
            for (unsigned m = 0; m < 4; ++m) {
                cost[m] += row[pcm::stateIndex(
                    tableICandidate(m + 1).encode(sym))];
            }
        }
        double best_cost = std::numeric_limits<double>::infinity();
        unsigned best = 0;
        for (unsigned m = 0; m < 4; ++m) {
            const double total =
                cost[m] +
                cellCost(stored[aux_cell], coset::auxIndexState(m));
            if (total < best_cost) {
                best_cost = total;
                best = m;
            }
        }
        const Mapping &map = tableICandidate(best + 1);
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            target[sym0 + s] =
                map.encode(packed.symbol(sym0 + s));
        }
        target[aux_cell] = coset::auxIndexState(best);
        target.markAux(aux_cell);
    }
    // Filler cells beyond payload + aux idle at S1.
    for (unsigned c = payload_cells + nblocks; c < lineSymbols; ++c) {
        target[c] = State::S1;
        target.markAux(c);
    }
}

Line512
CocCosetsCodec::decodePayload(const std::vector<State> &stored,
                              unsigned payload_bits,
                              unsigned granularity) const
{
    const unsigned payload_cells = payload_bits / 2;
    const unsigned nblocks = payload_bits / granularity;
    const unsigned symbols_per_block = granularity / 2;
    Line512 packed;
    for (unsigned b = 0; b < nblocks; ++b) {
        const unsigned sym0 = b * symbols_per_block;
        unsigned idx = coset::auxIndexFromState(
            stored[payload_cells + b]);
        const Mapping &map = tableICandidate(idx + 1);
        for (unsigned s = 0; s < symbols_per_block; ++s)
            packed.setSymbol(sym0 + s, map.decode(stored[sym0 + s]));
    }
    return packed;
}

void
CocCosetsCodec::encodeInto(const Line512 &data,
                           std::span<const State> stored,
                           coset::EncodeScratch &scratch,
                           pcm::TargetLine &target) const
{
    assert(stored.size() == cellCount());
    (void)scratch;
    target.reset(cellCount());
    target.setAuxStart(lineSymbols);

    // The COC bank stages its candidate streams in growable buffers;
    // like DIN, this scheme's steady-state write still allocates a
    // bounded amount (see tests/encode_equivalence_test.cc).
    const auto stream = coc_.compress(data);
    if (stream && stream->size() <= budget16) {
        encodePayload(stream->toLine(), budget16, 16, stored, target);
        target[lineSymbols] = State::S1;
        return;
    }
    if (stream && stream->size() <= budget32) {
        encodePayload(stream->toLine(), budget32, 32, stored, target);
        target[lineSymbols] = State::S3;
        return;
    }
    // Raw. Flag S2: with >90 % of lines compressing, the common
    // (compressed, 16-bit) format keeps the lowest-energy state.
    const Mapping &c1 = tableICandidate(1);
    for (unsigned s = 0; s < lineSymbols; ++s)
        target[s] = c1.encode(data.symbol(s));
    target[lineSymbols] = State::S2;
}

Line512
CocCosetsCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const State flag = stored[lineSymbols];
    if (flag == State::S2) {
        const Mapping &c1 = tableICandidate(1);
        Line512 data;
        for (unsigned s = 0; s < lineSymbols; ++s)
            data.setSymbol(s, c1.decode(stored[s]));
        return data;
    }
    const unsigned payload_bits =
        flag == State::S1 ? budget16 : budget32;
    const unsigned granularity = flag == State::S1 ? 16 : 32;
    const Line512 packed =
        decodePayload(stored, payload_bits, granularity);
    // The COC stream is self-describing; trailing padding is ignored.
    const auto stream =
        compress::BitBuffer::fromLine(packed, payload_bits);
    return coc_.decompress(stream);
}

} // namespace wlcrc::core
