#include "coc_cosets_codec.hh"

#include <cassert>
#include <limits>

#include "coset/aux_coding.hh"

namespace wlcrc::core
{

using coset::Mapping;
using coset::tableICandidate;
using pcm::State;

CocCosetsCodec::CocCosetsCodec(const pcm::EnergyModel &energy)
    : LineCodec(energy)
{
}

void
CocCosetsCodec::encodePayload(const Line512 &packed,
                              unsigned payload_bits,
                              unsigned granularity,
                              const std::vector<State> &stored,
                              pcm::TargetLine &target) const
{
    // Payload cells first, then one aux cell per block, then filler.
    const unsigned payload_cells = payload_bits / 2;
    const unsigned nblocks = payload_bits / granularity;
    const unsigned symbols_per_block = granularity / 2;

    for (unsigned b = 0; b < nblocks; ++b) {
        const unsigned sym0 = b * symbols_per_block;
        const unsigned aux_cell = payload_cells + b;
        double best_cost = std::numeric_limits<double>::infinity();
        unsigned best = 0;
        for (unsigned m = 0; m < 4; ++m) {
            const Mapping &map = tableICandidate(m + 1);
            double cost = 0.0;
            for (unsigned s = 0; s < symbols_per_block; ++s) {
                cost += cellCost(stored[sym0 + s],
                                 map.encode(packed.symbol(sym0 + s)));
            }
            cost += cellCost(stored[aux_cell],
                             coset::auxIndexState(m));
            if (cost < best_cost) {
                best_cost = cost;
                best = m;
            }
        }
        const Mapping &map = tableICandidate(best + 1);
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            target.cells[sym0 + s] =
                map.encode(packed.symbol(sym0 + s));
        }
        target.cells[aux_cell] = coset::auxIndexState(best);
        target.auxMask[aux_cell] = true;
    }
    // Filler cells beyond payload + aux idle at S1.
    for (unsigned c = payload_cells + nblocks; c < lineSymbols; ++c) {
        target.cells[c] = State::S1;
        target.auxMask[c] = true;
    }
}

Line512
CocCosetsCodec::decodePayload(const std::vector<State> &stored,
                              unsigned payload_bits,
                              unsigned granularity) const
{
    const unsigned payload_cells = payload_bits / 2;
    const unsigned nblocks = payload_bits / granularity;
    const unsigned symbols_per_block = granularity / 2;
    Line512 packed;
    for (unsigned b = 0; b < nblocks; ++b) {
        const unsigned sym0 = b * symbols_per_block;
        unsigned idx = coset::auxIndexFromState(
            stored[payload_cells + b]);
        const Mapping &map = tableICandidate(idx + 1);
        for (unsigned s = 0; s < symbols_per_block; ++s)
            packed.setSymbol(sym0 + s, map.decode(stored[sym0 + s]));
    }
    return packed;
}

pcm::TargetLine
CocCosetsCodec::encode(const Line512 &data,
                       const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    pcm::TargetLine target(cellCount());
    target.auxMask[lineSymbols] = true;

    const auto stream = coc_.compress(data);
    if (stream && stream->size() <= budget16) {
        encodePayload(stream->toLine(), budget16, 16, stored, target);
        target.cells[lineSymbols] = State::S1;
        return target;
    }
    if (stream && stream->size() <= budget32) {
        encodePayload(stream->toLine(), budget32, 32, stored, target);
        target.cells[lineSymbols] = State::S3;
        return target;
    }
    // Raw. Flag S2: with >90 % of lines compressing, the common
    // (compressed, 16-bit) format keeps the lowest-energy state.
    const Mapping &c1 = tableICandidate(1);
    for (unsigned s = 0; s < lineSymbols; ++s)
        target.cells[s] = c1.encode(data.symbol(s));
    target.cells[lineSymbols] = State::S2;
    return target;
}

Line512
CocCosetsCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const State flag = stored[lineSymbols];
    if (flag == State::S2) {
        const Mapping &c1 = tableICandidate(1);
        Line512 data;
        for (unsigned s = 0; s < lineSymbols; ++s)
            data.setSymbol(s, c1.decode(stored[s]));
        return data;
    }
    const unsigned payload_bits =
        flag == State::S1 ? budget16 : budget32;
    const unsigned granularity = flag == State::S1 ? 16 : 32;
    const Line512 packed =
        decodePayload(stored, payload_bits, granularity);
    // The COC stream is self-describing; trailing padding is ignored.
    const auto stream =
        compress::BitBuffer::fromLine(packed, payload_bits);
    return coc_.decompress(stream);
}

} // namespace wlcrc::core
