#include "wlc_cosets_codec.hh"

#include <cassert>
#include <limits>
#include <stdexcept>

#include "common/simd.hh"
#include "compress/wlc.hh"
#include "coset/aux_coding.hh"

namespace wlcrc::core
{

using coset::Mapping;
using coset::tableICandidate;
using pcm::State;

WlcCosetsCodec::WlcCosetsCodec(const pcm::EnergyModel &energy,
                               unsigned num_candidates,
                               unsigned granularity_bits)
    : LineCodec(energy), candidates_(num_candidates),
      granularity_(granularity_bits)
{
    if (candidates_ < 3 || candidates_ > 4)
        throw std::invalid_argument(
            "WlcCosetsCodec: 3 or 4 candidates");
    if (granularity_ != 8 && granularity_ != 16 &&
        granularity_ != 32 && granularity_ != 64) {
        throw std::invalid_argument(
            "WlcCosetsCodec: granularity must be 8/16/32/64");
    }
    // Two aux bits per (pre-compression) block, as in Section VI.
    reclaimed_ = 2 * (64 / granularity_);
    blocks_ = (64 - reclaimed_ + granularity_ - 1) / granularity_;

    std::array<const Mapping *, 4> cands{};
    for (unsigned m = 0; m < candidates_; ++m)
        cands[m] = &tableICandidate(m + 1);
    buildCandidateCostRows({cands.data(), candidates_}, 4,
                           candRows_.data());
}

std::string
WlcCosetsCodec::name() const
{
    return "WLC+" + std::to_string(candidates_) + "cosets-" +
           std::to_string(granularity_);
}

bool
WlcCosetsCodec::compressible(const Line512 &data) const
{
    return compress::Wlc::lineCompressible(data, compressionK());
}

void
WlcCosetsCodec::encodeInto(const Line512 &data,
                           std::span<const State> stored,
                           coset::EncodeScratch &scratch,
                           pcm::TargetLine &target) const
{
    assert(stored.size() == cellCount());
    (void)scratch;
    target.reset(cellCount());
    target.setAuxStart(lineSymbols);

    const Mapping &c1 = tableICandidate(1);
    if (!compressible(data)) {
        uint8_t *tgt = reinterpret_cast<uint8_t *>(target.states());
        const simd::Ops &k = simd::ops();
        for (unsigned w = 0; w < lineWords; ++w)
            k.mapSymbols(data.word(w), c1.stateTable(), 0, 31,
                         tgt + w * 32);
        target[lineSymbols] = State::S2; // flag: raw
        return;
    }
    target[lineSymbols] = State::S1; // flag: compressed

    const unsigned aux_cells = reclaimed_ / 2;
    const unsigned aux_start = 32 - aux_cells;
    const unsigned top_data_bit = 63 - reclaimed_;

    for (unsigned w = 0; w < lineWords; ++w) {
        const uint64_t word = data.word(w);
        const unsigned cell0 = w * 32;

        for (unsigned b = 0; b < blocks_; ++b) {
            const unsigned lo_cell = (b * granularity_) / 2;
            const unsigned hi_cell =
                std::min((b + 1) * granularity_ - 1, top_data_bit) /
                2;
            const unsigned aux_cell = aux_start + b;

            // One pass over the block's cells, every candidate scored
            // off the cell's cost row (per-candidate accumulation
            // order is unchanged: cell order, then the aux cell).
            std::array<double, 4> cost{};
            if (!scalarScoringForTest()) [[likely]] {
                simd::ops().accumRows4(
                    candRows_.data(),
                    reinterpret_cast<const uint8_t *>(
                        stored.data()) +
                        cell0,
                    word, lo_cell, hi_cell, cost.data());
            } else {
                for (unsigned c = lo_cell; c <= hi_cell; ++c) {
                    const unsigned sym = static_cast<unsigned>(
                        (word >> (c * 2)) & 3);
                    const double *row = costRow(stored[cell0 + c]);
                    for (unsigned m = 0; m < candidates_; ++m) {
                        cost[m] += row[pcm::stateIndex(
                            tableICandidate(m + 1).encode(sym))];
                    }
                }
            }
            double best_cost =
                std::numeric_limits<double>::infinity();
            unsigned best = 0;
            for (unsigned m = 0; m < candidates_; ++m) {
                const double total =
                    cost[m] + cellCost(stored[cell0 + aux_cell],
                                       coset::auxIndexState(m));
                if (total < best_cost) {
                    best_cost = total;
                    best = m;
                }
            }
            const Mapping &map = tableICandidate(best + 1);
            simd::ops().mapSymbols(
                word, map.stateTable(), lo_cell, hi_cell,
                reinterpret_cast<uint8_t *>(target.states()) +
                    cell0);
            target[cell0 + aux_cell] = coset::auxIndexState(best);
            target.markAux(cell0 + aux_cell);
        }
        // Reserved-but-unused aux cells (8-bit granularity) idle at
        // the cheapest state.
        for (unsigned b = blocks_; b < aux_cells; ++b) {
            target[cell0 + aux_start + b] = State::S1;
            target.markAux(cell0 + aux_start + b);
        }
    }
}

Line512
WlcCosetsCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const Mapping &c1 = tableICandidate(1);
    Line512 data;
    if (stored[lineSymbols] != State::S1) {
        for (unsigned s = 0; s < lineSymbols; ++s)
            data.setSymbol(s, c1.decode(stored[s]));
        return data;
    }

    const unsigned aux_cells = reclaimed_ / 2;
    const unsigned aux_start = 32 - aux_cells;
    const unsigned top_data_bit = 63 - reclaimed_;

    for (unsigned w = 0; w < lineWords; ++w) {
        const unsigned cell0 = w * 32;
        uint64_t bits = 0;
        for (unsigned b = 0; b < blocks_; ++b) {
            const unsigned lo_cell = (b * granularity_) / 2;
            const unsigned hi_cell =
                std::min((b + 1) * granularity_ - 1, top_data_bit) /
                2;
            unsigned idx = coset::auxIndexFromState(
                stored[cell0 + aux_start + b]);
            if (idx >= candidates_)
                idx = 0;
            const Mapping &map = tableICandidate(idx + 1);
            for (unsigned c = lo_cell; c <= hi_cell; ++c) {
                bits |= uint64_t(map.decode(stored[cell0 + c]))
                        << (c * 2);
            }
        }
        data.setWord(w, compress::Wlc::signExtendWord(bits,
                                                      reclaimed_));
    }
    return data;
}

} // namespace wlcrc::core
