#include "mapping.hh"

#include <algorithm>
#include <cassert>
#include <vector>

namespace wlcrc::coset
{

using pcm::State;

Mapping::Mapping(const std::array<State, 4> &symbol_to_state,
                 std::string name)
    : toState_(symbol_to_state), name_(std::move(name))
{
    fromState_ = {255, 255, 255, 255};
    for (unsigned sym = 0; sym < 4; ++sym)
        fromState_[pcm::stateIndex(toState_[sym])] = sym;
    for (unsigned s = 0; s < 4; ++s)
        assert(fromState_[s] != 255 && "mapping must be a bijection");
}

namespace
{

// Symbol integer values. Paper notation 'b1 b0': symbol "01" has
// b1=0, b0=1, i.e. integer value 1; "10" is 2; "11" is 3.
constexpr unsigned sym00 = 0;
constexpr unsigned sym01 = 1;
constexpr unsigned sym10 = 2;
constexpr unsigned sym11 = 3;

/** Table I, column Ck: state order S1..S4 as symbol values. */
std::array<State, 4>
fromStateOrder(const std::array<unsigned, 4> &symbols_by_state)
{
    std::array<State, 4> to_state{};
    for (unsigned s = 0; s < 4; ++s)
        to_state[symbols_by_state[s]] = pcm::stateFromIndex(s);
    return to_state;
}

} // namespace

const Mapping &
defaultMapping()
{
    return tableICandidate(1);
}

const Mapping &
tableICandidate(unsigned k)
{
    // Table I lists, for each state S1..S4 (top to bottom), the
    // symbol mapped onto it by each candidate.
    static const Mapping candidates[4] = {
        {fromStateOrder({sym00, sym10, sym11, sym01}), "C1"},
        {fromStateOrder({sym11, sym00, sym10, sym01}), "C2"},
        {fromStateOrder({sym11, sym01, sym00, sym10}), "C3"},
        {fromStateOrder({sym11, sym00, sym01, sym10}), "C4"},
    };
    assert(k >= 1 && k <= 4);
    return candidates[k - 1];
}

std::span<const Mapping *const>
tableICandidates(unsigned n)
{
    assert(n >= 1 && n <= 4);
    static const std::array<const Mapping *, 4> all = {
        &tableICandidate(1), &tableICandidate(2), &tableICandidate(3),
        &tableICandidate(4)};
    return {all.data(), n};
}

std::span<const Mapping *const>
sixCosetCandidates()
{
    // For each unordered symbol pair placed on the low-energy states
    // {S1, S2}, pick — among the bijections doing so — the one that
    // keeps the most symbols on their default state ("maintaining the
    // original data block as much as possible", Section III).
    static std::vector<Mapping> storage = [] {
        const Mapping &def = defaultMapping();
        std::vector<Mapping> built;
        for (unsigned a = 0; a < 4; ++a) {
            for (unsigned b = a + 1; b < 4; ++b) {
                std::array<State, 4> best{};
                int best_score = -1;
                // The two symbols not in {a, b}.
                std::array<unsigned, 2> rest{};
                for (unsigned s = 0, r = 0; s < 4; ++s)
                    if (s != a && s != b)
                        rest[r++] = s;
                // Four placements: (a,b) on (S1,S2) or (S2,S1),
                // crossed with rest on (S3,S4) or (S4,S3).
                for (unsigned swap_ab = 0; swap_ab < 2; ++swap_ab) {
                    for (unsigned swap_r = 0; swap_r < 2; ++swap_r) {
                        std::array<State, 4> cand{};
                        cand[a] = swap_ab ? State::S2 : State::S1;
                        cand[b] = swap_ab ? State::S1 : State::S2;
                        cand[rest[0]] =
                            swap_r ? State::S4 : State::S3;
                        cand[rest[1]] =
                            swap_r ? State::S3 : State::S4;
                        int score = 0;
                        for (unsigned s = 0; s < 4; ++s)
                            if (cand[s] == def.encode(s))
                                ++score;
                        if (score > best_score) {
                            best_score = score;
                            best = cand;
                        }
                    }
                }
                built.emplace_back(best,
                                   "W" + std::to_string(built.size() +
                                                        1));
            }
        }
        assert(built.size() == 6);
        return built;
    }();
    static const std::array<const Mapping *, 6> views = [] {
        std::array<const Mapping *, 6> out{};
        for (unsigned i = 0; i < 6; ++i)
            out[i] = &storage[i];
        return out;
    }();

    return {views.data(), views.size()};
}

} // namespace wlcrc::coset
