/**
 * @file
 * FNW: Flip-N-Write (Cho & Lee, MICRO'09), adapted to MLC PCM as in
 * the paper's evaluation: the 512-bit line is partitioned into
 * 128-bit blocks, each written either as-is or bit-complemented,
 * whichever costs less under differential write. One flip bit per
 * block; the four flip bits occupy two dedicated aux cells, matching
 * the space overhead of FlipMin / 6cosets.
 */

#ifndef WLCRC_COSET_FNW_CODEC_HH
#define WLCRC_COSET_FNW_CODEC_HH

#include "coset/codec.hh"
#include "coset/mapping.hh"

namespace wlcrc::coset
{

/** Flip-N-Write over 128-bit sub-blocks. */
class FnwCodec : public LineCodec
{
  public:
    /**
     * @param energy      write-energy model.
     * @param block_bits  invertible block size (default 128 per the
     *                    paper's ISO-overhead setup).
     */
    explicit FnwCodec(const pcm::EnergyModel &energy,
                      unsigned block_bits = 128);

    std::string name() const override { return "FNW"; }
    unsigned cellCount() const override;

    void encodeInto(const Line512 &data,
                    std::span<const pcm::State> stored,
                    EncodeScratch &scratch,
                    pcm::TargetLine &target) const override;

    Line512 decode(
        const std::vector<pcm::State> &stored) const override;

    unsigned blockCount() const { return lineBits / blockBits_; }

  private:
    unsigned blockBits_;
};

} // namespace wlcrc::coset

#endif // WLCRC_COSET_FNW_CODEC_HH
