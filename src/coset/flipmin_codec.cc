#include "flipmin_codec.hh"

#include <cassert>
#include <limits>

#include "coset/aux_coding.hh"
#include "ecc/hamming.hh"

namespace wlcrc::coset
{

using pcm::State;

FlipMinCodec::FlipMinCodec(const pcm::EnergyModel &energy,
                           uint64_t seed)
    : LineCodec(energy), masks_(ecc::flipMinMasks(numCandidates, seed))
{
}

pcm::TargetLine
FlipMinCodec::encode(const Line512 &data,
                     const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const Mapping &map = defaultMapping();

    double best_cost = std::numeric_limits<double>::infinity();
    unsigned best = 0;
    for (unsigned c = 0; c < numCandidates; ++c) {
        const Line512 cand = data ^ masks_[c];
        double cost = 0.0;
        for (unsigned s = 0; s < lineSymbols; ++s)
            cost += cellCost(stored[s], map.encode(cand.symbol(s)));
        // Include the cost of updating the two index cells.
        const std::vector<uint8_t> bits{
            static_cast<uint8_t>(c & 1),
            static_cast<uint8_t>((c >> 1) & 1),
            static_cast<uint8_t>((c >> 2) & 1),
            static_cast<uint8_t>((c >> 3) & 1)};
        std::vector<State> aux;
        packBitsToStates(bits, aux);
        cost += cellCost(stored[lineSymbols], aux[0]);
        cost += cellCost(stored[lineSymbols + 1], aux[1]);
        if (cost < best_cost) {
            best_cost = cost;
            best = c;
        }
    }

    pcm::TargetLine target(cellCount());
    const Line512 cand = data ^ masks_[best];
    for (unsigned s = 0; s < lineSymbols; ++s)
        target.cells[s] = map.encode(cand.symbol(s));
    const std::vector<uint8_t> bits{
        static_cast<uint8_t>(best & 1),
        static_cast<uint8_t>((best >> 1) & 1),
        static_cast<uint8_t>((best >> 2) & 1),
        static_cast<uint8_t>((best >> 3) & 1)};
    std::vector<State> aux;
    packBitsToStates(bits, aux);
    target.cells[lineSymbols] = aux[0];
    target.cells[lineSymbols + 1] = aux[1];
    target.auxMask[lineSymbols] = true;
    target.auxMask[lineSymbols + 1] = true;
    return target;
}

Line512
FlipMinCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const Mapping &map = defaultMapping();
    std::vector<State> aux(stored.begin() + lineSymbols, stored.end());
    const std::vector<uint8_t> bits = unpackBitsFromStates(aux, 4);
    const unsigned c = bits[0] | (bits[1] << 1) | (bits[2] << 2) |
                       (bits[3] << 3);
    Line512 data;
    for (unsigned s = 0; s < lineSymbols; ++s)
        data.setSymbol(s, map.decode(stored[s]));
    return data ^ masks_[c];
}

} // namespace wlcrc::coset
