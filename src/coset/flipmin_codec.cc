#include "flipmin_codec.hh"

#include <cassert>
#include <limits>

#include "coset/aux_coding.hh"
#include "ecc/hamming.hh"

namespace wlcrc::coset
{

using pcm::State;

FlipMinCodec::FlipMinCodec(const pcm::EnergyModel &energy,
                           uint64_t seed)
    : LineCodec(energy), masks_(ecc::flipMinMasks(numCandidates, seed))
{
}

void
FlipMinCodec::encodeInto(const Line512 &data,
                         std::span<const State> stored,
                         EncodeScratch &scratch,
                         pcm::TargetLine &target) const
{
    assert(stored.size() == cellCount());
    (void)scratch;
    const Mapping &map = defaultMapping();

    // Candidate index cells under the default bit packing: the low
    // two index bits share the first aux cell, the high two the
    // second (same symbols packBitsToStates produces).
    auto aux_state = [&map](unsigned index_bits) {
        return map.encode(index_bits & 3);
    };

    double best_cost = std::numeric_limits<double>::infinity();
    unsigned best = 0;
    for (unsigned c = 0; c < numCandidates; ++c) {
        const Line512 cand = data ^ masks_[c];
        double cost = 0.0;
        for (unsigned w = 0; w < lineWords; ++w) {
            uint64_t word = cand.word(w);
            for (unsigned k = 0; k < 32; ++k) {
                const State t = map.encode(
                    static_cast<unsigned>(word & 3));
                cost += costRow(stored[w * 32 + k])
                            [pcm::stateIndex(t)];
                word >>= 2;
            }
        }
        // Include the cost of updating the two index cells.
        cost += cellCost(stored[lineSymbols], aux_state(c));
        cost += cellCost(stored[lineSymbols + 1], aux_state(c >> 2));
        if (cost < best_cost) {
            best_cost = cost;
            best = c;
        }
    }

    target.reset(cellCount());
    target.setAuxStart(lineSymbols);
    const Line512 cand = data ^ masks_[best];
    for (unsigned s = 0; s < lineSymbols; ++s)
        target[s] = map.encode(cand.symbol(s));
    target[lineSymbols] = aux_state(best);
    target[lineSymbols + 1] = aux_state(best >> 2);
}

Line512
FlipMinCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const Mapping &map = defaultMapping();
    std::vector<State> aux(stored.begin() + lineSymbols, stored.end());
    const std::vector<uint8_t> bits = unpackBitsFromStates(aux, 4);
    const unsigned c = bits[0] | (bits[1] << 1) | (bits[2] << 2) |
                       (bits[3] << 3);
    Line512 data;
    for (unsigned s = 0; s < lineSymbols; ++s)
        data.setSymbol(s, map.decode(stored[s]));
    return data ^ masks_[c];
}

} // namespace wlcrc::coset
