/**
 * @file
 * DIN (Jiang et al., DSN'14), adapted to MLC per the paper's
 * evaluation: memory lines that FPC+BDI can compress to at most 369
 * bits are re-expanded with a 3-to-4-bit code whose codewords avoid
 * the highest-energy / most disturbance-prone cell state, and a
 * 20-bit BCH code (t = 2, over GF(2^10)) is appended to correct write
 * disturbance errors during verification. Incompressible lines are
 * written unencoded. One dedicated flag cell records which format the
 * line uses.
 */

#ifndef WLCRC_COSET_DIN_CODEC_HH
#define WLCRC_COSET_DIN_CODEC_HH

#include <array>

#include "compress/fpc_bdi.hh"
#include "coset/codec.hh"
#include "coset/mapping.hh"
#include "ecc/bch.hh"

namespace wlcrc::coset
{

/** DIN: compression-enabled 3-to-4-bit expansion + BCH. */
class DinCodec : public LineCodec
{
  public:
    explicit DinCodec(const pcm::EnergyModel &energy);

    std::string name() const override { return "DIN"; }
    /** 256 data cells + 1 compression flag cell. */
    unsigned cellCount() const override { return lineSymbols + 1; }

    void encodeInto(const Line512 &data,
                    std::span<const pcm::State> stored,
                    EncodeScratch &scratch,
                    pcm::TargetLine &target) const override;

    Line512 decode(
        const std::vector<pcm::State> &stored) const override;

    /** Compression threshold for encodability (bits). */
    static constexpr unsigned maxCompressedBits = 369;
    /** 3-bit groups after padding to a multiple of 3. */
    static constexpr unsigned dataGroups = 123; // ceil(369 / 3)
    /** Expanded payload: 123 groups x 4 bits. */
    static constexpr unsigned expandedBits = dataGroups * 4; // 492
    /** BCH parity bits; 492 + 20 = 512 fills the line exactly. */
    static constexpr unsigned bchParityBits = 20;

    /** 3-bit value -> 4-bit low-energy codeword. */
    static unsigned expand3to4(unsigned v);
    /** Inverse of expand3to4 (codewords only). */
    static unsigned shrink4to3(unsigned cw);

  private:
    compress::FpcBdi compressor_;
    ecc::Bch bch_;
};

} // namespace wlcrc::coset

#endif // WLCRC_COSET_DIN_CODEC_HH
