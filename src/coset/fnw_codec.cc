#include "fnw_codec.hh"

#include <cassert>

#include "coset/aux_coding.hh"

namespace wlcrc::coset
{

using pcm::State;

FnwCodec::FnwCodec(const pcm::EnergyModel &energy, unsigned block_bits)
    : LineCodec(energy), blockBits_(block_bits)
{
    assert(blockBits_ >= 2 && blockBits_ % 2 == 0);
    assert(lineBits % blockBits_ == 0);
    // Flip bits must fit the two-cell aux budget used in Figure 8's
    // ISO-overhead comparison.
    assert(blockCount() <= 4);
}

unsigned
FnwCodec::cellCount() const
{
    return lineSymbols + (blockCount() + 1) / 2;
}

void
FnwCodec::encodeInto(const Line512 &data,
                     std::span<const State> stored,
                     EncodeScratch &scratch,
                     pcm::TargetLine &target) const
{
    assert(stored.size() == cellCount());
    const Mapping &map = defaultMapping();
    const unsigned symbols_per_block = blockBits_ / 2;
    const unsigned nblocks = blockCount();

    target.reset(cellCount());
    target.setAuxStart(lineSymbols);
    uint8_t *flips = scratch.bitsA.data();
    for (unsigned b = 0; b < nblocks; ++b) {
        double cost_plain = 0.0, cost_flip = 0.0;
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            const unsigned idx = b * symbols_per_block + s;
            const unsigned sym = data.symbol(idx);
            const double *row = costRow(stored[idx]);
            cost_plain += row[pcm::stateIndex(map.encode(sym))];
            cost_flip += row[pcm::stateIndex(map.encode(sym ^ 3))];
        }
        flips[b] = cost_flip < cost_plain ? 1 : 0;
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            const unsigned idx = b * symbols_per_block + s;
            const unsigned sym = data.symbol(idx) ^ (flips[b] ? 3 : 0);
            target[idx] = map.encode(sym);
        }
    }

    State *aux = scratch.states.data();
    const unsigned aux_cells = packBitsToStates(flips, nblocks, aux);
    for (unsigned i = 0; i < aux_cells; ++i)
        target[lineSymbols + i] = aux[i];
}

Line512
FnwCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const Mapping &map = defaultMapping();
    const unsigned symbols_per_block = blockBits_ / 2;
    const unsigned nblocks = blockCount();

    std::vector<State> aux(stored.begin() + lineSymbols, stored.end());
    const std::vector<uint8_t> flips =
        unpackBitsFromStates(aux, nblocks);

    Line512 data;
    for (unsigned b = 0; b < nblocks; ++b) {
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            const unsigned idx = b * symbols_per_block + s;
            const unsigned sym =
                map.decode(stored[idx]) ^ (flips[b] ? 3 : 0);
            data.setSymbol(idx, sym);
        }
    }
    return data;
}

} // namespace wlcrc::coset
