#include "fnw_codec.hh"

#include <cassert>

#include "coset/aux_coding.hh"

namespace wlcrc::coset
{

using pcm::State;

FnwCodec::FnwCodec(const pcm::EnergyModel &energy, unsigned block_bits)
    : LineCodec(energy), blockBits_(block_bits)
{
    assert(blockBits_ >= 2 && blockBits_ % 2 == 0);
    assert(lineBits % blockBits_ == 0);
    // Flip bits must fit the two-cell aux budget used in Figure 8's
    // ISO-overhead comparison.
    assert(blockCount() <= 4);
}

unsigned
FnwCodec::cellCount() const
{
    return lineSymbols + (blockCount() + 1) / 2;
}

pcm::TargetLine
FnwCodec::encode(const Line512 &data,
                 const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const Mapping &map = defaultMapping();
    const unsigned symbols_per_block = blockBits_ / 2;
    const unsigned nblocks = blockCount();

    pcm::TargetLine target(cellCount());
    std::vector<uint8_t> flips(nblocks, 0);
    for (unsigned b = 0; b < nblocks; ++b) {
        double cost_plain = 0.0, cost_flip = 0.0;
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            const unsigned idx = b * symbols_per_block + s;
            const unsigned sym = data.symbol(idx);
            cost_plain += cellCost(stored[idx], map.encode(sym));
            cost_flip += cellCost(stored[idx], map.encode(sym ^ 3));
        }
        flips[b] = cost_flip < cost_plain ? 1 : 0;
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            const unsigned idx = b * symbols_per_block + s;
            const unsigned sym = data.symbol(idx) ^ (flips[b] ? 3 : 0);
            target.cells[idx] = map.encode(sym);
        }
    }

    std::vector<State> aux;
    packBitsToStates(flips, aux);
    for (unsigned i = 0; i < aux.size(); ++i) {
        target.cells[lineSymbols + i] = aux[i];
        target.auxMask[lineSymbols + i] = true;
    }
    return target;
}

Line512
FnwCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const Mapping &map = defaultMapping();
    const unsigned symbols_per_block = blockBits_ / 2;
    const unsigned nblocks = blockCount();

    std::vector<State> aux(stored.begin() + lineSymbols, stored.end());
    const std::vector<uint8_t> flips =
        unpackBitsFromStates(aux, nblocks);

    Line512 data;
    for (unsigned b = 0; b < nblocks; ++b) {
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            const unsigned idx = b * symbols_per_block + s;
            const unsigned sym =
                map.decode(stored[idx]) ^ (flips[b] ? 3 : 0);
            data.setSymbol(idx, sym);
        }
    }
    return data;
}

} // namespace wlcrc::coset
