/**
 * @file
 * RestrictedCosetsCodec: the paper's Section V "3-r-cosets".
 *
 * Instead of letting every data block pick any of {C1, C2, C3}
 * independently (2 aux bits per block), the whole memory line commits
 * to one of two coset *groups* — {C1, C2} or {C1, C3} — recorded by a
 * single global bit; each block then needs only one bit to select
 * within the group. Total auxiliary information drops from
 * 2*nblocks bits to (1 + nblocks) bits.
 *
 * C2 suits biased data (runs of 0s/1s), C3 suits non-biased data, and
 * data locality makes whole lines lean one way or the other, so the
 * restriction costs little energy (Figure 5).
 */

#ifndef WLCRC_COSET_RESTRICTED_CODEC_HH
#define WLCRC_COSET_RESTRICTED_CODEC_HH

#include "coset/codec.hh"
#include "coset/mapping.hh"

namespace wlcrc::coset
{

/** Line-level restricted coset coding over C1/C2/C3. */
class RestrictedCosetsCodec : public LineCodec
{
  public:
    /**
     * @param energy            write-energy model.
     * @param granularity_bits  data block size (divides 512).
     */
    RestrictedCosetsCodec(const pcm::EnergyModel &energy,
                          unsigned granularity_bits);

    std::string name() const override;
    unsigned cellCount() const override;

    void encodeInto(const Line512 &data,
                    std::span<const pcm::State> stored,
                    EncodeScratch &scratch,
                    pcm::TargetLine &target) const override;

    Line512 decode(
        const std::vector<pcm::State> &stored) const override;

    unsigned granularityBits() const { return granularity_; }
    unsigned blockCount() const { return lineBits / granularity_; }
    /** Aux bits per line: 1 global + 1 per block. */
    unsigned auxBits() const { return 1 + blockCount(); }
    /** Dedicated aux cells per line. */
    unsigned auxCells() const { return (auxBits() + 1) / 2; }

  private:
    unsigned granularity_;
};

} // namespace wlcrc::coset

#endif // WLCRC_COSET_RESTRICTED_CODEC_HH
