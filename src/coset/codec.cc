#include "codec.hh"

#include <atomic>

#include "coset/mapping.hh"

namespace wlcrc::coset
{

LineCodec::LineCodec(const pcm::EnergyModel &energy) : energy_(energy)
{
    for (unsigned s = 0; s < pcm::numStates; ++s) {
        for (unsigned t = 0; t < pcm::numStates; ++t) {
            costs_[s][t] =
                energy_.writeEnergy(pcm::stateFromIndex(s),
                                    pcm::stateFromIndex(t));
        }
    }
}

void
LineCodec::buildCandidateCostRows(
    std::span<const Mapping *const> candidates, unsigned stride,
    double *rows) const
{
    for (unsigned s = 0; s < pcm::numStates; ++s) {
        for (unsigned sym = 0; sym < 4; ++sym) {
            double *row = rows + (s * 4 + sym) * stride;
            for (unsigned c = 0; c < stride; ++c) {
                row[c] =
                    c < candidates.size()
                        ? costs_[s][pcm::stateIndex(
                              candidates[c]->encode(sym))]
                        : 0.0;
            }
        }
    }
}

void
LineCodec::setScalarScoringForTest(bool on)
{
    detail::scalarScoringFlag.store(on, std::memory_order_relaxed);
}

const double *
LineCodec::scalarRow(pcm::State stored) const
{
    // Ring of four rows: callers may keep a small number of rows
    // live simultaneously (a data row and an aux row, at most).
    thread_local std::array<std::array<double, pcm::numStates>, 4>
        ring;
    thread_local unsigned slot = 0;
    auto &row = ring[slot];
    slot = (slot + 1) % ring.size();
    for (unsigned t = 0; t < pcm::numStates; ++t) {
        row[t] =
            energy_.writeEnergy(stored, pcm::stateFromIndex(t));
    }
    return row.data();
}

void
LineCodec::encodeBatch(const EncodeJob *jobs, std::size_t count,
                       EncodeScratch &scratch) const
{
    const unsigned cells = cellCount();
    for (std::size_t i = 0; i < count; ++i) {
        encodeInto(*jobs[i].data, {jobs[i].stored, cells}, scratch,
                   *jobs[i].target);
    }
}

pcm::TargetLine
LineCodec::encode(const Line512 &data,
                  const std::vector<pcm::State> &stored) const
{
    EncodeScratch scratch;
    pcm::TargetLine target;
    encodeInto(data, {stored.data(), stored.size()}, scratch, target);
    return target;
}

} // namespace wlcrc::coset
