/**
 * @file
 * NCosetsCodec: unrestricted coset coding at a configurable data-block
 * granularity with a configurable candidate set.
 *
 * Each g-bit data block is independently encoded with the candidate
 * mapping that minimises its differential write energy (including the
 * cost of updating the block's auxiliary cells). This one class
 * realises the paper's 3cosets / 4cosets (Table I candidates, one aux
 * cell per block) and 6cosets (Wang ICCD'11 candidates, two aux cells
 * per block encoded with the six cheapest state pairs) at any
 * granularity from 8 to 512 bits — the configuration space swept in
 * Figures 1, 2, 3 and 5.
 */

#ifndef WLCRC_COSET_NCOSETS_CODEC_HH
#define WLCRC_COSET_NCOSETS_CODEC_HH

#include <array>
#include <span>
#include <utility>

#include "coset/aux_coding.hh"
#include "coset/codec.hh"
#include "coset/mapping.hh"

namespace wlcrc::coset
{

/** Unrestricted per-block coset selection. */
class NCosetsCodec : public LineCodec
{
  public:
    /** Largest supported candidate set. */
    static constexpr unsigned maxCandidates = 6;

    /**
     * @param energy            write-energy model.
     * @param candidates        candidate mappings (2..6 entries);
     *                          copied into inline storage.
     * @param granularity_bits  block size; must divide 512 and be a
     *                          multiple of 2.
     */
    NCosetsCodec(const pcm::EnergyModel &energy,
                 std::span<const Mapping *const> candidates,
                 unsigned granularity_bits);

    std::string name() const override;
    unsigned cellCount() const override;

    void encodeInto(const Line512 &data,
                    std::span<const pcm::State> stored,
                    EncodeScratch &scratch,
                    pcm::TargetLine &target) const override;

    Line512 decode(
        const std::vector<pcm::State> &stored) const override;

    unsigned granularityBits() const { return granularity_; }
    unsigned blockCount() const { return lineBits / granularity_; }
    /** Aux cells used per data block (1 for <=4 candidates, else 2). */
    unsigned auxCellsPerBlock() const { return auxPerBlock_; }

  private:
    /** Target aux states identifying candidate @p c for one block. */
    void auxStatesFor(unsigned c, pcm::State &a0, pcm::State &a1) const;
    /** Candidate index stored in a block's aux cells. */
    unsigned candidateFromAux(pcm::State a0, pcm::State a1) const;

    std::array<const Mapping *, maxCandidates> candidates_{};
    unsigned numCandidates_;
    unsigned granularity_;
    unsigned auxPerBlock_;
    std::array<std::pair<pcm::State, pcm::State>, 6> pairs_;

    /** Candidate-cost rows for the SIMD scoring kernel, stride 4
     *  (<=4 candidates, accumRows4) or 8 (accumRows8). */
    unsigned rowStride_;
    std::array<double, pcm::numStates * 4 * 8> candRows_{};
};

} // namespace wlcrc::coset

#endif // WLCRC_COSET_NCOSETS_CODEC_HH
