/**
 * @file
 * Baseline scheme: plain differential write of the 512-bit line under
 * the default symbol-to-state mapping, with no auxiliary cells.
 */

#ifndef WLCRC_COSET_BASELINE_CODEC_HH
#define WLCRC_COSET_BASELINE_CODEC_HH

#include "coset/codec.hh"
#include "coset/mapping.hh"

namespace wlcrc::coset
{

/** Differential write only (paper's "Baseline"). */
class BaselineCodec : public LineCodec
{
  public:
    explicit BaselineCodec(const pcm::EnergyModel &energy)
        : LineCodec(energy)
    {}

    std::string name() const override { return "Baseline"; }
    unsigned cellCount() const override { return lineSymbols; }

    void encodeInto(const Line512 &data,
                    std::span<const pcm::State> stored,
                    EncodeScratch &scratch,
                    pcm::TargetLine &target) const override;

    Line512 decode(
        const std::vector<pcm::State> &stored) const override;
};

} // namespace wlcrc::coset

#endif // WLCRC_COSET_BASELINE_CODEC_HH
