#include "restricted_codec.hh"

#include <cassert>

#include "coset/aux_coding.hh"

namespace wlcrc::coset
{

using pcm::State;

RestrictedCosetsCodec::RestrictedCosetsCodec(
    const pcm::EnergyModel &energy, unsigned granularity_bits)
    : LineCodec(energy), granularity_(granularity_bits)
{
    assert(granularity_ >= 2 && granularity_ % 2 == 0);
    assert(lineBits % granularity_ == 0);
}

std::string
RestrictedCosetsCodec::name() const
{
    return "3-r-cosets-" + std::to_string(granularity_);
}

unsigned
RestrictedCosetsCodec::cellCount() const
{
    return lineSymbols + auxCells();
}

pcm::TargetLine
RestrictedCosetsCodec::encode(const Line512 &data,
                              const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const unsigned symbols_per_block = granularity_ / 2;
    const unsigned nblocks = blockCount();
    const Mapping &c1 = tableICandidate(1);

    // Evaluate both groups: {C1, C2} and {C1, C3}. For each group,
    // each block independently picks the cheaper member.
    double group_cost[2] = {0.0, 0.0};
    std::vector<uint8_t> choice[2]; // per-block: 0 = C1, 1 = other
    for (unsigned g = 0; g < 2; ++g) {
        choice[g].resize(nblocks);
        const Mapping &alt = tableICandidate(g == 0 ? 2 : 3);
        for (unsigned b = 0; b < nblocks; ++b) {
            double cost_c1 = 0.0, cost_alt = 0.0;
            for (unsigned s = 0; s < symbols_per_block; ++s) {
                const unsigned idx = b * symbols_per_block + s;
                const unsigned sym = data.symbol(idx);
                cost_c1 += cellCost(stored[idx], c1.encode(sym));
                cost_alt += cellCost(stored[idx], alt.encode(sym));
            }
            if (cost_alt < cost_c1) {
                choice[g][b] = 1;
                group_cost[g] += cost_alt;
            } else {
                choice[g][b] = 0;
                group_cost[g] += cost_c1;
            }
        }
    }
    const unsigned g = group_cost[1] < group_cost[0] ? 1 : 0;
    const Mapping &alt = tableICandidate(g == 0 ? 2 : 3);

    pcm::TargetLine target(cellCount());
    for (unsigned b = 0; b < nblocks; ++b) {
        const Mapping &map = choice[g][b] ? alt : c1;
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            const unsigned idx = b * symbols_per_block + s;
            target.cells[idx] = map.encode(data.symbol(idx));
        }
    }

    // Aux bits: [group bit, block 0 choice, block 1 choice, ...].
    std::vector<uint8_t> bits(auxBits());
    bits[0] = static_cast<uint8_t>(g);
    for (unsigned b = 0; b < nblocks; ++b)
        bits[1 + b] = choice[g][b];
    std::vector<State> aux;
    packBitsToStates(bits, aux, /*pair_friendly=*/true);
    for (unsigned i = 0; i < aux.size(); ++i) {
        target.cells[lineSymbols + i] = aux[i];
        target.auxMask[lineSymbols + i] = true;
    }
    return target;
}

Line512
RestrictedCosetsCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const unsigned symbols_per_block = granularity_ / 2;
    const unsigned nblocks = blockCount();

    std::vector<State> aux(stored.begin() + lineSymbols, stored.end());
    const std::vector<uint8_t> bits =
        unpackBitsFromStates(aux, auxBits(), /*pair_friendly=*/true);
    const Mapping &c1 = tableICandidate(1);
    const Mapping &alt = tableICandidate(bits[0] ? 3 : 2);

    Line512 data;
    for (unsigned b = 0; b < nblocks; ++b) {
        const Mapping &map = bits[1 + b] ? alt : c1;
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            const unsigned idx = b * symbols_per_block + s;
            data.setSymbol(idx, map.decode(stored[idx]));
        }
    }
    return data;
}

} // namespace wlcrc::coset
