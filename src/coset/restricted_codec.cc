#include "restricted_codec.hh"

#include <cassert>

#include "coset/aux_coding.hh"

namespace wlcrc::coset
{

using pcm::State;

RestrictedCosetsCodec::RestrictedCosetsCodec(
    const pcm::EnergyModel &energy, unsigned granularity_bits)
    : LineCodec(energy), granularity_(granularity_bits)
{
    assert(granularity_ >= 2 && granularity_ % 2 == 0);
    assert(lineBits % granularity_ == 0);
}

std::string
RestrictedCosetsCodec::name() const
{
    return "3-r-cosets-" + std::to_string(granularity_);
}

unsigned
RestrictedCosetsCodec::cellCount() const
{
    return lineSymbols + auxCells();
}

void
RestrictedCosetsCodec::encodeInto(const Line512 &data,
                                  std::span<const State> stored,
                                  EncodeScratch &scratch,
                                  pcm::TargetLine &target) const
{
    assert(stored.size() == cellCount());
    const unsigned symbols_per_block = granularity_ / 2;
    const unsigned nblocks = blockCount();
    const Mapping &c1 = tableICandidate(1);

    // Evaluate both groups: {C1, C2} and {C1, C3}. For each group,
    // each block independently picks the cheaper member.
    double group_cost[2] = {0.0, 0.0};
    uint8_t *choice[2] = {scratch.pick0.data(),
                          scratch.pick1.data()};
    for (unsigned g = 0; g < 2; ++g) {
        const Mapping &alt = tableICandidate(g == 0 ? 2 : 3);
        for (unsigned b = 0; b < nblocks; ++b) {
            double cost_c1 = 0.0, cost_alt = 0.0;
            for (unsigned s = 0; s < symbols_per_block; ++s) {
                const unsigned idx = b * symbols_per_block + s;
                const unsigned sym = data.symbol(idx);
                const double *row = costRow(stored[idx]);
                cost_c1 += row[pcm::stateIndex(c1.encode(sym))];
                cost_alt += row[pcm::stateIndex(alt.encode(sym))];
            }
            if (cost_alt < cost_c1) {
                choice[g][b] = 1;
                group_cost[g] += cost_alt;
            } else {
                choice[g][b] = 0;
                group_cost[g] += cost_c1;
            }
        }
    }
    const unsigned g = group_cost[1] < group_cost[0] ? 1 : 0;
    const Mapping &alt = tableICandidate(g == 0 ? 2 : 3);

    target.reset(cellCount());
    target.setAuxStart(lineSymbols);
    for (unsigned b = 0; b < nblocks; ++b) {
        const Mapping &map = choice[g][b] ? alt : c1;
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            const unsigned idx = b * symbols_per_block + s;
            target[idx] = map.encode(data.symbol(idx));
        }
    }

    // Aux bits: [group bit, block 0 choice, block 1 choice, ...].
    uint8_t *bits = scratch.bitsA.data();
    bits[0] = static_cast<uint8_t>(g);
    for (unsigned b = 0; b < nblocks; ++b)
        bits[1 + b] = choice[g][b];
    State *aux = scratch.states.data();
    const unsigned aux_cells = packBitsToStates(
        bits, auxBits(), aux, /*pair_friendly=*/true);
    for (unsigned i = 0; i < aux_cells; ++i)
        target[lineSymbols + i] = aux[i];
}

Line512
RestrictedCosetsCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const unsigned symbols_per_block = granularity_ / 2;
    const unsigned nblocks = blockCount();

    std::vector<State> aux(stored.begin() + lineSymbols, stored.end());
    const std::vector<uint8_t> bits =
        unpackBitsFromStates(aux, auxBits(), /*pair_friendly=*/true);
    const Mapping &c1 = tableICandidate(1);
    const Mapping &alt = tableICandidate(bits[0] ? 3 : 2);

    Line512 data;
    for (unsigned b = 0; b < nblocks; ++b) {
        const Mapping &map = bits[1 + b] ? alt : c1;
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            const unsigned idx = b * symbols_per_block + s;
            data.setSymbol(idx, map.decode(stored[idx]));
        }
    }
    return data;
}

} // namespace wlcrc::coset
