#include "ncosets_codec.hh"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/simd.hh"

namespace wlcrc::coset
{

using pcm::State;

NCosetsCodec::NCosetsCodec(const pcm::EnergyModel &energy,
                           std::span<const Mapping *const> candidates,
                           unsigned granularity_bits)
    : LineCodec(energy),
      numCandidates_(static_cast<unsigned>(candidates.size())),
      granularity_(granularity_bits),
      pairs_(cheapStatePairs(energy))
{
    assert(numCandidates_ >= 2 && numCandidates_ <= maxCandidates);
    assert(granularity_ >= 2 && granularity_ % 2 == 0);
    assert(lineBits % granularity_ == 0);
    std::copy(candidates.begin(), candidates.end(),
              candidates_.begin());
    auxPerBlock_ = numCandidates_ <= 4 ? 1 : 2;
    rowStride_ = numCandidates_ <= 4 ? 4 : 8;
    buildCandidateCostRows(candidates, rowStride_, candRows_.data());
}

std::string
NCosetsCodec::name() const
{
    return std::to_string(numCandidates_) + "cosets-" +
           std::to_string(granularity_);
}

unsigned
NCosetsCodec::cellCount() const
{
    return lineSymbols + blockCount() * auxPerBlock_;
}

void
NCosetsCodec::auxStatesFor(unsigned c, State &a0, State &a1) const
{
    if (auxPerBlock_ == 1) {
        a0 = auxIndexState(c);
        a1 = State::S1; // unused
    } else {
        a0 = pairs_[c].first;
        a1 = pairs_[c].second;
    }
}

unsigned
NCosetsCodec::candidateFromAux(State a0, State a1) const
{
    if (auxPerBlock_ == 1)
        return auxIndexFromState(a0);
    for (unsigned c = 0; c < numCandidates_; ++c)
        if (pairs_[c].first == a0 && pairs_[c].second == a1)
            return c;
    // Unreachable for states produced by encode(); treat as C1 so
    // corrupted aux cells degrade gracefully.
    return 0;
}

void
NCosetsCodec::encodeInto(const Line512 &data,
                         std::span<const State> stored,
                         EncodeScratch &scratch,
                         pcm::TargetLine &target) const
{
    assert(stored.size() == cellCount());
    (void)scratch;
    target.reset(cellCount());
    target.setAuxStart(lineSymbols);
    const unsigned symbols_per_block = granularity_ / 2;
    const unsigned nblocks = blockCount();

    for (unsigned b = 0; b < nblocks; ++b) {
        const unsigned sym0 = b * symbols_per_block;
        const unsigned aux0 = lineSymbols + b * auxPerBlock_;

        // One pass over the block's cells, all candidates scored per
        // cell from its cost row (per-candidate accumulation order is
        // still cell order, so sums are bit-identical to the scalar
        // double loop). Blocks wider than a word are fed to the
        // kernel in 32-cell word segments, same accumulators.
        std::array<double, 8> cost{};
        if (!scalarScoringForTest()) [[likely]] {
            const uint8_t *sb =
                reinterpret_cast<const uint8_t *>(stored.data());
            const simd::Ops &k = simd::ops();
            const unsigned hiSym = sym0 + symbols_per_block - 1;
            for (unsigned w = sym0 / 32; w <= hiSym / 32; ++w) {
                const unsigned lo =
                    sym0 > w * 32 ? sym0 - w * 32 : 0;
                const unsigned hi =
                    hiSym < w * 32 + 31 ? hiSym - w * 32 : 31;
                if (rowStride_ == 4)
                    k.accumRows4(candRows_.data(), sb + w * 32,
                                 data.word(w), lo, hi, cost.data());
                else
                    k.accumRows8(candRows_.data(), sb + w * 32,
                                 data.word(w), lo, hi, cost.data());
            }
        } else {
            for (unsigned s = 0; s < symbols_per_block; ++s) {
                const unsigned sym = data.symbol(sym0 + s);
                const double *row = costRow(stored[sym0 + s]);
                for (unsigned c = 0; c < numCandidates_; ++c) {
                    cost[c] += row[pcm::stateIndex(
                        candidates_[c]->encode(sym))];
                }
            }
        }

        double best_cost = std::numeric_limits<double>::infinity();
        unsigned best = 0;
        for (unsigned c = 0; c < numCandidates_; ++c) {
            State a0, a1;
            auxStatesFor(c, a0, a1);
            double total = cost[c] + cellCost(stored[aux0], a0);
            if (auxPerBlock_ == 2)
                total += cellCost(stored[aux0 + 1], a1);
            if (total < best_cost) {
                best_cost = total;
                best = c;
            }
        }

        const Mapping &map = *candidates_[best];
        {
            uint8_t *tgt =
                reinterpret_cast<uint8_t *>(target.states());
            const simd::Ops &k = simd::ops();
            const unsigned hiSym = sym0 + symbols_per_block - 1;
            for (unsigned w = sym0 / 32; w <= hiSym / 32; ++w) {
                const unsigned lo =
                    sym0 > w * 32 ? sym0 - w * 32 : 0;
                const unsigned hi =
                    hiSym < w * 32 + 31 ? hiSym - w * 32 : 31;
                k.mapSymbols(data.word(w), map.stateTable(), lo, hi,
                             tgt + w * 32);
            }
        }
        State a0, a1;
        auxStatesFor(best, a0, a1);
        target[aux0] = a0;
        if (auxPerBlock_ == 2)
            target[aux0 + 1] = a1;
    }
}

Line512
NCosetsCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    Line512 data;
    const unsigned symbols_per_block = granularity_ / 2;
    const unsigned nblocks = blockCount();
    for (unsigned b = 0; b < nblocks; ++b) {
        const unsigned sym0 = b * symbols_per_block;
        const unsigned aux0 = lineSymbols + b * auxPerBlock_;
        const unsigned c = candidateFromAux(
            stored[aux0],
            auxPerBlock_ == 2 ? stored[aux0 + 1] : State::S1);
        const Mapping &map =
            *candidates_[c < numCandidates_ ? c : 0];
        for (unsigned s = 0; s < symbols_per_block; ++s)
            data.setSymbol(sym0 + s, map.decode(stored[sym0 + s]));
    }
    return data;
}

} // namespace wlcrc::coset
