#include "ncosets_codec.hh"

#include <cassert>
#include <limits>

namespace wlcrc::coset
{

using pcm::State;

NCosetsCodec::NCosetsCodec(const pcm::EnergyModel &energy,
                           std::vector<const Mapping *> candidates,
                           unsigned granularity_bits)
    : LineCodec(energy), candidates_(std::move(candidates)),
      granularity_(granularity_bits),
      pairs_(cheapStatePairs(energy))
{
    assert(candidates_.size() >= 2 && candidates_.size() <= 6);
    assert(granularity_ >= 2 && granularity_ % 2 == 0);
    assert(lineBits % granularity_ == 0);
    auxPerBlock_ = candidates_.size() <= 4 ? 1 : 2;
}

std::string
NCosetsCodec::name() const
{
    return std::to_string(candidates_.size()) + "cosets-" +
           std::to_string(granularity_);
}

unsigned
NCosetsCodec::cellCount() const
{
    return lineSymbols + blockCount() * auxPerBlock_;
}

void
NCosetsCodec::auxStatesFor(unsigned c, State &a0, State &a1) const
{
    if (auxPerBlock_ == 1) {
        a0 = auxIndexState(c);
        a1 = State::S1; // unused
    } else {
        a0 = pairs_[c].first;
        a1 = pairs_[c].second;
    }
}

unsigned
NCosetsCodec::candidateFromAux(State a0, State a1) const
{
    if (auxPerBlock_ == 1)
        return auxIndexFromState(a0);
    for (unsigned c = 0; c < candidates_.size(); ++c)
        if (pairs_[c].first == a0 && pairs_[c].second == a1)
            return c;
    // Unreachable for states produced by encode(); treat as C1 so
    // corrupted aux cells degrade gracefully.
    return 0;
}

pcm::TargetLine
NCosetsCodec::encode(const Line512 &data,
                     const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    pcm::TargetLine target(cellCount());
    const unsigned symbols_per_block = granularity_ / 2;
    const unsigned nblocks = blockCount();

    for (unsigned b = 0; b < nblocks; ++b) {
        const unsigned sym0 = b * symbols_per_block;
        const unsigned aux0 = lineSymbols + b * auxPerBlock_;

        double best_cost = std::numeric_limits<double>::infinity();
        unsigned best = 0;
        for (unsigned c = 0; c < candidates_.size(); ++c) {
            const Mapping &map = *candidates_[c];
            double cost = 0.0;
            for (unsigned s = 0; s < symbols_per_block; ++s) {
                cost += cellCost(stored[sym0 + s],
                                 map.encode(data.symbol(sym0 + s)));
            }
            State a0, a1;
            auxStatesFor(c, a0, a1);
            cost += cellCost(stored[aux0], a0);
            if (auxPerBlock_ == 2)
                cost += cellCost(stored[aux0 + 1], a1);
            if (cost < best_cost) {
                best_cost = cost;
                best = c;
            }
        }

        const Mapping &map = *candidates_[best];
        for (unsigned s = 0; s < symbols_per_block; ++s) {
            target.cells[sym0 + s] =
                map.encode(data.symbol(sym0 + s));
        }
        State a0, a1;
        auxStatesFor(best, a0, a1);
        target.cells[aux0] = a0;
        target.auxMask[aux0] = true;
        if (auxPerBlock_ == 2) {
            target.cells[aux0 + 1] = a1;
            target.auxMask[aux0 + 1] = true;
        }
    }
    return target;
}

Line512
NCosetsCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    Line512 data;
    const unsigned symbols_per_block = granularity_ / 2;
    const unsigned nblocks = blockCount();
    for (unsigned b = 0; b < nblocks; ++b) {
        const unsigned sym0 = b * symbols_per_block;
        const unsigned aux0 = lineSymbols + b * auxPerBlock_;
        const unsigned c = candidateFromAux(
            stored[aux0],
            auxPerBlock_ == 2 ? stored[aux0 + 1] : State::S1);
        const Mapping &map =
            *candidates_[c < candidates_.size() ? c : 0];
        for (unsigned s = 0; s < symbols_per_block; ++s)
            data.setSymbol(sym0 + s, map.decode(stored[sym0 + s]));
    }
    return data;
}

} // namespace wlcrc::coset
