/**
 * @file
 * Helpers for storing auxiliary (candidate-selector) information in
 * dedicated MLC cells.
 *
 * Two flavours are used by the paper:
 *  - index cells: candidate i stored directly as state S(i+1), used
 *    for up to 4 candidates (Section IX-A: C1->S1 ... C4->S4, so the
 *    most frequent candidates occupy the low-energy states);
 *  - cheap state pairs: for 6 candidates, the six cheapest of the 16
 *    two-cell state combinations (Section III), so the aux cells of
 *    6cosets rarely hold an expensive state;
 *  - packed bits: raw auxiliary bit strings (restricted coset coding)
 *    written through the default mapping, two bits per cell, with the
 *    '0' value landing on low-energy states.
 */

#ifndef WLCRC_COSET_AUX_CODING_HH
#define WLCRC_COSET_AUX_CODING_HH

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "pcm/cell.hh"
#include "pcm/energy_model.hh"

namespace wlcrc::coset
{

/** candidate index <-> one cell state (for <= 4 candidates). */
pcm::State auxIndexState(unsigned candidate);
unsigned auxIndexFromState(pcm::State s);

/**
 * The six cheapest ordered (cell, cell) state pairs under @p energy,
 * in increasing energy order. Deterministic tie-breaking.
 */
std::array<std::pair<pcm::State, pcm::State>, 6>
cheapStatePairs(const pcm::EnergyModel &energy);

/**
 * Pack @p bits (LSB-first) into cell states. By default a
 * frequency-ordered mapping is used — 00 -> S1, 11 -> S2, 01 -> S3,
 * 10 -> S4 — so the common all-zero and all-one selector patterns
 * land on the two low-energy states; pass pair_friendly = false for
 * the plain default (C1) mapping. @p cells receives ceil(bits/2)
 * states.
 */
void packBitsToStates(const std::vector<uint8_t> &bits,
                      std::vector<pcm::State> &cells,
                      bool pair_friendly = false);

/**
 * Allocation-free variant for the encode hot path: packs @p count
 * bits from @p bits into ceil(count/2) states at @p cells.
 * @return the number of states written.
 */
unsigned packBitsToStates(const uint8_t *bits, unsigned count,
                          pcm::State *cells,
                          bool pair_friendly = false);

/** Inverse of packBitsToStates; returns @p count bits. */
std::vector<uint8_t> unpackBitsFromStates(
    const std::vector<pcm::State> &cells, unsigned count,
    bool pair_friendly = false);

} // namespace wlcrc::coset

#endif // WLCRC_COSET_AUX_CODING_HH
