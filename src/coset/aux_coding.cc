#include "aux_coding.hh"

#include <algorithm>
#include <cassert>

#include "coset/mapping.hh"

namespace wlcrc::coset
{

using pcm::State;

State
auxIndexState(unsigned candidate)
{
    assert(candidate < 4);
    return pcm::stateFromIndex(candidate);
}

unsigned
auxIndexFromState(State s)
{
    return pcm::stateIndex(s);
}

std::array<std::pair<State, State>, 6>
cheapStatePairs(const pcm::EnergyModel &energy)
{
    struct Entry
    {
        double cost;
        unsigned a, b;
    };
    std::array<Entry, 16> all{};
    for (unsigned a = 0; a < 4; ++a) {
        for (unsigned b = 0; b < 4; ++b) {
            all[a * 4 + b] = {
                energy.setPj(pcm::stateFromIndex(a)) +
                    energy.setPj(pcm::stateFromIndex(b)),
                a, b};
        }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Entry &x, const Entry &y) {
                         return x.cost < y.cost;
                     });
    std::array<std::pair<State, State>, 6> out{};
    for (unsigned i = 0; i < 6; ++i) {
        out[i] = {pcm::stateFromIndex(all[i].a),
                  pcm::stateFromIndex(all[i].b)};
    }
    return out;
}

namespace
{

/** Frequency-ordered bit-pair mapping: 00->S1, 11->S2, 01->S3,
 *  10->S4 (selector bits flip in runs, so uniform pairs dominate). */
const Mapping &
pairFriendlyMapping()
{
    static const Mapping m({pcm::State::S1, pcm::State::S3,
                            pcm::State::S4, pcm::State::S2},
                           "AuxPair");
    return m;
}

} // namespace

void
packBitsToStates(const std::vector<uint8_t> &bits,
                 std::vector<State> &cells, bool pair_friendly)
{
    cells.resize((bits.size() + 1) / 2);
    packBitsToStates(bits.data(),
                     static_cast<unsigned>(bits.size()),
                     cells.data(), pair_friendly);
}

unsigned
packBitsToStates(const uint8_t *bits, unsigned count, State *cells,
                 bool pair_friendly)
{
    const Mapping &map =
        pair_friendly ? pairFriendlyMapping() : defaultMapping();
    unsigned out = 0;
    for (unsigned i = 0; i < count; i += 2) {
        unsigned sym = bits[i] & 1;
        if (i + 1 < count)
            sym |= (bits[i + 1] & 1) << 1;
        cells[out++] = map.encode(sym);
    }
    return out;
}

std::vector<uint8_t>
unpackBitsFromStates(const std::vector<State> &cells, unsigned count,
                     bool pair_friendly)
{
    const Mapping &map =
        pair_friendly ? pairFriendlyMapping() : defaultMapping();
    std::vector<uint8_t> bits(count, 0);
    for (unsigned i = 0; i < count; ++i) {
        const unsigned sym = map.decode(cells[i / 2]);
        bits[i] = (sym >> (i & 1)) & 1;
    }
    return bits;
}

} // namespace wlcrc::coset
