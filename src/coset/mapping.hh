/**
 * @file
 * Symbol <-> cell-state mappings and the Table I coset candidates.
 *
 * An encoding of a 2-bit data symbol into a 4-level cell is a
 * bijection between the four symbols {00, 01, 10, 11} and the four
 * states {S1..S4}. The paper's default mapping (candidate C1) sends
 * 00->S1, 10->S2, 11->S3, 01->S4; candidates C2..C4 (Table I) remap
 * the frequent symbols 00/11 onto the two low-energy states.
 */

#ifndef WLCRC_COSET_MAPPING_HH
#define WLCRC_COSET_MAPPING_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "pcm/cell.hh"

namespace wlcrc::coset
{

/** A bijective mapping of 2-bit symbols onto cell states. */
class Mapping
{
  public:
    /**
     * @param symbol_to_state  state for each symbol value 0..3, where
     *        a symbol's integer value has bit1 = the more significant
     *        bit of the pair (paper notation 'b1 b0').
     * @param name             short display name (e.g. "C1").
     */
    Mapping(const std::array<pcm::State, 4> &symbol_to_state,
            std::string name);

    /** @return state encoding @p symbol (0..3). */
    pcm::State
    encode(unsigned symbol) const
    {
        return toState_[symbol & 3];
    }

    /** @return symbol decoded from @p state. */
    unsigned
    decode(pcm::State state) const
    {
        return fromState_[pcm::stateIndex(state)];
    }

    const std::string &name() const { return name_; }

    /**
     * The symbol -> state table as raw bytes (State is uint8_t),
     * indexable by symbol value: the LUT format the SIMD
     * symbol-mapping kernel consumes.
     */
    const uint8_t *
    stateTable() const
    {
        return reinterpret_cast<const uint8_t *>(toState_.data());
    }

    bool
    operator==(const Mapping &o) const
    {
        return toState_ == o.toState_;
    }

  private:
    std::array<pcm::State, 4> toState_;
    std::array<uint8_t, 4> fromState_;
    std::string name_;
};

/** The default mapping C1: 00->S1, 10->S2, 11->S3, 01->S4. */
const Mapping &defaultMapping();

/**
 * Table I candidate @p k (1..4):
 *   C1 = default;
 *   C2: 11->S1, 00->S2, 10->S3, 01->S4 (biased data);
 *   C3: 11->S1, 01->S2, 00->S3, 10->S4 (complements C1);
 *   C4: 11->S1, 00->S2, 01->S3, 10->S4.
 */
const Mapping &tableICandidate(unsigned k);

/**
 * Candidates C1..Cn in Table I order (n = 1..4). Returns a view of a
 * cached static array — candidate lookup is free in inner loops.
 */
std::span<const Mapping *const> tableICandidates(unsigned n);

/**
 * The six candidates of Wang et al. (ICCD'11): for each unordered
 * pair of symbols, a mapping that places that pair on {S1, S2} while
 * staying as close to the default mapping as possible. Cached; the
 * returned view is valid for the program's lifetime.
 */
std::span<const Mapping *const> sixCosetCandidates();

} // namespace wlcrc::coset

#endif // WLCRC_COSET_MAPPING_HH
