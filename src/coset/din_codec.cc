#include "din_codec.hh"

#include <algorithm>
#include <cassert>

namespace wlcrc::coset
{

using pcm::State;

namespace
{

// The eight cheapest 4-bit codewords (two cells) that never place a
// cell in the top-energy state S4 (= symbol 01 under the default
// mapping), ordered by write energy. Listed as (high symbol, low
// symbol) packed into 4 bits.
constexpr unsigned codewords[8] = {
    (0 << 2) | 0, // 00,00 -> S1,S1
    (0 << 2) | 2, // 00,10 -> S1,S2
    (2 << 2) | 0, // 10,00 -> S2,S1
    (2 << 2) | 2, // 10,10 -> S2,S2
    (0 << 2) | 3, // 00,11 -> S1,S3
    (3 << 2) | 0, // 11,00 -> S3,S1
    (2 << 2) | 3, // 10,11 -> S2,S3
    (3 << 2) | 2, // 11,10 -> S3,S2
};

constexpr unsigned invalidGroup = 0xff;

/** codeword -> 3-bit group lookup, 0xff for non-codewords. */
constexpr std::array<unsigned, 16>
buildInverse()
{
    std::array<unsigned, 16> inv{};
    for (auto &v : inv)
        v = invalidGroup;
    for (unsigned g = 0; g < 8; ++g)
        inv[codewords[g]] = g;
    return inv;
}

constexpr std::array<unsigned, 16> inverse = buildInverse();

} // namespace

unsigned
DinCodec::expand3to4(unsigned v)
{
    assert(v < 8);
    return codewords[v];
}

unsigned
DinCodec::shrink4to3(unsigned cw)
{
    assert(cw < 16);
    const unsigned g = inverse[cw];
    // Non-codewords can only appear through uncorrected disturbance;
    // degrade to group 0 rather than crashing the pipeline.
    return g == invalidGroup ? 0 : g;
}

DinCodec::DinCodec(const pcm::EnergyModel &energy)
    : LineCodec(energy), bch_(10, 2, expandedBits)
{
    assert(bch_.parityBits() == bchParityBits);
    assert(expandedBits + bchParityBits == lineBits);
}

void
DinCodec::encodeInto(const Line512 &data,
                     std::span<const State> stored,
                     EncodeScratch &scratch,
                     pcm::TargetLine &target) const
{
    assert(stored.size() == cellCount());
    (void)stored;
    const Mapping &map = defaultMapping();
    target.reset(cellCount());
    target.setAuxStart(lineSymbols);

    const auto stream = compressor_.compress(data);
    if (!stream || stream->size() > maxCompressedBits) {
        // Raw format: flag = S2 (second-lowest energy state).
        for (unsigned s = 0; s < lineSymbols; ++s)
            target[s] = map.encode(data.symbol(s));
        target[lineSymbols] = State::S2;
        return;
    }

    // Pad the compressed stream to 369 bits, expand 3 -> 4, add BCH.
    uint8_t *bits = scratch.bitsA.data();
    std::fill_n(bits, maxCompressedBits, uint8_t{0});
    for (unsigned i = 0; i < stream->size(); ++i)
        bits[i] = static_cast<uint8_t>(stream->read(i, 1));

    uint8_t *expanded = scratch.bitsB.data();
    for (unsigned g = 0; g < dataGroups; ++g) {
        const unsigned v = bits[g * 3] | (bits[g * 3 + 1] << 1) |
                           (bits[g * 3 + 2] << 2);
        const unsigned cw = expand3to4(v);
        for (unsigned b = 0; b < 4; ++b)
            expanded[g * 4 + b] = (cw >> b) & 1;
    }
    uint8_t codeword[lineBits];
    bch_.encodeInto(expanded, codeword);

    Line512 encoded;
    for (unsigned i = 0; i < lineBits; ++i)
        encoded.setBit(i, codeword[i]);
    for (unsigned s = 0; s < lineSymbols; ++s)
        target[s] = map.encode(encoded.symbol(s));
    target[lineSymbols] = State::S1; // flag: encoded
}

Line512
DinCodec::decode(const std::vector<State> &stored) const
{
    assert(stored.size() == cellCount());
    const Mapping &map = defaultMapping();
    Line512 raw;
    for (unsigned s = 0; s < lineSymbols; ++s)
        raw.setSymbol(s, map.decode(stored[s]));

    if (stored[lineSymbols] != State::S1)
        return raw; // uncompressed format

    std::vector<uint8_t> codeword(lineBits);
    for (unsigned i = 0; i < lineBits; ++i)
        codeword[i] = static_cast<uint8_t>(raw.bit(i));
    bch_.decode(codeword); // corrects up to 2 disturbance errors

    std::vector<uint8_t> bits(maxCompressedBits, 0);
    for (unsigned g = 0; g < dataGroups; ++g) {
        unsigned cw = 0;
        for (unsigned b = 0; b < 4; ++b)
            cw |= codeword[g * 4 + b] << b;
        const unsigned v = shrink4to3(cw);
        bits[g * 3] = v & 1;
        bits[g * 3 + 1] = (v >> 1) & 1;
        bits[g * 3 + 2] = (v >> 2) & 1;
    }
    compress::BitBuffer stream;
    for (unsigned i = 0; i < maxCompressedBits; ++i)
        stream.append(bits[i], 1);
    return compressor_.decompress(stream);
}

} // namespace wlcrc::coset
