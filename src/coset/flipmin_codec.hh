/**
 * @file
 * FlipMin (Jacobvitz et al., HPCA'13), adapted to 512-bit MLC lines
 * as in the paper's evaluation: 16 coset candidates — 512-bit XOR
 * masks derived from the dual of a (72,64) Hamming code — and the
 * candidate minimising the differential write energy is selected.
 * The 4-bit candidate index occupies two dedicated aux cells.
 */

#ifndef WLCRC_COSET_FLIPMIN_CODEC_HH
#define WLCRC_COSET_FLIPMIN_CODEC_HH

#include <vector>

#include "coset/codec.hh"
#include "coset/mapping.hh"

namespace wlcrc::coset
{

/** FlipMin with 16 XOR-mask candidates over the whole line. */
class FlipMinCodec : public LineCodec
{
  public:
    /**
     * @param energy  write-energy model.
     * @param seed    deterministic seed for mask derivation.
     */
    explicit FlipMinCodec(const pcm::EnergyModel &energy,
                          uint64_t seed = 0x51f0);

    std::string name() const override { return "FlipMin"; }
    unsigned cellCount() const override { return lineSymbols + 2; }

    void encodeInto(const Line512 &data,
                    std::span<const pcm::State> stored,
                    EncodeScratch &scratch,
                    pcm::TargetLine &target) const override;

    Line512 decode(
        const std::vector<pcm::State> &stored) const override;

    static constexpr unsigned numCandidates = 16;

  private:
    std::vector<Line512> masks_;
};

} // namespace wlcrc::coset

#endif // WLCRC_COSET_FLIPMIN_CODEC_HH
