/**
 * @file
 * LineCodec: the common interface of every encoding scheme evaluated
 * in the paper (Baseline, FNW, FlipMin, DIN, 6cosets, COC+4cosets,
 * WLC+4cosets, WLCRC, ...).
 *
 * A codec translates a 512-bit payload into target cell states for a
 * stored line of `cellCount()` cells (256 data cells plus any
 * dedicated auxiliary cells), *given* the currently stored states so
 * that candidate selection can minimise the differential-write cost.
 * Decoding recovers the payload from stored states alone: formats are
 * self-describing.
 *
 * Hot-path design: the replay loop calls encodeInto() with a reusable
 * EncodeScratch and TargetLine, so a steady-state write performs no
 * heap allocation. Candidate scoring goes through per-stored-state
 * *cost rows* — a 4x4 writeEnergy table precomputed per EnergyModel —
 * turning the O(cells x candidates) double math of the coset search
 * into array indexing. encodeBatch() encodes a block of independent
 * (distinct-line) writes per virtual dispatch, which is how the
 * sharded replay drives codecs.
 */

#ifndef WLCRC_COSET_CODEC_HH
#define WLCRC_COSET_CODEC_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/line512.hh"
#include "pcm/energy_model.hh"
#include "pcm/write_unit.hh"

namespace wlcrc::coset
{

class Mapping;

namespace detail
{
/** Global scalar-scoring test switch (see setScalarScoringForTest). */
inline std::atomic<bool> scalarScoringFlag{false};
} // namespace detail

/**
 * Reusable per-replayer encode workspace, threaded through
 * encodeInto() so codecs stage selector bits, per-block picks and
 * compression streams without allocating per write. The fixed arrays
 * cover the selection codecs outright; the growable buffers (used by
 * the compression-backed DIN format) reach steady-state capacity
 * after the first few writes.
 *
 * Contents are scratch: no call may assume anything about the values
 * left by a previous call.
 */
struct EncodeScratch
{
    /** Per-block candidate picks (restricted/grouped selection). */
    std::array<uint8_t, lineSymbols> pick0{};
    std::array<uint8_t, lineSymbols> pick1{};
    /** Bit-string staging (selector bits, DIN group bits). */
    std::array<uint8_t, lineBits> bitsA{};
    std::array<uint8_t, lineBits> bitsB{};
    /** Aux cell-state staging. */
    std::array<pcm::State, lineSymbols> states{};
    /** Growable staging for compression-backed formats. */
    std::vector<uint8_t> bytes;
};

/** Abstract line encoding scheme. */
class LineCodec
{
  public:
    explicit LineCodec(const pcm::EnergyModel &energy);

    virtual ~LineCodec() = default;

    /** Display name used by benches and reports. */
    virtual std::string name() const = 0;

    /** Total stored cells per line (data + dedicated aux cells). */
    virtual unsigned cellCount() const = 0;

    /**
     * Encode @p data against the currently stored cell states into
     * @p target (reset by the codec). The hot-path entry: performs no
     * heap allocation in steady state.
     *
     * @param data     the new 512-bit payload.
     * @param stored   current states of all cellCount() cells.
     * @param scratch  reusable workspace owned by the caller.
     * @param target   receives target states + aux-region layout.
     */
    virtual void encodeInto(const Line512 &data,
                            std::span<const pcm::State> stored,
                            EncodeScratch &scratch,
                            pcm::TargetLine &target) const = 0;

    /**
     * One independent line write of a batch: every job's line is
     * distinct, so jobs do not observe each other's targets.
     */
    struct EncodeJob
    {
        const Line512 *data;        //!< payload to store
        const pcm::State *stored;   //!< cellCount() current states
        pcm::TargetLine *target;    //!< output slot
    };

    /**
     * Encode a block of independent writes. The default loops over
     * encodeInto(); hot codecs may override to amortise per-call
     * setup across a shard's block of transactions.
     */
    virtual void encodeBatch(const EncodeJob *jobs, std::size_t count,
                             EncodeScratch &scratch) const;

    /**
     * Convenience wrapper for tests, tools and examples: allocates a
     * fresh target and scratch per call.
     */
    pcm::TargetLine encode(const Line512 &data,
                           const std::vector<pcm::State> &stored) const;

    /** Recover the payload from stored states. */
    virtual Line512 decode(
        const std::vector<pcm::State> &stored) const = 0;

    const pcm::EnergyModel &energyModel() const { return energy_; }

    /**
     * Test hook: when set, cost rows are recomputed from the
     * EnergyModel on every fetch (the pre-refactor scalar scoring)
     * instead of read from the cached 4x4 table. Selection must be
     * identical either way; tests/encode_equivalence_test.cc replays
     * every scheme under both modes and asserts it.
     */
    static void setScalarScoringForTest(bool on);

    static bool
    scalarScoringForTest()
    {
        return detail::scalarScoringFlag.load(
            std::memory_order_relaxed);
    }

  protected:
    /** Cost of writing @p target into a cell storing @p stored. */
    double
    cellCost(pcm::State stored, pcm::State target) const
    {
        return costRow(stored)[pcm::stateIndex(target)];
    }

    /**
     * The 4-entry write-cost row of a cell storing @p stored:
     * row[stateIndex(t)] == writeEnergy(stored, t). Under the scalar
     * test hook the row is recomputed from the EnergyModel into a
     * small thread-local ring of staging buffers, so callers may
     * hold at most four rows at once in that mode (none hold more
     * than two).
     */
    const double *
    costRow(pcm::State stored) const
    {
        if (scalarScoringForTest()) [[unlikely]]
            return scalarRow(stored);
        return costs_[pcm::stateIndex(stored)].data();
    }

    /**
     * Build the per-(stored state, symbol) candidate-cost rows the
     * SIMD scoring kernels consume:
     *   rows[(s * 4 + sym) * stride + c] =
     *       costRow(s)[stateIndex(candidates[c]->encode(sym))]
     * with lanes past the candidate count zero-padded. Values are
     * copied from the cached cost table, so kernel scoring is
     * numerically identical to cached scalar scoring by
     * construction. @p stride is 4 or 8 (accumRows4 / accumRows8).
     */
    void buildCandidateCostRows(
        std::span<const Mapping *const> candidates, unsigned stride,
        double *rows) const;

  private:
    const double *scalarRow(pcm::State stored) const;

    pcm::EnergyModel energy_;
    std::array<std::array<double, pcm::numStates>, pcm::numStates>
        costs_;
};

using CodecPtr = std::unique_ptr<LineCodec>;

} // namespace wlcrc::coset

#endif // WLCRC_COSET_CODEC_HH
