/**
 * @file
 * LineCodec: the common interface of every encoding scheme evaluated
 * in the paper (Baseline, FNW, FlipMin, DIN, 6cosets, COC+4cosets,
 * WLC+4cosets, WLCRC, ...).
 *
 * A codec translates a 512-bit payload into target cell states for a
 * stored line of `cellCount()` cells (256 data cells plus any
 * dedicated auxiliary cells), *given* the currently stored states so
 * that candidate selection can minimise the differential-write cost.
 * Decoding recovers the payload from stored states alone: formats are
 * self-describing.
 */

#ifndef WLCRC_COSET_CODEC_HH
#define WLCRC_COSET_CODEC_HH

#include <memory>
#include <string>
#include <vector>

#include "common/line512.hh"
#include "pcm/energy_model.hh"
#include "pcm/write_unit.hh"

namespace wlcrc::coset
{

/** Abstract line encoding scheme. */
class LineCodec
{
  public:
    explicit LineCodec(const pcm::EnergyModel &energy)
        : energy_(energy)
    {}

    virtual ~LineCodec() = default;

    /** Display name used by benches and reports. */
    virtual std::string name() const = 0;

    /** Total stored cells per line (data + dedicated aux cells). */
    virtual unsigned cellCount() const = 0;

    /**
     * Encode @p data against the currently stored cell states.
     *
     * @param data    the new 512-bit payload.
     * @param stored  current states of all cellCount() cells.
     * @return target states + aux-region mask for the write unit.
     */
    virtual pcm::TargetLine encode(
        const Line512 &data,
        const std::vector<pcm::State> &stored) const = 0;

    /** Recover the payload from stored states. */
    virtual Line512 decode(
        const std::vector<pcm::State> &stored) const = 0;

    const pcm::EnergyModel &energyModel() const { return energy_; }

  protected:
    /** Cost of writing @p target into a cell storing @p stored. */
    double
    cellCost(pcm::State stored, pcm::State target) const
    {
        return energy_.writeEnergy(stored, target);
    }

  private:
    pcm::EnergyModel energy_;
};

using CodecPtr = std::unique_ptr<LineCodec>;

} // namespace wlcrc::coset

#endif // WLCRC_COSET_CODEC_HH
