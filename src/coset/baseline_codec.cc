#include "baseline_codec.hh"

namespace wlcrc::coset
{

pcm::TargetLine
BaselineCodec::encode(const Line512 &data,
                      const std::vector<pcm::State> &stored) const
{
    (void)stored; // No candidate selection: nothing to optimise.
    pcm::TargetLine target(lineSymbols);
    const Mapping &map = defaultMapping();
    for (unsigned s = 0; s < lineSymbols; ++s)
        target.cells[s] = map.encode(data.symbol(s));
    return target;
}

Line512
BaselineCodec::decode(const std::vector<pcm::State> &stored) const
{
    Line512 data;
    const Mapping &map = defaultMapping();
    for (unsigned s = 0; s < lineSymbols; ++s)
        data.setSymbol(s, map.decode(stored[s]));
    return data;
}

} // namespace wlcrc::coset
