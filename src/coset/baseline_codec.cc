#include "baseline_codec.hh"

#include "common/simd.hh"

namespace wlcrc::coset
{

void
BaselineCodec::encodeInto(const Line512 &data,
                          std::span<const pcm::State> stored,
                          EncodeScratch &scratch,
                          pcm::TargetLine &target) const
{
    (void)stored;  // No candidate selection: nothing to optimise.
    (void)scratch;
    target.reset(lineSymbols);
    const Mapping &map = defaultMapping();
    uint8_t *tgt = reinterpret_cast<uint8_t *>(target.states());
    const simd::Ops &k = simd::ops();
    for (unsigned w = 0; w < lineWords; ++w)
        k.mapSymbols(data.word(w), map.stateTable(), 0, 31,
                     tgt + w * 32);
}

Line512
BaselineCodec::decode(const std::vector<pcm::State> &stored) const
{
    Line512 data;
    const Mapping &map = defaultMapping();
    for (unsigned s = 0; s < lineSymbols; ++s)
        data.setSymbol(s, map.decode(stored[s]));
    return data;
}

} // namespace wlcrc::coset
