#include "baseline_codec.hh"

namespace wlcrc::coset
{

void
BaselineCodec::encodeInto(const Line512 &data,
                          std::span<const pcm::State> stored,
                          EncodeScratch &scratch,
                          pcm::TargetLine &target) const
{
    (void)stored;  // No candidate selection: nothing to optimise.
    (void)scratch;
    target.reset(lineSymbols);
    const Mapping &map = defaultMapping();
    for (unsigned w = 0; w < lineWords; ++w) {
        uint64_t word = data.word(w);
        for (unsigned k = 0; k < 32; ++k) {
            target[w * 32 + k] =
                map.encode(static_cast<unsigned>(word & 3));
            word >>= 2;
        }
    }
}

Line512
BaselineCodec::decode(const std::vector<pcm::State> &stored) const
{
    Line512 data;
    const Mapping &map = defaultMapping();
    for (unsigned s = 0; s < lineSymbols; ++s)
        data.setSymbol(s, map.decode(stored[s]));
    return data;
}

} // namespace wlcrc::coset
