/**
 * @file
 * Configuration records of the wear-leveling subsystem.
 *
 * Both records travel inside ExperimentSpec, so they need a compact,
 * canonical text form for the spec codec (process-backend worker
 * files and cache keys): format*() emits it, parse*() accepts it
 * plus the abbreviated forms the CLI flags take. Defaults are chosen
 * so a default-constructed record means "feature off" and the spec
 * codec can omit the key entirely, keeping existing canonical specs
 * (and their cache hashes) byte-identical.
 */

#ifndef WLCRC_WEARLEVEL_CONFIG_HH
#define WLCRC_WEARLEVEL_CONFIG_HH

#include <cstdint>
#include <string>

namespace wlcrc::wearlevel
{

/**
 * Which remapping scheme sits between the replayer and the device,
 * and its knobs. `scheme` is one of:
 *  - "none"        identity mapping (byte-identical to no leveler);
 *  - "start-gap"   rotating gap line per region (Qureshi-style):
 *                  every `period` writes to a region, the gap slot
 *                  advances by one line copy;
 *  - "page-remap"  write-histogram-driven hot/cold page swap: every
 *                  `period` writes, the hottest logical page swaps
 *                  physical location with the occupant of the
 *                  least-written physical page.
 */
struct LevelerConfig
{
    std::string scheme = "none";
    uint64_t period = 100;    //!< writes between leveling actions
    unsigned regionLines = 64; //!< start-gap: logical lines/region
    unsigned pageLines = 8;    //!< page-remap: lines per page

    bool active() const { return scheme != "none"; }
    bool operator==(const LevelerConfig &o) const = default;
};

/**
 * Per-cell endurance budgets and failure criteria of a lifetime
 * replay. `meanWrites == 0` disables endurance modelling entirely.
 * Budgets vary deterministically around the mean: cell (line, c)
 * gets max(1, round(mean * (1 + cov * z))) writes, with z a hash-
 * derived standard-normal deviate (clamped to ±3) of (line, c,
 * seed) — no RNG state, so budgets are identical however the replay
 * is scheduled or resumed.
 *
 * Failure criteria: a line dies when more than `eccDeadCells` of its
 * cells have exhausted their budget (0 = first-cell failure); the
 * device dies with its first dead line. `maxWrites` caps the demand
 * writes of a loop-to-failure replay (0 = the engine's default cap).
 */
struct EnduranceConfig
{
    uint64_t meanWrites = 0;  //!< mean per-cell budget; 0 = off
    double cov = 0.0;         //!< budget coefficient of variation
    unsigned eccDeadCells = 0; //!< dead cells tolerated per line
    uint64_t maxWrites = 0;   //!< demand-write cap; 0 = default

    bool active() const { return meanWrites != 0; }
    bool operator==(const EnduranceConfig &o) const = default;
};

/**
 * Canonical text form, e.g. "none", "start-gap:p100:r64",
 * "page-remap:p100:g8". Stable: equal configs format equally, so
 * the form is safe inside cache keys.
 */
std::string formatLeveler(const LevelerConfig &config);

/**
 * Parse formatLeveler() output or a CLI abbreviation: a bare scheme
 * name takes every default; tokens "p<N>" (period), "r<N>" (region
 * lines) and "g<N>" (page lines) may follow in any order.
 * @throws std::invalid_argument on unknown schemes or tokens.
 */
LevelerConfig parseLeveler(const std::string &text);

/** Canonical text form "mean:cov:ecc:cap", e.g. "1000:0.1:0:0". */
std::string formatEndurance(const EnduranceConfig &config);

/**
 * Parse formatEndurance() output or the CLI abbreviation
 * "mean[:cov[:ecc[:cap]]]" (missing positions keep their defaults).
 * @throws std::invalid_argument on malformed numbers.
 */
EnduranceConfig parseEndurance(const std::string &text);

} // namespace wlcrc::wearlevel

#endif // WLCRC_WEARLEVEL_CONFIG_HH
