#include "lifetime.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.hh"

namespace wlcrc::wearlevel
{

namespace
{

/** SplitMix64 finalizer: the stateless mixing primitive behind the
 *  budget hash (matches the generator family used elsewhere). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

uint64_t
cellBudget(const EnduranceConfig &endurance, uint64_t seed,
           uint64_t physLine, unsigned cell)
{
    if (!endurance.active())
        return std::numeric_limits<uint64_t>::max();
    if (endurance.cov <= 0.0)
        return std::max<uint64_t>(1, endurance.meanWrites);
    // Sum of 12 hash-derived uniforms minus 6: an Irwin-Hall
    // approximation of N(0, 1) with no generator state to carry.
    uint64_t h = mix64(seed ^ mix64(physLine ^ mix64(cell)));
    double sum = 0.0;
    for (int k = 0; k < 12; ++k) {
        h = mix64(h);
        sum += static_cast<double>(h >> 11) * 0x1.0p-53;
    }
    const double z = std::clamp(sum - 6.0, -3.0, 3.0);
    const double budget = std::max(
        1.0, static_cast<double>(endurance.meanWrites) *
                 (1.0 + endurance.cov * z));
    return static_cast<uint64_t>(std::llround(budget));
}

LifetimeEngine::LifetimeEngine(const coset::LineCodec &codec,
                               const pcm::WriteUnit &unit,
                               Options opts)
    : codec_(codec), opts_(std::move(opts)),
      replayer_(codec, unit, opts_.seed, opts_.vnr),
      wear_(codec.cellCount()),
      leveler_(makeLeveler(opts_.leveler))
{
    replayer_.device().attachWearTracker(&wear_);
}

LifetimeEngine::~LifetimeEngine()
{
    replayer_.device().attachWearTracker(nullptr);
}

const trace::ReplayResult &
LifetimeEngine::replayResult() const
{
    return replayer_.result();
}

bool
LifetimeEngine::checkLine(uint64_t physLine, LifetimeResult &res)
{
    const std::vector<uint32_t> *wear = wear_.lineWear(physLine);
    if (!wear)
        return false;
    auto budgetIt = budgets_.find(physLine);
    if (budgetIt == budgets_.end()) {
        std::vector<uint64_t> budgets(wear->size());
        for (unsigned c = 0; c < budgets.size(); ++c)
            budgets[c] =
                cellBudget(opts_.endurance, opts_.seed, physLine, c);
        budgetIt =
            budgets_.emplace(physLine, std::move(budgets)).first;
    }
    const auto &budgets = budgetIt->second;
    unsigned dead = 0;
    unsigned firstDead = 0;
    for (unsigned c = 0; c < wear->size(); ++c) {
        if ((*wear)[c] >= budgets[c]) {
            if (!dead)
                firstDead = c;
            ++dead;
        }
    }
    auto &known = deadPerLine_[physLine];
    res.deadCells += dead - known;
    known = dead;
    if (dead > opts_.endurance.eccDeadCells) {
        res.died = true;
        res.failedLine = physLine;
        res.failedCell = firstDead;
        res.writesToFailure = res.demandWrites;
        return true;
    }
    return false;
}

void
LifetimeEngine::applyMoves(const std::vector<LineMove> &moves,
                           LifetimeResult &res)
{
    for (const LineMove &move : moves) {
        // A logical line that was never written has no contents to
        // relocate; the move costs nothing.
        const auto it = lastData_.find(move.logical);
        if (it == lastData_.end())
            continue;
        auto &stored = replayer_.device().line(move.toPhys);
        codec_.encodeInto(it->second,
                          {stored.data(), stored.size()}, scratch_,
                          staging_);
        replayer_.device().writeLine(move.toPhys, stored, staging_,
                                     opts_.vnr);
        ++res.extraWrites;
        if (opts_.endurance.active() && checkLine(move.toPhys, res))
            return;
    }
}

void
LifetimeEngine::sampleCov(LifetimeResult &res)
{
    res.wearCovTimeline.push_back(wear_.summary().covCellWrites);
    if (res.wearCovTimeline.size() < 128)
        return;
    // Bound the series: keep every second sample (the ones landing
    // on multiples of the doubled interval) and halve its length.
    std::vector<double> kept;
    kept.reserve(64);
    for (std::size_t i = 1; i < res.wearCovTimeline.size(); i += 2)
        kept.push_back(res.wearCovTimeline[i]);
    res.wearCovTimeline = std::move(kept);
    res.covSampleEvery *= 2;
}

LifetimeResult
LifetimeEngine::run(const std::vector<trace::WriteTransaction> &txns,
                    bool loopUntilDeath)
{
    if (ran_)
        throw std::logic_error(
            "LifetimeEngine::run may be called once per engine");
    ran_ = true;

    LifetimeResult res;
    res.covSampleEvery = 64;
    const uint64_t cap = opts_.endurance.maxWrites
                             ? opts_.endurance.maxWrites
                             : defaultWriteCap;
    std::vector<LineMove> moves;
    bool capped = txns.empty();
    while (!capped && !res.died) {
        for (const trace::WriteTransaction &t : txns) {
            if (res.demandWrites >= cap) {
                capped = true;
                break;
            }
            const uint64_t phys = leveler_->map(t.lineAddr);
            trace::WriteTransaction mapped = t;
            mapped.lineAddr = phys;
            replayer_.step(mapped);
            lastData_.insert_or_assign(t.lineAddr, t.newData);
            ++res.demandWrites;
            if (opts_.endurance.active() && checkLine(phys, res))
                break;
            moves.clear();
            leveler_->onWrite(t.lineAddr, moves);
            applyMoves(moves, res);
            if (res.died)
                break;
            if (res.demandWrites % res.covSampleEvery == 0)
                sampleCov(res);
        }
        if (!loopUntilDeath)
            break;
    }

    // A device that outlives the write cap survived at least this
    // many demand writes; reporting that count keeps the column
    // monotone instead of collapsing survivors to zero.
    if (!res.died)
        res.writesToFailure = res.demandWrites;

    const LevelerStats lstats = leveler_->stats();
    res.remapEvents = lstats.remapEvents;
    res.tableBytes = lstats.tableBytes;
    const pcm::WearSummary wsum = wear_.summary();
    res.finalWearCov = wsum.covCellWrites;
    res.maxCellWear = wsum.maxCellWrites;
    return res;
}

std::vector<trace::WriteTransaction>
hotspotTrace(uint64_t lines, uint64_t writes, uint64_t seed,
             double hotFraction)
{
    if (lines == 0)
        throw std::invalid_argument(
            "hotspotTrace: need at least one line");
    Rng rng(seed);
    const uint64_t hotLines = std::max<uint64_t>(1, lines / 8);
    std::vector<Line512> last(lines);
    std::vector<trace::WriteTransaction> txns;
    txns.reserve(writes);
    for (uint64_t i = 0; i < writes; ++i) {
        uint64_t addr;
        if (hotLines < lines && !rng.chance(hotFraction))
            addr = hotLines + rng.nextBelow(lines - hotLines);
        else
            addr = rng.nextBelow(hotLines);
        // Mutate two random words so differential writes keep a
        // realistic partial-update profile.
        Line512 data = last[addr];
        for (int k = 0; k < 2; ++k)
            data.setWord(static_cast<unsigned>(rng.nextBelow(8)),
                         rng.next());
        trace::WriteTransaction t;
        t.lineAddr = addr;
        t.oldData = last[addr];
        t.newData = data;
        txns.push_back(t);
        last[addr] = data;
    }
    return txns;
}

} // namespace wlcrc::wearlevel
